#!/usr/bin/env bash
# skipperd serving smoke: start the daemon, run a scripted multi-tenant
# session over the wire, and diff every result against skipperql's
# single-shot output for the same statements on the same dataset. The
# serving layer must add admission, sessions and transport — never
# change what a query returns.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:7878
METRICS=127.0.0.1:7879
DATASET=(-workload tpch -sf 4 -rows 4 -clustered -format v2)
QUERIES=(
  "SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name LIMIT 8"
  "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000.0 ORDER BY o_orderkey"
  "SELECT l_shipmode, COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY l_shipmode ORDER BY l_shipmode"
  "SELECT COUNT(*) AS n, MIN(l_quantity) AS lo, MAX(l_quantity) AS hi FROM lineitem"
)

workdir=$(mktemp -d)
go build -o "$workdir/skipperd" ./cmd/skipperd
go build -o "$workdir/skipperql" ./cmd/skipperql

"$workdir/skipperd" "${DATASET[@]}" -addr "$ADDR" -pipeline \
  -inflight 2 -tenant-slots 1 -queue-depth 16 \
  -metrics-addr "$METRICS" -trace -trace-dir "$workdir/traces" \
  > "$workdir/skipperd.log" 2>&1 &
daemon=$!
cleanup() {
  kill "$daemon" 2>/dev/null || true
  wait "$daemon" 2>/dev/null || true
  cat "$workdir/skipperd.log"
  rm -rf "$workdir"
}
trap cleanup EXIT

# Multi-tenant scripted session: every tenant runs the whole statement
# mix through its own session (the client retries the connect, so no
# sleep is needed for daemon startup).
for tenant in 0 1 2; do
  for q in "${QUERIES[@]}"; do
    echo "== tenant $tenant: $q"
    "$workdir/skipperd" -client -addr "$ADDR" -tenant "$tenant" -c "$q" | grep -v '^--'
  done
done > "$workdir/wire.txt"

# Single-shot oracle: skipperql over the identical dataset flags.
for tenant in 0 1 2; do
  for q in "${QUERIES[@]}"; do
    echo "== tenant $tenant: $q"
    "$workdir/skipperql" "${DATASET[@]}" -c "$q" | grep -v '^--'
  done
done > "$workdir/direct.txt"

diff -u "$workdir/direct.txt" "$workdir/wire.txt"
echo "skipperd smoke: $((3 * ${#QUERIES[@]})) served results byte-identical to skipperql"

# The admission path must reject, not stall, when saturated: run brief
# closed-loop load and require a clean exit (failures are fatal inside
# loadgen; overload rejections are not). The soak runs in the
# background so the metrics sidecar can be scraped mid-soak — the
# observability plane must answer while the query plane is saturated.
"$workdir/skipperd" -loadgen -addr "$ADDR" -workers 6 -duration 4s \
  > "$workdir/loadgen.txt" 2>&1 &
loadgen=$!
sleep 2
curl -sf "http://$METRICS/metrics" > "$workdir/metrics-midsoak.txt"
# Scrape to a file, then grep: `curl | grep -q` under pipefail races —
# grep exits at the first match and curl dies on the closed pipe.
curl -sf "http://$METRICS/debug/pprof/goroutine?debug=1" > "$workdir/pprof-goroutine.txt"
grep -q goroutine "$workdir/pprof-goroutine.txt"
wait "$loadgen"
cat "$workdir/loadgen.txt"
grep -q 'p99.9=' "$workdir/loadgen.txt" \
  || { echo "loadgen output lacks the p99.9 column" >&2; exit 1; }

# The mid-soak scrape must expose every required metric family, with
# the serving counters live (non-zero: the scripted session above
# already completed queries before the soak began).
check_metric() {
  pattern=$1
  grep -Eq "$pattern" "$workdir/metrics-midsoak.txt" \
    || { echo "metrics scrape missing: $pattern" >&2; exit 1; }
}
check_metric '^# TYPE skipper_queries_total counter$'
check_metric '^skipper_queries_total\{outcome="completed",tenant="0"\} [1-9]'
check_metric '^# TYPE skipper_query_latency_seconds summary$'
check_metric '^skipper_query_latency_seconds_count\{tenant="0"\} [1-9]'
check_metric '^skipper_query_latency_seconds\{tenant="0",quantile="0\.999"\} [0-9]'
check_metric '^skipper_queue_wait_seconds_total\{tenant="0"\} [0-9]'
check_metric '^# TYPE skipper_inflight_queries gauge$'
check_metric '^# TYPE skipper_admission_queued_queries gauge$'
check_metric '^# TYPE skipper_slow_queries_total counter$'
check_metric '^# TYPE skipper_traces_retained gauge$'
check_metric '^skipper_traces_retained [1-9]'
echo "skipperd smoke: metrics exposition and pprof answered mid-soak"

# Every query was traced (-trace): the trace directory holds Chrome
# trace files, and the TRACE verb serves a span tree over the wire.
# Retrieve the newest trace — the ring evicts old ones under load.
# (No `ls -t | head` here: early-exiting pipe readers SIGPIPE the
# writer, which pipefail turns into a spurious smoke failure.)
ls "$workdir/traces"/t0-*.json > /dev/null
newest=
for f in "$workdir/traces"/*.json; do
  if [ -z "$newest" ] || [ "$f" -nt "$newest" ]; then newest=$f; fi
done
latest=$(basename "$newest" .json)
"$workdir/skipperd" -client -addr "$ADDR" -c "TRACE $latest" \
  | grep 'query' > /dev/null

# STATS must report the traffic the smoke produced.
"$workdir/skipperd" -client -addr "$ADDR" -c STATS \
  | grep '"completed"' > /dev/null
echo "skipperd smoke: OK"
