#!/usr/bin/env bash
# skipperd serving smoke: start the daemon, run a scripted multi-tenant
# session over the wire, and diff every result against skipperql's
# single-shot output for the same statements on the same dataset. The
# serving layer must add admission, sessions and transport — never
# change what a query returns.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:7878
DATASET=(-workload tpch -sf 4 -rows 4 -clustered -format v2)
QUERIES=(
  "SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name LIMIT 8"
  "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000.0 ORDER BY o_orderkey"
  "SELECT l_shipmode, COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY l_shipmode ORDER BY l_shipmode"
  "SELECT COUNT(*) AS n, MIN(l_quantity) AS lo, MAX(l_quantity) AS hi FROM lineitem"
)

workdir=$(mktemp -d)
go build -o "$workdir/skipperd" ./cmd/skipperd
go build -o "$workdir/skipperql" ./cmd/skipperql

"$workdir/skipperd" "${DATASET[@]}" -addr "$ADDR" -pipeline \
  -inflight 2 -tenant-slots 1 -queue-depth 16 > "$workdir/skipperd.log" 2>&1 &
daemon=$!
cleanup() {
  kill "$daemon" 2>/dev/null || true
  wait "$daemon" 2>/dev/null || true
  cat "$workdir/skipperd.log"
  rm -rf "$workdir"
}
trap cleanup EXIT

# Multi-tenant scripted session: every tenant runs the whole statement
# mix through its own session (the client retries the connect, so no
# sleep is needed for daemon startup).
for tenant in 0 1 2; do
  for q in "${QUERIES[@]}"; do
    echo "== tenant $tenant: $q"
    "$workdir/skipperd" -client -addr "$ADDR" -tenant "$tenant" -c "$q" | grep -v '^--'
  done
done > "$workdir/wire.txt"

# Single-shot oracle: skipperql over the identical dataset flags.
for tenant in 0 1 2; do
  for q in "${QUERIES[@]}"; do
    echo "== tenant $tenant: $q"
    "$workdir/skipperql" "${DATASET[@]}" -c "$q" | grep -v '^--'
  done
done > "$workdir/direct.txt"

diff -u "$workdir/direct.txt" "$workdir/wire.txt"
echo "skipperd smoke: $((3 * ${#QUERIES[@]})) served results byte-identical to skipperql"

# The admission path must reject, not stall, when saturated: run brief
# closed-loop load and require a clean exit (failures are fatal inside
# loadgen; overload rejections are not).
"$workdir/skipperd" -loadgen -addr "$ADDR" -workers 6 -duration 2s

# STATS must report the traffic the smoke produced.
"$workdir/skipperd" -client -addr "$ADDR" -c STATS | grep -q '"completed"'
echo "skipperd smoke: OK"
