#!/usr/bin/env bash
# Scale-out smoke: the same statements served from a single device and
# from device fleets (2 devices with hot replication, 4 devices fully
# replicated) must return byte-identical rows — the placement layer may
# only change I/O patterns, never results. Then a skipperd boot runs a
# two-device fully-replicated fleet whose device 0 permanently crashes
# mid-query: every query must still complete from the replica, served
# rows diffed against the clean single-device oracle, with the
# per-device metric families live on /metrics and no query lost.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:7890
METRICS=127.0.0.1:7891
DATASET=(-workload tpch -sf 4 -rows 4 -clustered -format v2)
QUERIES=(
  "SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name LIMIT 8"
  "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000.0 ORDER BY o_orderkey"
  "SELECT l_shipmode, COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY l_shipmode ORDER BY l_shipmode"
  "SELECT COUNT(*) AS n, MIN(l_quantity) AS lo, MAX(l_quantity) AS hi FROM lineitem"
)

workdir=$(mktemp -d)
go build -o "$workdir/skipperd" ./cmd/skipperd
go build -o "$workdir/skipperql" ./cmd/skipperql

cleanup() {
  [ -n "${daemon:-}" ] && kill "$daemon" 2>/dev/null || true
  [ -n "${daemon:-}" ] && wait "$daemon" 2>/dev/null || true
  [ -f "$workdir/skipperd.log" ] && cat "$workdir/skipperd.log"
  rm -rf "$workdir"
}
trap cleanup EXIT

# Single-device oracle, then the fleets: identical statements, results
# must not change with the device count or the replication policy.
run_ql() { # run_ql outfile [extra flags...]
  local out=$1; shift
  for q in "${QUERIES[@]}"; do
    echo "== $q"
    "$workdir/skipperql" "${DATASET[@]}" "$@" -c "$q" | grep -v '^--'
  done > "$out"
}
run_ql "$workdir/one.txt"
run_ql "$workdir/two-hot.txt" -devices 2 -replication hot
run_ql "$workdir/four-full.txt" -devices 4 -replication full
diff -u "$workdir/one.txt" "$workdir/two-hot.txt"
diff -u "$workdir/one.txt" "$workdir/four-full.txt"
echo "scale smoke: ${#QUERIES[@]} results identical on 1, 2 (hot) and 4 (full) devices"

# Failover over the wire: a two-device fully-replicated fleet whose
# device 0 dies 15 s into each query's simulated run and never
# restarts. Every query must complete from the replica.
"$workdir/skipperd" "${DATASET[@]}" -addr "$ADDR" \
  -devices 2 -replication full -crash-at 15s \
  -metrics-addr "$METRICS" \
  > "$workdir/skipperd.log" 2>&1 &
daemon=$!

for tenant in 0 1 2; do
  for q in "${QUERIES[@]}"; do
    echo "== $q"
    "$workdir/skipperd" -client -addr "$ADDR" -tenant "$tenant" -c "$q" | grep -v '^--'
  done > "$workdir/wire-t$tenant.txt"
  diff -u "$workdir/one.txt" "$workdir/wire-t$tenant.txt"
done
echo "scale smoke: $((3 * ${#QUERIES[@]})) results served across the device-0 crash, byte-identical to the single-device oracle"

# The fleet must be real and its metric families live: both devices
# took GETs, the crash actually happened, and no query failed.
curl -sf "http://$METRICS/metrics" > "$workdir/metrics.txt"
check_metric() {
  pattern=$1
  grep -Eq "$pattern" "$workdir/metrics.txt" \
    || { echo "metrics scrape missing: $pattern" >&2; exit 1; }
}
check_metric '^# TYPE skipper_device_gets_total counter$'
check_metric '^skipper_device_gets_total\{[^}]*device="0"[^}]*\} [1-9]'
check_metric '^skipper_device_gets_total\{[^}]*device="1"[^}]*\} [1-9]'
check_metric '^skipper_device_crashes_total\{[^}]*device="0"[^}]*\} [1-9]'
check_metric '^skipper_failovers\{[^}]*tenant="[0-9]+"[^}]*\} [1-9]'
check_metric '^skipper_queries_total\{[^}]*outcome="completed"[^}]*\} [1-9]'
! grep -Eq '^skipper_queries_total\{[^}]*outcome="(failed|expired|rejected)"[^}]*\} [1-9]' "$workdir/metrics.txt" \
  || { echo "queries were lost during the device crash" >&2; exit 1; }
echo "scale smoke: per-device families exposed on both devices; no query lost"
echo "scale smoke: OK"
