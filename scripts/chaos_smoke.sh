#!/usr/bin/env bash
# skipperd chaos smoke: start the daemon with a seeded fault plan —
# transient GET failures, latency stalls, corrupt payloads and a
# crash/restart window on every query's simulated device — run a
# scripted multi-tenant session over the wire, and diff every served
# result against skipperql's single-shot output on a fault-free device.
# Surviving faults must never change what a query returns; the fault
# metric families must show the storm actually happened.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:7888
METRICS=127.0.0.1:7889
DATASET=(-workload tpch -sf 4 -rows 4 -clustered -format v2)
# The seeded plan mirrors the chaos soak test's: rates high enough to
# fault the small smoke dataset, the per-object cap keeping bounded
# retries convergent, and a crash window long queries cross (down 20 s,
# then back). The retry policy sleeps across the downtime.
FAULTS=(-fault-seed 42 -fault-transient 0.4 -fault-stall 0.2 -fault-corrupt 0.45
        -fault-cap 3 -crash-at 15s -crash-downtime 20s
        -retry-attempts 40 -retry-backoff 500ms)
QUERIES=(
  "SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name LIMIT 8"
  "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000.0 ORDER BY o_orderkey"
  "SELECT l_shipmode, COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY l_shipmode ORDER BY l_shipmode"
  "SELECT COUNT(*) AS n, MIN(l_quantity) AS lo, MAX(l_quantity) AS hi FROM lineitem"
)

workdir=$(mktemp -d)
go build -o "$workdir/skipperd" ./cmd/skipperd
go build -o "$workdir/skipperql" ./cmd/skipperql

"$workdir/skipperd" "${DATASET[@]}" "${FAULTS[@]}" -addr "$ADDR" -pipeline \
  -inflight 2 -tenant-slots 1 -queue-depth 16 \
  -metrics-addr "$METRICS" \
  > "$workdir/skipperd.log" 2>&1 &
daemon=$!
cleanup() {
  kill "$daemon" 2>/dev/null || true
  wait "$daemon" 2>/dev/null || true
  cat "$workdir/skipperd.log"
  rm -rf "$workdir"
}
trap cleanup EXIT

# Multi-tenant scripted session against the faulted daemon.
for tenant in 0 1 2; do
  for q in "${QUERIES[@]}"; do
    echo "== tenant $tenant: $q"
    "$workdir/skipperd" -client -addr "$ADDR" -tenant "$tenant" -c "$q" | grep -v '^--'
  done
done > "$workdir/wire.txt"

# Clean oracle: skipperql over the identical dataset with NO fault
# flags — the chaos-vs-clean comparison, not chaos-vs-chaos.
for tenant in 0 1 2; do
  for q in "${QUERIES[@]}"; do
    echo "== tenant $tenant: $q"
    "$workdir/skipperql" "${DATASET[@]}" -c "$q" | grep -v '^--'
  done
done > "$workdir/direct.txt"

diff -u "$workdir/direct.txt" "$workdir/wire.txt"
echo "chaos smoke: $((3 * ${#QUERIES[@]})) results served through the fault storm, byte-identical to the clean oracle"

# The storm must have been real, and its metric families live: faults
# injected, transfers retried, corrupt deliveries caught — all visible
# on /metrics with non-zero samples.
curl -sf "http://$METRICS/metrics" > "$workdir/metrics.txt"
check_metric() {
  pattern=$1
  grep -Eq "$pattern" "$workdir/metrics.txt" \
    || { echo "metrics scrape missing: $pattern" >&2; exit 1; }
}
check_metric '^# TYPE skipper_faults_injected counter$'
check_metric '^skipper_faults_injected\{tenant="0"\} [1-9]'
check_metric '^# TYPE skipper_retries counter$'
check_metric '^skipper_retries\{tenant="0"\} [1-9]'
check_metric '^# TYPE skipper_corrupt_segments counter$'
check_metric '^skipper_corrupt_segments\{tenant="0"\} [1-9]'
# Every query completed despite the chaos — none failed or expired.
check_metric '^skipper_queries_total\{outcome="completed",tenant="0"\} [1-9]'
! grep -Eq '^skipper_queries_total\{outcome="(failed|expired|rejected)",tenant="[0-9]+"\} [1-9]' "$workdir/metrics.txt" \
  || { echo "queries were lost during the storm" >&2; exit 1; }
echo "chaos smoke: fault families exposed with non-zero counts; no query lost"
echo "chaos smoke: OK"
