// Scheduling: fairness vs efficiency of CSD group-switch scheduling (the
// paper's Figure 12 scenario). Five Skipper clients repeat TPC-H Q12 on a
// skewed layout — two groups host two clients each, the last group hosts
// a single client. Max-Queries maximizes throughput but starves the lone
// client; FCFS is fair but slow; the paper's rank-based policy
// R(g) = Ng + K·ΣWq(g) balances both.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/csd"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

const (
	tenants = 5
	repeats = 6
)

func buildClients(store map[segment.ObjectID]*segment.Segment) []*skipper.Client {
	clients := make([]*skipper.Client, tenants)
	for t := 0; t < tenants; t++ {
		ds := workload.TPCH(t, workload.TPCHConfig{SF: 12, RowsPerObject: 8, Seed: 5})
		ds.MergeInto(store)
		var queries []skipper.QuerySpec
		for r := 0; r < repeats; r++ {
			queries = append(queries, workload.Q12(ds.Catalog))
		}
		clients[t] = &skipper.Client{
			Tenant: t, Mode: skipper.ModeSkipper,
			Catalog: ds.Catalog, Queries: queries, CacheObjects: 16,
		}
	}
	return clients
}

func main() {
	// Ideal per-query time: one client alone on the device.
	aloneStore := make(map[segment.ObjectID]*segment.Segment)
	alone := buildClients(aloneStore)[:1]
	res, err := (&skipper.Cluster{Clients: alone, Store: aloneStore}).Run()
	if err != nil {
		log.Fatal(err)
	}
	ideal := res.Clients[0].Elapsed() / repeats
	fmt.Printf("single-client per-query time: %.1fs\n\n", ideal.Seconds())

	fmt.Printf("%-12s  %14s  %11s  %16s  %8s\n",
		"policy", "L2-norm", "max stretch", "cumulative (s)", "switches")
	for _, pol := range []csd.Scheduler{
		csd.NewFCFSQuery(),
		csd.NewMaxQueries(),
		csd.NewRankBased(1),
	} {
		store := make(map[segment.ObjectID]*segment.Segment)
		clients := buildClients(store)
		cfg := csd.DefaultConfig()
		cfg.Scheduler = pol
		cluster := &skipper.Cluster{
			Clients: clients,
			Store:   store,
			Layout:  layout.ByTenant{Groups: []int{0, 0, 1, 1, 2}},
			CSD:     cfg,
		}
		res, err := cluster.Run()
		if err != nil {
			log.Fatal(err)
		}
		var stretches []float64
		var cum time.Duration
		for _, cs := range res.Clients {
			cum += cs.Elapsed()
			for _, qr := range cs.PerQuery {
				stretches = append(stretches, metrics.Stretch(qr.Finish-qr.Start, ideal))
			}
		}
		fmt.Printf("%-12s  %14.2f  %11.2f  %16.1f  %8d\n",
			pol.Name(), metrics.L2Norm(stretches), metrics.Max(stretches),
			cum.Seconds(), res.CSD.GroupSwitches)
	}
	fmt.Println("\nmax-queries: fastest but starves the lone tenant on group 2;")
	fmt.Println("fcfs-query:  fair but pays many extra group switches;")
	fmt.Println("rank-based:  the paper's middle ground (K=1).")
}
