// Cachesweep: the cache-capacity / performance trade-off of the
// cache-aware MJoin (the paper's Figure 11b scenario). As the MJoin
// buffer shrinks below the query's input footprint, evicted objects must
// be refetched from the CSD in later cycles, inflating both GET counts
// and execution time — but the join still completes correctly at any
// cache size down to one object per relation.
package main

import (
	"fmt"
	"log"

	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

func main() {
	base := workload.TPCH(0, workload.TPCHConfig{SF: 20, RowsPerObject: 10, Seed: 3})
	spec := workload.Q5(base.Catalog)
	footprint := len(spec.Join.Objects())
	fmt.Printf("TPC-H Q5: 6-relation join, %d input objects, %d subplans\n\n",
		footprint, spec.Join.NumSubplans())
	fmt.Printf("%-16s  %12s  %6s  %8s  %10s  %9s\n",
		"cache (objects)", "time (s)", "GETs", "cycles", "evictions", "reissued")

	for _, cache := range []int{6, 8, 10, 12, 16, 20, footprint} {
		store := make(map[segment.ObjectID]*segment.Segment)
		base.MergeInto(store)
		client := &skipper.Client{
			Tenant:       0,
			Mode:         skipper.ModeSkipper,
			Catalog:      base.Catalog,
			Queries:      []skipper.QuerySpec{workload.Q5(base.Catalog)},
			CacheObjects: cache,
		}
		cluster := &skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}
		res, err := cluster.Run()
		if err != nil {
			log.Fatal(err)
		}
		cs := res.Clients[0]
		fmt.Printf("%-16d  %12.1f  %6d  %8d  %10d  %9d\n",
			cache, cs.Elapsed().Seconds(), cs.GetsIssued,
			cs.MJoin.Cycles, cs.MJoin.Evictions, cs.GetsIssued-footprint)
	}
	fmt.Println("\nEvery row computes the identical join result; only I/O traffic differs.")
}
