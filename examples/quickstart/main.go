// Quickstart: run one analytical query over data on a simulated Cold
// Storage Device with both engines — the classical pull-based engine
// ("vanilla PostgreSQL") and Skipper's cache-aware MJoin — and compare
// execution times and results.
package main

import (
	"fmt"
	"log"

	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

func main() {
	// Generate a small TPC-H-like database for tenant 0. Each relation
	// is split into 1 GB segments stored as CSD objects.
	ds := workload.TPCH(0, workload.TPCHConfig{SF: 10, RowsPerObject: 16, Seed: 42})
	fmt.Printf("dataset: %d objects across %v\n",
		len(ds.Catalog.AllObjects()), ds.Catalog.TableNames())

	// TPC-H Q12: lineitem ⋈ orders with shipmode/date predicates.
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		store := make(map[segment.ObjectID]*segment.Segment)
		ds.MergeInto(store)
		client := &skipper.Client{
			Tenant:       0,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      []skipper.QuerySpec{workload.Q12(ds.Catalog)},
			CacheObjects: 8, // MJoin buffer: 8 objects
		}
		cluster := &skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}
		res, err := cluster.Run()
		if err != nil {
			log.Fatal(err)
		}
		cs := res.Clients[0]
		fmt.Printf("\n%-8s finished in %8.1fs (virtual) — %d GETs, %d switches, %d result rows\n",
			mode, cs.Elapsed().Seconds(), cs.GetsIssued, res.CSD.GroupSwitches, cs.Rows)
		fmt.Printf("         processing %.1fs, stalled %.1fs, fuse %.1fs\n",
			cs.Processing.Seconds(), cs.Stalled().Seconds(), cs.Fuse.Seconds())
	}

	// The query result itself, evaluated locally:
	rows, err := workload.Evaluate(ds, workload.Q12(ds.Catalog))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ12 result (shipmode, high_line_count, low_line_count):")
	for _, r := range rows {
		fmt.Printf("  %v\n", r)
	}
}
