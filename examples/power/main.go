// Power: the MAID energy story that motivates cold storage devices
// (§2.2): only one disk group is spun up at a time, so a CSD rack draws a
// fraction of an always-on JBOD's power — and Skipper's batch-per-group
// execution pays far fewer spin-up surges than the pull-based engine's
// per-object group switching.
package main

import (
	"fmt"
	"log"

	"repro/internal/csd"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

const tenants = 4

func run(mode skipper.Mode) (*skipper.RunResult, error) {
	store := make(map[segment.ObjectID]*segment.Segment)
	clients := make([]*skipper.Client, tenants)
	for t := 0; t < tenants; t++ {
		ds := workload.TPCH(t, workload.TPCHConfig{SF: 20, RowsPerObject: 8, Seed: 9})
		ds.MergeInto(store)
		clients[t] = &skipper.Client{
			Tenant: t, Mode: mode, Catalog: ds.Catalog,
			Queries:      []skipper.QuerySpec{workload.Q12(ds.Catalog)},
			CacheObjects: 14,
		}
	}
	return (&skipper.Cluster{Clients: clients, Store: store, CSD: csd.Pelican()}).Run()
}

func main() {
	pm := csd.PelicanPower()
	fmt.Printf("Pelican-class rack: %.0f W idle, +%.0f W per active group, %.0f kJ per switch\n\n",
		pm.IdleWatts, pm.GroupActiveWatts, pm.SwitchJoules/1000)
	fmt.Printf("%-8s  %12s  %9s  %14s  %14s\n",
		"engine", "makespan (s)", "switches", "CSD energy", "always-on JBOD")
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		res, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		e := pm.Energy(res.CSD, res.Makespan)
		jbod := pm.JBODEnergy(tenants, res.Makespan)
		fmt.Printf("%-8s  %12.0f  %9d  %11.1f MJ  %11.1f MJ\n",
			mode, res.Makespan.Seconds(), res.CSD.GroupSwitches, e/1e6, jbod/1e6)
	}
	fmt.Println("\nThe MAID discipline (one spun-up group) cuts rack energy several-fold")
	fmt.Println("versus spinning every group; Skipper additionally avoids the per-object")
	fmt.Println("switch surges the pull-based engine triggers.")
}
