// Multitenant: five database clients share one Cold Storage Device, each
// with its data in a separate disk group (the paper's Figure 7 scenario).
// The pull-based engine collapses — every pull forces a group switch —
// while Skipper batches all requests upfront so the CSD drains one group
// at a time.
package main

import (
	"fmt"
	"log"

	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

const tenants = 5

func run(mode skipper.Mode) (*skipper.RunResult, error) {
	store := make(map[segment.ObjectID]*segment.Segment)
	clients := make([]*skipper.Client, tenants)
	for t := 0; t < tenants; t++ {
		ds := workload.TPCH(t, workload.TPCHConfig{SF: 25, RowsPerObject: 8, Seed: 7})
		ds.MergeInto(store)
		clients[t] = &skipper.Client{
			Tenant:       t,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      []skipper.QuerySpec{workload.Q12(ds.Catalog)},
			CacheObjects: 16,
		}
	}
	cluster := &skipper.Cluster{Clients: clients, Store: store}
	return cluster.Run()
}

func main() {
	fmt.Println("5 tenants, TPC-H Q12, one disk group per tenant, 10 s group switch")
	fmt.Println()
	fmt.Printf("%-8s  %10s  %10s  %8s  %8s\n", "engine", "avg (s)", "max (s)", "switches", "GETs")
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		res, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		var sum, max float64
		gets := 0
		for _, cs := range res.Clients {
			el := cs.Elapsed().Seconds()
			sum += el
			if el > max {
				max = el
			}
			gets += cs.GetsIssued
		}
		fmt.Printf("%-8s  %10.1f  %10.1f  %8d  %8d\n",
			mode, sum/tenants, max, res.CSD.GroupSwitches, gets)
	}
	fmt.Println("\nPer-tenant completion times (skipper):")
	res, err := run(skipper.ModeSkipper)
	if err != nil {
		log.Fatal(err)
	}
	for _, cs := range res.Clients {
		fmt.Printf("  tenant %d: %.1fs\n", cs.Tenant, cs.Elapsed().Seconds())
	}
}
