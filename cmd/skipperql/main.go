// Command skipperql is an interactive SQL shell over a generated dataset
// stored on the simulated Cold Storage Device. Each statement is planned
// onto the multi-way join core and executed by the chosen engine; the
// shell reports virtual execution time, GET counts and group switches
// alongside the result rows.
//
// Usage:
//
//	skipperql [-workload tpch|ssb|mrbench|nref] [-sf N] [-engine skipper|vanilla|local]
//	          [-cache N] [-segcache N] [-prune=false] [-format mem|v1|v2]
//
// Example session:
//
//	> SELECT n_name, COUNT(*) AS n FROM nation, region
//	  WHERE n_regionkey = r_regionkey GROUP BY n_name LIMIT 3;
//
// Prefixing a statement with EXPLAIN prints the pull-engine plan instead
// of executing it, including, per scan, the predicate pushed down for
// data skipping, how many segments the catalog statistics prune, and the
// columns the projection decodes; with an encoded store (-format v1/v2)
// it also reports how many column-block bytes the plan would decode
// versus skip.
//
// -format selects the segment wire format the store serves: v2 (the
// columnar default — scans decode only referenced column blocks), v1
// (row-major), or mem (in-memory segments, no decode work).
//
// -segcache N enables a shared segment cache of N objects that persists
// across the session's statements: re-running a query (or touching the
// same segments again) is served from memory at zero device cost. The
// run footer reports residency and the lifetime hit ratio; EXPLAIN
// reports how many of a plan's fetches are currently cache-resident.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/objstore"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "tpch", "dataset: tpch, ssb, mrbench, nref")
	sf := flag.Int("sf", 10, "scale factor / footprint in GB")
	rows := flag.Int("rows", 20, "tuples per 1 GB object")
	engineName := flag.String("engine", "skipper", "execution engine: skipper, vanilla, local")
	cache := flag.Int("cache", 10, "MJoin cache size in objects (skipper engine)")
	segCache := flag.Int("segcache", 0, "shared segment cache budget in objects (0 = off); persists across statements, so re-running a query hits")
	prune := flag.Bool("prune", true, "enable zone-map/Bloom data skipping of segment requests")
	segFormat := flag.String("format", "v2", "segment wire format the store serves: mem, v1 or v2")
	pipeline := flag.Bool("pipeline", false, "enable the async execution pipeline: scheduler-aware prefetch plus concurrent decode workers")
	prefetchGB := flag.Int("prefetch", 4, "prefetch budget in 1 GB objects ahead of demand (with -pipeline)")
	decodeWorkers := flag.Int("decode-workers", 2, "background decode workers (with -pipeline)")
	clustered := flag.Bool("clustered", false, "sort the TPC-H date columns before segmenting (makes date predicates prunable)")
	command := flag.String("c", "", "run one statement and exit")
	flag.Parse()

	var ds *workload.Dataset
	switch *wl {
	case "tpch":
		ds = workload.TPCH(0, workload.TPCHConfig{SF: *sf, RowsPerObject: *rows, Seed: 1, ClusteredDates: *clustered})
	case "ssb":
		ds = workload.SSB(0, workload.SSBConfig{SF: *sf, RowsPerObject: *rows, Seed: 1})
	case "mrbench":
		ds = workload.MRBench(0, workload.MRBenchConfig{TotalGB: *sf, RowsPerObject: *rows, Seed: 1})
	case "nref":
		ds = workload.NREF(0, workload.NREFConfig{TotalGB: *sf, RowsPerObject: *rows, Seed: 1})
	default:
		fmt.Fprintf(os.Stderr, "skipperql: unknown workload %q\n", *wl)
		os.Exit(2)
	}

	wireFmt, err := segment.ParseFormat(*segFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperql: %v\n", err)
		os.Exit(2)
	}
	// Re-encode the dataset in the chosen wire format: the store then
	// serves lazily decoded segments, scans pay (and report) real decode
	// work, and the catalog statistics come from the v2 column
	// directories. FormatMem keeps the generator's in-memory segments.
	ds, err = objstore.ReencodeDataset(ds, wireFmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperql: encode dataset: %v\n", err)
		os.Exit(1)
	}

	// The session's shared segment cache persists across statements, so a
	// re-run of a query (or one touching the same segments) is served
	// from memory instead of the device — the interactive view of the
	// cluster-wide cache.
	var sc *segcache.Cache
	if *segCache > 0 {
		sc = segcache.NewObjects(*segCache)
	}

	var pc *skipper.PipelineConfig
	if *pipeline {
		pc = &skipper.PipelineConfig{
			PrefetchBytes: int64(*prefetchGB) * 1e9,
			DecodeWorkers: *decodeWorkers,
		}
	}

	planner := &sql.Planner{Catalog: ds.Catalog}
	if *command != "" {
		execute(planner, ds, *engineName, *cache, *prune, sc, pc, *command)
		return
	}

	fmt.Printf("skipperql — %s dataset, %d objects, engine=%s, format=%s\n", *wl, len(ds.Catalog.AllObjects()), *engineName, wireFmt)
	fmt.Printf("tables: %s\n", strings.Join(ds.Catalog.TableNames(), ", "))
	fmt.Println(`end statements with ';', '\q' quits, '\d table' describes a table, EXPLAIN SELECT ... shows the plan`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == `\q` || trimmed == "quit" || trimmed == "exit" {
			return
		}
		if strings.HasPrefix(trimmed, `\d`) {
			describe(ds, strings.TrimSpace(strings.TrimPrefix(trimmed, `\d`)))
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("… ")
			continue
		}
		stmtText := buf.String()
		buf.Reset()
		execute(planner, ds, *engineName, *cache, *prune, sc, pc, stmtText)
		fmt.Print("> ")
	}
}

func describe(ds *workload.Dataset, table string) {
	if table == "" {
		for _, name := range ds.Catalog.TableNames() {
			tm := ds.Catalog.MustTable(name)
			fmt.Printf("  %-12s %3d objects, %6d rows\n", name, len(tm.Objects), tm.RowCount)
		}
		return
	}
	tm, err := ds.Catalog.Table(table)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range tm.Schema.Cols {
		fmt.Printf("  %-24s %s\n", c.Name, c.Kind)
	}
}

func execute(planner *sql.Planner, ds *workload.Dataset, engineName string, cache int, prune bool, sc *segcache.Cache, pc *skipper.PipelineConfig, stmtText string) {
	if rest, ok := stripExplain(stmtText); ok {
		explainStmt(planner, ds, prune, sc, pc, rest)
		return
	}
	spec, err := planner.Plan(stmtText)
	if err != nil {
		fmt.Println(err)
		return
	}
	if engineName == "local" {
		rows, err := evalPulled(ds, spec, prune)
		if err != nil {
			fmt.Println(err)
			return
		}
		printRows(rows)
		return
	}
	mode := skipper.ModeSkipper
	if engineName == "vanilla" {
		mode = skipper.ModeVanilla
	}
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	client := &skipper.Client{
		Tenant: 0, Mode: mode, Catalog: ds.Catalog,
		Queries: []skipper.QuerySpec{spec}, CacheObjects: cache,
		StatsPruning: &prune,
		SegCache:     sc,
		Pipeline:     pc,
	}
	res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}).Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	rows, err := evalPulled(ds, spec, prune)
	if err != nil {
		fmt.Println(err)
		return
	}
	printRows(rows)
	cs := res.Clients[0]
	fmt.Printf("-- %s: %.1fs virtual (processing %.1fs, stalled %.1fs), %d GETs (%d from cache, %d pruned), %d switches\n",
		mode, cs.Elapsed().Seconds(), cs.Processing.Seconds(), cs.Stalled().Seconds(),
		cs.GetsIssued, cs.CacheHits, cs.SegmentsSkipped, res.CSD.GroupSwitches)
	if sc != nil {
		st := sc.Stats()
		fmt.Printf("-- segcache: %d objects resident (%s of %s budget), %.0f%% lifetime hit ratio\n",
			st.Entries, gb(st.BytesCached), gb(st.Budget),
			100*metrics.HitRatio(st.Hits, st.Misses))
	}
	if cs.BytesFetched > 0 {
		fmt.Printf("-- bytes: %d fetched, %d decoded, %d skipped by projection (%.0f%%), %d materialized\n",
			cs.BytesFetched, cs.BytesDecoded, cs.BytesSkippedByProjection,
			100*metrics.ProjectionRatio(cs.BytesDecoded, cs.BytesSkippedByProjection), cs.BytesMaterialized)
	}
	if pc != nil {
		pb := metrics.PipelineFrom(cs.Pipe)
		fmt.Printf("-- pipeline: %d prefetched (%d served staged, %d useful), decode %s busy / %s stalled / %s hidden (%.0f%% overlap), %v wall\n",
			cs.PrefetchIssued, cs.PrefetchServed, cs.PrefetchUseful,
			pb.DecodeBusy.Round(time.Microsecond), pb.DecodeStall.Round(time.Microsecond),
			pb.Hidden.Round(time.Microsecond), 100*pb.OverlapRatio(),
			cs.WallElapsed.Round(time.Microsecond))
	}
}

// gb renders a byte count as gigabytes.
func gb(b int64) string { return fmt.Sprintf("%.0f GB", float64(b)/1e9) }

// stripExplain recognizes a leading EXPLAIN keyword and returns the
// statement behind it.
func stripExplain(stmtText string) (string, bool) {
	trimmed := strings.TrimSpace(stmtText)
	if len(trimmed) < 8 || !strings.EqualFold(trimmed[:7], "EXPLAIN") {
		return "", false
	}
	if c := trimmed[7]; c != ' ' && c != '\t' && c != '\n' && c != '\r' {
		return "", false
	}
	return trimmed[8:], true
}

// explainStmt plans the statement and prints the pull-engine operator
// tree, with per-scan data-skipping detail (pushed-down predicate,
// segments pruned), a whole-query pruning summary, and — when the
// session runs with a shared segment cache — how many of the plan's
// unpruned segment fetches are cache-resident right now (i.e. would be
// served without a device GET).
func explainStmt(planner *sql.Planner, ds *workload.Dataset, prune bool, sc *segcache.Cache, pc *skipper.PipelineConfig, stmtText string) {
	spec, err := planner.Plan(stmtText)
	if err != nil {
		fmt.Println(err)
		return
	}
	it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(ds.Store), spec.Join, prune)
	if err != nil {
		fmt.Println(err)
		return
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	fmt.Print(engine.Explain(it))
	total, skipped, resident, fetches := 0, 0, 0, 0
	var decodeB, skipB int64
	for _, rel := range spec.Join.Relations {
		total += len(rel.Table.Objects)
		if prune {
			skipped += stats.CountSkipped(rel.Pruner, len(rel.Table.Objects))
		}
		if sc != nil {
			for si, id := range rel.Table.Objects {
				if prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
					continue
				}
				fetches++
				if sc.Contains(id) {
					resident++
				}
			}
		}
		// Estimate the projection's block-byte effect from the column
		// directories of the unpruned segments (encoded v2 stores only).
		want := map[int]bool{}
		for _, ci := range rel.Cols {
			want[ci] = true
		}
		for si, id := range rel.Table.Objects {
			if prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
				continue
			}
			dir := ds.Store[id].Directory()
			for ci, m := range dir {
				if rel.Cols == nil || want[ci] {
					decodeB += int64(m.BlockLen)
				} else {
					skipB += int64(m.BlockLen)
				}
			}
		}
	}
	fmt.Printf("-- data skipping: %d of %d segment fetches pruned\n", skipped, total)
	if sc != nil {
		fmt.Printf("-- segcache: %d of %d unpruned segment fetches cache-resident (served without a device GET)\n",
			resident, fetches)
	}
	if decodeB+skipB > 0 {
		fmt.Printf("-- projection: decode %d of %d column-block bytes (%d skipped, %.0f%%)\n",
			decodeB, decodeB+skipB, skipB, 100*metrics.ProjectionRatio(decodeB, skipB))
	}
	if pc != nil {
		candidates := 0
		for _, rel := range spec.Join.Relations {
			for si := range rel.Table.Objects {
				if prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
					continue
				}
				candidates++
			}
		}
		fmt.Printf("-- pipeline: prefetch up to %s ahead (%d candidate segment fetches disclosed to the scheduler), %d decode workers\n",
			gb(pc.PrefetchBytes), candidates, pc.DecodeWorkers)
	}
}

// evalPulled runs the spec locally on the pull engine (no simulation),
// honouring the data-skipping toggle.
func evalPulled(ds *workload.Dataset, spec skipper.QuerySpec, prune bool) ([]tuple.Row, error) {
	it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(ds.Store), spec.Join, prune)
	if err != nil {
		return nil, err
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	return engine.Collect(it)
}

func printRows(rows []tuple.Row) {
	for i, r := range rows {
		if i >= 40 {
			fmt.Printf("... (%d rows total)\n", len(rows))
			return
		}
		fmt.Println(r)
	}
	fmt.Printf("(%d rows)\n", len(rows))
}
