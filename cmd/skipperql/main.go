// Command skipperql is an interactive SQL shell over a generated dataset
// stored on the simulated Cold Storage Device. Each statement is planned
// onto the multi-way join core and executed by the chosen engine; the
// shell reports virtual execution time, GET counts and group switches
// alongside the result rows.
//
// Usage:
//
//	skipperql [-workload tpch|ssb|mrbench|nref] [-sf N] [-engine skipper|vanilla|local]
//	          [-cache N] [-segcache N] [-prune=false] [-format mem|v1|v2]
//	          [-trace] [-trace-out FILE]
//
// Example session:
//
//	> SELECT n_name, COUNT(*) AS n FROM nation, region
//	  WHERE n_regionkey = r_regionkey GROUP BY n_name LIMIT 3;
//
// Prefixing a statement with EXPLAIN prints the pull-engine plan instead
// of executing it, including, per scan, the predicate pushed down for
// data skipping, how many segments the catalog statistics prune, and the
// columns the projection decodes; with an encoded store (-format v1/v2)
// it also reports how many column-block bytes the plan would decode
// versus skip.
//
// EXPLAIN ANALYZE executes the plan with per-operator instrumentation
// armed and prints the tree annotated with measured rows, batches,
// logical bytes and inclusive time per operator.
//
// -trace records the simulator's structured event log during each run
// and prints its per-kind summary in the footer; -trace-out FILE
// additionally captures a hierarchical span tree per statement and
// writes the session's traces as a Chrome trace-event JSON file
// (load in chrome://tracing or https://ui.perfetto.dev).
//
// -format selects the segment wire format the store serves: v2 (the
// columnar default — scans decode only referenced column blocks), v1
// (row-major), or mem (in-memory segments, no decode work).
//
// -segcache N enables a shared segment cache of N objects that persists
// across the session's statements: re-running a query (or touching the
// same segments again) is served from memory at zero device cost. The
// run footer reports residency and the lifetime hit ratio; EXPLAIN
// reports how many of a plan's fetches are currently cache-resident.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/csd"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/objstore"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// obs carries the session's observability knobs: the -trace event log
// (per-statement simulator events, summarized in the run footer) and
// the -trace-out span capture (accumulated across statements and
// written as one Chrome trace-event file after each run).
type obs struct {
	traceLog bool
	traceOut string
	exports  []*trace.Export
	seq      int
}

// capture starts a span capture for one statement when -trace-out is
// set (nil otherwise — tracing-off runs record nothing).
func (o *obs) capture(stmtText string) *trace.QueryTrace {
	if o == nil || o.traceOut == "" {
		return nil
	}
	o.seq++
	return trace.NewQueryTrace(fmt.Sprintf("q%d", o.seq), 0, strings.TrimSpace(stmtText))
}

// flush archives a finished capture and rewrites the Chrome trace file
// with everything captured so far, so the file is valid after every
// statement.
func (o *obs) flush(qt *trace.QueryTrace) {
	if qt == nil {
		return
	}
	o.exports = append(o.exports, qt.ExportTrace())
	f, err := os.Create(o.traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperql: trace-out: %v\n", err)
		return
	}
	defer f.Close()
	if err := trace.WriteChrome(f, trace.ClockWall, o.exports...); err != nil {
		fmt.Fprintf(os.Stderr, "skipperql: trace-out: %v\n", err)
		return
	}
	e := o.exports[len(o.exports)-1]
	fmt.Printf("-- trace: %d spans captured (chrome://tracing file %s)\n", len(e.Spans), o.traceOut)
}

func main() {
	wl := flag.String("workload", "tpch", "dataset: tpch, ssb, mrbench, nref")
	sf := flag.Int("sf", 10, "scale factor / footprint in GB")
	rows := flag.Int("rows", 20, "tuples per 1 GB object")
	engineName := flag.String("engine", "skipper", "execution engine: skipper, vanilla, local")
	cache := flag.Int("cache", 10, "MJoin cache size in objects (skipper engine)")
	segCache := flag.Int("segcache", 0, "shared segment cache budget in objects (0 = off); persists across statements, so re-running a query hits")
	prune := flag.Bool("prune", true, "enable zone-map/Bloom data skipping of segment requests")
	segFormat := flag.String("format", "v2", "segment wire format the store serves: mem, v1 or v2")
	pipeline := flag.Bool("pipeline", false, "enable the async execution pipeline: scheduler-aware prefetch plus concurrent decode workers")
	prefetchGB := flag.Int("prefetch", 4, "prefetch budget in 1 GB objects ahead of demand (with -pipeline)")
	decodeWorkers := flag.Int("decode-workers", 2, "background decode workers (with -pipeline)")
	clustered := flag.Bool("clustered", false, "sort the TPC-H date columns before segmenting (makes date predicates prunable)")
	devices := flag.Int("devices", 1, "CSD fleet size: disk groups spread across this many devices, GETs fan out per placement")
	replication := flag.String("replication", "none", "object replication across the fleet: none, full, hot or hot:N (with -devices > 1)")
	faultTransient := flag.Float64("fault-transient", 0, "probability a device transfer fails transiently and is retried, in [0,1]")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability a transfer delivers a corrupt payload — caught by checksum and re-requested — in [0,1]")
	faultStall := flag.Float64("fault-stall", 0, "probability a transfer stalls for -fault-stall-dur extra simulated time, in [0,1]")
	faultStallDur := flag.Duration("fault-stall-dur", 3*time.Second, "extra simulated latency of a stalled transfer")
	faultCap := flag.Int("fault-cap", 3, "max transient+corrupt faults charged per object (negative = unlimited; retries may exhaust)")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the deterministic fault schedule")
	crashAt := flag.Duration("crash-at", 0, "crash the device this far into each statement's simulated run (0 = never)")
	crashDowntime := flag.Duration("crash-downtime", 0, "restart the device this long after -crash-at (0 with -crash-at set = permanent crash)")
	retryAttempts := flag.Int("retry-attempts", 0, "max transfer attempts per object before the statement fails (0 = default 12)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base retry backoff, doubling per attempt up to 8s with deterministic jitter (0 = default 250ms)")
	command := flag.String("c", "", "run one statement and exit")
	traceFlag := flag.Bool("trace", false, "record simulator trace events and print a per-statement summary")
	traceOut := flag.String("trace-out", "", "capture per-statement span trees and write a Chrome trace-event JSON file")
	flag.Parse()

	var ds *workload.Dataset
	switch *wl {
	case "tpch":
		ds = workload.TPCH(0, workload.TPCHConfig{SF: *sf, RowsPerObject: *rows, Seed: 1, ClusteredDates: *clustered})
	case "ssb":
		ds = workload.SSB(0, workload.SSBConfig{SF: *sf, RowsPerObject: *rows, Seed: 1})
	case "mrbench":
		ds = workload.MRBench(0, workload.MRBenchConfig{TotalGB: *sf, RowsPerObject: *rows, Seed: 1})
	case "nref":
		ds = workload.NREF(0, workload.NREFConfig{TotalGB: *sf, RowsPerObject: *rows, Seed: 1})
	default:
		fmt.Fprintf(os.Stderr, "skipperql: unknown workload %q\n", *wl)
		os.Exit(2)
	}

	wireFmt, err := segment.ParseFormat(*segFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperql: %v\n", err)
		os.Exit(2)
	}
	// Re-encode the dataset in the chosen wire format: the store then
	// serves lazily decoded segments, scans pay (and report) real decode
	// work, and the catalog statistics come from the v2 column
	// directories. FormatMem keeps the generator's in-memory segments.
	ds, err = objstore.ReencodeDataset(ds, wireFmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperql: encode dataset: %v\n", err)
		os.Exit(1)
	}

	// The session's shared segment cache persists across statements, so a
	// re-run of a query (or one touching the same segments) is served
	// from memory instead of the device — the interactive view of the
	// cluster-wide cache.
	var sc *segcache.Cache
	if *segCache > 0 {
		sc = segcache.NewObjects(*segCache)
	}

	var pc *skipper.PipelineConfig
	if *pipeline {
		pc = &skipper.PipelineConfig{
			PrefetchBytes: int64(*prefetchGB) * 1e9,
			DecodeWorkers: *decodeWorkers,
		}
	}

	// Chaos knobs: a deterministic fault schedule applied afresh to each
	// statement's device run, plus the recovery policy that rides it out.
	var fs faultSetup
	plan := faults.Plan{
		Seed:               *faultSeed,
		TransientRate:      *faultTransient,
		StallRate:          *faultStall,
		Stall:              *faultStallDur,
		CorruptRate:        *faultCorrupt,
		MaxFaultsPerObject: *faultCap,
		CrashAt:            *crashAt,
		CrashDowntime:      *crashDowntime,
	}
	if plan.Enabled() {
		if err := plan.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "skipperql: %v\n", err)
			os.Exit(2)
		}
		fs.plan = &plan
	}
	if *retryAttempts > 0 || *retryBackoff > 0 {
		rp := skipper.DefaultRetryPolicy()
		if *retryAttempts > 0 {
			rp.MaxAttempts = *retryAttempts
		}
		if *retryBackoff > 0 {
			rp.BaseBackoff = *retryBackoff
		}
		fs.retry = rp
	}
	if *devices < 1 {
		fmt.Fprintf(os.Stderr, "skipperql: -devices %d < 1\n", *devices)
		os.Exit(2)
	}
	rep, err := layout.ParseReplication(*replication)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperql: %v\n", err)
		os.Exit(2)
	}
	fs.devices, fs.rep = *devices, rep

	planner := &sql.Planner{Catalog: ds.Catalog}
	ob := &obs{traceLog: *traceFlag, traceOut: *traceOut}
	if *command != "" {
		execute(planner, ds, *engineName, *cache, *prune, sc, pc, ob, fs, *command)
		return
	}

	fmt.Printf("skipperql — %s dataset, %d objects, engine=%s, format=%s\n", *wl, len(ds.Catalog.AllObjects()), *engineName, wireFmt)
	fmt.Printf("tables: %s\n", strings.Join(ds.Catalog.TableNames(), ", "))
	fmt.Println(`end statements with ';', '\q' quits, '\d table' describes a table, EXPLAIN SELECT ... shows the plan`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == `\q` || trimmed == "quit" || trimmed == "exit" {
			return
		}
		if strings.HasPrefix(trimmed, `\d`) {
			describe(ds, strings.TrimSpace(strings.TrimPrefix(trimmed, `\d`)))
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("… ")
			continue
		}
		stmtText := buf.String()
		buf.Reset()
		execute(planner, ds, *engineName, *cache, *prune, sc, pc, ob, fs, stmtText)
		fmt.Print("> ")
	}
}

func describe(ds *workload.Dataset, table string) {
	if table == "" {
		for _, name := range ds.Catalog.TableNames() {
			tm := ds.Catalog.MustTable(name)
			fmt.Printf("  %-12s %3d objects, %6d rows\n", name, len(tm.Objects), tm.RowCount)
		}
		return
	}
	tm, err := ds.Catalog.Table(table)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range tm.Schema.Cols {
		fmt.Printf("  %-24s %s\n", c.Name, c.Kind)
	}
}

// faultSetup carries the session's chaos and fleet configuration: the
// fault plan (nil = clean devices), the retry-policy override (nil =
// defaults), and the device-fleet shape (devices <= 1 = the classic
// single device).
type faultSetup struct {
	plan    *faults.Plan
	retry   *skipper.RetryPolicy
	devices int
	rep     layout.Replication
}

func execute(planner *sql.Planner, ds *workload.Dataset, engineName string, cache int, prune bool, sc *segcache.Cache, pc *skipper.PipelineConfig, ob *obs, fs faultSetup, stmtText string) {
	if rest, analyze, ok := sql.StripExplain(stmtText); ok {
		if analyze {
			explainAnalyzeStmt(planner, ds, prune, rest)
			return
		}
		explainStmt(planner, ds, prune, sc, pc, rest)
		return
	}
	spec, err := planner.Plan(stmtText)
	if err != nil {
		fmt.Println(err)
		return
	}
	if engineName == "local" {
		rows, err := evalPulled(ds, spec, prune)
		if err != nil {
			fmt.Println(err)
			return
		}
		printRows(rows)
		return
	}
	mode := skipper.ModeSkipper
	if engineName == "vanilla" {
		mode = skipper.ModeVanilla
	}
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	qt := ob.capture(stmtText)
	client := &skipper.Client{
		Tenant: 0, Mode: mode, Catalog: ds.Catalog,
		Queries: []skipper.QuerySpec{spec}, CacheObjects: cache,
		StatsPruning: &prune,
		SegCache:     sc,
		Pipeline:     pc,
		QTrace:       qt,
		Retry:        fs.retry,
	}
	cluster := &skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}
	if fs.devices > 1 {
		cluster.Devices = make([]csd.Config, fs.devices)
		cluster.Replication = fs.rep
	}
	if fs.plan != nil {
		// A fresh injector per statement (and per device): every statement
		// sees the same deterministic fault schedule on its own virtual
		// clock. Crashes are confined to device 0 so a replicated fleet
		// always has a live side to fail over to.
		if fs.devices > 1 {
			for d := range cluster.Devices {
				plan := *fs.plan
				if d > 0 {
					plan.CrashAt, plan.CrashDowntime = 0, 0
				}
				cluster.Devices[d].Faults = faults.MustNew(plan)
			}
		} else {
			cluster.CSD = csd.Config{Faults: faults.MustNew(*fs.plan)}
		}
	}
	var tl *trace.Log
	if ob != nil && ob.traceLog {
		tl = &trace.Log{}
		cluster.Events = tl
	}
	res, err := cluster.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	rows, err := evalPulled(ds, spec, prune)
	if err != nil {
		fmt.Println(err)
		return
	}
	printRows(rows)
	cs := res.Clients[0]
	fmt.Printf("-- %s: %.1fs virtual (processing %.1fs, stalled %.1fs), %d GETs (%d from cache, %d pruned), %d switches\n",
		mode, cs.Elapsed().Seconds(), cs.Processing.Seconds(), cs.Stalled().Seconds(),
		cs.GetsIssued, cs.CacheHits, cs.SegmentsSkipped, res.CSD.GroupSwitches)
	if fs.devices > 1 {
		parts := make([]string, len(res.Devices))
		for d, st := range res.Devices {
			parts[d] = fmt.Sprintf("d%d:%d", d, st.GetsReceived)
		}
		fmt.Printf("-- fleet: %d devices, replication %s, GETs %s\n",
			fs.devices, fs.rep, strings.Join(parts, " "))
	}
	if cs.Retries > 0 || cs.TransientFaults > 0 || cs.CorruptDeliveries > 0 || res.CSD.Crashes > 0 {
		fmt.Printf("-- faults: %d transient, %d corrupt, %d crashes; recovered with %d retries (%.1fs backoff)",
			cs.TransientFaults, cs.CorruptDeliveries, res.CSD.Crashes, cs.Retries, cs.RetryBackoff.Seconds())
		if cs.Failovers > 0 {
			fmt.Printf(", %d failovers", cs.Failovers)
		}
		fmt.Println()
	}
	if sc != nil {
		st := sc.Stats()
		fmt.Printf("-- segcache: %d objects resident (%s of %s budget), %.0f%% lifetime hit ratio\n",
			st.Entries, gb(st.BytesCached), gb(st.Budget),
			100*metrics.HitRatio(st.Hits, st.Misses))
	}
	if cs.BytesFetched > 0 {
		fmt.Printf("-- bytes: %d fetched, %d decoded, %d skipped by projection (%.0f%%), %d materialized\n",
			cs.BytesFetched, cs.BytesDecoded, cs.BytesSkippedByProjection,
			100*metrics.ProjectionRatio(cs.BytesDecoded, cs.BytesSkippedByProjection), cs.BytesMaterialized)
	}
	if pc != nil {
		pb := metrics.PipelineFrom(cs.Pipe)
		fmt.Printf("-- pipeline: %d prefetched (%d served staged, %d useful), decode %s busy / %s stalled / %s hidden (%.0f%% overlap), %v wall\n",
			cs.PrefetchIssued, cs.PrefetchServed, cs.PrefetchUseful,
			pb.DecodeBusy.Round(time.Microsecond), pb.DecodeStall.Round(time.Microsecond),
			pb.Hidden.Round(time.Microsecond), 100*pb.OverlapRatio(),
			cs.WallElapsed.Round(time.Microsecond))
	}
	if tl != nil {
		fmt.Print("-- trace summary:\n")
		fmt.Print(tl.Summary())
	}
	ob.flush(qt)
}

// explainAnalyzeStmt executes the pull plan with per-operator
// instrumentation armed and prints the tree annotated with measured
// rows/batches/bytes/time — EXPLAIN shows what the planner intends,
// EXPLAIN ANALYZE what actually flowed.
func explainAnalyzeStmt(planner *sql.Planner, ds *workload.Dataset, prune bool, stmtText string) {
	spec, err := planner.Plan(stmtText)
	if err != nil {
		fmt.Println(err)
		return
	}
	it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(ds.Store), spec.Join, prune)
	if err != nil {
		fmt.Println(err)
		return
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	engine.EnableAnalyze(it)
	start := time.Now()
	rows, err := engine.Collect(it)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(engine.ExplainAnalyze(it))
	fmt.Printf("-- executed: %d rows in %s\n", len(rows), elapsed.Round(time.Microsecond))
}

// gb renders a byte count as gigabytes.
func gb(b int64) string { return fmt.Sprintf("%.0f GB", float64(b)/1e9) }

// explainStmt plans the statement and prints the pull-engine operator
// tree, with per-scan data-skipping detail (pushed-down predicate,
// segments pruned), a whole-query pruning summary, and — when the
// session runs with a shared segment cache — how many of the plan's
// unpruned segment fetches are cache-resident right now (i.e. would be
// served without a device GET).
func explainStmt(planner *sql.Planner, ds *workload.Dataset, prune bool, sc *segcache.Cache, pc *skipper.PipelineConfig, stmtText string) {
	spec, err := planner.Plan(stmtText)
	if err != nil {
		fmt.Println(err)
		return
	}
	it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(ds.Store), spec.Join, prune)
	if err != nil {
		fmt.Println(err)
		return
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	fmt.Print(engine.Explain(it))
	total, skipped, resident, fetches := 0, 0, 0, 0
	var decodeB, skipB int64
	for _, rel := range spec.Join.Relations {
		total += len(rel.Table.Objects)
		if prune {
			skipped += stats.CountSkipped(rel.Pruner, len(rel.Table.Objects))
		}
		if sc != nil {
			for si, id := range rel.Table.Objects {
				if prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
					continue
				}
				fetches++
				if sc.Contains(id) {
					resident++
				}
			}
		}
		// Estimate the projection's block-byte effect from the column
		// directories of the unpruned segments (encoded v2 stores only).
		want := map[int]bool{}
		for _, ci := range rel.Cols {
			want[ci] = true
		}
		for si, id := range rel.Table.Objects {
			if prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
				continue
			}
			dir := ds.Store[id].Directory()
			for ci, m := range dir {
				if rel.Cols == nil || want[ci] {
					decodeB += int64(m.BlockLen)
				} else {
					skipB += int64(m.BlockLen)
				}
			}
		}
	}
	fmt.Printf("-- data skipping: %d of %d segment fetches pruned\n", skipped, total)
	if sc != nil {
		fmt.Printf("-- segcache: %d of %d unpruned segment fetches cache-resident (served without a device GET)\n",
			resident, fetches)
	}
	if decodeB+skipB > 0 {
		fmt.Printf("-- projection: decode %d of %d column-block bytes (%d skipped, %.0f%%)\n",
			decodeB, decodeB+skipB, skipB, 100*metrics.ProjectionRatio(decodeB, skipB))
	}
	if pc != nil {
		candidates := 0
		for _, rel := range spec.Join.Relations {
			for si := range rel.Table.Objects {
				if prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
					continue
				}
				candidates++
			}
		}
		fmt.Printf("-- pipeline: prefetch up to %s ahead (%d candidate segment fetches disclosed to the scheduler), %d decode workers\n",
			gb(pc.PrefetchBytes), candidates, pc.DecodeWorkers)
	}
}

// evalPulled runs the spec locally on the pull engine (no simulation),
// honouring the data-skipping toggle.
func evalPulled(ds *workload.Dataset, spec skipper.QuerySpec, prune bool) ([]tuple.Row, error) {
	it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(ds.Store), spec.Join, prune)
	if err != nil {
		return nil, err
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	return engine.Collect(it)
}

func printRows(rows []tuple.Row) {
	for i, r := range rows {
		if i >= 40 {
			fmt.Printf("... (%d rows total)\n", len(rows))
			return
		}
		fmt.Println(r)
	}
	fmt.Printf("(%d rows)\n", len(rows))
}
