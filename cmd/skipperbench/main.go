// Command skipperbench regenerates any table or figure of the paper's
// evaluation on the simulated testbed.
//
// Usage:
//
//	skipperbench -fig all            # everything (slow)
//	skipperbench -fig 7              # Figure 7 only
//	skipperbench -fig table3 -quick  # reduced-scale smoke run
//	skipperbench -prune -quick       # data-skipping report (fails on divergence)
//	skipperbench -proj -quick        # projection/format report (fails on divergence)
//	skipperbench -cache -quick       # shared-cache sweep (fails on divergence)
//	skipperbench -pipeline -quick    # async-pipeline report (fails on divergence)
//	skipperbench -format v2 -fig 9   # serve columnar (v2) encoded objects
//
// Figures: table1, 2, 3, 4, 5, 7, 8, 9, table3, 10, 11a, 11b, 11c, 12,
// selectivity (the data-skipping sweep — ours, not the paper's).
//
// -prune runs the join+agg and Q5-style selective workloads on both
// engines with data skipping on and off, reports segments fetched vs
// skipped, and exits non-zero if any pair of runs diverges in its query
// results — the CI gate for the statistics subsystem.
//
// -proj runs the projective probe queries over the same dataset encoded
// in the row-major (v1) and columnar (v2) segment formats, reports bytes
// fetched vs decoded vs skipped-by-projection plus scan-side decode
// time, and exits non-zero on any result divergence — the CI gate for
// the segment format.
//
// -cache verifies byte-identical results with the shared segment cache
// on and off — across both engines, the mem/v1/v2 segment formats,
// DOP {1,4} and pruning on/off — then sweeps the cache budget over a
// repeated-query multi-tenant workload (three tenants sharing one
// dataset), reporting device GETs, group switches, coalesced transfers,
// hits and timings per budget. Exits non-zero on any divergence — the
// CI gate for the cache layer.
//
// -pipeline verifies byte-identical results with the asynchronous
// execution pipeline (scheduler-aware prefetch + concurrent decode
// workers) on and off — across both engines, the v1/v2 wire formats,
// DOP {1,4} and pruning on/off — then reports both clocks for each
// engine with the pipeline off and on: simulated makespan (prefetch
// discloses future demand to the device scheduler) and host wall-clock
// time with the decode busy/stall/hidden breakdown (decode workers
// overlap decode with compute). Exits non-zero on any divergence — the
// CI gate for the pipeline. -rows raises per-object decode work.
//
// -faults runs the fault-injection report: first the chaos gate —
// a retryable-only fault plan (transient failures, stalls, corrupt
// payloads, per-object cap) must leave results byte-identical to the
// clean run across both engines, the v1/v2 formats, DOP {1,4} and the
// pipeline off/on, with GET conservation extended to retries — then a
// fault-rate sweep plus a crash/restart scenario reporting the measured
// degradation (makespan, extra device GETs, retries, backoff). Exits
// non-zero on any divergence — the CI gate for the fault layer.
//
// -scale runs the scale-out report: first the fleet gate — the
// repeated-query workload must produce byte-identical results on 1, 2
// and 4 devices with and without replication (hot/full) across both
// engines, the v1/v2 formats and DOP {1,4}, with GET conservation held
// per device — then measures the makespan at each fleet size and under
// a device-0 crash, with hot replication required to fail over (zero
// failed queries when the device never restarts) and to degrade
// strictly less than the unreplicated fleet. Exits non-zero on any
// divergence — the CI gate for the fleet layer.
//
// -format selects the wire format the CSD store serves for figure runs:
// mem (in-memory segments, no decode work — the default), v1, or v2.
// Simulated timings are format-independent; real runtime and the byte
// accounting are not.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	figArg := flag.String("fig", "all", "comma-separated figure ids (table1,2,3,4,5,7,8,9,table3,10,11a,11b,11c,12) or 'all'")
	quick := flag.Bool("quick", false, "use the reduced-scale configuration")
	sf := flag.Int("sf", 0, "override TPC-H scale factor")
	dop := flag.Int("dop", 0, "per-client query-execution parallelism (0 = number of CPUs, 1 = serial)")
	outFmt := flag.String("out", "table", "output format: table or csv")
	showTrace := flag.Bool("trace", false, "run a small 3-client scenario and print its event trace instead of figures")
	prune := flag.Bool("prune", false, "run the data-skipping report (segments fetched vs skipped, on/off, both engines) and exit non-zero on result divergence")
	proj := flag.Bool("proj", false, "run the projection/format report (v1 vs v2 decode bytes and time) and exit non-zero on result divergence")
	cacheSweep := flag.Bool("cache", false, "run the shared segment cache sweep (budgets × repeated-query multi-tenant workload) and exit non-zero on any cache-on/off result divergence")
	pipeline := flag.Bool("pipeline", false, "run the async-pipeline report (prefetch + decode workers, on/off, both engines; simulated and wall-clock time) and exit non-zero on any result divergence")
	faultsReport := flag.Bool("faults", false, "run the fault-injection report (chaos gate: clean vs faulted byte-identical results; then a fault-rate sweep plus crash/restart with measured degradation) and exit non-zero on any divergence")
	scaleReport := flag.Bool("scale", false, "run the scale-out report (gate: byte-identical results on 1/2/4 devices with and without replication; then fleet makespans plus device-0 crash scenarios with failover) and exit non-zero on any divergence")
	rows := flag.Int("rows", 0, "override rows per 1 GB object (more rows = more decode work per object)")
	segFormat := flag.String("format", "mem", "segment wire format served by the CSD store: mem, v1 or v2")
	flag.Parse()

	if *showTrace {
		runTraceDemo()
		return
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *sf > 0 {
		p.SF = *sf
	}
	if *rows > 0 {
		p.RowsPerObject = *rows
	}
	p.Parallelism = *dop
	if p.Parallelism <= 0 {
		p.Parallelism = runtime.NumCPU()
	}
	wireFmt, err := segment.ParseFormat(*segFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperbench: %v\n", err)
		os.Exit(2)
	}
	p.Format = wireFmt

	if *prune {
		f, err := p.PruneReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperbench: prune report: %v\n", err)
			os.Exit(1)
		}
		if *outFmt == "csv" {
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f)
		}
		return
	}

	if *proj {
		f, err := p.ProjectionReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperbench: projection report: %v\n", err)
			os.Exit(1)
		}
		if *outFmt == "csv" {
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f)
		}
		return
	}

	if *cacheSweep {
		f, err := p.CacheReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperbench: cache report: %v\n", err)
			os.Exit(1)
		}
		if *outFmt == "csv" {
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f)
		}
		return
	}

	if *pipeline {
		f, err := p.PipelineReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperbench: pipeline report: %v\n", err)
			os.Exit(1)
		}
		if *outFmt == "csv" {
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f)
		}
		return
	}

	if *faultsReport {
		f, err := p.FaultReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperbench: fault report: %v\n", err)
			os.Exit(1)
		}
		if *outFmt == "csv" {
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f)
		}
		return
	}

	if *scaleReport {
		f, err := p.ScaleReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperbench: scale report: %v\n", err)
			os.Exit(1)
		}
		if *outFmt == "csv" {
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f)
		}
		return
	}

	type gen func() (*experiments.Figure, error)
	static := func(f *experiments.Figure) gen {
		return func() (*experiments.Figure, error) { return f, nil }
	}
	all := []struct {
		id string
		fn gen
	}{
		{"table1", static(experiments.Table1())},
		{"2", static(experiments.Figure2())},
		{"3", static(experiments.Figure3())},
		{"4", p.Figure4},
		{"5", p.Figure5},
		{"7", p.Figure7},
		{"8", p.Figure8},
		{"9", p.Figure9},
		{"table3", p.Table3},
		{"10", p.Figure10},
		{"11a", p.Figure11a},
		{"11b", p.Figure11b},
		{"11c", p.Figure11c},
		{"12", p.Figure12},
		{"selectivity", p.FigureSelectivity},
	}

	want := map[string]bool{}
	runAll := *figArg == "all"
	for _, id := range strings.Split(*figArg, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}

	matched := false
	for _, e := range all {
		if !runAll && !want[e.id] {
			continue
		}
		matched = true
		f, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		if *outFmt == "csv" {
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "skipperbench: no figure matched %q\n", *figArg)
		os.Exit(2)
	}
}

// runTraceDemo executes a 3-client Skipper run and prints the structured
// event log: who requested what, when the device switched groups, and
// when each query span completed.
func runTraceDemo() {
	log := &trace.Log{}
	store := make(map[segment.ObjectID]*segment.Segment)
	var clients []*skipper.Client
	for t := 0; t < 3; t++ {
		ds := workload.TPCH(t, workload.TPCHConfig{SF: 3, RowsPerObject: 6, Seed: 1})
		ds.MergeInto(store)
		clients = append(clients, &skipper.Client{
			Tenant: t, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
			Queries:      []skipper.QuerySpec{workload.Q12(ds.Catalog)},
			CacheObjects: 8,
		})
	}
	res, err := (&skipper.Cluster{Clients: clients, Store: store, Events: log}).Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperbench: trace demo: %v\n", err)
		os.Exit(1)
	}
	log.Render(os.Stdout)
	fmt.Println()
	fmt.Print(log.Summary())
	fmt.Printf("\nmakespan %.1fs, %d switches\n", res.Makespan.Seconds(), res.CSD.GroupSwitches)
}
