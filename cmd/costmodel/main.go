// Command costmodel prints the paper's storage-tiering cost analysis:
// Table 1 (device pricing and tier fractions), Figure 2 (cost of a 100 TB
// database under seven tiering configurations) and Figure 3 (savings from
// a CSD-based cold storage tier).
//
// Usage:
//
//	costmodel [-dbtb N]
package main

import (
	"flag"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/experiments"
)

func main() {
	dbTB := flag.Float64("dbtb", 100, "database size in TB for absolute costs")
	flag.Parse()

	fmt.Println(experiments.Table1())
	fmt.Println(experiments.Figure2())
	fmt.Println(experiments.Figure3())

	if *dbTB != 100 {
		fmt.Printf("Costs for a %.0f TB database:\n", *dbTB)
		for _, cfg := range costmodel.Figure2Configs() {
			fmt.Printf("  %-10s $%.2fk\n", cfg.Name, cfg.Cost(*dbTB)/1000)
		}
	}
}
