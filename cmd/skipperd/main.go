// Command skipperd is the long-lived serving daemon over a generated
// dataset: a TCP server speaking the newline-delimited JSON protocol of
// internal/server, with per-connection tenant sessions, persistent
// per-tenant segment caches and admission control (bounded in-flight
// slots, per-tenant quotas with fair queueing, queue-depth backpressure,
// per-query deadlines).
//
// Modes:
//
//	skipperd [dataset flags] [serving flags]      start the daemon
//	skipperd -client [-tenant N] [-c STMT]        run statements against a daemon
//	skipperd -loadgen -workers N -duration D      closed-loop load, latency percentiles
//
// The dataset flags mirror skipperql, and -client prints result rows in
// skipperql's exact format (40-row truncation, "(N rows)" footer,
// diagnostics prefixed "-- "), so a scripted session can be diffed
// against a skipperql run of the same statements.
//
// Observability: -metrics-addr starts an HTTP sidecar serving the
// Prometheus exposition (/metrics) and runtime profiles (/debug/pprof);
// -trace captures a span tree for every query (clients may instead opt
// in per request with trace:true, and retrieve trees with TRACE <id>);
// -trace-dir writes each completed trace as a Chrome trace-event JSON
// file; -slow-query logs queries over a wall-time threshold to stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"context"

	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/objstore"
	"repro/internal/segment"
	"repro/internal/server"
	"repro/internal/skipper"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Mode selection.
	clientMode := flag.Bool("client", false, "connect to a daemon and run statements instead of serving")
	loadgen := flag.Bool("loadgen", false, "drive closed-loop load against a daemon and report latency percentiles")
	addr := flag.String("addr", "127.0.0.1:7878", "listen (serve) or connect (client/loadgen) address")

	// Dataset flags (serve mode) — same shape as skipperql.
	wl := flag.String("workload", "tpch", "dataset: tpch, ssb, mrbench, nref")
	sf := flag.Int("sf", 10, "scale factor / footprint in GB")
	rows := flag.Int("rows", 20, "tuples per 1 GB object")
	clustered := flag.Bool("clustered", false, "sort the TPC-H date columns before segmenting (makes date predicates prunable)")
	segFormat := flag.String("format", "v2", "segment wire format the store serves: mem, v1 or v2")

	// Engine flags (serve mode).
	engineName := flag.String("engine", "skipper", "execution engine: skipper or vanilla")
	cache := flag.Int("cache", 10, "MJoin cache size in objects (skipper engine)")
	segCache := flag.Int("segcache", 8, "per-tenant segment cache budget in objects (0 = off); persists across a tenant's connections")
	prune := flag.Bool("prune", true, "enable zone-map/Bloom data skipping of segment requests")
	pipeline := flag.Bool("pipeline", false, "enable the async execution pipeline: scheduler-aware prefetch plus concurrent decode workers")
	prefetchGB := flag.Int("prefetch", 4, "prefetch budget in 1 GB objects ahead of demand (with -pipeline)")
	decodeWorkers := flag.Int("decode-workers", 2, "background decode workers (with -pipeline)")
	devices := flag.Int("devices", 1, "CSD fleet size every query runs against: disk groups spread across this many devices")
	replication := flag.String("replication", "none", "object replication across the fleet: none, full, hot or hot:N (with -devices > 1)")

	// Fault-injection flags (serve mode): a deterministic chaos schedule
	// applied to every query's device run — the serving twin of
	// `skipperbench -faults`. Rates of zero (the defaults) disable
	// injection entirely.
	faultTransient := flag.Float64("fault-transient", 0, "probability a device transfer fails transiently and is retried, in [0,1]")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability a transfer delivers a corrupt payload — caught by checksum, quarantined and re-requested — in [0,1]")
	faultStall := flag.Float64("fault-stall", 0, "probability a transfer stalls for -fault-stall-dur extra simulated time, in [0,1]")
	faultStallDur := flag.Duration("fault-stall-dur", 3*time.Second, "extra simulated latency of a stalled transfer")
	faultCap := flag.Int("fault-cap", 3, "max transient+corrupt faults charged per object (negative = unlimited; retries may exhaust)")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the deterministic fault schedule")
	crashAt := flag.Duration("crash-at", 0, "crash the device this far into each query's simulated run (0 = never)")
	crashDowntime := flag.Duration("crash-downtime", 0, "restart the device this long after -crash-at (0 with -crash-at set = permanent crash)")
	retryAttempts := flag.Int("retry-attempts", 0, "max transfer attempts per object before the query fails (0 = default 12)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base retry backoff, doubling per attempt up to 8s with deterministic jitter (0 = default 250ms)")

	// Serving flags.
	inflight := flag.Int("inflight", 4, "queries executing concurrently, across all tenants")
	tenantSlots := flag.Int("tenant-slots", 0, "one tenant's maximum share of -inflight (0 = no per-tenant cap)")
	queueDepth := flag.Int("queue-depth", 0, "queries waiting for a slot before rejection (0 = 4x inflight, negative = no queueing)")
	maxTenants := flag.Int("tenants", 8, "acceptable tenant ids: [0, N)")
	deadline := flag.Duration("deadline", 0, "default per-query deadline (0 = unbounded); queries may override with deadline_ms")
	maxLine := flag.Int("max-line", server.DefaultMaxLineBytes, "request frame size limit in bytes")

	// Observability flags (serve mode).
	metricsAddr := flag.String("metrics-addr", "", "HTTP sidecar address serving /metrics (Prometheus) and /debug/pprof (empty = off)")
	traceAll := flag.Bool("trace", false, "capture a span tree for every query (clients can also opt in per request)")
	traceDir := flag.String("trace-dir", "", "write every completed query trace as a Chrome trace-event JSON file into this directory")
	slowQuery := flag.Duration("slow-query", 0, "log queries whose wall time (queue wait included) meets this threshold (0 = off)")

	// Client / loadgen flags.
	tenant := flag.Int("tenant", -1, "tenant to bind the session to (client/loadgen; -1 = server default)")
	command := flag.String("c", "", "statements to run, ';'-separated (client/loadgen); client mode reads stdin when empty")
	workers := flag.Int("workers", 4, "concurrent loadgen clients")
	duration := flag.Duration("duration", 5*time.Second, "loadgen run length")

	flag.Parse()

	switch {
	case *clientMode && *loadgen:
		fatalf("pick one of -client and -loadgen")
	case *clientMode:
		os.Exit(runClient(*addr, *tenant, *command))
	case *loadgen:
		os.Exit(runLoadgen(*addr, *tenant, *command, *workers, *duration))
	}

	// Serve mode.
	var ds *workload.Dataset
	switch *wl {
	case "tpch":
		ds = workload.TPCH(0, workload.TPCHConfig{SF: *sf, RowsPerObject: *rows, Seed: 1, ClusteredDates: *clustered})
	case "ssb":
		ds = workload.SSB(0, workload.SSBConfig{SF: *sf, RowsPerObject: *rows, Seed: 1})
	case "mrbench":
		ds = workload.MRBench(0, workload.MRBenchConfig{TotalGB: *sf, RowsPerObject: *rows, Seed: 1})
	case "nref":
		ds = workload.NREF(0, workload.NREFConfig{TotalGB: *sf, RowsPerObject: *rows, Seed: 1})
	default:
		fatalf("unknown workload %q", *wl)
	}
	wireFmt, err := segment.ParseFormat(*segFormat)
	if err != nil {
		fatalf("%v", err)
	}
	ds, err = objstore.ReencodeDataset(ds, wireFmt)
	if err != nil {
		fatalf("encode dataset: %v", err)
	}

	mode := skipper.ModeSkipper
	if *engineName == "vanilla" {
		mode = skipper.ModeVanilla
	}
	var pc *skipper.PipelineConfig
	if *pipeline {
		pc = &skipper.PipelineConfig{PrefetchBytes: int64(*prefetchGB) * 1e9, DecodeWorkers: *decodeWorkers}
	}
	if *devices < 1 {
		fatalf("-devices %d < 1", *devices)
	}
	rep, err := layout.ParseReplication(*replication)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := server.Config{
		Dataset:         ds,
		Mode:            mode,
		CacheObjects:    *cache,
		SegCacheObjects: *segCache,
		Prune:           *prune,
		Pipeline:        pc,
		Devices:         *devices,
		Replication:     rep,
		MaxTenants:      *maxTenants,
		Admission: server.AdmissionConfig{
			Slots:       *inflight,
			TenantSlots: *tenantSlots,
			QueueDepth:  *queueDepth,
		},
		DefaultDeadline: *deadline,
		MaxLineBytes:    *maxLine,
		Tracing:         *traceAll,
		SlowQuery:       *slowQuery,
	}
	plan := faults.Plan{
		Seed:               *faultSeed,
		TransientRate:      *faultTransient,
		StallRate:          *faultStall,
		Stall:              *faultStallDur,
		CorruptRate:        *faultCorrupt,
		MaxFaultsPerObject: *faultCap,
		CrashAt:            *crashAt,
		CrashDowntime:      *crashDowntime,
	}
	if plan.Enabled() {
		cfg.Faults = &plan
	}
	if *retryAttempts > 0 || *retryBackoff > 0 {
		rp := skipper.DefaultRetryPolicy()
		if *retryAttempts > 0 {
			rp.MaxAttempts = *retryAttempts
		}
		if *retryBackoff > 0 {
			rp.BaseBackoff = *retryBackoff
		}
		cfg.Retry = rp
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatalf("trace-dir: %v", err)
		}
		cfg.TraceSink = chromeTraceSink(*traceDir)
	}
	s, err := server.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	bound, err := s.Start(*addr)
	if err != nil {
		fatalf("%v", err)
	}
	adm := s.Admission().Config()
	fmt.Printf("skipperd: serving %s dataset (%d objects, format=%s, engine=%s) on %s\n",
		*wl, len(ds.Catalog.AllObjects()), wireFmt, mode, bound)
	fmt.Printf("skipperd: admission %d in flight (%d per tenant), queue depth %d, tenants [0,%d)\n",
		adm.Slots, adm.TenantSlots, adm.QueueDepth, *maxTenants)
	if *devices > 1 {
		fmt.Printf("skipperd: device fleet of %d, replication %s\n", *devices, rep)
	}
	if cfg.Faults != nil {
		fmt.Printf("skipperd: fault injection on (seed %d): transient %.2f, stall %.2f×%s, corrupt %.2f, cap %d, crash %s+%s\n",
			plan.Seed, plan.TransientRate, plan.StallRate, plan.Stall, plan.CorruptRate,
			plan.MaxFaultsPerObject, plan.CrashAt, plan.CrashDowntime)
	}
	if *metricsAddr != "" {
		dbg, err := s.ServeDebug(*metricsAddr)
		if err != nil {
			fatalf("metrics-addr: %v", err)
		}
		fmt.Printf("skipperd: metrics and pprof on http://%s (/metrics, /debug/pprof)\n", dbg)
	}
	if *slowQuery > 0 {
		fmt.Printf("skipperd: logging queries slower than %s to stderr\n", *slowQuery)
	}
	if *traceDir != "" {
		fmt.Printf("skipperd: writing query traces to %s\n", *traceDir)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	fmt.Println("skipperd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "skipperd: forced shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("skipperd: bye")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "skipperd: "+format+"\n", args...)
	os.Exit(2)
}

// chromeTraceSink writes each completed trace as <dir>/<trace-id>.json
// in Chrome trace-event format. Trace ids contain no path separators
// (t<tenant>-<seq>), and failures are reported, not fatal — tracing
// must never take the server down.
func chromeTraceSink(dir string) func(*trace.Export) {
	return func(e *trace.Export) {
		path := filepath.Join(dir, e.ID+".json")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperd: trace-dir: %v\n", err)
			return
		}
		defer f.Close()
		if err := trace.WriteChrome(f, trace.ClockWall, e); err != nil {
			fmt.Fprintf(os.Stderr, "skipperd: trace-dir: %s: %v\n", path, err)
		}
	}
}

// dial connects with retries so scripts can start the daemon and the
// client back to back without sleeping.
func dial(addr string) (net.Conn, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("connect %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// wire is one client session over the daemon's protocol.
type wire struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialWire(addr string) (*wire, error) {
	conn, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &wire{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}, nil
}

func (w *wire) roundTrip(req server.Request) (*server.Response, error) {
	if err := w.enc.Encode(&req); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	var resp server.Response
	if err := w.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("recv: %w", err)
	}
	return &resp, nil
}

// runClient executes statements (from -c, ';'-separated, or stdin one
// statement per line) and prints responses in skipperql's format. Exit
// status 0 only if every statement succeeded.
func runClient(addr string, tenant int, command string) int {
	w, err := dialWire(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipperd: %v\n", err)
		return 1
	}
	defer w.conn.Close()
	if tenant >= 0 {
		if resp, err := w.roundTrip(server.Request{Op: server.OpHello, Tenant: &tenant}); err != nil {
			fmt.Fprintf(os.Stderr, "skipperd: hello: %v\n", err)
			return 1
		} else if resp.Type == "error" {
			fmt.Fprintf(os.Stderr, "skipperd: hello: %s: %s\n", resp.Code, resp.Error)
			return 1
		}
	}
	status := 0
	run := func(stmt string) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return
		}
		resp, err := w.roundTrip(server.Request{SQL: stmt})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperd: %v\n", err)
			status = 1
			return
		}
		if !printResponse(resp) {
			status = 1
		}
	}
	if command != "" {
		for _, stmt := range strings.Split(command, ";") {
			run(stmt)
		}
		return status
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		run(scanner.Text())
	}
	return status
}

// printResponse renders one frame; result rows match skipperql's
// printRows byte for byte. Returns false for error frames.
func printResponse(resp *server.Response) bool {
	switch resp.Type {
	case "result":
		for i, r := range resp.Rows {
			if i >= 40 {
				fmt.Printf("... (%d rows total)\n", resp.RowCount)
				break
			}
			fmt.Println(r)
		}
		if resp.RowCount <= 40 {
			fmt.Printf("(%d rows)\n", resp.RowCount)
		}
		fmt.Printf("-- %s virtual, %s queued, %d GETs (%d from cache, %d pruned)\n",
			time.Duration(resp.VirtualUS)*time.Microsecond,
			time.Duration(resp.QueueUS)*time.Microsecond,
			resp.Gets, resp.CacheHits, resp.Pruned)
		return true
	case "explain":
		fmt.Print(resp.Plan)
		return true
	case "stats":
		out, err := json.MarshalIndent(resp.Stats, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipperd: render stats: %v\n", err)
			return false
		}
		fmt.Println(string(out))
		return true
	case "trace":
		if resp.Trace == nil {
			fmt.Fprintln(os.Stderr, "skipperd: empty trace frame")
			return false
		}
		fmt.Print(resp.Trace.Summary())
		printSpanTree(resp.Trace)
		return true
	case "hello":
		fmt.Printf("-- bound to tenant %d\n", resp.Tenant)
		return true
	case "error":
		fmt.Fprintf(os.Stderr, "skipperd: %s error: %s\n", resp.Code, resp.Error)
		return false
	default:
		fmt.Fprintf(os.Stderr, "skipperd: unexpected frame type %q\n", resp.Type)
		return false
	}
}

// printSpanTree renders a trace's spans as an indented tree in
// recording order: wall bounds always, virtual bounds when the span
// was stamped by the simulation.
func printSpanTree(e *trace.Export) {
	children := map[int][]trace.Span{}
	for _, sp := range e.Spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, sp := range children[parent] {
			line := fmt.Sprintf("%*s%s %s  wall %s..%s", 2*depth, "", sp.Cat, sp.Name,
				sp.WallStart.Round(time.Microsecond), sp.WallEnd.Round(time.Microsecond))
			if sp.HasVirt {
				line += fmt.Sprintf("  virt %s..%s",
					sp.VirtStart.Round(time.Millisecond), sp.VirtEnd.Round(time.Millisecond))
			}
			fmt.Println(line)
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
}

// runLoadgen drives closed-loop load: `workers` connections (spread
// over tenants [0, -tenants) unless -tenant pins one) each repeat the
// statement mix until the duration elapses. Latency is measured
// client-side into the same sketch the server uses, so the report and
// the STATS verb agree on definitions.
func runLoadgen(addr string, tenant int, command string, workers int, duration time.Duration) int {
	stmts := []string{"SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name"}
	if command != "" {
		stmts = stmts[:0]
		for _, stmt := range strings.Split(command, ";") {
			if stmt = strings.TrimSpace(stmt); stmt != "" {
				stmts = append(stmts, stmt)
			}
		}
	}
	if workers < 1 {
		workers = 1
	}
	var (
		sketch   metrics.LatencySketch
		mu       sync.Mutex
		done     int64
		rejected int64
		failed   int64
	)
	stop := time.Now().Add(duration)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := tenant
			if tn < 0 {
				tn = i % 4
			}
			w, err := dialWire(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skipperd: worker %d: %v\n", i, err)
				mu.Lock()
				failed++
				mu.Unlock()
				return
			}
			defer w.conn.Close()
			if _, err := w.roundTrip(server.Request{Op: server.OpHello, Tenant: &tn}); err != nil {
				fmt.Fprintf(os.Stderr, "skipperd: worker %d: hello: %v\n", i, err)
				return
			}
			for q := 0; time.Now().Before(stop); q++ {
				start := time.Now()
				resp, err := w.roundTrip(server.Request{SQL: stmts[q%len(stmts)]})
				if err != nil {
					fmt.Fprintf(os.Stderr, "skipperd: worker %d: %v\n", i, err)
					mu.Lock()
					failed++
					mu.Unlock()
					return
				}
				mu.Lock()
				switch {
				case resp.Type == "result":
					sketch.Record(time.Since(start))
					done++
				case resp.Code == server.CodeOverloaded:
					rejected++ // backpressure: expected under saturation
				default:
					failed++
					fmt.Fprintf(os.Stderr, "skipperd: worker %d: %s error: %s\n", i, resp.Code, resp.Error)
				}
				mu.Unlock()
			}
		}(i)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)
	if elapsed > duration {
		elapsed = duration // workers stop on the shared deadline
	}
	snap := sketch.Snapshot()
	fmt.Printf("loadgen: %d workers, %v: %d ok, %d rejected, %d failed, %.1f q/s\n",
		workers, duration, done, rejected, failed, float64(done)/duration.Seconds())
	fmt.Printf("loadgen: latency %s\n", snap)

	// One final STATS frame: the server-side view of the same run.
	if w, err := dialWire(addr); err == nil {
		defer w.conn.Close()
		if resp, err := w.roundTrip(server.Request{Op: server.OpStats}); err == nil && resp.Stats != nil {
			fmt.Printf("server: %d in flight, %d queued; totals admitted=%d completed=%d rejected=%d expired=%d\n",
				resp.Stats.Inflight, resp.Stats.Queued,
				resp.Stats.Total.Admitted, resp.Stats.Total.Completed,
				resp.Stats.Total.Rejected, resp.Stats.Total.Expired)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
