// Package repro_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation, plus ablation benches
// for the design choices called out in DESIGN.md. Benchmarks run at the
// Quick (reduced) scale by default so `go test -bench=.` stays fast; set
// SKIPPER_BENCH_FULL=1 to run the paper-scale configuration used to
// produce EXPERIMENTS.md.
package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/csd"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/mjoin"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

func params() experiments.Params {
	if os.Getenv("SKIPPER_BENCH_FULL") != "" {
		return experiments.Default()
	}
	return experiments.Quick()
}

func BenchmarkTable1Costs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := experiments.Table1(); len(f.Rows) != 4 {
			b.Fatalf("rows %d", len(f.Rows))
		}
	}
}

func BenchmarkFigure2TieringCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure2Data()
		if len(pts) != 7 {
			b.Fatal("bad point count")
		}
	}
}

func BenchmarkFigure3CSTSavings(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure3Data()
		last = pts[len(pts)-1].Ratio
	}
	b.ReportMetric(last, "savings-ratio")
}

func BenchmarkFigure4VanillaScaling(b *testing.B) {
	p := params()
	var pts []experiments.Figure4Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure4Data()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[4].CSD)/float64(pts[4].HDD), "slowdown-at-5-clients")
}

func BenchmarkFigure5LatencySensitivity(b *testing.B) {
	p := params()
	var pts []experiments.Figure5Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure5Data()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[len(pts)-1].Avg)/float64(pts[0].Avg), "S20-vs-S0-ratio")
}

func BenchmarkFigure7OutOfOrder(b *testing.B) {
	p := params()
	var pts []experiments.Figure7Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure7Data()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(float64(last.Vanilla)/float64(last.Skipper), "skipper-speedup-5c")
	b.ReportMetric(float64(last.Skipper)/float64(last.Ideal), "skipper-vs-ideal-5c")
}

func BenchmarkFigure8MixedWorkload(b *testing.B) {
	p := params()
	var pts map[string]experiments.Figure8Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure8Data()
		if err != nil {
			b.Fatal(err)
		}
	}
	tp := pts["TPC-H"]
	b.ReportMetric(float64(tp.Vanilla)/float64(tp.Skipper), "tpch-speedup")
}

func BenchmarkFigure9Breakdown(b *testing.B) {
	p := params()
	var pts []experiments.BreakdownPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure9Data()
		if err != nil {
			b.Fatal(err)
		}
	}
	van, skp := pts[0], pts[1]
	b.ReportMetric(100*float64(van.Switch)/float64(van.Total), "vanilla-switch-pct")
	b.ReportMetric(100*float64(skp.Switch)/float64(skp.Total), "skipper-switch-pct")
}

func BenchmarkTable3ComponentBreakdown(b *testing.B) {
	p := params()
	var pts []experiments.Table3Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Table3Data()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Exec.Seconds(), "vanilla-exec-s")
	b.ReportMetric(pts[1].Exec.Seconds(), "mjoin-exec-s")
}

func BenchmarkFigure10SwitchLatency(b *testing.B) {
	p := params()
	var pts []experiments.Figure10Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure10Data()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[3].Skipper)/float64(pts[0].Skipper), "skipper-growth-10to40s")
	b.ReportMetric(float64(pts[3].Vanilla)/float64(pts[0].Vanilla), "vanilla-growth-10to40s")
}

func BenchmarkFigure11aLayout(b *testing.B) {
	p := params()
	var pts []experiments.Figure11aPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure11aData()
		if err != nil {
			b.Fatal(err)
		}
	}
	perG := pts[2]
	b.ReportMetric(float64(perG.Vanilla)/float64(perG.Skipper), "skipper-speedup-1perG")
}

func BenchmarkFigure11bCacheSF50(b *testing.B) {
	p := params()
	var pts []experiments.CacheSweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure11bData()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].Gets), "gets-smallest-cache")
	b.ReportMetric(float64(pts[len(pts)-1].Gets), "gets-largest-cache")
}

func BenchmarkFigure11cCacheSF100(b *testing.B) {
	p := params()
	var pts []experiments.CacheSweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure11cData()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].Gets), "gets-smallest-cache")
	b.ReportMetric(float64(pts[0].Avg)/float64(pts[len(pts)-1].Avg), "slowdown-small-vs-large")
}

func BenchmarkFigure12Scheduling(b *testing.B) {
	p := params()
	var pts []experiments.Figure12Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = p.Figure12Data()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		b.ReportMetric(pt.MaxStretch, pt.Policy+"-max-stretch")
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// ablationCache picks a cache size that forces eviction pressure on Q5
// (six relations) while staying valid at reduced scale.
func ablationCache(p experiments.Params) int {
	c := p.CacheObjects / 2
	if c < 7 {
		c = 7
	}
	return c
}

// benchCacheSweepPolicy measures GET traffic for one eviction policy.
func benchCacheSweepPolicy(b *testing.B, pol mjoin.EvictionPolicy) {
	p := params()
	var gets int
	for i := 0; i < b.N; i++ {
		ds := workload.TPCH(0, workload.TPCHConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
		store := make(map[segment.ObjectID]*segment.Segment)
		ds.MergeInto(store)
		client := &skipper.Client{
			Tenant: 0, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
			Queries:      []skipper.QuerySpec{workload.Q5(ds.Catalog)},
			CacheObjects: ablationCache(p),
			Policy:       pol,
		}
		res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}).Run()
		if err != nil {
			b.Fatal(err)
		}
		gets = res.Clients[0].GetsIssued
	}
	b.ReportMetric(float64(gets), "gets")
}

func BenchmarkAblationEvictionMaxProgress(b *testing.B) {
	benchCacheSweepPolicy(b, mjoin.MaxProgress{})
}

func BenchmarkAblationEvictionMaxPending(b *testing.B) {
	benchCacheSweepPolicy(b, mjoin.MaxPending{})
}

func BenchmarkAblationEvictionLRU(b *testing.B) {
	benchCacheSweepPolicy(b, mjoin.LRU{})
}

// benchOrdering measures the effect of the in-group delivery order on
// MJoin reissues (§4.4 "What ordering within a group?").
func benchOrdering(b *testing.B, order csd.OrderKind) {
	p := params()
	var gets int
	for i := 0; i < b.N; i++ {
		ds := workload.TPCH(0, workload.TPCHConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
		store := make(map[segment.ObjectID]*segment.Segment)
		ds.MergeInto(store)
		client := &skipper.Client{
			Tenant: 0, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
			Queries:      []skipper.QuerySpec{workload.Q5(ds.Catalog)},
			CacheObjects: ablationCache(p),
		}
		cfg := csd.DefaultConfig()
		cfg.Order = order
		res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: store, CSD: cfg}).Run()
		if err != nil {
			b.Fatal(err)
		}
		gets = res.Clients[0].GetsIssued
	}
	b.ReportMetric(float64(gets), "gets")
}

func BenchmarkAblationOrderSemanticRR(b *testing.B) {
	benchOrdering(b, csd.SemanticRoundRobin)
}

func BenchmarkAblationOrderSequential(b *testing.B) {
	benchOrdering(b, csd.SequentialOrder)
}

// benchPruning measures subplan pruning under clustered selectivity:
// lineitem sorted by ship date concentrates Q12's matches in a few
// segments, so pruning skips refetching the rest (§5.2.4).
func benchPruning(b *testing.B, pruning, clustered bool) {
	p := params()
	var gets int
	for i := 0; i < b.N; i++ {
		ds := workload.TPCH(0, workload.TPCHConfig{
			SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed,
			ClusteredDates: clustered,
		})
		store := make(map[segment.ObjectID]*segment.Segment)
		ds.MergeInto(store)
		pr := pruning
		client := &skipper.Client{
			Tenant: 0, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
			Queries:      []skipper.QuerySpec{workload.Q12(ds.Catalog)},
			CacheObjects: 3, // tight: reissues unless pruned
			Pruning:      &pr,
		}
		res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}).Run()
		if err != nil {
			b.Fatal(err)
		}
		gets = res.Clients[0].GetsIssued
	}
	b.ReportMetric(float64(gets), "gets")
}

func BenchmarkAblationPruningClusteredOn(b *testing.B)  { benchPruning(b, true, true) }
func BenchmarkAblationPruningClusteredOff(b *testing.B) { benchPruning(b, false, true) }
func BenchmarkAblationPruningUniformOn(b *testing.B)    { benchPruning(b, true, false) }
func BenchmarkAblationPruningUniformOff(b *testing.B)   { benchPruning(b, false, false) }

// BenchmarkAblationSchedulers compares all four schedulers on the skewed
// layout (cumulative time).
func BenchmarkAblationSchedulers(b *testing.B) {
	p := params()
	for _, sched := range []csd.Scheduler{
		csd.NewFCFSObject(), csd.NewFCFSQuery(), csd.NewMaxQueries(), csd.NewRankBased(1),
	} {
		sched := sched
		b.Run(sched.Name(), func(b *testing.B) {
			var cum time.Duration
			for i := 0; i < b.N; i++ {
				store := make(map[segment.ObjectID]*segment.Segment)
				var clients []*skipper.Client
				for t := 0; t < 5; t++ {
					ds := workload.TPCH(t, workload.TPCHConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
					ds.MergeInto(store)
					clients = append(clients, &skipper.Client{
						Tenant: t, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
						Queries:      []skipper.QuerySpec{workload.Q12(ds.Catalog)},
						CacheObjects: p.CacheObjects,
					})
				}
				cfg := csd.DefaultConfig()
				cfg.Scheduler = sched
				res, err := (&skipper.Cluster{
					Clients: clients, Store: store, CSD: cfg,
					Layout: layout.ByTenant{Groups: []int{0, 0, 1, 1, 2}},
				}).Run()
				if err != nil {
					b.Fatal(err)
				}
				cum = 0
				for _, cs := range res.Clients {
					cum += cs.Elapsed()
				}
			}
			b.ReportMetric(cum.Seconds(), "cumulative-s")
		})
	}
}

// BenchmarkOutlookParallelStreams implements §5.2.1's outlook: raising
// the per-tenant transfer parallelism shrinks the transfer-bound portion
// of Skipper's execution substantially.
func BenchmarkOutlookParallelStreams(b *testing.B) {
	p := params()
	for _, streams := range []int{1, 2, 4, 8} {
		streams := streams
		b.Run(fmt.Sprintf("streams-%d", streams), func(b *testing.B) {
			var avg time.Duration
			for i := 0; i < b.N; i++ {
				store := make(map[segment.ObjectID]*segment.Segment)
				var clients []*skipper.Client
				for t := 0; t < 3; t++ {
					ds := workload.TPCH(t, workload.TPCHConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
					ds.MergeInto(store)
					clients = append(clients, &skipper.Client{
						Tenant: t, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
						Queries:      []skipper.QuerySpec{workload.Q12(ds.Catalog)},
						CacheObjects: p.CacheObjects,
					})
				}
				cfg := csd.DefaultConfig()
				cfg.StreamsPerTenant = streams
				res, err := (&skipper.Cluster{Clients: clients, Store: store, CSD: cfg}).Run()
				if err != nil {
					b.Fatal(err)
				}
				var sum time.Duration
				for _, cs := range res.Clients {
					sum += cs.Elapsed()
				}
				avg = sum / time.Duration(len(res.Clients))
			}
			b.ReportMetric(avg.Seconds(), "avg-exec-s")
		})
	}
}

// BenchmarkMJoinEngine measures raw state-manager throughput (real time,
// not virtual): subplans executed per second on an in-memory source.
func BenchmarkMJoinEngine(b *testing.B) {
	p := params()
	ds := workload.TPCH(0, workload.TPCHConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
	spec := workload.Q5(ds.Catalog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := &memSource{store: ds.Store}
		res, err := mjoin.Run(spec.Join, mjoin.DefaultConfig(len(spec.Join.Objects())), src)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.SubplansExecuted == 0 {
			b.Fatal("no subplans executed")
		}
	}
}

// BenchmarkPullPlanRowVsBatch drives the classical engine's full Q5 join
// chain (multi-segment scans feeding a five-way hash-join chain) over an
// in-memory store, comparing the row-at-a-time Iterator protocol against
// the batch-at-a-time BatchIterator protocol on the same batched core.
// The local predicates are dropped so the join carries real row traffic
// at the reduced Quick scale (the filtered plans select zero rows there).
func BenchmarkPullPlanRowVsBatch(b *testing.B) {
	p := params()
	ds := workload.TPCH(0, workload.TPCHConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
	q5 := workload.Q5(ds.Catalog)
	spec := skipper.QuerySpec{Join: &mjoin.Query{ID: q5.Join.ID, Joins: q5.Join.Joins}}
	for _, r := range q5.Join.Relations {
		spec.Join.Relations = append(spec.Join.Relations, mjoin.Relation{Table: r.Table})
	}
	ctx := engine.NewTestCtx(ds.Store)
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it, err := skipper.BuildPullPlan(ctx, spec.Join)
			if err != nil {
				b.Fatal(err)
			}
			if err := it.Open(); err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				_, ok, err := it.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				n++
			}
			it.Close()
			if n == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it, err := skipper.BuildPullPlan(ctx, spec.Join)
			if err != nil {
				b.Fatal(err)
			}
			bi := engine.AsBatch(it)
			if err := bi.Open(); err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				batch, ok, err := bi.NextBatch()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				n += batch.Len()
			}
			bi.Close()
			if n == 0 {
				b.Fatal("no rows")
			}
		}
	})
}

// BenchmarkPullPlanParallel drives the full Q5 join chain (the same plan
// as BenchmarkPullPlanRowVsBatch, batch protocol) at DOP=1 versus
// DOP=NumCPU: the morsel-driven parallel mode versus the serial batch
// core on identical data, with the result cardinality cross-checked
// between the two.
func BenchmarkPullPlanParallel(b *testing.B) {
	p := params()
	ds := workload.TPCH(0, workload.TPCHConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
	q5 := workload.Q5(ds.Catalog)
	spec := skipper.QuerySpec{Join: &mjoin.Query{ID: q5.Join.ID, Joins: q5.Join.Joins}}
	for _, r := range q5.Join.Relations {
		spec.Join.Relations = append(spec.Join.Relations, mjoin.Relation{Table: r.Table})
	}
	ctx := engine.NewTestCtx(ds.Store)
	drainAt := func(b *testing.B, dop int) int {
		it, err := skipper.BuildPullPlan(ctx, spec.Join)
		if err != nil {
			b.Fatal(err)
		}
		bi := engine.AsBatch(engine.Parallelize(it, dop))
		if err := bi.Open(); err != nil {
			b.Fatal(err)
		}
		defer bi.Close()
		n := 0
		for {
			batch, ok, err := bi.NextBatch()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				return n
			}
			n += batch.Len()
		}
	}
	dops := []int{1, runtime.NumCPU()}
	if dops[1] == 1 {
		dops[1] = 4 // single-core machine: still report the overhead case
	}
	want := 0
	for _, dop := range dops {
		dop := dop
		b.Run(fmt.Sprintf("dop-%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := drainAt(b, dop)
				if n == 0 {
					b.Fatal("no rows")
				}
				if want == 0 {
					want = n
				} else if n != want {
					b.Fatalf("dop %d produced %d rows, serial produced %d", dop, n, want)
				}
			}
		})
	}
}

// memSource is an immediate in-memory mjoin.Source.
type memSource struct {
	store map[segment.ObjectID]*segment.Segment
	queue []*segment.Segment
}

func (s *memSource) Request(objs []segment.ObjectID) {
	for _, id := range objs {
		s.queue = append(s.queue, s.store[id])
	}
}

func (s *memSource) NextArrival() (*segment.Segment, error) {
	sg := s.queue[0]
	s.queue = s.queue[1:]
	return sg, nil
}

// fmt import keepalive for error paths in future edits.
var _ = fmt.Sprintf
