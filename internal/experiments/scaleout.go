package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/csd"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/objstore"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// This file is the evaluation of the multi-device fleet behind
// `skipperbench -scale`, which doubles as the CI scale-out gate: the
// repeated-query multi-tenant workload must produce byte-identical
// results on 1, 2 and 4 devices, with and without replication, across
// both engines, the v1/v2 wire formats and DOP {1,4}, and the
// per-device GET-conservation invariant must hold on every clean run.
// The measurement half reports the makespan at each fleet size, then
// crashes device 0 of a two-device fleet and compares the degradation
// with and without hot replication — the replicated fleet must fail
// over (zero failed queries under a permanent crash) and degrade
// strictly less than the unreplicated one.

// scaleSpec is one fleet configuration of the scale-out gate or sweep.
type scaleSpec struct {
	// devices is the fleet size; 1 runs the classic single-CSD path.
	devices int
	// rep is the replication policy (meaningful with devices > 1).
	rep layout.Replication
	// plan is the fault plan for device 0; the crash is confined there
	// so a replicated fleet always has a live side. A zero plan runs
	// the fleet clean.
	plan faults.Plan
	// pipeline toggles the async pipeline. The gate runs it on (the
	// prefetcher's device fan-out is under test); the sweep runs it off
	// so a crash is recovered on the demand path — the prefetcher
	// quietly re-routes around a dead device, which would hide the
	// failovers the sweep measures.
	pipeline bool
}

func (sp scaleSpec) String() string {
	s := fmt.Sprintf("%dx %s", sp.devices, sp.rep)
	if sp.plan.Enabled() {
		s += " faulted"
	}
	return s
}

// runScaleCluster executes the repeated-query multi-tenant workload
// (the cache sweep's shape) against the given fleet. Faults land on
// device 0 only; the returned injectors are whatever the spec
// installed.
func (p Params) runScaleCluster(ds *workload.Dataset, mode skipper.Mode, dop int, sp scaleSpec, keep bool) (*skipper.RunResult, []*faults.Injector, error) {
	store := make(mapStore)
	ds.MergeInto(store)
	prune := true
	var pc *skipper.PipelineConfig
	if sp.pipeline {
		pc = p.pipelineConfig()
	}
	clients := make([]*skipper.Client, cacheSweepClients)
	for t := range clients {
		clients[t] = &skipper.Client{
			Tenant:       t,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      workload.MultiPass(ds.Catalog, cacheSweepPasses),
			CacheObjects: p.CacheObjects,
			StatsPruning: &prune,
			Parallelism:  dop,
			KeepResults:  keep,
			Pipeline:     pc,
			Retry:        faultRetryPolicy(),
		}
	}
	cfg := csd.DefaultConfig()
	cfg.GroupSwitch = p.GroupSwitch
	cfg.Bandwidth = p.Bandwidth
	cl := &skipper.Cluster{
		Clients:     clients,
		Layout:      layout.RoundRobinObjects{NumGroups: cacheSweepGroups},
		Store:       store,
		SharedCache: segcache.NewObjects(p.CacheObjects),
	}
	var injs []*faults.Injector
	if sp.devices <= 1 {
		if sp.plan.Enabled() {
			inj, err := faults.New(sp.plan)
			if err != nil {
				return nil, nil, err
			}
			cfg.Faults = inj
			injs = append(injs, inj)
		}
		cl.CSD = cfg
	} else {
		cl.Devices = make([]csd.Config, sp.devices)
		cl.Replication = sp.rep
		for d := range cl.Devices {
			dc := cfg
			dc.Faults = nil
			plan := sp.plan
			if d > 0 {
				plan.CrashAt, plan.CrashDowntime = 0, 0
			}
			if plan.Enabled() {
				inj, err := faults.New(plan)
				if err != nil {
					return nil, nil, err
				}
				dc.Faults = inj
				injs = append(injs, inj)
			}
			cl.Devices[d] = dc
		}
	}
	res, err := cl.Run()
	return res, injs, err
}

// checkFleetAccounting enforces the per-device GET-conservation
// invariant of a clean run: for every device d and tenant t, the GETs
// device d attributed to tenant t equal the demand GETs the tenant's
// proxy routed to d plus the prefetcher's GETs on its behalf. It also
// requires every device to have seen traffic, so a placement bug that
// funnels the whole workload through one device cannot pass vacuously.
func checkFleetAccounting(res *skipper.RunResult) error {
	for d, st := range res.Devices {
		for _, cs := range res.Clients {
			want := cs.DeviceGets[d] + cs.PrefetchDeviceGets[d]
			if st.GetsByTenant[cs.Tenant] != want {
				return fmt.Errorf("device %d tenant %d: device saw %d GETs, client ledgers say %d (demand %d + prefetch %d)",
					d, cs.Tenant, st.GetsByTenant[cs.Tenant], want, cs.DeviceGets[d], cs.PrefetchDeviceGets[d])
			}
		}
		if st.GetsReceived == 0 {
			return fmt.Errorf("device %d received no GETs; the fleet gate is vacuous", d)
		}
	}
	return nil
}

// VerifyScaleIdentical is the scale-out gate: for both engine modes and
// DOP {1,4} over the given dataset, the workload must produce
// byte-identical results on a single device and on every fleet
// configuration (2 devices, 2 devices + hot replication, 4 devices,
// 4 devices + full replication), satisfy per-device GET conservation,
// leave no cache pins behind, and route traffic to every device.
func (p Params) VerifyScaleIdentical(ds *workload.Dataset) error {
	fleets := []scaleSpec{
		{devices: 2, pipeline: true},
		{devices: 2, rep: layout.Replication{Kind: layout.ReplicateHot}, pipeline: true},
		{devices: 4, pipeline: true},
		{devices: 4, rep: layout.Replication{Kind: layout.ReplicateFull}, pipeline: true},
	}
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		for _, dop := range []int{1, 4} {
			tag := fmt.Sprintf("%s dop=%d", mode, dop)
			base, _, err := p.runScaleCluster(ds, mode, dop, scaleSpec{devices: 1, pipeline: true}, true)
			if err != nil {
				return fmt.Errorf("%s single device: %w", tag, err)
			}
			if err := checkFleetAccounting(base); err != nil {
				return fmt.Errorf("%s single device: %w", tag, err)
			}
			for _, sp := range fleets {
				ftag := fmt.Sprintf("%s %s", tag, sp)
				res, _, err := p.runScaleCluster(ds, mode, dop, sp, true)
				if err != nil {
					return fmt.Errorf("%s: %w", ftag, err)
				}
				if len(res.Devices) != sp.devices {
					return fmt.Errorf("%s: %d device stat blocks, want %d", ftag, len(res.Devices), sp.devices)
				}
				if err := compareRunResults(res, base); err != nil {
					return fmt.Errorf("%s: fleet results diverge from single device: %w", ftag, err)
				}
				if err := checkFleetAccounting(res); err != nil {
					return fmt.Errorf("%s: %w", ftag, err)
				}
				if res.Cache != nil && res.Cache.PinnedBytes != 0 {
					return fmt.Errorf("%s: %d bytes still pinned after the run", ftag, res.Cache.PinnedBytes)
				}
			}
		}
	}
	return nil
}

// ScalePoint is one measured configuration of the scale-out sweep.
type ScalePoint struct {
	// Label names the scenario.
	Label string
	// Devices / Rep describe the fleet.
	Devices int
	Rep     layout.Replication
	// Makespan / AvgClient are simulated times; degradation is growth
	// over the matching clean row.
	Makespan  time.Duration
	AvgClient time.Duration
	// DeviceGets is each device's received GET count, indexed by id.
	DeviceGets []int
	// Crashes counts crash windows entered across the fleet.
	Crashes int
	// Failovers / Retries / Backoff aggregate the clients' recovery.
	Failovers int
	Retries   int
	Backoff   time.Duration
}

// measureScale runs one scenario and digests it into a point.
func (p Params) measureScale(ds *workload.Dataset, label string, sp scaleSpec) (ScalePoint, error) {
	dop := p.Parallelism
	if dop < 1 {
		dop = 1
	}
	res, _, err := p.runScaleCluster(ds, skipper.ModeSkipper, dop, sp, false)
	if err != nil {
		return ScalePoint{}, err
	}
	pt := ScalePoint{
		Label:     label,
		Devices:   sp.devices,
		Rep:       sp.rep,
		Makespan:  res.Makespan,
		AvgClient: avgElapsed(res),
	}
	for _, st := range res.Devices {
		pt.DeviceGets = append(pt.DeviceGets, st.GetsReceived)
		pt.Crashes += st.Crashes
	}
	for _, cs := range res.Clients {
		pt.Failovers += cs.Failovers
		pt.Retries += cs.Retries
		pt.Backoff += cs.RetryBackoff
	}
	return pt, nil
}

// scaleCrashPlan is the sweep's device-0 crash: the device dies at 60 s
// of simulated time and restarts after downtime (0 = never).
func scaleCrashPlan(downtime time.Duration) faults.Plan {
	return faults.Plan{Seed: faultSweepSeed, CrashAt: 60 * time.Second, CrashDowntime: downtime}
}

// ScaleSweepData verifies the scale-out gate on the v1 and v2 wire
// formats, then measures the skipper engine on growing fleets and under
// a device-0 crash with and without hot replication. Beyond the gate it
// enforces the failover criteria: the replicated crash runs must
// actually fail over, the permanently-crashed replicated fleet must
// finish every query, and hot replication must degrade strictly less
// than the unreplicated crash+restart fleet.
func (p Params) ScaleSweepData() ([]ScalePoint, error) {
	base := p.clusteredDataset()
	for _, f := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds, err := objstore.ReencodeDataset(base, f)
		if err != nil {
			return nil, fmt.Errorf("format %v: %w", f, err)
		}
		if err := p.VerifyScaleIdentical(ds); err != nil {
			return nil, fmt.Errorf("format %v: %w", f, err)
		}
	}
	mf := p.Format
	if mf == segment.FormatMem {
		mf = segment.FormatV2
	}
	ds, err := objstore.ReencodeDataset(base, mf)
	if err != nil {
		return nil, err
	}
	hot := layout.Replication{Kind: layout.ReplicateHot}
	// The outage is long enough that sleeping it out (the unreplicated
	// fleet's only recourse) costs more than the extra group switches
	// the surviving device pays to serve the dead one's groups.
	const outage = 120 * time.Second
	scenarios := []struct {
		label string
		spec  scaleSpec
	}{
		{"1 device", scaleSpec{devices: 1}},
		{"2 devices", scaleSpec{devices: 2}},
		{"4 devices", scaleSpec{devices: 4}},
		{"2 devices hot repl", scaleSpec{devices: 2, rep: hot}},
		{"2 devices, d0 down 120s", scaleSpec{devices: 2, plan: scaleCrashPlan(outage)}},
		{"2 devices hot repl, d0 down 120s", scaleSpec{devices: 2, rep: hot, plan: scaleCrashPlan(outage)}},
		{"2 devices hot repl, d0 dead", scaleSpec{devices: 2, rep: hot, plan: scaleCrashPlan(0)}},
	}
	pts := make([]ScalePoint, 0, len(scenarios))
	for _, sc := range scenarios {
		pt, err := p.measureScale(ds, sc.label, sc.spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.label, err)
		}
		pts = append(pts, pt)
	}
	// The crash scenarios must not pass vacuously, and replication must
	// pay for itself: each crash run's degradation is measured against
	// the clean fleet with the same replication policy, and failover
	// must beat waiting out the outage.
	cleanNone, cleanHot, crashNone, crashHot, crashDead := pts[1], pts[3], pts[4], pts[5], pts[6]
	if crashNone.Crashes == 0 || crashHot.Crashes == 0 || crashDead.Crashes == 0 {
		return nil, fmt.Errorf("scale sweep: a crash scenario recorded no device crash; the sweep is vacuous")
	}
	if crashHot.Failovers == 0 || crashDead.Failovers == 0 {
		return nil, fmt.Errorf("scale sweep: replicated crash runs recorded no failovers (hot=%d dead=%d)", crashHot.Failovers, crashDead.Failovers)
	}
	degNone := crashNone.Makespan - cleanNone.Makespan
	degHot := crashHot.Makespan - cleanHot.Makespan
	if degHot >= degNone {
		return nil, fmt.Errorf("scale sweep: hot replication degraded %v under the outage, not strictly better than unreplicated %v", degHot, degNone)
	}
	return pts, nil
}

// ScaleReport renders ScaleSweepData (`skipperbench -scale`).
func (p Params) ScaleReport() (*Figure, error) {
	pts, err := p.ScaleSweepData()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "Scale-out sweep",
		Title: fmt.Sprintf("Device fleet scale-out and failover (%d tenants × %d passes, round-robin layout over %d groups, skipper engine, demand path; crash scenarios kill device 0 at 60s)",
			cacheSweepClients, cacheSweepPasses, cacheSweepGroups),
		Columns: []string{
			"scenario", "devices", "replication", "makespan (s)", "avg client (s)",
			"device GETs", "crashes", "failovers", "retries", "backoff (s)",
		},
	}
	var clean1, clean2, clean2hot time.Duration
	for i, pt := range pts {
		switch pt.Label {
		case "1 device":
			clean1 = pt.Makespan
		case "2 devices":
			clean2 = pt.Makespan
		case "2 devices hot repl":
			clean2hot = pt.Makespan
		}
		// Clean fleet rows show speed-up over one device; crash rows show
		// degradation over the clean fleet with the same replication.
		base, vs := clean1, ""
		if pt.crashRow() {
			base, vs = clean2, " vs 2 dev"
			if pt.Rep.Kind == layout.ReplicateHot {
				base, vs = clean2hot, " vs 2 dev hot"
			}
		}
		makespan := fmt.Sprintf("%.1f", pt.Makespan.Seconds())
		if i > 0 && base > 0 {
			makespan += fmt.Sprintf(" (%+.0f%%%s)", 100*(pt.Makespan.Seconds()-base.Seconds())/base.Seconds(), vs)
		}
		gets := make([]string, len(pt.DeviceGets))
		for d, g := range pt.DeviceGets {
			gets[d] = fmt.Sprintf("d%d:%d", d, g)
		}
		f.Rows = append(f.Rows, []string{
			pt.Label,
			fmt.Sprintf("%d", pt.Devices),
			pt.Rep.String(),
			makespan,
			fmt.Sprintf("%.1f", pt.AvgClient.Seconds()),
			strings.Join(gets, " "),
			fmt.Sprintf("%d", pt.Crashes),
			fmt.Sprintf("%d", pt.Failovers),
			fmt.Sprintf("%d", pt.Retries),
			fmt.Sprintf("%.1f", pt.Backoff.Seconds()),
		})
	}
	f.Notes = append(f.Notes,
		"results verified byte-identical 1 vs 2 vs 4 devices × replication (none/hot/full) across engines, formats (v1/v2) and DOP {1,4}",
		"per device and tenant, GETs the device attributes to the tenant == the tenant's demand GETs routed there + prefetch GETs on its behalf",
		"crash rows: device 0 dies at 60s; 'd0 dead' never restarts — hot replication finished every query by failing over, and its outage degradation (vs its own clean fleet) is gated strictly below the unreplicated fleet's",
	)
	return f, nil
}

// crashRow reports whether the point ran a fault plan (its degradation
// is measured against the clean fleet of the same size).
func (pt ScalePoint) crashRow() bool { return pt.Crashes > 0 || pt.Failovers > 0 }
