package experiments

import (
	"fmt"
	"time"

	"repro/internal/csd"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mjoin"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// This file is the evaluation of the statistics subsystem (zone maps +
// Bloom filters): a selectivity sweep showing how predicate width
// translates into skipped CSD requests, and the pruning report behind
// `skipperbench -prune`, which doubles as the CI divergence check —
// every data point is produced twice, with data skipping on and off, and
// the two result sets must match byte for byte.

// SelectivityPoint is one predicate width of the data-skipping sweep.
type SelectivityPoint struct {
	// Window names the l_shipdate range.
	Window string
	// Objects is the query's input footprint in segments.
	Objects int
	// Skipped is how many segment requests data skipping avoided.
	Skipped int
	// GetsPruned / GetsUnpruned count the GETs the skipper client issued
	// with data skipping on / off (including MJoin reissues).
	GetsPruned, GetsUnpruned int
	// TimePruned / TimeUnpruned are the client's virtual execution
	// times.
	TimePruned, TimeUnpruned time.Duration
}

// selectivityWindows are the swept l_shipdate ranges, widest first.
var selectivityWindows = []struct {
	name   string
	lo, hi string
}{
	{"7 years", "1992-01-01", "1998-12-31"},
	{"1 year", "1994-01-01", "1994-12-31"},
	{"3 months", "1994-01-01", "1994-03-31"},
	{"1 month", "1994-01-01", "1994-01-31"},
	{"1 week", "1994-01-01", "1994-01-07"},
}

// clusteredDataset builds the date-clustered TPC-H tenant the pruning
// experiments run on (clustering is what gives zone maps their power;
// see workload.TPCHConfig.ClusteredDates).
func (p Params) clusteredDataset() *workload.Dataset {
	return workload.TPCH(0, workload.TPCHConfig{
		SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed, ClusteredDates: true,
	})
}

// runPruneToggle executes the spec on a single client of the given mode
// with data skipping set per prune, returning the client stats.
func (p Params) runPruneToggle(ds *workload.Dataset, spec skipper.QuerySpec, mode skipper.Mode, prune bool) (*skipper.ClientStats, error) {
	store := make(mapStore)
	ds.MergeInto(store)
	pr := prune
	client := &skipper.Client{
		Tenant: 0, Mode: mode, Catalog: ds.Catalog,
		Queries:      []skipper.QuerySpec{spec},
		CacheObjects: p.CacheObjects,
		StatsPruning: &pr,
		Parallelism:  p.Parallelism,
	}
	cfg := csd.DefaultConfig()
	cfg.GroupSwitch = p.GroupSwitch
	cfg.Bandwidth = p.Bandwidth
	res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, CSD: cfg, Store: store}).Run()
	if err != nil {
		return nil, err
	}
	return res.Clients[0], nil
}

// SelectivitySweepData sweeps the predicate window of a Q12-style join
// over the date-clustered dataset on the skipper engine, with data
// skipping on and off, verifying byte-identical results at every point.
func (p Params) SelectivitySweepData() ([]SelectivityPoint, error) {
	ds, err := p.encoded(p.clusteredDataset())
	if err != nil {
		return nil, err
	}
	var out []SelectivityPoint
	for _, w := range selectivityWindows {
		spec := workload.QShipdateWindow(ds.Catalog, w.lo, w.hi)
		if err := verifyPruneIdentical(ds, spec); err != nil {
			return nil, fmt.Errorf("window %q: %w", w.name, err)
		}
		on, err := p.runPruneToggle(ds, spec, skipper.ModeSkipper, true)
		if err != nil {
			return nil, fmt.Errorf("window %q pruned: %w", w.name, err)
		}
		off, err := p.runPruneToggle(ds, spec, skipper.ModeSkipper, false)
		if err != nil {
			return nil, fmt.Errorf("window %q unpruned: %w", w.name, err)
		}
		if on.Rows != off.Rows {
			return nil, fmt.Errorf("window %q: pruned run returned %d rows, unpruned %d", w.name, on.Rows, off.Rows)
		}
		out = append(out, SelectivityPoint{
			Window:       w.name,
			Objects:      len(spec.Join.Objects()),
			Skipped:      on.SegmentsSkipped,
			GetsPruned:   on.GetsIssued,
			GetsUnpruned: off.GetsIssued,
			TimePruned:   on.Elapsed(),
			TimeUnpruned: off.Elapsed(),
		})
	}
	return out, nil
}

// FigureSelectivity renders the selectivity sweep.
func (p Params) FigureSelectivity() (*Figure, error) {
	pts, err := p.SelectivitySweepData()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Selectivity sweep",
		Title:   "CSD GETs vs predicate width, data skipping on/off (Q12-style join, date-clustered, skipper engine)",
		Columns: []string{"l_shipdate window", "input objects", "skipped", "GETs (skip on)", "GETs (skip off)", "avoided", "exec on (s)", "exec off (s)"},
		Notes:   []string{"results verified byte-identical with data skipping on and off at every point, both engines"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{
			pt.Window, fmt.Sprint(pt.Objects), fmt.Sprint(pt.Skipped),
			fmt.Sprint(pt.GetsPruned), fmt.Sprint(pt.GetsUnpruned),
			fmt.Sprintf("%.0f%%", 100*metrics.PruneRatio(pt.GetsPruned, pt.Skipped)),
			secs(pt.TimePruned), secs(pt.TimeUnpruned),
		})
	}
	return f, nil
}

// PruneReportPoint is one query × engine row of the pruning report.
type PruneReportPoint struct {
	Query        string
	Mode         skipper.Mode
	Objects      int
	Skipped      int
	GetsPruned   int
	GetsUnpruned int
	TimePruned   time.Duration
	TimeUnpruned time.Duration
}

// PruneReportData runs the join+agg and Q5-style selective workloads on
// both engines with data skipping on and off. It fails — rather than
// report — if any pair of runs diverges in its results, which is what
// lets CI use `skipperbench -prune` as a correctness gate.
func (p Params) PruneReportData() ([]PruneReportPoint, error) {
	ds, err := p.encoded(p.clusteredDataset())
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		spec skipper.QuerySpec
	}{
		{"join+agg (shipdate 1994-01)", workload.QShipdateWindow(ds.Catalog, "1994-01-01", "1994-01-31")},
		{"Q5 selective", workload.Q5Selective(ds.Catalog)},
	}
	var out []PruneReportPoint
	for _, q := range queries {
		if err := verifyPruneIdentical(ds, q.spec); err != nil {
			return nil, fmt.Errorf("%s: %w", q.name, err)
		}
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			on, err := p.runPruneToggle(ds, q.spec, mode, true)
			if err != nil {
				return nil, fmt.Errorf("%s %s pruned: %w", q.name, mode, err)
			}
			off, err := p.runPruneToggle(ds, q.spec, mode, false)
			if err != nil {
				return nil, fmt.Errorf("%s %s unpruned: %w", q.name, mode, err)
			}
			if on.Rows != off.Rows {
				return nil, fmt.Errorf("%s %s: pruned run returned %d rows, unpruned %d", q.name, mode, on.Rows, off.Rows)
			}
			out = append(out, PruneReportPoint{
				Query: q.name, Mode: mode,
				Objects: len(q.spec.Join.Objects()), Skipped: on.SegmentsSkipped,
				GetsPruned: on.GetsIssued, GetsUnpruned: off.GetsIssued,
				TimePruned: on.Elapsed(), TimeUnpruned: off.Elapsed(),
			})
		}
	}
	return out, nil
}

// PruneReport renders PruneReportData (the `skipperbench -prune` output).
func (p Params) PruneReport() (*Figure, error) {
	pts, err := p.PruneReportData()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Pruning report",
		Title:   "Segments fetched vs skipped with data skipping on/off (date-clustered dataset)",
		Columns: []string{"query", "engine", "input objects", "skipped", "GETs (skip on)", "GETs (skip off)", "avoided", "exec on (s)", "exec off (s)"},
		Notes:   []string{"results verified byte-identical with data skipping on and off, both engines"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{
			pt.Query, pt.Mode.String(), fmt.Sprint(pt.Objects), fmt.Sprint(pt.Skipped),
			fmt.Sprint(pt.GetsPruned), fmt.Sprint(pt.GetsUnpruned),
			fmt.Sprintf("%.0f%%", 100*metrics.PruneRatio(pt.GetsPruned, pt.Skipped)),
			secs(pt.TimePruned), secs(pt.TimeUnpruned),
		})
	}
	return f, nil
}

// verifyPruneIdentical executes the spec with data skipping on and off,
// on both the pull engine and the MJoin path, over the in-memory store,
// and requires the four result sets to be byte-identical. The probe
// queries end in ORDER BY over unique keys with integer aggregates, so
// exact equality is the correct bar in every mode.
func verifyPruneIdentical(ds *workload.Dataset, spec skipper.QuerySpec) error {
	var want []tuple.Row
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		for _, prune := range []bool{true, false} {
			rows, err := evalLocal(ds, spec, mode, prune)
			if err != nil {
				return fmt.Errorf("%s prune=%v: %w", mode, prune, err)
			}
			if want == nil {
				want = rows
				continue
			}
			if err := equalRows(want, rows); err != nil {
				return fmt.Errorf("%s prune=%v diverges: %w", mode, prune, err)
			}
		}
	}
	return nil
}

// evalLocal runs the spec without simulation: the pull plan for
// ModeVanilla, mjoin.Run over an immediate source for ModeSkipper, with
// data skipping per prune.
func evalLocal(ds *workload.Dataset, spec skipper.QuerySpec, mode skipper.Mode, prune bool) ([]tuple.Row, error) {
	if mode == skipper.ModeVanilla {
		ctx := engine.NewTestCtx(ds.Store)
		it, err := skipper.BuildPullPlanPruned(ctx, spec.Join, prune)
		if err != nil {
			return nil, err
		}
		if spec.Shape != nil {
			it = spec.Shape(it)
		}
		return engine.Collect(it)
	}
	cfg := mjoin.DefaultConfig(len(spec.Join.Objects()))
	cfg.StatsPruning = prune
	res, err := mjoin.Run(spec.Join, cfg, &immediateSource{store: ds.Store})
	if err != nil {
		return nil, err
	}
	if spec.Shape == nil {
		return res.Rows, nil
	}
	return engine.Collect(spec.Shape(engine.NewValues(res.Schema, res.Rows)))
}

// equalRows requires two result sets to be identical, row for row.
func equalRows(a, b []tuple.Row) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d rows vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return fmt.Errorf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
	return nil
}

// immediateSource is an mjoin.Source that serves requests instantly from
// memory, in request order.
type immediateSource struct {
	store map[segment.ObjectID]*segment.Segment
	queue []*segment.Segment
}

// Request implements mjoin.Source.
func (s *immediateSource) Request(objs []segment.ObjectID) {
	for _, id := range objs {
		s.queue = append(s.queue, s.store[id])
	}
}

// NextArrival implements mjoin.Source.
func (s *immediateSource) NextArrival() (*segment.Segment, error) {
	sg := s.queue[0]
	s.queue = s.queue[1:]
	return sg, nil
}
