package experiments

import (
	"strings"
	"testing"
)

// TestAllFiguresRender runs every experiment at Quick scale through its
// rendering path — the same table-generation code cmd/skipperbench uses.
func TestAllFiguresRender(t *testing.T) {
	p := Quick()
	static := []*Figure{Table1(), Figure2(), Figure3()}
	for _, f := range static {
		if len(f.Rows) == 0 || !strings.Contains(f.String(), f.ID) {
			t.Fatalf("%s rendered badly:\n%s", f.ID, f)
		}
	}
	dynamic := []struct {
		name string
		fn   func() (*Figure, error)
	}{
		{"fig4", p.Figure4},
		{"fig5", p.Figure5},
		{"fig7", p.Figure7},
		{"fig8", p.Figure8},
		{"fig9", p.Figure9},
		{"table3", p.Table3},
		{"fig10", p.Figure10},
		{"fig11a", p.Figure11a},
		{"fig11b", p.Figure11b},
		{"fig11c", p.Figure11c},
		{"fig12", p.Figure12},
	}
	for _, d := range dynamic {
		f, err := d.fn()
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		out := f.String()
		if len(f.Rows) == 0 {
			t.Fatalf("%s has no rows", d.name)
		}
		if len(f.Columns) == 0 || !strings.Contains(out, f.ID) {
			t.Fatalf("%s rendered badly:\n%s", d.name, out)
		}
		// Every row must have as many cells as columns.
		for _, row := range f.Rows {
			if len(row) != len(f.Columns) {
				t.Fatalf("%s: row arity %d != %d columns", d.name, len(row), len(f.Columns))
			}
		}
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure2()
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(f.Rows) {
		t.Fatalf("csv lines %d", len(lines))
	}
	if lines[0] != "config,cost (x1000 $)" {
		t.Fatalf("header %q", lines[0])
	}
	// A cell with a comma gets quoted.
	q := &Figure{Columns: []string{"a"}, Rows: [][]string{{`x,y "z"`}}}
	if got := q.CSV(); !strings.Contains(got, `"x,y ""z"""`) {
		t.Fatalf("quoting: %q", got)
	}
}

func TestFigure8IsolatedRuns(t *testing.T) {
	p := Quick()
	pts, err := p.Figure8IsolatedData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d workloads", len(pts))
	}
	for _, pt := range pts {
		// Isolated single-client runs: Skipper's overlap always wins.
		if pt.Skipper >= pt.Vanilla {
			t.Fatalf("%s: skipper %v >= vanilla %v in isolation", pt.Workload, pt.Skipper, pt.Vanilla)
		}
	}
}

func TestVanillaQ5Reference(t *testing.T) {
	p := Quick()
	d, err := p.VanillaQ5()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("vanilla Q5 time %v", d)
	}
}
