package experiments

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/layout"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// Figure4Point is one x position of Figure 4.
type Figure4Point struct {
	Clients int
	CSD     time.Duration // vanilla engine on the CSD (1 group/client)
	HDD     time.Duration // vanilla engine on the HDD-like tier (1 group)
}

// Figure4Data measures vanilla PostgreSQL-style execution on CSD vs HDD
// as the client count grows (§3.2, TPC-H Q12, 10 s switch).
func (p Params) Figure4Data() ([]Figure4Point, error) {
	var out []Figure4Point
	for c := 1; c <= 5; c++ {
		csdRes, err := p.run(runSpec{
			clients: c, mode: skipper.ModeVanilla, switchLat: -1,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		hddRes, err := p.run(runSpec{
			clients: c, mode: skipper.ModeVanilla, switchLat: -1,
			layoutPol: layout.AllInOne{},
			dataset:   p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure4Point{Clients: c, CSD: avgElapsed(csdRes), HDD: avgElapsed(hddRes)})
	}
	return out, nil
}

// Figure4 renders Figure 4.
func (p Params) Figure4() (*Figure, error) {
	pts, err := p.Figure4Data()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 4",
		Title:   "Vanilla engine, avg exec time (s) vs number of clients (Q12, S=10s)",
		Columns: []string{"clients", "PostgreSQL-on-CSD", "PostgreSQL-on-HDD (ideal)"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{fmt.Sprint(pt.Clients), secs(pt.CSD), secs(pt.HDD)})
	}
	return f, nil
}

// Figure5Point is one x position of Figure 5.
type Figure5Point struct {
	SwitchLatency time.Duration
	Avg           time.Duration
}

// Figure5Data measures the vanilla engine's sensitivity to the group
// switch latency with five clients (§3.2).
func (p Params) Figure5Data() ([]Figure5Point, error) {
	var out []Figure5Point
	for _, s := range []time.Duration{0, 5 * time.Second, 10 * time.Second, 15 * time.Second, 20 * time.Second} {
		res, err := p.run(runSpec{
			clients: 5, mode: skipper.ModeVanilla, switchLat: s,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure5Point{SwitchLatency: s, Avg: avgElapsed(res)})
	}
	return out, nil
}

// Figure5 renders Figure 5.
func (p Params) Figure5() (*Figure, error) {
	pts, err := p.Figure5Data()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 5",
		Title:   "Vanilla engine, avg exec time (s) vs group switch latency (Q12, 5 clients)",
		Columns: []string{"switch latency (s)", "avg exec time (s)"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{secs(pt.SwitchLatency), secs(pt.Avg)})
	}
	return f, nil
}

// Figure7Point is one x position of Figure 7.
type Figure7Point struct {
	Clients int
	Vanilla time.Duration
	Skipper time.Duration
	Ideal   time.Duration
}

// Figure7Data compares vanilla, Skipper and the HDD ideal as clients scale
// (§5.2.1): the benefit of out-of-order execution.
func (p Params) Figure7Data() ([]Figure7Point, error) {
	var out []Figure7Point
	for c := 1; c <= 5; c++ {
		van, err := p.run(runSpec{
			clients: c, mode: skipper.ModeVanilla, switchLat: -1,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		skp, err := p.run(runSpec{
			clients: c, mode: skipper.ModeSkipper, switchLat: -1, cache: p.CacheObjects,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		ideal, err := p.run(runSpec{
			clients: c, mode: skipper.ModeVanilla, switchLat: -1,
			layoutPol: layout.AllInOne{},
			dataset:   p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure7Point{
			Clients: c,
			Vanilla: avgElapsed(van),
			Skipper: avgElapsed(skp),
			Ideal:   avgElapsed(ideal),
		})
	}
	return out, nil
}

// Figure7 renders Figure 7.
func (p Params) Figure7() (*Figure, error) {
	pts, err := p.Figure7Data()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 7",
		Title:   "Avg exec time (s) vs clients: vanilla vs Skipper vs ideal (Q12, S=10s)",
		Columns: []string{"clients", "PostgreSQL", "Skipper", "Ideal"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{fmt.Sprint(pt.Clients), secs(pt.Vanilla), secs(pt.Skipper), secs(pt.Ideal)})
	}
	return f, nil
}

// Figure8Point is one workload bar pair of Figure 8.
type Figure8Point struct {
	Workload string
	Vanilla  time.Duration
	Skipper  time.Duration
}

// Figure8IsolatedData runs each workload alone (one client, no group
// switches) — a supplementary baseline isolating per-workload costs from
// multi-tenant contention.
func (p Params) Figure8IsolatedData() ([]Figure8Point, error) {
	type wl struct {
		name    string
		dataset func(tenant int) *workload.Dataset
		queries func(cat *catalog.Catalog) []skipper.QuerySpec
	}
	wls := []wl{
		{"TPC-H", p.tpchDataset(p.SF), q12Queries},
		{"MR-Bench", func(t int) *workload.Dataset {
			return workload.MRBench(t, workload.MRBenchConfig{TotalGB: 20, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
		}, func(cat *catalog.Catalog) []skipper.QuerySpec {
			return []skipper.QuerySpec{workload.MRJoinTask(cat)}
		}},
		{"NREF", func(t int) *workload.Dataset {
			return workload.NREF(t, workload.NREFConfig{TotalGB: 13, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
		}, func(cat *catalog.Catalog) []skipper.QuerySpec {
			return []skipper.QuerySpec{workload.NREFJoin(cat)}
		}},
		{"SSB", func(t int) *workload.Dataset {
			return workload.SSB(t, workload.SSBConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
		}, func(cat *catalog.Catalog) []skipper.QuerySpec {
			return []skipper.QuerySpec{workload.SSBQ1(cat)}
		}},
	}
	var out []Figure8Point
	for _, w := range wls {
		van, err := p.run(runSpec{
			clients: 1, mode: skipper.ModeVanilla, switchLat: -1, repeat: 5,
			dataset: w.dataset, queries: w.queries,
		})
		if err != nil {
			return nil, fmt.Errorf("%s vanilla: %w", w.name, err)
		}
		skp, err := p.run(runSpec{
			clients: 1, mode: skipper.ModeSkipper, switchLat: -1, repeat: 5, cache: p.CacheObjects,
			dataset: w.dataset, queries: w.queries,
		})
		if err != nil {
			return nil, fmt.Errorf("%s skipper: %w", w.name, err)
		}
		out = append(out, Figure8Point{Workload: w.name, Vanilla: cumElapsed(van), Skipper: cumElapsed(skp)})
	}
	return out, nil
}

// Figure8 renders Figure 8 from the concurrent mixed run.
func (p Params) Figure8() (*Figure, error) {
	pts, err := p.Figure8Data()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 8",
		Title:   "Cumulative exec time (s), mixed workload: 4 concurrent clients, 5 repetitions each",
		Columns: []string{"workload", "PostgreSQL", "Skipper"},
	}
	for _, name := range []string{"TPC-H", "MR-Bench", "NREF", "SSB"} {
		pt := pts[name]
		f.Rows = append(f.Rows, []string{pt.Workload, secs(pt.Vanilla), secs(pt.Skipper)})
	}
	return f, nil
}

// Figure8Data reproduces §5.2.1's mixed workload: four clients, each
// running a different benchmark query (Q12, JoinTask, NREF 4-join,
// SSB Q1) five times against one shared CSD; cumulative execution time
// per workload under each engine.
func (p Params) Figure8Data() (map[string]Figure8Point, error) {
	out := make(map[string]Figure8Point)
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		store := make(mapStore)
		names := []string{"TPC-H", "MR-Bench", "NREF", "SSB"}
		var clients []*skipper.Client
		for t := 0; t < 4; t++ {
			var ds *workload.Dataset
			var qs []skipper.QuerySpec
			switch t {
			case 0:
				ds = workload.TPCH(t, workload.TPCHConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
				qs = []skipper.QuerySpec{workload.Q12(ds.Catalog)}
			case 1:
				ds = workload.MRBench(t, workload.MRBenchConfig{TotalGB: 20, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
				qs = []skipper.QuerySpec{workload.MRJoinTask(ds.Catalog)}
			case 2:
				ds = workload.NREF(t, workload.NREFConfig{TotalGB: 13, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
				qs = []skipper.QuerySpec{workload.NREFJoin(ds.Catalog)}
			case 3:
				ds = workload.SSB(t, workload.SSBConfig{SF: p.SF, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
				qs = []skipper.QuerySpec{workload.SSBQ1(ds.Catalog)}
			}
			ds.MergeInto(store)
			var rep []skipper.QuerySpec
			for r := 0; r < 5; r++ {
				rep = append(rep, qs...)
			}
			clients = append(clients, &skipper.Client{
				Tenant: t, Mode: mode, Catalog: ds.Catalog,
				Queries: rep, CacheObjects: p.CacheObjects,
				Parallelism: p.Parallelism,
			})
		}
		cl := &skipper.Cluster{Clients: clients, Store: store}
		res, err := cl.Run()
		if err != nil {
			return nil, err
		}
		for t, cs := range res.Clients {
			pt := out[names[t]]
			pt.Workload = names[t]
			if mode == skipper.ModeVanilla {
				pt.Vanilla = cs.Elapsed()
			} else {
				pt.Skipper = cs.Elapsed()
			}
			out[names[t]] = pt
		}
	}
	return out, nil
}
