package experiments

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// This file is the evaluation of the columnar segment format (v2) and its
// projection pushdown: the report behind `skipperbench -proj`. Every
// probe query runs over the same dataset encoded in FormatV1 (row-major)
// and FormatV2 (columnar), on both engines; the report compares the
// scan-side byte accounting (fetched / decoded / skipped-by-projection /
// materialized) and the wall-clock decode time, and — like the pruning
// report — it fails rather than reports if any pair of runs diverges in
// its query results, which is what lets CI use it as a correctness gate.

// ProjectionPoint is one query × format row of the projection report.
type ProjectionPoint struct {
	Query  string
	Format segment.Format
	// Columns summarizes the per-relation projection, e.g. "5/25 cols".
	Columns string
	// BytesFetched is the total encoded size of the fetched segments;
	// BytesDecoded the block bytes actually decoded; BytesSkipped the
	// block bytes projection pushdown left untouched; BytesMaterialized
	// the logical size of the decoded values.
	BytesFetched, BytesDecoded, BytesSkipped, BytesMaterialized int64
	// DecodeTime is the wall-clock time the pull engine's scans spent
	// decoding segments, summed over repetitions (see projReps).
	DecodeTime time.Duration
	// Rows is the query's result cardinality (identical across formats).
	Rows int
}

// projReps repeats each timed drain so decode times are measurable even
// at quick scale.
const projReps = 5

// projQueries are the probe queries of the projection report: projective
// SQL probes that touch a handful of the wide tables' columns. They are
// the same shapes the pruning report uses, so the two reports read side
// by side.
func projQueries(ds *workload.Dataset) []struct {
	name string
	spec skipper.QuerySpec
} {
	return []struct {
		name string
		spec skipper.QuerySpec
	}{
		{"join+agg (shipdate 1994-01)", workload.QShipdateWindow(ds.Catalog, "1994-01-01", "1994-01-31")},
		{"projective lineitem scan", workload.QProjectiveScan(ds.Catalog)},
		{"count(*) lineitem", workload.QCountLineitem(ds.Catalog)},
	}
}

// projectionSummary renders the per-relation projected column counts of a
// spec, e.g. "4/16+1/9 cols".
func projectionSummary(spec skipper.QuerySpec) string {
	out := ""
	for i, rel := range spec.Join.Relations {
		if i > 0 {
			out += "+"
		}
		n := rel.Table.Schema.Len()
		if rel.Cols == nil {
			out += fmt.Sprintf("%d/%d", n, n)
		} else {
			out += fmt.Sprintf("%d/%d", len(rel.Cols), n)
		}
	}
	return out + " cols"
}

// ProjectionReportData measures each probe query over FormatV1 and
// FormatV2, verifying en route that both formats, both engines and
// pruning on/off all produce byte-identical results.
func (p Params) ProjectionReportData() ([]ProjectionPoint, error) {
	base := p.clusteredDataset()
	encoded := map[segment.Format]*workload.Dataset{}
	for _, f := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		pf := p
		pf.Format = f
		ds, err := pf.encoded(base)
		if err != nil {
			return nil, fmt.Errorf("encode %v: %w", f, err)
		}
		encoded[f] = ds
	}
	var out []ProjectionPoint
	for qi, q := range projQueries(encoded[segment.FormatV2]) {
		// The specs are planned against the v2 catalog; both stores carry
		// the same object ids and equivalent statistics, so one spec
		// drives every run.
		var want []string
		for _, f := range []segment.Format{segment.FormatV1, segment.FormatV2} {
			ds := encoded[f]
			spec := projQueries(ds)[qi].spec
			for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
				for _, prune := range []bool{true, false} {
					rows, err := evalLocal(ds, spec, mode, prune)
					if err != nil {
						return nil, fmt.Errorf("%s %v %s prune=%v: %w", q.name, f, mode, prune, err)
					}
					got := render(rows)
					if want == nil {
						want = got
						continue
					}
					if err := equalStrings(want, got); err != nil {
						return nil, fmt.Errorf("%s: %v %s prune=%v diverges: %w", q.name, f, mode, prune, err)
					}
				}
			}
			pt, err := measureProjection(ds, projQueries(ds)[qi].spec, q.name, f)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// measureProjection drains the pull plan projReps times over the encoded
// store and gathers the scans' byte and decode-time accounting.
func measureProjection(ds *workload.Dataset, spec skipper.QuerySpec, name string, f segment.Format) (ProjectionPoint, error) {
	pt := ProjectionPoint{Query: name, Format: f, Columns: projectionSummary(spec)}
	for rep := 0; rep < projReps; rep++ {
		ctx := engine.NewTestCtx(ds.Store)
		it, err := skipper.BuildPullPlan(ctx, spec.Join)
		if err != nil {
			return pt, err
		}
		scans := engine.SeqScans(it)
		if spec.Shape != nil {
			it = spec.Shape(it)
		}
		rows, err := engine.Collect(it)
		if err != nil {
			return pt, err
		}
		pt.Rows = len(rows)
		for _, s := range scans {
			b := s.Bytes()
			pt.DecodeTime += b.DecodeTime
			if rep == 0 {
				pt.BytesFetched += b.Fetched
				pt.BytesDecoded += b.Decoded
				pt.BytesSkipped += b.SkippedByProjection
				pt.BytesMaterialized += b.Materialized
			}
		}
	}
	return pt, nil
}

// ProjectionReport renders ProjectionReportData (the `skipperbench -proj`
// output).
func (p Params) ProjectionReport() (*Figure, error) {
	pts, err := p.ProjectionReportData()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Projection report",
		Title:   "Scan-side decode bytes and time, row-major (v1) vs columnar (v2) segments (date-clustered dataset, pull engine)",
		Columns: []string{"query", "format", "projection", "fetched B", "decoded B", "skipped B", "skipped", "materialized B", fmt.Sprintf("decode ms (%d reps)", projReps)},
		Notes: []string{
			"results verified byte-identical across v1/v2 formats, both engines, pruning on/off",
			"skipped B = encoded column-block bytes projection pushdown never decoded (v1 must always decode whole segments)",
		},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{
			pt.Query, pt.Format.String(), pt.Columns,
			fmt.Sprint(pt.BytesFetched), fmt.Sprint(pt.BytesDecoded), fmt.Sprint(pt.BytesSkipped),
			fmt.Sprintf("%.0f%%", 100*metrics.ProjectionRatio(pt.BytesDecoded, pt.BytesSkipped)),
			fmt.Sprint(pt.BytesMaterialized),
			fmt.Sprintf("%.2f", float64(pt.DecodeTime.Microseconds())/1000),
		})
	}
	// Surface the v1→v2 decode-side ratios per query, the headline the
	// format change is after.
	for i := 0; i+1 < len(pts); i += 2 {
		v1, v2 := pts[i], pts[i+1]
		if v2.BytesDecoded > 0 && v2.DecodeTime > 0 {
			f.Notes = append(f.Notes, fmt.Sprintf("%s: v2 decodes %.1f%% of v1's bytes, %.2fx decode speedup",
				v1.Query, 100*float64(v2.BytesDecoded)/float64(v1.BytesDecoded),
				float64(v1.DecodeTime)/float64(v2.DecodeTime)))
		}
	}
	return f, nil
}

// render stringifies rows for comparison.
func render(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// equalStrings requires two rendered result sets to match positionally.
func equalStrings(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d rows vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
	return nil
}
