// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §3, §5). Each experiment returns typed data points plus
// a formatted text rendering; cmd/skipperbench and the benchmark suite are
// thin wrappers over these functions.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/csd"
	"repro/internal/layout"
	"repro/internal/objstore"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// mapStore is the shared object store backing a cluster run.
type mapStore = map[segment.ObjectID]*segment.Segment

// Params are the experiment-wide knobs, defaulting to the paper's setup.
type Params struct {
	// SF is the TPC-H scale factor (paper: 50).
	SF int
	// SF100 is the scale factor for the Figure 11c sweep (paper: 100).
	SF100 int
	// RowsPerObject controls tuple density. Timing is virtual, so this
	// only affects real runtime of the simulation; 8 keeps benches fast
	// while producing non-trivial join results.
	RowsPerObject int
	// GroupSwitch is the CSD group switch latency (paper default 10 s).
	GroupSwitch time.Duration
	// Bandwidth is the per-stream CSD transfer rate (100 MB/s ⇒ 10 s per
	// 1 GB object, Table 3).
	Bandwidth float64
	// CacheObjects is Skipper's MJoin cache in objects (paper: 30 GB).
	CacheObjects int
	// Seed drives the deterministic data generators.
	Seed int64
	// Parallelism is the per-client query-execution worker count (see
	// skipper.Client.Parallelism). 0 or 1 runs serially. It changes only
	// real runtime, never the simulated timings the figures report.
	Parallelism int
	// Format selects the segment wire format the CSD store serves.
	// FormatMem (the zero value) keeps the generator's in-memory
	// segments — no encode/decode work, the historical behaviour.
	// FormatV1/FormatV2 push every dataset through the object store and
	// serve lazily decoded segments, so scans perform (and account) real
	// per-access decode work; v2 additionally honours projection
	// pushdown. Query results are identical across formats — the
	// differential suites and `skipperbench -proj` enforce it.
	Format segment.Format
}

// encoded re-encodes a dataset per p.Format (no-op for FormatMem).
func (p Params) encoded(ds *workload.Dataset) (*workload.Dataset, error) {
	return objstore.ReencodeDataset(ds, p.Format)
}

// Default returns the paper's configuration.
func Default() Params {
	return Params{
		SF:            50,
		SF100:         100,
		RowsPerObject: 8,
		GroupSwitch:   10 * time.Second,
		Bandwidth:     100e6,
		CacheObjects:  30,
		Seed:          1,
	}
}

// Quick returns a scaled-down configuration for fast smoke tests.
func Quick() Params {
	return Params{
		SF:            8,
		SF100:         16,
		RowsPerObject: 6,
		GroupSwitch:   10 * time.Second,
		Bandwidth:     100e6,
		CacheObjects:  6,
		Seed:          1,
	}
}

// Figure is a rendered result table.
type Figure struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries reproduction caveats surfaced with the data.
	Notes []string
}

// CSV renders the figure as comma-separated values (header + rows),
// suitable for plotting tools.
func (f *Figure) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(f.Columns))
	for i, c := range f.Columns {
		cells[i] = esc(c)
	}
	sb.WriteString(strings.Join(cells, ","))
	sb.WriteByte('\n')
	for _, row := range f.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		sb.WriteString(strings.Join(cells, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders an aligned text table.
func (f *Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.ID, f.Title)
	widths := make([]int, len(f.Columns))
	for i, c := range f.Columns {
		widths[i] = len(c)
	}
	for _, row := range f.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(f.Columns)
	for _, row := range f.Rows {
		writeRow(row)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// secs renders a duration as seconds with one decimal.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Seconds())
}

// runSpec describes one cluster execution.
type runSpec struct {
	clients   int
	mode      skipper.Mode
	layoutPol layout.Policy
	scheduler csd.Scheduler
	order     csd.OrderKind
	switchLat time.Duration
	cache     int
	// dataset generates tenant i's database.
	dataset func(tenant int) *workload.Dataset
	// queries builds the per-tenant query list.
	queries func(cat *catalog.Catalog) []skipper.QuerySpec
	// policyOverride optionally replaces the MJoin eviction policy.
	repeat int
}

// run executes a cluster per the spec and returns the result.
func (p Params) run(spec runSpec) (*skipper.RunResult, error) {
	if spec.layoutPol == nil {
		spec.layoutPol = layout.OnePerGroup()
	}
	store := make(map[segment.ObjectID]*segment.Segment)
	clients := make([]*skipper.Client, spec.clients)
	for t := 0; t < spec.clients; t++ {
		ds, err := p.encoded(spec.dataset(t))
		if err != nil {
			return nil, err
		}
		ds.MergeInto(store)
		qs := spec.queries(ds.Catalog)
		if spec.repeat > 1 {
			var rep []skipper.QuerySpec
			for r := 0; r < spec.repeat; r++ {
				rep = append(rep, qs...)
			}
			qs = rep
		}
		clients[t] = &skipper.Client{
			Tenant:       t,
			Mode:         spec.mode,
			Catalog:      ds.Catalog,
			Queries:      qs,
			CacheObjects: spec.cache,
			Parallelism:  p.Parallelism,
		}
	}
	cfg := csd.DefaultConfig()
	if spec.switchLat >= 0 {
		cfg.GroupSwitch = spec.switchLat
	} else {
		cfg.GroupSwitch = p.GroupSwitch
	}
	cfg.Bandwidth = p.Bandwidth
	if spec.scheduler != nil {
		cfg.Scheduler = spec.scheduler
	}
	cfg.Order = spec.order
	cl := &skipper.Cluster{
		Clients: clients,
		Layout:  spec.layoutPol,
		CSD:     cfg,
		Store:   store,
	}
	return cl.Run()
}

// avgElapsed returns the mean client workload time.
func avgElapsed(res *skipper.RunResult) time.Duration {
	if len(res.Clients) == 0 {
		return 0
	}
	var sum time.Duration
	for _, c := range res.Clients {
		sum += c.Elapsed()
	}
	return sum / time.Duration(len(res.Clients))
}

// cumElapsed returns the summed client workload time.
func cumElapsed(res *skipper.RunResult) time.Duration {
	var sum time.Duration
	for _, c := range res.Clients {
		sum += c.Elapsed()
	}
	return sum
}

// tpchDataset builds the per-tenant TPC-H generator for these params.
func (p Params) tpchDataset(sf int) func(int) *workload.Dataset {
	return func(tenant int) *workload.Dataset {
		return workload.TPCH(tenant, workload.TPCHConfig{SF: sf, RowsPerObject: p.RowsPerObject, Seed: p.Seed})
	}
}

func q12Queries(cat *catalog.Catalog) []skipper.QuerySpec {
	return []skipper.QuerySpec{workload.Q12(cat)}
}

func q5Queries(cat *catalog.Catalog) []skipper.QuerySpec {
	return []skipper.QuerySpec{workload.Q5(cat)}
}
