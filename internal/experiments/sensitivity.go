package experiments

import (
	"fmt"
	"time"

	"repro/internal/layout"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// Figure11aPoint is one layout's bar pair.
type Figure11aPoint struct {
	Layout  string
	Vanilla time.Duration
	Skipper time.Duration
}

// Figure11aData measures sensitivity to the CSD data layout with four
// clients (§5.2.3): all-in-one, two-clients-per-group, one-client-per-
// group, and the incremental split layout.
func (p Params) Figure11aData() ([]Figure11aPoint, error) {
	layouts := []struct {
		name string
		pol  layout.Policy
	}{
		{"Allin1", layout.AllInOne{}},
		{"2perG", layout.ClientsPerGroup{K: 2}},
		{"1perG", layout.OnePerGroup()},
		{"Increm.", layout.Incremental{}},
	}
	var out []Figure11aPoint
	for _, l := range layouts {
		van, err := p.run(runSpec{
			clients: 4, mode: skipper.ModeVanilla, switchLat: -1, layoutPol: l.pol,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		skp, err := p.run(runSpec{
			clients: 4, mode: skipper.ModeSkipper, switchLat: -1, layoutPol: l.pol, cache: p.CacheObjects,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure11aPoint{Layout: l.name, Vanilla: avgElapsed(van), Skipper: avgElapsed(skp)})
	}
	return out, nil
}

// Figure11a renders Figure 11a.
func (p Params) Figure11a() (*Figure, error) {
	pts, err := p.Figure11aData()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 11a",
		Title:   "Avg exec time (s) vs data layout, 4 clients (Q12)",
		Columns: []string{"layout", "PostgreSQL", "Skipper"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{pt.Layout, secs(pt.Vanilla), secs(pt.Skipper)})
	}
	return f, nil
}

// CacheSweepPoint is one cache-size position of Figures 11b/11c.
type CacheSweepPoint struct {
	CacheObjects int
	Avg          time.Duration
	// Gets is the average number of GET requests issued per client,
	// including MJoin reissues (the black line of Figures 11b/c).
	Gets int
}

// cacheSweep runs five Skipper clients on Q5 for each cache size.
func (p Params) cacheSweep(sf int, caches []int) ([]CacheSweepPoint, error) {
	var out []CacheSweepPoint
	for _, cache := range caches {
		res, err := p.run(runSpec{
			clients: 5, mode: skipper.ModeSkipper, switchLat: -1, cache: cache,
			dataset: p.tpchDataset(sf), queries: q5Queries,
		})
		if err != nil {
			return nil, fmt.Errorf("cache %d: %w", cache, err)
		}
		gets := 0
		for _, cs := range res.Clients {
			gets += cs.GetsIssued
		}
		out = append(out, CacheSweepPoint{
			CacheObjects: cache,
			Avg:          avgElapsed(res),
			Gets:         gets / len(res.Clients),
		})
	}
	return out, nil
}

// q5Caches derives the sweep's cache sizes as fractions of the Q5 input
// footprint, clamped to at least one object per relation plus one. At
// SF-50 (63 input objects) this yields the paper's 10–30 GB points.
func (p Params) q5Caches(sf int, fracs []float64) []int {
	ds := p.tpchDataset(sf)(0)
	footprint := len(workload.Q5(ds.Catalog).Join.Objects())
	minCache := len(workload.Q5(ds.Catalog).Join.Relations) + 1
	caches := make([]int, 0, len(fracs))
	for _, fr := range fracs {
		c := int(fr*float64(footprint) + 0.5)
		if c < minCache {
			c = minCache
		}
		if len(caches) == 0 || c > caches[len(caches)-1] {
			caches = append(caches, c)
		}
	}
	return caches
}

// Figure11bData sweeps the MJoin cache size on Q5 at SF-50 (§5.2.4):
// cache from ~16% to ~48% of the input footprint (10 to 30 objects at
// SF-50). The paper's vanilla reference is 3,710 s; VanillaQ5 measures
// ours.
func (p Params) Figure11bData() ([]CacheSweepPoint, error) {
	return p.cacheSweep(p.SF, p.q5Caches(p.SF, []float64{0.16, 0.24, 0.32, 0.40, 0.48}))
}

// VanillaQ5 measures the vanilla engine's Q5 time in the same five-client
// setup, the reference line of §5.2.4.
func (p Params) VanillaQ5() (time.Duration, error) {
	res, err := p.run(runSpec{
		clients: 5, mode: skipper.ModeVanilla, switchLat: -1,
		dataset: p.tpchDataset(p.SF), queries: q5Queries,
	})
	if err != nil {
		return 0, err
	}
	return avgElapsed(res), nil
}

// Figure11b renders Figure 11b.
func (p Params) Figure11b() (*Figure, error) {
	pts, err := p.Figure11bData()
	if err != nil {
		return nil, err
	}
	van, err := p.VanillaQ5()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 11b",
		Title:   "Skipper avg exec time and GET count vs cache size (Q5, SF-50, 5 clients)",
		Columns: []string{"cache (objects)", "avg exec time (s)", "GET requests/client"},
		Notes:   []string{fmt.Sprintf("vanilla engine reference: %s s", secs(van))},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{fmt.Sprint(pt.CacheObjects), secs(pt.Avg), fmt.Sprint(pt.Gets)})
	}
	return f, nil
}

// Figure11cData repeats the sweep at SF-100 (§5.2.4): cache from 10% to
// 30% of the whole dataset in 5% steps (14 to 42 objects at SF-100,
// where the dataset totals 140 objects).
func (p Params) Figure11cData() ([]CacheSweepPoint, error) {
	return p.cacheSweep(p.SF100, p.q5Caches(p.SF100, []float64{0.113, 0.169, 0.226, 0.282, 0.339}))
}

// Figure11c renders Figure 11c.
func (p Params) Figure11c() (*Figure, error) {
	pts, err := p.Figure11cData()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 11c",
		Title:   "Skipper avg exec time and GET count vs cache size (Q5, SF-100, 5 clients)",
		Columns: []string{"cache (objects)", "avg exec time (s)", "GET requests/client"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{fmt.Sprint(pt.CacheObjects), secs(pt.Avg), fmt.Sprint(pt.Gets)})
	}
	return f, nil
}
