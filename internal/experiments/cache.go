package experiments

import (
	"fmt"
	"time"

	"repro/internal/csd"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/objstore"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// This file is the evaluation of the shared segment cache and CSD
// request coalescing: a budget sweep over a repeated-query multi-tenant
// workload behind `skipperbench -cache`, which doubles as the CI
// divergence gate — every configuration is executed with the cache on
// and off, across both engines, segment formats, DOP and pruning, and
// the result sets must match byte for byte.

// cacheSweepClients and cacheSweepPasses shape the repeated-query
// multi-tenant workload: every client runs cacheSweepPasses rounds of
// the probe pair (workload.MultiPass) over one shared dataset, so both
// intra-tenant reuse (later passes) and cross-tenant reuse (other
// clients' fetches) are on the table.
const (
	cacheSweepClients = 3
	cacheSweepPasses  = 2
	cacheSweepGroups  = 4
)

// CachePoint is one budget of the shared-cache sweep.
type CachePoint struct {
	// BudgetObjects is the shared cache capacity in nominal 1 GB objects
	// (0 = cache disabled).
	BudgetObjects int
	// DeviceGets counts GETs that reached the CSD; Hits were served by
	// the cache instead.
	DeviceGets int
	// Switches is the device group-switch count.
	Switches int
	// Coalesced counts device requests merged onto another request's
	// transfer (csd.Stats.GetsCoalesced).
	Coalesced int
	// Hits / HitRatio summarize the cache's traffic.
	Hits     int64
	HitRatio float64
	// Makespan is the cluster completion time; AvgClient the mean
	// per-client workload time.
	Makespan  time.Duration
	AvgClient time.Duration
}

// runCacheCluster executes the repeated-query workload on a cluster of
// clients sharing one dataset — and, when budgetObjects > 0, one segment
// cache. The object layout is round-robin across groups, the adversarial
// no-locality placement, so group switches are actually at stake.
func (p Params) runCacheCluster(ds *workload.Dataset, mode skipper.Mode, dop int, prune bool, budgetObjects int, keep bool) (*skipper.RunResult, error) {
	store := make(mapStore)
	ds.MergeInto(store)
	pr := prune
	clients := make([]*skipper.Client, cacheSweepClients)
	for t := range clients {
		clients[t] = &skipper.Client{
			Tenant:       t,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      workload.MultiPass(ds.Catalog, cacheSweepPasses),
			CacheObjects: p.CacheObjects,
			StatsPruning: &pr,
			Parallelism:  dop,
			KeepResults:  keep,
		}
	}
	cfg := csd.DefaultConfig()
	cfg.GroupSwitch = p.GroupSwitch
	cfg.Bandwidth = p.Bandwidth
	cl := &skipper.Cluster{
		Clients: clients,
		Layout:  layout.RoundRobinObjects{NumGroups: cacheSweepGroups},
		CSD:     cfg,
		Store:   store,
	}
	if budgetObjects > 0 {
		cl.SharedCache = segcache.NewObjects(budgetObjects)
	}
	return cl.Run()
}

// compareRunResults requires two cluster runs to have byte-identical
// per-query results for every client.
func compareRunResults(a, b *skipper.RunResult) error {
	if len(a.Clients) != len(b.Clients) {
		return fmt.Errorf("%d clients vs %d", len(a.Clients), len(b.Clients))
	}
	for i := range a.Clients {
		qa, qb := a.Clients[i].PerQuery, b.Clients[i].PerQuery
		if len(qa) != len(qb) {
			return fmt.Errorf("client %d: %d queries vs %d", i, len(qa), len(qb))
		}
		for j := range qa {
			if err := equalRows(qa[j].Results, qb[j].Results); err != nil {
				return fmt.Errorf("client %d query %s: %w", i, qa[j].Name, err)
			}
		}
	}
	return nil
}

// checkCacheAccounting enforces the traffic invariant of a cache-on run:
// per client, the GETs the device saw plus the cache hits equal the GETs
// the client issued — and in skipper mode the MJoin request count (the
// quantity Figure 11 plots) equals that same total, so no request is
// double-counted or lost between the state manager, the cache and the
// device.
func checkCacheAccounting(res *skipper.RunResult) error {
	for _, cs := range res.Clients {
		device := res.CSD.GetsByTenant[cs.Tenant]
		if device+cs.CacheHits != cs.GetsIssued {
			return fmt.Errorf("tenant %d: device GETs %d + cache hits %d != issued %d",
				cs.Tenant, device, cs.CacheHits, cs.GetsIssued)
		}
		if cs.Mode == skipper.ModeSkipper && cs.MJoin.Requests != cs.GetsIssued {
			return fmt.Errorf("tenant %d: mjoin requests %d != issued %d",
				cs.Tenant, cs.MJoin.Requests, cs.GetsIssued)
		}
	}
	return nil
}

// VerifyCacheIdentical is the divergence gate: for every combination of
// engine mode, DOP {1,4} and pruning on/off over the given dataset, the
// repeated-query workload must produce byte-identical results with the
// shared cache on (budget = the dataset's full footprint) and off, and
// the cache-on run must satisfy the GET accounting invariant.
func (p Params) VerifyCacheIdentical(ds *workload.Dataset) error {
	budget := len(ds.Catalog.AllObjects())
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		for _, dop := range []int{1, 4} {
			for _, prune := range []bool{true, false} {
				tag := fmt.Sprintf("%s dop=%d prune=%v", mode, dop, prune)
				on, err := p.runCacheCluster(ds, mode, dop, prune, budget, true)
				if err != nil {
					return fmt.Errorf("%s cache on: %w", tag, err)
				}
				off, err := p.runCacheCluster(ds, mode, dop, prune, 0, true)
				if err != nil {
					return fmt.Errorf("%s cache off: %w", tag, err)
				}
				if err := compareRunResults(on, off); err != nil {
					return fmt.Errorf("%s: cache on/off results diverge: %w", tag, err)
				}
				if err := checkCacheAccounting(on); err != nil {
					return fmt.Errorf("%s: %w", tag, err)
				}
				if on.Cache == nil || on.Cache.Hits == 0 {
					return fmt.Errorf("%s: repeated-query workload produced no cache hits", tag)
				}
			}
		}
	}
	return nil
}

// CacheSweepData verifies the divergence gate across every segment
// format, then sweeps the shared-cache budget on the Params' format and
// returns one point per budget (0 = off). It fails — rather than report
// — on any cache-on/off divergence, which is what lets CI use
// `skipperbench -cache` as a correctness gate.
func (p Params) CacheSweepData() ([]CachePoint, error) {
	base := p.clusteredDataset()
	for _, f := range []segment.Format{segment.FormatMem, segment.FormatV1, segment.FormatV2} {
		ds, err := objstore.ReencodeDataset(base, f)
		if err != nil {
			return nil, fmt.Errorf("format %v: %w", f, err)
		}
		if err := p.VerifyCacheIdentical(ds); err != nil {
			return nil, fmt.Errorf("format %v: %w", f, err)
		}
	}
	ds, err := p.encoded(base)
	if err != nil {
		return nil, err
	}
	footprint := len(ds.Catalog.AllObjects())
	budgets := []int{0}
	for _, b := range []int{footprint / 8, footprint / 4, footprint / 2, footprint} {
		if b > 0 && b != budgets[len(budgets)-1] {
			budgets = append(budgets, b)
		}
	}
	var out []CachePoint
	for _, b := range budgets {
		res, err := p.runCacheCluster(ds, skipper.ModeSkipper, p.Parallelism, true, b, false)
		if err != nil {
			return nil, fmt.Errorf("budget %d: %w", b, err)
		}
		pt := CachePoint{
			BudgetObjects: b,
			DeviceGets:    res.CSD.GetsReceived,
			Switches:      res.CSD.GroupSwitches,
			Coalesced:     res.CSD.GetsCoalesced,
			Makespan:      res.Makespan,
			AvgClient:     avgElapsed(res),
		}
		if res.Cache != nil {
			pt.Hits = res.Cache.Hits
			pt.HitRatio = metrics.HitRatio(res.Cache.Hits, res.Cache.Misses)
		}
		out = append(out, pt)
	}
	return out, nil
}

// CacheReport renders CacheSweepData (the `skipperbench -cache` output).
func (p Params) CacheReport() (*Figure, error) {
	pts, err := p.CacheSweepData()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:    "Cache sweep",
		Title: fmt.Sprintf("Shared segment cache budget sweep (%d tenants × %d passes of the probe pair, one shared dataset, round-robin layout, skipper engine)", cacheSweepClients, cacheSweepPasses),
		Columns: []string{
			"budget (objects)", "device GETs", "switches", "coalesced",
			"cache hits", "hit ratio", "makespan (s)", "avg client (s)",
		},
		Notes: []string{
			"results verified byte-identical cache on/off across engines, formats (mem/v1/v2), DOP {1,4} and pruning on/off",
			"per client, device GETs + cache hits == GETs issued (== MJoin requests in skipper mode)",
		},
	}
	for _, pt := range pts {
		budget := "off"
		if pt.BudgetObjects > 0 {
			budget = fmt.Sprint(pt.BudgetObjects)
		}
		f.Rows = append(f.Rows, []string{
			budget, fmt.Sprint(pt.DeviceGets), fmt.Sprint(pt.Switches), fmt.Sprint(pt.Coalesced),
			fmt.Sprint(pt.Hits), fmt.Sprintf("%.0f%%", 100*pt.HitRatio),
			secs(pt.Makespan), secs(pt.AvgClient),
		})
	}
	return f, nil
}
