package experiments

import (
	"fmt"

	"repro/internal/costmodel"
)

// Table1 reproduces Table 1: device pricing and tier fractions.
func Table1() *Figure {
	f := &Figure{
		ID:      "Table 1",
		Title:   "Acquisition cost ($/GB) and fraction of data per device",
		Columns: []string{"config", "SSD (P)", "15k-HDD (P)", "7.2k-HDD (C)", "Tape (A)"},
	}
	f.Rows = append(f.Rows, []string{
		"cost/GB",
		fmt.Sprintf("$%.1f", costmodel.SSD.DollarsPerGB),
		fmt.Sprintf("$%.1f", costmodel.SCSI15K.DollarsPerGB),
		fmt.Sprintf("$%.1f", costmodel.SATA72K.DollarsPerGB),
		fmt.Sprintf("$%.1f", costmodel.Tape.DollarsPerGB),
	})
	for _, mix := range []costmodel.TierMix{costmodel.TwoTier(), costmodel.ThreeTier(), costmodel.FourTier()} {
		row := []string{mix.Name, "-", "-", "-", "-"}
		for _, s := range mix.Shares {
			var idx int
			switch s.Device.Name {
			case costmodel.SSD.Name:
				idx = 1
			case costmodel.SCSI15K.Name:
				idx = 2
			case costmodel.SATA72K.Name:
				idx = 3
			case costmodel.Tape.Name:
				idx = 4
			}
			row[idx] = fmt.Sprintf("%.1f%%", s.Fraction*100)
		}
		f.Rows = append(f.Rows, row)
	}
	return f
}

// Figure2Point is one bar of Figure 2.
type Figure2Point struct {
	Config string
	CostK  float64 // thousands of dollars for a 100 TB database
}

// Figure2Data computes the seven bars.
func Figure2Data() []Figure2Point {
	var out []Figure2Point
	for _, cfg := range costmodel.Figure2Configs() {
		out = append(out, Figure2Point{Config: cfg.Name, CostK: cfg.Cost(100) / 1000})
	}
	return out
}

// Figure2 renders Figure 2: cost benefits of storage tiering.
func Figure2() *Figure {
	f := &Figure{
		ID:      "Figure 2",
		Title:   "Cost of a 100 TB database per tiering configuration (x1000 $)",
		Columns: []string{"config", "cost (x1000 $)"},
	}
	for _, pt := range Figure2Data() {
		f.Rows = append(f.Rows, []string{pt.Config, fmt.Sprintf("%.2f", pt.CostK)})
	}
	return f
}

// Figure3Point is one bar pair of Figure 3.
type Figure3Point struct {
	Base      string
	CSDPrice  float64
	CSDCostK  float64
	TradCostK float64
	Ratio     float64
}

// Figure3Data computes CST-vs-traditional costs at the three CSD price
// points for the 3-tier and 4-tier configurations.
func Figure3Data() []Figure3Point {
	var out []Figure3Point
	for _, base := range []costmodel.TierMix{costmodel.ThreeTier(), costmodel.FourTier()} {
		for _, price := range []float64{1.0, 0.2, 0.1} {
			cst := costmodel.WithCST(base, price)
			out = append(out, Figure3Point{
				Base:      base.Name,
				CSDPrice:  price,
				CSDCostK:  cst.Cost(100) / 1000,
				TradCostK: base.Cost(100) / 1000,
				Ratio:     costmodel.SavingsRatio(base, cst),
			})
		}
	}
	return out
}

// Figure3 renders Figure 3: savings of the CSD cold storage tier.
func Figure3() *Figure {
	f := &Figure{
		ID:      "Figure 3",
		Title:   "CSD-based cold storage tier vs traditional tiering (100 TB, x1000 $)",
		Columns: []string{"base", "CSD $/GB", "CSD config", "traditional", "savings"},
	}
	for _, pt := range Figure3Data() {
		f.Rows = append(f.Rows, []string{
			pt.Base,
			fmt.Sprintf("$%.2f", pt.CSDPrice),
			fmt.Sprintf("%.2f", pt.CSDCostK),
			fmt.Sprintf("%.2f", pt.TradCostK),
			fmt.Sprintf("%.2fx", pt.Ratio),
		})
	}
	return f
}
