package experiments

import (
	"fmt"
	"time"

	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/skipper"
)

// BreakdownPoint is one engine's averaged execution-time split.
type BreakdownPoint struct {
	Mode       skipper.Mode
	Total      time.Duration
	Processing time.Duration // includes FUSE on the vanilla path
	Switch     time.Duration
	Transfer   time.Duration
}

// Figure9Data measures the per-client execution-time breakdown with five
// clients running Q12 (§5.2.1 Figure 9), averaged across clients.
func (p Params) Figure9Data() ([]BreakdownPoint, error) {
	var out []BreakdownPoint
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		res, err := p.run(runSpec{
			clients: 5, mode: mode, switchLat: -1, cache: p.CacheObjects,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		var agg BreakdownPoint
		agg.Mode = mode
		for _, cs := range res.Clients {
			b := metrics.Compute(cs.Elapsed(), cs.Processing, cs.Fuse, cs.StallIntervals, res.CSD.SwitchIntervals)
			agg.Total += b.Total
			agg.Processing += b.Processing + b.Fuse
			agg.Switch += b.Switch
			agg.Transfer += b.Transfer
		}
		n := time.Duration(len(res.Clients))
		agg.Total /= n
		agg.Processing /= n
		agg.Switch /= n
		agg.Transfer /= n
		out = append(out, agg)
	}
	return out, nil
}

// Figure9 renders Figure 9 as percentage splits.
func (p Params) Figure9() (*Figure, error) {
	pts, err := p.Figure9Data()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 9",
		Title:   "Avg exec-time breakdown, 5 clients, Q12 (% of total)",
		Columns: []string{"engine", "processing", "switch", "transfer"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{
			pt.Mode.String(),
			fmt.Sprintf("%.1f%%", metrics.Percent(pt.Processing, pt.Total)),
			fmt.Sprintf("%.1f%%", metrics.Percent(pt.Switch, pt.Total)),
			fmt.Sprintf("%.1f%%", metrics.Percent(pt.Transfer, pt.Total)),
		})
	}
	return f, nil
}

// Table3Point is one engine's component split for the single-client,
// single-group run of Table 3.
type Table3Point struct {
	Mode    skipper.Mode
	Exec    time.Duration
	Fuse    time.Duration
	Network time.Duration
	Total   time.Duration
}

// Table3Data reproduces Table 3: one client, all data in one group (no
// switches); execution time split into query execution, FUSE overhead and
// network access.
func (p Params) Table3Data() ([]Table3Point, error) {
	var out []Table3Point
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		res, err := p.run(runSpec{
			clients: 1, mode: mode, switchLat: -1, cache: p.CacheObjects,
			layoutPol: layout.AllInOne{},
			dataset:   p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		cs := res.Clients[0]
		out = append(out, Table3Point{
			Mode:    mode,
			Exec:    cs.Processing,
			Fuse:    cs.Fuse,
			Network: cs.Stalled(),
			Total:   cs.Elapsed(),
		})
	}
	return out, nil
}

// Table3 renders Table 3.
func (p Params) Table3() (*Figure, error) {
	pts, err := p.Table3Data()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Table 3",
		Title:   "Component breakdown, 1 client, no group switches (Q12)",
		Columns: []string{"component", "PostgreSQL", "%", "Skipper", "%"},
		Notes: []string{
			"Skipper overlaps MJoin processing with CSD transfers, so its total is below",
			"exec+network; the paper's middleware serialized them (1007 s total).",
		},
	}
	van, skp := pts[0], pts[1]
	row := func(name string, v, s time.Duration) []string {
		return []string{
			name,
			secs(v), fmt.Sprintf("%.1f%%", metrics.Percent(v, van.Total)),
			secs(s), fmt.Sprintf("%.1f%%", metrics.Percent(s, skp.Total)),
		}
	}
	f.Rows = append(f.Rows,
		row("Query execution", van.Exec, skp.Exec),
		row("FUSE file system", van.Fuse, skp.Fuse),
		row("Network access", van.Network, skp.Network),
		row("Total", van.Total, skp.Total),
	)
	return f, nil
}

// Figure10Point is one x position of Figure 10.
type Figure10Point struct {
	SwitchLatency time.Duration
	Vanilla       time.Duration
	Skipper       time.Duration
}

// Figure10Data measures sensitivity to group switch latency for both
// engines with five clients (§5.2.2).
func (p Params) Figure10Data() ([]Figure10Point, error) {
	var out []Figure10Point
	for _, s := range []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second, 40 * time.Second} {
		van, err := p.run(runSpec{
			clients: 5, mode: skipper.ModeVanilla, switchLat: s,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		skp, err := p.run(runSpec{
			clients: 5, mode: skipper.ModeSkipper, switchLat: s, cache: p.CacheObjects,
			dataset: p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure10Point{SwitchLatency: s, Vanilla: avgElapsed(van), Skipper: avgElapsed(skp)})
	}
	return out, nil
}

// Figure10 renders Figure 10.
func (p Params) Figure10() (*Figure, error) {
	pts, err := p.Figure10Data()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 10",
		Title:   "Avg exec time (s) vs group switch latency, 5 clients (Q12)",
		Columns: []string{"switch latency (s)", "PostgreSQL", "Skipper"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{secs(pt.SwitchLatency), secs(pt.Vanilla), secs(pt.Skipper)})
	}
	return f, nil
}
