package experiments

import (
	"strings"
	"testing"
	"time"
)

// The experiment tests use Quick() parameters: the shapes the paper
// reports must hold at reduced scale too, since they are protocol
// properties, not absolute-throughput properties.

func TestTable1Renders(t *testing.T) {
	f := Table1()
	s := f.String()
	for _, want := range []string{"$75.0", "$13.5", "$4.5", "$0.2", "52.5%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	pts := Figure2Data()
	if len(pts) != 7 {
		t.Fatalf("%d configs", len(pts))
	}
	byName := map[string]float64{}
	for _, pt := range pts {
		byName[pt.Config] = pt.CostK
	}
	// All-tape cheapest, All-SSD most expensive, 3-tier beats 2-tier.
	if !(byName["All-tape"] < byName["3-Tier"] && byName["3-Tier"] < byName["2-Tier"] &&
		byName["2-Tier"] < byName["All-SCSI"] && byName["All-SCSI"] < byName["All-SSD"]) {
		t.Fatalf("cost ordering broken: %v", byName)
	}
}

func TestFigure3Shape(t *testing.T) {
	pts := Figure3Data()
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if pt.Ratio <= 1 {
			t.Errorf("CST at $%.2f/GB not cheaper (%v)", pt.CSDPrice, pt.Ratio)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	p := Quick()
	pts, err := p.Figure4Data()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// CSD time grows with clients; HDD stays flat; at 5 clients CSD is
	// far slower than HDD.
	for i := 1; i < len(pts); i++ {
		if pts[i].CSD <= pts[i-1].CSD {
			t.Fatalf("CSD time not increasing: %v", pts)
		}
	}
	flatness := float64(pts[4].HDD) / float64(pts[0].HDD)
	if flatness > 1.3 {
		t.Fatalf("HDD ideal not flat: %v", pts)
	}
	if pts[4].CSD < 2*pts[4].HDD {
		t.Fatalf("CSD at 5 clients (%v) should be >2x HDD (%v)", pts[4].CSD, pts[4].HDD)
	}
}

func TestFigure5Shape(t *testing.T) {
	p := Quick()
	pts, err := p.Figure5Data()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Avg <= pts[i-1].Avg {
			t.Fatalf("not monotone in S: %v", pts)
		}
	}
	// The paper reports ~6x from S=0 to S=20 at full scale; at reduced
	// scale the blow-up is still substantial.
	if ratio := float64(pts[4].Avg) / float64(pts[0].Avg); ratio < 2 {
		t.Fatalf("S sensitivity ratio %.2f < 2", ratio)
	}
}

func TestFigure7Shape(t *testing.T) {
	p := Quick()
	pts, err := p.Figure7Data()
	if err != nil {
		t.Fatal(err)
	}
	last := pts[4]
	if last.Skipper >= last.Vanilla {
		t.Fatalf("skipper (%v) not faster than vanilla (%v) at 5 clients", last.Skipper, last.Vanilla)
	}
	if float64(last.Vanilla)/float64(last.Skipper) < 2 {
		t.Fatalf("speedup %.2f < 2x", float64(last.Vanilla)/float64(last.Skipper))
	}
	// Skipper should stay within a small multiple of ideal.
	if float64(last.Skipper) > 4*float64(last.Ideal) {
		t.Fatalf("skipper %v vs ideal %v: too slow", last.Skipper, last.Ideal)
	}
}

func TestFigure8Shape(t *testing.T) {
	p := Quick()
	pts, err := p.Figure8Data()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d workloads", len(pts))
	}
	for name, pt := range pts {
		if pt.Skipper >= pt.Vanilla {
			t.Errorf("%s: skipper %v >= vanilla %v", name, pt.Skipper, pt.Vanilla)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	p := Quick()
	pts, err := p.Figure9Data()
	if err != nil {
		t.Fatal(err)
	}
	van, skp := pts[0], pts[1]
	vanSwitchPct := float64(van.Switch) / float64(van.Total)
	skpSwitchPct := float64(skp.Switch) / float64(skp.Total)
	// The paper: vanilla spends ~65% of its time in switches, Skipper ~2%.
	if vanSwitchPct < 0.3 {
		t.Fatalf("vanilla switch share %.2f too low", vanSwitchPct)
	}
	if skpSwitchPct > 0.15 {
		t.Fatalf("skipper switch share %.2f too high", skpSwitchPct)
	}
	// Component accounting must add up.
	for _, pt := range pts {
		if sum := pt.Processing + pt.Switch + pt.Transfer; sum > pt.Total {
			t.Fatalf("%v: components %v exceed total %v", pt.Mode, sum, pt.Total)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	p := Quick()
	pts, err := p.Table3Data()
	if err != nil {
		t.Fatal(err)
	}
	van, skp := pts[0], pts[1]
	// No switches: vanilla total = exec + fuse + network exactly.
	if van.Exec+van.Fuse+van.Network != van.Total {
		t.Fatalf("vanilla accounting: %v+%v+%v != %v", van.Exec, van.Fuse, van.Network, van.Total)
	}
	// MJoin per-object cost is ~6% above vanilla's.
	ratio := float64(skp.Exec) / float64(van.Exec)
	if ratio < 1.01 || ratio > 1.12 {
		t.Fatalf("mjoin/vanilla exec ratio %.3f, want ~1.06", ratio)
	}
	if skp.Fuse != 0 {
		t.Fatalf("skipper has FUSE cost %v", skp.Fuse)
	}
}

func TestFigure10Shape(t *testing.T) {
	p := Quick()
	pts, err := p.Figure10Data()
	if err != nil {
		t.Fatal(err)
	}
	vanGrowth := float64(pts[3].Vanilla) / float64(pts[0].Vanilla)
	skpGrowth := float64(pts[3].Skipper) / float64(pts[0].Skipper)
	if vanGrowth < 1.5 {
		t.Fatalf("vanilla growth %.2f under 4x switch latency", vanGrowth)
	}
	if skpGrowth > 1.25 {
		t.Fatalf("skipper growth %.2f: should be insensitive", skpGrowth)
	}
}

func TestFigure11aShape(t *testing.T) {
	p := Quick()
	pts, err := p.Figure11aData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d layouts", len(pts))
	}
	// All-in-one: no switches for either engine; vanilla degrades as
	// data fans out across groups; Skipper wins 2x+ on every layout
	// with switches and is far less layout-sensitive than vanilla.
	allin1, perG := pts[0], pts[2]
	if perG.Vanilla <= allin1.Vanilla {
		t.Fatalf("vanilla not layout-sensitive: %v", pts)
	}
	for _, pt := range pts[1:] {
		if r := float64(pt.Vanilla) / float64(pt.Skipper); r < 2 {
			t.Fatalf("%s: skipper speedup %.2f < 2x", pt.Layout, r)
		}
	}
	vanSpread := float64(pts[2].Vanilla) / float64(pts[0].Vanilla)
	skpSpread := float64(pts[2].Skipper) / float64(pts[0].Skipper)
	if skpSpread >= vanSpread {
		t.Fatalf("skipper layout spread %.2f >= vanilla %.2f", skpSpread, vanSpread)
	}
}

func TestFigure11bShape(t *testing.T) {
	p := Quick()
	pts, err := p.cacheSweep(p.SF, []int{6, 8, 10, 14})
	if err != nil {
		t.Fatal(err)
	}
	// GET count decreases (weakly) as cache grows; largest cache needs
	// no reissues beyond the input footprint.
	for i := 1; i < len(pts); i++ {
		if pts[i].Gets > pts[i-1].Gets {
			t.Fatalf("GETs grew with cache: %v", pts)
		}
		if pts[i].Avg > pts[i-1].Avg {
			t.Fatalf("time grew with cache: %v", pts)
		}
	}
	if pts[0].Gets <= pts[len(pts)-1].Gets/1 && pts[0].Gets == pts[len(pts)-1].Gets {
		t.Fatalf("no reissue effect visible: %v", pts)
	}
}

func TestFigure12Shape(t *testing.T) {
	p := Quick()
	pts, err := p.Figure12Data()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure12Point{}
	for _, pt := range pts {
		byName[pt.Policy] = pt
	}
	fcfs, maxq, rank := byName["fairness"], byName["maxquery"], byName["ranking"]
	// Max-Queries is most efficient (lowest cumulative) but starves the
	// lone client (highest max stretch); FCFS trades efficiency for
	// fairness; ranking sits between.
	if maxq.Cumulative > fcfs.Cumulative {
		t.Fatalf("maxquery (%v) slower than fcfs (%v)", maxq.Cumulative, fcfs.Cumulative)
	}
	if maxq.MaxStretch < rank.MaxStretch {
		t.Fatalf("maxquery max-stretch %.2f below ranking %.2f", maxq.MaxStretch, rank.MaxStretch)
	}
	if rank.Cumulative > fcfs.Cumulative {
		t.Fatalf("ranking (%v) slower than fcfs (%v)", rank.Cumulative, fcfs.Cumulative)
	}
	if fcfs.Switches < rank.Switches {
		t.Fatalf("fcfs produced fewer switches (%d) than ranking (%d)", fcfs.Switches, rank.Switches)
	}
}

func TestQuickRunsFast(t *testing.T) {
	// Guard: the Quick experiment suite used by tests must stay cheap.
	start := time.Now()
	p := Quick()
	if _, err := p.Figure7Data(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("quick figure7 took %v", el)
	}
}

func TestFigureRendering(t *testing.T) {
	p := Quick()
	f, err := p.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	if !strings.Contains(s, "Figure 7") || !strings.Contains(s, "Skipper") {
		t.Fatalf("rendering:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) < 7 {
		t.Fatalf("too few lines:\n%s", s)
	}
}
