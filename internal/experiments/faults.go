package experiments

import (
	"fmt"
	"time"

	"repro/internal/csd"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/objstore"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// This file is the evaluation of the fault-injection and recovery layer
// behind `skipperbench -faults`, which doubles as the CI chaos gate:
// a retryable-only fault plan (transient GET failures, latency stalls,
// bit-flipped payloads, all capped per object) must leave every query
// result byte-identical to the clean run — across both engines, DOP
// {1,4} and the pipeline off/on — while the GET-conservation invariant
// extends to the re-requests. The measurement half sweeps the fault
// rate and reports the cost of surviving: extra device transfers,
// retry backoff, and the makespan degradation, plus a crash/restart
// row (the device dies mid-run and comes back) at the end.

// faultSweepSeed keys every sweep decision; one seed, one schedule.
const faultSweepSeed = 99

// faultPlan builds the retryable-only plan at intensity rate: transfers
// fail transiently at the full rate, stall and corrupt at half of it,
// with the per-object cap keeping bounded retries convergent.
func faultPlan(rate float64) faults.Plan {
	return faults.Plan{
		Seed:               faultSweepSeed,
		TransientRate:      rate,
		StallRate:          rate / 2,
		Stall:              3 * time.Second,
		CorruptRate:        rate / 2,
		MaxFaultsPerObject: 3,
	}
}

// crashPlan is the sweep's crash/restart scenario: a clean device that
// dies at 60 s of simulated time and restarts 30 s later.
func crashPlan() faults.Plan {
	return faults.Plan{Seed: faultSweepSeed, CrashAt: 60 * time.Second, CrashDowntime: 30 * time.Second}
}

// faultRetryPolicy rides out the sweep's fault plans: attempts beyond
// the per-object cap, backoff deep enough to sleep across the crash
// downtime, no per-query budget.
func faultRetryPolicy() *skipper.RetryPolicy {
	return &skipper.RetryPolicy{
		MaxAttempts: 40,
		BaseBackoff: 500 * time.Millisecond,
		MaxBackoff:  8 * time.Second,
		Budget:      -1,
	}
}

// runFaultCluster executes the repeated-query multi-tenant workload
// (the cache sweep's shape) under the given fault plan, with a shared
// segment cache so corrupt-delivery quarantine and redelivery cross
// tenant boundaries. A zero plan runs the same cluster fault-free.
func (p Params) runFaultCluster(ds *workload.Dataset, mode skipper.Mode, dop int, pc *skipper.PipelineConfig, plan faults.Plan, keep bool) (*skipper.RunResult, *faults.Injector, error) {
	store := make(mapStore)
	ds.MergeInto(store)
	prune := true
	clients := make([]*skipper.Client, cacheSweepClients)
	for t := range clients {
		clients[t] = &skipper.Client{
			Tenant:       t,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      workload.MultiPass(ds.Catalog, cacheSweepPasses),
			CacheObjects: p.CacheObjects,
			StatsPruning: &prune,
			Parallelism:  dop,
			KeepResults:  keep,
			Pipeline:     pc,
			Retry:        faultRetryPolicy(),
		}
	}
	cfg := csd.DefaultConfig()
	cfg.GroupSwitch = p.GroupSwitch
	cfg.Bandwidth = p.Bandwidth
	var inj *faults.Injector
	if plan.Enabled() {
		var err error
		inj, err = faults.New(plan)
		if err != nil {
			return nil, nil, err
		}
		cfg.Faults = inj
	}
	cl := &skipper.Cluster{
		Clients:     clients,
		Layout:      layout.RoundRobinObjects{NumGroups: cacheSweepGroups},
		CSD:         cfg,
		Store:       store,
		SharedCache: segcache.NewObjects(p.CacheObjects),
	}
	res, err := cl.Run()
	return res, inj, err
}

// VerifyFaultsIdentical is the chaos gate: for every combination of
// engine mode, DOP {1,4} and pipeline off/on over the given dataset,
// the workload under a retryable-only fault plan must produce
// byte-identical results to the fault-free run, satisfy the GET
// accounting invariant extended to retries (every re-request is both a
// client GET and a device GET, so the conservation equation is
// unchanged), leave no cache pins behind, and must actually have been
// faulted (so the gate can never pass vacuously).
func (p Params) VerifyFaultsIdentical(ds *workload.Dataset) error {
	plan := faultPlan(0.4)
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		for _, dop := range []int{1, 4} {
			for _, pc := range []*skipper.PipelineConfig{nil, p.pipelineConfig()} {
				tag := fmt.Sprintf("%s dop=%d pipeline=%v", mode, dop, pc != nil)
				clean, _, err := p.runFaultCluster(ds, mode, dop, pc, faults.Plan{}, true)
				if err != nil {
					return fmt.Errorf("%s clean: %w", tag, err)
				}
				chaotic, inj, err := p.runFaultCluster(ds, mode, dop, pc, plan, true)
				if err != nil {
					return fmt.Errorf("%s faulted: %w", tag, err)
				}
				if err := compareRunResults(chaotic, clean); err != nil {
					return fmt.Errorf("%s: faulted results diverge from clean: %w", tag, err)
				}
				if err := checkPipelineAccounting(chaotic); err != nil {
					return fmt.Errorf("%s: %w", tag, err)
				}
				if inj.Stats().Injected() == 0 {
					return fmt.Errorf("%s: plan injected nothing; gate is vacuous", tag)
				}
				if chaotic.Cache != nil && chaotic.Cache.PinnedBytes != 0 {
					return fmt.Errorf("%s: %d bytes still pinned after the faulted run", tag, chaotic.Cache.PinnedBytes)
				}
			}
		}
	}
	return nil
}

// FaultPoint is one measured configuration of the fault-rate sweep.
type FaultPoint struct {
	// Label names the scenario ("clean", a fault rate, or "crash").
	Label string
	Mode  skipper.Mode
	// Makespan / AvgClient are simulated times; the degradation the
	// sweep measures is their growth over the clean row.
	Makespan  time.Duration
	AvgClient time.Duration
	// DeviceGets counts GETs the device received (retries included).
	DeviceGets int
	// Transient / Stalls / Corrupt are injected fault counts; Crashes /
	// Restarts come from the device.
	Transient, Stalls, Corrupt int64
	Crashes, Restarts          int
	// Retries / Backoff aggregate the clients' recovery effort.
	Retries int
	Backoff time.Duration
}

// measureFaults runs one scenario and digests it into a point.
func (p Params) measureFaults(ds *workload.Dataset, mode skipper.Mode, label string, plan faults.Plan) (FaultPoint, error) {
	dop := p.Parallelism
	if dop < 1 {
		dop = 1
	}
	res, inj, err := p.runFaultCluster(ds, mode, dop, p.pipelineConfig(), plan, false)
	if err != nil {
		return FaultPoint{}, err
	}
	pt := FaultPoint{
		Label:      label,
		Mode:       mode,
		Makespan:   res.Makespan,
		AvgClient:  avgElapsed(res),
		DeviceGets: res.CSD.GetsReceived,
		Crashes:    res.CSD.Crashes,
		Restarts:   res.CSD.Restarts,
	}
	if inj != nil {
		st := inj.Stats()
		pt.Transient, pt.Stalls, pt.Corrupt = st.Transient, st.Stalls, st.Corrupt
	}
	for _, cs := range res.Clients {
		pt.Retries += cs.Retries
		pt.Backoff += cs.RetryBackoff
	}
	return pt, nil
}

// FaultSweepData verifies the chaos gate on the v1 and v2 wire formats,
// then measures the skipper engine (pipeline on) under increasing fault
// rates plus the crash/restart scenario.
func (p Params) FaultSweepData() ([]FaultPoint, error) {
	base := p.clusteredDataset()
	for _, f := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds, err := objstore.ReencodeDataset(base, f)
		if err != nil {
			return nil, fmt.Errorf("format %v: %w", f, err)
		}
		if err := p.VerifyFaultsIdentical(ds); err != nil {
			return nil, fmt.Errorf("format %v: %w", f, err)
		}
	}
	mf := p.Format
	if mf == segment.FormatMem {
		mf = segment.FormatV2
	}
	ds, err := objstore.ReencodeDataset(base, mf)
	if err != nil {
		return nil, err
	}
	scenarios := []struct {
		label string
		plan  faults.Plan
	}{
		{"clean", faults.Plan{}},
		{"rate 0.2", faultPlan(0.2)},
		{"rate 0.4", faultPlan(0.4)},
		{"rate 0.6", faultPlan(0.6)},
		{"crash+restart", crashPlan()},
	}
	var out []FaultPoint
	for _, sc := range scenarios {
		pt, err := p.measureFaults(ds, skipper.ModeSkipper, sc.label, sc.plan)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.label, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// FaultReport renders FaultSweepData (`skipperbench -faults`).
func (p Params) FaultReport() (*Figure, error) {
	pts, err := p.FaultSweepData()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "Fault sweep",
		Title: fmt.Sprintf("Fault injection and recovery (%d tenants × %d passes, round-robin layout, skipper engine, pipeline on; per-object fault cap 3, retry backoff 500ms..8s)",
			cacheSweepClients, cacheSweepPasses),
		Columns: []string{
			"scenario", "makespan (s)", "avg client (s)", "device GETs",
			"transient", "stalls", "corrupt", "crashes", "retries", "backoff (s)",
		},
	}
	var clean time.Duration
	for i, pt := range pts {
		if i == 0 {
			clean = pt.Makespan
		}
		makespan := fmt.Sprintf("%.1f", pt.Makespan.Seconds())
		if i > 0 && clean > 0 {
			makespan += fmt.Sprintf(" (+%.0f%%)", 100*(pt.Makespan.Seconds()-clean.Seconds())/clean.Seconds())
		}
		f.Rows = append(f.Rows, []string{
			pt.Label,
			makespan,
			fmt.Sprintf("%.1f", pt.AvgClient.Seconds()),
			fmt.Sprintf("%d", pt.DeviceGets),
			fmt.Sprintf("%d", pt.Transient),
			fmt.Sprintf("%d", pt.Stalls),
			fmt.Sprintf("%d", pt.Corrupt),
			fmt.Sprintf("%d/%d", pt.Crashes, pt.Restarts),
			fmt.Sprintf("%d", pt.Retries),
			fmt.Sprintf("%.1f", pt.Backoff.Seconds()),
		})
	}
	f.Notes = append(f.Notes,
		"results verified byte-identical clean vs faulted across engines, formats (v1/v2), DOP {1,4} and pipeline off/on",
		"per client, device GETs == GETs issued - cache hits - prefetch served + prefetch issued (retries are both a client GET and a device GET)",
	)
	return f, nil
}
