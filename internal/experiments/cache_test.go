package experiments

import "testing"

// TestCacheSweepQuick runs the full `skipperbench -cache` pipeline at
// quick scale: the divergence gate across formats × engines × DOP ×
// pruning, then the budget sweep — and asserts the cache actually
// removes device traffic on the repeated-query multi-tenant workload.
func TestCacheSweepQuick(t *testing.T) {
	p := Quick()
	pts, err := p.CacheSweepData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("sweep produced %d points", len(pts))
	}
	off, best := pts[0], pts[len(pts)-1]
	if off.BudgetObjects != 0 || off.Hits != 0 {
		t.Fatalf("baseline point not cache-off: %+v", off)
	}
	if best.Hits == 0 {
		t.Fatalf("full-footprint budget produced no hits: %+v", best)
	}
	if best.DeviceGets >= off.DeviceGets {
		t.Fatalf("device GETs did not drop: %d at budget %d vs %d off",
			best.DeviceGets, best.BudgetObjects, off.DeviceGets)
	}
	if best.Switches > off.Switches {
		t.Fatalf("switches rose with cache: %d vs %d", best.Switches, off.Switches)
	}
	if best.Makespan >= off.Makespan {
		t.Fatalf("makespan did not improve: %v vs %v", best.Makespan, off.Makespan)
	}
	// Budgets are swept ascending; device traffic must be monotone
	// non-increasing as the cache grows.
	for i := 1; i < len(pts); i++ {
		if pts[i].DeviceGets > pts[i-1].DeviceGets {
			t.Fatalf("device GETs rose with budget: %+v -> %+v", pts[i-1], pts[i])
		}
	}
}

// TestCacheReportRenders exercises the figure rendering.
func TestCacheReportRenders(t *testing.T) {
	p := Quick()
	f, err := p.CacheReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) == 0 || len(f.Columns) != 8 {
		t.Fatalf("unexpected figure shape: %d rows, %d cols", len(f.Rows), len(f.Columns))
	}
	if f.CSV() == "" || f.String() == "" {
		t.Fatal("empty rendering")
	}
}
