package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/csd"
	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/objstore"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// This file is the evaluation of the asynchronous execution pipeline
// (scheduler-aware prefetch + concurrent decode workers) behind
// `skipperbench -pipeline`, which doubles as the CI divergence gate:
// every configuration runs with the pipeline off and on, across both
// engines, the v1/v2 wire formats, DOP and pruning, and the result
// sets must match byte for byte. The measurement half reports two
// different clocks — the simulated makespan (which prefetch may
// improve, by disclosing future demand to the device scheduler) and
// real wall-clock time (which the decode workers improve, by
// overlapping decode with compute and I/O waits).

// pipelinePrefetchBytes is the sweep's in-flight prefetch budget: room
// for four of the paper's 1 GB objects ahead of demand.
const pipelinePrefetchBytes = 4e9

// pipelineConfig is the pipeline-on configuration for these params.
func (p Params) pipelineConfig() *skipper.PipelineConfig {
	workers := p.Parallelism
	if workers < 2 {
		workers = 2
	}
	return &skipper.PipelineConfig{
		PrefetchBytes: pipelinePrefetchBytes,
		DecodeWorkers: workers,
		DecodeAhead:   2,
	}
}

// runPipelineCluster executes the repeated-query multi-tenant workload
// (the cache sweep's shape: cacheSweepClients tenants × cacheSweepPasses
// passes over one shared dataset, round-robin layout) with the given
// pipeline configuration on every client (nil = pipeline off). No
// shared segment cache, so prefetched deliveries travel the staged
// hand-off path.
func (p Params) runPipelineCluster(ds *workload.Dataset, mode skipper.Mode, dop int, prune bool, pc *skipper.PipelineConfig, keep bool) (*skipper.RunResult, error) {
	store := make(mapStore)
	ds.MergeInto(store)
	pr := prune
	clients := make([]*skipper.Client, cacheSweepClients)
	for t := range clients {
		clients[t] = &skipper.Client{
			Tenant:       t,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      workload.MultiPass(ds.Catalog, cacheSweepPasses),
			CacheObjects: p.CacheObjects,
			StatsPruning: &pr,
			Parallelism:  dop,
			KeepResults:  keep,
			Pipeline:     pc,
		}
	}
	cfg := csd.DefaultConfig()
	cfg.GroupSwitch = p.GroupSwitch
	cfg.Bandwidth = p.Bandwidth
	cl := &skipper.Cluster{
		Clients: clients,
		Layout:  layout.RoundRobinObjects{NumGroups: cacheSweepGroups},
		CSD:     cfg,
		Store:   store,
	}
	return cl.Run()
}

// checkPipelineAccounting enforces the prefetch traffic invariant: per
// client, the GETs the device saw equal the demand GETs not absorbed
// locally (cache hits and staged prefetches) plus the prefetch GETs.
func checkPipelineAccounting(res *skipper.RunResult) error {
	for _, cs := range res.Clients {
		device := res.CSD.GetsByTenant[cs.Tenant]
		want := cs.GetsIssued - cs.CacheHits - cs.PrefetchServed + cs.PrefetchIssued
		if device != want {
			return fmt.Errorf("tenant %d: device GETs %d != issued %d - hits %d - served %d + prefetched %d",
				cs.Tenant, device, cs.GetsIssued, cs.CacheHits, cs.PrefetchServed, cs.PrefetchIssued)
		}
		if cs.PrefetchUseful > cs.PrefetchIssued {
			return fmt.Errorf("tenant %d: prefetch useful %d > issued %d",
				cs.Tenant, cs.PrefetchUseful, cs.PrefetchIssued)
		}
	}
	return nil
}

// VerifyPipelineIdentical is the divergence gate: for every combination
// of engine mode, DOP {1,4} and pruning on/off over the given dataset,
// the repeated-query workload must produce byte-identical results with
// the pipeline on and off, the pipeline-on run must satisfy the GET
// accounting invariant, and it must actually have prefetched something
// (so the gate can never pass vacuously).
func (p Params) VerifyPipelineIdentical(ds *workload.Dataset) error {
	pc := p.pipelineConfig()
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		for _, dop := range []int{1, 4} {
			for _, prune := range []bool{true, false} {
				tag := fmt.Sprintf("%s dop=%d prune=%v", mode, dop, prune)
				on, err := p.runPipelineCluster(ds, mode, dop, prune, pc, true)
				if err != nil {
					return fmt.Errorf("%s pipeline on: %w", tag, err)
				}
				off, err := p.runPipelineCluster(ds, mode, dop, prune, nil, true)
				if err != nil {
					return fmt.Errorf("%s pipeline off: %w", tag, err)
				}
				if err := compareRunResults(on, off); err != nil {
					return fmt.Errorf("%s: pipeline on/off results diverge: %w", tag, err)
				}
				if err := checkPipelineAccounting(on); err != nil {
					return fmt.Errorf("%s: %w", tag, err)
				}
				issued := 0
				for _, cs := range on.Clients {
					issued += cs.PrefetchIssued
				}
				if issued == 0 {
					return fmt.Errorf("%s: pipeline-on run issued no prefetches; gate is vacuous", tag)
				}
			}
		}
	}
	return nil
}

// PipelinePoint is one measured configuration of the pipeline sweep.
type PipelinePoint struct {
	Mode skipper.Mode
	// On reports whether the pipeline was enabled.
	On bool
	// Makespan / AvgClient are simulated (virtual) times; Wall is the
	// real time the cluster run took on the host.
	Makespan  time.Duration
	AvgClient time.Duration
	Wall      time.Duration
	// DeviceGets counts GETs that reached the CSD (demand + prefetch).
	DeviceGets int
	// Switches is the device group-switch count.
	Switches int
	// PrefetchIssued / PrefetchServed / PrefetchUseful aggregate the
	// clients' prefetch counters.
	PrefetchIssued, PrefetchServed, PrefetchUseful int
	// Pipe is the wall-clock decode/stall breakdown.
	Pipe metrics.PipelineBreakdown
}

// measurePipeline runs one configuration and digests it into a point.
func (p Params) measurePipeline(ds *workload.Dataset, mode skipper.Mode, pc *skipper.PipelineConfig) (PipelinePoint, error) {
	dop := p.Parallelism
	if dop < 1 {
		dop = 1
	}
	res, err := p.runPipelineCluster(ds, mode, dop, true, pc, false)
	if err != nil {
		return PipelinePoint{}, err
	}
	pt := PipelinePoint{
		Mode:       mode,
		On:         pc != nil,
		Makespan:   res.Makespan,
		AvgClient:  avgElapsed(res),
		Wall:       res.Wall,
		DeviceGets: res.CSD.GetsReceived,
		Switches:   res.CSD.GroupSwitches,
	}
	var agg engine.PipeStats
	for _, cs := range res.Clients {
		pt.PrefetchIssued += cs.PrefetchIssued
		pt.PrefetchServed += cs.PrefetchServed
		pt.PrefetchUseful += cs.PrefetchUseful
		agg.Add(cs.Pipe)
	}
	pt.Pipe = metrics.PipelineFrom(agg)
	return pt, nil
}

// PipelineSweepData verifies the divergence gate on the v1 and v2 wire
// formats, then measures both engines with the pipeline off and on and
// returns the four points. Measurement uses the Params' format, except
// that FormatMem is promoted to FormatV2 — in-memory segments have no
// decode work, so there would be nothing for the pipeline to overlap.
func (p Params) PipelineSweepData() ([]PipelinePoint, error) {
	base := p.clusteredDataset()
	for _, f := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds, err := objstore.ReencodeDataset(base, f)
		if err != nil {
			return nil, fmt.Errorf("format %v: %w", f, err)
		}
		if err := p.VerifyPipelineIdentical(ds); err != nil {
			return nil, fmt.Errorf("format %v: %w", f, err)
		}
	}
	mf := p.Format
	if mf == segment.FormatMem {
		mf = segment.FormatV2
	}
	ds, err := objstore.ReencodeDataset(base, mf)
	if err != nil {
		return nil, err
	}
	var out []PipelinePoint
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		for _, pc := range []*skipper.PipelineConfig{nil, p.pipelineConfig()} {
			pt, err := p.measurePipeline(ds, mode, pc)
			if err != nil {
				return nil, fmt.Errorf("%s pipeline=%v: %w", mode, pc != nil, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// PipelineReport renders PipelineSweepData (`skipperbench -pipeline`).
func (p Params) PipelineReport() (*Figure, error) {
	pts, err := p.PipelineSweepData()
	if err != nil {
		return nil, err
	}
	pc := p.pipelineConfig()
	f := &Figure{
		ID: "Pipeline sweep",
		Title: fmt.Sprintf("Asynchronous execution pipeline (%d tenants × %d passes, round-robin layout; prefetch %.0f GB ahead, %d decode workers)",
			cacheSweepClients, cacheSweepPasses, pipelinePrefetchBytes/1e9, pc.DecodeWorkers),
		Columns: []string{
			"engine", "pipeline", "makespan (s)", "avg client (s)", "wall (ms)",
			"device GETs", "switches", "prefetched", "pf served", "pf useful",
			"decode busy (ms)", "decode stall (ms)", "hidden (ms)", "overlap",
		},
		Notes: []string{
			"results verified byte-identical pipeline on/off across engines, formats (v1/v2), DOP {1,4} and pruning on/off",
			"per client, device GETs == GETs issued - cache hits - prefetches served + prefetches issued",
			"makespan/avg client are simulated time (prefetch discloses demand to the scheduler); wall/decode columns are host time (decode workers overlap decode with compute)",
			fmt.Sprintf("host has %d CPU(s); decode overlap requires spare cores — on a single-core host decodes only run while the consumer blocks, so the overlap column reads 0%%", runtime.NumCPU()),
		},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }
	for _, pt := range pts {
		state := "off"
		if pt.On {
			state = "on"
		}
		f.Rows = append(f.Rows, []string{
			fmt.Sprint(pt.Mode), state, secs(pt.Makespan), secs(pt.AvgClient), ms(pt.Wall),
			fmt.Sprint(pt.DeviceGets), fmt.Sprint(pt.Switches),
			fmt.Sprint(pt.PrefetchIssued), fmt.Sprint(pt.PrefetchServed), fmt.Sprint(pt.PrefetchUseful),
			ms(pt.Pipe.DecodeBusy), ms(pt.Pipe.DecodeStall), ms(pt.Pipe.Hidden),
			fmt.Sprintf("%.0f%%", 100*pt.Pipe.OverlapRatio()),
		})
	}
	return f, nil
}
