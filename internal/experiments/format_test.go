package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/mjoin"
	"repro/internal/objstore"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// The format differential suite proves the columnar segment format end to
// end: for every probe query, serving the same dataset as in-memory
// segments (mem), row-major objects (v1) and columnar objects with
// projection pushdown (v2) must produce byte-identical, identically
// ordered results — across both engines, DOP ∈ {1, 4} and data skipping
// on/off. Queries whose aggregates are integer-only compare across
// engines too; float-aggregating queries compare within each engine
// (parallel/ out-of-order float addition may differ in the last ulps, as
// documented in docs/tuning.md — that is an engine property, not a
// format one).

var formatDiffQueries = []struct {
	name        string
	spec        func(ds *workload.Dataset) skipper.QuerySpec
	crossEngine bool
}{
	{"q12", func(ds *workload.Dataset) skipper.QuerySpec { return workload.Q12(ds.Catalog) }, true},
	{"shipdate-window", func(ds *workload.Dataset) skipper.QuerySpec {
		return workload.QShipdateWindow(ds.Catalog, "1994-01-01", "1994-03-31")
	}, true},
	{"q5-selective", func(ds *workload.Dataset) skipper.QuerySpec { return workload.Q5Selective(ds.Catalog) }, true},
	{"projective-scan", func(ds *workload.Dataset) skipper.QuerySpec { return workload.QProjectiveScan(ds.Catalog) }, true},
	{"count-star", func(ds *workload.Dataset) skipper.QuerySpec { return workload.QCountLineitem(ds.Catalog) }, true},
	{"q3-float", func(ds *workload.Dataset) skipper.QuerySpec { return workload.Q3(ds.Catalog) }, false},
	{"q14-float", func(ds *workload.Dataset) skipper.QuerySpec { return workload.Q14(ds.Catalog) }, false},
}

// evalFormat runs one (mode, dop, prune) combination locally over the
// given (possibly lazily decoded) store.
func evalFormat(ds *workload.Dataset, spec skipper.QuerySpec, mode skipper.Mode, dop int, prune bool) ([]tuple.Row, error) {
	if mode == skipper.ModeVanilla {
		it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(ds.Store), spec.Join, prune)
		if err != nil {
			return nil, err
		}
		if spec.Shape != nil {
			it = spec.Shape(it)
		}
		return engine.Collect(engine.Parallelize(it, dop))
	}
	cfg := mjoin.DefaultConfig(len(spec.Join.Objects()))
	cfg.StatsPruning = prune
	cfg.Parallelism = dop
	res, err := mjoin.Run(spec.Join, cfg, &immediateSource{store: ds.Store})
	if err != nil {
		return nil, err
	}
	if spec.Shape == nil {
		return res.Rows, nil
	}
	return engine.Collect(engine.Parallelize(spec.Shape(engine.NewValues(res.Schema, res.Rows)), dop))
}

func TestFormatDifferential(t *testing.T) {
	p := Quick()
	base := p.clusteredDataset()
	datasets := map[segment.Format]*workload.Dataset{segment.FormatMem: base}
	for _, f := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds, err := objstore.ReencodeDataset(base, f)
		if err != nil {
			t.Fatalf("encode %v: %v", f, err)
		}
		datasets[f] = ds
	}
	formats := []segment.Format{segment.FormatMem, segment.FormatV1, segment.FormatV2}
	for _, q := range formatDiffQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			want := map[skipper.Mode][]string{}
			for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
				for _, f := range formats {
					ds := datasets[f]
					spec := q.spec(ds)
					for _, dop := range []int{1, 4} {
						for _, prune := range []bool{true, false} {
							label := fmt.Sprintf("%v/%s/dop%d/prune=%v", f, mode, dop, prune)
							rows, err := evalFormat(ds, spec, mode, dop, prune)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							got := render(rows)
							key := mode
							if q.crossEngine {
								key = skipper.ModeVanilla // one bucket for all runs
							}
							if want[key] == nil {
								want[key] = got
								continue
							}
							if err := equalStrings(want[key], got); err != nil {
								t.Fatalf("%s diverges: %v", label, err)
							}
						}
					}
				}
			}
		})
	}
}

// TestFormatDifferentialScrambledArrivals drives the MJoin engine with
// deterministic shuffled deliveries over every format: out-of-order
// arrivals are the regime the state manager exists for, and the shaped
// results must still be identical across formats.
func TestFormatDifferentialScrambledArrivals(t *testing.T) {
	p := Quick()
	base := p.clusteredDataset()
	var want []string
	for _, f := range []segment.Format{segment.FormatMem, segment.FormatV1, segment.FormatV2} {
		ds, err := objstore.ReencodeDataset(base, f)
		if err != nil {
			t.Fatalf("encode %v: %v", f, err)
		}
		spec := workload.QShipdateWindow(ds.Catalog, "1994-01-01", "1994-06-30")
		for seed := int64(1); seed <= 3; seed++ {
			cfg := mjoin.DefaultConfig(len(spec.Join.Objects()))
			res, err := mjoin.Run(spec.Join, cfg, &scrambledSource{store: ds.Store, rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				t.Fatalf("%v seed %d: %v", f, seed, err)
			}
			rows, err := engine.Collect(spec.Shape(engine.NewValues(res.Schema, res.Rows)))
			if err != nil {
				t.Fatalf("%v seed %d: %v", f, seed, err)
			}
			got := render(rows)
			if want == nil {
				want = got
				continue
			}
			if err := equalStrings(want, got); err != nil {
				t.Fatalf("%v seed %d diverges: %v", f, seed, err)
			}
		}
	}
}

// scrambledSource delivers requested objects in a deterministic shuffled
// order.
type scrambledSource struct {
	store map[segment.ObjectID]*segment.Segment
	rng   *rand.Rand
	queue []*segment.Segment
}

func (s *scrambledSource) Request(objs []segment.ObjectID) {
	order := make([]segment.ObjectID, len(objs))
	copy(order, objs)
	s.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, id := range order {
		s.queue = append(s.queue, s.store[id])
	}
}

func (s *scrambledSource) NextArrival() (*segment.Segment, error) {
	sg := s.queue[0]
	s.queue = s.queue[1:]
	return sg, nil
}

// TestFormatPreservesCatalogStats asserts the v2 path's directory-derived
// statistics are exactly what row-walking produces: same zone maps, same
// pruning decisions.
func TestFormatPreservesCatalogStats(t *testing.T) {
	p := Quick()
	base := p.clusteredDataset()
	v2, err := objstore.ReencodeDataset(base, segment.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range base.Catalog.TableNames() {
		bt, vt := base.Catalog.MustTable(name), v2.Catalog.MustTable(name)
		if bt.RowCount != vt.RowCount {
			t.Fatalf("%s: row count %d vs %d", name, bt.RowCount, vt.RowCount)
		}
		for si := range bt.Stats.Segments {
			bs, vs := bt.Stats.Segments[si], vt.Stats.Segments[si]
			if bs.Rows != vs.Rows {
				t.Fatalf("%s[%d]: rows %d vs %d", name, si, bs.Rows, vs.Rows)
			}
			for ci := range bs.Cols {
				b, v := bs.Cols[ci], vs.Cols[ci]
				if b.HasRange != v.HasRange || b.Nulls != v.Nulls {
					t.Fatalf("%s[%d] col %d: range/nulls diverge", name, si, ci)
				}
				if b.HasRange && (!tuple.Equal(b.Min, v.Min) || !tuple.Equal(b.Max, v.Max)) {
					t.Fatalf("%s[%d] col %d: zone map [%v,%v] vs [%v,%v]", name, si, ci, b.Min, b.Max, v.Min, v.Max)
				}
				if (b.Bloom == nil) != (v.Bloom == nil) {
					t.Fatalf("%s[%d] col %d: bloom presence diverges", name, si, ci)
				}
			}
		}
	}
}

// TestProjectionReportQuick exercises the `skipperbench -proj` path at
// quick scale, including its divergence gate and the headline claims:
// v2 must decode strictly fewer bytes than v1 on the projective probes.
func TestProjectionReportQuick(t *testing.T) {
	p := Quick()
	pts, err := p.ProjectionReportData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || len(pts)%2 != 0 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 0; i+1 < len(pts); i += 2 {
		v1, v2 := pts[i], pts[i+1]
		if v1.Format != segment.FormatV1 || v2.Format != segment.FormatV2 || v1.Query != v2.Query {
			t.Fatalf("unexpected pairing: %+v / %+v", v1, v2)
		}
		if v1.BytesSkipped != 0 {
			t.Errorf("%s: v1 reported %d projection-skipped bytes", v1.Query, v1.BytesSkipped)
		}
		if v2.BytesDecoded >= v1.BytesDecoded {
			t.Errorf("%s: v2 decoded %d bytes, v1 %d — no reduction", v2.Query, v2.BytesDecoded, v1.BytesDecoded)
		}
		if v1.Rows != v2.Rows {
			t.Errorf("%s: result cardinality %d vs %d", v1.Query, v1.Rows, v2.Rows)
		}
	}
}
