package experiments

import (
	"testing"
	"time"
)

// TestFaultSweepQuick runs the full `skipperbench -faults` path at
// quick scale: the chaos gate (clean vs faulted × engines × v1/v2 ×
// DOP × pipeline) followed by the measurement scenarios — and asserts
// the faulted rows actually injected, retried and degraded, and the
// crash row crashed and recovered.
func TestFaultSweepQuick(t *testing.T) {
	p := Quick()
	pts, err := p.FaultSweepData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("sweep produced %d points, want 5", len(pts))
	}
	clean := pts[0]
	if clean.Label != "clean" || clean.Transient+clean.Corrupt+clean.Stalls != 0 || clean.Retries != 0 {
		t.Fatalf("clean row recorded fault work: %+v", clean)
	}
	var sawInjection, sawRetry bool
	for _, pt := range pts[1 : len(pts)-1] {
		if pt.Transient+pt.Corrupt+pt.Stalls > 0 {
			sawInjection = true
		}
		if pt.Retries > 0 {
			sawRetry = true
			if pt.DeviceGets <= clean.DeviceGets {
				t.Errorf("%s: retries %d yet device GETs %d did not exceed clean %d",
					pt.Label, pt.Retries, pt.DeviceGets, clean.DeviceGets)
			}
		}
		// Degradation is measured, never negative: surviving faults may
		// cost time but the schedule cannot beat the clean run.
		if pt.Makespan < clean.Makespan {
			t.Errorf("%s: faulted makespan %v beat clean %v", pt.Label, pt.Makespan, clean.Makespan)
		}
	}
	if !sawInjection {
		t.Error("no fault-rate row injected anything — the sweep is vacuous")
	}
	if !sawRetry {
		t.Error("no fault-rate row retried anything — recovery never ran")
	}
	crash := pts[len(pts)-1]
	if crash.Label != "crash+restart" || crash.Crashes != 1 || crash.Restarts != 1 {
		t.Fatalf("crash row did not crash and restart exactly once: %+v", crash)
	}
	if crash.Retries == 0 || crash.Backoff == 0 {
		t.Fatalf("crash row recovered without retries/backoff: %+v", crash)
	}
	if crash.Makespan < clean.Makespan+30*time.Second {
		t.Fatalf("crash row makespan %v does not absorb the 30s downtime (clean %v)", crash.Makespan, clean.Makespan)
	}
}
