package experiments

import (
	"fmt"
	"time"

	"repro/internal/csd"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/skipper"
)

// Figure12Point summarizes one scheduling policy's fairness/efficiency.
type Figure12Point struct {
	Policy     string
	L2Norm     float64
	MaxStretch float64
	Cumulative time.Duration
	Switches   int
}

// Figure12Data compares FCFS, Max-Queries and rank-based scheduling under
// the skewed layout of §5.2.5: five Skipper clients repeating Q12 ten
// times; two groups hold two clients each and the last group one client.
// Stretch normalizes each client's time by its single-client ("alone")
// execution time.
func (p Params) Figure12Data() ([]Figure12Point, error) {
	const repeats = 10
	// Ideal: one client alone on the CSD — no competing tenants, its own
	// group, no switches.
	alone, err := p.run(runSpec{
		clients: 1, mode: skipper.ModeSkipper, switchLat: -1, cache: p.CacheObjects,
		repeat:  repeats,
		dataset: p.tpchDataset(p.SF), queries: q12Queries,
	})
	if err != nil {
		return nil, err
	}
	// Per-query ideal: the single-client run services every query
	// without competition; stretch is computed per query (§5.2.5).
	ideal := alone.Clients[0].Elapsed() / repeats

	policies := []struct {
		name  string
		sched csd.Scheduler
	}{
		{"fairness", csd.NewFCFSQuery()},
		{"maxquery", csd.NewMaxQueries()},
		{"ranking", csd.NewRankBased(1)},
	}
	var out []Figure12Point
	for _, pol := range policies {
		res, err := p.run(runSpec{
			clients: 5, mode: skipper.ModeSkipper, switchLat: -1, cache: p.CacheObjects,
			repeat:    repeats,
			layoutPol: layout.ByTenant{Groups: []int{0, 0, 1, 1, 2}},
			scheduler: pol.sched,
			dataset:   p.tpchDataset(p.SF), queries: q12Queries,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pol.name, err)
		}
		var stretches []float64
		for _, cs := range res.Clients {
			for _, qr := range cs.PerQuery {
				stretches = append(stretches, metrics.Stretch(qr.Finish-qr.Start, ideal))
			}
		}
		out = append(out, Figure12Point{
			Policy:     pol.name,
			L2Norm:     metrics.L2Norm(stretches),
			MaxStretch: metrics.Max(stretches),
			Cumulative: cumElapsed(res),
			Switches:   res.CSD.GroupSwitches,
		})
	}
	return out, nil
}

// Figure12 renders Figure 12 (both panels).
func (p Params) Figure12() (*Figure, error) {
	pts, err := p.Figure12Data()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:      "Figure 12",
		Title:   "Fairness vs efficiency: scheduling policies under a skewed layout (Q12 x10, 5 clients)",
		Columns: []string{"policy", "L2-norm stretch", "max stretch", "cumulative time (s)", "switches"},
	}
	for _, pt := range pts {
		f.Rows = append(f.Rows, []string{
			pt.Policy,
			fmt.Sprintf("%.2f", pt.L2Norm),
			fmt.Sprintf("%.2f", pt.MaxStretch),
			secs(pt.Cumulative),
			fmt.Sprint(pt.Switches),
		})
	}
	return f, nil
}
