package experiments

import (
	"testing"

	"repro/internal/skipper"
)

// TestSelectivitySweep: narrowing the predicate window must
// monotonically-ish increase skipping; the widest window skips nothing
// beyond empties; every point's results are verified identical inside
// the sweep itself.
func TestSelectivitySweep(t *testing.T) {
	p := Quick()
	pts, err := p.SelectivitySweepData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(selectivityWindows) {
		t.Fatalf("%d points", len(pts))
	}
	widest, tightest := pts[0], pts[len(pts)-1]
	if widest.Skipped != 0 {
		t.Fatalf("whole-range window skipped %d segments", widest.Skipped)
	}
	if tightest.Skipped == 0 {
		t.Fatal("tightest window skipped nothing")
	}
	if tightest.GetsPruned >= tightest.GetsUnpruned {
		t.Fatalf("tight window: %d GETs pruned vs %d unpruned", tightest.GetsPruned, tightest.GetsUnpruned)
	}
	if tightest.TimePruned >= tightest.TimeUnpruned {
		t.Fatalf("tight window: pruning did not cut virtual time (%v vs %v)", tightest.TimePruned, tightest.TimeUnpruned)
	}
}

// TestPruneReport: the -prune gate must cover both engines and both
// workloads, and show a strict request reduction on each.
func TestPruneReport(t *testing.T) {
	p := Quick()
	pts, err := p.PruneReportData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d report rows", len(pts))
	}
	seen := map[skipper.Mode]int{}
	for _, pt := range pts {
		seen[pt.Mode]++
		if pt.Skipped == 0 {
			t.Fatalf("%s %v: nothing skipped", pt.Query, pt.Mode)
		}
		if pt.GetsPruned >= pt.GetsUnpruned {
			t.Fatalf("%s %v: GETs %d pruned vs %d unpruned", pt.Query, pt.Mode, pt.GetsPruned, pt.GetsUnpruned)
		}
	}
	if seen[skipper.ModeVanilla] != 2 || seen[skipper.ModeSkipper] != 2 {
		t.Fatalf("mode coverage %v", seen)
	}
}
