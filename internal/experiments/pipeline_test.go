package experiments

import (
	"testing"

	"repro/internal/skipper"
)

// TestPipelineSweepQuick runs the full `skipperbench -pipeline` path at
// quick scale: the divergence gate (pipeline on/off × engines × v1/v2 ×
// DOP × pruning) followed by the four measurement points — and asserts
// the pipeline-on runs actually prefetched, decoded concurrently, and
// improved (or at least did not regress) the simulated makespan.
func TestPipelineSweepQuick(t *testing.T) {
	p := Quick()
	pts, err := p.PipelineSweepData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("sweep produced %d points, want 4", len(pts))
	}
	for i := 0; i < len(pts); i += 2 {
		off, on := pts[i], pts[i+1]
		if off.On || !on.On {
			t.Fatalf("point order wrong: %+v / %+v", off, on)
		}
		if off.Mode != on.Mode {
			t.Fatalf("mode mismatch: %v vs %v", off.Mode, on.Mode)
		}
		// The serial baseline decodes inline: every decode stalls for its
		// full duration, nothing is hidden, nothing is prefetched.
		if off.PrefetchIssued != 0 || off.Pipe.Hidden != 0 || off.Pipe.Overlapped != 0 {
			t.Fatalf("%v pipeline-off point recorded pipeline work: %+v", off.Mode, off)
		}
		if off.Pipe.DecodeBusy != off.Pipe.DecodeStall {
			t.Fatalf("%v: serial baseline stall != busy: %+v", off.Mode, off.Pipe)
		}
		if on.PrefetchIssued == 0 {
			t.Fatalf("%v pipeline-on point issued no prefetches: %+v", on.Mode, on)
		}
		if on.PrefetchServed+on.PrefetchUseful == 0 {
			t.Fatalf("%v: no prefetch was ever consumed: %+v", on.Mode, on)
		}
		if on.Pipe.Decodes == 0 || on.Pipe.DecodeBusy <= 0 {
			t.Fatalf("%v pipeline-on point recorded no decode work: %+v", on.Mode, on)
		}
		// Prefetch discloses demand early; it must never make the
		// simulated schedule worse.
		if on.Makespan > off.Makespan {
			t.Fatalf("%v: pipeline worsened makespan: %v > %v", on.Mode, on.Makespan, off.Makespan)
		}
		if on.Wall <= 0 || off.Wall <= 0 {
			t.Fatalf("%v: missing wall-clock measurement", on.Mode)
		}
	}
}

// TestPipelineConfigDefaults pins the derived pipeline-on configuration.
func TestPipelineConfigDefaults(t *testing.T) {
	p := Quick()
	pc := p.pipelineConfig()
	if pc.PrefetchBytes != pipelinePrefetchBytes || pc.DecodeWorkers < 2 || pc.DecodeAhead != 2 {
		t.Fatalf("unexpected config %+v", pc)
	}
	p.Parallelism = 8
	if got := p.pipelineConfig().DecodeWorkers; got != 8 {
		t.Fatalf("workers %d, want parallelism 8", got)
	}
}

// TestPipelineAccountingRejectsImbalance sanity-checks the invariant
// checker itself against a doctored result.
func TestPipelineAccountingRejectsImbalance(t *testing.T) {
	p := Quick()
	ds, err := p.encoded(p.clusteredDataset())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.runPipelineCluster(ds, skipper.ModeSkipper, 1, true, p.pipelineConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkPipelineAccounting(res); err != nil {
		t.Fatalf("balanced run rejected: %v", err)
	}
	res.Clients[0].PrefetchIssued++
	if err := checkPipelineAccounting(res); err == nil {
		t.Fatal("doctored run passed the accounting check")
	}
}
