// Tracing differential suite: the span layer must be an observer, never
// a participant. The same workload runs with tracing off and on — across
// engine modes, segment formats, DOP and the async pipeline (decode
// workers record spans concurrently, so CI's -race job exercises that
// path) — and results must be byte-identical, with the traced run
// producing a structurally sound span tree.
package skipper_test

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runTraced executes the 2-pass workload on one tenant, returning the
// run result and the query trace (nil when tracing is off).
func runTraced(t *testing.T, ds *workload.Dataset, mode skipper.Mode, dop int, pipe bool, traced bool) (*skipper.RunResult, *trace.QueryTrace) {
	t.Helper()
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	var qt *trace.QueryTrace
	if traced {
		qt = trace.NewQueryTrace("diff", 0, "")
	}
	client := &skipper.Client{
		Tenant:       0,
		Mode:         mode,
		Catalog:      ds.Catalog,
		Queries:      workload.MultiPass(ds.Catalog, 2),
		CacheObjects: 6,
		Parallelism:  dop,
		KeepResults:  true,
		QTrace:       qt,
	}
	if pipe {
		client.Pipeline = &skipper.PipelineConfig{DecodeWorkers: 2, DecodeAhead: 2, PrefetchBytes: 8 << 30}
	}
	cl := &skipper.Cluster{
		Clients: []*skipper.Client{client},
		Layout:  layout.RoundRobinObjects{NumGroups: 3},
		Store:   store,
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatalf("mode=%v dop=%d pipe=%v traced=%v: %v", mode, dop, pipe, traced, err)
	}
	return res, qt
}

func TestTracingDifferential(t *testing.T) {
	for _, format := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds := sharedDataset(t, format)
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			for _, dop := range []int{1, 4} {
				for _, pipe := range []bool{false, true} {
					name := fmt.Sprintf("%v/%v/dop%d/pipe=%v", format, mode, dop, pipe)
					t.Run(name, func(t *testing.T) {
						off, _ := runTraced(t, ds, mode, dop, pipe, false)
						on, qt := runTraced(t, ds, mode, dop, pipe, true)
						// Byte-identical results, query by query.
						qa, qb := on.Clients[0].PerQuery, off.Clients[0].PerQuery
						if len(qa) != len(qb) {
							t.Fatalf("ran %d vs %d queries", len(qa), len(qb))
						}
						for j := range qa {
							ra, rb := qa[j].Results, qb[j].Results
							if len(ra) != len(rb) {
								t.Fatalf("query %s: %d vs %d rows", qa[j].Name, len(ra), len(rb))
							}
							for k := range ra {
								if ra[k].String() != rb[k].String() {
									t.Fatalf("query %s row %d: %s vs %s", qa[j].Name, k, ra[k], rb[k])
								}
							}
						}
						// Tracing is an observer of timing too: virtual-clock
						// quantities must match exactly (wall time may differ).
						if on.Makespan != off.Makespan {
							t.Fatalf("tracing changed the makespan: %v vs %v", on.Makespan, off.Makespan)
						}
						if on.CSD.GetsReceived != off.CSD.GetsReceived {
							t.Fatalf("tracing changed device traffic: %d vs %d GETs",
								on.CSD.GetsReceived, off.CSD.GetsReceived)
						}
						// The traced run must have produced a sound span tree:
						// one root per query, well-formed bounds, and fetch or
						// decode activity under the execute phases.
						checkSpanTree(t, qt, len(qa))
					})
				}
			}
		}
	}
}

// checkSpanTree asserts structural soundness of a recorded trace.
func checkSpanTree(t *testing.T, qt *trace.QueryTrace, queries int) {
	t.Helper()
	spans := qt.Spans()
	if len(spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	byID := map[int]trace.Span{}
	var roots, execs, work int
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.WallEnd < sp.WallStart {
			t.Fatalf("span %d (%s %s) has inverted wall bounds", sp.ID, sp.Cat, sp.Name)
		}
		if sp.HasVirt && sp.VirtEnd < sp.VirtStart {
			t.Fatalf("span %d (%s %s) has inverted virtual bounds", sp.ID, sp.Cat, sp.Name)
		}
		if sp.Parent != 0 {
			if _, ok := byID[sp.Parent]; !ok {
				t.Fatalf("span %d has unknown parent %d", sp.ID, sp.Parent)
			}
		}
		switch sp.Cat {
		case trace.CatQuery:
			roots++
			if sp.Parent != 0 {
				t.Fatalf("query span %d nested under %d", sp.ID, sp.Parent)
			}
			if !sp.HasVirt {
				t.Fatalf("query span %d missing virtual stamps", sp.ID)
			}
		case trace.CatExecute:
			execs++
		case trace.CatFetch, trace.CatDecode, trace.CatStall, trace.CatCycle:
			work++
		}
	}
	if roots != queries {
		t.Fatalf("recorded %d query roots, want %d", roots, queries)
	}
	if execs != queries {
		t.Fatalf("recorded %d execute phases, want %d", execs, queries)
	}
	if work == 0 && qt.Dropped() == 0 {
		t.Fatal("no fetch/decode/stall/cycle spans recorded")
	}
}

// Ensure the engine-level guard holds here too: tracing off leaves
// Ctx.Trace nil all the way down, so the hot path never sees a span
// call with a receiver (compile-time usage check of the nil contract).
var _ = engine.Ctx{Trace: (*trace.QueryTrace)(nil)}
