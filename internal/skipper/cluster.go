package skipper

import (
	"fmt"
	"time"

	"repro/internal/csd"
	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/mjoin"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/trace"
	"repro/internal/tuple"
	"repro/internal/vtime"
)

// Cluster runs a set of database clients against one or more shared
// CSDs on a virtual-time simulation — the paper's testbed of §5.1 (five
// PostgreSQL VMs against one Swift-based emulated CSD), generalized to
// a device fleet for the scale-out experiments.
type Cluster struct {
	Clients []*Client
	Layout  layout.Policy
	// CSD configures the device of a single-device cluster (the classic
	// testbed). Ignored when Devices is non-empty.
	CSD csd.Config
	// Devices, when non-empty, runs a fleet: one CSD per config, with
	// disk groups spread across devices (primary device = group mod fleet
	// size) and objects optionally replicated per Replication. Each
	// config's ID is overwritten with its index; a config with a nil
	// Scheduler is completed from csd.DefaultConfig, keeping its Events
	// and Faults, exactly like the single-device path.
	Devices []csd.Config
	// Replication selects which objects of a fleet live on more than one
	// device: none (the default), the hottest N by demanded-segment count
	// (layout.ReplicateHot), or all (layout.ReplicateFull). A replica
	// serves GETs when the chooser prefers it and takes over when the
	// primary's device crashes. No effect on a single device.
	Replication layout.Replication
	Costs       Costs
	// Store backs every tenant's objects.
	Store map[segment.ObjectID]*segment.Segment
	// SharedCache, when non-nil, is one segment cache shared by every
	// client of the cluster: bytes transferred for one tenant's query are
	// served to any later request for the same object — across queries,
	// reissue cycles and tenants — without touching the device. A client
	// with its own SegCache opts out of the shared instance. Segments are
	// immutable, so cross-tenant sharing never changes query results.
	SharedCache *segcache.Cache
	// Trace, if non-nil, receives simulator trace lines.
	Trace func(at time.Duration, format string, args ...any)
	// Events, if non-nil, receives structured trace events (query spans
	// from the clients; GETs, deliveries and switches from the CSD).
	Events *trace.Log
}

// RunResult aggregates a cluster run.
type RunResult struct {
	Clients []*ClientStats
	// CSD is the device's statistics — summed across the fleet when the
	// cluster ran more than one device (csd.Stats.Plus).
	CSD csd.Stats
	// Devices holds each device's own statistics, indexed by device id.
	// One entry for a single-device cluster (then identical to CSD).
	Devices  []csd.Stats
	Makespan time.Duration
	// Wall is the real (hardware) time the simulation took end to end —
	// the wall-clock measurement mode's headline number. Virtual quantities
	// (Makespan, stalls) model the storage hardware; Wall measures the
	// host's actual compute, which is what the decode pipeline improves.
	Wall time.Duration
	// Cache is the shared segment cache's final statistics; nil when the
	// cluster ran without a SharedCache. Clients with private SegCache
	// instances report through their own caches instead.
	Cache *segcache.Stats
}

// Run executes every client's workload to completion and returns the
// gathered statistics.
func (cl *Cluster) Run() (*RunResult, error) {
	if len(cl.Clients) == 0 {
		return nil, fmt.Errorf("skipper: cluster has no clients")
	}
	if cl.Layout == nil {
		cl.Layout = layout.OnePerGroup()
	}
	if cl.Costs == (Costs{}) {
		cl.Costs = DefaultCosts()
	}
	devCfgs := append([]csd.Config(nil), cl.Devices...)
	if len(devCfgs) == 0 {
		devCfgs = []csd.Config{cl.CSD}
	}
	for i := range devCfgs {
		if devCfgs[i].Scheduler == nil {
			def := csd.DefaultConfig()
			def.Events, def.Faults = devCfgs[i].Events, devCfgs[i].Faults
			devCfgs[i] = def
		}
		devCfgs[i].ID = i
		if cl.Events != nil && devCfgs[i].Events == nil {
			devCfgs[i].Events = cl.Events
		}
	}
	tenants := make([]layout.TenantObjects, len(cl.Clients))
	for i, c := range cl.Clients {
		tenants[i] = layout.TenantObjects{Tenant: c.Tenant, Objects: c.Catalog.AllObjects()}
	}
	assign, err := cl.Layout.Assign(tenants)
	if err != nil {
		return nil, fmt.Errorf("skipper: layout: %w", err)
	}
	var heat map[segment.ObjectID]int
	if cl.Replication.Kind == layout.ReplicateHot {
		heat = demandHeat(cl.Clients)
	}
	place, err := layout.BuildPlacement(assign, len(devCfgs), cl.Replication, heat)
	if err != nil {
		return nil, fmt.Errorf("skipper: placement: %w", err)
	}

	sim := vtime.NewSim()
	if cl.Trace != nil {
		sim.SetTracer(cl.Trace)
	}
	devs := make([]*csd.CSD, len(devCfgs))
	for i, cfg := range devCfgs {
		da, err := place.DeviceAssignment(i)
		if err != nil {
			return nil, fmt.Errorf("skipper: device %d: %w", i, err)
		}
		devs[i] = csd.New(sim, cfg, cl.Store, da)
		devs[i].Start()
	}
	fl := newDeviceChooser(devs, place)

	done := vtime.NewChan[int](sim, "cluster.done", len(cl.Clients))
	var runErr error
	for _, c := range cl.Clients {
		c := c
		sim.Spawn(fmt.Sprintf("client.t%d", c.Tenant), func(p *vtime.Proc) {
			if err := cl.runClient(p, sim, fl, c); err != nil && runErr == nil {
				runErr = err
			}
			done.Send(p, c.Tenant)
		})
	}
	sim.Spawn("cluster.coordinator", func(p *vtime.Proc) {
		for range cl.Clients {
			done.Recv(p)
		}
		for _, dev := range devs {
			dev.Shutdown(p)
		}
	})
	wall := vtime.NewWall()
	if err := sim.Run(); err != nil {
		return nil, fmt.Errorf("skipper: simulation: %w", err)
	}
	elapsed := wall.Now()
	if runErr != nil {
		return nil, runErr
	}
	res := &RunResult{Makespan: sim.Now(), Wall: elapsed}
	for _, dev := range devs {
		res.Devices = append(res.Devices, dev.Stats())
	}
	if len(devs) == 1 {
		res.CSD = res.Devices[0]
	} else {
		for _, st := range res.Devices {
			res.CSD = res.CSD.Plus(st)
		}
	}
	if cl.SharedCache != nil {
		st := cl.SharedCache.Stats()
		res.Cache = &st
	}
	for _, c := range cl.Clients {
		res.Clients = append(res.Clients, &c.stats)
		// The device cannot observe requests that data skipping never
		// issued; fold the clients' accounting into the device stats so
		// served and avoided traffic read side by side.
		res.CSD.GetsAvoided += c.stats.SegmentsSkipped
	}
	return res, nil
}

// runClient executes one client's query sequence. With c.Pipeline set
// it also owns the client's pipeline machinery: the decode-worker pool
// (closed when the workload ends, even on error) and the prefetch
// daemon (told to stop likewise; it exits once its in-flight transfers
// drain, so the simulation always terminates).
func (cl *Cluster) runClient(p *vtime.Proc, sim *vtime.Sim, fl *DeviceChooser, c *Client) error {
	c.stats = ClientStats{Tenant: c.Tenant, Mode: c.Mode, Start: p.Now()}
	wallStart := time.Now()
	defer func() { c.stats.WallElapsed = time.Since(wallStart) }()
	px := newProxy(sim, fl, c.Tenant, &c.stats)
	px.proc = p
	px.ctx = c.Ctx
	px.tr = c.QTrace
	if c.Retry != nil {
		px.retry = newRetryState(c.Retry)
	}
	if px.cache = c.SegCache; px.cache == nil {
		px.cache = cl.SharedCache
	}
	var pipe *engine.Pipeline
	if pc := c.Pipeline; pc != nil && pc.DecodeWorkers > 0 {
		pool := engine.NewDecodePool(pc.DecodeWorkers)
		defer pool.Close()
		pipe = &engine.Pipeline{Pool: pool, Depth: pc.DecodeAhead}
	}
	if pc := c.Pipeline; pc != nil && pc.PrefetchBytes > 0 {
		px.pf = newPrefetcher(sim, fl, px.cache, c)
		sim.Spawn(fmt.Sprintf("prefetch.t%d", c.Tenant), px.pf.run)
		defer px.pf.stop(p)
	}
	clock := &chargingClock{proc: p, stats: &c.stats}
	enqueued := 0
	for qi, spec := range c.Queries {
		if err := c.ctxErr(); err != nil {
			return fmt.Errorf("skipper: tenant %d: workload canceled before query %s: %w", c.Tenant, spec.Name, err)
		}
		queryID := fmt.Sprintf("t%d.%s#%d", c.Tenant, spec.Name, qi)
		px.beginQuery(queryID)
		qspan := c.QTrace.BeginPhaseVirt(trace.CatQuery, queryID, p.Now())
		if px.pf != nil {
			// Disclose this query's and the next query's demand to the
			// prefetcher (and, through its tagged GETs, to the scheduler).
			var pfWall time.Time
			pfVirt := p.Now()
			if c.QTrace.Enabled() {
				pfWall = time.Now()
			}
			for ; enqueued <= qi+1 && enqueued < len(c.Queries); enqueued++ {
				px.pf.enqueue(p, candidatesFor(c, enqueued, cl.Store))
			}
			if c.QTrace.Enabled() {
				c.QTrace.EmitVirt(trace.CatPrefetch, "disclose", pfWall, pfVirt, p.Now())
			}
		}
		qStart := p.Now()
		cl.Events.Add(trace.Event{At: qStart, Kind: trace.KindQueryStart, Tenant: c.Tenant, Query: queryID, Group: -1})
		espan := c.QTrace.BeginPhaseVirt(trace.CatExecute, c.Mode.String(), qStart)
		var rows []tuple.Row
		var err error
		switch c.Mode {
		case ModeVanilla:
			rows, err = cl.runVanilla(clock, px, c, spec, pipe)
		case ModeSkipper:
			rows, err = cl.runSkipper(clock, px, c, spec, pipe)
		default:
			err = fmt.Errorf("skipper: unknown mode %d", c.Mode)
		}
		c.QTrace.EndPhaseVirt(espan, p.Now())
		if err != nil {
			c.QTrace.EndPhaseVirt(qspan, p.Now())
			return fmt.Errorf("skipper: tenant %d query %s: %w", c.Tenant, spec.Name, err)
		}
		qr := QueryRun{
			Name: spec.Name, QueryID: queryID,
			Start: qStart, Finish: p.Now(), Rows: len(rows),
		}
		if c.KeepResults {
			qr.Results = rows
		}
		c.stats.PerQuery = append(c.stats.PerQuery, qr)
		cl.Events.Add(trace.Event{At: p.Now(), Kind: trace.KindQueryEnd, Tenant: c.Tenant, Query: queryID, Group: -1})
		c.QTrace.EndPhaseVirt(qspan, p.Now())
		c.stats.Rows += int64(len(rows))
		if c.Think > 0 && qi < len(c.Queries)-1 {
			p.Sleep(c.Think)
		}
	}
	c.stats.Finish = p.Now()
	return nil
}

// runVanilla executes the query on the pull-based engine over synchronous
// per-segment GETs. The plan (scans, joins and the shaping stage) is
// drained batch-at-a-time through the engine's batched core; the storage
// access pattern — one GET per segment in plan order — is unchanged. With
// c.Parallelism > 1 the joins and aggregations run on the morsel worker
// pool; scans (and thus GETs and virtual-time charges) stay on the client
// goroutine, as the vtime simulation requires.
func (cl *Cluster) runVanilla(clock engine.Clock, px *proxy, c *Client, spec QuerySpec, pipe *engine.Pipeline) ([]tuple.Row, error) {
	ctx := &engine.Ctx{
		Clock: clock,
		Fetch: &vanillaFetcher{px: px, fuse: cl.Costs.FusePerObject},
		Costs: engine.Costs{ProcessPerObject: cl.Costs.VanillaPerObject},
		Pipe:  pipe,
		Trace: c.QTrace,
	}
	it, err := BuildPullPlanPruned(ctx, spec.Join, c.statsPruningOn())
	if err != nil {
		return nil, err
	}
	scans := engine.SeqScans(it)
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	rows, err := engine.Collect(engine.Parallelize(it, c.Parallelism))
	if err != nil {
		return nil, err
	}
	// Each scan counts the fetches its Pruner actually avoided during
	// the drain — exact even when a LIMIT stops the pipeline before a
	// scan reaches its tail segments — and the decode bytes it spent or
	// skipped against lazily decoded (encoded-format) stores.
	for _, s := range scans {
		c.stats.SegmentsSkipped += s.SegmentsSkipped()
		sb := s.Bytes()
		c.stats.BytesFetched += sb.Fetched
		c.stats.BytesDecoded += sb.Decoded
		c.stats.BytesSkippedByProjection += sb.SkippedByProjection
		c.stats.BytesMaterialized += sb.Materialized
		c.stats.Pipe.Add(s.PipeStats())
	}
	return rows, nil
}

// runSkipper executes the query with the cache-aware MJoin over the
// push-based proxy.
func (cl *Cluster) runSkipper(clock engine.Clock, px *proxy, c *Client, spec QuerySpec, pipe *engine.Pipeline) ([]tuple.Row, error) {
	cacheSize := c.CacheObjects
	if cacheSize <= 0 {
		cacheSize = len(spec.Join.Objects())
	}
	cfg := mjoin.Config{
		CacheSize:    cacheSize,
		Policy:       c.Policy,
		Pruning:      true,
		StatsPruning: c.statsPruningOn(),
		Clock:        clock,
		Costs:        mjoin.Costs{ProcessPerObject: cl.Costs.MJoinPerObject},
		Parallelism:  c.Parallelism,
	}
	if pipe != nil {
		cfg.DecodePool = pipe.Pool
		cfg.DecodeAhead = pipe.Depth
	}
	cfg.Trace = c.QTrace
	if c.Pruning != nil {
		cfg.Pruning = *c.Pruning
	}
	res, err := mjoin.Run(spec.Join, cfg, px)
	if err != nil {
		return nil, err
	}
	c.stats.MJoin = addStats(c.stats.MJoin, res.Stats)
	c.stats.Pipe.Add(res.Stats.Pipe)
	c.stats.SegmentsSkipped += res.Stats.ObjectsSkipped
	c.stats.BytesFetched += res.Stats.BytesFetched
	c.stats.BytesDecoded += res.Stats.BytesDecoded
	c.stats.BytesSkippedByProjection += res.Stats.BytesSkippedByProjection
	c.stats.BytesMaterialized += res.Stats.BytesMaterialized
	rows := res.Rows
	if spec.Shape != nil {
		// The MJoin result bridges into the shaping stage as batches, so
		// post-join filters, aggregation and ORDER BY run batch-at-a-time
		// in skipper mode too (Collect dispatches to the batch protocol),
		// on the morsel pool when the client sets Parallelism.
		shaped, err := engine.Collect(engine.Parallelize(
			spec.Shape(engine.NewValues(res.Schema, res.Rows)), c.Parallelism))
		if err != nil {
			return nil, err
		}
		rows = shaped
	}
	return rows, nil
}

// demandHeat counts, per object, the demand references the workload
// will make absent any caching: every unpruned segment reference of
// every query of every client. BuildPlacement's hot replication uses it
// to pick the working set worth replicating — with the default Hot<=0
// the whole demanded set, which is what makes a fleet survive one
// device's permanent crash with zero failed queries.
func demandHeat(clients []*Client) map[segment.ObjectID]int {
	heat := make(map[segment.ObjectID]int)
	for _, c := range clients {
		prune := c.statsPruningOn()
		for _, spec := range c.Queries {
			for _, rel := range spec.Join.Relations {
				for si, id := range rel.Table.Objects {
					if prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
						continue
					}
					heat[id]++
				}
			}
		}
	}
	return heat
}

func addStats(a, b mjoin.Stats) mjoin.Stats {
	return mjoin.Stats{
		Requests:                 a.Requests + b.Requests,
		Cycles:                   a.Cycles + b.Cycles,
		Arrivals:                 a.Arrivals + b.Arrivals,
		Evictions:                a.Evictions + b.Evictions,
		SubplansTotal:            a.SubplansTotal + b.SubplansTotal,
		SubplansExecuted:         a.SubplansExecuted + b.SubplansExecuted,
		SubplansPruned:           a.SubplansPruned + b.SubplansPruned,
		ObjectsSkipped:           a.ObjectsSkipped + b.ObjectsSkipped,
		SubplansSkipped:          a.SubplansSkipped + b.SubplansSkipped,
		ResultRows:               a.ResultRows + b.ResultRows,
		BytesFetched:             a.BytesFetched + b.BytesFetched,
		BytesDecoded:             a.BytesDecoded + b.BytesDecoded,
		BytesSkippedByProjection: a.BytesSkippedByProjection + b.BytesSkippedByProjection,
		BytesMaterialized:        a.BytesMaterialized + b.BytesMaterialized,
		PinnedCycles:             a.PinnedCycles + b.PinnedCycles,
		Pipe:                     a.Pipe.Plus(b.Pipe),
	}
}

// BuildPullPlan translates an mjoin.Query into the classical engine's
// left-deep plan: filtered sequential scans joined by blocking binary
// hash joins, pulled in plan order. Relation Pruners are attached to the
// scans (data skipping on).
func BuildPullPlan(ctx *engine.Ctx, q *mjoin.Query) (engine.Iterator, error) {
	return BuildPullPlanPruned(ctx, q, true)
}

// BuildPullPlanPruned is BuildPullPlan with data skipping made explicit:
// prune=false leaves the relation Pruners off the scans, so every
// segment is fetched — the pre-statistics behaviour.
func BuildPullPlanPruned(ctx *engine.Ctx, q *mjoin.Query, prune bool) (engine.Iterator, error) {
	if _, err := q.Validate(); err != nil {
		return nil, err
	}
	its := make([]engine.Iterator, len(q.Relations))
	for i, rel := range q.Relations {
		scan := engine.NewSeqScan(ctx, rel.Table)
		scan.Project = rel.Cols
		if prune {
			scan.Pruner = rel.Pruner
		}
		var it engine.Iterator = scan
		if rel.Filter != nil {
			it = engine.NewFilter(it, rel.Filter)
		}
		its[i] = it
	}
	it := its[0]
	for i, jc := range q.Joins {
		it = engine.JoinOn(it, its[i+1], [][2]string{{jc.LeftCol, jc.RightCol}})
	}
	return it, nil
}
