// Pipeline differential suite: the asynchronous execution pipeline
// (scheduler-aware prefetch + concurrent decode workers) must never
// change what a query returns. Every combination of engine mode, wire
// format, DOP and pruning is executed with the pipeline off and on, and
// the results compared byte for byte, query by query. The suite also
// pins the prefetch accounting invariant and the cancellation paths:
// a run that fail-stops (or simply finishes) with prefetches in flight
// must drain cleanly — no deadlock, no leaked goroutines, no orphaned
// cache pins. Runs under CI's -race job.
package skipper_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/csd"
	"repro/internal/layout"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// pipelineOn is the configuration the differential suite turns on and
// off: room for two 1 GB objects in flight, two decode workers.
func pipelineOn() *skipper.PipelineConfig {
	return &skipper.PipelineConfig{PrefetchBytes: 2e9, DecodeWorkers: 2, DecodeAhead: 2}
}

// runPipelined executes the 2-pass probe workload on two tenants
// sharing the dataset, with the given pipeline configuration (nil =
// pipeline off).
func runPipelined(t *testing.T, ds *workload.Dataset, mode skipper.Mode, dop int, prune bool,
	cache *segcache.Cache, pc *skipper.PipelineConfig) *skipper.RunResult {
	t.Helper()
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	pr := prune
	clients := make([]*skipper.Client, 2)
	for tn := range clients {
		clients[tn] = &skipper.Client{
			Tenant:       tn,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      workload.MultiPass(ds.Catalog, 2),
			CacheObjects: 6,
			StatsPruning: &pr,
			Parallelism:  dop,
			KeepResults:  true,
			Pipeline:     pc,
		}
	}
	cl := &skipper.Cluster{
		Clients:     clients,
		Layout:      layout.RoundRobinObjects{NumGroups: 3},
		Store:       store,
		SharedCache: cache,
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatalf("mode=%v dop=%d prune=%v pipeline=%v: %v", mode, dop, prune, pc != nil, err)
	}
	return res
}

// requireSameResults fails unless both runs produced byte-identical
// rows in identical order for every query of every client.
func requireSameResults(t *testing.T, on, off *skipper.RunResult) {
	t.Helper()
	for i := range on.Clients {
		qa, qb := on.Clients[i].PerQuery, off.Clients[i].PerQuery
		if len(qa) != len(qb) {
			t.Fatalf("client %d ran %d vs %d queries", i, len(qa), len(qb))
		}
		for j := range qa {
			ra, rb := qa[j].Results, qb[j].Results
			if len(ra) != len(rb) {
				t.Fatalf("client %d query %s: %d vs %d rows", i, qa[j].Name, len(ra), len(rb))
			}
			for k := range ra {
				if ra[k].String() != rb[k].String() {
					t.Fatalf("client %d query %s row %d: %s vs %s",
						i, qa[j].Name, k, ra[k], rb[k])
				}
			}
		}
	}
}

// requirePrefetchAccounting checks the device-side GET balance per
// client: every demand GET that was not absorbed locally (cache hit or
// staged prefetch) reached the device, plus every prefetch GET.
func requirePrefetchAccounting(t *testing.T, res *skipper.RunResult) {
	t.Helper()
	for _, cs := range res.Clients {
		device := res.CSD.GetsByTenant[cs.Tenant]
		want := cs.GetsIssued - cs.CacheHits - cs.PrefetchServed + cs.PrefetchIssued
		if device != want {
			t.Fatalf("tenant %d: device GETs %d != issued %d - hits %d - served %d + prefetched %d",
				cs.Tenant, device, cs.GetsIssued, cs.CacheHits, cs.PrefetchServed, cs.PrefetchIssued)
		}
		if cs.PrefetchUseful > cs.PrefetchIssued {
			t.Fatalf("tenant %d: useful %d > issued %d", cs.Tenant, cs.PrefetchUseful, cs.PrefetchIssued)
		}
	}
}

// TestPipelineDifferential is the main gate: pipeline on and off across
// both engines, both wire formats, DOP 1 and 4, pruning on and off.
// Multi-tenant contention over a 3-group layout scrambles arrival
// orders relative to request order. No segment cache, so the staged
// prefetch hand-off path is exercised.
func TestPipelineDifferential(t *testing.T) {
	for _, format := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds := sharedDataset(t, format)
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			for _, dop := range []int{1, 4} {
				for _, prune := range []bool{true, false} {
					name := fmt.Sprintf("%v/%v/dop%d/prune=%v", format, mode, dop, prune)
					t.Run(name, func(t *testing.T) {
						off := runPipelined(t, ds, mode, dop, prune, nil, nil)
						on := runPipelined(t, ds, mode, dop, prune, nil, pipelineOn())
						requireSameResults(t, on, off)
						requirePrefetchAccounting(t, on)
						issued, served := 0, 0
						for _, cs := range on.Clients {
							issued += cs.PrefetchIssued
							served += cs.PrefetchServed
							if cs.WallElapsed <= 0 {
								t.Fatalf("tenant %d: no wall-clock measurement", cs.Tenant)
							}
						}
						if issued == 0 {
							t.Fatal("pipeline run issued no prefetches; test is vacuous")
						}
						if served == 0 {
							t.Fatal("no demand GET was served from staged prefetches")
						}
						for _, cs := range off.Clients {
							if cs.PrefetchIssued+cs.PrefetchServed+cs.PrefetchUseful != 0 {
								t.Fatalf("pipeline-off run recorded prefetch stats: %+v", cs)
							}
						}
					})
				}
			}
		}
	}
}

// TestPipelineWithSharedCache exercises the cache-admission path:
// prefetched deliveries land in the shared segment cache and later
// demand GETs hit there (attributed via PrefetchUseful).
func TestPipelineWithSharedCache(t *testing.T) {
	ds := sharedDataset(t, segment.FormatV2)
	budget := len(ds.Catalog.AllObjects())
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			off := runPipelined(t, ds, mode, 2, true, segcache.NewObjects(budget), nil)
			on := runPipelined(t, ds, mode, 2, true, segcache.NewObjects(budget), pipelineOn())
			requireSameResults(t, on, off)
			requirePrefetchAccounting(t, on)
			useful := 0
			for _, cs := range on.Clients {
				useful += cs.PrefetchUseful
			}
			if useful == 0 {
				t.Fatal("no cache hit was attributed to prefetch")
			}
			if st := on.Cache.PinnedBytes; st != 0 {
				t.Fatalf("quiesced cache reports %d pinned bytes", st)
			}
		})
	}
}

// requireGoroutinesSettle waits for the goroutine count to return to
// (at most) the recorded baseline, tolerating runtime bookkeeping
// noise; decode workers and any stray pipeline helpers must be gone.
func requireGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizer-driven cleanups
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d > baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipelineFailStopDrains: a run that fail-stops on a scheduler
// contract violation with prefetches in flight must still terminate —
// the device's fail-stop answers every pending and future GET with the
// error, the prefetcher quiesces, and no goroutines or cache pins leak.
func TestPipelineFailStopDrains(t *testing.T) {
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			ds := sharedDataset(t, segment.FormatV2)
			store := make(map[segment.ObjectID]*segment.Segment)
			ds.MergeInto(store)
			cfg := csd.DefaultConfig()
			cfg.Scheduler = contractBreaker{}
			shared := segcache.NewObjects(len(ds.Catalog.AllObjects()))
			clients := []*skipper.Client{
				{Tenant: 0, Mode: mode, Catalog: ds.Catalog,
					Queries: workload.MultiPass(ds.Catalog, 2), CacheObjects: 6,
					Pipeline: pipelineOn()},
			}
			cl := &skipper.Cluster{
				Clients:     clients,
				Layout:      layout.RoundRobinObjects{NumGroups: 3},
				CSD:         cfg,
				Store:       store,
				SharedCache: shared,
			}
			_, err := cl.Run()
			if err == nil {
				t.Fatalf("%v: misbehaving scheduler did not fail the pipelined run", mode)
			}
			var sce *csd.SchedulerContractError
			if !errors.As(err, &sce) {
				t.Fatalf("%v: error %v is not a SchedulerContractError", mode, err)
			}
			if st := shared.Stats(); st.PinnedBytes != 0 {
				t.Fatalf("%v: aborted run left %d bytes pinned in the cache", mode, st.PinnedBytes)
			}
			requireGoroutinesSettle(t, baseline)
		})
	}
}

// TestPipelineCompletionDrains: a run that finishes normally with a
// generous prefetch budget (so prefetches for the final query may still
// be in flight when the client finishes) must drain its prefetcher and
// decode pools without leaking goroutines.
func TestPipelineCompletionDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ds := sharedDataset(t, segment.FormatV2)
	pc := &skipper.PipelineConfig{PrefetchBytes: 64e9, DecodeWorkers: 4, DecodeAhead: 4}
	res := runPipelined(t, ds, skipper.ModeSkipper, 2, true, nil, pc)
	requirePrefetchAccounting(t, res)
	issued := 0
	for _, cs := range res.Clients {
		issued += cs.PrefetchIssued
	}
	if issued == 0 {
		t.Fatal("no prefetches issued under a 64 GB budget")
	}
	if res.Wall <= 0 {
		t.Fatal("cluster run recorded no wall-clock time")
	}
	requireGoroutinesSettle(t, baseline)
}
