// Shared-segment-cache differential suite: concurrent tenants over one
// shared dataset, executed with the cache on and off across engine
// modes, DOP, segment formats and pruning — results must be
// byte-identical and the GET accounting must balance. Runs under CI's
// -race job, so the concurrency-safety of the shared cache is under
// test too. External test package: the workload/objstore helpers import
// skipper themselves.
package skipper_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/csd"
	"repro/internal/layout"
	"repro/internal/objstore"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// sharedDataset builds one date-clustered TPC-H dataset served to every
// tenant, re-encoded in the given wire format.
func sharedDataset(t *testing.T, f segment.Format) *workload.Dataset {
	t.Helper()
	ds := workload.TPCH(0, workload.TPCHConfig{SF: 4, RowsPerObject: 4, Seed: 1, ClusteredDates: true})
	ds, err := objstore.ReencodeDataset(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// runShared executes the 2-pass probe workload on two tenants sharing
// the dataset (and, when cache is non-nil, one segment cache).
func runShared(t *testing.T, ds *workload.Dataset, mode skipper.Mode, dop int, prune bool, cache *segcache.Cache) *skipper.RunResult {
	t.Helper()
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	pr := prune
	clients := make([]*skipper.Client, 2)
	for tn := range clients {
		clients[tn] = &skipper.Client{
			Tenant:       tn,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      workload.MultiPass(ds.Catalog, 2),
			CacheObjects: 6, // minimum for the 6-relation probe: eviction pressure on
			StatsPruning: &pr,
			Parallelism:  dop,
			KeepResults:  true,
		}
	}
	cl := &skipper.Cluster{
		Clients:     clients,
		Layout:      layout.RoundRobinObjects{NumGroups: 3},
		Store:       store,
		SharedCache: cache,
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatalf("mode=%v dop=%d prune=%v cache=%v: %v", mode, dop, prune, cache != nil, err)
	}
	return res
}

func TestSharedCacheDifferential(t *testing.T) {
	for _, format := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds := sharedDataset(t, format)
		budget := len(ds.Catalog.AllObjects())
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			for _, dop := range []int{1, 4} {
				for _, prune := range []bool{true, false} {
					name := fmt.Sprintf("%v/%v/dop%d/prune=%v", format, mode, dop, prune)
					t.Run(name, func(t *testing.T) {
						off := runShared(t, ds, mode, dop, prune, nil)
						on := runShared(t, ds, mode, dop, prune, segcache.NewObjects(budget))
						// Byte-identical results, query by query, client by client.
						for i := range on.Clients {
							qa, qb := on.Clients[i].PerQuery, off.Clients[i].PerQuery
							if len(qa) != len(qb) {
								t.Fatalf("client %d ran %d vs %d queries", i, len(qa), len(qb))
							}
							for j := range qa {
								ra, rb := qa[j].Results, qb[j].Results
								if len(ra) != len(rb) {
									t.Fatalf("client %d query %s: %d vs %d rows", i, qa[j].Name, len(ra), len(rb))
								}
								for k := range ra {
									if ra[k].String() != rb[k].String() {
										t.Fatalf("client %d query %s row %d: %s vs %s",
											i, qa[j].Name, k, ra[k], rb[k])
									}
								}
							}
						}
						// Accounting: the cache removes device transfers, never
						// requests — per client, device GETs + cache hits must
						// equal the GETs issued, and in skipper mode the MJoin
						// request count (GETs + reissues, the Figure 11 metric)
						// must equal that same total.
						totalHits := 0
						for _, cs := range on.Clients {
							device := on.CSD.GetsByTenant[cs.Tenant]
							if device+cs.CacheHits != cs.GetsIssued {
								t.Fatalf("tenant %d: device %d + hits %d != issued %d",
									cs.Tenant, device, cs.CacheHits, cs.GetsIssued)
							}
							if mode == skipper.ModeSkipper && cs.MJoin.Requests != cs.GetsIssued {
								t.Fatalf("tenant %d: mjoin requests %d != issued %d",
									cs.Tenant, cs.MJoin.Requests, cs.GetsIssued)
							}
							totalHits += cs.CacheHits
						}
						if totalHits == 0 {
							t.Fatal("repeated-query workload produced no cache hits")
						}
						if on.Cache == nil || int(on.Cache.Hits) != totalHits {
							t.Fatalf("cluster cache stats %+v disagree with client hits %d", on.Cache, totalHits)
						}
						// The cache never runs without removing device work here:
						// a second pass over the same segments must shrink traffic.
						if on.CSD.GetsReceived >= off.CSD.GetsReceived {
							t.Fatalf("device GETs did not drop: %d with cache vs %d without",
								on.CSD.GetsReceived, off.CSD.GetsReceived)
						}
						if off.Cache != nil {
							t.Fatalf("cache stats reported for cache-off run: %+v", off.Cache)
						}
					})
				}
			}
		}
	}
}

// TestPerClientCacheOverridesShared checks the private-cache opt-out: a
// client with its own SegCache must not touch the cluster's shared one.
func TestPerClientCacheOverridesShared(t *testing.T) {
	ds := sharedDataset(t, segment.FormatMem)
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	shared := segcache.NewObjects(len(ds.Catalog.AllObjects()))
	private := segcache.NewObjects(len(ds.Catalog.AllObjects()))
	clients := []*skipper.Client{
		{Tenant: 0, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
			Queries: workload.MultiPass(ds.Catalog, 2), CacheObjects: 6, KeepResults: true,
			SegCache: private},
	}
	cl := &skipper.Cluster{Clients: clients, Store: store, SharedCache: shared}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st := shared.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("shared cache saw traffic despite private override: %+v", st)
	}
	if st := private.Stats(); st.Hits == 0 {
		t.Fatalf("private cache unused: %+v", st)
	}
	if res.Clients[0].CacheHits == 0 {
		t.Fatal("client recorded no hits")
	}
}

// contractBreaker is a Scheduler that violates NextGroup's contract on
// its first consultation.
type contractBreaker struct{}

func (contractBreaker) Name() string { return "contract-breaker" }
func (contractBreaker) NextGroup(int, map[int][]*csd.Request, func(string) int) int {
	return -1
}

// TestClusterSurfacesSchedulerContractError pins end-to-end propagation
// of the device's typed scheduler error: through the proxy, the engines
// (both modes) and Cluster.Run.
func TestClusterSurfacesSchedulerContractError(t *testing.T) {
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		ds := sharedDataset(t, segment.FormatMem)
		store := make(map[segment.ObjectID]*segment.Segment)
		ds.MergeInto(store)
		cfg := csd.DefaultConfig()
		cfg.Scheduler = contractBreaker{}
		clients := []*skipper.Client{
			{Tenant: 0, Mode: mode, Catalog: ds.Catalog,
				Queries: workload.MultiPass(ds.Catalog, 1), CacheObjects: 6},
		}
		cl := &skipper.Cluster{
			Clients: clients,
			Layout:  layout.RoundRobinObjects{NumGroups: 3}, // multiple groups force a switch
			CSD:     cfg,
			Store:   store,
		}
		_, err := cl.Run()
		if err == nil {
			t.Fatalf("%v: misbehaving scheduler did not fail the run", mode)
		}
		var sce *csd.SchedulerContractError
		if !errors.As(err, &sce) {
			t.Fatalf("%v: error %v is not a SchedulerContractError", mode, err)
		}
		if sce.Returned != -1 || sce.Scheduler != "contract-breaker" {
			t.Fatalf("%v: error fields %+v", mode, sce)
		}
	}
}
