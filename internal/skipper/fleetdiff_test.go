// Fleet differential suite: the shared-dataset probe workload executed
// against device fleets of growing size, with and without replication,
// must produce byte-identical results to the single-device run across
// engine modes, wire formats and DOP — and the per-device GET ledgers
// must balance against what each device recorded. The failover half
// crashes one of two devices mid-run: with the demanded working set
// hot-replicated every query must still complete, recovered from the
// replica (no failed queries, counted failovers, no leaked pins or
// goroutines); without a replica the crash must surface as the typed
// DeviceDownError exactly as on a single device. Runs under CI's -race
// job.
package skipper_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/csd"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// fleetGroups spreads the probe dataset over four disk groups so a
// four-device fleet places one group per device and every device sees
// traffic.
const fleetGroups = 4

// runFleet executes the 2-pass probe workload on two tenants sharing
// the dataset and one segment cache, against a fleet of the given size.
// The fault plan (zero = clean) lands on device 0 only, so a replicated
// fleet always has a live side to fail over to.
func runFleet(t *testing.T, ds *workload.Dataset, mode skipper.Mode, dop, devices int,
	rep layout.Replication, pc *skipper.PipelineConfig, plan faults.Plan, retry *skipper.RetryPolicy) (*skipper.RunResult, error) {
	t.Helper()
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	clients := make([]*skipper.Client, 2)
	for tn := range clients {
		clients[tn] = &skipper.Client{
			Tenant:       tn,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      workload.MultiPass(ds.Catalog, 2),
			CacheObjects: 6,
			Parallelism:  dop,
			KeepResults:  true,
			Pipeline:     pc,
			Retry:        retry,
		}
	}
	cl := &skipper.Cluster{
		Clients:     clients,
		Layout:      layout.RoundRobinObjects{NumGroups: fleetGroups},
		Store:       store,
		SharedCache: segcache.NewObjects(len(ds.Catalog.AllObjects())),
	}
	if devices <= 1 {
		if plan.Enabled() {
			cl.CSD = csd.Config{Faults: faults.MustNew(plan)}
		}
	} else {
		cl.Devices = make([]csd.Config, devices)
		cl.Replication = rep
		if plan.Enabled() {
			cl.Devices[0].Faults = faults.MustNew(plan)
		}
	}
	return cl.Run()
}

// requireFleetAccounting checks the per-device GET ledgers of a clean
// run: for every device and tenant, the GETs the device attributed to
// the tenant equal the demand GETs the proxy routed there plus the
// prefetcher's GETs on its behalf — and every device saw traffic.
func requireFleetAccounting(t *testing.T, res *skipper.RunResult) {
	t.Helper()
	for d, st := range res.Devices {
		for _, cs := range res.Clients {
			want := cs.DeviceGets[d] + cs.PrefetchDeviceGets[d]
			if st.GetsByTenant[cs.Tenant] != want {
				t.Fatalf("device %d tenant %d: device saw %d GETs, ledgers say %d (demand %d + prefetch %d)",
					d, cs.Tenant, st.GetsByTenant[cs.Tenant], want, cs.DeviceGets[d], cs.PrefetchDeviceGets[d])
			}
		}
		if st.GetsReceived == 0 {
			t.Fatalf("device %d received no GETs — fleet differential is vacuous", d)
		}
	}
}

func TestFleetDifferential(t *testing.T) {
	fleets := []struct {
		devices int
		rep     layout.Replication
	}{
		{2, layout.Replication{}},
		{2, layout.Replication{Kind: layout.ReplicateHot}},
		{4, layout.Replication{Kind: layout.ReplicateFull}},
	}
	for _, format := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds := sharedDataset(t, format)
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			for _, dop := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v/%v/dop%d", format, mode, dop), func(t *testing.T) {
					base, err := runFleet(t, ds, mode, dop, 1, layout.Replication{}, pipelineOn(), faults.Plan{}, nil)
					if err != nil {
						t.Fatalf("single device: %v", err)
					}
					requireFleetAccounting(t, base)
					for _, fl := range fleets {
						res, err := runFleet(t, ds, mode, dop, fl.devices, fl.rep, pipelineOn(), faults.Plan{}, nil)
						if err != nil {
							t.Fatalf("%d devices %v: %v", fl.devices, fl.rep, err)
						}
						if len(res.Devices) != fl.devices {
							t.Fatalf("%d device stat blocks, want %d", len(res.Devices), fl.devices)
						}
						requireSameResults(t, res, base)
						requireFleetAccounting(t, res)
						if res.Cache.PinnedBytes != 0 {
							t.Fatalf("%d devices %v: run left %d bytes pinned", fl.devices, fl.rep, res.Cache.PinnedBytes)
						}
					}
				})
			}
		}
	}
}

// TestFleetFailoverUnderCrash: device 0 of a two-device fleet dies
// permanently mid-run. With the demanded working set hot-replicated,
// every query must complete with results byte-identical to the clean
// fleet: deliveries failed by the crash are re-requested from the
// replica (counted failovers on the demand path), later demand routes
// around the dead device, and nothing is pinned or leaked.
func TestFleetFailoverUnderCrash(t *testing.T) {
	ds := sharedDataset(t, segment.FormatV2)
	hot := layout.Replication{Kind: layout.ReplicateHot}
	plan := faults.Plan{Seed: 7, CrashAt: 15 * time.Second} // no restart: dead for good
	for _, pipe := range []bool{false, true} {
		t.Run(fmt.Sprintf("pipe=%v", pipe), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			var pc *skipper.PipelineConfig
			if pipe {
				pc = pipelineOn()
			}
			clean, err := runFleet(t, ds, skipper.ModeSkipper, 1, 2, hot, pc, faults.Plan{}, nil)
			if err != nil {
				t.Fatalf("clean fleet: %v", err)
			}
			crashed, err := runFleet(t, ds, skipper.ModeSkipper, 1, 2, hot, pc, plan, nil)
			if err != nil {
				t.Fatalf("replicated fleet did not survive the crash: %v", err)
			}
			if crashed.Devices[0].Crashes != 1 {
				t.Fatalf("device 0 crashes = %d, want 1", crashed.Devices[0].Crashes)
			}
			if crashed.Devices[1].Crashes != 0 {
				t.Fatalf("crash leaked to device 1 (%d crashes)", crashed.Devices[1].Crashes)
			}
			requireSameResults(t, crashed, clean)
			// Anti-vacuous, demand path only: the prefetcher recovers from a
			// dead device by silently re-routing, so counted failovers are
			// only guaranteed when every GET is a demand GET.
			if !pipe {
				failovers := 0
				for _, cs := range crashed.Clients {
					failovers += cs.Failovers
				}
				if failovers == 0 {
					t.Fatal("fleet survived the crash without a single counted failover")
				}
			}
			if crashed.Cache.PinnedBytes != 0 {
				t.Fatalf("crashed run left %d bytes pinned", crashed.Cache.PinnedBytes)
			}
			requireGoroutinesSettle(t, baseline)
		})
	}
}

// TestFleetPermanentCrashNoReplica: without replication a permanent
// device-0 crash must surface as the typed DeviceDownError — the fleet
// has no replica to fail over to, and the proxy must not burn the retry
// policy against the dead device.
func TestFleetPermanentCrashNoReplica(t *testing.T) {
	ds := sharedDataset(t, segment.FormatV2)
	plan := faults.Plan{Seed: 7, CrashAt: 15 * time.Second}
	_, err := runFleet(t, ds, skipper.ModeSkipper, 1, 2, layout.Replication{}, nil, plan, nil)
	if err == nil {
		t.Fatal("unreplicated fleet survived a permanent device crash")
	}
	var de *csd.DeviceDownError
	if !errors.As(err, &de) {
		t.Fatalf("error %v does not carry a DeviceDownError", err)
	}
	if de.Restarting {
		t.Fatal("permanent crash reported Restarting=true")
	}
	if !skipper.IsFaultError(err) {
		t.Fatalf("IsFaultError(%v) = false, want true", err)
	}
}
