// Context-cancellation suite: the serving layer threads per-query
// deadlines into client runs via skipper.Client.Ctx, so a canceled or
// deadline-expired workload must abort with an error wrapping the
// context's error and drain exactly like the PR 6 fail-stop paths — no
// deadlock, no leaked goroutines, no orphaned cache pins. Runs under
// CI's -race job.
package skipper_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// runCanceled executes the 2-pass probe workload on one client bound to
// ctx, with the full pipeline (prefetch + decode workers) and a shared
// cache so every drain path is armed.
func runCanceled(t *testing.T, ctx context.Context, mode skipper.Mode) (*skipper.RunResult, *segcache.Cache, error) {
	t.Helper()
	ds := sharedDataset(t, segment.FormatV2)
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	shared := segcache.NewObjects(len(ds.Catalog.AllObjects()))
	cl := &skipper.Cluster{
		Clients: []*skipper.Client{{
			Tenant: 0, Mode: mode, Catalog: ds.Catalog,
			Queries: workload.MultiPass(ds.Catalog, 2), CacheObjects: 6,
			Pipeline: pipelineOn(), Ctx: ctx, KeepResults: true,
		}},
		Layout:      layout.RoundRobinObjects{NumGroups: 3},
		Store:       store,
		SharedCache: shared,
	}
	res, err := cl.Run()
	return res, shared, err
}

// TestClientContextExpiredDrains: a context that is already expired
// when the run starts must abort before any query executes, with an
// error wrapping context.DeadlineExceeded, and leave no goroutines or
// cache pins behind despite the armed prefetcher and decode pool.
func TestClientContextExpiredDrains(t *testing.T) {
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			defer cancel()
			_, shared, err := runCanceled(t, ctx, mode)
			if err == nil {
				t.Fatal("expired context did not abort the run")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
			}
			if st := shared.Stats(); st.PinnedBytes != 0 {
				t.Fatalf("aborted run left %d bytes pinned in the cache", st.PinnedBytes)
			}
			requireGoroutinesSettle(t, baseline)
		})
	}
}

// TestClientContextCancelMidRunDrains cancels the context from a timer
// racing the workload. Whether the cancel lands before, during or after
// the run, the invariants hold: an error, if any, wraps
// context.Canceled; results, if any, are complete per query; and the
// drain leaves no goroutines or cache pins.
func TestClientContextCancelMidRunDrains(t *testing.T) {
	for _, delay := range []time.Duration{0, 500 * time.Microsecond, 5 * time.Millisecond} {
		t.Run(fmt.Sprint(delay), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(delay, cancel)
			defer timer.Stop()
			defer cancel()
			_, shared, err := runCanceled(t, ctx, skipper.ModeSkipper)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
			if st := shared.Stats(); st.PinnedBytes != 0 {
				t.Fatalf("canceled run left %d bytes pinned in the cache", st.PinnedBytes)
			}
			requireGoroutinesSettle(t, baseline)
		})
	}
}

// TestClientNilContextUnchanged pins the default: a client without a
// Ctx runs to completion exactly as before the field existed.
func TestClientNilContextUnchanged(t *testing.T) {
	res, _, err := runCanceled(t, nil, skipper.ModeSkipper)
	if err != nil {
		t.Fatalf("nil-context run failed: %v", err)
	}
	if got := len(res.Clients[0].PerQuery); got != 4 {
		t.Fatalf("nil-context run executed %d of 4 queries", got)
	}
}
