// Chaos differential suite: the same workloads the cache/pipeline
// differentials run, executed against a device injecting retryable
// faults — transient GET failures, stalls and corrupt payloads — must
// produce byte-identical results to the clean run, across engine modes,
// wire formats, DOP and pipeline on/off, while the GET accounting
// extends to retries (every re-request is a device-visible GET). Crash
// windows with a scheduled restart must also be survived; a permanent
// crash must surface as a typed, non-retryable fault. Runs under CI's
// -race job.
package skipper_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/csd"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// chaosPlan is the retryable-only fault plan of the differential: no
// crash window, every injected fault recoverable by the retry policy
// (the per-object cap guarantees convergence under MaxAttempts).
func chaosPlan(seed int64) faults.Plan {
	// Rates are high because the probe dataset is small (a handful of
	// objects, further deduplicated by transfer coalescing): at paper-
	// scale rates a run would roll the dice a dozen times and usually
	// inject nothing, making the differential vacuous.
	return faults.Plan{
		Seed:               seed,
		TransientRate:      0.40,
		StallRate:          0.20,
		Stall:              3 * time.Second,
		CorruptRate:        0.25,
		MaxFaultsPerObject: 3,
	}
}

// runChaos executes the 2-pass probe workload on two tenants sharing
// the dataset and one segment cache, against a device running the given
// fault plan (zero plan = clean oracle).
func runChaos(t *testing.T, ds *workload.Dataset, mode skipper.Mode, dop int,
	pc *skipper.PipelineConfig, plan faults.Plan, retry *skipper.RetryPolicy) (*skipper.RunResult, *faults.Injector) {
	t.Helper()
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	var inj *faults.Injector
	if plan.Enabled() {
		inj = faults.MustNew(plan)
	}
	clients := make([]*skipper.Client, 2)
	for tn := range clients {
		clients[tn] = &skipper.Client{
			Tenant:       tn,
			Mode:         mode,
			Catalog:      ds.Catalog,
			Queries:      workload.MultiPass(ds.Catalog, 2),
			CacheObjects: 6,
			Parallelism:  dop,
			KeepResults:  true,
			Pipeline:     pc,
			Retry:        retry,
		}
	}
	cl := &skipper.Cluster{
		Clients:     clients,
		Layout:      layout.RoundRobinObjects{NumGroups: 3},
		Store:       store,
		SharedCache: segcache.NewObjects(len(ds.Catalog.AllObjects())),
		CSD:         csd.Config{Faults: inj},
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatalf("mode=%v dop=%d pipeline=%v faults=%v: %v", mode, dop, pc != nil, plan.Enabled(), err)
	}
	return res, inj
}

func TestChaosDifferential(t *testing.T) {
	for _, format := range []segment.Format{segment.FormatV1, segment.FormatV2} {
		ds := sharedDataset(t, format)
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			for _, dop := range []int{1, 4} {
				for _, pipe := range []bool{false, true} {
					name := fmt.Sprintf("%v/%v/dop%d/pipe=%v", format, mode, dop, pipe)
					t.Run(name, func(t *testing.T) {
						var pc *skipper.PipelineConfig
						if pipe {
							pc = pipelineOn()
						}
						clean, _ := runChaos(t, ds, mode, dop, pc, faults.Plan{}, nil)
						chaotic, inj := runChaos(t, ds, mode, dop, pc, chaosPlan(42), nil)
						// Anti-vacuous: the plan must actually have fired, and the
						// clients must actually have recovered.
						st := inj.Stats()
						if st.Injected() == 0 {
							t.Fatal("fault plan injected nothing — differential is vacuous")
						}
						retries, faultsSeen := 0, 0
						for _, cs := range chaotic.Clients {
							retries += cs.Retries
							faultsSeen += cs.TransientFaults + cs.CorruptDeliveries
						}
						if st.Transient+st.Corrupt > 0 && faultsSeen == 0 {
							t.Fatalf("injector reports %d transient + %d corrupt but clients observed nothing",
								st.Transient, st.Corrupt)
						}
						// Without a prefetcher every observed fault lands on the
						// demand path, which must recover by retrying. (With the
						// pipeline on, a fault on a prefetch transfer is instead
						// recovered by dropping the candidate — the demand refetch
						// only retries if it faults again.)
						if !pipe && faultsSeen > 0 && retries == 0 {
							t.Fatalf("%d demand-path faults recovered without a retry", faultsSeen)
						}
						requireSameResults(t, chaotic, clean)
						// GET conservation extends to retries: every re-request is a
						// device-visible GET, so per tenant the device's received
						// count must equal issued - cache hits - prefetch-served +
						// prefetch-issued, exactly as in the clean accounting.
						for _, cs := range chaotic.Clients {
							device := chaotic.CSD.GetsByTenant[cs.Tenant]
							want := cs.GetsIssued - cs.CacheHits - cs.PrefetchServed + cs.PrefetchIssued
							if device != want {
								t.Fatalf("tenant %d: device saw %d GETs, accounting says %d (issued %d, hits %d, pf served %d, pf issued %d, retries %d)",
									cs.Tenant, device, want, cs.GetsIssued, cs.CacheHits, cs.PrefetchServed, cs.PrefetchIssued, cs.Retries)
							}
						}
						// Nothing pinned once the run is over.
						if chaotic.Cache.PinnedBytes != 0 {
							t.Fatalf("run left %d bytes pinned", chaotic.Cache.PinnedBytes)
						}
					})
				}
			}
		}
	}
}

// TestCrashRestartSurvived: a crash window in the middle of the run
// with a scheduled restart must be survived by both engines — refused
// and failed GETs are retried with backoff until the device returns,
// and results still match the clean oracle.
func TestCrashRestartSurvived(t *testing.T) {
	ds := sharedDataset(t, segment.FormatV2)
	// Backoff sums must be able to outlast the downtime; unlimited budget
	// because a crash fails every outstanding object at once.
	retry := &skipper.RetryPolicy{MaxAttempts: 40, BaseBackoff: 500 * time.Millisecond, MaxBackoff: 8 * time.Second, Budget: -1}
	plan := faults.Plan{Seed: 7, CrashAt: 15 * time.Second, CrashDowntime: 20 * time.Second}
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		for _, pipe := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/pipe=%v", mode, pipe), func(t *testing.T) {
				var pc *skipper.PipelineConfig
				if pipe {
					pc = pipelineOn()
				}
				clean, _ := runChaos(t, ds, mode, 1, pc, faults.Plan{}, nil)
				crashed, _ := runChaos(t, ds, mode, 1, pc, plan, retry)
				if crashed.CSD.Crashes != 1 || crashed.CSD.Restarts != 1 {
					t.Fatalf("crashes=%d restarts=%d, want 1/1", crashed.CSD.Crashes, crashed.CSD.Restarts)
				}
				retries := 0
				for _, cs := range crashed.Clients {
					retries += cs.Retries
				}
				if retries == 0 {
					t.Fatal("crash window survived without a single retry — schedule missed the run")
				}
				requireSameResults(t, crashed, clean)
			})
		}
	}
}

// TestPermanentCrashTyped: a crash with no restart is not retryable —
// the run must fail promptly with the typed DeviceDownError (wrapped in
// the query error chain), not burn the retry policy against a dead box.
func TestPermanentCrashTyped(t *testing.T) {
	ds := sharedDataset(t, segment.FormatV2)
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	inj := faults.MustNew(faults.Plan{Seed: 7, CrashAt: 15 * time.Second})
	cl := &skipper.Cluster{
		Clients: []*skipper.Client{{
			Tenant: 0, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
			Queries: workload.MultiPass(ds.Catalog, 2), CacheObjects: 6,
		}},
		Layout: layout.RoundRobinObjects{NumGroups: 3},
		Store:  store,
		CSD:    csd.Config{Faults: inj},
	}
	_, err := cl.Run()
	if err == nil {
		t.Fatal("run over a permanently crashed device succeeded")
	}
	var de *csd.DeviceDownError
	if !errors.As(err, &de) {
		t.Fatalf("error %v does not carry a DeviceDownError", err)
	}
	if de.Restarting {
		t.Fatal("permanent crash reported Restarting=true")
	}
	if !skipper.IsFaultError(err) {
		t.Fatalf("IsFaultError(%v) = false, want true", err)
	}
}

// TestCancelDuringRetryBackoff: a context that expires while the proxy
// is in fault recovery (an endless transient storm keeps it in the
// backoff loop) must abort the run with the context error, drain the
// pipeline machinery and leave no cache pins or goroutines behind.
func TestCancelDuringRetryBackoff(t *testing.T) {
	ds := sharedDataset(t, segment.FormatV2)
	// Every transfer fails, forever: without cancellation this plan can
	// only end in retry exhaustion, so an unlimited policy pins the run
	// inside the recovery loop until the deadline fires.
	plan := faults.Plan{Seed: 3, TransientRate: 1.0, MaxFaultsPerObject: -1}
	retry := &skipper.RetryPolicy{MaxAttempts: 1 << 20, BaseBackoff: 250 * time.Millisecond, MaxBackoff: 8 * time.Second, Budget: -1}
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			store := make(map[segment.ObjectID]*segment.Segment)
			ds.MergeInto(store)
			shared := segcache.NewObjects(len(ds.Catalog.AllObjects()))
			cl := &skipper.Cluster{
				Clients: []*skipper.Client{{
					Tenant: 0, Mode: mode, Catalog: ds.Catalog,
					Queries: workload.MultiPass(ds.Catalog, 2), CacheObjects: 6,
					Pipeline: pipelineOn(), Ctx: ctx, Retry: retry,
				}},
				Layout:      layout.RoundRobinObjects{NumGroups: 3},
				Store:       store,
				SharedCache: shared,
				CSD:         csd.Config{Faults: faults.MustNew(plan)},
			}
			_, err := cl.Run()
			if err == nil {
				t.Fatal("canceled retry storm completed successfully")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
			}
			if st := shared.Stats(); st.PinnedBytes != 0 {
				t.Fatalf("aborted run left %d bytes pinned", st.PinnedBytes)
			}
			requireGoroutinesSettle(t, baseline)
		})
	}
}

// TestRetryExhaustionTyped: when the per-object fault cap exceeds what
// the policy will spend, the query must fail with RetryExhaustedError —
// carrying the object and attempt count — rather than loop forever.
func TestRetryExhaustionTyped(t *testing.T) {
	ds := sharedDataset(t, segment.FormatV2)
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	plan := faults.Plan{Seed: 3, TransientRate: 1.0, MaxFaultsPerObject: -1}
	retry := &skipper.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Budget: -1}
	cl := &skipper.Cluster{
		Clients: []*skipper.Client{{
			Tenant: 0, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
			Queries: workload.MultiPass(ds.Catalog, 1), CacheObjects: 6,
			Retry: retry,
		}},
		Layout: layout.RoundRobinObjects{NumGroups: 3},
		Store:  store,
		CSD:    csd.Config{Faults: faults.MustNew(plan)},
	}
	_, err := cl.Run()
	if err == nil {
		t.Fatal("unrecoverable transient storm completed successfully")
	}
	var re *skipper.RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("error %v does not carry a RetryExhaustedError", err)
	}
	if re.Attempts != retry.MaxAttempts {
		t.Fatalf("exhausted after %d attempts, policy allows %d", re.Attempts, retry.MaxAttempts)
	}
	var te *csd.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("exhaustion error %v does not wrap the last TransientError", err)
	}
	if !skipper.IsFaultError(err) {
		t.Fatalf("IsFaultError(%v) = false, want true", err)
	}
}
