package skipper

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/trace"
)

// relocatedLayout wraps a base policy and moves one group's objects to a
// fallback group, modeling a disk-group failure before the run (§3.2).
type relocatedLayout struct {
	base             layout.Policy
	failed, fallback int
}

func (r relocatedLayout) Name() string { return r.base.Name() + "+relocated" }

func (r relocatedLayout) Assign(tenants []layout.TenantObjects) (*layout.Assignment, error) {
	a, err := r.base.Assign(tenants)
	if err != nil {
		return nil, err
	}
	if _, err := a.RelocateGroup(r.failed, r.fallback); err != nil {
		return nil, err
	}
	return a, nil
}

func TestGroupFailureRelocationPreservesResults(t *testing.T) {
	// Three tenants, one group each; group 1 fails and its data lands in
	// group 2. Queries still complete with identical results; the layout
	// just behaves like a two-group device.
	for _, mode := range []Mode{ModeVanilla, ModeSkipper} {
		clean := buildCluster(3, mode, 6)
		cleanRes, err := clean.Run()
		if err != nil {
			t.Fatal(err)
		}
		failed := buildCluster(3, mode, 6)
		failed.Layout = relocatedLayout{base: layout.OnePerGroup(), failed: 1, fallback: 2}
		failedRes, err := failed.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range cleanRes.Clients {
			if cleanRes.Clients[i].Rows != failedRes.Clients[i].Rows {
				t.Fatalf("%v tenant %d: rows %d != %d after relocation",
					mode, i, cleanRes.Clients[i].Rows, failedRes.Clients[i].Rows)
			}
		}
		// Two effective groups need fewer switches than three.
		if failedRes.CSD.GroupSwitches >= cleanRes.CSD.GroupSwitches && mode == ModeSkipper {
			t.Fatalf("%v: switches %d !< %d", mode, failedRes.CSD.GroupSwitches, cleanRes.CSD.GroupSwitches)
		}
	}
}

// TestAdversarialPlacement runs both engines over the round-robin object
// scattering a shared CSD may produce for load balancing (§3.2): every
// relation's segments are striped across all groups. Results must be
// identical to the clean layout; only I/O patterns may differ.
func TestAdversarialPlacement(t *testing.T) {
	for _, groups := range []int{2, 3, 5} {
		for _, mode := range []Mode{ModeVanilla, ModeSkipper} {
			clean := buildCluster(2, mode, 6)
			cleanRes, err := clean.Run()
			if err != nil {
				t.Fatal(err)
			}
			scattered := buildCluster(2, mode, 6)
			scattered.Layout = layout.RoundRobinObjects{NumGroups: groups}
			scatRes, err := scattered.Run()
			if err != nil {
				t.Fatalf("groups=%d %v: %v", groups, mode, err)
			}
			for i := range cleanRes.Clients {
				if cleanRes.Clients[i].Rows != scatRes.Clients[i].Rows {
					t.Fatalf("groups=%d %v tenant %d: rows %d != %d",
						groups, mode, i, cleanRes.Clients[i].Rows, scatRes.Clients[i].Rows)
				}
			}
			// Striping across groups forces switches for everyone.
			if scatRes.CSD.GroupSwitches == 0 {
				t.Fatalf("groups=%d %v: no switches under scattering", groups, mode)
			}
		}
	}
}

func TestEventLogEndToEnd(t *testing.T) {
	cl := buildCluster(2, ModeSkipper, 6)
	log := &trace.Log{}
	cl.Events = log
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	counts := log.CountByKind()
	if counts[trace.KindQueryStart] != 2 || counts[trace.KindQueryEnd] != 2 {
		t.Fatalf("query spans: %v", counts)
	}
	if counts[trace.KindSwitch] != res.CSD.GroupSwitches {
		t.Fatalf("trace switches %d != stats %d", counts[trace.KindSwitch], res.CSD.GroupSwitches)
	}
	if counts[trace.KindGet] != res.CSD.GetsReceived {
		t.Fatalf("trace gets %d != stats %d", counts[trace.KindGet], res.CSD.GetsReceived)
	}
	if counts[trace.KindDelivery] != res.CSD.ObjectsServed {
		t.Fatalf("trace deliveries %d != stats %d", counts[trace.KindDelivery], res.CSD.ObjectsServed)
	}
	// Events are in non-decreasing time order.
	for i := 1; i < len(log.Events); i++ {
		if log.Events[i].At < log.Events[i-1].At {
			t.Fatalf("trace out of order at %d", i)
		}
	}
}
