package skipper

import (
	"errors"
	"fmt"

	"repro/internal/csd"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/vtime"
)

// This file implements the scheduler-aware prefetcher of the execution
// pipeline: a per-client simulated process that issues GETs for the
// upcoming queries' unpruned, cache-missing segments while the current
// query executes, under a bounded in-flight byte budget. Prefetching
// helps twice over:
//
//   - It discloses future demand to the device scheduler. Prefetch GETs
//     carry the real upcoming query id, so the rank-based policy sees the
//     work earlier and can batch group switches across present and future
//     queries — a virtual-time (makespan) win.
//   - It overlaps transfer with compute. A segment whose transfer started
//     during the previous query is resident (segment cache) or staged
//     (no cache) by the time the demand path asks for it.
//
// Prefetch never changes results: a prefetched delivery is the same
// immutable segment the demand GET would have fetched, and the device
// coalesces a prefetch racing its own demand GET onto one transfer (one
// BytesServed charge). Stats pruning is honoured at enqueue time — a
// segment the relation's Pruner proves result-free is never prefetched.

// PipelineConfig enables the asynchronous execution pipeline for one
// client. The zero value (or a nil pointer) disables everything.
type PipelineConfig struct {
	// PrefetchBytes bounds the prefetcher's outstanding data — transfers
	// in flight plus staged-but-unconsumed deliveries — in nominal object
	// bytes. 0 disables prefetching. With the paper's 1 GB objects,
	// 2e9 keeps two objects ahead.
	PrefetchBytes int64
	// DecodeWorkers is the size of the client's decode pool: background
	// workers that turn delivered payloads into columnar batches off the
	// critical path. 0 disables concurrent decode.
	DecodeWorkers int
	// DecodeAhead bounds how many segments each consumer keeps decoded or
	// decoding ahead of consumption (default 2).
	DecodeAhead int
}

// pfCandidate is one object the prefetcher may fetch ahead of demand.
type pfCandidate struct {
	id      segment.ObjectID
	queryID string // the real upcoming query, disclosed to the scheduler
	bytes   int64  // nominal transfer size
}

// pfCmd is the client-to-prefetcher control message.
type pfCmd struct {
	stop bool
	objs []pfCandidate
}

// prefetcher is the per-client prefetch daemon. All state is touched
// only from simulated processes (the prefetcher's own proc and the
// client proc), which the cooperative vtime kernel never runs
// concurrently, so the maps need no locking.
type prefetcher struct {
	tenant int
	budget int64
	fl     *DeviceChooser
	cache  *segcache.Cache
	stats  *ClientStats

	cmd   *vtime.Chan[pfCmd]
	reply *vtime.Chan[csd.Delivery]

	queue  []pfCandidate
	queued map[segment.ObjectID]bool // queue membership, for dedup

	inflight      map[segment.ObjectID]int64 // issued, not yet delivered
	inflightBytes int64
	// staged holds deliveries when the client has no segment cache; the
	// demand path consumes them via takeStaged. With a cache, deliveries
	// are admitted there instead and staged stays empty.
	staged      map[segment.ObjectID]*segment.Segment
	stagedBytes int64
	// admitted marks cache entries that came from prefetch, so a later
	// demand cache hit can be attributed (PrefetchUseful).
	admitted map[segment.ObjectID]bool

	stopped bool
	// failed is set on the first unrecoverable fatal error delivery
	// (device fail-stop, or a permanent crash with no live replica of the
	// object elsewhere): the prefetcher stops issuing and lets the demand
	// path surface the error. Retryable faults — and permanent crashes
	// the fleet can fail over — do not set it: the affected object is
	// simply dropped and left to the demand path, whose retry policy owns
	// recovery.
	failed bool
}

func newPrefetcher(sim *vtime.Sim, fl *DeviceChooser, cache *segcache.Cache, c *Client) *prefetcher {
	return &prefetcher{
		tenant:   c.Tenant,
		budget:   c.Pipeline.PrefetchBytes,
		fl:       fl,
		cache:    cache,
		stats:    &c.stats,
		cmd:      vtime.NewChan[pfCmd](sim, fmt.Sprintf("prefetch.t%d.cmd", c.Tenant), len(c.Queries)+4),
		reply:    vtime.NewChan[csd.Delivery](sim, fmt.Sprintf("prefetch.t%d.reply", c.Tenant), 1<<20),
		queued:   make(map[segment.ObjectID]bool),
		inflight: make(map[segment.ObjectID]int64),
		staged:   make(map[segment.ObjectID]*segment.Segment),
		admitted: make(map[segment.ObjectID]bool),
	}
}

// enqueue asks the prefetcher to consider the given candidates; called
// from the client proc. The buffered command channel never blocks for a
// well-formed client (one enqueue per query plus one stop).
func (pf *prefetcher) enqueue(p *vtime.Proc, objs []pfCandidate) {
	pf.cmd.Send(p, pfCmd{objs: objs})
}

// stop tells the prefetcher to wind down; it exits once its in-flight
// transfers have been delivered (the device always answers every GET —
// with data, or with an error after a fail-stop or during shutdown), so
// the simulation never strands the prefetch process.
func (pf *prefetcher) stop(p *vtime.Proc) {
	pf.cmd.Send(p, pfCmd{stop: true})
}

// run is the prefetch daemon loop. Structure: drain control and
// delivery channels without blocking, issue what the budget allows,
// then block on whichever channel can actually wake it — deliveries
// while transfers are in flight, commands otherwise. Every path makes
// progress toward exit once stop has been received.
func (pf *prefetcher) run(p *vtime.Proc) {
	for {
		for {
			cmd, ok := pf.cmd.TryRecv(p)
			if !ok {
				break
			}
			pf.applyCmd(cmd)
		}
		for {
			d, ok := pf.reply.TryRecv(p)
			if !ok {
				break
			}
			pf.complete(d)
		}
		if pf.stopped && len(pf.inflight) == 0 {
			return
		}
		if !pf.stopped && !pf.failed {
			pf.issue(p)
		}
		if len(pf.inflight) > 0 {
			pf.complete(pf.reply.Recv(p))
		} else {
			pf.applyCmd(pf.cmd.Recv(p))
		}
	}
}

func (pf *prefetcher) applyCmd(cmd pfCmd) {
	if cmd.stop {
		pf.stopped = true
		return
	}
	for _, c := range cmd.objs {
		if pf.queued[c.id] {
			continue
		}
		if _, inf := pf.inflight[c.id]; inf {
			continue
		}
		if _, st := pf.staged[c.id]; st {
			continue
		}
		pf.queued[c.id] = true
		pf.queue = append(pf.queue, c)
	}
}

// issue starts as many prefetch transfers as the byte budget allows,
// preferring candidates the device can serve without a group switch.
func (pf *prefetcher) issue(p *vtime.Proc) {
	for len(pf.queue) > 0 {
		i := pf.pick()
		cand := pf.queue[i]
		// Residency first: a segment already in cache (or staged) needs no
		// transfer regardless of budget.
		if pf.cache != nil && pf.cache.Contains(cand.id) {
			pf.dropQueued(i)
			continue
		}
		if pf.inflightBytes+pf.stagedBytes+cand.bytes > pf.budget {
			if pf.inflightBytes+pf.stagedBytes > 0 {
				return // budget busy; retry when something completes or drains
			}
			// The object alone exceeds the budget and nothing is
			// outstanding: it can never fit. Drop it rather than spin.
			pf.dropQueued(i)
			continue
		}
		pf.dropQueued(i)
		pf.inflight[cand.id] = cand.bytes
		pf.inflightBytes += cand.bytes
		pf.stats.PrefetchIssued++
		d := pf.fl.Choose(cand.id)
		pf.stats.addPrefetchDeviceGet(d)
		pf.fl.device(d).Submit(p, &csd.Request{
			Object: cand.id, QueryID: cand.queryID, Tenant: pf.tenant, Reply: pf.reply,
		})
	}
}

// pick returns the queue index to issue next: a candidate some live
// replica can serve without a group switch if any, else one on a
// scheduler's predicted next group, else the FIFO head.
func (pf *prefetcher) pick() int {
	best := 0
	for i, cand := range pf.queue {
		switch pf.fl.affinity(cand.id) {
		case 2:
			return i
		case 1:
			if best == 0 && i > 0 {
				best = i
			}
		}
	}
	return best
}

// dropQueued removes queue[i], preserving order.
func (pf *prefetcher) dropQueued(i int) {
	delete(pf.queued, pf.queue[i].id)
	pf.queue = append(pf.queue[:i], pf.queue[i+1:]...)
}

// complete folds one delivery into prefetcher state: admit to the
// segment cache when there is one, stage otherwise. A fatal error
// delivery (device fail-stop) quiesces the prefetcher — the demand path
// will observe the same error and abort the query. A retryable fault or
// a checksum-failed payload just releases the slot: prefetch is an
// optimization, so the object is left for the demand path, whose retry
// policy owns recovery; nothing corrupt is ever admitted or staged.
func (pf *prefetcher) complete(d csd.Delivery) {
	b, ok := pf.inflight[d.Object]
	if !ok {
		return
	}
	delete(pf.inflight, d.Object)
	pf.inflightBytes -= b
	if d.Err != nil {
		if csd.IsRetryable(d.Err) {
			pf.stats.TransientFaults++
			return
		}
		var dde *csd.DeviceDownError
		if errors.As(d.Err, &dde) {
			if _, ok := pf.fl.Failover(d.Object, d.Device); ok {
				// One device's permanent crash is not fatal to the fleet:
				// the object has a live replica the demand path fails over
				// to. Release the slot and keep prefetching elsewhere.
				return
			}
		}
		pf.failed = true
		pf.queue, pf.queued = nil, make(map[segment.ObjectID]bool)
		return
	}
	if err := d.Seg.VerifyChecksum(); err != nil {
		pf.stats.CorruptDeliveries++
		return
	}
	if pf.cache != nil {
		pf.cache.Put(d.Object, d.Seg)
		pf.admitted[d.Object] = true
		return
	}
	pf.staged[d.Object] = d.Seg
	pf.stagedBytes += b
}

// takeStaged hands a staged delivery to the demand path, freeing its
// budget slot. Called from the client proc.
func (pf *prefetcher) takeStaged(id segment.ObjectID) (*segment.Segment, bool) {
	seg, ok := pf.staged[id]
	if !ok {
		return nil, false
	}
	delete(pf.staged, id)
	pf.stagedBytes -= seg.NominalBytes
	return seg, true
}

// markUsed attributes a demand cache hit to prefetch, once per
// prefetched object. Called from the client proc.
func (pf *prefetcher) markUsed(id segment.ObjectID) bool {
	if pf.admitted[id] {
		delete(pf.admitted, id)
		return true
	}
	return false
}

// candidatesFor builds the prefetch candidate list of one upcoming
// query: every segment of every relation, in plan order, minus the
// segments stats pruning proves result-free (those are never requested
// by the demand path either).
func candidatesFor(c *Client, qi int, store map[segment.ObjectID]*segment.Segment) []pfCandidate {
	spec := c.Queries[qi]
	queryID := fmt.Sprintf("t%d.%s#%d", c.Tenant, spec.Name, qi)
	prune := c.statsPruningOn()
	var out []pfCandidate
	for _, rel := range spec.Join.Relations {
		for si, id := range rel.Table.Objects {
			if prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
				continue
			}
			seg, ok := store[id]
			if !ok {
				continue
			}
			out = append(out, pfCandidate{id: id, queryID: queryID, bytes: seg.NominalBytes})
		}
	}
	return out
}
