// Package skipper ties the pieces of the Skipper architecture together
// (Figure 6): database clients (one per VM/tenant), the client proxy that
// tags GET requests with query identifiers and mediates between the MJoin
// state manager and the CSD, and a Cluster harness that runs several
// tenants concurrently against one shared device and gathers per-client
// timing — the setup of every experiment in §5.
package skipper

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/csd"
	"repro/internal/engine"
	"repro/internal/mjoin"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/trace"
	"repro/internal/tuple"
	"repro/internal/vtime"
)

// Mode selects the execution engine of a client.
type Mode uint8

const (
	// ModeVanilla is the classical pull-based engine: one synchronous
	// GET per segment, in plan order.
	ModeVanilla Mode = iota
	// ModeSkipper is the MJoin-based out-of-order engine: all GETs
	// upfront, execution driven by arrival order.
	ModeSkipper
)

func (m Mode) String() string {
	if m == ModeVanilla {
		return "vanilla"
	}
	return "skipper"
}

// Costs bundles the virtual processing-cost calibration (Table 3).
type Costs struct {
	// VanillaPerObject is the pull engine's per-segment processing cost
	// (407 s / 57 objects ≈ 7.14 s).
	VanillaPerObject time.Duration
	// MJoinPerObject is the MJoin per-arrival cost (433 s / 57 ≈ 7.6 s;
	// ≈6% above vanilla).
	MJoinPerObject time.Duration
	// FusePerObject is the FUSE interposition overhead on the vanilla
	// path only (15.75 s / 57 ≈ 276 ms).
	FusePerObject time.Duration
}

// DefaultCosts returns the Table 3 calibration.
func DefaultCosts() Costs {
	return Costs{
		VanillaPerObject: 7140 * time.Millisecond,
		MJoinPerObject:   7600 * time.Millisecond,
		FusePerObject:    276 * time.Millisecond,
	}
}

// QuerySpec is one query a client runs: an MJoin query plus an optional
// post-join shaping stage (aggregation etc.) applied to the join output.
type QuerySpec struct {
	Name string
	// Join defines relations, local filters and join conditions; both
	// engines execute exactly this logical query.
	Join *mjoin.Query
	// Shape, if non-nil, wraps the join output (vanilla) or the MJoin
	// result rows (skipper) with the final operators.
	Shape func(input engine.Iterator) engine.Iterator
}

// ClientStats is the per-client timing record used by the experiments.
type ClientStats struct {
	Tenant int
	Mode   Mode
	// Start/Finish bound the whole workload (all queries).
	Start, Finish time.Duration
	// PerQuery holds one entry per executed query, in order.
	PerQuery []QueryRun
	// Processing accumulates virtual compute charges.
	Processing time.Duration
	// Fuse accumulates FUSE overhead charges (vanilla only).
	Fuse time.Duration
	// StallIntervals are the periods the client spent blocked waiting
	// for data from the CSD.
	StallIntervals []csd.Interval
	// GetsIssued counts GET requests (including MJoin reissues). Requests
	// served by the shared segment cache are included; subtract CacheHits
	// for the device-visible traffic.
	GetsIssued int
	// CacheHits counts GETs served from the shared segment cache without
	// touching the device: GetsIssued - CacheHits equals the GETs the CSD
	// actually received from this client.
	CacheHits int
	// SegmentsSkipped counts segment requests the statistics subsystem
	// (zone maps + Bloom filters) avoided across the workload — fetches
	// that would have been issued without data skipping.
	SegmentsSkipped int
	// BytesFetched / BytesDecoded / BytesSkippedByProjection /
	// BytesMaterialized account the scan-side decode work against
	// encoded (lazily decoded) stores: total encoded size of the
	// segments scanned, the block bytes actually decoded, the block
	// bytes projection pushdown left untouched, and the logical size of
	// the values materialized into batches. All zero over in-memory
	// (never-encoded) stores.
	BytesFetched             int64
	BytesDecoded             int64
	BytesSkippedByProjection int64
	BytesMaterialized        int64
	// Rows is the total result row count across queries.
	Rows int64
	// MJoin aggregates state-manager statistics (skipper mode).
	MJoin mjoin.Stats
	// PrefetchIssued counts GETs the prefetcher sent to the device on
	// this client's behalf; PrefetchServed counts demand requests served
	// from staged prefetch deliveries instead of the device; and
	// PrefetchUseful counts distinct prefetched objects a query actually
	// consumed (staged or via a cache hit on a prefetched entry). The
	// device-visible GET count of a client is
	// GetsIssued - CacheHits - PrefetchServed + PrefetchIssued.
	PrefetchIssued int
	PrefetchServed int
	PrefetchUseful int
	// DeviceGets and PrefetchDeviceGets are the per-device ledgers of a
	// device fleet: DeviceGets[d] counts the demand GETs (first requests
	// and retries) this client submitted to device d, and
	// PrefetchDeviceGets[d] the prefetcher's GETs on its behalf. In a
	// clean run (no fault plan) GET conservation holds per device: device
	// d's GetsByTenant[tenant] equals DeviceGets[d] +
	// PrefetchDeviceGets[d]. Under faults a submission refused by a down
	// device counts here but not at the device, exactly as the cluster
	// invariant above only holds fault-free. Nil when no GET was routed.
	DeviceGets         map[int]int
	PrefetchDeviceGets map[int]int
	// Failovers counts recoveries that re-requested an object from a live
	// replica on another device instead of backing off against the device
	// that failed it. Each failover also counts in Retries.
	Failovers int
	// TransientFaults and CorruptDeliveries count the retryable faults
	// this client observed on the demand path; Retries counts the
	// re-requests the proxy issued in response (each also counts in
	// GetsIssued — GET conservation holds per attempt); RetryBackoff is
	// the virtual time spent waiting between attempts. All zero when the
	// device runs without a fault plan.
	TransientFaults   int
	CorruptDeliveries int
	Retries           int
	RetryBackoff      time.Duration
	// Pipe is the wall-clock pipeline accounting: real time the client's
	// consumers spent blocked on fetch and decode versus the decode time
	// the pipeline hid behind compute. Populated (as the inline baseline,
	// DecodeStall == DecodeBusy) even with the pipeline off.
	Pipe engine.PipeStats
	// WallElapsed is the real (hardware) time between this client's
	// workload start and finish. Under the cooperative simulation it
	// includes time other processes ran while this client was blocked;
	// per-cluster, RunResult.Wall is the headline number.
	WallElapsed time.Duration
}

// QueryRun records one query execution.
type QueryRun struct {
	Name          string
	QueryID       string
	Start, Finish time.Duration
	Rows          int
	// Results holds the full result rows when Client.KeepResults is set;
	// nil otherwise.
	Results []tuple.Row
}

// Elapsed returns the client's total workload time.
func (s *ClientStats) Elapsed() time.Duration { return s.Finish - s.Start }

// addDeviceGet records one demand GET submitted to device d.
func (s *ClientStats) addDeviceGet(d int) {
	if s.DeviceGets == nil {
		s.DeviceGets = make(map[int]int)
	}
	s.DeviceGets[d]++
}

// addPrefetchDeviceGet records one prefetch GET submitted to device d.
func (s *ClientStats) addPrefetchDeviceGet(d int) {
	if s.PrefetchDeviceGets == nil {
		s.PrefetchDeviceGets = make(map[int]int)
	}
	s.PrefetchDeviceGets[d]++
}

// Stalled sums the stall intervals.
func (s *ClientStats) Stalled() time.Duration {
	var d time.Duration
	for _, iv := range s.StallIntervals {
		d += iv.To - iv.From
	}
	return d
}

// Client is one database instance (one VM) bound to a tenant's catalog.
type Client struct {
	Tenant  int
	Mode    Mode
	Catalog *catalog.Catalog
	Queries []QuerySpec
	// CacheObjects is the MJoin buffer capacity in objects (skipper
	// mode). The paper expresses it in GB; with 1 GB objects the numbers
	// coincide.
	CacheObjects int
	// Policy overrides the eviction policy (default MaxProgress).
	Policy mjoin.EvictionPolicy
	// Pruning toggles subplan pruning (default true).
	Pruning *bool
	// StatsPruning toggles zone-map/Bloom data skipping (default true):
	// scan specs carrying a stats.Pruner skip proven result-free
	// segments before any GET is issued, in both modes. Query results
	// are identical either way; only storage traffic changes.
	StatsPruning *bool
	// Parallelism is the worker count for query execution: hash-join
	// build/probe and aggregation in ModeVanilla, the MJoin probe chains
	// and the shaping stage in ModeSkipper. 0 or 1 runs serially; query
	// results are identical at every setting, except that operators
	// without a Sort above them may emit rows in a different order, and
	// SUM/AVG over floats with non-representable values may differ in
	// the last ulps (parallel float addition reassociates; see
	// docs/tuning.md). Storage traffic and virtual time are unaffected —
	// the knob spends real CPU cores to cut the real (wall-clock)
	// compute between I/O stalls.
	Parallelism int
	// SegCache, when non-nil, is this client's private segment cache: the
	// proxy serves cache-resident objects without a device GET and admits
	// device deliveries on the way back. It overrides the cluster's
	// SharedCache for this client. Query results are byte-identical with
	// and without a cache; only storage traffic and timing change.
	SegCache *segcache.Cache
	// Pipeline, when non-nil, enables the asynchronous execution pipeline
	// for this client: scheduler-aware prefetch (PrefetchBytes) and
	// concurrent decode workers (DecodeWorkers). Query results are
	// byte-identical with the pipeline on or off; prefetch changes
	// storage timing (virtual), decode workers change wall-clock time
	// (real) only.
	Pipeline *PipelineConfig
	// Retry overrides the proxy's fault-recovery policy; nil uses
	// DefaultRetryPolicy. The policy only engages when a delivery carries
	// a retryable fault or a checksum failure — against a clean device it
	// never runs, so the default is always safe.
	Retry *RetryPolicy
	// Ctx, when non-nil, bounds the client's execution in real time: once
	// the context is canceled or its deadline passes, the workload aborts
	// with an error wrapping ctx.Err() at the next query boundary or
	// segment arrival. The serving layer threads per-query deadlines
	// through here. Cancellation observes the usual cleanup: prefetchers
	// are stopped, decode pools closed, and the device drained, exactly
	// as on any other client error.
	Ctx context.Context
	// QTrace, when non-nil, receives hierarchical spans for this client's
	// queries: a root span per query with execute, prefetch-disclosure,
	// per-segment fetch/decode and stall spans nested under it, stamped
	// with both wall and virtual clocks where the code owns a vtime proc.
	// nil (the default) records nothing and costs one branch per hook.
	QTrace *trace.QueryTrace
	// KeepResults retains every query's full result rows in the PerQuery
	// records — the hook the differential harnesses use to compare runs
	// byte for byte. Off by default: result sets can be large.
	KeepResults bool
	// Think, if set, inserts a pause between successive queries.
	Think time.Duration

	stats ClientStats
}

// Stats returns the client's record after the run.
func (c *Client) Stats() *ClientStats { return &c.stats }

// ctxErr reports the client's cancellation state (nil without a Ctx).
func (c *Client) ctxErr() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// statsPruningOn resolves the StatsPruning default.
func (c *Client) statsPruningOn() bool { return c.StatsPruning == nil || *c.StatsPruning }

// proxy is the client proxy daemon (§4.3): it owns the reply channel,
// tags requests with the query id, counts GETs, and records stalls. GETs
// are routed through the fleet's DeviceChooser — one device in the
// classic testbed, per-placement (replica-aware) in a multi-device
// cluster. When a segment cache is configured it sits between the
// engines and the devices: requests are consulted against the cache
// first (hits are delivered immediately at zero device cost) and device
// deliveries are admitted into the cache on the way back, so later
// queries — of this tenant or, with a cluster-shared cache, of any
// tenant — reuse the transferred bytes.
type proxy struct {
	sim    *vtime.Sim
	fl     *DeviceChooser
	tenant int
	stats  *ClientStats
	cache  *segcache.Cache
	reply  *vtime.Chan[csd.Delivery]
	proc   *vtime.Proc
	query  string
	// ctx, when non-nil, is the client's real-time cancellation signal:
	// NextArrival fail-stops the query once it fires, so a canceled or
	// deadline-expired query releases the engine at its next arrival
	// instead of running the workload to completion.
	ctx context.Context
	// pf, when non-nil, is the client's prefetch daemon: demand requests
	// consult its staged deliveries before touching the device, and cache
	// hits on prefetched entries are attributed to it.
	pf *prefetcher
	// tr, when non-nil, receives stall spans from NextArrival. The proxy
	// always runs on its owning proc, so spans carry both clocks.
	tr *trace.QueryTrace
	// retry is the fault-recovery bookkeeping: the active policy plus the
	// per-query attempt counts and budget (reset by beginQuery).
	retry *retryState
	// deferred holds retryable-fault deliveries TryNextArrival set aside:
	// recovery blocks (backoff sleeps on the virtual clock), which the
	// non-blocking path must not do, so NextArrival drains these first.
	deferred []csd.Delivery
}

func newProxy(sim *vtime.Sim, fl *DeviceChooser, tenant int, stats *ClientStats) *proxy {
	return &proxy{
		sim:    sim,
		fl:     fl,
		tenant: tenant,
		stats:  stats,
		reply:  vtime.NewChan[csd.Delivery](sim, fmt.Sprintf("proxy.t%d.reply", tenant), 1<<20),
		retry:  newRetryState(nil),
	}
}

// beginQuery names the query for request tagging and resets the
// per-query retry caps.
func (px *proxy) beginQuery(queryID string) {
	px.query = queryID
	px.retry.beginQuery()
}

// Request implements mjoin.Source: issue tagged GETs for a batch,
// serving cache-resident objects locally. Cache hits are enqueued on the
// reply channel ahead of any device delivery — arrival order is the
// out-of-order engine's input, so this only reorders, never loses, a
// delivery, and the vanilla path requests one object at a time. Misses
// fan out per device: each GET goes to the replica the chooser picks,
// batched per device in first-appearance order so per-device arrival
// order matches the request order.
func (px *proxy) Request(objs []segment.ObjectID) {
	perDev := make(map[int][]*csd.Request)
	var devOrder []int
	for _, id := range objs {
		if px.cache != nil {
			if seg, ok := px.cache.Get(id); ok {
				px.stats.CacheHits++
				if px.pf != nil && px.pf.markUsed(id) {
					px.stats.PrefetchUseful++
				}
				px.reply.Send(px.proc, csd.Delivery{Object: id, Seg: seg})
				continue
			}
		}
		if px.pf != nil {
			if seg, ok := px.pf.takeStaged(id); ok {
				px.stats.PrefetchServed++
				px.stats.PrefetchUseful++
				px.reply.Send(px.proc, csd.Delivery{Object: id, Seg: seg})
				continue
			}
		}
		d := px.fl.Choose(id)
		px.stats.addDeviceGet(d)
		if perDev[d] == nil {
			devOrder = append(devOrder, d)
		}
		perDev[d] = append(perDev[d], &csd.Request{Object: id, QueryID: px.query, Tenant: px.tenant, Reply: px.reply})
	}
	for _, d := range devOrder {
		px.fl.device(d).Submit(px.proc, perDev[d]...)
	}
	px.stats.GetsIssued += len(objs)
}

// NextArrival implements mjoin.Source: block until one object arrives,
// recording the stall and admitting device deliveries into the cache.
// This is also where fault recovery lives: a retryable error delivery or
// a checksum-failed payload triggers backoff and a re-request (see
// retry.go), and the loop keeps receiving — the replacement arrives on
// the same reply channel, possibly after other objects, so callers still
// see exactly one clean arrival per requested object. Deliveries the
// non-blocking path set aside are drained first.
func (px *proxy) NextArrival() (*segment.Segment, error) {
	for {
		if px.ctx != nil {
			if err := px.ctx.Err(); err != nil {
				return nil, fmt.Errorf("tenant %d: query canceled awaiting arrival: %w", px.tenant, err)
			}
		}
		var d csd.Delivery
		if len(px.deferred) > 0 {
			d = px.deferred[0]
			px.deferred = px.deferred[1:]
		} else {
			from := px.proc.Now()
			var wallFrom time.Time
			if px.tr.Enabled() {
				wallFrom = time.Now()
			}
			d = px.reply.Recv(px.proc)
			if to := px.proc.Now(); to > from {
				px.stats.StallIntervals = append(px.stats.StallIntervals, csd.Interval{From: from, To: to})
				if px.tr.Enabled() {
					px.tr.EmitVirt(trace.CatStall, px.query, wallFrom, from, to)
				}
			}
		}
		class, cause := classify(d)
		if class == deliveryFatal && px.canFailover(d) {
			// A permanent device crash is not fatal to the query when a
			// live replica holds the object: recover like a retryable
			// fault, with the retry path failing over to the replica.
			class = deliveryRetryable
		}
		switch class {
		case deliveryOK:
			if px.cache != nil {
				px.cache.Put(d.Object, d.Seg)
			}
			return d.Seg, nil
		case deliveryFatal:
			return nil, cause
		default:
			if err := px.retryDelivery(d, class, cause); err != nil {
				return nil, err
			}
			// Retry in flight; keep receiving.
		}
	}
}

// TryNextArrival implements mjoin.TryArrivalSource: a non-blocking
// NextArrival. An already-enqueued delivery is returned at zero virtual
// cost (and admitted to the cache like any other); otherwise the caller
// keeps working and blocks on NextArrival only when truly out of input —
// which is what keeps the pipelined engine's virtual timing identical to
// the serial path's. A retryable-fault delivery is set aside rather than
// recovered here: recovery backs off on the virtual clock, and this path
// must not block, so the delivery waits in px.deferred for the next
// blocking NextArrival (the engine always falls back to one when out of
// work, so a deferred fault cannot strand the query).
func (px *proxy) TryNextArrival() (*segment.Segment, bool, error) {
	d, ok := px.reply.TryRecv(px.proc)
	if !ok {
		return nil, false, nil
	}
	class, cause := classify(d)
	switch class {
	case deliveryOK:
		if px.cache != nil {
			px.cache.Put(d.Object, d.Seg)
		}
		return d.Seg, true, nil
	case deliveryFatal:
		if px.canFailover(d) {
			// Recoverable via a live replica; like any other recovery it
			// may block, so defer it to the next blocking NextArrival.
			px.deferred = append(px.deferred, d)
			return nil, false, nil
		}
		return nil, false, cause
	default:
		px.deferred = append(px.deferred, d)
		return nil, false, nil
	}
}

// fetchSync is the vanilla path: one GET, wait, charge FUSE overhead.
func (px *proxy) fetchSync(id segment.ObjectID, fuse time.Duration) (*segment.Segment, error) {
	px.Request([]segment.ObjectID{id})
	seg, err := px.NextArrival()
	if err != nil {
		return nil, err
	}
	if fuse > 0 {
		px.proc.Sleep(fuse)
		px.stats.Fuse += fuse
	}
	return seg, nil
}

// chargingClock charges processing time to both the simulation clock and
// the client's accounting.
type chargingClock struct {
	proc  *vtime.Proc
	stats *ClientStats
}

func (c *chargingClock) Sleep(d time.Duration) {
	c.proc.Sleep(d)
	c.stats.Processing += d
}

// vanillaFetcher adapts the proxy to engine.Fetcher.
type vanillaFetcher struct {
	px   *proxy
	fuse time.Duration
}

func (f *vanillaFetcher) Fetch(id segment.ObjectID) (*segment.Segment, error) {
	return f.px.fetchSync(id, f.fuse)
}

// TryFetch implements engine.TryFetcher for the pipelined scan: only
// segments already resident — in the segment cache or staged by the
// prefetcher — are served, with the same accounting and FUSE charge as
// the synchronous path; anything that would touch the device reports
// not-available so the scan falls back to a demand Fetch at exactly the
// point the serial plan would have issued it. Reordering the (virtually
// charged) FUSE sleeps ahead of processing charges leaves the client's
// total virtual time and its device GET instants unchanged.
func (f *vanillaFetcher) TryFetch(id segment.ObjectID) (*segment.Segment, bool, error) {
	px := f.px
	var seg *segment.Segment
	if px.cache != nil {
		if s, ok := px.cache.Get(id); ok {
			px.stats.CacheHits++
			if px.pf != nil && px.pf.markUsed(id) {
				px.stats.PrefetchUseful++
			}
			seg = s
		}
	}
	if seg == nil && px.pf != nil {
		if s, ok := px.pf.takeStaged(id); ok {
			px.stats.PrefetchServed++
			px.stats.PrefetchUseful++
			seg = s
		}
	}
	if seg == nil {
		return nil, false, nil
	}
	px.stats.GetsIssued++
	if f.fuse > 0 {
		px.proc.Sleep(f.fuse)
		px.stats.Fuse += f.fuse
	}
	return seg, true, nil
}
