package skipper

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/csd"
	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/mjoin"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// makeTenantDB builds, for one tenant, two relations a(ak, pay) and
// b(bk, pay) whose keys join one-to-one, split into segsA/segsB segments.
func makeTenantDB(tenant, rowsPer, segsA, segsB int, store map[segment.ObjectID]*segment.Segment) *catalog.Catalog {
	cat := catalog.New(tenant)
	mk := func(name, col string, nsegs int) {
		sch := tuple.NewSchema(
			tuple.Column{Name: col, Kind: tuple.KindInt64},
			tuple.Column{Name: col + "_pay", Kind: tuple.KindString},
		)
		n := rowsPer * nsegs
		rows := make([]tuple.Row, n)
		for i := range rows {
			rows[i] = tuple.Row{tuple.Int(int64(i)), tuple.Str(fmt.Sprintf("%s-%d", name, i))}
		}
		segs := segment.Split(tenant, name, rows, rowsPer, 1e9)
		for _, sg := range segs {
			store[sg.ID] = sg
		}
		cat.MustAddTable(name, sch, segs)
	}
	mk("a", "ak", segsA)
	mk("b", "bk", segsB)
	return cat
}

func joinQuery(cat *catalog.Catalog) *mjoin.Query {
	return &mjoin.Query{
		ID: "j",
		Relations: []mjoin.Relation{
			{Table: cat.MustTable("a")},
			{Table: cat.MustTable("b")},
		},
		Joins: []mjoin.JoinCond{{Rel: 1, LeftCol: "ak", RightCol: "bk"}},
	}
}

// buildCluster creates n clients in the given mode over per-tenant
// replicas of the same dataset.
func buildCluster(n int, mode Mode, cache int) *Cluster {
	store := make(map[segment.ObjectID]*segment.Segment)
	clients := make([]*Client, n)
	for t := 0; t < n; t++ {
		cat := makeTenantDB(t, 10, 3, 3, store)
		clients[t] = &Client{
			Tenant:       t,
			Mode:         mode,
			Catalog:      cat,
			CacheObjects: cache,
			Queries:      []QuerySpec{{Name: "q", Join: joinQuery(cat)}},
		}
	}
	return &Cluster{Clients: clients, Store: store}
}

func TestVanillaAndSkipperSameResults(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeSkipper} {
		cl := buildCluster(2, mode, 6)
		res, err := cl.Run()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for _, cs := range res.Clients {
			// one-to-one join over 30 keys
			if cs.Rows != 30 {
				t.Fatalf("%v tenant %d: %d rows, want 30", mode, cs.Tenant, cs.Rows)
			}
		}
	}
}

func TestSkipperScalesBetterThanVanilla(t *testing.T) {
	// With 3 clients on one-group-per-client, the vanilla pull pattern
	// pays a switch per object; Skipper batches per group.
	van, err := buildCluster(3, ModeVanilla, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	skp, err := buildCluster(3, ModeSkipper, 6).Run()
	if err != nil {
		t.Fatal(err)
	}
	if skp.CSD.GroupSwitches >= van.CSD.GroupSwitches {
		t.Fatalf("skipper switches %d >= vanilla %d", skp.CSD.GroupSwitches, van.CSD.GroupSwitches)
	}
	// Skipper needs exactly clients-1 switches... plus none for the first.
	if skp.CSD.GroupSwitches != 2 {
		t.Fatalf("skipper switches = %d, want 2", skp.CSD.GroupSwitches)
	}
	var vanAvg, skpAvg time.Duration
	for i := range van.Clients {
		vanAvg += van.Clients[i].Elapsed()
		skpAvg += skp.Clients[i].Elapsed()
	}
	if skpAvg >= vanAvg {
		t.Fatalf("skipper cumulative %v >= vanilla %v", skpAvg, vanAvg)
	}
}

func TestVanillaSwitchCountMatchesModel(t *testing.T) {
	// C clients, D objects each, one group per client, pull execution:
	// the paper's model says every object access alternates groups, so
	// switches ≈ C·D.
	const C, D = 3, 6 // 3+3 segments per tenant
	res, err := buildCluster(C, ModeVanilla, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := C * D
	got := res.CSD.GroupSwitches
	if got < want-C || got > want {
		t.Fatalf("switches = %d, want ≈ %d", got, want)
	}
}

func TestIdealLayoutHasNoSwitches(t *testing.T) {
	cl := buildCluster(3, ModeVanilla, 0)
	cl.Layout = layout.AllInOne{}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CSD.GroupSwitches != 0 {
		t.Fatalf("switches = %d on all-in-one layout", res.CSD.GroupSwitches)
	}
}

func TestProcessingAndFuseAccounting(t *testing.T) {
	cl := buildCluster(1, ModeVanilla, 0)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Clients[0]
	costs := DefaultCosts()
	// 6 objects scanned once each.
	if want := 6 * costs.VanillaPerObject; cs.Processing != want {
		t.Fatalf("processing %v, want %v", cs.Processing, want)
	}
	if want := 6 * costs.FusePerObject; cs.Fuse != want {
		t.Fatalf("fuse %v, want %v", cs.Fuse, want)
	}
	if cs.GetsIssued != 6 {
		t.Fatalf("gets %d", cs.GetsIssued)
	}
}

func TestSkipperProcessingAccounting(t *testing.T) {
	cl := buildCluster(1, ModeSkipper, 6)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Clients[0]
	costs := DefaultCosts()
	if want := 6 * costs.MJoinPerObject; cs.Processing != want {
		t.Fatalf("processing %v, want %v", cs.Processing, want)
	}
	if cs.Fuse != 0 {
		t.Fatalf("fuse %v on skipper path", cs.Fuse)
	}
	if cs.MJoin.Requests != 6 || cs.MJoin.Cycles != 1 {
		t.Fatalf("mjoin stats %+v", cs.MJoin)
	}
}

func TestSkipperSmallCacheReissuesOnCluster(t *testing.T) {
	cl := buildCluster(1, ModeSkipper, 2)
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Clients[0]
	if cs.GetsIssued <= 6 {
		t.Fatalf("gets = %d, expected reissues", cs.GetsIssued)
	}
	if cs.Rows != 30 {
		t.Fatalf("rows = %d, want 30 despite cache pressure", cs.Rows)
	}
}

func TestShapeStageApplies(t *testing.T) {
	store := make(map[segment.ObjectID]*segment.Segment)
	cat := makeTenantDB(0, 10, 2, 2, store)
	shape := func(in engine.Iterator) engine.Iterator {
		return engine.NewHashAgg(in, nil, []engine.AggSpec{{Kind: engine.AggCount, Name: "n"}})
	}
	for _, mode := range []Mode{ModeVanilla, ModeSkipper} {
		c := &Client{
			Tenant: 0, Mode: mode, Catalog: cat, CacheObjects: 4,
			Queries: []QuerySpec{{Name: "agg", Join: joinQuery(cat), Shape: shape}},
		}
		cl := &Cluster{Clients: []*Client{c}, Store: store}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Clients[0].Rows != 1 {
			t.Fatalf("%v: shaped rows = %d, want 1", mode, res.Clients[0].Rows)
		}
	}
}

func TestMultipleQueriesSequential(t *testing.T) {
	store := make(map[segment.ObjectID]*segment.Segment)
	cat := makeTenantDB(0, 10, 2, 2, store)
	c := &Client{
		Tenant: 0, Mode: ModeSkipper, Catalog: cat, CacheObjects: 4,
		Think: 5 * time.Second,
		Queries: []QuerySpec{
			{Name: "q1", Join: joinQuery(cat)},
			{Name: "q2", Join: joinQuery(cat)},
		},
	}
	cl := &Cluster{Clients: []*Client{c}, Store: store}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Clients[0]
	if len(cs.PerQuery) != 2 {
		t.Fatalf("per-query records %d", len(cs.PerQuery))
	}
	if cs.PerQuery[1].Start < cs.PerQuery[0].Finish+5*time.Second {
		t.Fatalf("think time not applied: %+v", cs.PerQuery)
	}
	if cs.PerQuery[0].QueryID == cs.PerQuery[1].QueryID {
		t.Fatal("query ids not unique")
	}
}

func TestStallIntervalsRecorded(t *testing.T) {
	res, err := buildCluster(1, ModeVanilla, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Clients[0]
	if len(cs.StallIntervals) == 0 {
		t.Fatal("no stalls recorded")
	}
	// Stalls must be disjoint and ordered.
	ivs := append([]csd.Interval(nil), cs.StallIntervals...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].From < ivs[j].From })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].From < ivs[i-1].To {
			t.Fatalf("overlapping stalls %v %v", ivs[i-1], ivs[i])
		}
	}
	// Total = processing + fuse + stalls for a single vanilla client.
	total := cs.Elapsed()
	if got := cs.Processing + cs.Fuse + cs.Stalled(); got != total {
		t.Fatalf("accounting gap: parts %v != total %v", got, total)
	}
}

func TestSkipperLatencyInsensitivity(t *testing.T) {
	// Figure 10's claim: Skipper's makespan barely moves as the group
	// switch latency grows, while vanilla's explodes. The claim holds
	// when transfers dominate switches (D/B >> S), so use a dataset
	// large enough for that regime.
	run := func(mode Mode, s time.Duration) time.Duration {
		store := make(map[segment.ObjectID]*segment.Segment)
		clients := make([]*Client, 3)
		for tn := 0; tn < 3; tn++ {
			cat := makeTenantDB(tn, 10, 12, 12, store)
			clients[tn] = &Client{
				Tenant: tn, Mode: mode, Catalog: cat, CacheObjects: 24,
				Queries: []QuerySpec{{Name: "q", Join: joinQuery(cat)}},
			}
		}
		cl := &Cluster{Clients: clients, Store: store}
		cfg := csd.DefaultConfig()
		cfg.GroupSwitch = s
		cl.CSD = cfg
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		var sum time.Duration
		for _, cs := range res.Clients {
			sum += cs.Elapsed()
		}
		return sum
	}
	van10, van40 := run(ModeVanilla, 10*time.Second), run(ModeVanilla, 40*time.Second)
	skp10, skp40 := run(ModeSkipper, 10*time.Second), run(ModeSkipper, 40*time.Second)
	vanGrowth := float64(van40) / float64(van10)
	skpGrowth := float64(skp40) / float64(skp10)
	if vanGrowth < 1.5 {
		t.Fatalf("vanilla growth %.2f, expected sensitivity to S", vanGrowth)
	}
	if skpGrowth > 1.2 {
		t.Fatalf("skipper growth %.2f, expected insensitivity to S", skpGrowth)
	}
}
