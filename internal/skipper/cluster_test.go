package skipper

import (
	"strings"
	"testing"

	"repro/internal/csd"
	"repro/internal/mjoin"
	"repro/internal/segment"
)

func TestClusterRequiresClients(t *testing.T) {
	cl := &Cluster{Store: map[segment.ObjectID]*segment.Segment{}}
	if _, err := cl.Run(); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestClusterPropagatesPlanErrors(t *testing.T) {
	store := make(map[segment.ObjectID]*segment.Segment)
	cat := makeTenantDB(0, 5, 2, 2, store)
	badQuery := &mjoin.Query{
		ID:        "bad",
		Relations: []mjoin.Relation{{Table: cat.MustTable("a")}, {Table: cat.MustTable("b")}},
		Joins:     []mjoin.JoinCond{{Rel: 1, LeftCol: "nope", RightCol: "bk"}},
	}
	for _, mode := range []Mode{ModeVanilla, ModeSkipper} {
		c := &Client{Tenant: 0, Mode: mode, Catalog: cat, CacheObjects: 4,
			Queries: []QuerySpec{{Name: "bad", Join: badQuery}}}
		cl := &Cluster{Clients: []*Client{c}, Store: store}
		_, err := cl.Run()
		if err == nil {
			t.Fatalf("%v: bad join column accepted", mode)
		}
		if !strings.Contains(err.Error(), "nope") {
			t.Fatalf("%v: unhelpful error %v", mode, err)
		}
	}
}

func TestClusterUnknownModeFails(t *testing.T) {
	store := make(map[segment.ObjectID]*segment.Segment)
	cat := makeTenantDB(0, 5, 2, 2, store)
	c := &Client{Tenant: 0, Mode: Mode(99), Catalog: cat,
		Queries: []QuerySpec{{Name: "q", Join: joinQuery(cat)}}}
	if _, err := (&Cluster{Clients: []*Client{c}, Store: store}).Run(); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestClientWithNoQueriesFinishesImmediately(t *testing.T) {
	store := make(map[segment.ObjectID]*segment.Segment)
	cat := makeTenantDB(0, 5, 2, 2, store)
	c := &Client{Tenant: 0, Mode: ModeSkipper, Catalog: cat}
	res, err := (&Cluster{Clients: []*Client{c}, Store: store}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients[0].Elapsed() != 0 || res.Makespan != 0 {
		t.Fatalf("idle client took %v", res.Clients[0].Elapsed())
	}
}

// TestClusterDeterminism: identical inputs produce bit-identical timing
// and statistics (the vtime kernel's core guarantee, end to end).
func TestClusterDeterminism(t *testing.T) {
	run := func() *RunResult {
		res, err := buildCluster(3, ModeSkipper, 5).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.CSD.GroupSwitches != b.CSD.GroupSwitches || a.CSD.GetsReceived != b.CSD.GetsReceived {
		t.Fatalf("CSD stats differ: %+v vs %+v", a.CSD, b.CSD)
	}
	for i := range a.Clients {
		if a.Clients[i].Elapsed() != b.Clients[i].Elapsed() {
			t.Fatalf("client %d elapsed differs", i)
		}
		if a.Clients[i].Processing != b.Clients[i].Processing {
			t.Fatalf("client %d processing differs", i)
		}
	}
}

// TestConservationLaws: what clients request equals what the device
// receives and serves; bytes served match object sizes.
func TestConservationLaws(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeSkipper} {
		res, err := buildCluster(3, mode, 4).Run()
		if err != nil {
			t.Fatal(err)
		}
		gets := 0
		for _, cs := range res.Clients {
			gets += cs.GetsIssued
		}
		if res.CSD.GetsReceived != gets {
			t.Fatalf("%v: device saw %d GETs, clients issued %d", mode, res.CSD.GetsReceived, gets)
		}
		if res.CSD.ObjectsServed != gets {
			t.Fatalf("%v: served %d != requested %d", mode, res.CSD.ObjectsServed, gets)
		}
		if res.CSD.BytesServed != int64(gets)*1e9 {
			t.Fatalf("%v: bytes %d", mode, res.CSD.BytesServed)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeVanilla.String() != "vanilla" || ModeSkipper.String() != "skipper" {
		t.Fatal("mode names")
	}
}

func TestEnergyIntegration(t *testing.T) {
	// Vanilla's pull pattern burns far more switch events, so under the
	// Pelican power model it consumes more switch-surge energy for the
	// same workload.
	pm := csd.PelicanPower()
	energies := map[Mode]float64{}
	for _, mode := range []Mode{ModeVanilla, ModeSkipper} {
		cl := buildCluster(3, mode, 6)
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		energies[mode] = pm.Energy(res.CSD, res.Makespan)
	}
	if energies[ModeSkipper] >= energies[ModeVanilla] {
		t.Fatalf("skipper energy %.0f J >= vanilla %.0f J", energies[ModeSkipper], energies[ModeVanilla])
	}
}

func TestCustomEvictionPolicyOnCluster(t *testing.T) {
	store := make(map[segment.ObjectID]*segment.Segment)
	cat := makeTenantDB(0, 10, 4, 4, store)
	for _, pol := range []mjoin.EvictionPolicy{mjoin.MaxProgress{}, mjoin.MaxPending{}, mjoin.LRU{}} {
		st := make(map[segment.ObjectID]*segment.Segment)
		for k, v := range store {
			st[k] = v
		}
		c := &Client{Tenant: 0, Mode: ModeSkipper, Catalog: cat, CacheObjects: 2,
			Policy:  pol,
			Queries: []QuerySpec{{Name: "q", Join: joinQuery(cat)}}}
		res, err := (&Cluster{Clients: []*Client{c}, Store: st}).Run()
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Clients[0].Rows != 40 {
			t.Fatalf("%s: rows %d", pol.Name(), res.Clients[0].Rows)
		}
	}
}

func TestThinkTimeZeroHasNoGap(t *testing.T) {
	store := make(map[segment.ObjectID]*segment.Segment)
	cat := makeTenantDB(0, 5, 2, 2, store)
	c := &Client{Tenant: 0, Mode: ModeSkipper, Catalog: cat, CacheObjects: 4,
		Queries: []QuerySpec{
			{Name: "q1", Join: joinQuery(cat)},
			{Name: "q2", Join: joinQuery(cat)},
		}}
	res, err := (&Cluster{Clients: []*Client{c}, Store: store}).Run()
	if err != nil {
		t.Fatal(err)
	}
	pq := res.Clients[0].PerQuery
	if pq[1].Start != pq[0].Finish {
		t.Fatalf("gap between queries: %v -> %v", pq[0].Finish, pq[1].Start)
	}
}
