package skipper

import (
	"repro/internal/csd"
	"repro/internal/layout"
	"repro/internal/segment"
)

// This file is the fleet layer of the scale-out refactor: a cluster may
// run N devices instead of one, with the layout's Placement saying
// which device(s) hold each object. The DeviceChooser extends the
// single device's LoadedGroup/PredictNextGroup advisory views across
// the fleet — for a replicated object it picks the source whose loaded
// (or predicted-next) group already covers the request, and when a
// device crashes it finds the live replica the retry path fails over
// to. All methods run on simulated processes of one cooperative vtime
// kernel, so the advisory reads need no locking; like the underlying
// device views, they are exact at the instant of the call and stale
// after the caller's next yield.

// DeviceChooser routes object requests across the cluster's devices.
type DeviceChooser struct {
	devs  []*csd.CSD
	place *layout.Placement
}

func newDeviceChooser(devs []*csd.CSD, place *layout.Placement) *DeviceChooser {
	return &DeviceChooser{devs: devs, place: place}
}

// numDevices returns the fleet size.
func (dc *DeviceChooser) numDevices() int { return len(dc.devs) }

// device returns the device with the given id.
func (dc *DeviceChooser) device(d int) *csd.CSD { return dc.devs[d] }

// live reports whether device d can currently accept work: not
// fail-stopped and not inside a crash window.
func (dc *DeviceChooser) live(d int) bool {
	return dc.devs[d].Err() == nil && !dc.devs[d].Down()
}

// groupOf returns the object's disk group (global ids — identical on
// every device holding it), or -1 for an unplaced object.
func (dc *DeviceChooser) groupOf(id segment.ObjectID) int {
	devs := dc.place.DevicesFor(id)
	if len(devs) == 0 {
		return -1
	}
	a, err := dc.place.DeviceAssignment(devs[0])
	if err != nil {
		return -1
	}
	g, err := a.GroupOf(id)
	if err != nil {
		return -1
	}
	return g
}

// Choose picks the device that should serve a GET for the object. For
// an unreplicated object there is no choice; for a replicated one the
// chooser prefers, in order: a live replica whose loaded group covers
// the object (served without a group switch), a live replica whose
// scheduler predicts the object's group next, the first live replica in
// placement order (primary first), and finally the primary even when it
// is down — the request then fails with a DeviceDownError and the retry
// path owns recovery, exactly like the single-device contract.
func (dc *DeviceChooser) Choose(id segment.ObjectID) int {
	devs := dc.place.DevicesFor(id)
	if len(devs) == 0 {
		// Unplaced objects keep the historical behaviour: the primary
		// device's store lookup fails loudly.
		return 0
	}
	if len(devs) == 1 {
		return devs[0]
	}
	g := dc.groupOf(id)
	for _, d := range devs {
		if dc.live(d) && dc.devs[d].LoadedGroup() == g {
			return d
		}
	}
	for _, d := range devs {
		if !dc.live(d) {
			continue
		}
		if next, ok := dc.devs[d].PredictNextGroup(); ok && next == g {
			return d
		}
	}
	for _, d := range devs {
		if dc.live(d) {
			return d
		}
	}
	return devs[0]
}

// Failover returns a live replica of the object other than the failed
// device, if the placement holds one — the target the retry path
// re-requests from instead of re-retrying a crashed device.
func (dc *DeviceChooser) Failover(id segment.ObjectID, failed int) (int, bool) {
	for _, d := range dc.place.DevicesFor(id) {
		if d != failed && dc.live(d) {
			return d, true
		}
	}
	return -1, false
}

// affinity scores how cheaply the fleet can serve the object right now:
// 2 when a live replica has its group loaded, 1 when one predicts it
// next, 0 otherwise. The prefetcher uses it to order candidates.
func (dc *DeviceChooser) affinity(id segment.ObjectID) int {
	g := dc.groupOf(id)
	if g < 0 {
		return 0
	}
	score := 0
	for _, d := range dc.place.DevicesFor(id) {
		if !dc.live(d) {
			continue
		}
		if dc.devs[d].LoadedGroup() == g {
			return 2
		}
		if next, ok := dc.devs[d].PredictNextGroup(); ok && next == g {
			score = 1
		}
	}
	return score
}
