package skipper

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/csd"
	"repro/internal/segment"
	"repro/internal/trace"
)

// This file is the client proxy's recovery layer: the retry policy that
// turns the device's retryable faults — transient GET failures, crash
// windows with a scheduled restart, checksum-failed payloads — into
// re-requests with bounded exponential backoff, instead of fail-stopping
// the query. Non-retryable faults (scheduler contract violations,
// permanent crashes) still surface immediately; a retryable fault only
// surfaces once the policy's attempt cap or per-query budget is spent,
// wrapped in a RetryExhaustedError so callers can tell "the device was
// having a bad day" from "the query was wrong".

// RetryPolicy bounds the proxy's recovery behaviour. The zero value is
// not meaningful; use DefaultRetryPolicy as the base and override
// fields. A nil policy on a Client resolves to DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxAttempts caps transfers of one object within one query — the
	// initial request plus retries. Must be >= 1.
	MaxAttempts int
	// BaseBackoff is the virtual-clock delay before the first retry;
	// each further retry doubles it up to MaxBackoff. The delay runs on
	// the simulated clock — the domain the device's faults live in — and
	// traced queries record each wait as a retry span carrying both
	// clocks.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Budget caps total retries across all objects of one query, the
	// retry-storm brake: a device failing everything exhausts the budget
	// after Budget re-requests instead of multiplying every object's
	// attempts. 0 means the budget equals MaxAttempts (minimal but
	// functional); negative means unlimited.
	Budget int
	// JitterSeed keys the deterministic jitter. Two runs with the same
	// policy, workload and fault plan back off identically — required
	// for the replayable chaos differential.
	JitterSeed int64
}

// DefaultRetryPolicy is the stock recovery setting: a dozen attempts
// per object, quarter-second base backoff growing to eight seconds, and
// a per-query budget of 64 retries.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: 12,
		BaseBackoff: 250 * time.Millisecond,
		MaxBackoff:  8 * time.Second,
		Budget:      64,
	}
}

// validate panics on a malformed policy — a config error, not a runtime
// condition.
func (rp *RetryPolicy) validate() {
	if rp.MaxAttempts < 1 {
		panic(fmt.Sprintf("skipper: retry policy MaxAttempts %d < 1", rp.MaxAttempts))
	}
	if rp.BaseBackoff < 0 || rp.MaxBackoff < 0 {
		panic("skipper: negative retry backoff")
	}
}

// backoff returns the delay before retry number `retry` (1-based) of
// the object: exponential growth capped at MaxBackoff, scaled by a
// deterministic jitter in [0.5, 1.0) keyed on (seed, object, retry).
// Jitter decorrelates the retry instants of different objects — without
// it, every object failed by one crash retries in lockstep — while
// keeping replays exact.
func (rp *RetryPolicy) backoff(obj segment.ObjectID, retry int) time.Duration {
	if rp.BaseBackoff == 0 {
		return 0
	}
	d := rp.BaseBackoff << (retry - 1)
	if shift := retry - 1; shift > 30 || d > rp.MaxBackoff || d < 0 {
		d = rp.MaxBackoff
	}
	frac := jitter(rp.JitterSeed, obj.String(), retry) // [0, 1)
	return d/2 + time.Duration(float64(d/2)*frac)
}

// jitter maps (seed, object, retry) to [0, 1) with an FNV-1a/splitmix64
// hash — the same construction the fault injector uses, independently
// salted by its inputs.
func jitter(seed int64, object string, retry int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(seed))
	for i := 0; i < len(object); i++ {
		h ^= uint64(object[i])
		h *= prime64
	}
	mix(uint64(retry))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// RetryExhaustedError reports an object whose retryable faults outlived
// the policy: the attempt cap or the per-query budget ran out. Last is
// the final fault observed; errors.Is/As reach through it.
type RetryExhaustedError struct {
	Object segment.ObjectID
	// Attempts is how many transfers were tried for the object.
	Attempts int
	// BudgetSpent reports whether the per-query retry budget (rather
	// than the per-object attempt cap) ended the retries.
	BudgetSpent bool
	// Last is the fault the final attempt observed.
	Last error
}

func (e *RetryExhaustedError) Error() string {
	cause := "attempt cap"
	if e.BudgetSpent {
		cause = "query retry budget"
	}
	return fmt.Sprintf("skipper: retries exhausted for %v after %d attempts (%s): %v", e.Object, e.Attempts, cause, e.Last)
}

func (e *RetryExhaustedError) Unwrap() error { return e.Last }

// RetriesExhausted marks the error as final for csd.IsRetryable: the
// chain still unwraps to the underlying fault (errors.As keeps
// working), but nothing upstream should retry it again.
func (e *RetryExhaustedError) RetriesExhausted() {}

// retryState is the proxy's per-query recovery bookkeeping.
type retryState struct {
	policy *RetryPolicy
	// attempts counts transfers per object this query (first request
	// included).
	attempts map[segment.ObjectID]int
	// spent counts retries charged against the query budget.
	spent int
}

func newRetryState(policy *RetryPolicy) *retryState {
	if policy == nil {
		policy = DefaultRetryPolicy()
	}
	policy.validate()
	return &retryState{policy: policy, attempts: make(map[segment.ObjectID]int)}
}

// beginQuery resets the per-query caps.
func (rs *retryState) beginQuery() {
	rs.attempts = make(map[segment.ObjectID]int)
	rs.spent = 0
}

// budgetLeft reports whether the query may charge another retry.
func (rs *retryState) budgetLeft() bool {
	b := rs.policy.Budget
	if b < 0 {
		return true
	}
	if b == 0 {
		b = rs.policy.MaxAttempts
	}
	return rs.spent < b
}

// classifyDelivery decides what the proxy does with one delivery.
type deliveryClass uint8

const (
	deliveryOK deliveryClass = iota
	deliveryRetryable
	deliveryCorrupt
	deliveryFatal
)

// classify inspects a delivery: an error delivery is retryable or
// fatal per csd.IsRetryable; a data delivery that fails its checksum is
// corrupt (retryable — the object in the store is intact, only the
// transfer was damaged).
func classify(d csd.Delivery) (deliveryClass, error) {
	if d.Err != nil {
		if csd.IsRetryable(d.Err) {
			return deliveryRetryable, d.Err
		}
		return deliveryFatal, d.Err
	}
	if err := d.Seg.VerifyChecksum(); err != nil {
		return deliveryCorrupt, err
	}
	return deliveryOK, nil
}

// canFailover reports whether a fatal delivery is recoverable through
// the fleet: the cause is a device-down error (a permanent crash, since
// restart windows classify as retryable) and the placement holds a live
// replica of the object on another device. NextArrival reclassifies
// such a delivery as retryable and retryDelivery fails over.
func (px *proxy) canFailover(d csd.Delivery) bool {
	var dde *csd.DeviceDownError
	if !errors.As(d.Err, &dde) {
		return false
	}
	_, ok := px.fl.Failover(d.Object, d.Device)
	return ok
}

// retryDelivery handles one faulty-but-recoverable delivery on the
// demand path: quarantine a corrupt payload out of the cache, back off
// on the virtual clock (cancellation-aware), and re-issue the GET. The
// replacement delivery arrives on the reply channel like any other.
// A device-down fault on an object with a live replica elsewhere fails
// over instead: the GET is re-issued to the replica immediately, with
// no backoff — the pacing that protects a recovering device would only
// delay a healthy one. Returns the error to surface when the policy is
// spent or the context fired; nil means the retry is in flight.
func (px *proxy) retryDelivery(d csd.Delivery, class deliveryClass, cause error) error {
	rs := px.retry
	obj := d.Object
	if class == deliveryCorrupt {
		px.stats.CorruptDeliveries++
		if px.cache != nil {
			// The corrupt payload was never admitted (verification runs
			// before Put), but an earlier clean copy under the same id is
			// now suspect too: quarantine the key entirely.
			px.cache.Invalidate(obj)
		}
	} else if csd.IsRetryable(cause) {
		px.stats.TransientFaults++
	}
	target, failingOver := -1, false
	var dde *csd.DeviceDownError
	if errors.As(cause, &dde) {
		if t, ok := px.fl.Failover(obj, d.Device); ok {
			target, failingOver = t, true
		}
	}
	attempts := rs.attempts[obj]
	if attempts == 0 {
		attempts = 1 // the delivery being handled was attempt one
	}
	if attempts >= rs.policy.MaxAttempts {
		return &RetryExhaustedError{Object: obj, Attempts: attempts, Last: cause}
	}
	if !rs.budgetLeft() {
		return &RetryExhaustedError{Object: obj, Attempts: attempts, BudgetSpent: true, Last: cause}
	}
	if err := px.ctxDone(); err != nil {
		return err
	}
	var delay time.Duration
	if !failingOver {
		delay = rs.policy.backoff(obj, attempts)
	}
	var wallFrom time.Time
	virtFrom := px.proc.Now()
	if px.tr.Enabled() {
		wallFrom = time.Now()
	}
	if delay > 0 {
		px.proc.Sleep(delay)
		px.stats.RetryBackoff += delay
	}
	// A context that fired mid-backoff wins over the retry: the query is
	// being torn down, do not re-request on its behalf.
	if err := px.ctxDone(); err != nil {
		return err
	}
	rs.attempts[obj] = attempts + 1
	rs.spent++
	px.stats.Retries++
	px.stats.GetsIssued++ // the re-request is a real GET: conservation holds
	if failingOver {
		px.stats.Failovers++
		if px.tr.Enabled() {
			px.tr.EmitVirtDev(trace.CatRetry, fmt.Sprintf("%v failover d%d->d%d", obj, d.Device, target), wallFrom, virtFrom, px.proc.Now(), target)
		}
	} else {
		target = px.fl.Choose(obj)
		if px.tr.Enabled() {
			px.tr.EmitVirtDev(trace.CatRetry, fmt.Sprintf("%v attempt %d", obj, attempts+1), wallFrom, virtFrom, px.proc.Now(), target)
		}
	}
	px.stats.addDeviceGet(target)
	px.fl.device(target).Submit(px.proc, &csd.Request{Object: obj, QueryID: px.query, Tenant: px.tenant, Reply: px.reply})
	return nil
}

// ctxDone adapts the client context into the proxy's error shape.
func (px *proxy) ctxDone() error {
	if px.ctx == nil {
		return nil
	}
	if err := px.ctx.Err(); err != nil {
		return fmt.Errorf("tenant %d: query canceled during fault recovery: %w", px.tenant, err)
	}
	return nil
}

// IsFaultError reports whether an error came from the fault/recovery
// machinery — an exhausted retry, a device crash, a transient failure
// or a corrupt payload — as opposed to a planning or execution bug. The
// serving layer maps these to the exec error class with fault context.
func IsFaultError(err error) bool {
	var re *RetryExhaustedError
	if errors.As(err, &re) {
		return true
	}
	var de *csd.DeviceDownError
	if errors.As(err, &de) {
		return true
	}
	var te *csd.TransientError
	if errors.As(err, &te) {
		return true
	}
	return errors.Is(err, segment.ErrCorrupt)
}
