package faults

import (
	"fmt"
	"testing"
	"time"
)

// A zero plan must never inject.
func TestZeroPlanInjectsNothing(t *testing.T) {
	in := MustNew(Plan{})
	for i := 0; i < 1000; i++ {
		out := in.Transfer(fmt.Sprintf("t0/table/%04d", i%7))
		if out.Fail || out.Corrupt || out.Stall != 0 {
			t.Fatalf("zero plan injected %+v on transfer %d", out, i)
		}
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("zero plan counted faults: %+v", st)
	}
}

// Two injectors with the same plan must make identical decisions for the
// same (object, attempt) sequence — the replay property every
// differential gate relies on.
func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 42, TransientRate: 0.3, StallRate: 0.2, Stall: 5 * time.Millisecond, CorruptRate: 0.1}
	a, b := MustNew(plan), MustNew(plan)
	for i := 0; i < 500; i++ {
		obj := fmt.Sprintf("t%d/lineitem/%04d", i%3, i%11)
		oa, ob := a.Transfer(obj), b.Transfer(obj)
		if oa != ob {
			t.Fatalf("transfer %d of %s diverged: %+v vs %+v", i, obj, oa, ob)
		}
	}
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
}

// Decisions are per-object: interleaving transfers of other objects must
// not shift an object's own fault schedule.
func TestInterleavingIndependence(t *testing.T) {
	plan := Plan{Seed: 7, TransientRate: 0.5, CorruptRate: 0.2}
	solo := MustNew(plan)
	mixed := MustNew(plan)
	var soloOut, mixedOut []Outcome
	for i := 0; i < 40; i++ {
		soloOut = append(soloOut, solo.Transfer("t0/orders/0001"))
	}
	for i := 0; i < 40; i++ {
		mixed.Transfer(fmt.Sprintf("t0/noise/%04d", i))
		mixedOut = append(mixedOut, mixed.Transfer("t0/orders/0001"))
		mixed.Transfer("t1/noise/0000")
	}
	for i := range soloOut {
		if soloOut[i] != mixedOut[i] {
			t.Fatalf("attempt %d shifted under interleaving: %+v vs %+v", i, soloOut[i], mixedOut[i])
		}
	}
}

// The per-object cap bounds transient+corrupt injections so bounded
// retries always converge, even at rate 1.0.
func TestFaultCapConverges(t *testing.T) {
	in := MustNew(Plan{Seed: 1, TransientRate: 1.0, MaxFaultsPerObject: 2})
	fails := 0
	for i := 0; i < 10; i++ {
		if in.Transfer("t0/part/0000").Fail {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("cap 2 allowed %d failures", fails)
	}
	// Other objects have their own budgets.
	if !in.Transfer("t0/part/0001").Fail {
		t.Fatalf("fresh object should still fault at rate 1.0")
	}
}

// Negative cap means unlimited — the exhaustion-path testing knob.
func TestUnlimitedFaults(t *testing.T) {
	in := MustNew(Plan{Seed: 1, TransientRate: 1.0, MaxFaultsPerObject: -1})
	for i := 0; i < 50; i++ {
		if !in.Transfer("t0/part/0000").Fail {
			t.Fatalf("unlimited plan stopped failing at attempt %d", i)
		}
	}
}

// Injection rates should land near the configured probability (loose
// bounds — this guards against degenerate hashing, not statistics).
func TestRatesRoughlyHold(t *testing.T) {
	const n = 5000
	in := MustNew(Plan{Seed: 99, TransientRate: 0.25, MaxFaultsPerObject: -1})
	fails := 0
	for i := 0; i < n; i++ {
		if in.Transfer(fmt.Sprintf("obj/%06d", i)).Fail {
			fails++
		}
	}
	frac := float64(fails) / n
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("transient rate 0.25 measured %.3f over %d transfers", frac, n)
	}
}

// Raising the stall rate must not shift which transfers fail: the roll
// streams are salted apart.
func TestIndependentStreams(t *testing.T) {
	base := MustNew(Plan{Seed: 5, TransientRate: 0.3, MaxFaultsPerObject: -1})
	noisy := MustNew(Plan{Seed: 5, TransientRate: 0.3, StallRate: 0.9, Stall: time.Millisecond, MaxFaultsPerObject: -1})
	for i := 0; i < 300; i++ {
		obj := fmt.Sprintf("obj/%04d", i)
		if base.Transfer(obj).Fail != noisy.Transfer(obj).Fail {
			t.Fatalf("stall stream perturbed the transient stream at %s", obj)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{TransientRate: -0.1},
		{TransientRate: 1.5},
		{StallRate: 0.5},              // stall rate without duration
		{Stall: -time.Second},         // negative stall
		{CrashAt: -time.Second},       // negative crash time
		{CrashDowntime: -time.Second}, // negative downtime
		{CorruptRate: 2},              // over 1
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v) validated", i, p)
		}
	}
	good := Plan{Seed: 3, TransientRate: 0.1, StallRate: 0.1, Stall: time.Millisecond, CorruptRate: 0.1, CrashAt: time.Second, CrashDowntime: time.Second}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if !good.Enabled() {
		t.Errorf("plan with rates not Enabled")
	}
	if (Plan{}).Enabled() {
		t.Errorf("zero plan Enabled")
	}
}
