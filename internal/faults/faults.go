// Package faults is the deterministic fault-injection plan for the cold
// storage device emulator. A Plan describes what can go wrong — transient
// GET failures, stalled transfers, bit-flipped payloads, a whole-device
// crash window — and an Injector turns the plan into per-transfer
// decisions. Every decision is a pure function of (seed, object id,
// attempt number), so a faulty run replays exactly under the virtual
// clock: the same seed yields the same faults in the same places, no
// matter how requests interleave. That determinism is what makes the
// chaos differential gate possible — a transient-only plan must produce
// byte-identical query results to the clean run, because every injected
// failure is retried to completion.
package faults

import (
	"fmt"
	"sync"
	"time"
)

// DefaultMaxFaultsPerObject bounds how many times one object's transfers
// may be failed or corrupted when the plan does not say. The bound keeps
// any bounded-attempt retry policy convergent: an object can be unlucky,
// but not unlucky forever.
const DefaultMaxFaultsPerObject = 3

// Plan is one device's fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed keys every per-transfer decision. Two injectors with the same
	// plan make identical decisions.
	Seed int64
	// TransientRate is the probability a transfer fails with a retryable
	// TransientError after consuming its transfer time, in [0, 1].
	TransientRate float64
	// StallRate is the probability a transfer stalls for Stall extra
	// virtual time before completing, in [0, 1]. Stalls deliver correct
	// data; they model the latency spikes of a disk group spinning up
	// under contention.
	StallRate float64
	// Stall is the extra transfer latency of a stalled delivery.
	Stall time.Duration
	// CorruptRate is the probability a transfer delivers a bit-flipped
	// payload, in [0, 1]. The client detects it by checksum and re-requests.
	CorruptRate float64
	// MaxFaultsPerObject caps the transient + corrupt injections charged
	// to any single object. 0 means DefaultMaxFaultsPerObject; negative
	// means unlimited (retry policies will exhaust — useful for testing
	// the exhaustion path, fatal for differential gates).
	MaxFaultsPerObject int
	// CrashAt, when positive, crash-stops the whole device at that
	// virtual time: in-flight and queued transfers fail with a
	// DeviceDownError, and new requests are refused while down.
	CrashAt time.Duration
	// CrashDowntime is how long the device stays down after CrashAt
	// before restarting. 0 with CrashAt set means the crash is permanent
	// for the run.
	CrashDowntime time.Duration
}

// Enabled reports whether the plan can inject anything at all.
func (p Plan) Enabled() bool {
	return p.TransientRate > 0 || p.StallRate > 0 || p.CorruptRate > 0 || p.CrashAt > 0
}

// Validate rejects rates outside [0, 1] and negative durations.
func (p Plan) Validate() error {
	check := func(name string, r float64) error {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", name, r)
		}
		return nil
	}
	if err := check("transient rate", p.TransientRate); err != nil {
		return err
	}
	if err := check("stall rate", p.StallRate); err != nil {
		return err
	}
	if err := check("corrupt rate", p.CorruptRate); err != nil {
		return err
	}
	if p.Stall < 0 {
		return fmt.Errorf("faults: negative stall %v", p.Stall)
	}
	if p.CrashAt < 0 {
		return fmt.Errorf("faults: negative crash time %v", p.CrashAt)
	}
	if p.CrashDowntime < 0 {
		return fmt.Errorf("faults: negative crash downtime %v", p.CrashDowntime)
	}
	if p.StallRate > 0 && p.Stall == 0 {
		return fmt.Errorf("faults: stall rate %v with zero stall duration", p.StallRate)
	}
	return nil
}

// Outcome is the injector's verdict for one transfer.
type Outcome struct {
	// Fail delivers a TransientError instead of the payload.
	Fail bool
	// Stall adds extra virtual latency before the delivery (faulty or
	// not) completes.
	Stall time.Duration
	// Corrupt delivers a bit-flipped copy of the payload.
	Corrupt bool
}

// Stats counts injected faults. Snapshot via Injector.Stats.
type Stats struct {
	Transient int64
	Stalls    int64
	Corrupt   int64
}

// Injected sums the retry-forcing faults (transient + corrupt; stalls
// only delay).
func (s Stats) Injected() int64 { return s.Transient + s.Corrupt }

// Injector makes per-transfer fault decisions for one device. Safe for
// concurrent use; decisions depend only on the plan and each object's
// own attempt counter, never on cross-object interleaving.
type Injector struct {
	plan Plan

	mu      sync.Mutex
	tries   map[string]int // transfers seen per object (roll index)
	faulted map[string]int // transient+corrupt charged per object
	stats   Stats
}

// New builds an injector for the plan. An invalid plan errors.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		plan:    plan,
		tries:   make(map[string]int),
		faulted: make(map[string]int),
	}, nil
}

// MustNew is New for plans known valid (tests, default configs).
func MustNew(plan Plan) *Injector {
	in, err := New(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// maxFaults resolves the per-object fault cap.
func (in *Injector) maxFaults() int {
	switch {
	case in.plan.MaxFaultsPerObject == 0:
		return DefaultMaxFaultsPerObject
	case in.plan.MaxFaultsPerObject < 0:
		return int(^uint(0) >> 1)
	default:
		return in.plan.MaxFaultsPerObject
	}
}

// Transfer decides the fate of one transfer of the named object. Each
// call advances the object's attempt counter, so a retry of a failed
// transfer rolls fresh dice — and the per-object fault cap guarantees
// the dice eventually come up clean.
func (in *Injector) Transfer(object string) Outcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	k := in.tries[object]
	in.tries[object] = k + 1
	var out Outcome
	if in.plan.StallRate > 0 && in.roll(object, k, saltStall) < in.plan.StallRate {
		out.Stall = in.plan.Stall
		in.stats.Stalls++
	}
	if in.faulted[object] >= in.maxFaults() {
		return out
	}
	switch {
	case in.plan.TransientRate > 0 && in.roll(object, k, saltTransient) < in.plan.TransientRate:
		out.Fail = true
		in.faulted[object]++
		in.stats.Transient++
	case in.plan.CorruptRate > 0 && in.roll(object, k, saltCorrupt) < in.plan.CorruptRate:
		out.Corrupt = true
		in.faulted[object]++
		in.stats.Corrupt++
	}
	return out
}

// Attempts returns how many transfers of the object the injector has
// judged — the retry count plus one once the object finally lands.
func (in *Injector) Attempts(object string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.tries[object]
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Decision salts keep the three roll streams independent: a transfer can
// stall and fail, and raising the stall rate never shifts which
// transfers go on to fail.
const (
	saltTransient = 0x74726e73 // "trns"
	saltStall     = 0x73746c6c // "stll"
	saltCorrupt   = 0x63727074 // "crpt"
)

// roll maps (seed, object, attempt, salt) to a uniform float in [0, 1)
// via an FNV-1a accumulation finished with a splitmix64 avalanche. No
// shared state: the same arguments always roll the same number.
func (in *Injector) roll(object string, attempt int, salt uint64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(in.plan.Seed))
	for i := 0; i < len(object); i++ {
		h ^= uint64(object[i])
		h *= prime64
	}
	mix(uint64(attempt))
	mix(salt)
	// splitmix64 finalizer: FNV alone is too linear in its low bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
