package vtime_test

import (
	"fmt"
	"time"

	"repro/internal/vtime"
)

// A producer feeds three items to a consumer over a simulated channel;
// virtual time advances only through Sleep, so the run is deterministic.
func Example() {
	sim := vtime.NewSim()
	ch := vtime.NewChan[string](sim, "items", 0)
	sim.Spawn("producer", func(p *vtime.Proc) {
		for _, item := range []string{"a", "b", "c"} {
			p.Sleep(2 * time.Second)
			ch.Send(p, item)
		}
	})
	sim.Spawn("consumer", func(p *vtime.Proc) {
		for i := 0; i < 3; i++ {
			item := ch.Recv(p)
			fmt.Printf("%s at %v\n", item, p.Now())
		}
	})
	if err := sim.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// a at 2s
	// b at 4s
	// c at 6s
}
