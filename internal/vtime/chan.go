package vtime

import "fmt"

// Chan is a typed, optionally buffered channel whose blocking semantics are
// integrated with the simulation scheduler. It mirrors Go channels: a Send
// on a full (or unbuffered) channel blocks until a receiver is ready; a
// Recv on an empty channel blocks until a sender delivers.
//
// All operations must be called from within a simulated process.
type Chan[T any] struct {
	sim   *Sim
	name  string
	cap   int
	buf   []T
	sendq []waiter[T] // blocked senders (value attached)
	recvq []waiter[T] // blocked receivers (slot to fill)
}

type waiter[T any] struct {
	proc *Proc
	val  T  // for senders: the value being sent
	slot *T // for receivers: where to deposit the value
}

// NewChan creates a channel with the given buffer capacity (0 = unbuffered)
// bound to simulator s. The name is used in deadlock diagnostics.
func NewChan[T any](s *Sim, name string, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("vtime: negative channel capacity")
	}
	return &Chan[T]{sim: s, name: name, cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v, blocking the calling process if no buffer space or
// receiver is available.
func (c *Chan[T]) Send(p *Proc, v T) {
	// Fast path: a receiver is already waiting.
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		copy(c.recvq, c.recvq[1:])
		c.recvq = c.recvq[:len(c.recvq)-1]
		*w.slot = v
		c.sim.makeReady(w.proc)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	// Block until a receiver takes our value.
	c.sendq = append(c.sendq, waiter[T]{proc: p, val: v})
	p.blockedOn = fmt.Sprintf("send on %s", c.name)
	p.pause()
	p.blockedOn = ""
}

// TrySend delivers v without blocking. It reports whether the value was
// accepted (by a waiting receiver or buffer space).
func (c *Chan[T]) TrySend(p *Proc, v T) bool {
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		copy(c.recvq, c.recvq[1:])
		c.recvq = c.recvq[:len(c.recvq)-1]
		*w.slot = v
		c.sim.makeReady(w.proc)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv receives a value, blocking the calling process if none is available.
func (c *Chan[T]) Recv(p *Proc) T {
	if v, ok := c.TryRecv(p); ok {
		return v
	}
	var slot T
	c.recvq = append(c.recvq, waiter[T]{proc: p, slot: &slot})
	p.blockedOn = fmt.Sprintf("recv on %s", c.name)
	p.pause()
	p.blockedOn = ""
	return slot
}

// TryRecv receives a value without blocking. The second result reports
// whether a value was available.
func (c *Chan[T]) TryRecv(p *Proc) (T, bool) {
	if len(c.buf) > 0 {
		v := c.buf[0]
		copy(c.buf, c.buf[1:])
		c.buf = c.buf[:len(c.buf)-1]
		// A blocked sender can now occupy the freed buffer slot.
		if len(c.sendq) > 0 {
			w := c.sendq[0]
			copy(c.sendq, c.sendq[1:])
			c.sendq = c.sendq[:len(c.sendq)-1]
			c.buf = append(c.buf, w.val)
			c.sim.makeReady(w.proc)
		}
		return v, true
	}
	if len(c.sendq) > 0 { // unbuffered rendezvous
		w := c.sendq[0]
		copy(c.sendq, c.sendq[1:])
		c.sendq = c.sendq[:len(c.sendq)-1]
		c.sim.makeReady(w.proc)
		return w.val, true
	}
	var zero T
	return zero, false
}
