package vtime

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkContextSwitch measures the kernel's proc handoff cost: two
// processes ping-ponging over unbuffered channels.
func BenchmarkContextSwitch(b *testing.B) {
	sim := NewSim()
	ping := NewChan[int](sim, "ping", 0)
	pong := NewChan[int](sim, "pong", 0)
	n := b.N
	sim.Spawn("a", func(p *Proc) {
		for i := 0; i < n; i++ {
			ping.Send(p, i)
			pong.Recv(p)
		}
	})
	sim.Spawn("b", func(p *Proc) {
		for i := 0; i < n; i++ {
			ping.Recv(p)
			pong.Send(p, i)
		}
	})
	b.ResetTimer()
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerHeap measures timer scheduling with many sleepers.
func BenchmarkTimerHeap(b *testing.B) {
	sim := NewSim()
	const procs = 64
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		i := i
		sim.Spawn(fmt.Sprint("p", i), func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(time.Duration((i*31+j*17)%1000) * time.Millisecond)
			}
		})
	}
	b.ResetTimer()
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}
