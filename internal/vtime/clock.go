package vtime

import "time"

// Clock abstracts a time source that can be read (Now) and advanced by
// blocking (Sleep). Two implementations matter here:
//
//   - *Proc: virtual time. Sleep suspends the simulated process and the
//     discrete-event scheduler jumps the clock — the timing arithmetic of
//     every experiment.
//   - *Wall: real (hardware) time. Now reads the host monotonic clock; it
//     is the measurement substrate of the wall-clock pipeline mode, where
//     the quantity of interest — how much decode and fetch latency the
//     asynchronous pipeline hides behind compute — is invisible to
//     virtual time because virtual charges never overlap by construction.
//
// Code written against Clock runs unchanged on either substrate.
type Clock interface {
	// Now returns the elapsed time on this clock since its origin (virtual
	// time zero, or the Wall clock's creation).
	Now() time.Duration
	// Sleep advances the clock by d, blocking the caller.
	Sleep(d time.Duration)
}

// Wall is a Clock over real (hardware) time. Its origin is the moment
// NewWall was called. The zero Scale makes Sleep a no-op — the common
// configuration for measurement: simulations charge virtual time
// elsewhere and only read Now here; a positive Scale makes Sleep
// actually block for d*Scale of real time, which turns a simulated
// schedule into a (scaled) real-time replay.
type Wall struct {
	start time.Time
	// Scale multiplies Sleep durations: 0 disables sleeping (measurement
	// mode), 1 sleeps in real time, 0.001 replays at 1000x speed.
	Scale float64
}

// NewWall returns a wall clock whose origin is now, in measurement mode
// (Scale 0: Sleep is a no-op).
func NewWall() *Wall { return &Wall{start: time.Now()} }

// Now implements Clock: real time elapsed since NewWall.
func (w *Wall) Now() time.Duration { return time.Since(w.start) }

// Sleep implements Clock: blocks for d*Scale of real time (no-op at the
// default Scale 0).
func (w *Wall) Sleep(d time.Duration) {
	if w.Scale > 0 && d > 0 {
		time.Sleep(time.Duration(float64(d) * w.Scale))
	}
}

// Clock conformance: both time substrates satisfy the one interface.
var (
	_ Clock = (*Proc)(nil)
	_ Clock = (*Wall)(nil)
)
