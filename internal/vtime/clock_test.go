package vtime

import (
	"testing"
	"time"
)

// TestProcSatisfiesClock pins the virtual substrate of the Clock
// interface: a process's Now/Sleep advance virtual time deterministically.
func TestProcSatisfiesClock(t *testing.T) {
	sim := NewSim()
	var before, after time.Duration
	sim.Spawn("p", func(p *Proc) {
		var c Clock = p
		before = c.Now()
		c.Sleep(3 * time.Second)
		after = c.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if before != 0 || after != 3*time.Second {
		t.Fatalf("virtual clock: before=%v after=%v, want 0 and 3s", before, after)
	}
}

// TestWallMeasurementMode pins the default Wall behaviour: Now advances
// with real time, Sleep is free (Scale 0), so wrapping a simulation in a
// Wall clock measures without perturbing.
func TestWallMeasurementMode(t *testing.T) {
	w := NewWall()
	if w.Now() < 0 {
		t.Fatalf("wall clock went backwards: %v", w.Now())
	}
	start := time.Now()
	w.Sleep(time.Hour) // must not block
	if real := time.Since(start); real > time.Second {
		t.Fatalf("Sleep in measurement mode blocked for %v", real)
	}
	t0 := w.Now()
	time.Sleep(time.Millisecond)
	if t1 := w.Now(); t1 <= t0 {
		t.Fatalf("wall clock did not advance: %v then %v", t0, t1)
	}
}

// TestWallScaledSleep pins the replay mode: a positive Scale makes Sleep
// actually block, scaled.
func TestWallScaledSleep(t *testing.T) {
	w := &Wall{start: time.Now(), Scale: 1e-6} // 1s virtual -> 1µs real
	start := time.Now()
	w.Sleep(time.Second)
	if real := time.Since(start); real > time.Second {
		t.Fatalf("scaled Sleep blocked for %v", real)
	}
}
