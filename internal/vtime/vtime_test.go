package vtime

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := NewSim()
	var woke time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("final clock %v, want 5s", s.Now())
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	s := NewSim()
	s.Spawn("a", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-3 * time.Second)
		if p.Now() != 0 {
			t.Errorf("clock moved on zero sleep: %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimersFireInOrder(t *testing.T) {
	s := NewSim()
	var order []string
	for _, tc := range []struct {
		name string
		d    time.Duration
	}{{"c", 30 * time.Second}, {"a", 10 * time.Second}, {"b", 20 * time.Second}} {
		tc := tc
		s.Spawn(tc.name, func(p *Proc) {
			p.Sleep(tc.d)
			order = append(order, tc.name)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Fatalf("wake order %v", got)
	}
}

func TestSimultaneousTimersFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, i)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending", order)
		}
	}
}

func TestUnbufferedChannelRendezvous(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, "ch", 0)
	var got int
	var recvAt time.Duration
	s.Spawn("sender", func(p *Proc) {
		p.Sleep(3 * time.Second)
		ch.Send(p, 42)
	})
	s.Spawn("receiver", func(p *Proc) {
		got = ch.Recv(p)
		recvAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 || recvAt != 3*time.Second {
		t.Fatalf("got %d at %v", got, recvAt)
	}
}

func TestBufferedChannelDoesNotBlockSender(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, "ch", 2)
	var sendDone time.Duration
	s.Spawn("sender", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		sendDone = p.Now()
	})
	s.Spawn("receiver", func(p *Proc) {
		p.Sleep(10 * time.Second)
		if v := ch.Recv(p); v != 1 {
			t.Errorf("first recv %d", v)
		}
		if v := ch.Recv(p); v != 2 {
			t.Errorf("second recv %d", v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 0 {
		t.Fatalf("buffered send blocked until %v", sendDone)
	}
}

func TestSendBlocksWhenBufferFull(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, "ch", 1)
	var thirdSentAt time.Duration
	s.Spawn("sender", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2) // blocks: buffer full, no receiver yet
		thirdSentAt = p.Now()
	})
	s.Spawn("receiver", func(p *Proc) {
		p.Sleep(7 * time.Second)
		ch.Recv(p)
		ch.Recv(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if thirdSentAt != 7*time.Second {
		t.Fatalf("blocked send completed at %v, want 7s", thirdSentAt)
	}
}

func TestTryRecvAndTrySend(t *testing.T) {
	s := NewSim()
	ch := NewChan[string](s, "ch", 1)
	s.Spawn("p", func(p *Proc) {
		if _, ok := ch.TryRecv(p); ok {
			t.Error("TryRecv on empty channel succeeded")
		}
		if !ch.TrySend(p, "x") {
			t.Error("TrySend with buffer space failed")
		}
		if ch.TrySend(p, "y") {
			t.Error("TrySend on full channel succeeded")
		}
		v, ok := ch.TryRecv(p)
		if !ok || v != "x" {
			t.Errorf("TryRecv got %q, %v", v, ok)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedSenderPromotedToBuffer(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, "ch", 1)
	var got []int
	s.Spawn("sender", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2) // blocks
	})
	s.Spawn("receiver", func(p *Proc) {
		p.Sleep(time.Second)
		got = append(got, ch.Recv(p))
		p.Sleep(time.Second)
		got = append(got, ch.Recv(p))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("got %v", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := NewSim()
	ch := NewChan[int](s, "stuck-ch", 0)
	s.Spawn("stuck", func(p *Proc) {
		ch.Recv(p)
	})
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked list %v", de.Blocked)
	}
}

func TestSpawnFromRunningProc(t *testing.T) {
	s := NewSim()
	var childRanAt time.Duration = -1
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(5 * time.Second)
		s.Spawn("child", func(c *Proc) {
			childRanAt = c.Now()
		})
		p.Sleep(time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childRanAt != 5*time.Second {
		t.Fatalf("child ran at %v", childRanAt)
	}
}

func TestYieldInterleavesAtSameTime(t *testing.T) {
	s := NewSim()
	var log []string
	s.Spawn("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		log = append(log, "b1")
		p.Yield()
		log = append(log, "b2")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(log) != "[a1 b1 a2 b2]" {
		t.Fatalf("log %v", log)
	}
}

// TestPingPong exercises repeated rendezvous between two processes.
func TestPingPong(t *testing.T) {
	s := NewSim()
	ping := NewChan[int](s, "ping", 0)
	pong := NewChan[int](s, "pong", 0)
	const rounds = 100
	s.Spawn("ping", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			ping.Send(p, i)
			if v := pong.Recv(p); v != i*2 {
				t.Errorf("pong %d, want %d", v, i*2)
				return
			}
		}
	})
	s.Spawn("pong", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			v := ping.Recv(p)
			p.Sleep(time.Millisecond)
			pong.Send(p, v*2)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != rounds*time.Millisecond {
		t.Fatalf("final time %v", s.Now())
	}
}

// runRandomWorkload executes a randomized mesh of sleepers and channel
// hops and returns a trace fingerprint. Used to check determinism.
func runRandomWorkload(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	s := NewSim()
	ch := NewChan[int](s, "bus", 3)
	var log []string
	nprocs := 3 + rng.Intn(4)
	for i := 0; i < nprocs; i++ {
		i := i
		delays := make([]time.Duration, 5)
		for j := range delays {
			delays[j] = time.Duration(rng.Intn(1000)) * time.Millisecond
		}
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for _, d := range delays {
				p.Sleep(d)
				ch.Send(p, i)
				log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
			}
		})
	}
	s.Spawn("drain", func(p *Proc) {
		for i := 0; i < nprocs*5; i++ {
			v := ch.Recv(p)
			log = append(log, fmt.Sprintf("r%d@%v", v, p.Now()))
		}
	})
	if err := s.Run(); err != nil {
		panic(err)
	}
	return fmt.Sprint(log, s.Now())
}

func TestDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		return runRandomWorkload(seed) == runRandomWorkload(seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	s := NewSim()
	var last time.Duration
	for i := 0; i < 10; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 20; j++ {
				p.Sleep(time.Duration(j%7) * time.Second)
				if p.Now() < last {
					t.Errorf("clock went backwards: %v < %v", p.Now(), last)
				}
				last = p.Now()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTwicePanics(t *testing.T) {
	s := NewSim()
	s.Spawn("p", func(p *Proc) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	_ = s.Run()
}

func TestTracer(t *testing.T) {
	s := NewSim()
	var lines []string
	s.SetTracer(func(at time.Duration, format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%v: %s", at, fmt.Sprintf(format, args...)))
	})
	s.Spawn("p", func(p *Proc) {
		p.Sleep(2 * time.Second)
		s.Tracef("hello %d", 7)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0] != "2s: hello 7" {
		t.Fatalf("trace %v", lines)
	}
}
