// Package vtime implements a deterministic discrete-event simulation
// kernel with cooperative green threads.
//
// A Sim hosts a set of processes (Proc), each backed by a goroutine, but
// only one process ever executes at a time: a process runs until it blocks
// on a timer (Sleep) or a channel operation (Chan.Send/Chan.Recv), at which
// point control returns to the scheduler. When no process is runnable the
// clock jumps to the earliest pending timer. This yields fully
// deterministic, repeatable executions: identical inputs produce identical
// event orders and identical virtual timestamps, regardless of the host
// machine or GOMAXPROCS.
//
// The kernel is the substrate for the CSD emulator and the database
// clients: group-switch latencies, transfer times and query processing
// costs are all expressed as virtual durations, so experiments that take
// hours of "wall-clock" time in the paper complete in milliseconds here
// while preserving the exact timing arithmetic.
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Sim is a discrete-event simulator. Create one with NewSim, add processes
// with Spawn, then call Run. A Sim must not be reused after Run returns.
type Sim struct {
	now     time.Duration
	ready   []*Proc // FIFO queue of runnable processes
	timers  timerHeap
	procs   []*Proc
	seq     int // tie-break counter for timers
	running bool
	halted  bool
	tracer  func(at time.Duration, format string, args ...any)
}

// NewSim returns an empty simulator with the clock at zero.
func NewSim() *Sim {
	return &Sim{}
}

// SetTracer installs a trace callback invoked by Tracef. A nil tracer
// disables tracing.
func (s *Sim) SetTracer(fn func(at time.Duration, format string, args ...any)) {
	s.tracer = fn
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Proc is a simulated process. All blocking methods must be called from
// the process's own function, never from another goroutine.
type Proc struct {
	id     int
	name   string
	sim    *Sim
	resume chan struct{} // scheduler -> proc: run
	yield  chan struct{} // proc -> scheduler: paused or done
	done   bool
	// blockedOn describes what the process is waiting for, for deadlock
	// diagnostics. Empty when runnable or done.
	blockedOn string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique id (assigned in Spawn order).
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Sim returns the simulator this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Spawn registers a new process. If called before Run, the process starts
// when Run begins; if called from inside a running process, the new process
// becomes runnable at the current virtual time (after the caller yields).
func (s *Sim) Spawn(name string, fn func(*Proc)) *Proc {
	if s.halted {
		panic("vtime: Spawn after Run returned")
	}
	p := &Proc{
		id:     len(s.procs),
		name:   name,
		sim:    s,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	s.procs = append(s.procs, p)
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		p.yield <- struct{}{}
	}()
	s.ready = append(s.ready, p)
	return p
}

// timer is a pending wake-up for a sleeping process.
type timer struct {
	at   time.Duration
	seq  int
	proc *Proc
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h timerHeap) peek() timer   { return h[0] }
func (s *Sim) pushTimer(p *Proc, at time.Duration) {
	s.seq++
	heap.Push(&s.timers, timer{at: at, seq: s.seq, proc: p})
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process yields but resumes at the same timestamp,
// after currently runnable processes).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.pushTimer(p, s.now+d)
	p.blockedOn = fmt.Sprintf("sleep until %v", s.now+d)
	p.pause()
	p.blockedOn = ""
}

// Yield gives other runnable processes a chance to run at the current
// virtual time. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// pause hands control back to the scheduler and waits to be resumed.
func (p *Proc) pause() {
	p.yield <- struct{}{}
	<-p.resume
}

// makeReady appends p to the runnable queue.
func (s *Sim) makeReady(p *Proc) {
	s.ready = append(s.ready, p)
}

// step runs one runnable process until it yields. Caller guarantees
// len(s.ready) > 0.
func (s *Sim) step() {
	p := s.ready[0]
	copy(s.ready, s.ready[1:])
	s.ready = s.ready[:len(s.ready)-1]
	p.resume <- struct{}{}
	<-p.yield
}

// DeadlockError reports that Run stopped with processes blocked forever.
type DeadlockError struct {
	At      time.Duration
	Blocked []string // "name: reason" for each stuck process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at %v; blocked: %v", e.At, e.Blocked)
}

// Run executes the simulation until every process has finished. It returns
// a *DeadlockError if some processes remain blocked with no pending timers.
func (s *Sim) Run() error {
	if s.running || s.halted {
		panic("vtime: Run called twice")
	}
	s.running = true
	defer func() { s.running = false; s.halted = true }()
	for {
		for len(s.ready) > 0 {
			s.step()
		}
		if s.timers.Len() > 0 {
			at := s.timers.peek().at
			if at < s.now {
				panic("vtime: time went backwards")
			}
			s.now = at
			// Wake every timer due at this instant, in registration order.
			for s.timers.Len() > 0 && s.timers.peek().at == at {
				t := heap.Pop(&s.timers).(timer)
				s.makeReady(t.proc)
			}
			continue
		}
		// No runnable processes and no timers: either done or deadlocked.
		var stuck []string
		for _, p := range s.procs {
			if !p.done {
				stuck = append(stuck, fmt.Sprintf("%s: %s", p.name, p.blockedOn))
			}
		}
		if len(stuck) == 0 {
			return nil
		}
		sort.Strings(stuck)
		return &DeadlockError{At: s.now, Blocked: stuck}
	}
}

// Tracef emits a trace line through the installed tracer, if any.
func (s *Sim) Tracef(format string, args ...any) {
	if s.tracer != nil {
		s.tracer(s.now, format, args...)
	}
}
