package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", label, got, want, tol)
	}
}

// TestFigure2Numbers checks the seven bars of Figure 2 for a 100 TB
// database, in thousands of dollars.
func TestFigure2Numbers(t *testing.T) {
	want := map[string]float64{
		"All-SSD":  7680.00,
		"All-SCSI": 1382.40,
		"All-SATA": 460.80,
		"All-tape": 20.48,
		"2-Tier":   783.36,
		"3-Tier":   367.87,
		"4-Tier":   493.82,
	}
	for _, cfg := range Figure2Configs() {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		got := cfg.Cost(100) / 1000
		approx(t, got, want[cfg.Name], 0.01, cfg.Name)
	}
}

// TestFigure3Ratios checks §3.1's quoted CST savings ratios.
func TestFigure3Ratios(t *testing.T) {
	cases := []struct {
		base     TierMix
		csdPrice float64
		want     float64
	}{
		{ThreeTier(), 0.1, 1.70},
		{ThreeTier(), 0.2, 1.63},
		{ThreeTier(), 1.0, 1.24},
		{FourTier(), 0.1, 1.44},
		{FourTier(), 0.2, 1.40},
		{FourTier(), 1.0, 1.17},
	}
	for _, c := range cases {
		cst := WithCST(c.base, c.csdPrice)
		if err := cst.Validate(); err != nil {
			t.Fatal(err)
		}
		got := SavingsRatio(c.base, cst)
		approx(t, got, c.want, 0.01, cst.Name)
	}
}

func TestWithCSTReplacesColdShares(t *testing.T) {
	cst := WithCST(FourTier(), 0.1)
	if len(cst.Shares) != 3 {
		t.Fatalf("shares %v", cst.Shares)
	}
	// SSD and 15k stay; SATA+Tape collapse to one 85.5%... actually
	// 32.5+52.5 = 85% CSD share.
	var coldFrac float64
	for _, s := range cst.Shares {
		if s.Device.Tier == "CST" {
			coldFrac = s.Fraction
		}
		if s.Device.Tier == "C" || s.Device.Tier == "A" {
			t.Fatalf("cold device %v survived", s.Device)
		}
	}
	approx(t, coldFrac, 0.85, 1e-9, "cold fraction")
}

func TestAllTapeCheapest(t *testing.T) {
	cheapest := Single("All-tape", Tape).CostPerGB()
	for _, cfg := range Figure2Configs() {
		if cfg.Name != "All-tape" && cfg.CostPerGB() <= cheapest {
			t.Fatalf("%s cheaper than tape", cfg.Name)
		}
	}
}

// TestSavingsMonotoneInCSDPrice: a cheaper CSD can only increase savings.
func TestSavingsMonotoneInCSDPrice(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := 0.01 + float64(a%400)/100 // 0.01..4.00
		p2 := 0.01 + float64(b%400)/100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		base := ThreeTier()
		return SavingsRatio(base, WithCST(base, p1)) >= SavingsRatio(base, WithCST(base, p2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCSTBreakEvenPrice: the CST wins exactly when the CSD is cheaper
// than the blended cost of the capacity+archival shares it replaces
// ((0.325·4.5 + 0.525·0.2)/0.85 ≈ $1.84/GB for the 3-tier config).
func TestCSTBreakEvenPrice(t *testing.T) {
	base := ThreeTier()
	breakEven := (0.325*SATA72K.DollarsPerGB + 0.525*Tape.DollarsPerGB) / 0.85
	f := func(a uint16) bool {
		p := float64(a%400) / 100 // $0.00..$3.99
		cheaper := WithCST(base, p).CostPerGB() <= base.CostPerGB()+1e-9
		return cheaper == (p <= breakEven+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadFractions(t *testing.T) {
	bad := TierMix{Name: "bad", Shares: []Share{{Device: SSD, Fraction: 0.5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("fractions not summing to 1 accepted")
	}
	bad2 := TierMix{Name: "bad2", Shares: []Share{{Device: SSD, Fraction: 1.5}, {Device: Tape, Fraction: -0.5}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range fraction accepted")
	}
}

func TestCostScalesLinearly(t *testing.T) {
	c100 := ThreeTier().Cost(100)
	c1000 := ThreeTier().Cost(1000)
	approx(t, c1000/c100, 10, 1e-9, "linear scaling")
}
