package costmodel_test

import (
	"fmt"

	"repro/internal/costmodel"
)

// Replacing the 3-tier hierarchy's capacity and archival tiers with a
// $0.10/GB cold storage tier saves 1.70x on acquisition cost (§3.1).
func ExampleWithCST() {
	base := costmodel.ThreeTier()
	cst := costmodel.WithCST(base, 0.10)
	fmt.Printf("traditional: $%.2f/GB\n", base.CostPerGB())
	fmt.Printf("with CST:    $%.2f/GB\n", cst.CostPerGB())
	fmt.Printf("savings:     %.2fx\n", costmodel.SavingsRatio(base, cst))
	// Output:
	// traditional: $3.59/GB
	// with CST:    $2.11/GB
	// savings:     1.70x
}
