// Package costmodel reproduces the paper's storage-tiering cost analysis
// (§2.1 Table 1 / Figure 2 and §3.1 Figure 3): acquisition cost of a
// database spread across performance, capacity and archival tiers, and the
// savings from replacing the capacity+archival tiers with a single
// CSD-based cold storage tier (CST).
package costmodel

import (
	"fmt"
	"math"
)

// GB per TB in the paper's arithmetic (binary: 100 TB = 102,400 GB).
const gbPerTB = 1024

// Device is one storage device type with its acquisition cost.
type Device struct {
	Name         string
	DollarsPerGB float64
	// Tier is the paper's tier classification: P(erformance),
	// C(apacity), A(rchival), or CST.
	Tier string
}

// The paper's device pricing (Table 1).
var (
	SSD     = Device{Name: "SSD", DollarsPerGB: 75, Tier: "P"}
	SCSI15K = Device{Name: "15k-HDD", DollarsPerGB: 13.5, Tier: "P"}
	SATA72K = Device{Name: "7.2k-HDD", DollarsPerGB: 4.5, Tier: "C"}
	Tape    = Device{Name: "Tape", DollarsPerGB: 0.2, Tier: "A"}
)

// CSD returns a cold-storage-device entry at the given price point
// (Figure 3 evaluates $1, $0.2 and $0.1 per GB).
func CSD(dollarsPerGB float64) Device {
	return Device{Name: fmt.Sprintf("CSD@%.2f", dollarsPerGB), DollarsPerGB: dollarsPerGB, Tier: "CST"}
}

// Share places a fraction of the database on a device.
type Share struct {
	Device   Device
	Fraction float64
}

// TierMix is a full tiering configuration; fractions must sum to 1.
type TierMix struct {
	Name   string
	Shares []Share
}

// Validate checks the fractions.
func (m TierMix) Validate() error {
	sum := 0.0
	for _, s := range m.Shares {
		if s.Fraction < 0 || s.Fraction > 1 {
			return fmt.Errorf("costmodel: %s: fraction %v out of range", m.Name, s.Fraction)
		}
		sum += s.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("costmodel: %s: fractions sum to %v", m.Name, sum)
	}
	return nil
}

// CostPerGB returns the blended acquisition cost.
func (m TierMix) CostPerGB() float64 {
	c := 0.0
	for _, s := range m.Shares {
		c += s.Fraction * s.Device.DollarsPerGB
	}
	return c
}

// Cost returns the configuration's acquisition cost for a database of the
// given size in TB.
func (m TierMix) Cost(dbTB float64) float64 {
	return m.CostPerGB() * dbTB * gbPerTB
}

// Single builds a one-device configuration.
func Single(name string, d Device) TierMix {
	return TierMix{Name: name, Shares: []Share{{Device: d, Fraction: 1}}}
}

// TwoTier is the paper's 2-tier config: 35% 15k-HDD, 65% SATA.
func TwoTier() TierMix {
	return TierMix{Name: "2-Tier", Shares: []Share{
		{Device: SCSI15K, Fraction: 0.35},
		{Device: SATA72K, Fraction: 0.65},
	}}
}

// ThreeTier is the paper's 3-tier config: 15% 15k, 32.5% SATA, 52.5% tape.
func ThreeTier() TierMix {
	return TierMix{Name: "3-Tier", Shares: []Share{
		{Device: SCSI15K, Fraction: 0.15},
		{Device: SATA72K, Fraction: 0.325},
		{Device: Tape, Fraction: 0.525},
	}}
}

// FourTier is the paper's 4-tier config: 2% SSD, 13% 15k, 32.5% SATA,
// 52.5% tape.
func FourTier() TierMix {
	return TierMix{Name: "4-Tier", Shares: []Share{
		{Device: SSD, Fraction: 0.02},
		{Device: SCSI15K, Fraction: 0.13},
		{Device: SATA72K, Fraction: 0.325},
		{Device: Tape, Fraction: 0.525},
	}}
}

// Figure2Configs lists the seven configurations of Figure 2.
func Figure2Configs() []TierMix {
	return []TierMix{
		Single("All-SSD", SSD),
		Single("All-SCSI", SCSI15K),
		Single("All-SATA", SATA72K),
		Single("All-tape", Tape),
		TwoTier(),
		ThreeTier(),
		FourTier(),
	}
}

// WithCST replaces every capacity- and archival-tier share of a
// configuration with a single CSD share at the given price — the cold
// storage tier of §3.
func WithCST(base TierMix, csdDollarsPerGB float64) TierMix {
	out := TierMix{Name: "CSD-" + base.Name}
	cold := 0.0
	for _, s := range base.Shares {
		switch s.Device.Tier {
		case "C", "A":
			cold += s.Fraction
		default:
			out.Shares = append(out.Shares, s)
		}
	}
	out.Shares = append(out.Shares, Share{Device: CSD(csdDollarsPerGB), Fraction: cold})
	return out
}

// SavingsRatio returns trad/csd cost (e.g. 1.70 means the CST saves 41%).
func SavingsRatio(trad, cst TierMix) float64 {
	return trad.CostPerGB() / cst.CostPerGB()
}
