// Package trace records structured simulation events — group switches,
// GET requests, object deliveries, query spans — and renders them as a
// chronological log or per-tenant summary. The event log is the
// observability surface of the simulated testbed: experiments assert on
// aggregated Stats, while humans debug runs by reading the trace.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Kind classifies events.
type Kind uint8

const (
	// KindSwitch is a CSD group switch (From/To in Note as "g1->g2").
	KindSwitch Kind = iota
	// KindGet is a GET request arriving at the CSD.
	KindGet
	// KindDelivery is an object handed back to a client.
	KindDelivery
	// KindQueryStart marks a client beginning a query.
	KindQueryStart
	// KindQueryEnd marks query completion.
	KindQueryEnd
	// KindNote is free-form.
	KindNote
)

func (k Kind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindGet:
		return "get"
	case KindDelivery:
		return "deliver"
	case KindQueryStart:
		return "query-start"
	case KindQueryEnd:
		return "query-end"
	default:
		return "note"
	}
}

// Event is one recorded occurrence.
type Event struct {
	At     time.Duration
	Kind   Kind
	Tenant int    // -1 when not tenant-specific
	Query  string // query id when known
	Object string // object id when known
	Group  int    // disk group when known, else -1
	// Device is the CSD that emitted the event. Single-device runs (and
	// cluster-level events like query spans) leave it 0/-1 and it stays
	// out of the rendering; multi-device fleets stamp ids >= 1 on the
	// non-primary devices, which Render shows as "d<N>".
	Device int
	Note   string
}

// Log accumulates events. The simulation is single-threaded, so no
// locking is needed; a nil *Log ignores all records.
type Log struct {
	Events []Event
}

// Add appends an event; safe on a nil receiver.
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	l.Events = append(l.Events, e)
}

// Len returns the number of recorded events (0 for nil).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.Events)
}

// CountByKind tallies events per kind.
func (l *Log) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	if l == nil {
		return out
	}
	for _, e := range l.Events {
		out[e.Kind]++
	}
	return out
}

// Filter returns the events matching the predicate, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.Events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Render writes a chronological listing.
func (l *Log) Render(w io.Writer) {
	if l == nil {
		return
	}
	for _, e := range l.Events {
		parts := []string{fmt.Sprintf("%10.1fs  %-11s", e.At.Seconds(), e.Kind)}
		if e.Tenant >= 0 {
			parts = append(parts, fmt.Sprintf("t%d", e.Tenant))
		}
		if e.Query != "" {
			parts = append(parts, e.Query)
		}
		if e.Object != "" {
			parts = append(parts, e.Object)
		}
		if e.Group >= 0 {
			parts = append(parts, fmt.Sprintf("g%d", e.Group))
		}
		if e.Device > 0 {
			parts = append(parts, fmt.Sprintf("d%d", e.Device))
		}
		if e.Note != "" {
			parts = append(parts, e.Note)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
}

// Summary renders per-tenant query spans and device activity counts.
func (l *Log) Summary() string {
	if l == nil || len(l.Events) == 0 {
		return "(empty trace)\n"
	}
	var sb strings.Builder
	counts := l.CountByKind()
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&sb, "%-12s %d\n", k, counts[k])
	}
	// Query spans per tenant.
	type span struct {
		query      string
		start, end time.Duration
		open       bool
	}
	spans := make(map[int][]span)
	for _, e := range l.Events {
		switch e.Kind {
		case KindQueryStart:
			spans[e.Tenant] = append(spans[e.Tenant], span{query: e.Query, start: e.At, open: true})
		case KindQueryEnd:
			ss := spans[e.Tenant]
			for i := len(ss) - 1; i >= 0; i-- {
				if ss[i].open && ss[i].query == e.Query {
					ss[i].end = e.At
					ss[i].open = false
					break
				}
			}
		}
	}
	tenants := make([]int, 0, len(spans))
	for t := range spans {
		tenants = append(tenants, t)
	}
	sort.Ints(tenants)
	for _, t := range tenants {
		for _, s := range spans[t] {
			if s.open {
				fmt.Fprintf(&sb, "t%d %-24s %.1fs .. (unfinished)\n", t, s.query, s.start.Seconds())
			} else {
				fmt.Fprintf(&sb, "t%d %-24s %.1fs .. %.1fs (%.1fs)\n",
					t, s.query, s.start.Seconds(), s.end.Seconds(), (s.end - s.start).Seconds())
			}
		}
	}
	return sb.String()
}
