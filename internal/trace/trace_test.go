package trace

import (
	"strings"
	"testing"
	"time"
)

func secAt(s int) time.Duration { return time.Duration(s) * time.Second }

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(Event{Kind: KindGet})
	if l.Len() != 0 {
		t.Fatal("nil log grew")
	}
	if got := l.CountByKind(); len(got) != 0 {
		t.Fatal("nil counts")
	}
	if got := l.Filter(func(Event) bool { return true }); got != nil {
		t.Fatal("nil filter")
	}
	var sb strings.Builder
	l.Render(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil render wrote output")
	}
	if !strings.Contains(l.Summary(), "empty") {
		t.Fatal("nil summary")
	}
}

func TestAddAndCount(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: secAt(1), Kind: KindGet, Tenant: 0})
	l.Add(Event{At: secAt(2), Kind: KindGet, Tenant: 1})
	l.Add(Event{At: secAt(3), Kind: KindSwitch, Tenant: -1})
	if l.Len() != 3 {
		t.Fatalf("len %d", l.Len())
	}
	c := l.CountByKind()
	if c[KindGet] != 2 || c[KindSwitch] != 1 {
		t.Fatalf("counts %v", c)
	}
}

func TestFilter(t *testing.T) {
	l := &Log{}
	for i := 0; i < 5; i++ {
		l.Add(Event{Kind: KindDelivery, Tenant: i % 2})
	}
	only1 := l.Filter(func(e Event) bool { return e.Tenant == 1 })
	if len(only1) != 2 {
		t.Fatalf("filtered %d", len(only1))
	}
}

func TestRenderFormat(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: secAt(12), Kind: KindGet, Tenant: 3, Query: "t3.q#0", Object: "t3/a/0001", Group: 2})
	var sb strings.Builder
	l.Render(&sb)
	out := sb.String()
	for _, want := range []string{"12.0s", "get", "t3", "t3.q#0", "t3/a/0001", "g2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q: %s", want, out)
		}
	}
}

func TestSummarySpans(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: secAt(0), Kind: KindQueryStart, Tenant: 0, Query: "q0"})
	l.Add(Event{At: secAt(5), Kind: KindSwitch, Tenant: -1})
	l.Add(Event{At: secAt(30), Kind: KindQueryEnd, Tenant: 0, Query: "q0"})
	l.Add(Event{At: secAt(31), Kind: KindQueryStart, Tenant: 1, Query: "q1"})
	s := l.Summary()
	if !strings.Contains(s, "0.0s .. 30.0s (30.0s)") {
		t.Fatalf("span missing: %s", s)
	}
	if !strings.Contains(s, "unfinished") {
		t.Fatalf("open span missing: %s", s)
	}
	if !strings.Contains(s, "switch") {
		t.Fatalf("kind counts missing: %s", s)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindSwitch; k <= KindNote; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

// Interleaved spans: two tenants in flight at once, and one tenant
// re-running the same query id with the first run still open — the
// end event must close the most recent open span with that id.
func TestSummaryInterleavedSpans(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: secAt(0), Kind: KindQueryStart, Tenant: 0, Query: "qa"})
	l.Add(Event{At: secAt(2), Kind: KindQueryStart, Tenant: 1, Query: "qb"})
	l.Add(Event{At: secAt(4), Kind: KindQueryStart, Tenant: 0, Query: "qa"}) // retry, first still open
	l.Add(Event{At: secAt(6), Kind: KindQueryEnd, Tenant: 0, Query: "qa"})   // closes the retry
	l.Add(Event{At: secAt(9), Kind: KindQueryEnd, Tenant: 1, Query: "qb"})
	s := l.Summary()
	if !strings.Contains(s, "4.0s .. 6.0s (2.0s)") {
		t.Fatalf("retry span not closed last-open-first: %s", s)
	}
	if !strings.Contains(s, "0.0s .. (unfinished)") {
		t.Fatalf("original open span should stay unfinished: %s", s)
	}
	if !strings.Contains(s, "2.0s .. 9.0s (7.0s)") {
		t.Fatalf("cross-tenant interleaved span missing: %s", s)
	}
}

// An end without a matching start (e.g. the log was attached mid-run)
// must not invent a span or panic.
func TestSummaryOrphanEnd(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: secAt(3), Kind: KindQueryEnd, Tenant: 2, Query: "qz"})
	s := l.Summary()
	if strings.Contains(s, "qz ") && strings.Contains(s, "..") && strings.Contains(s, "(") && strings.Contains(s, "t2 qz") {
		t.Fatalf("orphan end produced a span: %s", s)
	}
	if !strings.Contains(s, "query-end") {
		t.Fatalf("kind count for orphan end missing: %s", s)
	}
}
