package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil trace must accept every recording call without panicking or
// allocating observable state — tracing-off paths lean on this.
func TestNilQueryTraceIsInert(t *testing.T) {
	var qt *QueryTrace
	if qt.Enabled() {
		t.Fatal("nil trace reports Enabled")
	}
	id := qt.Begin(CatFetch, "x")
	qt.End(id)
	ph := qt.BeginPhase(CatExecute, "run")
	qt.EndPhase(ph)
	qt.Emit(CatDecode, "y", time.Now())
	qt.EmitVirt(CatStall, "z", time.Now(), 0, time.Second)
	qt.SetLimit(1)
	if qt.Spans() != nil || qt.Dropped() != 0 || qt.ExportTrace() != nil {
		t.Fatal("nil trace returned state")
	}
}

func TestSpanHierarchyAndClocks(t *testing.T) {
	qt := NewQueryTrace("q1", 3, "SELECT 1")
	root := qt.BeginPhase(CatQuery, "q1")
	adm := qt.Begin(CatAdmission, "wait")
	qt.End(adm)
	exec := qt.BeginPhase(CatExecute, "run")
	qt.EmitVirt(CatFetch, "obj-1", time.Now(), 2*time.Second, 5*time.Second)
	qt.EndPhaseVirt(exec, 5*time.Second)
	qt.EndPhase(root)

	spans := qt.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["wait"].Parent != byName["q1"].ID {
		t.Errorf("admission parent = %d, want root %d", byName["wait"].Parent, byName["q1"].ID)
	}
	if byName["run"].Parent != byName["q1"].ID {
		t.Errorf("execute parent = %d, want root %d", byName["run"].Parent, byName["q1"].ID)
	}
	if byName["obj-1"].Parent != byName["run"].ID {
		t.Errorf("fetch parent = %d, want execute %d", byName["obj-1"].Parent, byName["run"].ID)
	}
	fetch := byName["obj-1"]
	if !fetch.HasVirt || fetch.VirtStart != 2*time.Second || fetch.VirtEnd != 5*time.Second {
		t.Errorf("fetch virtual bounds = %v..%v (HasVirt=%v), want 2s..5s", fetch.VirtStart, fetch.VirtEnd, fetch.HasVirt)
	}
	if fetch.WallEnd < fetch.WallStart {
		t.Errorf("fetch wall bounds inverted: %v..%v", fetch.WallStart, fetch.WallEnd)
	}
	// Root has no virtual stamps; the phase-closing virt on exec sticks.
	if ex := byName["run"]; ex.HasVirt {
		t.Errorf("wall-only phase acquired virtual stamps: %+v", ex)
	}
}

// The span cap must count, not store, overflow — a scan over thousands
// of segments cannot balloon a trace.
func TestSpanLimitDropsAndCounts(t *testing.T) {
	qt := NewQueryTrace("q", 0, "")
	qt.SetLimit(3)
	for i := 0; i < 10; i++ {
		qt.Emit(CatFetch, "seg", time.Now())
	}
	if n := len(qt.Spans()); n != 3 {
		t.Fatalf("stored %d spans, want 3", n)
	}
	if d := qt.Dropped(); d != 7 {
		t.Fatalf("dropped = %d, want 7", d)
	}
	// End of a dropped span (id 0) must be harmless.
	qt.End(0)
}

// Decode workers and the prefetch proc record concurrently with the
// query goroutine; the trace must stay consistent under -race.
func TestConcurrentRecording(t *testing.T) {
	qt := NewQueryTrace("q", 0, "")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := qt.Begin(CatDecode, "d")
				qt.End(id)
			}
		}()
	}
	wg.Wait()
	if n := len(qt.Spans()); n != 400 {
		t.Fatalf("recorded %d spans, want 400", n)
	}
	for _, sp := range qt.Spans() {
		if sp.WallEnd < sp.WallStart {
			t.Fatalf("span %d has inverted bounds", sp.ID)
		}
	}
}

func TestWriteChromeProducesValidJSON(t *testing.T) {
	qt := NewQueryTrace("q7", 2, "SELECT 1")
	root := qt.BeginPhase(CatQuery, "q7")
	qt.EmitVirt(CatFetch, "lineitem/3", time.Now(), time.Second, 3*time.Second)
	qt.Emit(CatDecode, "lineitem/3", time.Now())
	qt.EndPhase(root)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, ClockWall, qt.ExportTrace()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v", err)
	}
	var complete, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	if complete != 3 {
		t.Errorf("wall export has %d complete events, want 3", complete)
	}
	if meta == 0 {
		t.Error("no metadata (process/thread naming) events")
	}

	// The virtual-clock view drops the wall-only decode span.
	buf.Reset()
	if err := WriteChrome(&buf, ClockVirtual, qt.ExportTrace()); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	complete = 0
	for _, ev := range events {
		if ev["ph"] == "X" {
			complete++
		}
	}
	if complete != 1 {
		t.Errorf("virtual export has %d complete events, want 1 (only the fetch carries virtual stamps)", complete)
	}
}

func TestExportSummary(t *testing.T) {
	qt := NewQueryTrace("q9", 1, "")
	qt.Emit(CatFetch, "a", time.Now())
	qt.Emit(CatFetch, "b", time.Now())
	qt.Emit(CatDecode, "a", time.Now())
	s := qt.ExportTrace().Summary()
	if !strings.Contains(s, "q9") || !strings.Contains(s, "3 spans") {
		t.Fatalf("summary missing header: %q", s)
	}
	if !strings.Contains(s, "fetch") || !strings.Contains(s, "decode") {
		t.Fatalf("summary missing categories: %q", s)
	}
}
