package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace-event export: completed traces render as "X" (complete)
// events in the JSON array format that chrome://tracing and Perfetto
// load directly. One traced query becomes one process (pid = a
// per-trace index, labeled with tenant and trace id); categories map to
// threads (tid), so fetches, decodes, stalls and operator work each get
// their own lane under the query's root span.

// ChromeClock selects which clock the exported timestamps use.
type ChromeClock int

const (
	// ClockWall exports wall-time offsets — what the hardware did.
	ClockWall ChromeClock = iota
	// ClockVirtual exports simulation-time offsets; spans without
	// virtual stamps (recorded outside a simulated run) are skipped.
	ClockVirtual
)

// chromeEvent is one trace-event JSON object.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is a metadata event (process/thread naming).
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid,omitempty"`
	Args map[string]any `json:"args"`
}

// laneOrder fixes the tid per category so every trace renders with the
// same lane layout.
var laneOrder = []string{CatQuery, CatAdmission, CatPlan, CatExecute, CatCycle, CatPrefetch, CatFetch, CatDecode, CatStall, CatOp, CatDrain}

func laneOf(cat string) int {
	for i, c := range laneOrder {
		if c == cat {
			return i
		}
	}
	return len(laneOrder)
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChrome renders the traces as one Chrome trace-event JSON array.
// Load the output in chrome://tracing or https://ui.perfetto.dev.
func WriteChrome(w io.Writer, clock ChromeClock, traces ...*Export) error {
	var events []any
	for pid, e := range traces {
		if e == nil {
			continue
		}
		events = append(events, chromeMeta{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": fmt.Sprintf("t%d %s", e.Tenant, e.ID)},
		})
		seen := map[int]bool{}
		for _, sp := range e.Spans {
			if clock == ClockVirtual && !sp.HasVirt {
				continue
			}
			// Device-labeled spans (multi-device fleets) get their own lane
			// set past the shared ones: tid strides by device so "retry d2"
			// never collides with an unlabeled lane, and unlabeled spans
			// keep the exact tids single-device traces always had.
			tid := laneOf(sp.Cat)
			laneName := sp.Cat
			if sp.Device > 0 {
				tid += sp.Device * (len(laneOrder) + 1)
				laneName = fmt.Sprintf("%s d%d", sp.Cat, sp.Device)
			}
			if !seen[tid] {
				seen[tid] = true
				events = append(events, chromeMeta{
					Name: "thread_name", Ph: "M", PID: pid, TID: tid,
					Args: map[string]any{"name": laneName},
				})
				events = append(events, chromeMeta{
					Name: "thread_sort_index", Ph: "M", PID: pid, TID: tid,
					Args: map[string]any{"sort_index": tid},
				})
			}
			ts, end := sp.WallStart, sp.WallEnd
			if clock == ClockVirtual {
				ts, end = sp.VirtStart, sp.VirtEnd
			}
			ev := chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "X",
				TS: us(ts), Dur: us(end - ts), PID: pid, TID: tid,
			}
			if sp.HasVirt && clock == ClockWall {
				ev.Args = map[string]any{"virt_start_s": sp.VirtStart.Seconds(), "virt_end_s": sp.VirtEnd.Seconds()}
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
