package trace

import (
	"fmt"
	"sync"
	"time"
)

// This file is the production tracing layer: hierarchical spans over one
// query's life in the serving stack, with both clocks the system runs on
// — wall time (what the hardware did) and virtual time (what the
// simulated storage did). The event Log above is the simulation's flat
// chronicle; QueryTrace is the per-request view a person debugging one
// slow query needs: admission queue wait, planning, prefetch, every
// segment fetch and decode, operator execution and the response drain,
// nested under one root.
//
// Tracing is pay-for-use. Every recording method is safe — and a
// near-free two-instruction exit — on a nil *QueryTrace, so the hot
// path carries no allocations and no time.Now calls when tracing is
// off; call sites that would build a label string guard on Enabled
// first. Recording is mutex-guarded, so decode workers and the prefetch
// proc may record concurrently with the query's own goroutine.

// Span categories, used as Chrome trace-event categories and for lane
// assignment in the viewer.
const (
	CatQuery     = "query"     // root: one per traced query
	CatAdmission = "admission" // queue wait for an execution slot
	CatPlan      = "plan"      // SQL text -> executable spec
	CatExecute   = "execute"   // the engine run, parent of the spans below
	CatPrefetch  = "prefetch"  // demand disclosure to the prefetcher
	CatFetch     = "fetch"     // one segment GET (demand path)
	CatDecode    = "decode"    // one segment decode
	CatStall     = "stall"     // client blocked awaiting an arrival
	CatRetry     = "retry"     // backoff + re-request after a retryable fault
	CatCycle     = "cycle"     // one MJoin request/arrival cycle
	CatOp        = "op"        // operator execution (shaping, drain)
	CatDrain     = "drain"     // response rendering and write-back
)

// Span is one timed piece of a traced query. Wall offsets are measured
// from the trace origin (the moment the request entered the server);
// virtual offsets are simulation time and present only when HasVirt is
// set — spans recorded outside a simulated run carry wall time alone.
type Span struct {
	// ID is unique within the trace; Parent is the enclosing span's ID
	// (0 for the root).
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	Cat    string `json:"cat"`
	Name   string `json:"name"`
	// WallStart/WallEnd are offsets from the trace origin.
	WallStart time.Duration `json:"wall_start_ns"`
	WallEnd   time.Duration `json:"wall_end_ns"`
	// VirtStart/VirtEnd are simulation-clock offsets, valid iff HasVirt.
	VirtStart time.Duration `json:"virt_start_ns,omitempty"`
	VirtEnd   time.Duration `json:"virt_end_ns,omitempty"`
	HasVirt   bool          `json:"has_virt,omitempty"`
	// Device labels work tied to one device of a multi-device fleet (a
	// retry or failover re-request). 0 means unlabeled — single-device
	// traces, the primary device, and device-agnostic spans render
	// exactly as before; the Chrome export gives each labeled device its
	// own lane set ("cat dN").
	Device int `json:"device,omitempty"`
}

// DefaultSpanLimit bounds one trace: a query over a large dataset
// records a span per segment fetch and decode, and an unbounded trace
// would turn a scan into an allocation storm. Past the limit spans are
// counted, not stored.
const DefaultSpanLimit = 8192

// QueryTrace accumulates the spans of one traced query. Construct with
// NewQueryTrace; a nil *QueryTrace ignores every call, which is how
// tracing-off paths stay free.
type QueryTrace struct {
	// ID is the trace identifier returned to the client (response
	// trace_id; retrievable with the TRACE verb).
	ID string
	// Tenant and SQL identify the traced request.
	Tenant int
	SQL    string

	mu      sync.Mutex
	origin  time.Time
	spans   []Span
	nextID  int
	phase   int // current parent for new spans
	limit   int
	dropped int
}

// NewQueryTrace starts a trace; the origin (wall zero) is now.
func NewQueryTrace(id string, tenant int, sqlText string) *QueryTrace {
	return &QueryTrace{
		ID:     id,
		Tenant: tenant,
		SQL:    sqlText,
		origin: time.Now(),
		limit:  DefaultSpanLimit,
	}
}

// Enabled reports whether spans are being recorded — the guard hot
// paths use before building label strings.
func (t *QueryTrace) Enabled() bool { return t != nil }

// Origin returns the trace's wall-clock zero.
func (t *QueryTrace) Origin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.origin
}

// alloc appends a span under the current phase and returns its ID.
// Caller holds mu.
func (t *QueryTrace) alloc(cat, name string) int {
	if len(t.spans) >= t.limit {
		t.dropped++
		return 0
	}
	t.nextID++
	t.spans = append(t.spans, Span{ID: t.nextID, Parent: t.phase, Cat: cat, Name: name})
	return t.nextID
}

// span returns the slot of an open span id (nil when dropped/unknown).
// Caller holds mu.
func (t *QueryTrace) span(id int) *Span {
	for i := len(t.spans) - 1; i >= 0; i-- {
		if t.spans[i].ID == id {
			return &t.spans[i]
		}
	}
	return nil
}

// Begin opens a span under the current phase and returns its handle.
// Safe on nil (returns 0; End(0) is a no-op).
func (t *QueryTrace) Begin(cat, name string) int {
	if t == nil {
		return 0
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.alloc(cat, name)
	if id != 0 {
		t.span(id).WallStart = now.Sub(t.origin)
	}
	return id
}

// BeginVirt is Begin with a virtual-clock start stamp.
func (t *QueryTrace) BeginVirt(cat, name string, virt time.Duration) int {
	if t == nil {
		return 0
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.alloc(cat, name)
	if id != 0 {
		sp := t.span(id)
		sp.WallStart = now.Sub(t.origin)
		sp.VirtStart, sp.HasVirt = virt, true
	}
	return id
}

// End closes a span opened by Begin/BeginVirt. Safe on nil and on id 0.
func (t *QueryTrace) End(id int) { t.EndVirt(id, -1) }

// EndVirt is End with a virtual-clock end stamp (virt < 0 leaves the
// virtual end at its start value).
func (t *QueryTrace) EndVirt(id int, virt time.Duration) {
	if t == nil || id == 0 {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.span(id); sp != nil {
		sp.WallEnd = now.Sub(t.origin)
		if sp.HasVirt {
			if virt >= 0 {
				sp.VirtEnd = virt
			} else {
				sp.VirtEnd = sp.VirtStart
			}
		}
	}
}

// BeginPhase opens a span and makes it the parent of subsequently
// recorded spans until EndPhase. Phases nest: EndPhase restores the
// phase that was current when BeginPhase ran.
func (t *QueryTrace) BeginPhase(cat, name string) int {
	if t == nil {
		return 0
	}
	id := t.Begin(cat, name)
	t.mu.Lock()
	if id != 0 {
		t.phase = id
	}
	t.mu.Unlock()
	return id
}

// BeginPhaseVirt is BeginPhase with a virtual-clock start stamp.
func (t *QueryTrace) BeginPhaseVirt(cat, name string, virt time.Duration) int {
	if t == nil {
		return 0
	}
	id := t.BeginVirt(cat, name, virt)
	t.mu.Lock()
	if id != 0 {
		t.phase = id
	}
	t.mu.Unlock()
	return id
}

// EndPhase closes a phase span and restores its parent as the current
// phase.
func (t *QueryTrace) EndPhase(id int) { t.EndPhaseVirt(id, -1) }

// EndPhaseVirt is EndPhase with a virtual-clock end stamp.
func (t *QueryTrace) EndPhaseVirt(id int, virt time.Duration) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	if sp := t.span(id); sp != nil && t.phase == id {
		t.phase = sp.Parent
	}
	t.mu.Unlock()
	t.EndVirt(id, virt)
}

// Emit records a completed wall-only span that started at wallStart —
// the one-call form for work that was timed anyway. Safe on nil, but
// call sites that build name strings should guard on Enabled first.
func (t *QueryTrace) Emit(cat, name string, wallStart time.Time) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if id := t.alloc(cat, name); id != 0 {
		sp := t.span(id)
		sp.WallStart = wallStart.Sub(t.origin)
		sp.WallEnd = now.Sub(t.origin)
	}
}

// EmitVirt records a completed span with explicit virtual bounds.
func (t *QueryTrace) EmitVirt(cat, name string, wallStart time.Time, virtFrom, virtTo time.Duration) {
	t.EmitVirtDev(cat, name, wallStart, virtFrom, virtTo, 0)
}

// EmitVirtDev is EmitVirt with a device label, for spans tied to one
// device of a multi-device fleet.
func (t *QueryTrace) EmitVirtDev(cat, name string, wallStart time.Time, virtFrom, virtTo time.Duration, device int) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if id := t.alloc(cat, name); id != 0 {
		sp := t.span(id)
		sp.WallStart = wallStart.Sub(t.origin)
		sp.WallEnd = now.Sub(t.origin)
		sp.VirtStart, sp.VirtEnd, sp.HasVirt = virtFrom, virtTo, true
		sp.Device = device
	}
}

// Spans returns a copy of the recorded spans, in recording order.
func (t *QueryTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans the limit discarded.
func (t *QueryTrace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SetLimit overrides the span cap (tests; 0 keeps the default).
func (t *QueryTrace) SetLimit(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Export is the wire shape of one completed trace: the TRACE verb's
// payload and the unit of Chrome export.
type Export struct {
	ID      string `json:"id"`
	Tenant  int    `json:"tenant"`
	SQL     string `json:"sql,omitempty"`
	Spans   []Span `json:"spans"`
	Dropped int    `json:"dropped,omitempty"`
}

// ExportTrace snapshots the trace for the wire.
func (t *QueryTrace) ExportTrace() *Export {
	if t == nil {
		return nil
	}
	return &Export{ID: t.ID, Tenant: t.Tenant, SQL: t.SQL, Spans: t.Spans(), Dropped: t.Dropped()}
}

// Summary renders a one-level accounting of the trace: per category,
// span count and total wall time — the quick look before opening the
// Chrome view.
func (e *Export) Summary() string {
	type agg struct {
		n    int
		wall time.Duration
	}
	byCat := map[string]*agg{}
	var cats []string
	for _, sp := range e.Spans {
		a := byCat[sp.Cat]
		if a == nil {
			a = &agg{}
			byCat[sp.Cat] = a
			cats = append(cats, sp.Cat)
		}
		a.n++
		a.wall += sp.WallEnd - sp.WallStart
	}
	out := fmt.Sprintf("trace %s (tenant %d, %d spans", e.ID, e.Tenant, len(e.Spans))
	if e.Dropped > 0 {
		out += fmt.Sprintf(", %d dropped", e.Dropped)
	}
	out += ")\n"
	for _, c := range cats {
		a := byCat[c]
		out += fmt.Sprintf("  %-10s %4d spans  %12s wall\n", c, a.n, a.wall.Round(time.Microsecond))
	}
	return out
}
