package mjoin

import (
	"errors"
	"testing"

	"repro/internal/segment"
)

// panicSource fails the test if the state manager touches the storage
// layer at all — the impossible-fit check must fire before any request.
type panicSource struct{ t *testing.T }

func (s *panicSource) Request(objs []segment.ObjectID) {
	s.t.Fatalf("Request(%v) issued despite impossible cache fit", objs)
}

func (s *panicSource) NextArrival() (*segment.Segment, error) {
	s.t.Fatal("NextArrival called despite impossible cache fit")
	return nil, nil
}

// TestCacheSmallerThanWidestSubplanFailsFast pins the impossible-fit
// bugfix: a cache budget below the widest subplan (one object per
// relation) must return a typed error immediately — zero cycles, zero
// GETs — instead of reissuing until Config.MaxCycles.
func TestCacheSmallerThanWidestSubplanFailsFast(t *testing.T) {
	cat, _ := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(10), perSeg: 5},
		{name: "b", col: "bk", keys: seqKeys(10), perSeg: 5},
		{name: "c", col: "ck", keys: seqKeys(10), perSeg: 5},
	})
	q := &Query{
		ID: "q",
		Relations: []Relation{
			{Table: cat.MustTable("a")},
			{Table: cat.MustTable("b")},
			{Table: cat.MustTable("c")},
		},
		Joins: []JoinCond{
			{Rel: 1, LeftCol: "ak", RightCol: "bk"},
			{Rel: 2, LeftCol: "bk", RightCol: "ck"},
		},
	}
	cfg := DefaultConfig(2) // widest subplan needs 3
	cfg.MaxCycles = 4       // would be the old failure point, many cycles later
	res, err := Run(q, cfg, &panicSource{t: t})
	if err == nil {
		t.Fatalf("Run succeeded with impossible cache fit (result %v)", res)
	}
	var tooSmall *CacheTooSmallError
	if !errors.As(err, &tooSmall) {
		t.Fatalf("error %v is not a CacheTooSmallError", err)
	}
	if tooSmall.CacheSize != 2 || tooSmall.Widest != 3 {
		t.Fatalf("error fields = %+v, want CacheSize 2, Widest 3", tooSmall)
	}
}
