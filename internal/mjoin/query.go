// Package mjoin implements Skipper's core contribution: a CSD-driven,
// cache-aware multi-way join (§4.1–§4.2). The traditional monolithic MJoin
// operator is split into a state manager and a stateless n-ary join: the
// state manager enumerates subplans (one per combination of segments
// across the query's relations), requests all needed objects upfront,
// executes subplans as out-of-order arrivals make them runnable, evicts
// under cache pressure with a progress-based policy, and reissues requests
// for evicted objects still needed by pending subplans.
package mjoin

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Relation is one input of the multi-way join.
type Relation struct {
	// Table provides the schema and backing objects.
	Table *catalog.TableMeta
	// Filter is the local predicate applied as tuples arrive (nil keeps
	// every row). Filtering at arrival both shrinks the cached state and
	// enables subplan pruning for clustered selectivity (§5.2.4).
	Filter expr.Expr
	// Pruner, when non-nil (and Config.StatsPruning on), lets the state
	// manager drop segments the catalog statistics prove result-free
	// under Filter before any CSD request is issued: their subplans are
	// retired upfront, so the objects never appear in a request cycle.
	Pruner stats.Pruner
	// Cols lists the schema columns the query references in this relation
	// (sorted; empty non-nil = none beyond the row count). nil decodes
	// every column — the conservative default. It only matters when the
	// source delivers lazily decoded v2 segments: arrivals then decode
	// exactly these column blocks and skip the rest. Columns outside the
	// set are zero-filled in the cached batches and must not be read by
	// Filter, the join conditions or the caller's shaping stage — the SQL
	// planner computes the set so that this holds.
	Cols []int
}

// JoinCond joins relation Rel (by index into Query.Relations) to the
// accumulated prefix of relations before it: LeftCol must resolve in the
// concatenated schema of relations[0..Rel-1], RightCol in relation Rel.
type JoinCond struct {
	// Rel indexes the relation this condition attaches (must be its
	// position in Query.Relations).
	Rel int
	// LeftCol names the key in the accumulated prefix schema; RightCol
	// names the key in relation Rel.
	LeftCol, RightCol string
}

// Query is a multi-way equi-join over R relations connected by R-1 join
// conditions (a join chain/tree flattened left-deep). Column names must be
// unique across relations (TPC-H style l_/o_ prefixes).
type Query struct {
	// ID tags the query in requests, traces and errors.
	ID string
	// Relations lists the join inputs; Relations[0] is the probe root.
	Relations []Relation
	// Joins holds the R-1 conditions, one per relation after the first.
	Joins []JoinCond
}

// Validate checks structural soundness and returns the output schema.
func (q *Query) Validate() (*tuple.Schema, error) {
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("mjoin: query %s has no relations", q.ID)
	}
	if len(q.Joins) != len(q.Relations)-1 {
		return nil, fmt.Errorf("mjoin: query %s has %d relations but %d join conditions", q.ID, len(q.Relations), len(q.Joins))
	}
	for ri, rel := range q.Relations {
		for _, ci := range rel.Cols {
			if ci < 0 || ci >= rel.Table.Schema.Len() {
				return nil, fmt.Errorf("mjoin: query %s relation %d: projected column %d out of range (%d columns)", q.ID, ri, ci, rel.Table.Schema.Len())
			}
		}
	}
	acc := q.Relations[0].Table.Schema
	for i, jc := range q.Joins {
		if jc.Rel != i+1 {
			return nil, fmt.Errorf("mjoin: join %d must attach relation %d, got %d", i, i+1, jc.Rel)
		}
		if _, ok := acc.ColIndex(jc.LeftCol); !ok {
			return nil, fmt.Errorf("mjoin: join %d: column %q not in accumulated schema %v", i, jc.LeftCol, acc.ColumnNames())
		}
		rs := q.Relations[jc.Rel].Table.Schema
		if _, ok := rs.ColIndex(jc.RightCol); !ok {
			return nil, fmt.Errorf("mjoin: join %d: column %q not in relation %q", i, jc.RightCol, q.Relations[jc.Rel].Table.Name)
		}
		acc = acc.Concat(rs)
	}
	return acc, nil
}

// OutputSchema returns the join output schema, panicking on an invalid
// query.
func (q *Query) OutputSchema() *tuple.Schema {
	s, err := q.Validate()
	if err != nil {
		panic(err)
	}
	return s
}

// Objects lists every object the query needs, relation by relation — the
// state manager's readObjectsFromCatalog step.
func (q *Query) Objects() []segment.ObjectID {
	var out []segment.ObjectID
	for _, r := range q.Relations {
		out = append(out, r.Table.Objects...)
	}
	return out
}

// NumSubplans returns the size of the subplan lattice: the product of the
// relations' segment counts.
func (q *Query) NumSubplans() int {
	n := 1
	for _, r := range q.Relations {
		n *= len(r.Table.Objects)
	}
	return n
}

// subplan identifies one combination of segment indices, one per relation.
type subplan []int

// key renders a canonical map key for the combination.
func (sp subplan) key() string {
	b := make([]byte, 0, len(sp)*3)
	for _, i := range sp {
		b = append(b, byte(i>>16), byte(i>>8), byte(i))
	}
	return string(b)
}

// enumerateSubplans materializes the full lattice in lexicographic order.
func enumerateSubplans(q *Query) []subplan {
	dims := make([]int, len(q.Relations))
	total := 1
	for i, r := range q.Relations {
		dims[i] = len(r.Table.Objects)
		total *= dims[i]
	}
	out := make([]subplan, 0, total)
	cur := make(subplan, len(dims))
	var rec func(d int)
	rec = func(d int) {
		if d == len(dims) {
			cp := make(subplan, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for i := 0; i < dims[d]; i++ {
			cur[d] = i
			rec(d + 1)
		}
	}
	rec(0)
	return out
}
