package mjoin

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/segment"
	"repro/internal/trace"
	"repro/internal/tuple"
)

// Source supplies objects out of order. The production implementation is
// the client proxy over the CSD; tests script arbitrary arrival orders.
type Source interface {
	// Request issues GETs for the given objects. The state manager calls
	// it once per cycle with every object still needed.
	Request(objs []segment.ObjectID)
	// NextArrival blocks until one requested object arrives (the source
	// delivers exactly one arrival per requested object per cycle) or the
	// storage layer fails the request, in which case it returns the
	// storage error and execution aborts.
	NextArrival() (*segment.Segment, error)
}

// CacheTooSmallError reports an impossible fit detected before the first
// request cycle: the cache budget cannot hold one object per relation,
// so the widest subplan could never have all its inputs resident and the
// reissue loop would spin to Config.MaxCycles without ever executing it.
type CacheTooSmallError struct {
	// CacheSize is the configured budget in objects.
	CacheSize int
	// Widest is the width of the widest subplan — one object per
	// relation of the query.
	Widest int
}

func (e *CacheTooSmallError) Error() string {
	return fmt.Sprintf("mjoin: cache of %d objects cannot hold the widest subplan (%d objects, one per relation)",
		e.CacheSize, e.Widest)
}

// Costs parametrizes virtual processing charges.
type Costs struct {
	// ProcessPerObject is charged on every arrival that is scanned into
	// the cache (including rescans of reissued objects). The paper's
	// Table 3 measures MJoin's per-object processing at ≈6% above the
	// vanilla engine's.
	ProcessPerObject time.Duration
}

// DefaultCosts mirrors Table 3: 433 s over 57 objects ≈ 7.6 s/object.
func DefaultCosts() Costs { return Costs{ProcessPerObject: 7600 * time.Millisecond} }

// Config controls one MJoin execution.
type Config struct {
	// CacheSize is the buffer capacity in objects; it must be at least
	// the number of relations or no subplan could ever run.
	CacheSize int
	// Policy picks eviction victims (default MaxProgress).
	Policy EvictionPolicy
	// Pruning marks subplans containing a result-free object as executed
	// and never refetches the object (§5.2.4). Default on.
	Pruning bool
	// StatsPruning enables data skipping from catalog statistics: before
	// the first request cycle, every segment a relation's Pruner proves
	// result-free is retired together with its subplans, so the object
	// is never requested at all — the static counterpart of the runtime
	// pruning above. Results are byte-identical either way.
	StatsPruning bool
	// Clock charges virtual processing time (default: no charging).
	Clock engine.Clock
	// Costs are the virtual charges.
	Costs Costs
	// MaxCycles bounds request-reissue cycles as a livelock guard.
	MaxCycles int
	// Parallelism is the worker count for subplan probe chains: chunks of
	// probe-root rows are expanded concurrently against the shared cache
	// entries. 0 or 1 selects the serial path; results are identical (and
	// identically ordered) at every setting.
	Parallelism int
	// DecodePool, when non-nil and the source also implements
	// TryArrivalSource, decodes arrivals on background workers so decode
	// overlaps probing in wall-clock time. Results are byte-identical to
	// the serial path (arrivals are still processed strictly in delivery
	// order) and virtual time is unchanged (only already-delivered
	// arrivals are picked up early, at zero virtual cost).
	DecodePool *engine.DecodePool
	// DecodeAhead bounds how many arrivals may sit decoded-or-decoding
	// ahead of the one being processed (default 2). Each slot holds one
	// reusable decode buffer.
	DecodeAhead int
	// Trace, when non-nil, receives per-cycle and per-arrival-decode
	// spans. Spans carry wall time only: the manager has no virtual-clock
	// handle of its own (charges go through Clock). nil records nothing.
	Trace *trace.QueryTrace
}

// DefaultConfig returns a Config with the paper's defaults for the given
// cache size.
func DefaultConfig(cacheSize int) Config {
	return Config{
		CacheSize:    cacheSize,
		Policy:       MaxProgress{},
		Pruning:      true,
		StatsPruning: true,
		Clock:        engine.NopClock{},
		MaxCycles:    1 << 20,
	}
}

// Stats reports what one execution did.
type Stats struct {
	Requests         int // GETs issued, including reissues (Fig 11b/c)
	Cycles           int // request/arrival cycles
	Arrivals         int // objects received
	Evictions        int // cache victims dropped under pressure
	SubplansTotal    int // subplans enumerated for the query
	SubplansExecuted int // subplans actually probed
	SubplansPruned   int // subplans skipped via result-free objects
	ObjectsSkipped   int // objects never requested: zone-map/Bloom data skipping
	SubplansSkipped  int // subplans retired by data skipping before any request
	ResultRows       int // join output cardinality
	// Byte accounting over lazily decoded arrivals (zero for in-memory
	// sources). Re-arrivals of reissued objects decode again and count
	// again — rescans are real work, exactly like the processing charge.
	BytesFetched             int64 // encoded size of scanned arrivals
	BytesDecoded             int64 // encoded block bytes decoded
	BytesSkippedByProjection int64 // block bytes skipped via Relation.Cols
	BytesMaterialized        int64 // logical bytes of decoded values
	// PinnedCycles counts cycles that ran with a designated subplan
	// pinned — i.e. how often the livelock escape hatch was needed.
	// Zero on the paper's workloads and delivery orders.
	PinnedCycles int
	// Pipe is the wall-clock pipeline accounting: real time spent blocked
	// on arrivals and decode versus decode time hidden behind probing.
	// The serial path fills it too (DecodeStall == DecodeBusy), so runs
	// with the pipeline on and off are directly comparable.
	Pipe engine.PipeStats
}

// Result bundles the join output with execution statistics.
type Result struct {
	// Schema describes the output rows (all relations concatenated).
	Schema *tuple.Schema
	// Rows is the join output, deterministic given the arrival order.
	Rows []tuple.Row
	// Stats reports what the execution did.
	Stats Stats
}

// objRef locates an object inside the query: relation and segment index.
type objRef struct {
	rel, seg int
}

// manager is the per-execution state (Algorithm 1).
type manager struct {
	q   *Query
	cfg Config
	src Source

	schema   *tuple.Schema
	probe    *probePlan
	objIndex map[segment.ObjectID]objRef
	objByRef map[objRef]segment.ObjectID

	// keyIdxByRel[rel] is the inbound join column of relation rel (the
	// column its cache-entry hash tables are keyed on), precomputed so
	// arrivals never resolve schema names; -1 for relation 0.
	keyIdxByRel []int
	// dop is the normalized Config.Parallelism (>= 1).
	dop int
	// arrivalCD is the reused projected-decode buffer for lazy arrivals;
	// cache entries copy out of it, so one buffer set serves every
	// (re)arrival. Only the serial receive path uses it.
	arrivalCD *segment.ColumnData
	// freeCD is the pipelined path's decode-buffer free list. Each
	// in-flight decode job owns exactly one buffer (popped at submit,
	// recycled after the job is waited on), so concurrent decodes never
	// share storage; steady state holds DecodeAhead+1 buffers.
	freeCD []*segment.ColumnData
	// scratches holds one probe-chain scratch per worker, reused across
	// arrivals and subplans; scratches[0] doubles as the serial path's
	// buffer set, and its hashBuf serves the vectorized cache-entry build.
	scratches []probeScratch

	pending      map[string]subplan
	pendingCount map[segment.ObjectID]int

	cache      map[segment.ObjectID]*cacheEntry
	cacheOrder []segment.ObjectID // arrival order, oldest first
	arrivalSeq map[segment.ObjectID]int
	seq        int

	stats Stats
	rows  []tuple.Row

	arriving segment.ObjectID // current arrival, for ExecutableCount

	// pinned marks the objects of one designated subplan after a cycle
	// that executed nothing. Pinned objects cannot be evicted and must
	// be cached on arrival, guaranteeing the designated subplan runs in
	// the next cycle. This closes a livelock the paper's greedy
	// heuristics leave open under adversarial arrival orders: with a
	// cache of exactly R objects, an unlucky delivery order can evict
	// every partially-assembled combination forever.
	pinned map[segment.ObjectID]bool
}

// Run executes the query to completion against the source.
func Run(q *Query, cfg Config, src Source) (*Result, error) {
	schema, err := q.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.CacheSize < len(q.Relations) {
		return nil, &CacheTooSmallError{CacheSize: cfg.CacheSize, Widest: len(q.Relations)}
	}
	if cfg.Policy == nil {
		cfg.Policy = MaxProgress{}
	}
	if cfg.Clock == nil {
		cfg.Clock = engine.NopClock{}
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 1 << 20
	}
	probe, err := buildProbePlan(q)
	if err != nil {
		return nil, err
	}
	m := &manager{
		q:            q,
		cfg:          cfg,
		src:          src,
		schema:       schema,
		probe:        probe,
		objIndex:     make(map[segment.ObjectID]objRef),
		objByRef:     make(map[objRef]segment.ObjectID),
		pending:      make(map[string]subplan),
		pendingCount: make(map[segment.ObjectID]int),
		cache:        make(map[segment.ObjectID]*cacheEntry),
		arrivalSeq:   make(map[segment.ObjectID]int),
	}
	m.dop = max(cfg.Parallelism, 1)
	m.scratches = make([]probeScratch, m.dop)
	m.keyIdxByRel = make([]int, len(q.Relations))
	m.keyIdxByRel[0] = -1
	for i, jc := range q.Joins {
		m.keyIdxByRel[i+1] = q.Relations[jc.Rel].Table.Schema.MustColIndex(jc.RightCol)
	}
	for ri, rel := range q.Relations {
		for si, id := range rel.Table.Objects {
			ref := objRef{rel: ri, seg: si}
			m.objIndex[id] = ref
			m.objByRef[ref] = id
		}
	}
	for _, sp := range enumerateSubplans(q) {
		m.pending[sp.key()] = sp
		for ri, si := range sp {
			m.pendingCount[m.objByRef[objRef{ri, si}]]++
		}
	}
	m.stats.SubplansTotal = len(m.pending)
	if cfg.StatsPruning {
		m.skipByStats()
	}
	if err := m.loop(); err != nil {
		return nil, err
	}
	m.stats.ResultRows = len(m.rows)
	return &Result{Schema: schema, Rows: m.rows, Stats: m.stats}, nil
}

// skipByStats retires, before the first request cycle, every subplan
// containing a segment its relation's Pruner proves result-free — the
// data-skipping counterpart of runtime subplan pruning (§5.2.4), with
// zone maps and Bloom filters standing in for fetching the object. The
// skipped objects never enter neededObjects, so no GET for them is ever
// enqueued at the CSD.
func (m *manager) skipByStats() {
	// Materialize per-relation skip sets once, then retire subplans in a
	// single pass over the pending map (the lattice can be large).
	skip := make([][]bool, len(m.q.Relations))
	any := false
	for ri, rel := range m.q.Relations {
		if rel.Pruner == nil {
			continue
		}
		set := make([]bool, len(rel.Table.Objects))
		for si := range set {
			if rel.Pruner.CanSkip(si) {
				set[si] = true
				m.stats.ObjectsSkipped++
				any = true
			}
		}
		skip[ri] = set
	}
	if !any {
		return
	}
	for key, sp := range m.pending {
		for ri, si := range sp {
			if skip[ri] != nil && skip[ri][si] {
				m.removePending(key, sp)
				m.stats.SubplansSkipped++
				break
			}
		}
	}
}

// loop is the outer request/receive cycle.
func (m *manager) loop() error {
	for len(m.pending) > 0 {
		if m.stats.Cycles >= m.cfg.MaxCycles {
			return fmt.Errorf("mjoin: no progress after %d cycles (%d subplans stuck)", m.stats.Cycles, len(m.pending))
		}
		m.stats.Cycles++
		var cycleSpan int
		if m.cfg.Trace.Enabled() {
			cycleSpan = m.cfg.Trace.Begin(trace.CatCycle, fmt.Sprintf("cycle %d", m.stats.Cycles))
		}
		toFetch := m.neededObjects()
		if len(toFetch) == 0 {
			// Everything needed is cached; finish the runnable work.
			m.executeAllRunnable()
			m.cfg.Trace.End(cycleSpan)
			if len(m.pending) > 0 {
				return fmt.Errorf("mjoin: %d subplans pending with all objects cached", len(m.pending))
			}
			return nil
		}
		m.src.Request(toFetch)
		m.stats.Requests += len(toFetch)
		if len(m.pinned) > 0 {
			m.stats.PinnedCycles++
		}
		execBefore := m.stats.SubplansExecuted + m.stats.SubplansPruned
		if err := m.receiveArrivals(len(toFetch)); err != nil {
			m.cfg.Trace.End(cycleSpan)
			return err
		}
		if m.stats.SubplansExecuted+m.stats.SubplansPruned == execBefore {
			m.pinDesignatedSubplan()
		} else {
			m.pinned = nil
		}
		m.cfg.Trace.End(cycleSpan)
	}
	return nil
}

// pinDesignatedSubplan selects the lexicographically smallest pending
// subplan and pins its objects so the next cycle is guaranteed to execute
// it (progress guarantee; see the pinned field).
func (m *manager) pinDesignatedSubplan() {
	var bestKey string
	for key := range m.pending {
		if bestKey == "" || key < bestKey {
			bestKey = key
		}
	}
	sp := m.pending[bestKey]
	m.pinned = make(map[segment.ObjectID]bool, len(sp))
	for ri, si := range sp {
		m.pinned[m.objByRef[objRef{ri, si}]] = true
	}
}

// neededObjects returns, deduplicated and in relation-then-segment order,
// every uncached object that some pending subplan requires.
func (m *manager) neededObjects() []segment.ObjectID {
	need := make(map[segment.ObjectID]bool)
	for _, sp := range m.pending {
		for ri, si := range sp {
			id := m.objByRef[objRef{ri, si}]
			if _, cached := m.cache[id]; !cached {
				need[id] = true
			}
		}
	}
	var out []segment.ObjectID
	for _, rel := range m.q.Relations {
		for _, id := range rel.Table.Objects {
			if need[id] {
				out = append(out, id)
			}
		}
	}
	return out
}

// processArrival folds one delivered object into the cache and runs every
// subplan it makes runnable. It fails on a corrupt arrival (lazy-store
// block decode), mirroring the vanilla scan path.
func (m *manager) processArrival(seg *segment.Segment) error {
	m.stats.Arrivals++
	id := seg.ID
	ref, known := m.objIndex[id]
	if !known {
		panic(fmt.Sprintf("mjoin: arrival of object %v not in query %s", id, m.q.ID))
	}
	if m.pendingCount[id] == 0 {
		// Raced with pruning/completion: no pending subplan needs it.
		return nil
	}
	// Scanning the object into a hash table costs processing time, every
	// time it (re)arrives.
	m.cfg.Clock.Sleep(m.cfg.Costs.ProcessPerObject)
	start := time.Now()
	batch, err := m.arrivalBatch(ref.rel, seg)
	d := time.Since(start)
	// Inline decode is both busy time and critical-path stall — the
	// pipeline-off baseline of the wall-clock accounting.
	m.stats.Pipe.DecodeBusy += d
	m.stats.Pipe.DecodeStall += d
	m.stats.Pipe.Decodes++
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.Emit(trace.CatDecode, id.String(), start)
	}
	if err != nil {
		return err
	}
	m.admitArrival(id, ref.rel, batch)
	return nil
}

// admitArrival folds one decoded arrival into the cache — pruning empty
// objects, evicting under pressure — and runs the subplans it makes
// runnable. Shared tail of the serial and pipelined receive paths.
func (m *manager) admitArrival(id segment.ObjectID, rel int, batch *tuple.Batch) {
	if _, cached := m.cache[id]; cached {
		// Redelivery of a resident object — a fault-recovery re-request
		// racing a coalesced transfer can hand the proxy the same object
		// twice. Admitting it again would append a duplicate cacheOrder
		// slot and corrupt eviction; just (re)run whatever it unblocks.
		m.executeRunnableWith(id)
		return
	}
	if m.cfg.Pruning && batch.Len() == 0 {
		m.pruneObject(id)
		return
	}
	if len(m.cache) >= m.cfg.CacheSize {
		candidates := m.cacheOrder
		if len(m.pinned) > 0 {
			candidates = nil
			for _, cid := range m.cacheOrder {
				if !m.pinned[cid] {
					candidates = append(candidates, cid)
				}
			}
			if len(candidates) == 0 {
				// Cache is entirely pinned. A pinned arrival always has
				// room (a subplan has at most CacheSize objects), so the
				// arrival must be unpinned: drop it and let a later
				// cycle refetch it.
				if m.pinned[id] {
					panic(fmt.Sprintf("mjoin: pinned arrival %v with fully pinned cache", id))
				}
				return
			}
		}
		m.arriving = id
		victim := m.cfg.Policy.PickVictim(candidates, id, m)
		m.evict(victim)
	}
	m.cache[id] = m.buildEntry(rel, batch)
	m.cacheOrder = append(m.cacheOrder, id)
	m.seq++
	m.arrivalSeq[id] = m.seq
	m.executeRunnableWith(id)
}

// pruneObject marks every pending subplan containing the object as pruned:
// the object contributes no tuples, so those subplans cannot produce
// results (§5.2.4).
func (m *manager) pruneObject(id segment.ObjectID) {
	ref := m.objIndex[id]
	for key, sp := range m.pending {
		if sp[ref.rel] == ref.seg {
			m.removePending(key, sp)
			m.stats.SubplansPruned++
		}
	}
}

// evict drops a cached object; subplans still needing it will trigger a
// reissue in a later cycle.
func (m *manager) evict(victim segment.ObjectID) {
	if _, ok := m.cache[victim]; !ok {
		panic(fmt.Sprintf("mjoin: policy picked non-cached victim %v", victim))
	}
	delete(m.cache, victim)
	for i, id := range m.cacheOrder {
		if id == victim {
			m.cacheOrder = append(m.cacheOrder[:i], m.cacheOrder[i+1:]...)
			break
		}
	}
	m.stats.Evictions++
}

// executeRunnableWith runs every pending subplan that contains id and
// whose objects are all cached. Only subplans containing the newest
// arrival can have become runnable.
func (m *manager) executeRunnableWith(id segment.ObjectID) {
	ref := m.objIndex[id]
	var runnable []string
	for key, sp := range m.pending {
		if sp[ref.rel] != ref.seg {
			continue
		}
		if m.allCached(sp) {
			runnable = append(runnable, key)
		}
	}
	m.executeKeys(runnable)
}

// executeAllRunnable runs every pending subplan whose objects are cached.
func (m *manager) executeAllRunnable() {
	var runnable []string
	for key, sp := range m.pending {
		if m.allCached(sp) {
			runnable = append(runnable, key)
		}
	}
	m.executeKeys(runnable)
}

// executeKeys runs the named subplans in lexicographic key order. The
// callers collect runnable keys by iterating the pending map, whose
// order is randomized per run; sorting here pins the execution order so
// a whole MJoin run — rows and row order included — is a deterministic
// function of the query and the arrival order, at any Parallelism.
func (m *manager) executeKeys(keys []string) {
	sort.Strings(keys)
	for _, key := range keys {
		sp, ok := m.pending[key]
		if !ok {
			continue
		}
		m.executeSubplan(sp)
		m.removePending(key, sp)
		m.stats.SubplansExecuted++
	}
}

func (m *manager) allCached(sp subplan) bool {
	for ri, si := range sp {
		if _, ok := m.cache[m.objByRef[objRef{ri, si}]]; !ok {
			return false
		}
	}
	return true
}

// removePending drops a subplan from the pending set and bookkeeping.
func (m *manager) removePending(key string, sp subplan) {
	delete(m.pending, key)
	for ri, si := range sp {
		m.pendingCount[m.objByRef[objRef{ri, si}]]--
	}
}

// PolicyInfo implementation.

// PendingCount implements PolicyInfo.
func (m *manager) PendingCount(id segment.ObjectID) int { return m.pendingCount[id] }

// ExecutableCounts implements PolicyInfo: one pass over the pending set
// tallying, per object, the subplans executable given cache ∪ {arriving}.
func (m *manager) ExecutableCounts() map[segment.ObjectID]int {
	counts := make(map[segment.ObjectID]int, len(m.cache)+1)
	ids := make([]segment.ObjectID, len(m.q.Relations))
	for _, sp := range m.pending {
		ok := true
		for ri, si := range sp {
			oid := m.objByRef[objRef{ri, si}]
			ids[ri] = oid
			if oid == m.arriving {
				continue
			}
			if _, cached := m.cache[oid]; !cached {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, oid := range ids {
			counts[oid]++
		}
	}
	return counts
}

// ArrivalSeq implements PolicyInfo.
func (m *manager) ArrivalSeq(id segment.ObjectID) int { return m.arrivalSeq[id] }
