package mjoin

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// This file implements the stateless n-ary join operator (§4.1): the
// state manager builds one hash table per cached object, keyed by the
// join column that attaches the object's relation to the chain, and
// subplan execution probes those tables directly — no per-subplan
// rebuild. Relation 0 (the probe root) needs no hash table.
//
// Execution is batch-at-a-time: cached rows live in columnar batches
// whose key column is hashed with one vectorized pass at build time, and
// probe chains advance level by level over slices of partial tuples, so
// the per-row work in the inner loop is a table lookup plus an equality
// check — no hashing, no schema lookups.
//
// With Config.Parallelism > 1 the probeChunk-sized root partitions of a
// subplan are claimed by a pool of workers, each expanding its chunks
// through the full probe chain with private scratch buffers against the
// shared (read-only) cache entries. Per-chunk outputs are stitched back
// in chunk order, so the result rows are byte-identical to the serial
// execution's, in the same order, at any DOP.

// probeChunk bounds how many root rows are expanded through the probe
// chain at once, keeping intermediate buffers cache-sized.
const probeChunk = 1024

// cacheEntry is the cached state of one arrived object: its filtered
// rows in columnar form plus the hash table on the relation's inbound
// join column.
type cacheEntry struct {
	batch *tuple.Batch
	// table maps hash(join-key) -> row indices into batch; nil for
	// relation 0.
	table map[uint64][]int32
	// keyIdx is the column the table is keyed on (RightCol of the
	// relation's JoinCond), -1 for relation 0.
	keyIdx int
}

// arrivalBytes is the byte accounting of one decoded arrival, kept out
// of Stats until the arrival is actually consumed: the pipelined path
// decodes speculatively and discards the accounting of arrivals no
// pending subplan needs (the serial path never decodes those at all).
type arrivalBytes struct {
	fetched, decoded, skippedByProjection, materialized int64
}

// addArrivalBytes folds one consumed arrival's byte accounting into Stats.
func (m *manager) addArrivalBytes(by arrivalBytes) {
	m.stats.BytesFetched += by.fetched
	m.stats.BytesDecoded += by.decoded
	m.stats.BytesSkippedByProjection += by.skippedByProjection
	m.stats.BytesMaterialized += by.materialized
}

// arrivalBatch is the serial decode step: decodeArrival against the
// manager's single reused buffer, with the byte accounting applied
// immediately.
func (m *manager) arrivalBatch(rel int, seg *segment.Segment) (*tuple.Batch, error) {
	batch, cd, by, err := m.decodeArrival(rel, seg, m.arrivalCD)
	if err != nil {
		return nil, err
	}
	if cd != nil {
		m.arrivalCD = cd
	}
	m.addArrivalBytes(by)
	return batch, nil
}

// decodeArrival turns one delivered segment into the filtered columnar
// batch a cache entry holds. Materialized segments filter their rows as
// before; lazily decoded segments decode only the relation's projected
// column blocks (Relation.Cols) and filter straight off the decoded
// columns — no intermediate Row materialization on the scan path.
// Everything cached is copied out of the decode buffer, so reuse can be
// recycled once the call returns. Decode errors (lazy stores validate
// headers at build time, block contents on first decode) surface as
// errors, like the vanilla scan path; filter failures still panic — the
// predicate was validated at plan time, so they indicate a bug.
//
// decodeArrival is a pure computation over immutable manager state (the
// query plan) plus the reuse buffer the caller hands over: it is safe to
// run on a decode-pool worker as long as each concurrent call owns a
// distinct reuse buffer.
func (m *manager) decodeArrival(rel int, seg *segment.Segment, reuse *segment.ColumnData) (*tuple.Batch, *segment.ColumnData, arrivalBytes, error) {
	var by arrivalBytes
	r := &m.q.Relations[rel]
	schema := r.Table.Schema
	if !seg.Lazy() {
		rows, err := filterRows(r.Filter, seg.Rows)
		if err != nil {
			panic(fmt.Sprintf("mjoin: filter on %v: %v", seg.ID, err))
		}
		return tuple.FromRows(schema, rows), nil, by, nil
	}
	cd, err := seg.DecodeColumns(schema, r.Cols, reuse)
	if err != nil {
		return nil, nil, by, fmt.Errorf("mjoin: decode %v: %w", seg.ID, err)
	}
	by = arrivalBytes{
		fetched:             seg.EncodedSize(),
		decoded:             cd.BytesDecoded,
		skippedByProjection: cd.BytesSkipped,
		materialized:        cd.BytesMaterialized,
	}
	batch := tuple.NewBatch(schema, cd.NumRows)
	if r.Filter == nil {
		batch.AppendColumns(cd.Cols, 0, cd.NumRows)
		return batch, cd, by, nil
	}
	// Evaluate the filter over a scratch row assembled per index; columns
	// outside the projection keep a fixed typed zero value (the planner
	// guarantees the filter never reads them).
	scratch := make(tuple.Row, schema.Len())
	for c := range cd.Cols {
		if cd.Cols[c] == nil {
			scratch[c] = tuple.Value{K: schema.Cols[c].Kind}
		}
	}
	for i := 0; i < cd.NumRows; i++ {
		for c := range cd.Cols {
			if cd.Cols[c] != nil {
				scratch[c] = cd.Cols[c][i]
			}
		}
		keep, err := expr.EvalBool(r.Filter, scratch)
		if err != nil {
			panic(fmt.Sprintf("mjoin: filter on %v: %v", seg.ID, err))
		}
		if keep {
			batch.AppendRow(scratch)
		}
	}
	return batch, cd, by, nil
}

// buildEntry constructs the cache entry for an arrival of relation rel.
// The key column index is precomputed per relation (m.keyIdxByRel), and
// the whole segment is hashed in one vectorized pass.
func (m *manager) buildEntry(rel int, batch *tuple.Batch) *cacheEntry {
	e := &cacheEntry{batch: batch, keyIdx: -1}
	if rel == 0 {
		return e
	}
	e.keyIdx = m.keyIdxByRel[rel]
	sc := &m.scratches[0]
	sc.hashBuf = e.batch.HashColumns([]int{e.keyIdx}, sc.hashBuf)
	e.table = make(map[uint64][]int32, e.batch.Len())
	for i, h := range sc.hashBuf {
		e.table[h] = append(e.table[h], int32(i))
	}
	return e
}

// probePlan precomputes, for each relation i>0, where the chain's left
// key lives in the accumulated partial tuple.
type probePlan struct {
	// leftIdx[i-1] is the offset of Joins[i-1].LeftCol within the
	// concatenation of relations 0..i-1.
	leftIdx []int
	// width[i] is the arity of relation i.
	width []int
}

func buildProbePlan(q *Query) (*probePlan, error) {
	pp := &probePlan{}
	acc := q.Relations[0].Table.Schema
	pp.width = append(pp.width, acc.Len())
	for i, jc := range q.Joins {
		idx, ok := acc.ColIndex(jc.LeftCol)
		if !ok {
			return nil, fmt.Errorf("mjoin: join %d: column %q not found in accumulated schema", i, jc.LeftCol)
		}
		pp.leftIdx = append(pp.leftIdx, idx)
		rs := q.Relations[jc.Rel].Table.Schema
		pp.width = append(pp.width, rs.Len())
		acc = acc.Concat(rs)
	}
	return pp, nil
}

// probeScratch is one worker's reusable probe-chain state: the hash
// buffer for the vectorized key pass and the two partial-tuple buffers
// ping-ponged across chain levels.
type probeScratch struct {
	hashBuf []uint64
	curBuf  []tuple.Row
	nextBuf []tuple.Row
}

// executeSubplan joins the subplan's cached segments by probing the
// per-object hash tables left to right, a batch of partial tuples at a
// time, and appends result tuples. With DOP > 1 and more than one chunk
// of root rows, the chunks run on a worker pool.
func (m *manager) executeSubplan(sp subplan) {
	entries := make([]*cacheEntry, len(sp))
	for ri, si := range sp {
		id := m.objByRef[objRef{ri, si}]
		e, ok := m.cache[id]
		if !ok {
			panic(fmt.Sprintf("mjoin: executing subplan with uncached object %v", id))
		}
		if e.batch.Len() == 0 {
			return // an empty leg cannot produce output
		}
		entries[ri] = e
	}
	root := entries[0].batch
	nChunks := (root.Len() + probeChunk - 1) / probeChunk
	if m.dop <= 1 || nChunks <= 1 {
		for start := 0; start < root.Len(); start += probeChunk {
			end := min(start+probeChunk, root.Len())
			m.probeLevels(entries, root, start, end, &m.scratches[0], &m.rows)
		}
		return
	}
	// Parallel path: workers claim chunk indices off a shared counter and
	// expand them with private scratch; results land in per-chunk slots
	// and are appended in chunk order, matching the serial output exactly.
	results := make([][]tuple.Row, nChunks)
	var nextChunk atomic.Int32
	var wg sync.WaitGroup
	workers := min(m.dop, nChunks)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &m.scratches[w]
			for {
				c := int(nextChunk.Add(1)) - 1
				if c >= nChunks {
					return
				}
				start := c * probeChunk
				end := min(start+probeChunk, root.Len())
				m.probeLevels(entries, root, start, end, sc, &results[c])
			}
		}(w)
	}
	wg.Wait()
	for _, rs := range results {
		m.rows = append(m.rows, rs...)
	}
}

// probeLevels expands root rows [start, end) through every probe level,
// appending the surviving full-width tuples to *sink. All mutable state
// lives in sc and sink, so concurrent calls over disjoint chunks with
// distinct scratches are race-free; entries and the probe plan are only
// read.
func (m *manager) probeLevels(entries []*cacheEntry, root *tuple.Batch, start, end int, sc *probeScratch, sink *[]tuple.Row) {
	cur := sc.curBuf[:0]
	for i := start; i < end; i++ {
		cur = append(cur, root.Row(i))
	}
	next := sc.nextBuf[:0]
	for depth := 1; depth < len(entries) && len(cur) > 0; depth++ {
		e := entries[depth]
		keyIdx := m.probe.leftIdx[depth-1]
		width := m.probe.width[depth]
		// One vectorized pass hashes every partial's key; the inner loop
		// below only looks up and verifies.
		sc.hashBuf = tuple.HashRowsKey(cur, keyIdx, sc.hashBuf)
		keyCol := e.batch.Col(e.keyIdx)
		next = next[:0]
		for i, p := range cur {
			key := p[keyIdx]
			for _, mi := range e.table[sc.hashBuf[i]] {
				mv := keyCol[mi]
				if mv.K != key.K || !tuple.Equal(key, mv) {
					continue // hash collision
				}
				combined := make(tuple.Row, 0, len(p)+width)
				combined = append(combined, p...)
				combined = e.batch.AppendRowTo(combined, int(mi))
				next = append(next, combined)
			}
		}
		cur, next = next, cur
	}
	*sink = append(*sink, cur...)
	// Hand the (possibly grown) buffers back for reuse. After the swaps,
	// cur's backing array holds the emitted row headers; the sink slice
	// copied them, so both arrays are safe to recycle.
	sc.curBuf, sc.nextBuf = cur[:0], next[:0]
}

// filterRows applies the relation's local predicate.
func filterRows(pred expr.Expr, rows []tuple.Row) ([]tuple.Row, error) {
	if pred == nil {
		return rows, nil
	}
	var out []tuple.Row
	for _, r := range rows {
		keep, err := expr.EvalBool(pred, r)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}
