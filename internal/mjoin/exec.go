package mjoin

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/tuple"
)

// This file implements the stateless n-ary join operator (§4.1): the
// state manager builds one hash table per cached object, keyed by the
// join column that attaches the object's relation to the chain, and
// subplan execution probes those tables directly — no per-subplan
// rebuild. Relation 0 (the probe root) needs no hash table.

// cacheEntry is the cached state of one arrived object: its filtered
// rows plus the hash table on the relation's inbound join column.
type cacheEntry struct {
	rows []tuple.Row
	// table maps hash(join-key) -> rows; nil for relation 0.
	table map[uint64][]tuple.Row
	// keyIdx is the column the table is keyed on (RightCol of the
	// relation's JoinCond), -1 for relation 0.
	keyIdx int
}

// buildEntry constructs the cache entry for an arrival of relation rel.
func (m *manager) buildEntry(rel int, rows []tuple.Row) *cacheEntry {
	e := &cacheEntry{rows: rows, keyIdx: -1}
	if rel == 0 {
		return e
	}
	jc := m.q.Joins[rel-1]
	schema := m.q.Relations[rel].Table.Schema
	e.keyIdx = schema.MustColIndex(jc.RightCol)
	e.table = make(map[uint64][]tuple.Row, len(rows))
	for _, r := range rows {
		h := r[e.keyIdx].Hash()
		e.table[h] = append(e.table[h], r)
	}
	return e
}

// probePlan precomputes, for each relation i>0, where the chain's left
// key lives in the accumulated partial tuple.
type probePlan struct {
	// leftIdx[i-1] is the offset of Joins[i-1].LeftCol within the
	// concatenation of relations 0..i-1.
	leftIdx []int
	// width[i] is the arity of relation i.
	width []int
}

func buildProbePlan(q *Query) (*probePlan, error) {
	pp := &probePlan{}
	acc := q.Relations[0].Table.Schema
	pp.width = append(pp.width, acc.Len())
	for i, jc := range q.Joins {
		idx, ok := acc.ColIndex(jc.LeftCol)
		if !ok {
			return nil, fmt.Errorf("mjoin: join %d: column %q not found in accumulated schema", i, jc.LeftCol)
		}
		pp.leftIdx = append(pp.leftIdx, idx)
		rs := q.Relations[jc.Rel].Table.Schema
		pp.width = append(pp.width, rs.Len())
		acc = acc.Concat(rs)
	}
	return pp, nil
}

// executeSubplan joins the subplan's cached segments by probing the
// per-object hash tables left to right and appends result tuples.
func (m *manager) executeSubplan(sp subplan) {
	entries := make([]*cacheEntry, len(sp))
	for ri, si := range sp {
		id := m.objByRef[objRef{ri, si}]
		e, ok := m.cache[id]
		if !ok {
			panic(fmt.Sprintf("mjoin: executing subplan with uncached object %v", id))
		}
		if len(e.rows) == 0 {
			return // an empty leg cannot produce output
		}
		entries[ri] = e
	}
	// Depth-first probe without materializing intermediate relations.
	partial := make(tuple.Row, 0, 64)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(entries) {
			out := make(tuple.Row, len(partial))
			copy(out, partial)
			m.rows = append(m.rows, out)
			return
		}
		e := entries[depth]
		keyIdx := m.probe.leftIdx[depth-1]
		key := partial[keyIdx]
		for _, match := range e.table[key.Hash()] {
			mv := match[e.keyIdx]
			if mv.K != key.K || !tuple.Equal(key, mv) {
				continue // hash collision
			}
			partial = append(partial, match...)
			rec(depth + 1)
			partial = partial[:len(partial)-len(match)]
		}
	}
	for _, root := range entries[0].rows {
		partial = append(partial[:0], root...)
		rec(1)
	}
}

// filterRows applies the relation's local predicate.
func filterRows(pred expr.Expr, rows []tuple.Row) ([]tuple.Row, error) {
	if pred == nil {
		return rows, nil
	}
	var out []tuple.Row
	for _, r := range rows {
		keep, err := expr.EvalBool(pred, r)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}
