package mjoin

import (
	"testing"

	"repro/internal/segment"
)

// dupSource wraps scriptSource and delivers the first object of every
// request batch twice — the shape a fault-recovery re-request racing a
// coalesced transfer hands the state manager: a duplicate arrival of an
// object that is already resident. The manager consumes exactly one
// arrival per requested object, so the extra delivery stays queued and
// shifts the next cycle's arrivals — each cycle's tail object then
// arrives at the head of the following cycle, which is also legal.
type dupSource struct {
	scriptSource
	dups int
}

func (s *dupSource) Request(objs []segment.ObjectID) {
	if len(objs) >= 1 {
		objs = append([]segment.ObjectID{objs[0]}, objs...)
		s.dups++
	}
	s.scriptSource.Request(objs)
}

// TestRedeliveredArrivalNotDoubleAdmitted pins the double-admit guard:
// before it, a duplicate arrival of a cached object appended a second
// cacheOrder slot, and the stale slot later surfaced as a non-cached
// eviction victim (panic) or broke the cache-size accounting. With the
// guard, redeliveries are folded in as no-ops and results still match
// the pull-engine baseline, with and without cache pressure.
func TestRedeliveredArrivalNotDoubleAdmitted(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(40), perSeg: 5}, // 8 segments
		{name: "b", col: "bk", keys: seqKeys(40), perSeg: 5}, // 8 segments
	})
	q := twoWayQuery(cat)
	want := baselineJoin(t, q, store)
	for _, cache := range []int{3, 100} {
		src := &dupSource{scriptSource: scriptSource{store: store}}
		res, err := Run(q, DefaultConfig(cache), src)
		if err != nil {
			t.Fatalf("cache %d: %v", cache, err)
		}
		if src.dups == 0 {
			t.Fatalf("cache %d: source injected no duplicate deliveries — test is vacuous", cache)
		}
		if !equalMultisets(res.Rows, want) {
			t.Fatalf("cache %d: result mismatch with duplicate deliveries (%d vs %d rows)", cache, len(res.Rows), len(want))
		}
	}
}
