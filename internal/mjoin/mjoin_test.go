package mjoin

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// scriptSource feeds arrivals from an in-memory store, permuted by a
// configurable ordering function (identity by default).
type scriptSource struct {
	store map[segment.ObjectID]*segment.Segment
	order func(objs []segment.ObjectID) []segment.ObjectID
	queue []*segment.Segment
}

func (s *scriptSource) Request(objs []segment.ObjectID) {
	ordered := objs
	if s.order != nil {
		ordered = s.order(append([]segment.ObjectID(nil), objs...))
	}
	for _, id := range ordered {
		sg, ok := s.store[id]
		if !ok {
			panic(fmt.Sprintf("scriptSource: unknown object %v", id))
		}
		s.queue = append(s.queue, sg)
	}
}

func (s *scriptSource) NextArrival() (*segment.Segment, error) {
	if len(s.queue) == 0 {
		panic("scriptSource: NextArrival with empty queue")
	}
	sg := s.queue[0]
	s.queue = s.queue[1:]
	return sg, nil
}

// buildRelation creates a table of (key, payload) rows.
type relSpec struct {
	name   string
	col    string // key column name (unique across relations)
	keys   []int64
	perSeg int
}

func buildDB(t testing.TB, specs []relSpec) (*catalog.Catalog, map[segment.ObjectID]*segment.Segment) {
	t.Helper()
	cat := catalog.New(0)
	store := make(map[segment.ObjectID]*segment.Segment)
	for _, spec := range specs {
		sch := tuple.NewSchema(
			tuple.Column{Name: spec.col, Kind: tuple.KindInt64},
			tuple.Column{Name: spec.col + "_tag", Kind: tuple.KindString},
		)
		rows := make([]tuple.Row, len(spec.keys))
		for i, k := range spec.keys {
			rows[i] = tuple.Row{tuple.Int(k), tuple.Str(fmt.Sprintf("%s%d", spec.name, i))}
		}
		segs := segment.Split(0, spec.name, rows, spec.perSeg, 1e9)
		for _, sg := range segs {
			store[sg.ID] = sg
		}
		cat.MustAddTable(spec.name, sch, segs)
	}
	return cat, store
}

func seqKeys(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// canon renders rows as a sorted multiset fingerprint.
func canon(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func equalMultisets(a, b []tuple.Row) bool {
	ca, cb := canon(a), canon(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// baselineJoin computes the expected result with the pull-based engine.
func baselineJoin(t testing.TB, q *Query, store map[segment.ObjectID]*segment.Segment) []tuple.Row {
	t.Helper()
	ctx := engine.NewTestCtx(store)
	its := make([]engine.Iterator, len(q.Relations))
	for i, rel := range q.Relations {
		var it engine.Iterator = engine.NewSeqScan(ctx, rel.Table)
		if rel.Filter != nil {
			it = engine.NewFilter(it, rel.Filter)
		}
		its[i] = it
	}
	it := its[0]
	for i, jc := range q.Joins {
		it = engine.JoinOn(it, its[i+1], [][2]string{{jc.LeftCol, jc.RightCol}})
	}
	rows, err := engine.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func twoWayQuery(cat *catalog.Catalog) *Query {
	return &Query{
		ID: "q2",
		Relations: []Relation{
			{Table: cat.MustTable("a")},
			{Table: cat.MustTable("b")},
		},
		Joins: []JoinCond{{Rel: 1, LeftCol: "ak", RightCol: "bk"}},
	}
}

func TestMJoinMatchesBaselineLargeCache(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(30), perSeg: 5},
		{name: "b", col: "bk", keys: seqKeys(30), perSeg: 6},
	})
	q := twoWayQuery(cat)
	src := &scriptSource{store: store}
	res, err := Run(q, DefaultConfig(100), src)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineJoin(t, q, store)
	if !equalMultisets(res.Rows, want) {
		t.Fatalf("mjoin %d rows != baseline %d rows", len(res.Rows), len(want))
	}
	if res.Stats.Cycles != 1 {
		t.Fatalf("cycles = %d, want 1", res.Stats.Cycles)
	}
	if res.Stats.Requests != 11 { // 6 + 5 segments
		t.Fatalf("requests = %d, want 11", res.Stats.Requests)
	}
	if res.Stats.Evictions != 0 {
		t.Fatalf("evictions = %d", res.Stats.Evictions)
	}
	if res.Stats.SubplansExecuted != res.Stats.SubplansTotal {
		t.Fatalf("executed %d of %d subplans", res.Stats.SubplansExecuted, res.Stats.SubplansTotal)
	}
}

func TestMJoinSmallCacheReissues(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(40), perSeg: 5}, // 8 segments
		{name: "b", col: "bk", keys: seqKeys(40), perSeg: 5}, // 8 segments
	})
	q := twoWayQuery(cat)
	src := &scriptSource{store: store}
	res, err := Run(q, DefaultConfig(3), src)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineJoin(t, q, store)
	if !equalMultisets(res.Rows, want) {
		t.Fatalf("mjoin result mismatch under cache pressure")
	}
	if res.Stats.Requests <= 16 {
		t.Fatalf("requests = %d, expected reissues beyond the 16 objects", res.Stats.Requests)
	}
	if res.Stats.Evictions == 0 {
		t.Fatal("expected evictions under cache pressure")
	}
}

func TestMJoinThreeWayChain(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "k", keys: seqKeys(12), perSeg: 4},
		{name: "b", col: "k2", keys: seqKeys(12), perSeg: 3},
		{name: "c", col: "k3", keys: seqKeys(12), perSeg: 6},
	})
	q := &Query{
		ID: "q3",
		Relations: []Relation{
			{Table: cat.MustTable("a")},
			{Table: cat.MustTable("b")},
			{Table: cat.MustTable("c")},
		},
		Joins: []JoinCond{
			{Rel: 1, LeftCol: "k", RightCol: "k2"},
			{Rel: 2, LeftCol: "k2", RightCol: "k3"},
		},
	}
	for _, cache := range []int{3, 4, 7, 50} {
		src := &scriptSource{store: store}
		res, err := Run(q, DefaultConfig(cache), src)
		if err != nil {
			t.Fatalf("cache %d: %v", cache, err)
		}
		want := baselineJoin(t, q, store)
		if !equalMultisets(res.Rows, want) {
			t.Fatalf("cache %d: result mismatch (%d vs %d rows)", cache, len(res.Rows), len(want))
		}
	}
}

func TestMJoinWithFiltersMatchesBaseline(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(30), perSeg: 5},
		{name: "b", col: "bk", keys: seqKeys(30), perSeg: 5},
	})
	aSch := cat.MustTable("a").Schema
	bSch := cat.MustTable("b").Schema
	q := &Query{
		ID: "qf",
		Relations: []Relation{
			{Table: cat.MustTable("a"), Filter: expr.ColGE(aSch, "ak", tuple.Int(10))},
			{Table: cat.MustTable("b"), Filter: expr.ColLT(bSch, "bk", tuple.Int(20))},
		},
		Joins: []JoinCond{{Rel: 1, LeftCol: "ak", RightCol: "bk"}},
	}
	src := &scriptSource{store: store}
	res, err := Run(q, DefaultConfig(4), src)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineJoin(t, q, store)
	if !equalMultisets(res.Rows, want) {
		t.Fatalf("filtered mjoin mismatch: %d vs %d rows", len(res.Rows), len(want))
	}
	// keys 10..19 join: 10 rows
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
}

func TestPruningSkipsDeadObjects(t *testing.T) {
	// Relation a: keys 0..29 in 6 segments of 5; filter keeps only keys
	// < 5, i.e. only segment 0 of a has matching rows. With pruning, the
	// other 5 segments are pruned on first arrival and never refetched.
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(30), perSeg: 5},
		{name: "b", col: "bk", keys: seqKeys(30), perSeg: 5},
	})
	aSch := cat.MustTable("a").Schema
	mkQuery := func() *Query {
		return &Query{
			ID: "qp",
			Relations: []Relation{
				{Table: cat.MustTable("a"), Filter: expr.ColLT(aSch, "ak", tuple.Int(5))},
				{Table: cat.MustTable("b")},
			},
			Joins: []JoinCond{{Rel: 1, LeftCol: "ak", RightCol: "bk"}},
		}
	}

	cfgOn := DefaultConfig(3)
	srcOn := &scriptSource{store: store}
	resOn, err := Run(mkQuery(), cfgOn, srcOn)
	if err != nil {
		t.Fatal(err)
	}

	cfgOff := DefaultConfig(3)
	cfgOff.Pruning = false
	srcOff := &scriptSource{store: store}
	resOff, err := Run(mkQuery(), cfgOff, srcOff)
	if err != nil {
		t.Fatal(err)
	}

	if !equalMultisets(resOn.Rows, resOff.Rows) {
		t.Fatal("pruning changed the result")
	}
	if len(resOn.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(resOn.Rows))
	}
	if resOn.Stats.SubplansPruned == 0 {
		t.Fatal("no subplans pruned")
	}
	if resOn.Stats.Requests >= resOff.Stats.Requests {
		t.Fatalf("pruning did not reduce requests: %d vs %d", resOn.Stats.Requests, resOff.Stats.Requests)
	}
}

func TestCacheTooSmallRejected(t *testing.T) {
	cat, _ := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(4), perSeg: 2},
		{name: "b", col: "bk", keys: seqKeys(4), perSeg: 2},
	})
	q := twoWayQuery(cat)
	if _, err := Run(q, DefaultConfig(1), &scriptSource{}); err == nil {
		t.Fatal("cache smaller than relation count accepted")
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	cat, _ := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(4), perSeg: 2},
		{name: "b", col: "bk", keys: seqKeys(4), perSeg: 2},
	})
	q := &Query{
		ID:        "bad",
		Relations: []Relation{{Table: cat.MustTable("a")}, {Table: cat.MustTable("b")}},
		Joins:     []JoinCond{{Rel: 1, LeftCol: "nope", RightCol: "bk"}},
	}
	if _, err := Run(q, DefaultConfig(10), &scriptSource{}); err == nil {
		t.Fatal("bad join column accepted")
	}
	q2 := &Query{ID: "bad2", Relations: []Relation{{Table: cat.MustTable("a")}}, Joins: []JoinCond{{Rel: 1}}}
	if _, err := Run(q2, DefaultConfig(10), &scriptSource{}); err == nil {
		t.Fatal("join-count mismatch accepted")
	}
}

func TestGetCountMonotoneInCacheSize(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(36), perSeg: 6},
		{name: "b", col: "bk", keys: seqKeys(36), perSeg: 6},
	})
	q := twoWayQuery(cat)
	prev := int(^uint(0) >> 1)
	for _, cache := range []int{2, 3, 4, 6, 8, 12} {
		src := &scriptSource{store: store}
		res, err := Run(q, DefaultConfig(cache), src)
		if err != nil {
			t.Fatalf("cache %d: %v", cache, err)
		}
		if res.Stats.Requests > prev {
			t.Fatalf("requests grew with cache size: cache %d -> %d GETs (prev %d)", cache, res.Stats.Requests, prev)
		}
		prev = res.Stats.Requests
	}
}

// TestMJoinRandomizedEquivalence is the core correctness property: for
// random databases, cache sizes, arrival orders and eviction policies,
// MJoin produces exactly the pull-based engine's join result.
func TestMJoinRandomizedEquivalence(t *testing.T) {
	policies := []EvictionPolicy{MaxProgress{}, MaxPending{}, LRU{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nrels := 2 + rng.Intn(2)
		specs := make([]relSpec, nrels)
		for i := range specs {
			n := 4 + rng.Intn(20)
			keys := make([]int64, n)
			for j := range keys {
				keys[j] = int64(rng.Intn(12)) // dense keys: many matches
			}
			specs[i] = relSpec{
				name:   string(rune('a' + i)),
				col:    fmt.Sprintf("k%d", i),
				keys:   keys,
				perSeg: 1 + rng.Intn(5),
			}
		}
		cat, store := buildDB(t, specs)
		rels := make([]Relation, nrels)
		joins := make([]JoinCond, nrels-1)
		for i, spec := range specs {
			rels[i] = Relation{Table: cat.MustTable(spec.name)}
			if i > 0 {
				joins[i-1] = JoinCond{Rel: i, LeftCol: fmt.Sprintf("k%d", i-1), RightCol: fmt.Sprintf("k%d", i)}
			}
		}
		q := &Query{ID: "rand", Relations: rels, Joins: joins}
		want := baselineJoin(t, q, store)

		cfg := DefaultConfig(nrels + rng.Intn(8))
		cfg.Policy = policies[rng.Intn(len(policies))]
		cfg.Pruning = rng.Intn(2) == 0
		src := &scriptSource{store: store, order: func(objs []segment.ObjectID) []segment.ObjectID {
			rng.Shuffle(len(objs), func(i, j int) { objs[i], objs[j] = objs[j], objs[i] })
			return objs
		}}
		res, err := Run(q, cfg, src)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !equalMultisets(res.Rows, want) {
			t.Logf("seed %d: %d rows vs baseline %d (policy %s, cache %d)",
				seed, len(res.Rows), len(want), cfg.Policy.Name(), cfg.CacheSize)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// fakeInfo scripts PolicyInfo for direct policy tests.
type fakeInfo struct {
	pending    map[segment.ObjectID]int
	executable map[segment.ObjectID]int
	seq        map[segment.ObjectID]int
}

func (f fakeInfo) PendingCount(id segment.ObjectID) int       { return f.pending[id] }
func (f fakeInfo) ExecutableCounts() map[segment.ObjectID]int { return f.executable }
func (f fakeInfo) ArrivalSeq(id segment.ObjectID) int         { return f.seq[id] }

func obj(table string, idx int) segment.ObjectID {
	return segment.ObjectID{Table: table, Index: idx}
}

// TestPaperTable2Example reproduces §4.2's worked example: cache holds
// (A.1, B.1, A.2, C.3), C.1 arrives; executable counts are A.1=1, A.2=1,
// B.1=2, C.3=0; max-progress must evict C.3, while max-pending would
// consider B.1 and C.3 (both at 2 pending) and picks the first-arrived.
func TestPaperTable2Example(t *testing.T) {
	cached := []segment.ObjectID{obj("A", 1), obj("B", 1), obj("A", 2), obj("C", 3)}
	info := fakeInfo{
		pending:    map[segment.ObjectID]int{obj("C", 1): 4, obj("A", 1): 3, obj("A", 2): 3, obj("B", 1): 2, obj("C", 3): 2},
		executable: map[segment.ObjectID]int{obj("A", 1): 1, obj("A", 2): 1, obj("B", 1): 2, obj("C", 3): 0},
		seq:        map[segment.ObjectID]int{obj("A", 1): 1, obj("B", 1): 2, obj("A", 2): 3, obj("C", 3): 4},
	}
	if v := (MaxProgress{}).PickVictim(cached, obj("C", 1), info); v != obj("C", 3) {
		t.Fatalf("max-progress evicted %v, want C.3", v)
	}
	v := (MaxPending{}).PickVictim(cached, obj("C", 1), info)
	if v != obj("B", 1) && v != obj("C", 3) {
		t.Fatalf("max-pending evicted %v, want B.1 or C.3", v)
	}
	if v := (LRU{}).PickVictim(cached, obj("C", 1), info); v != obj("A", 1) {
		t.Fatalf("lru evicted %v, want A.1", v)
	}
}

func TestNumSubplans(t *testing.T) {
	cat, _ := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(10), perSeg: 5}, // 2 segs
		{name: "b", col: "bk", keys: seqKeys(9), perSeg: 3},  // 3 segs
	})
	q := twoWayQuery(cat)
	if n := q.NumSubplans(); n != 6 {
		t.Fatalf("subplans = %d, want 6", n)
	}
}

// TestReissueModelShape checks §5.2.4's analytical trend: the number of
// cycles grows as the cache shrinks, roughly like (R·S/C)^(R-1).
func TestReissueModelShape(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(64), perSeg: 8}, // 8 segs
		{name: "b", col: "bk", keys: seqKeys(64), perSeg: 8}, // 8 segs
	})
	q := twoWayQuery(cat)
	cycles := map[int]int{}
	for _, cache := range []int{2, 4, 8, 16} {
		src := &scriptSource{store: store}
		res, err := Run(q, DefaultConfig(cache), src)
		if err != nil {
			t.Fatal(err)
		}
		cycles[cache] = res.Stats.Cycles
	}
	if !(cycles[2] >= cycles[4] && cycles[4] >= cycles[8] && cycles[8] >= cycles[16]) {
		t.Fatalf("cycles not monotone: %v", cycles)
	}
	if cycles[16] != 1 {
		t.Fatalf("full cache should finish in one cycle, got %d", cycles[16])
	}
	if cycles[2] < 2 {
		t.Fatalf("tiny cache should need multiple cycles, got %d", cycles[2])
	}
}
