package mjoin

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/segment"
	"repro/internal/tuple"
)

// The parallel differential suite: Config.Parallelism must never change
// what an MJoin execution produces. Because chunk outputs are stitched
// back in chunk order, the guarantee here is stronger than multiset
// equality — rows, row order and every statistic must be identical at
// DOP 1, 2 and 8, for in-order and scrambled arrival orders alike.

// parallelDOPs mirrors the engine suite's DOP grid.
var parallelDOPs = []int{1, 2, 8}

// runAtDOP executes q at the given parallelism over a fresh source whose
// arrival order is scripted by mkOrder (nil = request order).
func runAtDOP(t *testing.T, q *Query, cache, dop int, store map[segment.ObjectID]*segment.Segment,
	mkOrder func() func([]segment.ObjectID) []segment.ObjectID) *Result {
	t.Helper()
	cfg := DefaultConfig(cache)
	cfg.Parallelism = dop
	src := &scriptSource{store: store}
	if mkOrder != nil {
		src.order = mkOrder()
	}
	res, err := Run(q, cfg, src)
	if err != nil {
		t.Fatalf("dop %d: %v", dop, err)
	}
	return res
}

// TestMJoinParallelMatchesSerialScrambled: for random 3-way chains with
// dense (many-match) keys, large root segments (several probe chunks)
// and shuffled arrival orders, the DOP>1 executions must reproduce the
// serial rows exactly, in order, with identical stats.
func TestMJoinParallelMatchesSerialScrambled(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// A large relation 0 so subplans span multiple probeChunk chunks:
		// the parallel path only engages past one chunk of root rows.
		specs := []relSpec{
			{name: "a", col: "k0", keys: denseKeys(rng, 2500, 40), perSeg: 1500},
			{name: "b", col: "k1", keys: denseKeys(rng, 60, 40), perSeg: 25},
			{name: "c", col: "k2", keys: denseKeys(rng, 50, 40), perSeg: 20},
		}
		cat, store := buildDB(t, specs)
		q := &Query{
			ID: "par",
			Relations: []Relation{
				{Table: cat.MustTable("a")},
				{Table: cat.MustTable("b")},
				{Table: cat.MustTable("c")},
			},
			Joins: []JoinCond{
				{Rel: 1, LeftCol: "k0", RightCol: "k1"},
				{Rel: 2, LeftCol: "k1", RightCol: "k2"},
			},
		}
		cache := 3 + rng.Intn(4)
		for _, scramble := range []bool{false, true} {
			// Each DOP run rebuilds the same shuffle sequence so arrival
			// orders match across runs.
			var mkOrder func() func([]segment.ObjectID) []segment.ObjectID
			if scramble {
				mkOrder = func() func([]segment.ObjectID) []segment.ObjectID {
					srng := rand.New(rand.NewSource(seed * 31))
					return func(objs []segment.ObjectID) []segment.ObjectID {
						srng.Shuffle(len(objs), func(i, j int) { objs[i], objs[j] = objs[j], objs[i] })
						return objs
					}
				}
			}
			serial := runAtDOP(t, q, cache, 1, store, mkOrder)
			if len(serial.Rows) == 0 {
				t.Fatalf("seed %d: serial run produced no rows; test is vacuous", seed)
			}
			for _, dop := range parallelDOPs[1:] {
				par := runAtDOP(t, q, cache, dop, store, mkOrder)
				if !statsEqualIgnoringPipe(par.Stats, serial.Stats) {
					t.Fatalf("seed %d scramble=%v dop %d: stats diverge: %+v vs %+v",
						seed, scramble, dop, par.Stats, serial.Stats)
				}
				if !reflect.DeepEqual(renderInOrder(par.Rows), renderInOrder(serial.Rows)) {
					t.Fatalf("seed %d scramble=%v dop %d: rows diverge (%d vs %d)",
						seed, scramble, dop, len(par.Rows), len(serial.Rows))
				}
			}
		}
	}
}

// denseKeys draws n keys from a small domain so chains multiply matches.
func denseKeys(rng *rand.Rand, n, domain int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(domain))
	}
	return out
}

// renderInOrder renders rows positionally (no sorting): parallel MJoin
// must preserve the serial row order, not just the multiset.
func renderInOrder(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}
