package mjoin

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/segment"
	"repro/internal/trace"
	"repro/internal/tuple"
)

// This file implements the pipelined arrival path: when Config.DecodePool
// is set and the source supports non-blocking receipt, arrivals that the
// storage layer has already delivered are picked up early and handed to
// background decode workers, so decoding one object overlaps probing the
// previous one in wall-clock time.
//
// Two invariants keep the pipelined path byte-identical to the serial
// one, in both results and virtual timing:
//
//  1. Virtual structure is preserved exactly. Lookahead uses only
//     TryNextArrival, which never blocks and costs no virtual time; the
//     manager blocks on NextArrival only when it would have blocked
//     serially (nothing decoded or decoding in hand), and the per-object
//     processing charge is paid when the arrival is consumed, in strict
//     delivery order — the same interleaving of waits and charges the
//     serial loop produces.
//  2. Speculation is invisible. An arrival decoded ahead of time may turn
//     out to be unneeded by the time it is processed (an earlier arrival
//     pruned its subplans). Its decode output, byte accounting, and even
//     its decode error are discarded wholesale — the serial path would
//     never have decoded it.

// TryArrivalSource is a Source that can additionally report an arrival
// that is already available without blocking. The client proxy
// implements it over its buffered delivery channel; in-memory test
// sources implement it trivially.
type TryArrivalSource interface {
	Source
	// TryNextArrival returns (seg, true, nil) if a requested object has
	// already been delivered, (nil, false, nil) if receiving would block,
	// and a non-nil error if the storage layer failed the request.
	TryNextArrival() (*segment.Segment, bool, error)
}

// decodedArrival is one slot of the receive window: a delivered segment
// together with its in-flight (or completed) speculative decode.
type decodedArrival struct {
	seg *segment.Segment
	// Outputs of the decode job; owned by the worker until t is waited on.
	batch *tuple.Batch
	cd    *segment.ColumnData
	bytes arrivalBytes
	err   error
	// t is the decode ticket; nil when the decode was skipped (no pending
	// subplan needed the object at submit time).
	t *engine.DecodeTicket
	// srcErr is a storage-layer failure; the slot carries no segment.
	srcErr error
}

// receiveArrivals consumes exactly n arrivals from the source, in
// delivery order, dispatching to the pipelined path when configured.
func (m *manager) receiveArrivals(n int) error {
	if m.cfg.DecodePool != nil {
		if try, ok := m.src.(TryArrivalSource); ok {
			return m.receiveArrivalsPipelined(n, try)
		}
	}
	for i := 0; i < n; i++ {
		start := time.Now()
		seg, err := m.src.NextArrival()
		m.stats.Pipe.FetchStall += time.Since(start)
		if err != nil {
			return fmt.Errorf("mjoin: arrival: %w", err)
		}
		if err := m.processArrival(seg); err != nil {
			return err
		}
	}
	return nil
}

// receiveArrivalsPipelined consumes n arrivals with a bounded
// decode-ahead window: already-delivered arrivals are drained without
// blocking and submitted to the decode pool; consumption stays in strict
// delivery order.
func (m *manager) receiveArrivalsPipelined(n int, try TryArrivalSource) error {
	depth := m.cfg.DecodeAhead
	if depth <= 0 {
		depth = 2
	}
	received := 0
	var window []*decodedArrival
	// fill drains already-delivered arrivals (zero virtual cost) until
	// the window holds the arrival being processed plus depth lookahead.
	fill := func() {
		for received < n && len(window) <= depth {
			seg, ok, err := try.TryNextArrival()
			if err != nil {
				received++
				window = append(window, &decodedArrival{srcErr: err})
				return
			}
			if !ok {
				return
			}
			received++
			window = append(window, m.submitArrival(seg))
		}
	}
	for processed := 0; processed < n; processed++ {
		fill()
		if len(window) == 0 {
			// Nothing in hand: block exactly where the serial loop would.
			start := time.Now()
			seg, err := m.src.NextArrival()
			m.stats.Pipe.FetchStall += time.Since(start)
			received++
			if err != nil {
				window = append(window, &decodedArrival{srcErr: err})
			} else {
				window = append(window, m.submitArrival(seg))
				fill() // the virtual wait may have delivered more
			}
		}
		da := window[0]
		copy(window, window[1:])
		window = window[:len(window)-1]
		if err := m.processDecoded(da); err != nil {
			m.drainWindow(window)
			return err
		}
	}
	return nil
}

// submitArrival starts the speculative decode of one delivered segment.
// The decode is skipped (t == nil) when no pending subplan needs the
// object — pendingCount only ever decreases, so the arrival is already
// guaranteed to be discarded at process time.
func (m *manager) submitArrival(seg *segment.Segment) *decodedArrival {
	da := &decodedArrival{seg: seg}
	ref, known := m.objIndex[seg.ID]
	if !known || m.pendingCount[seg.ID] == 0 {
		return da // processDecoded panics (unknown) or discards (unneeded)
	}
	var reuse *segment.ColumnData
	if seg.Lazy() {
		if k := len(m.freeCD); k > 0 {
			reuse, m.freeCD = m.freeCD[k-1], m.freeCD[:k-1]
		}
	}
	rel := ref.rel
	var name string
	if m.cfg.Trace.Enabled() {
		name = seg.ID.String()
	}
	da.t = m.cfg.DecodePool.Submit(func() {
		t0 := time.Now()
		da.batch, da.cd, da.bytes, da.err = m.decodeArrival(rel, seg, reuse)
		// Recording from the pool worker is safe: the trace is
		// mutex-guarded, and the span carries wall time only.
		if m.cfg.Trace.Enabled() {
			m.cfg.Trace.Emit(trace.CatDecode, name, t0)
		}
	})
	return da
}

// processDecoded consumes one window slot in delivery order: the exact
// serial processArrival semantics, with the decode result coming from
// the worker instead of being computed inline.
func (m *manager) processDecoded(da *decodedArrival) error {
	if da.srcErr != nil {
		return fmt.Errorf("mjoin: arrival: %w", da.srcErr)
	}
	m.stats.Arrivals++
	id := da.seg.ID
	ref, known := m.objIndex[id]
	if !known {
		panic(fmt.Sprintf("mjoin: arrival of object %v not in query %s", id, m.q.ID))
	}
	if m.pendingCount[id] == 0 {
		// Raced with pruning/completion: discard the speculative decode
		// entirely — output, byte accounting, and error alike. The serial
		// path returns before decoding here.
		if da.t != nil {
			da.t.Wait()
			m.recycleCD(da.cd)
		}
		return nil
	}
	m.cfg.Clock.Sleep(m.cfg.Costs.ProcessPerObject)
	if da.t != nil {
		if da.t.Ready() {
			m.stats.Pipe.DecodesOverlapped++
		}
		m.stats.Pipe.DecodeStall += da.t.Wait()
		m.stats.Pipe.DecodeBusy += da.t.Busy
		m.stats.Pipe.Decodes++
	} else {
		// Unreachable in practice (pendingCount never increases), kept as
		// a correct fallback: decode inline, like the serial path.
		start := time.Now()
		da.batch, da.cd, da.bytes, da.err = m.decodeArrival(ref.rel, da.seg, nil)
		d := time.Since(start)
		m.stats.Pipe.DecodeBusy += d
		m.stats.Pipe.DecodeStall += d
		m.stats.Pipe.Decodes++
	}
	if da.err != nil {
		return da.err
	}
	m.addArrivalBytes(da.bytes)
	m.recycleCD(da.cd) // cache entries copied out of it during decode
	m.admitArrival(id, ref.rel, da.batch)
	return nil
}

// recycleCD returns a decode buffer to the free list.
func (m *manager) recycleCD(cd *segment.ColumnData) {
	if cd != nil {
		m.freeCD = append(m.freeCD, cd)
	}
}

// drainWindow waits out the in-flight decodes of an abandoned window
// (error abort), so no worker is still writing manager-reachable
// buffers after Run returns.
func (m *manager) drainWindow(window []*decodedArrival) {
	for _, da := range window {
		if da.t != nil {
			da.t.Wait()
			m.recycleCD(da.cd)
		}
	}
}
