package mjoin

import (
	"fmt"
	"testing"

	"repro/internal/segment"
)

// adversarialSource delivers arrivals in an order crafted to starve a
// minimal cache: within each cycle it returns all of relation a before
// any of relation b, reversed on alternating cycles, which historically
// livelocked the greedy eviction policies.
type adversarialSource struct {
	store map[segment.ObjectID]*segment.Segment
	queue []*segment.Segment
	cycle int
}

func (s *adversarialSource) Request(objs []segment.ObjectID) {
	s.cycle++
	byTable := map[string][]segment.ObjectID{}
	var tables []string
	for _, id := range objs {
		if _, ok := byTable[id.Table]; !ok {
			tables = append(tables, id.Table)
		}
		byTable[id.Table] = append(byTable[id.Table], id)
	}
	if s.cycle%2 == 0 {
		for i, j := 0, len(tables)-1; i < j; i, j = i+1, j-1 {
			tables[i], tables[j] = tables[j], tables[i]
		}
	}
	for _, tbl := range tables {
		for _, id := range byTable[tbl] {
			s.queue = append(s.queue, s.store[id])
		}
	}
}

func (s *adversarialSource) NextArrival() (*segment.Segment, error) {
	sg := s.queue[0]
	s.queue = s.queue[1:]
	return sg, nil
}

// TestPinningBreaksLivelock runs LRU (the most thrash-prone policy) at the
// minimal legal cache size against the adversarial order. Without the
// designated-subplan pinning the state manager loops forever; with it the
// join completes and matches the baseline.
func TestPinningBreaksLivelock(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(24), perSeg: 4}, // 6 segments
		{name: "b", col: "bk", keys: seqKeys(24), perSeg: 4}, // 6 segments
	})
	q := twoWayQuery(cat)
	cfg := DefaultConfig(2) // exactly one object per relation
	cfg.Policy = LRU{}
	cfg.MaxCycles = 10000
	src := &adversarialSource{store: store}
	res, err := Run(q, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineJoin(t, q, store)
	if !equalMultisets(res.Rows, want) {
		t.Fatalf("result mismatch: %d vs %d rows", len(res.Rows), len(want))
	}
	if res.Stats.SubplansExecuted != 36 {
		t.Fatalf("executed %d subplans, want 36", res.Stats.SubplansExecuted)
	}
	// Termination bound: with one guaranteed subplan per pinned cycle,
	// cycles stay well under the worst case of 2 per subplan.
	if res.Stats.Cycles > 2*36+2 {
		t.Fatalf("cycles %d exceed the pinning progress bound", res.Stats.Cycles)
	}
	if res.Stats.PinnedCycles == 0 {
		t.Fatal("adversarial order should have engaged the pinning escape hatch")
	}
}

// TestNoPinningOnCooperativeOrder: with the semantic round-robin style
// delivery (the paper's setting) pinning never engages.
func TestNoPinningOnCooperativeOrder(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(24), perSeg: 4},
		{name: "b", col: "bk", keys: seqKeys(24), perSeg: 4},
	})
	q := twoWayQuery(cat)
	// scriptSource delivers in request order; the state manager requests
	// relation-by-relation, which at cache 4 still makes progress every
	// cycle via executable pairs.
	src := &scriptSource{store: store, order: func(objs []segment.ObjectID) []segment.ObjectID {
		// Interleave relations: a.0, b.0, a.1, b.1, ... (semantic order).
		var as, bs, out []segment.ObjectID
		for _, id := range objs {
			if id.Table == "a" {
				as = append(as, id)
			} else {
				bs = append(bs, id)
			}
		}
		for i := 0; i < len(as) || i < len(bs); i++ {
			if i < len(as) {
				out = append(out, as[i])
			}
			if i < len(bs) {
				out = append(out, bs[i])
			}
		}
		return out
	}}
	res, err := Run(q, DefaultConfig(4), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PinnedCycles != 0 {
		t.Fatalf("pinning engaged %d times on a cooperative order", res.Stats.PinnedCycles)
	}
}

// TestPinningAllPoliciesTerminate sweeps tight caches and policies under
// the adversarial order: everything must finish and agree.
func TestPinningAllPoliciesTerminate(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(15), perSeg: 3},
		{name: "b", col: "bk", keys: seqKeys(15), perSeg: 3},
		{name: "c", col: "ck", keys: seqKeys(15), perSeg: 5},
	})
	q := &Query{
		ID: "q3",
		Relations: []Relation{
			{Table: cat.MustTable("a")},
			{Table: cat.MustTable("b")},
			{Table: cat.MustTable("c")},
		},
		Joins: []JoinCond{
			{Rel: 1, LeftCol: "ak", RightCol: "bk"},
			{Rel: 2, LeftCol: "bk", RightCol: "ck"},
		},
	}
	want := baselineJoin(t, q, store)
	for _, pol := range []EvictionPolicy{MaxProgress{}, MaxPending{}, LRU{}} {
		for cache := 3; cache <= 5; cache++ {
			cfg := DefaultConfig(cache)
			cfg.Policy = pol
			cfg.MaxCycles = 100000
			src := &adversarialSource{store: store}
			res, err := Run(q, cfg, src)
			if err != nil {
				t.Fatalf("%s cache %d: %v", pol.Name(), cache, err)
			}
			if !equalMultisets(res.Rows, want) {
				t.Fatalf("%s cache %d: wrong result", pol.Name(), cache)
			}
		}
	}
}

func TestPolicyNamesAndDefaults(t *testing.T) {
	names := map[string]bool{}
	for _, pol := range []EvictionPolicy{MaxProgress{}, MaxPending{}, LRU{}} {
		n := pol.Name()
		if n == "" || names[n] {
			t.Fatalf("bad policy name %q", n)
		}
		names[n] = true
	}
	if DefaultCosts().ProcessPerObject <= 0 {
		t.Fatal("default costs zero")
	}
}

func TestQueryAccessors(t *testing.T) {
	cat, _ := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(6), perSeg: 2}, // 3 segments
		{name: "b", col: "bk", keys: seqKeys(4), perSeg: 2}, // 2 segments
	})
	q := twoWayQuery(cat)
	if got := len(q.Objects()); got != 5 {
		t.Fatalf("objects %d", got)
	}
	sch := q.OutputSchema()
	if sch.Len() != 4 { // ak, ak_tag, bk, bk_tag
		t.Fatalf("output schema %v", sch)
	}
	bad := &Query{ID: "bad"}
	defer func() {
		if recover() == nil {
			t.Fatal("OutputSchema of invalid query did not panic")
		}
	}()
	bad.OutputSchema()
}

// TestReissueCountFollowsModel sanity-checks §5.2.4's analytical claim
// that with cache C the number of cycles scales like (R·S/C)^(R-1) for R
// relations of S segments: halving the cache should at least double the
// 2-relation cycle count in the reissue-bound regime.
func TestReissueCountFollowsModel(t *testing.T) {
	const segs = 12
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(segs * 2), perSeg: 2},
		{name: "b", col: "bk", keys: seqKeys(segs * 2), perSeg: 2},
	})
	q := twoWayQuery(cat)
	cycles := func(cache int) int {
		src := &scriptSource{store: store}
		res, err := Run(q, DefaultConfig(cache), src)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	c4, c8 := cycles(4), cycles(8)
	if c4 < 2*c8-2 {
		t.Fatalf("cycles(4)=%d vs cycles(8)=%d: halving cache did not ~double cycles (%s)",
			c4, c8, fmt.Sprintf("model predicts ~%d", 2*c8))
	}
}
