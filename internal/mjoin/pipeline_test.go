package mjoin

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// tryScriptSource extends scriptSource with non-blocking receipt. To
// exercise both the lookahead and the blocking path, every third Try
// pretends the delivery has not happened yet.
type tryScriptSource struct {
	scriptSource
	calls int
}

func (s *tryScriptSource) TryNextArrival() (*segment.Segment, bool, error) {
	s.calls++
	if len(s.queue) == 0 || s.calls%3 == 0 {
		return nil, false, nil
	}
	sg, err := s.NextArrival()
	return sg, true, err
}

// lazyDB rebuilds a buildDB store with lazily decoded v2 segments, so
// arrivals actually exercise the decode path.
func lazyDB(t testing.TB, specs []relSpec) (*catalog.Catalog, map[segment.ObjectID]*segment.Segment) {
	t.Helper()
	cat, store := buildDB(t, specs)
	lazyCat := catalog.New(0)
	lazyStore := make(map[segment.ObjectID]*segment.Segment)
	for _, spec := range specs {
		tm := cat.MustTable(spec.name)
		lazy := make([]*segment.Segment, len(tm.Objects))
		for i, id := range tm.Objects {
			data, err := store[id].EncodeFormat(tm.Schema, segment.FormatV2)
			if err != nil {
				t.Fatal(err)
			}
			lz, err := segment.DecodeLazy(tm.Schema, data)
			if err != nil {
				t.Fatal(err)
			}
			lazy[i] = lz
			lazyStore[lz.ID] = lz
		}
		lazyCat.MustAddTable(spec.name, tm.Schema, lazy)
	}
	return lazyCat, lazyStore
}

// statsEqualIgnoringPipe compares two Stats with the wall-clock pipeline
// accounting (real time, nondeterministic) zeroed out.
func statsEqualIgnoringPipe(a, b Stats) bool {
	a.Pipe, b.Pipe = engine.PipeStats{}, engine.PipeStats{}
	return reflect.DeepEqual(a, b)
}

// TestMJoinPipelinedIdentical is the decode-ahead differential: with the
// decode pool on, results (rows AND order), virtual stats, and byte
// accounting must be identical to the serial path — across scrambled
// arrival orders, cache pressure (reissues + evictions), runtime
// pruning, probe parallelism, and both materialized and lazy stores.
func TestMJoinPipelinedIdentical(t *testing.T) {
	pool := engine.NewDecodePool(4)
	defer pool.Close()

	specs := []relSpec{
		{name: "a", col: "ak", keys: seqKeys(40), perSeg: 5},
		{name: "b", col: "bk", keys: seqKeys(40), perSeg: 4},
	}
	for _, lazy := range []bool{false, true} {
		var cat *catalog.Catalog
		var store map[segment.ObjectID]*segment.Segment
		if lazy {
			cat, store = lazyDB(t, specs)
		} else {
			cat, store = buildDB(t, specs)
		}
		aSch := cat.MustTable("a").Schema
		mkQuery := func() *Query {
			return &Query{
				ID: "qp",
				Relations: []Relation{
					{Table: cat.MustTable("a"), Filter: expr.ColLT(aSch, "ak", tuple.Int(25))},
					{Table: cat.MustTable("b")},
				},
				Joins: []JoinCond{{Rel: 1, LeftCol: "ak", RightCol: "bk"}},
			}
		}
		scramble := func(seed int64) func([]segment.ObjectID) []segment.ObjectID {
			return func(objs []segment.ObjectID) []segment.ObjectID {
				rng := rand.New(rand.NewSource(seed))
				rng.Shuffle(len(objs), func(i, j int) { objs[i], objs[j] = objs[j], objs[i] })
				return objs
			}
		}
		for _, cache := range []int{3, 100} {
			for _, dop := range []int{1, 4} {
				for _, prune := range []bool{false, true} {
					cfg := DefaultConfig(cache)
					cfg.Pruning = prune
					cfg.Parallelism = dop
					serial, err := Run(mkQuery(), cfg,
						&scriptSource{store: store, order: scramble(7)})
					if err != nil {
						t.Fatal(err)
					}

					cfgP := cfg
					cfgP.DecodePool = pool
					cfgP.DecodeAhead = 3
					piped, err := Run(mkQuery(), cfgP,
						&tryScriptSource{scriptSource: scriptSource{store: store, order: scramble(7)}})
					if err != nil {
						t.Fatal(err)
					}

					label := fmt.Sprintf("lazy=%v cache=%d dop=%d prune=%v", lazy, cache, dop, prune)
					if !reflect.DeepEqual(serial.Rows, piped.Rows) {
						t.Fatalf("%s: pipelined rows diverge (%d vs %d)", label, len(serial.Rows), len(piped.Rows))
					}
					if !statsEqualIgnoringPipe(serial.Stats, piped.Stats) {
						t.Fatalf("%s: stats diverge\nserial: %+v\npiped:  %+v", label, serial.Stats, piped.Stats)
					}
					if piped.Stats.Pipe.Decodes == 0 {
						t.Fatalf("%s: pipelined run recorded no decodes", label)
					}
					if serial.Stats.Pipe.DecodeStall != serial.Stats.Pipe.DecodeBusy {
						t.Fatalf("%s: serial baseline stall != busy", label)
					}
				}
			}
		}
	}
}

// failingSource delivers good arrivals until fail, then errors — via
// both the blocking and non-blocking receive.
type failingSource struct {
	tryScriptSource
	failAfter int
	delivered int
	errOut    error
}

func (s *failingSource) NextArrival() (*segment.Segment, error) {
	if s.delivered >= s.failAfter {
		return nil, s.errOut
	}
	s.delivered++
	return s.tryScriptSource.NextArrival()
}

func (s *failingSource) TryNextArrival() (*segment.Segment, bool, error) {
	if s.delivered >= s.failAfter {
		return nil, false, s.errOut
	}
	sg, ok, err := s.tryScriptSource.TryNextArrival()
	if ok {
		s.delivered++
	}
	return sg, ok, err
}

// TestMJoinPipelinedSourceError pins the error path: a storage failure
// mid-cycle aborts the run with the wrapped error, after the arrivals
// delivered before it were processed; in-flight decodes are drained, so
// the shared pool stays usable.
func TestMJoinPipelinedSourceError(t *testing.T) {
	pool := engine.NewDecodePool(2)
	defer pool.Close()
	cat, store := lazyDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(20), perSeg: 4},
		{name: "b", col: "bk", keys: seqKeys(20), perSeg: 4},
	})
	q := &Query{
		ID: "qerr",
		Relations: []Relation{
			{Table: cat.MustTable("a")},
			{Table: cat.MustTable("b")},
		},
		Joins: []JoinCond{{Rel: 1, LeftCol: "ak", RightCol: "bk"}},
	}
	boom := errors.New("csd: scheduler contract violated")
	src := &failingSource{
		tryScriptSource: tryScriptSource{scriptSource: scriptSource{store: store}},
		failAfter:       3,
		errOut:          boom,
	}
	cfg := DefaultConfig(100)
	cfg.DecodePool = pool
	cfg.DecodeAhead = 4
	_, err := Run(q, cfg, src)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	// The pool must still work after the aborted run.
	done := pool.Submit(func() {})
	done.Wait()
}
