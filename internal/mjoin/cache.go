package mjoin

import (
	"repro/internal/segment"
)

// PolicyInfo exposes the state manager's bookkeeping to eviction policies.
// The state manager has full visibility of cache contents (columnar
// cache entries with per-object hash tables; see cacheEntry in exec.go)
// and pending subplans, which is exactly what the paper's greedy
// heuristics exploit.
type PolicyInfo interface {
	// PendingCount returns the number of pending (unexecuted, unpruned)
	// subplans that include the object.
	PendingCount(id segment.ObjectID) int
	// ExecutableCounts returns, for every object, the number of pending
	// subplans that include it and whose every object is present in
	// cache ∪ {arriving}. Objects absent from the map have count zero.
	// Computed in one pass over the pending set per eviction decision.
	ExecutableCounts() map[segment.ObjectID]int
	// ArrivalSeq returns a monotone sequence number of the object's most
	// recent arrival (for FIFO/LRU tie-breaking).
	ArrivalSeq(id segment.ObjectID) int
}

// EvictionPolicy picks which cached object to drop to admit an arrival.
type EvictionPolicy interface {
	// Name identifies the policy in stats, traces and benchmarks.
	Name() string
	// PickVictim returns one element of cached. cached is non-empty and
	// ordered by arrival (oldest first).
	PickVictim(cached []segment.ObjectID, arriving segment.ObjectID, info PolicyInfo) segment.ObjectID
}

// MaxProgress is the paper's final policy (§4.2 "Maximal progress"): evict
// the object participating in the fewest executable subplans given the
// current cache state and the arriving object; break ties by fewest
// pending subplans, then FIFO. A side effect is that small relations,
// whose objects participate in many subplans, stay pinned — automatically
// favouring star-schema dimension tables.
type MaxProgress struct{}

// Name implements EvictionPolicy.
func (MaxProgress) Name() string { return "max-progress" }

// PickVictim implements EvictionPolicy: fewest executable subplans,
// then fewest pending, then FIFO.
func (MaxProgress) PickVictim(cached []segment.ObjectID, _ segment.ObjectID, info PolicyInfo) segment.ObjectID {
	exec := info.ExecutableCounts()
	victim := cached[0]
	bestExec, bestPend := exec[victim], info.PendingCount(victim)
	for _, id := range cached[1:] {
		e, p := exec[id], info.PendingCount(id)
		if e < bestExec || (e == bestExec && p < bestPend) {
			victim, bestExec, bestPend = id, e, p
		}
	}
	return victim
}

// MaxPending is the paper's first cut (§4.2 "Maximal number of pending
// subplans"): evict the object with the fewest pending subplans. It stalls
// at low cache capacities because it ignores what is actually executable
// right now.
type MaxPending struct{}

// Name implements EvictionPolicy.
func (MaxPending) Name() string { return "max-pending" }

// PickVictim implements EvictionPolicy: fewest pending subplans wins.
func (MaxPending) PickVictim(cached []segment.ObjectID, _ segment.ObjectID, info PolicyInfo) segment.ObjectID {
	victim := cached[0]
	best := info.PendingCount(victim)
	for _, id := range cached[1:] {
		if p := info.PendingCount(id); p < best {
			victim, best = id, p
		}
	}
	return victim
}

// LRU evicts the least-recently-arrived object — the baseline ablation
// showing that storage-oblivious caching wastes reissues.
type LRU struct{}

// Name implements EvictionPolicy.
func (LRU) Name() string { return "lru" }

// PickVictim implements EvictionPolicy: oldest arrival goes first.
func (LRU) PickVictim(cached []segment.ObjectID, _ segment.ObjectID, info PolicyInfo) segment.ObjectID {
	victim := cached[0]
	best := info.ArrivalSeq(victim)
	for _, id := range cached[1:] {
		if s := info.ArrivalSeq(id); s < best {
			victim, best = id, s
		}
	}
	return victim
}
