package mjoin

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/segment"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// recordingSource wraps a scriptSource and records every requested id.
type recordingSource struct {
	inner     *scriptSource
	requested map[segment.ObjectID]int
}

func (s *recordingSource) Request(objs []segment.ObjectID) {
	for _, id := range objs {
		s.requested[id]++
	}
	s.inner.Request(objs)
}

func (s *recordingSource) NextArrival() (*segment.Segment, error) { return s.inner.NextArrival() }

// attachPruner compiles the filter into a stats.Pruner for the relation.
func attachPruner(t *testing.T, rel *Relation) {
	t.Helper()
	if rel.Filter == nil {
		return
	}
	p, ok := stats.ForPredicate(rel.Filter, rel.Table.Schema, rel.Table.Stats)
	if !ok {
		t.Fatalf("filter %s not prunable", rel.Filter)
	}
	rel.Pruner = p
}

// TestStatsPruningScrambledArrivals: with data skipping on, the state
// manager must never request a prunable object — under in-order and
// scrambled delivery, serial and parallel, with and without cache
// pressure — and the join result must stay a permutation-free match of
// the unpruned run's multiset (and exactly the baseline's content).
func TestStatsPruningScrambledArrivals(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(24), perSeg: 4}, // 6 segments, keys clustered
		{name: "b", col: "bk", keys: seqKeys(24), perSeg: 6}, // 4 segments
	})
	ta, tb := cat.MustTable("a"), cat.MustTable("b")
	mkQuery := func() *Query {
		q := &Query{
			ID: "prune",
			Relations: []Relation{
				{Table: ta, Filter: expr.ColBetween(ta.Schema, "ak", tuple.Int(5), tuple.Int(10))},
				{Table: tb, Filter: expr.ColLT(tb.Schema, "bk", tuple.Int(13))},
			},
			Joins: []JoinCond{{Rel: 1, LeftCol: "ak", RightCol: "bk"}},
		}
		return q
	}
	baseline := baselineJoin(t, mkQuery(), store)

	for _, scramble := range []bool{false, true} {
		for _, cache := range []int{2, 10} { // tight (reissues) and ample
			for _, dop := range []int{1, 4} {
				seed := int64(42)
				run := func(prune bool) (*Result, map[segment.ObjectID]int) {
					q := mkQuery()
					if prune {
						attachPruner(t, &q.Relations[0])
						attachPruner(t, &q.Relations[1])
					}
					src := &recordingSource{
						inner:     &scriptSource{store: store},
						requested: make(map[segment.ObjectID]int),
					}
					if scramble {
						rng := rand.New(rand.NewSource(seed))
						src.inner.order = func(objs []segment.ObjectID) []segment.ObjectID {
							rng.Shuffle(len(objs), func(i, j int) { objs[i], objs[j] = objs[j], objs[i] })
							return objs
						}
					}
					cfg := DefaultConfig(cache)
					cfg.StatsPruning = prune
					cfg.Parallelism = dop
					res, err := Run(q, cfg, src)
					if err != nil {
						t.Fatalf("scramble=%v cache=%d dop=%d prune=%v: %v", scramble, cache, dop, prune, err)
					}
					return res, src.requested
				}
				on, reqOn := run(true)
				off, reqOff := run(false)

				if !equalMultisets(on.Rows, off.Rows) || !equalMultisets(on.Rows, baseline) {
					t.Fatalf("scramble=%v cache=%d dop=%d: results diverge (on %d, off %d, baseline %d rows)",
						scramble, cache, dop, len(on.Rows), len(off.Rows), len(baseline))
				}
				if on.Stats.ObjectsSkipped == 0 || on.Stats.SubplansSkipped == 0 {
					t.Fatalf("scramble=%v cache=%d dop=%d: nothing skipped: %+v", scramble, cache, dop, on.Stats)
				}
				if off.Stats.ObjectsSkipped != 0 {
					t.Fatalf("unpruned run skipped objects: %+v", off.Stats)
				}
				if on.Stats.Requests >= off.Stats.Requests {
					t.Fatalf("scramble=%v cache=%d dop=%d: pruning did not reduce requests (%d vs %d)",
						scramble, cache, dop, on.Stats.Requests, off.Stats.Requests)
				}
				// Keys 5..10 live in a-segments 1 and 2; keys <13 in
				// b-segments 0..2. Everything else must never be GET.
				for ri, rel := range mkQuery().Relations {
					p, _ := stats.ForPredicate(rel.Filter, rel.Table.Schema, rel.Table.Stats)
					for si, id := range rel.Table.Objects {
						if p.CanSkip(si) && reqOn[id] > 0 {
							t.Fatalf("scramble=%v cache=%d dop=%d: prunable object %v (rel %d) was requested",
								scramble, cache, dop, id, ri)
						}
						if reqOff[id] == 0 {
							t.Fatalf("unpruned run never requested %v", id)
						}
					}
				}
			}
		}
	}
}

// TestStatsPruningAllSkipped: a filter no segment can satisfy must
// terminate with zero requests and an empty result.
func TestStatsPruningAllSkipped(t *testing.T) {
	cat, store := buildDB(t, []relSpec{
		{name: "a", col: "ak", keys: seqKeys(8), perSeg: 4},
		{name: "b", col: "bk", keys: seqKeys(8), perSeg: 4},
	})
	ta, tb := cat.MustTable("a"), cat.MustTable("b")
	q := &Query{
		ID: "prune-all",
		Relations: []Relation{
			{Table: ta, Filter: expr.ColGE(ta.Schema, "ak", tuple.Int(1000))},
			{Table: tb},
		},
		Joins: []JoinCond{{Rel: 1, LeftCol: "ak", RightCol: "bk"}},
	}
	attachPruner(t, &q.Relations[0])
	src := &recordingSource{inner: &scriptSource{store: store}, requested: make(map[segment.ObjectID]int)}
	res, err := Run(q, DefaultConfig(len(q.Objects())), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || res.Stats.Requests != 0 || len(src.requested) != 0 {
		t.Fatalf("rows %d, requests %d", len(res.Rows), res.Stats.Requests)
	}
	if res.Stats.SubplansSkipped != res.Stats.SubplansTotal {
		t.Fatalf("skipped %d of %d subplans", res.Stats.SubplansSkipped, res.Stats.SubplansTotal)
	}
}
