package sql

import "strings"

// StripExplain recognizes a leading EXPLAIN [ANALYZE] prefix and
// returns the statement behind it. It is the single definition of the
// prefix grammar shared by the interactive shell and the server
// protocol, so "EXPLAIN ANALYZE SELECT ..." means the same thing on
// every surface: ok reports whether an EXPLAIN prefix was present,
// analyze whether the ANALYZE modifier followed it (execute the plan
// and annotate each operator with measured rows/batches/bytes/time).
func StripExplain(stmtText string) (rest string, analyze, ok bool) {
	rest, ok = stripWord(stmtText, "EXPLAIN")
	if !ok {
		return "", false, false
	}
	if after, isAnalyze := stripWord(rest, "ANALYZE"); isAnalyze {
		return after, true, true
	}
	return rest, false, true
}

// stripWord strips one leading keyword (case-insensitive, followed by
// whitespace) and returns the trimmed remainder.
func stripWord(s, word string) (string, bool) {
	trimmed := strings.TrimSpace(s)
	n := len(word)
	if len(trimmed) < n+1 || !strings.EqualFold(trimmed[:n], word) {
		return "", false
	}
	switch trimmed[n] {
	case ' ', '\t', '\n', '\r':
		return strings.TrimSpace(trimmed[n+1:]), true
	}
	return "", false
}
