// Package sql implements a small SQL front-end for the engines: a lexer,
// a recursive-descent parser for single SELECT statements, and a planner
// that maps the statement onto an mjoin.Query (join chain + local
// filters) plus a shaping stage (post-join filters, projection,
// aggregation, ORDER BY, LIMIT). The same plan drives both the pull-based
// baseline engine and Skipper's MJoin, mirroring how the paper's system
// runs unmodified SQL on PostgreSQL.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . * = <> < <= > >= + - /
)

// token is one lexeme.
type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents lower-cased
	pos  int    // byte offset, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AND": true, "OR": true, "NOT": true,
	"AS": true, "ASC": true, "DESC": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "JOIN": true, "ON": true, "INNER": true, "COUNT": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "TRUE": true,
	"FALSE": true, "DATE": true, "HAVING": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, strings.ToLower(word), start})
			}
		case unicode.IsDigit(rune(c)):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					// "1." followed by non-digit ends the number.
					if i+1 >= n || !unicode.IsDigit(rune(input[i+1])) {
						break
					}
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{tokSymbol, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d", i)
			}
		case strings.ContainsRune("(),.*=+-/;", rune(c)):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
