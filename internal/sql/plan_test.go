package sql_test

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/sql"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// --- planner over a real dataset ---

func tpchPlanner(t *testing.T) (*sql.Planner, *workload.Dataset) {
	t.Helper()
	ds := workload.TPCH(0, workload.TPCHConfig{SF: 5, RowsPerObject: 30, Seed: 42})
	return &sql.Planner{Catalog: ds.Catalog}, ds
}

func runSQL(t *testing.T, pl *sql.Planner, ds *workload.Dataset, q string) []tuple.Row {
	t.Helper()
	spec, err := pl.Plan(q)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	rows, err := workload.Evaluate(ds, spec)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return rows
}

func TestPlanSingleTableFilter(t *testing.T) {
	pl, ds := tpchPlanner(t)
	rows := runSQL(t, pl, ds, "SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderpriority = '1-URGENT' AND o_orderkey <> 0")
	all := runSQL(t, pl, ds, "SELECT o_orderkey FROM orders")
	if len(rows) == 0 || len(rows) >= len(all) {
		t.Fatalf("filter returned %d of %d rows", len(rows), len(all))
	}
}

func TestPlanStarAndLimit(t *testing.T) {
	pl, ds := tpchPlanner(t)
	rows := runSQL(t, pl, ds, "SELECT * FROM nation LIMIT 5")
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if len(rows[0]) != 3 { // n_nationkey, n_regionkey, n_name
		t.Fatalf("star arity %d", len(rows[0]))
	}
}

func TestPlanTwoTableJoin(t *testing.T) {
	pl, ds := tpchPlanner(t)
	rows := runSQL(t, pl, ds,
		"SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey AND r_name = 'ASIA'")
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r[1].AsString() != "ASIA" {
			t.Fatalf("row %v", r)
		}
	}
}

func TestPlanJoinOnSyntax(t *testing.T) {
	pl, ds := tpchPlanner(t)
	a := runSQL(t, pl, ds,
		"SELECT n_name FROM nation JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'EUROPE' ORDER BY n_name")
	b := runSQL(t, pl, ds,
		"SELECT n_name FROM nation, region WHERE n_regionkey = r_regionkey AND r_name = 'EUROPE' ORDER BY n_name")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("JOIN ON differs from comma join:\n%v\n%v", a, b)
	}
}

func TestPlanQ12Equivalent(t *testing.T) {
	pl, ds := tpchPlanner(t)
	sqlRows := runSQL(t, pl, ds, `
		SELECT l_shipmode,
		       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) AS high_line_count,
		       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 0 ELSE 1 END) AS low_line_count
		FROM lineitem, orders
		WHERE l_orderkey = o_orderkey
		  AND l_shipmode IN ('MAIL', 'SHIP')
		  AND l_commitdate < l_receiptdate
		  AND l_shipdate < l_commitdate
		  AND l_receiptdate BETWEEN '1994-01-01' AND '1994-12-31'
		GROUP BY l_shipmode
		ORDER BY l_shipmode`)
	handRows, err := workload.Evaluate(ds, workload.Q12(ds.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(render(sqlRows), render(handRows)) {
		t.Fatalf("SQL Q12 differs from hand-built plan:\n%v\n%v", render(sqlRows), render(handRows))
	}
}

func TestPlanQ5Equivalent(t *testing.T) {
	pl, ds := tpchPlanner(t)
	sqlRows := runSQL(t, pl, ds, `
		SELECT n_name, SUM(l_extendedprice * (1.0 - l_discount)) AS revenue
		FROM customer, orders, lineitem, supplier, nation, region
		WHERE c_custkey = o_custkey
		  AND o_orderkey = l_orderkey
		  AND l_suppkey = s_suppkey
		  AND s_nationkey = n_nationkey
		  AND n_regionkey = r_regionkey
		  AND c_nationkey = s_nationkey
		  AND r_name = 'ASIA'
		  AND o_orderdate BETWEEN '1994-01-01' AND '1994-12-31'
		GROUP BY n_name
		ORDER BY revenue DESC`)
	handRows, err := workload.Evaluate(ds, workload.Q5(ds.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(render(sqlRows), render(handRows)) {
		t.Fatalf("SQL Q5 differs from hand-built plan:\n%v\n%v", render(sqlRows), render(handRows))
	}
}

func render(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func TestPlanRunsOnBothEngines(t *testing.T) {
	pl, ds := tpchPlanner(t)
	spec, err := pl.Plan("SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity < 10")
	if err != nil {
		t.Fatal(err)
	}
	local, err := workload.Evaluate(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		st := make(map[segment.ObjectID]*segment.Segment)
		ds.MergeInto(st)
		c := &skipper.Client{Tenant: 0, Mode: mode, Catalog: ds.Catalog,
			Queries: []skipper.QuerySpec{spec}, CacheObjects: 4}
		res, err := (&skipper.Cluster{Clients: []*skipper.Client{c}, Store: st}).Run()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Clients[0].Rows != int64(len(local)) {
			t.Fatalf("%v: %d rows vs local %d", mode, res.Clients[0].Rows, len(local))
		}
	}
}

func TestPlanAggregatesAndHaving(t *testing.T) {
	pl, ds := tpchPlanner(t)
	rows := runSQL(t, pl, ds, `
		SELECT o_orderpriority, COUNT(*) AS n, AVG(o_totalprice) AS avg_price,
		       MIN(o_totalprice) AS lo, MAX(o_totalprice) AS hi
		FROM orders
		GROUP BY o_orderpriority
		HAVING n > 0
		ORDER BY o_orderpriority`)
	if len(rows) == 0 || len(rows) > 5 {
		t.Fatalf("%d groups", len(rows))
	}
	for _, r := range rows {
		lo, hi, avg := r[3].AsFloat(), r[4].AsFloat(), r[2].AsFloat()
		if lo > avg || avg > hi {
			t.Fatalf("min/avg/max violated: %v", r)
		}
	}
	// Output ordered by group key.
	var names []string
	for _, r := range rows {
		names = append(names, r[0].AsString())
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("not ordered: %v", names)
	}
}

func TestPlanPrefixLike(t *testing.T) {
	pl, ds := tpchPlanner(t)
	rows := runSQL(t, pl, ds, "SELECT n_name FROM nation WHERE n_name LIKE 'UNITED%' ORDER BY n_name")
	if len(rows) != 2 {
		t.Fatalf("rows %v", render(rows))
	}
	for _, r := range rows {
		if !strings.HasPrefix(r[0].AsString(), "UNITED") {
			t.Fatalf("row %v", r)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	pl, _ := tpchPlanner(t)
	bad := map[string]string{
		"unknown table":     "SELECT x FROM nosuch",
		"unknown column":    "SELECT nosuch FROM nation",
		"cross join":        "SELECT n_name FROM nation, region WHERE n_nationkey > 0",
		"bad group item":    "SELECT o_totalprice, COUNT(*) FROM orders GROUP BY o_orderpriority",
		"full like":         "SELECT n_name FROM nation WHERE n_name LIKE '%X%'",
		"case without else": "SELECT CASE WHEN n_nationkey = 1 THEN 2 END FROM nation",
		"bad qualifier":     "SELECT region.n_name FROM nation, region WHERE n_regionkey = r_regionkey",
	}
	for label, q := range bad {
		if _, err := pl.Plan(q); err == nil {
			t.Errorf("%s accepted: %q", label, q)
		}
	}
}

func TestPlanCycleEdgeBecomesPostFilter(t *testing.T) {
	// Q5's c_nationkey = s_nationkey closes a cycle; the planner must
	// keep the chain valid and apply the extra equality post-join.
	pl, ds := tpchPlanner(t)
	spec, err := pl.Plan(`
		SELECT COUNT(*) FROM customer, orders, lineitem, supplier
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
		  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Join.Relations) != 4 || len(spec.Join.Joins) != 3 {
		t.Fatalf("chain shape: %d relations, %d joins", len(spec.Join.Relations), len(spec.Join.Joins))
	}
	rows, err := workload.Evaluate(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: strictly fewer matches than without the nation equality.
	spec2, err := pl.Plan(`
		SELECT COUNT(*) FROM customer, orders, lineitem, supplier
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_suppkey = s_suppkey`)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := workload.Evaluate(ds, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].AsInt() >= rows2[0][0].AsInt() {
		t.Fatalf("cycle filter did nothing: %v vs %v", rows[0], rows2[0])
	}
}

func TestPlanTableReorderingForChain(t *testing.T) {
	// FROM order lists region first; the chain must still build by
	// attaching connected tables greedily.
	pl, ds := tpchPlanner(t)
	rows := runSQL(t, pl, ds, `
		SELECT r_name, COUNT(*) AS n FROM region, nation
		WHERE n_regionkey = r_regionkey GROUP BY r_name ORDER BY r_name`)
	if len(rows) != 5 {
		t.Fatalf("groups %v", render(rows))
	}
}

func TestSelectDistinct(t *testing.T) {
	pl, ds := tpchPlanner(t)
	all := runSQL(t, pl, ds, "SELECT o_orderpriority FROM orders")
	distinct := runSQL(t, pl, ds, "SELECT DISTINCT o_orderpriority FROM orders ORDER BY o_orderpriority")
	if len(distinct) >= len(all) {
		t.Fatalf("distinct %d !< all %d", len(distinct), len(all))
	}
	if len(distinct) > 5 {
		t.Fatalf("more than 5 priorities: %v", render(distinct))
	}
	seen := map[string]bool{}
	for i, r := range distinct {
		v := r[0].AsString()
		if seen[v] {
			t.Fatalf("duplicate %q", v)
		}
		seen[v] = true
		if i > 0 && distinct[i-1][0].AsString() > v {
			t.Fatal("not ordered")
		}
	}
	if _, err := pl.Plan("SELECT DISTINCT * FROM orders"); err == nil {
		t.Fatal("DISTINCT * accepted")
	}
}

func TestDistinctAcrossJoin(t *testing.T) {
	pl, ds := tpchPlanner(t)
	rows := runSQL(t, pl, ds, `
		SELECT DISTINCT r_name FROM nation, region
		WHERE n_regionkey = r_regionkey ORDER BY r_name`)
	if len(rows) != 5 {
		t.Fatalf("distinct regions = %d, want 5", len(rows))
	}
}

// TestParserNeverPanics fuzzes the parser with mangled inputs: it must
// return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a FROM t WHERE x BETWEEN 1 AND 2",
		"SELECT DISTINCT a, SUM(b) AS s FROM t GROUP BY a HAVING s > 1 ORDER BY s DESC LIMIT 5",
		"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT * FROM a JOIN b ON a.x = b.y",
	}
	rng := rand.New(rand.NewSource(7))
	for _, seed := range seeds {
		for i := 0; i < 500; i++ {
			bs := []byte(seed)
			for k := 0; k < 1+rng.Intn(4); k++ {
				switch rng.Intn(3) {
				case 0: // mutate a byte
					bs[rng.Intn(len(bs))] = byte(rng.Intn(128))
				case 1: // delete a span
					at := rng.Intn(len(bs))
					end := at + rng.Intn(len(bs)-at)
					bs = append(bs[:at], bs[end:]...)
				case 2: // duplicate a span
					at := rng.Intn(len(bs))
					end := at + rng.Intn(len(bs)-at)
					bs = append(bs[:end], bs[at:]...)
				}
				if len(bs) == 0 {
					bs = []byte("S")
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on %q: %v", bs, r)
					}
				}()
				_, _ = sql.Parse(string(bs))
			}()
		}
	}
}
