package sql

import (
	"reflect"
	"testing"
)

// --- lexer ---

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b2 FROM t WHERE x >= 1.5 AND y = 'it''s' -- comment\n LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "b2", "FROM", "t", "WHERE", "x", ">=", "1.5", "AND", "y", "=", "it's", "LIMIT", "3", ""}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts %q", texts)
	}
	if kinds[9] != tokNumber || kinds[13] != tokString {
		t.Fatalf("kinds %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT a ? b"); err == nil {
		t.Error("bad character accepted")
	}
}

// --- parser ---

func TestParseSimple(t *testing.T) {
	stmt, err := Parse("SELECT a, b FROM t WHERE a > 5 ORDER BY b DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 || len(stmt.From) != 1 || stmt.Limit != 10 {
		t.Fatalf("%+v", stmt)
	}
	if !stmt.OrderBy[0].Desc {
		t.Fatal("DESC lost")
	}
}

func TestParseJoinOnFlattensToWhere(t *testing.T) {
	stmt, err := Parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE b.z < 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("from %v", stmt.From)
	}
	cs := conjuncts(stmt.Where)
	if len(cs) != 2 {
		t.Fatalf("conjuncts %d", len(cs))
	}
}

func TestParseAggregates(t *testing.T) {
	stmt, err := Parse("SELECT g, COUNT(*), SUM(x) AS total FROM t GROUP BY g HAVING total > 5")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Items[1].CountStar || stmt.Items[2].Agg != "SUM" || stmt.Items[2].Alias != "total" {
		t.Fatalf("%+v", stmt.Items)
	}
	if stmt.Having == nil || len(stmt.GroupBy) != 1 {
		t.Fatalf("%+v", stmt)
	}
}

func TestParseCaseInBetween(t *testing.T) {
	stmt, err := Parse(`SELECT SUM(CASE WHEN p IN ('A','B') THEN 1 ELSE 0 END)
		FROM t WHERE d BETWEEN '1994-01-01' AND '1994-12-31' AND m LIKE 'MA%'`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Agg != "SUM" {
		t.Fatalf("%+v", stmt.Items)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",            // no FROM
		"SELECT a FROM",       // no table
		"SELECT a FROM t x y", // trailing junk
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT CASE END FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}
