package sql_test

import (
	"testing"

	"repro/internal/sql"
)

// The planner's projection pushdown: every base column the statement can
// read must be in the relation's Cols set (missing one would zero-fill a
// live column), and nothing else should be (extra ones forfeit the
// format's decode savings). nil means "all columns".

// colNames maps a relation's Cols indexes to names; nil stays nil.
func colNames(t *testing.T, pl *sql.Planner, table string, cols []int) []string {
	t.Helper()
	if cols == nil {
		return nil
	}
	schema := pl.Catalog.MustTable(table).Schema
	out := make([]string, len(cols))
	for i, ci := range cols {
		out[i] = schema.Cols[ci].Name
	}
	return out
}

func TestPlannerProjectionPushdown(t *testing.T) {
	pl, _ := tpchPlanner(t)
	cases := []struct {
		name  string
		query string
		// want maps table name → expected projected column names; a
		// missing entry means nil (decode everything).
		want map[string][]string
	}{
		{
			name: "filter-join-agg",
			query: `SELECT l_shipmode, COUNT(*) AS n FROM lineitem, orders
			        WHERE l_orderkey = o_orderkey AND o_totalprice > 100.0
			        GROUP BY l_shipmode ORDER BY l_shipmode`,
			want: map[string][]string{
				"lineitem": {"l_orderkey", "l_shipmode"},
				"orders":   {"o_orderkey", "o_totalprice"},
			},
		},
		{
			name:  "count-star-no-columns",
			query: `SELECT COUNT(*) AS n FROM lineitem`,
			want:  map[string][]string{"lineitem": {}},
		},
		{
			name:  "select-star-decodes-all",
			query: `SELECT * FROM nation, region WHERE n_regionkey = r_regionkey`,
			want:  map[string][]string{},
		},
		{
			name:  "order-by-base-column-not-in-select",
			query: `SELECT n_name FROM nation ORDER BY n_nationkey`,
			want:  map[string][]string{"nation": {"n_nationkey", "n_name"}},
		},
		{
			name: "agg-order-by-alias",
			query: `SELECT o_orderpriority, COUNT(*) AS n FROM orders
			        GROUP BY o_orderpriority ORDER BY n DESC`,
			want: map[string][]string{"orders": {"o_orderpriority"}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec, err := pl.Plan(tc.query)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			for _, rel := range spec.Join.Relations {
				want, ok := tc.want[rel.Table.Name]
				got := colNames(t, pl, rel.Table.Name, rel.Cols)
				if !ok {
					if got != nil {
						t.Errorf("%s: projected %v, want all columns (nil)", rel.Table.Name, got)
					}
					continue
				}
				if got == nil {
					t.Errorf("%s: projection nil, want %v", rel.Table.Name, want)
					continue
				}
				if len(got) != len(want) {
					t.Errorf("%s: projected %v, want %v", rel.Table.Name, got, want)
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s: projected %v, want %v", rel.Table.Name, got, want)
						break
					}
				}
			}
		})
	}
}

// TestProjectionNeverDropsLiveColumns executes every differential query
// over a v2-encoded store and over the raw in-memory store; identical
// results prove no referenced column was projected away. (The broader
// format matrix lives in internal/experiments; this guards the planner's
// analysis at its source.)
func TestProjectionNeverDropsLiveColumns(t *testing.T) {
	pl, ds := tpchPlanner(t)
	for _, tc := range diffQueries {
		spec, err := pl.Plan(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, rel := range spec.Join.Relations {
			if rel.Cols == nil {
				continue
			}
			// Every filter, join and shape reference must lie inside Cols;
			// proven behaviourally by the differential suites. Here, just
			// assert the sets are sorted and in range.
			last := -1
			for _, ci := range rel.Cols {
				if ci <= last || ci >= rel.Table.Schema.Len() {
					t.Fatalf("%s: relation %s has malformed projection %v", tc.name, rel.Table.Name, rel.Cols)
				}
				last = ci
			}
		}
	}
	_ = ds
}
