package sql

import "strings"

// SelectStmt is the AST of one SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Node // nil when absent
	GroupBy  []ColumnRef
	Having   Node
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// SelectItem is one projection: either * (Star), a bare expression, or an
// aggregate call; an optional alias names the output column.
type SelectItem struct {
	Star bool
	Agg  string // "", "COUNT", "SUM", "AVG", "MIN", "MAX"
	// CountStar marks COUNT(*).
	CountStar bool
	Expr      Node
	Alias     string
}

// TableRef names a relation in FROM, with optional JOIN..ON chaining
// handled by the parser flattening everything into this list plus WHERE
// conjuncts.
type TableRef struct {
	Name  string
	Alias string
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Node
	Desc bool
}

// ColumnRef names a (possibly qualified) column.
type ColumnRef struct {
	Table  string // "" when unqualified
	Column string
}

func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Node is an AST expression node.
type Node interface{ nodeString() string }

// ColNode references a column.
type ColNode struct{ Ref ColumnRef }

// LitNode is a literal: Kind is one of "int", "float", "string", "bool",
// "date".
type LitNode struct {
	Kind string
	Text string
}

// BinNode is a binary operation: comparison (=, <>, <, <=, >, >=),
// arithmetic (+, -, *, /), or boolean (AND, OR).
type BinNode struct {
	Op   string
	L, R Node
}

// NotNode negates a boolean expression.
type NotNode struct{ E Node }

// BetweenNode is E BETWEEN Lo AND Hi.
type BetweenNode struct{ E, Lo, Hi Node }

// InNode is E IN (lit, ...).
type InNode struct {
	E    Node
	List []LitNode
}

// LikeNode is E LIKE 'prefix%' (only prefix patterns are supported).
type LikeNode struct {
	E       Node
	Pattern string
}

// CaseNode is a searched CASE.
type CaseNode struct {
	Whens []CaseWhen
	Else  Node
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct{ Cond, Then Node }

func (n ColNode) nodeString() string { return n.Ref.String() }
func (n LitNode) nodeString() string { return n.Text }
func (n BinNode) nodeString() string {
	return "(" + n.L.nodeString() + " " + n.Op + " " + n.R.nodeString() + ")"
}
func (n NotNode) nodeString() string { return "NOT " + n.E.nodeString() }
func (n BetweenNode) nodeString() string {
	return n.E.nodeString() + " BETWEEN " + n.Lo.nodeString() + " AND " + n.Hi.nodeString()
}
func (n InNode) nodeString() string {
	parts := make([]string, len(n.List))
	for i, l := range n.List {
		parts[i] = l.Text
	}
	return n.E.nodeString() + " IN (" + strings.Join(parts, ", ") + ")"
}
func (n LikeNode) nodeString() string { return n.E.nodeString() + " LIKE '" + n.Pattern + "'" }
func (n CaseNode) nodeString() string { return "CASE ... END" }
