package sql

import (
	"fmt"
	"strconv"
)

// Parse parses a single SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	p.acceptSymbol(";")
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	// DATE is a keyword (DATE 'lit') but also a common table name (SSB's
	// date dimension); accept it as an identifier in name position.
	if t := p.peek(); t.kind == tokKeyword && t.text == "DATE" {
		p.pos++
		return "date", nil
	}
	return "", p.errorf("expected identifier, got %q", p.peek().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(stmt); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = conjoin(stmt.Where, w)
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, ref)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errorf("LIMIT expects a number, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

// parseFrom handles "FROM t1 [alias], t2 ..." and "FROM t1 JOIN t2 ON
// cond ..." by flattening join conditions into WHERE conjuncts.
func (p *parser) parseFrom(stmt *SelectStmt) error {
	ref, err := p.parseTableRef()
	if err != nil {
		return err
	}
	stmt.From = append(stmt.From, ref)
	for {
		if p.acceptSymbol(",") {
			ref, err := p.parseTableRef()
			if err != nil {
				return err
			}
			stmt.From = append(stmt.From, ref)
			continue
		}
		p.acceptKeyword("INNER")
		if p.acceptKeyword("JOIN") {
			ref, err := p.parseTableRef()
			if err != nil {
				return err
			}
			stmt.From = append(stmt.From, ref)
			if err := p.expectKeyword("ON"); err != nil {
				return err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return err
			}
			stmt.Where = conjoin(stmt.Where, cond)
			continue
		}
		return nil
	}
}

func conjoin(a, b Node) Node {
	if a == nil {
		return b
	}
	return BinNode{Op: "AND", L: a, R: b}
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		ref.Alias, err = p.expectIdent()
		return ref, err
	}
	if t := p.peek(); t.kind == tokIdent {
		ref.Alias = t.text
		p.pos++
	}
	return ref, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	if t := p.peek(); t.kind == tokKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			if err := p.expectSymbol("("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: t.text}
			if t.text == "COUNT" && p.acceptSymbol("*") {
				item.CountStar = true
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return SelectItem{}, err
				}
				item.Expr = e
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			item.Alias = p.parseAlias()
			return item, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: e, Alias: p.parseAlias()}, nil
}

func (p *parser) parseAlias() string {
	if p.acceptKeyword("AS") {
		if t := p.peek(); t.kind == tokIdent {
			p.pos++
			return t.text
		}
		return ""
	}
	if t := p.peek(); t.kind == tokIdent {
		p.pos++
		return t.text
	}
	return ""
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: name, Column: col}, nil
	}
	return ColumnRef{Column: name}, nil
}

// Expression grammar: or → and → not → predicate → additive →
// multiplicative → primary.

func (p *parser) parseExpr() (Node, error) { return p.parseOr() }

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinNode{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinNode{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotNode{E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinNode{Op: t.text, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return BetweenNode{E: l, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []LitNode
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			list = append(list, lit)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return InNode{E: l, List: list}, nil
	}
	if p.acceptKeyword("LIKE") {
		t := p.next()
		if t.kind != tokString {
			return nil, p.errorf("LIKE expects a string pattern")
		}
		return LikeNode{E: l, Pattern: t.text}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Node, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = BinNode{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Node, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l = BinNode{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch {
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectSymbol(")")
	case t.kind == tokNumber || t.kind == tokString:
		return p.parseLiteralNode()
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.pos++
		return LitNode{Kind: "bool", Text: t.text}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.pos++
		s := p.next()
		if s.kind != tokString {
			return nil, p.errorf("DATE expects a string literal")
		}
		return LitNode{Kind: "date", Text: s.text}, nil
	case t.kind == tokKeyword && t.text == "CASE":
		return p.parseCase()
	case t.kind == tokIdent:
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		return ColNode{Ref: ref}, nil
	default:
		return nil, p.errorf("unexpected token %q", t.text)
	}
}

func (p *parser) parseCase() (Node, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	var node CaseNode
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Whens = append(node.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(node.Whens) == 0 {
		return nil, p.errorf("CASE needs at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Else = e
	}
	return node, p.expectKeyword("END")
}

func (p *parser) parseLiteral() (LitNode, error) {
	n, err := p.parseLiteralNode()
	if err != nil {
		return LitNode{}, err
	}
	lit, ok := n.(LitNode)
	if !ok {
		return LitNode{}, p.errorf("expected literal")
	}
	return lit, nil
}

func (p *parser) parseLiteralNode() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if hasDot(t.text) {
			return LitNode{Kind: "float", Text: t.text}, nil
		}
		return LitNode{Kind: "int", Text: t.text}, nil
	case tokString:
		return LitNode{Kind: "string", Text: t.text}, nil
	default:
		p.pos--
		return nil, p.errorf("expected literal, got %q", t.text)
	}
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}
