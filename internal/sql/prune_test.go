package sql_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/skipper"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// TestPlannerAttachesPruners: the planner must classify prunable
// table-local predicates and attach a stats.Pruner to those scan specs —
// and only those.
func TestPlannerAttachesPruners(t *testing.T) {
	pl, _ := tpchPlanner(t)
	spec, err := pl.Plan(`
		SELECT l_orderkey FROM lineitem, orders
		WHERE l_orderkey = o_orderkey
		  AND l_shipdate BETWEEN '1994-01-01' AND '1994-03-31'`)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]bool{}
	for _, rel := range spec.Join.Relations {
		byName[rel.Table.Name] = rel.Pruner != nil
	}
	if !byName["lineitem"] {
		t.Fatal("lineitem's range predicate did not get a Pruner")
	}
	if byName["orders"] {
		t.Fatal("unfiltered orders got a Pruner")
	}

	// Equality and IN predicates are prunable too (Bloom + zone map).
	spec, err = pl.Plan(`SELECT c_custkey FROM customer WHERE c_mktsegment IN ('BUILDING', 'AUTOMOBILE')`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Join.Relations[0].Pruner == nil {
		t.Fatal("IN predicate did not get a Pruner")
	}

	// A purely column-vs-column predicate has no prunable structure.
	spec, err = pl.Plan(`SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Join.Relations[0].Pruner != nil {
		t.Fatal("column-vs-column predicate got a Pruner")
	}

	// Mixed conjunction: prunable on the literal term alone.
	spec, err = pl.Plan(`SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate AND l_quantity < 10`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Join.Relations[0].Pruner == nil {
		t.Fatal("mixed conjunction did not get a Pruner")
	}
}

// TestPlannerPrunerSound: for a sweep of SQL predicates, executing with
// the planner-attached pruners (the default) must match executing the
// same statement with pruning stripped.
func TestPlannerPrunerSound(t *testing.T) {
	pl, ds := tpchPlanner(t)
	queries := []string{
		`SELECT l_orderkey, l_quantity FROM lineitem WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-06-30' ORDER BY l_orderkey, l_quantity, l_shipdate`,
		`SELECT o_orderkey FROM orders WHERE o_orderpriority = '1-URGENT' ORDER BY o_orderkey`,
		`SELECT l_orderkey FROM lineitem WHERE l_shipmode LIKE 'R%' AND l_quantity <= 5 ORDER BY l_orderkey`,
		`SELECT c_custkey FROM customer WHERE c_mktsegment = 'no-such-segment'`,
	}
	for _, q := range queries {
		spec, err := pl.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		pruned, err := evaluatePruned(ds, spec)
		if err != nil {
			t.Fatalf("pruned %q: %v", q, err)
		}
		// workload.Evaluate is the pruning-independent oracle.
		plain, err := workload.Evaluate(ds, spec)
		if err != nil {
			t.Fatalf("unpruned %q: %v", q, err)
		}
		if len(pruned) != len(plain) {
			t.Fatalf("%q: %d pruned rows vs %d unpruned", q, len(pruned), len(plain))
		}
		for i := range pruned {
			if pruned[i].String() != plain[i].String() {
				t.Fatalf("%q row %d: %s vs %s", q, i, pruned[i], plain[i])
			}
		}
	}
}

// evaluatePruned runs the spec locally with data skipping enabled.
func evaluatePruned(ds *workload.Dataset, spec skipper.QuerySpec) ([]tuple.Row, error) {
	it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(ds.Store), spec.Join, true)
	if err != nil {
		return nil, err
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	return engine.Collect(it)
}
