package sql_test

import (
	"fmt"

	"repro/internal/sql"
	"repro/internal/workload"
)

// A SQL statement is planned against a tenant's catalog and evaluated;
// the same spec drives the vanilla engine and Skipper's MJoin.
func ExamplePlanner() {
	ds := workload.TPCH(0, workload.TPCHConfig{SF: 4, RowsPerObject: 20, Seed: 1})
	planner := &sql.Planner{Catalog: ds.Catalog}
	spec, err := planner.Plan(`
		SELECT r_name, COUNT(*) AS nations
		FROM region, nation
		WHERE n_regionkey = r_regionkey
		GROUP BY r_name
		ORDER BY r_name`)
	if err != nil {
		fmt.Println("plan error:", err)
		return
	}
	rows, err := workload.Evaluate(ds, spec)
	if err != nil {
		fmt.Println("run error:", err)
		return
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	// Output:
	// (AFRICA, 5)
	// (AMERICA, 5)
	// (ASIA, 5)
	// (EUROPE, 5)
	// (MIDDLE EAST, 5)
}
