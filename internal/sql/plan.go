package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/mjoin"
	"repro/internal/skipper"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Planner turns parsed SELECT statements into executable query specs over
// a tenant's catalog. The produced skipper.QuerySpec drives both engines:
// the multi-way join core (relations, local filters, join chain) plus a
// shaping stage for post-join filters, projection, aggregation, ORDER BY
// and LIMIT. The shaping stage is assembled from the engine's batch-native
// operators, so it executes batch-at-a-time under both ModeVanilla and
// ModeSkipper regardless of which interface the caller drains.
type Planner struct {
	Catalog *catalog.Catalog
}

// Plan parses and plans one SELECT statement.
func (pl *Planner) Plan(query string) (skipper.QuerySpec, error) {
	stmt, err := Parse(query)
	if err != nil {
		return skipper.QuerySpec{}, err
	}
	return pl.PlanStmt(stmt)
}

// boundTable is one FROM entry resolved against the catalog.
type boundTable struct {
	ref  TableRef
	meta *catalog.TableMeta
}

// joinEdge is an equality between columns of two different tables.
type joinEdge struct {
	t1 int
	c1 string
	t2 int
	c2 string
}

// PlanStmt plans an already-parsed statement.
func (pl *Planner) PlanStmt(stmt *SelectStmt) (skipper.QuerySpec, error) {
	if len(stmt.From) == 0 {
		return skipper.QuerySpec{}, fmt.Errorf("sql: no FROM clause")
	}
	// Resolve tables and enforce globally unique column names (the
	// binder and the MJoin concat schema rely on it).
	tables := make([]boundTable, len(stmt.From))
	colOwner := make(map[string]int)
	for i, ref := range stmt.From {
		meta, err := pl.Catalog.Table(ref.Name)
		if err != nil {
			return skipper.QuerySpec{}, err
		}
		tables[i] = boundTable{ref: ref, meta: meta}
		for _, c := range meta.Schema.Cols {
			if prev, dup := colOwner[c.Name]; dup {
				return skipper.QuerySpec{}, fmt.Errorf("sql: column %q appears in both %q and %q; unique column names are required",
					c.Name, stmt.From[prev].Name, ref.Name)
			}
			colOwner[c.Name] = i
		}
	}
	b := &binder{tables: tables, colOwner: colOwner}

	// Split WHERE into conjuncts and classify each.
	var localFilters = make([][]Node, len(tables))
	var edges []joinEdge
	var postJoin []Node
	for _, conj := range conjuncts(stmt.Where) {
		refs, err := b.tablesOf(conj)
		if err != nil {
			return skipper.QuerySpec{}, err
		}
		if e, ok := asJoinEdge(conj, b); ok {
			edges = append(edges, e)
			continue
		}
		switch len(refs) {
		case 0, 1:
			ti := 0
			if len(refs) == 1 {
				for t := range refs {
					ti = t
				}
			}
			localFilters[ti] = append(localFilters[ti], conj)
		default:
			postJoin = append(postJoin, conj)
		}
	}

	// Build the join chain greedily from the FROM order.
	order, conds, extraEdges, err := buildChain(len(tables), edges)
	if err != nil {
		return skipper.QuerySpec{}, err
	}
	for _, e := range extraEdges {
		postJoin = append(postJoin, BinNode{Op: "=",
			L: ColNode{Ref: ColumnRef{Column: e.c1}},
			R: ColNode{Ref: ColumnRef{Column: e.c2}}})
	}

	// Compute, per table, the set of base columns the whole statement
	// references — the projection pushed down to the storage format, so
	// scans over columnar (v2) segments decode only these blocks.
	proj := referencedColumns(stmt, b)

	// Assemble the MJoin query in chain order.
	var q mjoin.Query
	q.ID = "sql"
	joined := tables[order[0]].meta.Schema
	for pos, ti := range order {
		rel := mjoin.Relation{Table: tables[ti].meta, Cols: proj[ti]}
		if fs := localFilters[ti]; len(fs) > 0 {
			pred, err := b.bindConjuncts(fs, tables[ti].meta.Schema)
			if err != nil {
				return skipper.QuerySpec{}, err
			}
			rel.Filter = pred
			// Classify the pushed-down predicate for data skipping: when
			// any prunable structure survives analysis, the scan spec
			// carries a Pruner over the table's catalog statistics, and
			// both engines skip proven result-free segments before
			// issuing their CSD requests.
			if pr, ok := stats.ForPredicate(pred, tables[ti].meta.Schema, tables[ti].meta.Stats); ok {
				rel.Pruner = pr
			}
		}
		q.Relations = append(q.Relations, rel)
		if pos > 0 {
			e := conds[pos-1]
			q.Joins = append(q.Joins, mjoin.JoinCond{Rel: pos, LeftCol: e.c1, RightCol: e.c2})
			joined = joined.Concat(tables[ti].meta.Schema)
		}
	}
	if _, err := q.Validate(); err != nil {
		return skipper.QuerySpec{}, err
	}

	shape, err := b.buildShape(stmt, postJoin, joined)
	if err != nil {
		return skipper.QuerySpec{}, err
	}
	return skipper.QuerySpec{Name: "sql", Join: &q, Shape: shape}, nil
}

// conjuncts flattens a WHERE tree over AND.
func conjuncts(n Node) []Node {
	if n == nil {
		return nil
	}
	if bin, ok := n.(BinNode); ok && bin.Op == "AND" {
		return append(conjuncts(bin.L), conjuncts(bin.R)...)
	}
	return []Node{n}
}

// asJoinEdge recognizes "colA = colB" with the columns on different
// tables.
func asJoinEdge(n Node, b *binder) (joinEdge, bool) {
	bin, ok := n.(BinNode)
	if !ok || bin.Op != "=" {
		return joinEdge{}, false
	}
	lc, lok := bin.L.(ColNode)
	rc, rok := bin.R.(ColNode)
	if !lok || !rok {
		return joinEdge{}, false
	}
	lt, lerr := b.ownerOf(lc.Ref)
	rt, rerr := b.ownerOf(rc.Ref)
	if lerr != nil || rerr != nil || lt == rt {
		return joinEdge{}, false
	}
	return joinEdge{t1: lt, c1: lc.Ref.Column, t2: rt, c2: rc.Ref.Column}, true
}

// buildChain orders the tables into a left-deep chain: order[0] is the
// first FROM table; each next table must share a join edge with an
// already-placed one. The edge used becomes the chain condition (left
// column from the placed side); any surplus edges between placed tables
// are returned for post-join filtering.
func buildChain(n int, edges []joinEdge) (order []int, conds []joinEdge, extra []joinEdge, err error) {
	if n == 1 {
		return []int{0}, nil, edges, nil
	}
	placed := map[int]bool{0: true}
	order = []int{0}
	used := make([]bool, len(edges))
	for len(order) < n {
		found := -1
		var cond joinEdge
		for ei, e := range edges {
			if used[ei] {
				continue
			}
			switch {
			case placed[e.t1] && !placed[e.t2]:
				found, cond = ei, e
			case placed[e.t2] && !placed[e.t1]:
				found, cond = ei, joinEdge{t1: e.t2, c1: e.c2, t2: e.t1, c2: e.c1}
			default:
				continue
			}
			break
		}
		if found < 0 {
			return nil, nil, nil, fmt.Errorf("sql: table %d is not connected by any join condition (cross joins are not supported)", len(order))
		}
		used[found] = true
		placed[cond.t2] = true
		order = append(order, cond.t2)
		conds = append(conds, cond)
	}
	for ei, e := range edges {
		if !used[ei] {
			extra = append(extra, e)
		}
	}
	return order, conds, extra, nil
}

// binder resolves names and converts AST nodes to engine expressions.
type binder struct {
	tables   []boundTable
	colOwner map[string]int
}

// ownerOf resolves a column reference to its table index, checking any
// qualifier against the owning table's name or alias.
func (b *binder) ownerOf(ref ColumnRef) (int, error) {
	ti, ok := b.colOwner[ref.Column]
	if !ok {
		return 0, fmt.Errorf("sql: unknown column %q", ref.Column)
	}
	if ref.Table != "" {
		t := b.tables[ti]
		if ref.Table != t.ref.Name && ref.Table != t.ref.Alias {
			return 0, fmt.Errorf("sql: column %q belongs to %q, not %q", ref.Column, t.ref.Name, ref.Table)
		}
	}
	return ti, nil
}

// tablesOf collects the tables a node references.
func (b *binder) tablesOf(n Node) (map[int]bool, error) {
	out := make(map[int]bool)
	var walk func(Node) error
	walk = func(n Node) error {
		switch v := n.(type) {
		case ColNode:
			ti, err := b.ownerOf(v.Ref)
			if err != nil {
				return err
			}
			out[ti] = true
		case BinNode:
			if err := walk(v.L); err != nil {
				return err
			}
			return walk(v.R)
		case NotNode:
			return walk(v.E)
		case BetweenNode:
			if err := walk(v.E); err != nil {
				return err
			}
			if err := walk(v.Lo); err != nil {
				return err
			}
			return walk(v.Hi)
		case InNode:
			return walk(v.E)
		case LikeNode:
			return walk(v.E)
		case CaseNode:
			for _, w := range v.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Then); err != nil {
					return err
				}
			}
			if v.Else != nil {
				return walk(v.Else)
			}
		case LitNode:
		}
		return nil
	}
	if err := walk(n); err != nil {
		return nil, err
	}
	return out, nil
}

// bindConjuncts binds a conjunction against one schema.
func (b *binder) bindConjuncts(ns []Node, schema *tuple.Schema) (expr.Expr, error) {
	terms := make([]expr.Expr, len(ns))
	for i, n := range ns {
		e, k, err := b.bind(n, schema)
		if err != nil {
			return nil, err
		}
		if k != tuple.KindBool {
			return nil, fmt.Errorf("sql: predicate %s is not boolean", n.nodeString())
		}
		terms[i] = e
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return expr.NewAnd(terms...), nil
}

// bind converts an AST node to a bound expression, returning its kind.
func (b *binder) bind(n Node, schema *tuple.Schema) (expr.Expr, tuple.Kind, error) {
	switch v := n.(type) {
	case ColNode:
		idx, ok := schema.ColIndex(v.Ref.Column)
		if !ok {
			return nil, 0, fmt.Errorf("sql: column %q not in scope %v", v.Ref.Column, schema.ColumnNames())
		}
		return expr.NewCol(idx, v.Ref.Column), schema.Cols[idx].Kind, nil
	case LitNode:
		val, err := litValue(v)
		if err != nil {
			return nil, 0, err
		}
		return expr.Lit(val), val.K, nil
	case BinNode:
		return b.bindBin(v, schema)
	case NotNode:
		e, k, err := b.bind(v.E, schema)
		if err != nil {
			return nil, 0, err
		}
		if k != tuple.KindBool {
			return nil, 0, fmt.Errorf("sql: NOT of non-boolean")
		}
		return expr.Not{E: e}, tuple.KindBool, nil
	case BetweenNode:
		// Desugar to (E >= Lo AND E <= Hi) so coercion and arbitrary
		// bound expressions work uniformly.
		ge := BinNode{Op: ">=", L: v.E, R: v.Lo}
		le := BinNode{Op: "<=", L: v.E, R: v.Hi}
		return b.bind(BinNode{Op: "AND", L: ge, R: le}, schema)
	case InNode:
		e, k, err := b.bind(v.E, schema)
		if err != nil {
			return nil, 0, err
		}
		set := make([]tuple.Value, len(v.List))
		for i, lit := range v.List {
			val, err := litValue(lit)
			if err != nil {
				return nil, 0, err
			}
			set[i] = coerceValue(val, k)
		}
		return expr.In{Needle: e, Set: set}, tuple.KindBool, nil
	case LikeNode:
		e, k, err := b.bind(v.E, schema)
		if err != nil {
			return nil, 0, err
		}
		if k != tuple.KindString {
			return nil, 0, fmt.Errorf("sql: LIKE on non-string column")
		}
		if !strings.HasSuffix(v.Pattern, "%") || strings.Count(v.Pattern, "%") != 1 {
			return nil, 0, fmt.Errorf("sql: only prefix LIKE patterns ('abc%%') are supported, got %q", v.Pattern)
		}
		return expr.Prefix{E: e, Prefix: strings.TrimSuffix(v.Pattern, "%")}, tuple.KindBool, nil
	case CaseNode:
		if v.Else == nil {
			return nil, 0, fmt.Errorf("sql: CASE requires an ELSE arm (no NULLs in this engine)")
		}
		out := expr.Case{}
		var outKind tuple.Kind
		for i, w := range v.Whens {
			cond, ck, err := b.bind(w.Cond, schema)
			if err != nil {
				return nil, 0, err
			}
			if ck != tuple.KindBool {
				return nil, 0, fmt.Errorf("sql: CASE WHEN condition is not boolean")
			}
			then, tk, err := b.bind(w.Then, schema)
			if err != nil {
				return nil, 0, err
			}
			if i == 0 {
				outKind = tk
			}
			out.Branches = append(out.Branches, expr.CaseBranch{When: cond, Then: then})
		}
		els, _, err := b.bind(v.Else, schema)
		if err != nil {
			return nil, 0, err
		}
		out.Else = els
		return out, outKind, nil
	default:
		return nil, 0, fmt.Errorf("sql: cannot bind %T", n)
	}
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.EQ, "<>": expr.NE, "<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

var arithOps = map[string]expr.ArithOp{
	"+": expr.Add, "-": expr.Sub, "*": expr.Mul, "/": expr.Div,
}

func (b *binder) bindBin(v BinNode, schema *tuple.Schema) (expr.Expr, tuple.Kind, error) {
	switch v.Op {
	case "AND", "OR":
		l, lk, err := b.bind(v.L, schema)
		if err != nil {
			return nil, 0, err
		}
		r, rk, err := b.bind(v.R, schema)
		if err != nil {
			return nil, 0, err
		}
		if lk != tuple.KindBool || rk != tuple.KindBool {
			return nil, 0, fmt.Errorf("sql: %s over non-boolean operands", v.Op)
		}
		if v.Op == "AND" {
			return expr.NewAnd(l, r), tuple.KindBool, nil
		}
		return expr.NewOr(l, r), tuple.KindBool, nil
	}
	if op, ok := cmpOps[v.Op]; ok {
		l, lk, err := b.bind(v.L, schema)
		if err != nil {
			return nil, 0, err
		}
		r, rk, err := b.bind(v.R, schema)
		if err != nil {
			return nil, 0, err
		}
		l, r = coerceSides(l, lk, r, rk)
		return expr.Cmp{Op: op, L: l, R: r}, tuple.KindBool, nil
	}
	if op, ok := arithOps[v.Op]; ok {
		l, lk, err := b.bind(v.L, schema)
		if err != nil {
			return nil, 0, err
		}
		r, rk, err := b.bind(v.R, schema)
		if err != nil {
			return nil, 0, err
		}
		k := tuple.KindInt64
		if v.Op == "/" || lk == tuple.KindFloat64 || rk == tuple.KindFloat64 {
			k = tuple.KindFloat64
		}
		return expr.Arith{Op: op, L: l, R: r}, k, nil
	}
	return nil, 0, fmt.Errorf("sql: unknown operator %q", v.Op)
}

// coerceSides converts a string literal compared against a date column
// into a date literal ('1994-01-01' idiom), on either side.
func coerceSides(l expr.Expr, lk tuple.Kind, r expr.Expr, rk tuple.Kind) (expr.Expr, expr.Expr) {
	if lk == tuple.KindDate && rk == tuple.KindString {
		if c, ok := r.(expr.Const); ok {
			r = expr.Lit(coerceValue(c.V, tuple.KindDate))
		}
	}
	if rk == tuple.KindDate && lk == tuple.KindString {
		if c, ok := l.(expr.Const); ok {
			l = expr.Lit(coerceValue(c.V, tuple.KindDate))
		}
	}
	return l, r
}

// coerceValue converts a string value to a date when the target kind is
// date; other values pass through.
func coerceValue(v tuple.Value, want tuple.Kind) tuple.Value {
	if want == tuple.KindDate && v.K == tuple.KindString {
		if t, err := time.Parse("2006-01-02", v.AsString()); err == nil {
			return tuple.Date(t.Year(), t.Month(), t.Day())
		}
	}
	return v
}

func litValue(l LitNode) (tuple.Value, error) {
	switch l.Kind {
	case "int":
		n, err := strconv.ParseInt(l.Text, 10, 64)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("sql: bad integer %q", l.Text)
		}
		return tuple.Int(n), nil
	case "float":
		f, err := strconv.ParseFloat(l.Text, 64)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("sql: bad float %q", l.Text)
		}
		return tuple.Float(f), nil
	case "string":
		return tuple.Str(l.Text), nil
	case "bool":
		return tuple.Bool(l.Text == "TRUE"), nil
	case "date":
		t, err := time.Parse("2006-01-02", l.Text)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("sql: bad date %q", l.Text)
		}
		return tuple.Date(t.Year(), t.Month(), t.Day()), nil
	default:
		return tuple.Value{}, fmt.Errorf("sql: unknown literal kind %q", l.Kind)
	}
}

// buildShape assembles the post-join pipeline.
func (b *binder) buildShape(stmt *SelectStmt, postJoin []Node, joined *tuple.Schema) (func(engine.Iterator) engine.Iterator, error) {
	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}

	// Validate table qualifiers on every base-schema reference (bind
	// itself resolves by column name alone, since names are globally
	// unique).
	for _, it := range stmt.Items {
		if it.Expr != nil {
			if _, err := b.tablesOf(it.Expr); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range stmt.GroupBy {
		if _, err := b.ownerOf(g); err != nil {
			return nil, err
		}
	}
	if !hasAgg {
		for _, oi := range stmt.OrderBy {
			if _, err := b.tablesOf(oi.Expr); err != nil {
				return nil, err
			}
		}
	}

	// Pre-bind everything so plan-time errors surface at Plan, not Run.
	var postPred expr.Expr
	if len(postJoin) > 0 {
		p, err := b.bindConjuncts(postJoin, joined)
		if err != nil {
			return nil, err
		}
		postPred = p
	}

	if !hasAgg {
		return b.buildPlainShape(stmt, postPred, joined)
	}
	return b.buildAggShape(stmt, postPred, joined)
}

// buildPlainShape: filters → sort → project → limit; with DISTINCT the
// order becomes filters → project → distinct → sort → limit (and ORDER BY
// must reference output columns).
func (b *binder) buildPlainShape(stmt *SelectStmt, postPred expr.Expr, joined *tuple.Schema) (func(engine.Iterator) engine.Iterator, error) {
	star := len(stmt.Items) == 1 && stmt.Items[0].Star
	var projCols []engine.ProjectCol
	if !star {
		for i, it := range stmt.Items {
			if it.Star {
				return nil, fmt.Errorf("sql: * must be the only select item")
			}
			e, k, err := b.bind(it.Expr, joined)
			if err != nil {
				return nil, err
			}
			projCols = append(projCols, engine.ProjectCol{Name: outName(it, i), Kind: k, E: e})
		}
	}
	sortSchema := joined
	if stmt.Distinct {
		if star {
			return nil, fmt.Errorf("sql: SELECT DISTINCT * is not supported; name the columns")
		}
		cols := make([]tuple.Column, len(projCols))
		for i, pc := range projCols {
			cols[i] = tuple.Column{Name: pc.Name, Kind: pc.Kind}
		}
		sortSchema = tuple.NewSchema(cols...)
	}
	var sortKeys []engine.SortKey
	for _, oi := range stmt.OrderBy {
		var e expr.Expr
		var err error
		if stmt.Distinct {
			e, _, err = b.bindOutput(oi.Expr, sortSchema)
		} else {
			e, _, err = b.bind(oi.Expr, sortSchema)
		}
		if err != nil {
			return nil, err
		}
		sortKeys = append(sortKeys, engine.SortKey{E: e, Desc: oi.Desc})
	}
	limit := stmt.Limit
	distinct := stmt.Distinct
	return func(in engine.Iterator) engine.Iterator {
		it := in
		if postPred != nil {
			it = engine.NewFilter(it, postPred)
		}
		if distinct {
			it = engine.NewProject(it, projCols)
			it = engine.NewDistinct(it)
			if len(sortKeys) > 0 {
				it = engine.NewSort(it, sortKeys)
			}
		} else {
			if len(sortKeys) > 0 {
				it = engine.NewSort(it, sortKeys)
			}
			if !star {
				it = engine.NewProject(it, projCols)
			}
		}
		if limit >= 0 {
			it = engine.NewLimit(it, limit)
		}
		return it
	}, nil
}

// buildAggShape: filters → hash-agg → having → project → sort → limit.
func (b *binder) buildAggShape(stmt *SelectStmt, postPred expr.Expr, joined *tuple.Schema) (func(engine.Iterator) engine.Iterator, error) {
	groupNames := make(map[string]bool)
	var groups []engine.GroupCol
	for _, g := range stmt.GroupBy {
		idx, ok := joined.ColIndex(g.Column)
		if !ok {
			return nil, fmt.Errorf("sql: GROUP BY column %q not in scope", g.Column)
		}
		groups = append(groups, engine.GroupCol{
			Name: g.Column, Kind: joined.Cols[idx].Kind, E: expr.NewCol(idx, g.Column),
		})
		groupNames[g.Column] = true
	}
	var aggs []engine.AggSpec
	type outCol struct {
		name string
		src  string // column in the HashAgg output
	}
	var outs []outCol
	for i, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: * cannot be combined with aggregation")
		}
		if it.Agg == "" {
			col, ok := it.Expr.(ColNode)
			if !ok || !groupNames[col.Ref.Column] {
				return nil, fmt.Errorf("sql: non-aggregate select item %q must be a GROUP BY column", it.Expr.nodeString())
			}
			outs = append(outs, outCol{name: outName(it, i), src: col.Ref.Column})
			continue
		}
		spec := engine.AggSpec{Name: fmt.Sprintf("agg%d", i)}
		switch it.Agg {
		case "COUNT":
			spec.Kind = engine.AggCount
		case "SUM":
			spec.Kind = engine.AggSum
		case "AVG":
			spec.Kind = engine.AggAvg
		case "MIN":
			spec.Kind = engine.AggMin
		case "MAX":
			spec.Kind = engine.AggMax
		}
		if !it.CountStar {
			e, k, err := b.bind(it.Expr, joined)
			if err != nil {
				return nil, err
			}
			spec.Arg = e
			spec.ArgKind = k
		}
		aggs = append(aggs, spec)
		outs = append(outs, outCol{name: outName(it, i), src: spec.Name})
	}

	// The HashAgg output schema: groups then aggs; compute it to bind
	// the projection, HAVING and ORDER BY.
	probe := engine.NewHashAgg(engine.NewValues(joined, nil), groups, aggs)
	aggSchema := probe.Schema()

	var projCols []engine.ProjectCol
	for _, oc := range outs {
		idx := aggSchema.MustColIndex(oc.src)
		projCols = append(projCols, engine.ProjectCol{
			Name: oc.name, Kind: aggSchema.Cols[idx].Kind, E: expr.NewCol(idx, oc.src),
		})
	}
	outCols := make([]tuple.Column, len(projCols))
	for i, pc := range projCols {
		outCols[i] = tuple.Column{Name: pc.Name, Kind: pc.Kind}
	}
	outSchema := tuple.NewSchema(outCols...)

	var havingPred expr.Expr
	if stmt.Having != nil {
		// HAVING references output aliases / group columns.
		p, k, err := b.bindOutput(stmt.Having, outSchema)
		if err != nil {
			return nil, err
		}
		if k != tuple.KindBool {
			return nil, fmt.Errorf("sql: HAVING is not boolean")
		}
		havingPred = p
	}
	var sortKeys []engine.SortKey
	for _, oi := range stmt.OrderBy {
		e, _, err := b.bindOutput(oi.Expr, outSchema)
		if err != nil {
			return nil, err
		}
		sortKeys = append(sortKeys, engine.SortKey{E: e, Desc: oi.Desc})
	}
	limit := stmt.Limit

	return func(in engine.Iterator) engine.Iterator {
		it := in
		if postPred != nil {
			it = engine.NewFilter(it, postPred)
		}
		it = engine.NewHashAgg(it, groups, aggs)
		it = engine.NewProject(it, projCols)
		if havingPred != nil {
			it = engine.NewFilter(it, havingPred)
		}
		if len(sortKeys) > 0 {
			it = engine.NewSort(it, sortKeys)
		}
		if limit >= 0 {
			it = engine.NewLimit(it, limit)
		}
		return it
	}, nil
}

// bindOutput binds a node against the final output schema (aliases and
// group columns), used by HAVING and ORDER BY under aggregation. Column
// qualifiers are dropped: they are not meaningful against computed
// outputs.
func (b *binder) bindOutput(n Node, out *tuple.Schema) (expr.Expr, tuple.Kind, error) {
	return b.bind(stripQualifiers(n), out)
}

// stripQualifiers removes table qualifiers for output binding.
func stripQualifiers(n Node) Node {
	switch v := n.(type) {
	case ColNode:
		v.Ref.Table = ""
		return v
	case BinNode:
		v.L, v.R = stripQualifiers(v.L), stripQualifiers(v.R)
		return v
	case NotNode:
		v.E = stripQualifiers(v.E)
		return v
	case BetweenNode:
		v.E, v.Lo, v.Hi = stripQualifiers(v.E), stripQualifiers(v.Lo), stripQualifiers(v.Hi)
		return v
	case LikeNode:
		v.E = stripQualifiers(v.E)
		return v
	case InNode:
		v.E = stripQualifiers(v.E)
		return v
	case CaseNode:
		for i := range v.Whens {
			v.Whens[i].Cond = stripQualifiers(v.Whens[i].Cond)
			v.Whens[i].Then = stripQualifiers(v.Whens[i].Then)
		}
		if v.Else != nil {
			v.Else = stripQualifiers(v.Else)
		}
		return v
	default:
		return n
	}
}

// referencedColumns computes, per FROM table, the base columns the
// statement can ever read: WHERE (local filters, join keys and post-join
// terms alike), select items, GROUP BY, and — when it binds against the
// base schema — ORDER BY. HAVING and the ORDER BY of aggregated or
// DISTINCT queries bind against the output schema, whose inputs are
// already covered by the select items and GROUP BY. The result feeds
// mjoin.Relation.Cols / engine.SeqScan.Project: scans over columnar
// segments decode exactly these blocks.
//
// The analysis is strictly conservative: a SELECT *, or any reference it
// cannot resolve (binding will fail later with a proper error anyway),
// widens the projection to every column (nil). A table none of whose
// columns are referenced — SELECT COUNT(*) with no predicate — yields an
// empty non-nil set: the scan needs only row counts.
func referencedColumns(stmt *SelectStmt, b *binder) [][]int {
	refs := make([]map[string]bool, len(b.tables))
	for i := range refs {
		refs[i] = make(map[string]bool)
	}
	all := false
	var walk func(n Node)
	walk = func(n Node) {
		if all || n == nil {
			return
		}
		switch v := n.(type) {
		case ColNode:
			ti, err := b.ownerOf(v.Ref)
			if err != nil {
				all = true // unresolvable: give up rather than under-read
				return
			}
			refs[ti][v.Ref.Column] = true
		case BinNode:
			walk(v.L)
			walk(v.R)
		case NotNode:
			walk(v.E)
		case BetweenNode:
			walk(v.E)
			walk(v.Lo)
			walk(v.Hi)
		case InNode:
			walk(v.E)
		case LikeNode:
			walk(v.E)
		case CaseNode:
			for _, w := range v.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(v.Else)
		case LitNode:
		default:
			all = true
		}
	}
	walk(stmt.Where)
	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	for _, it := range stmt.Items {
		if it.Star {
			all = true
			break
		}
		if it.Expr != nil && !it.CountStar {
			walk(it.Expr)
		}
	}
	for _, g := range stmt.GroupBy {
		walk(ColNode{Ref: g})
	}
	if !hasAgg && !stmt.Distinct {
		for _, oi := range stmt.OrderBy {
			walk(oi.Expr)
		}
	}
	out := make([][]int, len(b.tables))
	if all {
		return out // nil per table: decode everything
	}
	for ti, t := range b.tables {
		schema := t.meta.Schema
		if len(refs[ti]) == schema.Len() {
			continue // every column referenced: nil, skip the fill work
		}
		cols := make([]int, 0, len(refs[ti]))
		for ci, c := range schema.Cols {
			if refs[ti][c.Name] {
				cols = append(cols, ci)
			}
		}
		out[ti] = cols
	}
	return out
}

// outName picks the output column name for a select item.
func outName(it SelectItem, pos int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != "" {
		return strings.ToLower(it.Agg) + "_" + strconv.Itoa(pos)
	}
	if c, ok := it.Expr.(ColNode); ok {
		return c.Ref.Column
	}
	return "col_" + strconv.Itoa(pos)
}
