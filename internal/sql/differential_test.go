package sql_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/mjoin"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// The differential suite proves the batched execution core end-to-end:
// for representative scan, filter, join, aggregation and sort queries,
// the row-at-a-time Iterator protocol and the batch-at-a-time
// BatchIterator protocol must produce identical results on both engines —
// the vanilla pull plan (ModeVanilla's executor) and the out-of-order
// MJoin (ModeSkipper's executor, fed a scrambled arrival order).

// diffQueries are the representative shapes. orderSensitive marks queries
// whose ORDER BY fully determines the output order (unique sort keys), so
// results compare positionally; the rest compare as multisets.
var diffQueries = []struct {
	name           string
	query          string
	orderSensitive bool
}{
	{"scan-filter-project", "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000.0 ORDER BY o_orderkey", true},
	{"join-sort-limit", "SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name LIMIT 8", true},
	{"join-agg-sort", "SELECT l_shipmode, COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY l_shipmode ORDER BY l_shipmode", true},
	{"distinct", "SELECT DISTINCT o_orderpriority FROM orders", false},
	{"global-agg", "SELECT COUNT(*) AS n, MIN(l_quantity) AS lo, MAX(l_quantity) AS hi FROM lineitem", false},
	{"post-join-filter", "SELECT c_custkey, o_orderkey FROM customer, orders WHERE c_custkey = o_custkey AND o_orderkey > c_nationkey", false},
}

// scrambledSource delivers requested objects in a deterministic shuffled
// order — the out-of-order arrivals the MJoin state manager is built for.
type scrambledSource struct {
	store map[segment.ObjectID]*segment.Segment
	rng   *rand.Rand
	queue []*segment.Segment
}

func (s *scrambledSource) Request(objs []segment.ObjectID) {
	order := make([]segment.ObjectID, len(objs))
	copy(order, objs)
	s.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, id := range order {
		s.queue = append(s.queue, s.store[id])
	}
}

func (s *scrambledSource) NextArrival() (*segment.Segment, error) {
	sg := s.queue[0]
	s.queue = s.queue[1:]
	return sg, nil
}

// drainRowwise pulls a shaped plan one row at a time through the classic
// Iterator protocol.
func drainRowwise(t *testing.T, it engine.Iterator) []tuple.Row {
	t.Helper()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []tuple.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

func canonical(rows []tuple.Row, orderSensitive bool) []string {
	out := render(rows)
	if !orderSensitive {
		sort.Strings(out)
	}
	return out
}

func TestDifferentialRowVsBatchBothEngines(t *testing.T) {
	pl, ds := tpchPlanner(t)
	for _, tc := range diffQueries {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec, err := pl.Plan(tc.query)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}

			// Vanilla executor: plan-order pull over the in-memory store.
			ctx := engine.NewTestCtx(ds.Store)
			mkVanilla := func() engine.Iterator {
				it, err := skipper.BuildPullPlan(ctx, spec.Join)
				if err != nil {
					t.Fatal(err)
				}
				if spec.Shape != nil {
					it = spec.Shape(it)
				}
				return it
			}
			vanillaBatch, err := engine.CollectBatches(engine.AsBatch(mkVanilla()))
			if err != nil {
				t.Fatal(err)
			}
			vanillaRow := drainRowwise(t, mkVanilla())

			// Skipper executor: MJoin over scrambled arrivals, then the
			// same shaping stage over the result bridge.
			mkSkipper := func() []tuple.Row {
				src := &scrambledSource{store: ds.Store, rng: rand.New(rand.NewSource(7))}
				res, err := mjoin.Run(spec.Join, mjoin.DefaultConfig(len(spec.Join.Objects())), src)
				if err != nil {
					t.Fatal(err)
				}
				return res.Rows
			}
			mkShaped := func(rows []tuple.Row) engine.Iterator {
				it := engine.Iterator(engine.NewValues(spec.Join.OutputSchema(), rows))
				if spec.Shape != nil {
					it = spec.Shape(it)
				}
				return it
			}
			skipRows := mkSkipper()
			skipperBatch, err := engine.CollectBatches(engine.AsBatch(mkShaped(skipRows)))
			if err != nil {
				t.Fatal(err)
			}
			skipperRow := drainRowwise(t, mkShaped(skipRows))

			want := canonical(vanillaBatch, tc.orderSensitive)
			if len(want) == 0 {
				t.Fatalf("query produced no rows; differential check is vacuous")
			}
			for _, got := range []struct {
				label string
				rows  []tuple.Row
			}{
				{"vanilla/row", vanillaRow},
				{"skipper/batch", skipperBatch},
				{"skipper/row", skipperRow},
			} {
				if g := canonical(got.rows, tc.orderSensitive); !reflect.DeepEqual(g, want) {
					t.Fatalf("%s differs from vanilla/batch:\n got %v\nwant %v", got.label, g, want)
				}
			}
		})
	}
}

// TestDifferentialClusterModes runs the same queries through the full
// cluster harness in both modes, at serial and parallel execution
// settings, and checks the reported row counts against the locally
// evaluated ground truth.
func TestDifferentialClusterModes(t *testing.T) {
	pl, ds := tpchPlanner(t)
	for _, tc := range diffQueries {
		spec, err := pl.Plan(tc.query)
		if err != nil {
			t.Fatalf("%s: plan: %v", tc.name, err)
		}
		truth, err := workload.Evaluate(ds, spec)
		if err != nil {
			t.Fatalf("%s: evaluate: %v", tc.name, err)
		}
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			for _, dop := range []int{1, 2, 8} {
				st := make(map[segment.ObjectID]*segment.Segment)
				ds.MergeInto(st)
				c := &skipper.Client{Tenant: 0, Mode: mode, Catalog: ds.Catalog,
					Queries: []skipper.QuerySpec{spec}, CacheObjects: len(spec.Join.Objects()),
					Parallelism: dop}
				res, err := (&skipper.Cluster{Clients: []*skipper.Client{c}, Store: st}).Run()
				if err != nil {
					t.Fatalf("%s/%v/dop=%d: %v", tc.name, mode, dop, err)
				}
				if res.Clients[0].Rows != int64(len(truth)) {
					t.Fatalf("%s/%v/dop=%d: %d rows, ground truth %d", tc.name, mode, dop, res.Clients[0].Rows, len(truth))
				}
			}
		}
	}
}
