package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// exactQuantile is the oracle the sketch is tested against: the
// nearest-rank (ceil(q·n)-th smallest) element of the sorted data.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// checkQuantiles asserts every probed quantile is within the γ
// relative-error contract of the exact answer.
func checkQuantiles(t *testing.T, s *LatencySketch, data []time.Duration) {
	t.Helper()
	sorted := append([]time.Duration(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		exact := exactQuantile(sorted, q)
		if q > 0 && q < 1 && exact < time.Nanosecond {
			// Interior quantiles cannot distinguish sub-nanosecond (or
			// non-positive) observations: they share bucket 0. The exact
			// extremes (q=0, q=1) stay exact via min/max.
			exact = time.Nanosecond
		}
		got := s.Quantile(q)
		tol := time.Duration(math.Ceil(SketchAccuracy * math.Abs(float64(exact))))
		if got < exact-tol || got > exact+tol {
			t.Errorf("q=%.2f: got %v, exact %v (tolerance %v)", q, got, exact, tol)
		}
	}
}

// TestSketchExactSmallInputs runs the differential against exact sorted
// quantiles on assorted small inputs, including the shapes a latency
// distribution actually takes (clustered with a heavy tail).
func TestSketchExactSmallInputs(t *testing.T) {
	cases := map[string][]time.Duration{
		"single":    {42 * time.Millisecond},
		"two":       {time.Millisecond, time.Second},
		"uniform":   nil, // filled below
		"clustered": nil,
		"identical": {7 * time.Millisecond, 7 * time.Millisecond, 7 * time.Millisecond, 7 * time.Millisecond},
		"tiny":      {0, time.Nanosecond, 2 * time.Nanosecond, -time.Nanosecond},
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		cases["uniform"] = append(cases["uniform"], time.Duration(rng.Int63n(int64(time.Second))))
	}
	for i := 0; i < 95; i++ {
		cases["clustered"] = append(cases["clustered"], 5*time.Millisecond+time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	for i := 0; i < 5; i++ {
		cases["clustered"] = append(cases["clustered"], time.Second+time.Duration(rng.Int63n(int64(time.Second))))
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var s LatencySketch
			for _, d := range data {
				s.Record(d)
			}
			if s.Count() != int64(len(data)) {
				t.Fatalf("count %d, want %d", s.Count(), len(data))
			}
			checkQuantiles(t, &s, data)
		})
	}
}

func TestSketchEmpty(t *testing.T) {
	var s LatencySketch
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty sketch quantile = %v, want 0", got)
	}
	snap := s.Snapshot()
	if snap.Count != 0 || snap.P99 != 0 || snap.Mean() != 0 {
		t.Errorf("empty snapshot not zero: %+v", snap)
	}
}

// TestSketchMergeAssociativity: (a⊕b)⊕c and a⊕(b⊕c) must agree exactly
// — every bucket, every quantile, count, sum and extremes — and both
// must equal a sketch that recorded all three streams directly.
func TestSketchMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	streams := make([][]time.Duration, 3)
	for i := range streams {
		for j := 0; j < 50+rng.Intn(100); j++ {
			streams[i] = append(streams[i], time.Duration(rng.Int63n(int64(10*time.Second))))
		}
	}
	fill := func(idx ...int) *LatencySketch {
		var s LatencySketch
		for _, i := range idx {
			for _, d := range streams[i] {
				s.Record(d)
			}
		}
		return &s
	}
	// left = (a⊕b)⊕c
	left := fill(0)
	ab := fill(1)
	left.Merge(ab)
	left.Merge(fill(2))
	// right = a⊕(b⊕c)
	bc := fill(1)
	bc.Merge(fill(2))
	right := fill(0)
	right.Merge(bc)
	direct := fill(0, 1, 2)

	for _, pair := range []struct {
		name string
		a, b *LatencySketch
	}{{"left-vs-right", left, right}, {"left-vs-direct", left, direct}} {
		if pair.a.counts != pair.b.counts {
			t.Errorf("%s: bucket arrays differ", pair.name)
		}
		sa, sb := pair.a.Snapshot(), pair.b.Snapshot()
		if sa != sb {
			t.Errorf("%s: snapshots differ: %+v vs %+v", pair.name, sa, sb)
		}
	}
	var all []time.Duration
	for _, st := range streams {
		all = append(all, st...)
	}
	checkQuantiles(t, left, all)
}

// TestSketchMergeEdgeCases covers empty and self merges.
func TestSketchMergeEdgeCases(t *testing.T) {
	var a, empty LatencySketch
	a.Record(3 * time.Millisecond)
	a.Merge(&empty) // no-op
	a.Merge(nil)    // no-op
	a.Merge(&a)     // self-merge must not double-count
	if a.Count() != 1 {
		t.Fatalf("count after no-op merges = %d, want 1", a.Count())
	}
	empty.Merge(&a)
	if empty.Count() != 1 || empty.Quantile(1) != 3*time.Millisecond {
		t.Fatalf("merge into empty lost data: count=%d", empty.Count())
	}
}

// TestSketchConcurrentRecorders hammers one sketch from many goroutines
// — the shape the server uses it in — and checks the totals. Run under
// -race in CI.
func TestSketchConcurrentRecorders(t *testing.T) {
	var s LatencySketch
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				s.Record(time.Duration(rng.Int63n(int64(time.Second))))
				if i%100 == 0 {
					_ = s.Quantile(0.95) // concurrent reads too
					_ = s.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := s.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	snap := s.Snapshot()
	if snap.P50 <= 0 || snap.P95 < snap.P50 || snap.P99 < snap.P95 || snap.Max < snap.P99 {
		t.Fatalf("quantiles not monotone: %+v", snap)
	}
}

// TestAdmissionCounters exercises the serving counters incl. the
// concurrent path and snapshot totals.
func TestAdmissionCounters(t *testing.T) {
	var c AdmissionCounters
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Admitted.Add(1)
				c.AddQueueWait(time.Millisecond)
				c.AddQueueWait(0) // ignored
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Admitted != 400 || snap.QueueWait != 400*time.Millisecond {
		t.Fatalf("snapshot = %+v", snap)
	}
	total := snap.Add(AdmissionSnapshot{Admitted: 1, Rejected: 2})
	if total.Admitted != 401 || total.Rejected != 2 {
		t.Fatalf("Add = %+v", total)
	}
}

// Regression for the empty-sketch Quantile contract: every q — the
// interior, and the exactly-tracked endpoints q=0/q=1 where min/max
// were never set — returns the defined "no observations" value 0.
func TestSketchEmptyQuantileAllQ(t *testing.T) {
	var s LatencySketch
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty sketch Quantile(%g) = %v, want 0", q, got)
		}
	}
	snap := s.Snapshot()
	if snap.P999 != 0 || snap.Min != 0 || snap.Max != 0 {
		t.Errorf("empty snapshot not zero: %+v", snap)
	}
	if !strings.Contains(snap.String(), "p99.9=") {
		t.Errorf("snapshot string missing p99.9 column: %s", snap.String())
	}
}

// P999 must sit between P99 and Max and track the tail.
func TestSketchP999(t *testing.T) {
	var s LatencySketch
	for i := 1; i <= 10000; i++ {
		s.Record(time.Duration(i) * time.Microsecond)
	}
	snap := s.Snapshot()
	if snap.P999 < snap.P99 || snap.P999 > snap.Max {
		t.Fatalf("p99.9 out of order: p99=%v p99.9=%v max=%v", snap.P99, snap.P999, snap.Max)
	}
	exact := 9990 * time.Microsecond
	if err := math.Abs(float64(snap.P999-exact)) / float64(exact); err > 2*SketchAccuracy {
		t.Fatalf("p99.9 = %v, want ≈%v (rel err %.4f)", snap.P999, exact, err)
	}
}

// AdmissionSnapshot under concurrent recorders: each field is loaded
// atomically, so a snapshot taken mid-storm must never exceed the
// totals written so far, and invariants that hold at every quiescent
// point (admitted ≥ completed+failed counted *for admitted work*)
// must hold after the storm settles.
func TestAdmissionCountersConcurrentSnapshot(t *testing.T) {
	var c AdmissionCounters
	const workers, perWorker = 8, 1000
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot reader racing the writers: no torn/negative values, and
	// counts never exceed the final totals.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := c.Snapshot()
			for name, v := range map[string]int64{
				"admitted": s.Admitted, "rejected": s.Rejected, "queued": s.Queued,
				"expired": s.Expired, "completed": s.Completed, "failed": s.Failed,
			} {
				if v < 0 || v > workers*perWorker {
					t.Errorf("snapshot %s = %d out of range", name, v)
					return
				}
			}
			if s.Completed > s.Admitted {
				t.Errorf("snapshot shows %d completed > %d admitted", s.Completed, s.Admitted)
				return
			}
			if s.QueueWait < 0 {
				t.Errorf("negative queue wait %v", s.QueueWait)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				// Admit strictly before completing, so the reader's
				// completed ≤ admitted invariant holds at every cut.
				c.Admitted.Add(1)
				c.AddQueueWait(time.Microsecond)
				c.Completed.Add(1)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	s := c.Snapshot()
	if s.Admitted != workers*perWorker || s.Completed != workers*perWorker {
		t.Fatalf("final snapshot lost updates: %+v", s)
	}
	if s.QueueWait != time.Duration(workers*perWorker)*time.Microsecond {
		t.Fatalf("queue wait = %v, want %v", s.QueueWait, time.Duration(workers*perWorker)*time.Microsecond)
	}
	sum := s.Add(s)
	if sum.Admitted != 2*s.Admitted || sum.QueueWait != 2*s.QueueWait {
		t.Fatalf("Add not field-wise: %+v", sum)
	}
}
