// Package metrics computes the evaluation metrics of §5: per-client
// execution-time breakdowns (switch / transfer / processing, Figure 9 and
// Table 3) and the stretch-based fairness metrics (L2-norm and maximum
// stretch, Figure 12).
package metrics

import (
	"math"
	"sort"
	"time"

	"repro/internal/csd"
	"repro/internal/engine"
)

// Stretch is observed/ideal execution time: the slowdown a job suffers
// from sharing the platform.
func Stretch(observed, ideal time.Duration) float64 {
	if ideal <= 0 {
		return math.Inf(1)
	}
	return float64(observed) / float64(ideal)
}

// L2Norm aggregates stretches into a single metric that penalizes both a
// high average and high outliers: sqrt(Σ sᵢ²).
func L2Norm(stretches []float64) float64 {
	sum := 0.0
	for _, s := range stretches {
		sum += s * s
	}
	return math.Sqrt(sum)
}

// Max returns the maximum of the values (0 for an empty slice).
func Max(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// normalize sorts intervals and merges overlaps.
func normalize(ivs []csd.Interval) []csd.Interval {
	if len(ivs) == 0 {
		return nil
	}
	out := append([]csd.Interval(nil), ivs...)
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	merged := out[:1]
	for _, iv := range out[1:] {
		last := &merged[len(merged)-1]
		if iv.From <= last.To {
			if iv.To > last.To {
				last.To = iv.To
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// Total sums interval lengths after merging overlaps.
func Total(ivs []csd.Interval) time.Duration {
	var d time.Duration
	for _, iv := range normalize(ivs) {
		d += iv.To - iv.From
	}
	return d
}

// Overlap returns the total duration covered by both interval sets.
func Overlap(a, b []csd.Interval) time.Duration {
	na, nb := normalize(a), normalize(b)
	var d time.Duration
	i, j := 0, 0
	for i < len(na) && j < len(nb) {
		lo := na[i].From
		if nb[j].From > lo {
			lo = nb[j].From
		}
		hi := na[i].To
		if nb[j].To < hi {
			hi = nb[j].To
		}
		if hi > lo {
			d += hi - lo
		}
		if na[i].To < nb[j].To {
			i++
		} else {
			j++
		}
	}
	return d
}

// Breakdown splits a client's execution time into the paper's categories.
type Breakdown struct {
	Total      time.Duration
	Processing time.Duration // query execution (virtual compute)
	Fuse       time.Duration // FUSE file-system overhead (vanilla only)
	Switch     time.Duration // stall time attributable to group switches
	Transfer   time.Duration // remaining stall: waiting for data
}

// Compute derives the breakdown: the client's stall windows are
// intersected with the device's switch windows to attribute stall time to
// group switching; the rest of the stall is data transfer.
func Compute(total, processing, fuse time.Duration, stalls, switches []csd.Interval) Breakdown {
	sw := Overlap(stalls, switches)
	stall := Total(stalls)
	return Breakdown{
		Total:      total,
		Processing: processing,
		Fuse:       fuse,
		Switch:     sw,
		Transfer:   stall - sw,
	}
}

// PruneRatio returns the fraction of candidate segment fetches that data
// skipping avoided: skipped / (issued + skipped), or 0 when there were no
// candidates. Issued should count the requests actually sent (including
// reissues); skipped the requests the statistics subsystem suppressed.
func PruneRatio(issued, skipped int) float64 {
	if issued+skipped <= 0 {
		return 0
	}
	return float64(skipped) / float64(issued+skipped)
}

// HitRatio returns the fraction of segment-cache lookups that hit:
// hits / (hits + misses), or 0 when the cache saw no traffic.
func HitRatio(hits, misses int64) float64 {
	if hits+misses <= 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// ProjectionRatio returns the fraction of candidate block bytes that
// projection pushdown left undecoded: skipped / (decoded + skipped), or
// 0 when nothing was read. Decoded should count the block bytes a scan
// actually decoded; skipped the block bytes its projection passed over.
func ProjectionRatio(decoded, skipped int64) float64 {
	if decoded+skipped <= 0 {
		return 0
	}
	return float64(skipped) / float64(decoded+skipped)
}

// PipelineBreakdown digests a client's asynchronous-pipeline counters
// into report-ready figures: how much decode work ran, how much of it
// the pipeline kept off the critical path, and what the consumer
// actually stalled on in wall-clock time.
type PipelineBreakdown struct {
	DecodeBusy  time.Duration // total decode time, any worker
	DecodeStall time.Duration // consumer blocked waiting for a decode
	FetchStall  time.Duration // consumer blocked waiting for data
	Hidden      time.Duration // decode time overlapped with other work
	Decodes     int           // segments decoded
	Overlapped  int           // decodes complete before the consumer asked
}

// PipelineFrom derives the breakdown from raw engine counters.
func PipelineFrom(p engine.PipeStats) PipelineBreakdown {
	return PipelineBreakdown{
		DecodeBusy:  p.DecodeBusy,
		DecodeStall: p.DecodeStall,
		FetchStall:  p.FetchStall,
		Hidden:      p.Hidden(),
		Decodes:     p.Decodes,
		Overlapped:  p.DecodesOverlapped,
	}
}

// OverlapRatio returns the fraction of decode time the pipeline hid
// behind other work: Hidden / DecodeBusy, or 0 when nothing was
// decoded. 0 is the serial baseline (inline decode stalls for its full
// duration); 1 means decode was entirely off the critical path.
func (b PipelineBreakdown) OverlapRatio() float64 {
	if b.DecodeBusy <= 0 {
		return 0
	}
	return float64(b.Hidden) / float64(b.DecodeBusy)
}

// OverlappedFraction returns the fraction of decoded segments that were
// already done when the consumer asked for them.
func (b PipelineBreakdown) OverlappedFraction() float64 {
	if b.Decodes <= 0 {
		return 0
	}
	return float64(b.Overlapped) / float64(b.Decodes)
}

// Percent returns 100·part/total, or 0 when total is zero.
func Percent(part, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
