package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/csd"
	"repro/internal/engine"
)

func iv(from, to int) csd.Interval {
	return csd.Interval{From: time.Duration(from) * time.Second, To: time.Duration(to) * time.Second}
}

func TestStretch(t *testing.T) {
	if s := Stretch(20*time.Second, 10*time.Second); s != 2 {
		t.Fatalf("stretch %v", s)
	}
	if s := Stretch(time.Second, 0); !math.IsInf(s, 1) {
		t.Fatalf("zero ideal stretch %v", s)
	}
}

func TestL2Norm(t *testing.T) {
	if got := L2Norm([]float64{3, 4}); got != 5 {
		t.Fatalf("l2 %v", got)
	}
	if got := L2Norm(nil); got != 0 {
		t.Fatalf("empty l2 %v", got)
	}
}

func TestMax(t *testing.T) {
	if got := Max([]float64{1, 7, 3}); got != 7 {
		t.Fatalf("max %v", got)
	}
}

func TestTotalMergesOverlaps(t *testing.T) {
	total := Total([]csd.Interval{iv(0, 10), iv(5, 15), iv(20, 25)})
	if total != 20*time.Second {
		t.Fatalf("total %v, want 20s", total)
	}
}

func TestOverlapBasic(t *testing.T) {
	a := []csd.Interval{iv(0, 10), iv(20, 30)}
	b := []csd.Interval{iv(5, 25)}
	if got := Overlap(a, b); got != 10*time.Second {
		t.Fatalf("overlap %v, want 10s", got)
	}
}

func TestOverlapDisjoint(t *testing.T) {
	if got := Overlap([]csd.Interval{iv(0, 5)}, []csd.Interval{iv(5, 9)}); got != 0 {
		t.Fatalf("touching intervals overlap %v", got)
	}
}

func TestOverlapUnsortedInputs(t *testing.T) {
	a := []csd.Interval{iv(20, 30), iv(0, 10)}
	b := []csd.Interval{iv(25, 40), iv(2, 4)}
	if got := Overlap(a, b); got != 7*time.Second {
		t.Fatalf("overlap %v, want 7s", got)
	}
}

// Property: overlap is symmetric and bounded by each side's total.
func TestOverlapProperties(t *testing.T) {
	gen := func(seed int64) []csd.Interval {
		var out []csd.Interval
		x := seed
		next := func(n int64) int64 {
			x = x*6364136223846793005 + 1442695040888963407
			v := x % n
			if v < 0 {
				v += n
			}
			return v
		}
		for i := int64(0); i < 1+next(6); i++ {
			from := next(100)
			out = append(out, iv(int(from), int(from+1+next(20))))
		}
		return out
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		ab, ba := Overlap(a, b), Overlap(b, a)
		if ab != ba {
			return false
		}
		return ab <= Total(a) && ab <= Total(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeBreakdown(t *testing.T) {
	// 100 s total; 40 s processing, 2 s fuse; stalls cover [40,98);
	// switches at [50,60) and [70,80) fall inside the stall.
	b := Compute(
		100*time.Second, 40*time.Second, 2*time.Second,
		[]csd.Interval{iv(40, 98)},
		[]csd.Interval{iv(50, 60), iv(70, 80)},
	)
	if b.Switch != 20*time.Second {
		t.Fatalf("switch %v", b.Switch)
	}
	if b.Transfer != 38*time.Second {
		t.Fatalf("transfer %v", b.Transfer)
	}
	if got := Percent(b.Switch, b.Total); got != 20 {
		t.Fatalf("switch%% %v", got)
	}
}

func TestSwitchOutsideStallNotAttributed(t *testing.T) {
	// A switch that happens while the client is computing (not stalled)
	// must not be charged to the client.
	b := Compute(
		50*time.Second, 30*time.Second, 0,
		[]csd.Interval{iv(30, 50)},
		[]csd.Interval{iv(0, 10)},
	)
	if b.Switch != 0 {
		t.Fatalf("switch %v, want 0", b.Switch)
	}
	if b.Transfer != 20*time.Second {
		t.Fatalf("transfer %v", b.Transfer)
	}
}

func TestPercentZeroTotal(t *testing.T) {
	if got := Percent(time.Second, 0); got != 0 {
		t.Fatalf("percent %v", got)
	}
}

func TestHitRatio(t *testing.T) {
	if got := HitRatio(0, 0); got != 0 {
		t.Fatalf("no traffic: %v", got)
	}
	if got := HitRatio(3, 1); got != 0.75 {
		t.Fatalf("3/4: %v", got)
	}
	if got := HitRatio(5, 0); got != 1 {
		t.Fatalf("all hits: %v", got)
	}
}

func TestPruneRatio(t *testing.T) {
	if got := PruneRatio(0, 0); got != 0 {
		t.Fatalf("no candidates: %v", got)
	}
	if got := PruneRatio(12, 45); got <= 0.78 || got >= 0.80 {
		t.Fatalf("12 issued / 45 skipped: %v", got)
	}
	if got := PruneRatio(0, 5); got != 1 {
		t.Fatalf("all skipped: %v", got)
	}
}

func TestPipelineBreakdown(t *testing.T) {
	ps := engine.PipeStats{
		FetchStall:        2 * time.Second,
		DecodeStall:       time.Second,
		DecodeBusy:        4 * time.Second,
		Decodes:           10,
		DecodesOverlapped: 6,
	}
	b := PipelineFrom(ps)
	if b.Hidden != 3*time.Second {
		t.Fatalf("hidden %v", b.Hidden)
	}
	if r := b.OverlapRatio(); r != 0.75 {
		t.Fatalf("overlap ratio %v", r)
	}
	if f := b.OverlappedFraction(); f != 0.6 {
		t.Fatalf("overlapped fraction %v", f)
	}
	// Serial baseline: inline decode stalls for its full duration.
	serial := PipelineFrom(engine.PipeStats{DecodeStall: time.Second, DecodeBusy: time.Second, Decodes: 3})
	if serial.OverlapRatio() != 0 || serial.Hidden != 0 {
		t.Fatalf("serial breakdown not zero-overlap: %+v", serial)
	}
	// Degenerate inputs must not divide by zero.
	var zero PipelineBreakdown
	if zero.OverlapRatio() != 0 || zero.OverlappedFraction() != 0 {
		t.Fatal("zero breakdown produced non-zero ratios")
	}
}
