package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func expo(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRegistryCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("skipper_scrapes_total", "Scrapes served.", nil)
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	var backing int64 = 42
	r.GaugeFunc("skipper_queue_depth", "Current depth.", map[string]string{"tenant": "1"},
		func() float64 { return float64(backing) })

	out := expo(t, r)
	for _, want := range []string{
		"# HELP skipper_scrapes_total Scrapes served.",
		"# TYPE skipper_scrapes_total counter",
		"skipper_scrapes_total 3",
		"# TYPE skipper_queue_depth gauge",
		`skipper_queue_depth{tenant="1"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("counter value = %d, want 3", c.Value())
	}
}

func TestRegistrySummaryFromSketch(t *testing.T) {
	r := NewRegistry()
	var sk LatencySketch
	for i := 1; i <= 1000; i++ {
		sk.Record(time.Duration(i) * time.Millisecond)
	}
	r.Summary("skipper_query_latency_seconds", "Query latency.", map[string]string{"tenant": "0"}, &sk)

	out := expo(t, r)
	if !strings.Contains(out, "# TYPE skipper_query_latency_seconds summary") {
		t.Fatalf("missing summary TYPE line:\n%s", out)
	}
	for _, q := range []string{`quantile="0.5"`, `quantile="0.95"`, `quantile="0.99"`, `quantile="0.999"`} {
		if !strings.Contains(out, q) {
			t.Errorf("missing %s series:\n%s", q, out)
		}
	}
	if !strings.Contains(out, `skipper_query_latency_seconds_count{tenant="0"} 1000`) {
		t.Errorf("missing or wrong _count:\n%s", out)
	}
	if !strings.Contains(out, `skipper_query_latency_seconds_sum{tenant="0"} 500.5`) {
		t.Errorf("missing or wrong _sum (1+..+1000 ms = 500.5 s):\n%s", out)
	}
}

func TestRegistryLabelOrderingAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "", map[string]string{"zeta": `va"l`, "alpha": "a\nb", "mid": `c\d`},
		func() float64 { return 1 })
	out := expo(t, r)
	want := `g{alpha="a\nb",mid="c\\d",zeta="va\"l"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("label rendering:\ngot  %s\nwant line %s", out, want)
	}
}

// Re-registering the same (name, labels) replaces the series rather
// than duplicating it — tenant wiring must be idempotent.
func TestRegistryReRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "", nil, func() float64 { return 1 })
	r.GaugeFunc("g", "", nil, func() float64 { return 2 })
	out := expo(t, r)
	var sampleLines []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "g ") {
			sampleLines = append(sampleLines, line)
		}
	}
	if len(sampleLines) != 1 || sampleLines[0] != "g 2" {
		t.Fatalf("re-register should leave exactly one series with the new value, got %q in:\n%s", sampleLines, out)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("m", "", nil, func() float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds did not panic")
		}
	}()
	r.CounterFunc("m", "", nil, func() float64 { return 1 })
}

// Scrapes must be safe while handlers register tenants and bump
// counters — the sidecar serves /metrics during live traffic.
func TestRegistryConcurrentScrapeAndRegister(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			label := map[string]string{"tenant": string(rune('a' + i%8))}
			c := r.Counter("hits_total", "", label)
			c.Inc()
			var sk LatencySketch
			sk.Record(time.Millisecond)
			r.Summary("lat_seconds", "", label, &sk)
		}
	}()
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
