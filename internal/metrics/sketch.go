package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// This file implements the serving layer's streaming latency sketch: a
// DDSketch-style log-bucketed histogram with a fixed memory footprint
// and a relative-accuracy guarantee on every quantile. The serving
// report's p50/p95/p99 numbers come from here, so the structure keeps
// its promises narrow and testable:
//
//   - Record is O(1), allocation-free after construction, and safe for
//     concurrent recorders (the soak test hammers one sketch from many
//     connection handlers under -race).
//   - Quantile(q) returns a value within γ (SketchAccuracy) relative
//     error of the exact q-quantile of everything recorded — exactly
//     verifiable against a sorted copy on small inputs.
//   - Merge is bucket-wise addition: exact, associative and
//     commutative, so per-connection or per-tenant sketches can be
//     combined in any order without changing the answer.

// SketchAccuracy is the relative-error bound γ of LatencySketch
// quantiles: the estimate e for exact value v satisfies |e-v| ≤ γ·v.
const SketchAccuracy = 0.01

// sketchBuckets bounds the histogram: bucket i≥1 covers
// (γ^(i-1), γ^i] nanoseconds with growth factor g=(1+γ)/(1-γ)≈1.0202,
// so 2048 buckets reach ≈e^(2047·0.02) ns ≈ 19 years — far past any
// latency this server can observe. Larger values clamp into the last
// bucket rather than growing memory.
const sketchBuckets = 2048

// sketchGrowth is the bucket growth factor g = (1+γ)/(1-γ).
var sketchGrowth = (1 + SketchAccuracy) / (1 - SketchAccuracy)

// lnGrowth caches ln(g) for index computation.
var lnGrowth = math.Log(sketchGrowth)

// LatencySketch is a fixed-size streaming quantile sketch over
// durations. The zero value is ready to use; all methods are safe for
// concurrent use.
type LatencySketch struct {
	mu     sync.Mutex
	counts [sketchBuckets]int64
	count  int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketOf maps a duration to its bucket index. Non-positive durations
// (clock skew, zero-length measurements) land in bucket 0 alongside
// sub-nanosecond values.
func bucketOf(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= 1 {
		return 0
	}
	i := int(math.Ceil(math.Log(ns) / lnGrowth))
	if i < 1 {
		i = 1
	}
	if i >= sketchBuckets {
		i = sketchBuckets - 1
	}
	return i
}

// bucketValue is the representative estimate of bucket i: the point
// minimizing worst-case relative error over the bucket's range,
// 2·g^i/(1+g). Bucket 0 represents ≤1 ns.
func bucketValue(i int) time.Duration {
	if i == 0 {
		return time.Nanosecond
	}
	v := 2 * math.Pow(sketchGrowth, float64(i)) / (1 + sketchGrowth)
	return time.Duration(math.Round(v))
}

// Record folds one observation into the sketch.
func (s *LatencySketch) Record(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[bucketOf(d)]++
	s.count++
	s.sum += d
	if s.count == 1 || d < s.min {
		s.min = d
	}
	if s.count == 1 || d > s.max {
		s.max = d
	}
}

// Count returns the number of recorded observations.
func (s *LatencySketch) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantile returns an estimate of the q-quantile (q clamped to [0,1])
// within SketchAccuracy relative error; exact at q=0 and q=1 (min and
// max are tracked exactly). Sub-nanosecond and non-positive
// observations are indistinguishable from 1 ns at interior quantiles
// (they share bucket 0).
//
// An empty sketch returns 0 for every q — including q=0 and q=1, where
// min/max have never been set. Zero is the defined "no observations"
// value, not a measurement: callers rendering quantiles should check
// Count first if they need to distinguish "no data" from "0ns".
func (s *LatencySketch) Quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quantileLocked(q)
}

func (s *LatencySketch) quantileLocked(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	// Nearest-rank: the ceil(q·n)-th smallest observation (1-based).
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var seen int64
	for i := 0; i < sketchBuckets; i++ {
		seen += s.counts[i]
		if seen >= rank {
			return clampDuration(bucketValue(i), s.min, s.max)
		}
	}
	return s.max // unreachable: counts sum to s.count
}

// clampDuration bounds an estimate to the exactly-tracked extremes —
// tightening, never loosening, the γ guarantee.
func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Merge folds other's observations into s. Bucket-wise addition makes
// the operation exact (the merged sketch equals one that recorded both
// streams), hence associative and commutative.
func (s *LatencySketch) Merge(other *LatencySketch) {
	if other == nil || other == s {
		return
	}
	// Lock ordering: snapshot other first, then fold in; avoids holding
	// both locks at once (and thus any lock-order inversion).
	other.mu.Lock()
	counts := other.counts
	count, sum, omin, omax := other.count, other.sum, other.min, other.max
	other.mu.Unlock()
	if count == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range counts {
		s.counts[i] += counts[i]
	}
	if s.count == 0 || omin < s.min {
		s.min = omin
	}
	if s.count == 0 || omax > s.max {
		s.max = omax
	}
	s.count += count
	s.sum += sum
}

// LatencySnapshot is a point-in-time digest of a sketch, shaped for the
// STATS frame and the serving report.
type LatencySnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
}

// Mean returns the exact mean latency (0 when empty).
func (l LatencySnapshot) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Sum / time.Duration(l.Count)
}

// String renders the snapshot for logs and reports.
func (l LatencySnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s p99.9=%s max=%s",
		l.Count, l.Mean().Round(time.Microsecond), l.P50.Round(time.Microsecond),
		l.P95.Round(time.Microsecond), l.P99.Round(time.Microsecond),
		l.P999.Round(time.Microsecond), l.Max.Round(time.Microsecond))
}

// Snapshot digests the sketch under one lock acquisition.
func (s *LatencySketch) Snapshot() LatencySnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return LatencySnapshot{
		Count: s.count,
		Sum:   s.sum,
		Min:   s.min,
		Max:   s.max,
		P50:   s.quantileLocked(0.50),
		P95:   s.quantileLocked(0.95),
		P99:   s.quantileLocked(0.99),
		P999:  s.quantileLocked(0.999),
	}
}
