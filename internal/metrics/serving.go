package metrics

import (
	"sync/atomic"
	"time"
)

// AdmissionCounters tracks one tenant's traffic through the serving
// layer's admission controller. All fields are updated atomically, so
// one instance can be shared by every connection handler of a tenant;
// the zero value is ready to use.
type AdmissionCounters struct {
	// Admitted counts queries granted an execution slot (immediately or
	// after queueing).
	Admitted atomic.Int64
	// Rejected counts queries refused with ErrOverloaded because the
	// admission queue was full.
	Rejected atomic.Int64
	// Queued counts admitted queries that had to wait for a slot.
	Queued atomic.Int64
	// Expired counts queries whose context was canceled or whose
	// deadline passed — while waiting for a slot or mid-execution.
	Expired atomic.Int64
	// Completed / Failed count executed queries by outcome (Failed
	// excludes expirations, which Expired covers).
	Completed atomic.Int64
	Failed    atomic.Int64
	// QueueWaitNS accumulates time spent waiting for a slot, in
	// nanoseconds (includes waits that ended in expiry).
	QueueWaitNS atomic.Int64
}

// AddQueueWait accumulates one queue-wait measurement.
func (c *AdmissionCounters) AddQueueWait(d time.Duration) {
	if d > 0 {
		c.QueueWaitNS.Add(d.Nanoseconds())
	}
}

// AdmissionSnapshot is a point-in-time copy of AdmissionCounters,
// shaped for the STATS frame.
type AdmissionSnapshot struct {
	Admitted  int64         `json:"admitted"`
	Rejected  int64         `json:"rejected"`
	Queued    int64         `json:"queued"`
	Expired   int64         `json:"expired"`
	Completed int64         `json:"completed"`
	Failed    int64         `json:"failed"`
	QueueWait time.Duration `json:"queue_wait_ns"`
}

// Snapshot copies the counters. Individual loads are atomic; the
// snapshot as a whole is not a consistent cut under concurrent updates,
// which is fine for monitoring output.
func (c *AdmissionCounters) Snapshot() AdmissionSnapshot {
	return AdmissionSnapshot{
		Admitted:  c.Admitted.Load(),
		Rejected:  c.Rejected.Load(),
		Queued:    c.Queued.Load(),
		Expired:   c.Expired.Load(),
		Completed: c.Completed.Load(),
		Failed:    c.Failed.Load(),
		QueueWait: time.Duration(c.QueueWaitNS.Load()),
	}
}

// Add folds another snapshot into s — the cluster-wide total of
// per-tenant snapshots.
func (s AdmissionSnapshot) Add(o AdmissionSnapshot) AdmissionSnapshot {
	return AdmissionSnapshot{
		Admitted:  s.Admitted + o.Admitted,
		Rejected:  s.Rejected + o.Rejected,
		Queued:    s.Queued + o.Queued,
		Expired:   s.Expired + o.Expired,
		Completed: s.Completed + o.Completed,
		Failed:    s.Failed + o.Failed,
		QueueWait: s.QueueWait + o.QueueWait,
	}
}
