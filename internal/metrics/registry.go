package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a small Prometheus-compatible metric registry built on
// the primitives this package already has: counters bridge to values
// the serving layer maintains anyway (AdmissionCounters, cache stats),
// and histograms are LatencySketch instances exposed as Prometheus
// summaries (quantile series + _sum/_count). The registry therefore
// never double-counts — it reads the same state the STATS frame reports
// — and registration is the only write path, so exposition is a pure
// read.
//
// Families are exposed in registration order; series within a family in
// label order. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindSummary
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

type family struct {
	name   string
	help   string
	kind   familyKind
	series map[string]*series // keyed by rendered label set
	order  []string
}

type series struct {
	labels string // rendered `{k="v",...}` or ""
	value  func() float64
	sketch *LatencySketch
	own    *atomic.Int64 // backing store for Counter-returned series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// summaryQuantiles are the quantile series a sketch-backed summary
// exposes. 0.999 is included because tail latency is the whole point of
// the admission controller.
var summaryQuantiles = []float64{0.5, 0.95, 0.99, 0.999}

// renderLabels renders a label set in sorted-key order with Prometheus
// escaping. Returns "" for an empty set.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// withQuantile appends a quantile label to an already-rendered label
// set.
func withQuantile(rendered string, q float64) string {
	qv := fmt.Sprintf(`quantile="%g"`, q)
	if rendered == "" {
		return "{" + qv + "}"
	}
	return rendered[:len(rendered)-1] + "," + qv + "}"
}

// register finds or creates a family, enforcing kind consistency, and
// adds one series under it. Re-registering the same (name, labels) pair
// replaces the series, so idempotent wiring (e.g. tenant state
// recreated on reconnect) is safe.
func (r *Registry) register(name, help string, kind familyKind, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, kind))
	}
	if _, exists := f.series[s.labels]; !exists {
		f.order = append(f.order, s.labels)
	}
	f.series[s.labels] = s
}

// Counter is a registry-owned monotonic counter for events no existing
// structure tracks (slow queries, traces dropped, scrapes served).
type Counter struct{ v *atomic.Int64 }

// Inc adds one. Add adds n (negative deltas are ignored — counters are
// monotonic). Value returns the current count.
func (c Counter) Inc() { c.v.Add(1) }
func (c Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}
func (c Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns an owned counter series.
func (r *Registry) Counter(name, help string, labels map[string]string) Counter {
	v := new(atomic.Int64)
	r.register(name, help, kindCounter, &series{
		labels: renderLabels(labels),
		value:  func() float64 { return float64(v.Load()) },
		own:    v,
	})
	return Counter{v: v}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge to counters the serving layer already maintains.
// fn must be monotonically non-decreasing and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), value: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	r.register(name, help, kindGauge, &series{labels: renderLabels(labels), value: fn})
}

// Summary registers a LatencySketch as a Prometheus summary: one
// quantile series per entry of summaryQuantiles plus _sum and _count,
// all in seconds. The sketch stays owned by the caller; the registry
// snapshots it at scrape time.
func (r *Registry) Summary(name, help string, labels map[string]string, sketch *LatencySketch) {
	r.register(name, help, kindSummary, &series{labels: renderLabels(labels), sketch: sketch})
}

// seconds converts a duration to the float seconds Prometheus expects.
func seconds(d time.Duration) float64 { return d.Seconds() }

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the structure so value funcs and sketch snapshots run
	// outside the registry lock (they take their own locks).
	type snap struct {
		f      *family
		series []*series
	}
	snaps := make([]snap, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		ss := make([]*series, 0, len(f.order))
		for _, key := range f.order {
			ss = append(ss, f.series[key])
		}
		snaps = append(snaps, snap{f: f, series: ss})
	}
	r.mu.Unlock()

	for _, sn := range snaps {
		f := sn.f
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range sn.series {
			if f.kind == kindSummary {
				ls := s.sketch.Snapshot()
				for _, q := range summaryQuantiles {
					v := s.sketch.Quantile(q)
					if _, err := fmt.Fprintf(w, "%s%s %g\n", f.name, withQuantile(s.labels, q), seconds(v)); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, s.labels, seconds(ls.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, ls.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the registry over HTTP — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
