// Package tuple defines the value, row and schema types shared by the
// storage layer and both query engines, plus a compact binary row codec
// used by the segment (object) format.
package tuple

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Kind enumerates the supported column types.
type Kind uint8

const (
	// KindInt64 is a signed 64-bit integer (the zero Kind).
	KindInt64 Kind = iota
	// KindFloat64 is a 64-bit float.
	KindFloat64
	// KindString is an immutable string.
	KindString
	// KindDate counts days since 1970-01-01, stored as int64.
	KindDate
	// KindBool stores false/true as int64 0/1.
	KindBool
)

// String returns the lowercase type name.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed datum. The zero Value is the int64 0.
type Value struct {
	// K discriminates which payload field below is meaningful.
	K Kind
	I int64   // int64, date (days), bool (0/1)
	F float64 // float64
	S string  // string
}

// Int returns an int64 Value.
func Int(v int64) Value { return Value{K: KindInt64, I: v} }

// Float returns a float64 Value.
func Float(v float64) Value { return Value{K: KindFloat64, F: v} }

// Str returns a string Value.
func Str(v string) Value { return Value{K: KindString, S: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value {
	if v {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// Date returns a date Value for the given civil date.
func Date(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{K: KindDate, I: int64(t.Unix() / 86400)}
}

// DateFromDays returns a date Value for a raw day count since the epoch.
func DateFromDays(days int64) Value { return Value{K: KindDate, I: days} }

// AsInt returns the integer payload (int64, date or bool kinds).
func (v Value) AsInt() int64 { return v.I }

// AsFloat returns the value as a float64, converting integers.
func (v Value) AsFloat() float64 {
	if v.K == KindFloat64 {
		return v.F
	}
	return float64(v.I)
}

// AsString returns the string payload.
func (v Value) AsString() string { return v.S }

// AsBool reports whether a bool Value is true.
func (v Value) AsBool() bool { return v.I != 0 }

// IsTrue reports whether the value is a true boolean.
func (v Value) IsTrue() bool { return v.K == KindBool && v.I != 0 }

// String renders the value for display and hashing-independent keys
// (dates as YYYY-MM-DD, floats with %g).
func (v Value) String() string {
	switch v.K {
	case KindInt64:
		return fmt.Sprintf("%d", v.I)
	case KindFloat64:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return v.S
	case KindDate:
		t := time.Unix(v.I*86400, 0).UTC()
		return t.Format("2006-01-02")
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values of the same kind: -1, 0 or +1. Comparing
// values of different kinds compares the numeric representations when both
// are numeric (int/float/date/bool), otherwise it panics: schema type
// checking happens at plan-build time, so a mismatch here is a bug.
func Compare(a, b Value) int {
	if a.K == b.K {
		switch a.K {
		case KindInt64, KindDate, KindBool:
			return cmpInt(a.I, b.I)
		case KindFloat64:
			return cmpFloat(a.F, b.F)
		case KindString:
			return strings.Compare(a.S, b.S)
		}
	}
	if a.K != KindString && b.K != KindString {
		return cmpFloat(a.AsFloat(), b.AsFloat())
	}
	panic(fmt.Sprintf("tuple: cannot compare %v and %v", a.K, b.K))
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit hash of the value, suitable for hash joins. Values
// that are Equal hash identically (numeric kinds hash their float64
// representation only when kinds differ, so int 3 and date 3 are distinct
// but hash-join keys are always same-kind in practice). The hash is an
// inline FNV-1a over a kind tag plus the payload bytes, producing the same
// digest as hash/fnv without the per-call allocation.
func (v Value) Hash() uint64 {
	switch v.K {
	case KindString:
		return hashString(v.S)
	case KindFloat64:
		return hashFloat(v.F)
	default:
		return hashInt(v.I)
	}
}

// hashTag* are the FNV-1a states after absorbing each kind's tag byte.
var (
	hashTagS = hashByte(hashBasis, 's')
	hashTagF = hashByte(hashBasis, 'f')
	hashTagI = hashByte(hashBasis, 'i')
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * hashPrime }

func hashString(s string) uint64 {
	h := hashTagS
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hashPrime
	}
	return h
}

func hashFloat(f float64) uint64 {
	return hashUint64(hashTagF, math.Float64bits(f))
}

func hashInt(i int64) uint64 {
	return hashUint64(hashTagI, uint64(i))
}

// hashUint64 folds the eight little-endian bytes of v into an FNV-1a state.
func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v>>(8*i))&0xff) * hashPrime
	}
	return h
}

// Row is an ordered list of values matching a Schema.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row that is the concatenation of r and s.
func (r Row) Concat(s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	out = append(out, s...)
	return out
}

// String renders the row as "(v1, v2, ...)".
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Column describes one schema column.
type Column struct {
	// Name is the column's unique name within its schema.
	Name string
	// Kind is the column's value type.
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	// Cols lists the columns in output order.
	Cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Duplicate names panic.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("tuple: duplicate column %q", c.Name))
		}
		s.byName[c.Name] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the position of the named column.
func (s *Schema) ColIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustColIndex returns the position of the named column or panics.
func (s *Schema) MustColIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("tuple: unknown column %q (have %v)", name, s.ColumnNames()))
	}
	return i
}

// ColumnNames returns the column names in order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	return names
}

// Concat returns the schema of a join output: the columns of s followed by
// the columns of t. Name collisions are disambiguated with a "right."
// prefix on the second operand, matching the executor's join behaviour.
func (s *Schema) Concat(t *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(t.Cols))
	cols = append(cols, s.Cols...)
	for _, c := range t.Cols {
		if _, dup := s.byName[c.Name]; dup {
			c.Name = "right." + c.Name
		}
		cols = append(cols, c)
	}
	return NewSchema(cols...)
}

// Project returns a schema with only the named columns, in the given order.
func (s *Schema) Project(names ...string) *Schema {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = s.Cols[s.MustColIndex(n)]
	}
	return NewSchema(cols...)
}

// Validate checks that the row matches the schema arity and kinds.
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.Cols) {
		return fmt.Errorf("tuple: row arity %d != schema arity %d", len(r), len(s.Cols))
	}
	for i, v := range r {
		if v.K != s.Cols[i].Kind {
			return fmt.Errorf("tuple: column %q is %v, row has %v", s.Cols[i].Name, s.Cols[i].Kind, v.K)
		}
	}
	return nil
}

// String renders the schema as "name kind, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = fmt.Sprintf("%s %s", c.Name, c.Kind)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
