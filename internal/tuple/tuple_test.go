package tuple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.K != KindInt64 || v.AsInt() != 42 {
		t.Errorf("Int: %+v", v)
	}
	if v := Float(2.5); v.K != KindFloat64 || v.AsFloat() != 2.5 {
		t.Errorf("Float: %+v", v)
	}
	if v := Str("abc"); v.K != KindString || v.AsString() != "abc" {
		t.Errorf("Str: %+v", v)
	}
	if v := Bool(true); !v.AsBool() || !v.IsTrue() {
		t.Errorf("Bool(true): %+v", v)
	}
	if v := Bool(false); v.AsBool() || v.IsTrue() {
		t.Errorf("Bool(false): %+v", v)
	}
	if v := Date(1970, time.January, 2); v.AsInt() != 1 {
		t.Errorf("Date epoch+1: %+v", v)
	}
	if v := Date(1995, time.March, 15); v.String() != "1995-03-15" {
		t.Errorf("Date string: %v", v)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindInt64:   "int64",
		KindFloat64: "float64",
		KindString:  "string",
		KindDate:    "date",
		KindBool:    "bool",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("kind %d = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind renders %q", Kind(99).String())
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"42":    Int(42),
		"2.5":   Float(2.5),
		"hi":    Str("hi"),
		"true":  Bool(true),
		"false": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%+v renders %q, want %q", v, got, want)
		}
	}
	if (Value{K: Kind(99)}).String() != "?" {
		t.Error("unknown value kind should render ?")
	}
}

func TestRowString(t *testing.T) {
	r := Row{Int(1), Str("x")}
	if r.String() != "(1, x)" {
		t.Fatalf("row renders %q", r.String())
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema(Column{"a", KindInt64}, Column{"b", KindString})
	if got := s.String(); got != "(a int64, b string)" {
		t.Fatalf("schema renders %q", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Date(2000, 1, 1), Date(2000, 1, 2), -1},
		{Bool(false), Bool(true), -1},
		{Int(2), Float(2.0), 0},  // mixed numeric
		{Int(3), Float(2.5), 1},  // mixed numeric
		{Float(1.5), Int(2), -1}, // mixed numeric
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareStringIntPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on string/int comparison")
		}
	}()
	Compare(Str("a"), Int(1))
}

func TestHashEqualValuesEqualHashes(t *testing.T) {
	pairs := [][2]Value{
		{Int(7), Int(7)},
		{Str("xy"), Str("xy")},
		{Float(3.25), Float(3.25)},
		{Date(2020, 5, 5), Date(2020, 5, 5)},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("hash mismatch for %v", p[0])
		}
	}
	if Int(7).Hash() == Int(8).Hash() {
		t.Error("distinct ints collide (suspicious)")
	}
	if Str("a").Hash() == Str("b").Hash() {
		t.Error("distinct strings collide (suspicious)")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Column{"id", KindInt64},
		Column{"name", KindString},
		Column{"price", KindFloat64},
	)
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	if i := s.MustColIndex("name"); i != 1 {
		t.Fatalf("name at %d", i)
	}
	if _, ok := s.ColIndex("missing"); ok {
		t.Fatal("found missing column")
	}
	if got := s.ColumnNames(); !reflect.DeepEqual(got, []string{"id", "name", "price"}) {
		t.Fatalf("names %v", got)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate column")
		}
	}()
	NewSchema(Column{"a", KindInt64}, Column{"a", KindString})
}

func TestSchemaConcatDisambiguates(t *testing.T) {
	a := NewSchema(Column{"id", KindInt64}, Column{"x", KindString})
	b := NewSchema(Column{"id", KindInt64}, Column{"y", KindFloat64})
	j := a.Concat(b)
	want := []string{"id", "x", "right.id", "y"}
	if got := j.ColumnNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("concat names %v want %v", got, want)
	}
}

func TestSchemaProject(t *testing.T) {
	s := NewSchema(Column{"a", KindInt64}, Column{"b", KindString}, Column{"c", KindBool})
	p := s.Project("c", "a")
	if got := p.ColumnNames(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Fatalf("project %v", got)
	}
	if p.Cols[0].Kind != KindBool || p.Cols[1].Kind != KindInt64 {
		t.Fatalf("kinds %v", p.Cols)
	}
}

func TestValidate(t *testing.T) {
	s := NewSchema(Column{"a", KindInt64}, Column{"b", KindString})
	if err := s.Validate(Row{Int(1), Str("x")}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if err := s.Validate(Row{Int(1)}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := s.Validate(Row{Str("x"), Str("y")}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestRowCloneAndConcat(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].AsInt() != 1 {
		t.Fatal("clone aliases original")
	}
	j := r.Concat(Row{Bool(true)})
	if len(j) != 3 || !j[2].IsTrue() {
		t.Fatalf("concat %v", j)
	}
}

func testSchema() *Schema {
	return NewSchema(
		Column{"i", KindInt64},
		Column{"f", KindFloat64},
		Column{"s", KindString},
		Column{"d", KindDate},
		Column{"b", KindBool},
	)
}

func randomRow(rng *rand.Rand) Row {
	strs := []string{"", "a", "hello world", "ünïcødé", "x\x00y", "longer-string-with-more-bytes"}
	return Row{
		Int(rng.Int63() - rng.Int63()),
		Float(rng.NormFloat64() * 1e6),
		Str(strs[rng.Intn(len(strs))]),
		DateFromDays(int64(rng.Intn(40000))),
		Bool(rng.Intn(2) == 0),
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	s := testSchema()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]Row, int(n)%64)
		for i := range rows {
			rows[i] = randomRow(rng)
		}
		data, err := EncodeRows(s, rows)
		if err != nil {
			return false
		}
		back, err := DecodeRows(s, data)
		if err != nil {
			return false
		}
		if len(back) != len(rows) {
			return false
		}
		for i := range rows {
			if !reflect.DeepEqual(rows[i], back[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsWrongRow(t *testing.T) {
	s := testSchema()
	if _, err := AppendRow(nil, s, Row{Int(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestCodecTruncatedData(t *testing.T) {
	s := NewSchema(Column{"i", KindInt64}, Column{"s", KindString})
	data, err := EncodeRows(s, []Row{{Int(5), Str("hello")}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut++ {
		if _, err := DecodeRows(s, data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCodecTrailingGarbage(t *testing.T) {
	s := NewSchema(Column{"i", KindInt64})
	data, err := EncodeRows(s, []Row{{Int(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRows(s, append(data, 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestEmptyBatch(t *testing.T) {
	s := testSchema()
	data, err := EncodeRows(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DecodeRows(s, data)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty batch: %v %v", rows, err)
	}
}
