package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The row codec packs a row into a byte slice using the schema as the
// implicit type descriptor: fixed 8-byte little-endian payloads for numeric
// kinds and uvarint-length-prefixed bytes for strings. No per-value type
// tags are written; decoding requires the same schema.

// AppendRow appends the encoding of r (which must match schema s) to dst
// and returns the extended slice.
func AppendRow(dst []byte, s *Schema, r Row) ([]byte, error) {
	if err := s.Validate(r); err != nil {
		return dst, err
	}
	for _, v := range r {
		switch v.K {
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case KindFloat64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		default: // int64, date, bool
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
		}
	}
	return dst, nil
}

// DecodeRow decodes one row matching schema s from the front of data and
// returns the row and the remaining bytes.
func DecodeRow(s *Schema, data []byte) (Row, []byte, error) {
	r := make(Row, len(s.Cols))
	for i, c := range s.Cols {
		switch c.Kind {
		case KindString:
			n, sz := binary.Uvarint(data)
			if sz <= 0 || uint64(len(data)-sz) < n {
				return nil, data, fmt.Errorf("tuple: truncated string in column %q", c.Name)
			}
			r[i] = Value{K: KindString, S: string(data[sz : sz+int(n)])}
			data = data[sz+int(n):]
		case KindFloat64:
			if len(data) < 8 {
				return nil, data, fmt.Errorf("tuple: truncated float in column %q", c.Name)
			}
			r[i] = Value{K: KindFloat64, F: math.Float64frombits(binary.LittleEndian.Uint64(data))}
			data = data[8:]
		default:
			if len(data) < 8 {
				return nil, data, fmt.Errorf("tuple: truncated int in column %q", c.Name)
			}
			r[i] = Value{K: c.Kind, I: int64(binary.LittleEndian.Uint64(data))}
			data = data[8:]
		}
	}
	return r, data, nil
}

// EncodeRows encodes a batch of rows: a uvarint count followed by the rows.
func EncodeRows(s *Schema, rows []Row) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(rows)))
	var err error
	for _, r := range rows {
		out, err = AppendRow(out, s, r)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeRows decodes a batch previously encoded with EncodeRows.
func DecodeRows(s *Schema, data []byte) ([]Row, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("tuple: truncated row-batch header")
	}
	data = data[sz:]
	// The count header is untrusted input: cap the preallocation by what
	// the remaining bytes could possibly hold (every non-empty row costs
	// at least one byte), so a corrupt header cannot demand the count's
	// worth of memory up front.
	capHint := n
	if limit := uint64(len(data)) + 1; capHint > limit {
		capHint = limit
	}
	rows := make([]Row, 0, capHint)
	for i := uint64(0); i < n; i++ {
		r, rest, err := DecodeRow(s, data)
		if err != nil {
			return nil, fmt.Errorf("tuple: row %d: %w", i, err)
		}
		rows = append(rows, r)
		data = rest
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("tuple: %d trailing bytes after row batch", len(data))
	}
	return rows, nil
}
