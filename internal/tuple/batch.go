package tuple

// Batch is a column-oriented buffer of rows with a fixed nominal capacity.
// It is the unit of data flow in the batched execution core: operators fill
// a batch column by column (or row by row), hand it downstream, and reuse
// the buffers on the next cycle. A batch handed to a consumer is valid only
// until the producer's next NextBatch call, so blocking consumers must copy
// what they keep (Rows and Row return copies).
type Batch struct {
	schema *Schema
	cols   [][]Value
	n      int
}

// NewBatch returns an empty batch over schema with room for capacity rows
// per column.
func NewBatch(schema *Schema, capacity int) *Batch {
	if capacity <= 0 {
		capacity = 1
	}
	cols := make([][]Value, schema.Len())
	for i := range cols {
		cols[i] = make([]Value, 0, capacity)
	}
	return &Batch{schema: schema, cols: cols}
}

// FromRows builds a batch holding a copy of rows.
func FromRows(schema *Schema, rows []Row) *Batch {
	b := NewBatch(schema, len(rows))
	for _, r := range rows {
		b.AppendRow(r)
	}
	return b
}

// Schema describes the batch's columns.
func (b *Batch) Schema() *Schema { return b.schema }

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return b.n }

// Cap returns the per-column buffer capacity.
func (b *Batch) Cap() int {
	if len(b.cols) == 0 {
		return 0
	}
	return cap(b.cols[0])
}

// Full reports whether the batch has reached its capacity.
func (b *Batch) Full() bool { return b.n >= b.Cap() }

// Reset empties the batch, keeping the column buffers for reuse.
func (b *Batch) Reset() {
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.n = 0
}

// Col returns column i's values; the slice aliases the batch buffer.
func (b *Batch) Col(i int) []Value { return b.cols[i][:b.n] }

// AppendRow copies one row into the batch, growing the buffers if needed.
func (b *Batch) AppendRow(r Row) {
	for i := range b.cols {
		b.cols[i] = append(b.cols[i], r[i])
	}
	b.n++
}

// AppendBatchRow copies row i of src (which must share the schema arity)
// into the batch.
func (b *Batch) AppendBatchRow(src *Batch, i int) {
	for c := range b.cols {
		b.cols[c] = append(b.cols[c], src.cols[c][i])
	}
	b.n++
}

// AppendBatch copies every row of src (which must share the schema arity)
// into the batch, column by column — one bulk copy per column instead of a
// per-row loop. It is how morsels are cloned out of a producer's reused
// buffer before being handed to a parallel worker.
func (b *Batch) AppendBatch(src *Batch) {
	for c := range b.cols {
		b.cols[c] = append(b.cols[c], src.cols[c][:src.n]...)
	}
	b.n += src.n
}

// AppendColumns appends rows [start, end) of the given per-column value
// slices (one slice per schema column, as produced by a projected segment
// decode) into the batch, one bulk copy per column. A nil column slice —
// a column the projection skipped — is filled with the column kind's zero
// value so the batch stays kind-consistent; the planner guarantees such
// columns are never read downstream.
func (b *Batch) AppendColumns(cols [][]Value, start, end int) {
	n := end - start
	for c := range b.cols {
		if cols[c] == nil {
			zero := Value{K: b.schema.Cols[c].Kind}
			for i := 0; i < n; i++ {
				b.cols[c] = append(b.cols[c], zero)
			}
			continue
		}
		b.cols[c] = append(b.cols[c], cols[c][start:end]...)
	}
	b.n += n
}

// Row materializes row i as a freshly allocated Row.
func (b *Batch) Row(i int) Row {
	out := make(Row, len(b.cols))
	for c := range b.cols {
		out[c] = b.cols[c][i]
	}
	return out
}

// AppendRowTo appends row i's values to dst and returns it; pass a reused
// scratch slice (dst[:0]) to read rows without allocating.
func (b *Batch) AppendRowTo(dst Row, i int) Row {
	for c := range b.cols {
		dst = append(dst, b.cols[c][i])
	}
	return dst
}

// Rows materializes every row of the batch. The rows share one backing
// arena but do not alias the batch buffers, so they stay valid after the
// batch is reset or refilled.
func (b *Batch) Rows() []Row {
	if b.n == 0 {
		return nil
	}
	arena := make([]Value, b.n*len(b.cols))
	out := make([]Row, b.n)
	for i := 0; i < b.n; i++ {
		row := arena[i*len(b.cols) : (i+1)*len(b.cols) : (i+1)*len(b.cols)]
		for c := range b.cols {
			row[c] = b.cols[c][i]
		}
		out[i] = row
	}
	return out
}

// FNV-1a parameters shared by the scalar and vectorized hash paths.
const (
	hashBasis uint64 = 14695981039346656037
	hashPrime uint64 = 1099511628211
)

// HashColumns writes, for each row, the combined hash of the key columns
// into dst (reusing its backing array when large enough) and returns it.
// The combination matches HashRowKey, so columnar build sides and row
// probe sides hash identically. The per-kind dispatch is hoisted out of
// the row loop: each key column is hashed in one tight pass.
func (b *Batch) HashColumns(keys []int, dst []uint64) []uint64 {
	if cap(dst) < b.n {
		dst = make([]uint64, b.n)
	} else {
		dst = dst[:b.n]
	}
	for i := range dst {
		dst[i] = hashBasis
	}
	for _, k := range keys {
		col := b.cols[k][:b.n]
		switch b.schema.Cols[k].Kind {
		case KindString:
			for i := range col {
				dst[i] = dst[i]*hashPrime ^ hashString(col[i].S)
			}
		case KindFloat64:
			for i := range col {
				dst[i] = dst[i]*hashPrime ^ hashFloat(col[i].F)
			}
		default:
			for i := range col {
				dst[i] = dst[i]*hashPrime ^ hashInt(col[i].I)
			}
		}
	}
	return dst
}

// HashRowKey combines the hashes of a row's key columns — the scalar
// counterpart of Batch.HashColumns, used by row-at-a-time probes.
func HashRowKey(r Row, keys []int) uint64 {
	h := hashBasis
	for _, k := range keys {
		h = h*hashPrime ^ r[k].Hash()
	}
	return h
}

// HashRowsKey hashes one key column across a slice of rows, writing into
// dst (reused when large enough). It vectorizes the probe side of chains
// whose partial tuples are materialized rows.
func HashRowsKey(rows []Row, keyIdx int, dst []uint64) []uint64 {
	if cap(dst) < len(rows) {
		dst = make([]uint64, len(rows))
	} else {
		dst = dst[:len(rows)]
	}
	seed := uint64(hashBasis)
	seed *= hashPrime // wraps; matches HashRowKey's first step
	for i, r := range rows {
		dst[i] = seed ^ r[keyIdx].Hash()
	}
	return dst
}
