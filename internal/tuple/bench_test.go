package tuple

import (
	"fmt"
	"testing"
)

func benchBatch(n int) (*Schema, []Row) {
	s := NewSchema(
		Column{"id", KindInt64},
		Column{"price", KindFloat64},
		Column{"name", KindString},
		Column{"ship", KindDate},
	)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Int(int64(i)),
			Float(float64(i) * 1.5),
			Str(fmt.Sprintf("name-%d", i)),
			DateFromDays(int64(9000 + i)),
		}
	}
	return s, rows
}

func BenchmarkEncodeRows(b *testing.B) {
	s, rows := benchBatch(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeRows(s, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRows(b *testing.B) {
	s, rows := benchBatch(1000)
	data, err := EncodeRows(s, rows)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRows(s, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueHash(b *testing.B) {
	v := Str("some-moderately-long-join-key")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Hash()
	}
}

func BenchmarkCompareInt(b *testing.B) {
	x, y := Int(42), Int(43)
	for i := 0; i < b.N; i++ {
		_ = Compare(x, y)
	}
}
