package tuple

import (
	"math/rand"
	"reflect"
	"testing"
)

func batchTestSchema() *Schema {
	return NewSchema(
		Column{Name: "i", Kind: KindInt64},
		Column{Name: "f", Kind: KindFloat64},
		Column{Name: "s", Kind: KindString},
		Column{Name: "d", Kind: KindDate},
		Column{Name: "b", Kind: KindBool},
	)
}

func randRow(rng *rand.Rand) Row {
	return Row{
		Int(rng.Int63n(1000) - 500),
		Float(rng.NormFloat64()),
		Str(string(rune('a' + rng.Intn(26)))),
		DateFromDays(rng.Int63n(20000)),
		Bool(rng.Intn(2) == 1),
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sch := batchTestSchema()
	rows := make([]Row, 100)
	for i := range rows {
		rows[i] = randRow(rng)
	}
	b := FromRows(sch, rows)
	if b.Len() != len(rows) {
		t.Fatalf("len %d", b.Len())
	}
	if !reflect.DeepEqual(b.Rows(), rows) {
		t.Fatal("Rows() round trip differs")
	}
	for i := range rows {
		if !reflect.DeepEqual(b.Row(i), rows[i]) {
			t.Fatalf("Row(%d) differs", i)
		}
		var scratch Row
		if got := b.AppendRowTo(scratch[:0], i); !reflect.DeepEqual(got, rows[i]) {
			t.Fatalf("AppendRowTo(%d) differs", i)
		}
	}
	// Columns expose the same values column-wise.
	for c := 0; c < sch.Len(); c++ {
		col := b.Col(c)
		for i := range rows {
			if !Equal(col[i], rows[i][c]) {
				t.Fatalf("col %d row %d differs", c, i)
			}
		}
	}
}

func TestBatchResetReuse(t *testing.T) {
	sch := batchTestSchema()
	b := NewBatch(sch, 4)
	rng := rand.New(rand.NewSource(2))
	first := randRow(rng)
	b.AppendRow(first)
	got := b.Rows() // materialized rows must survive reset + refill
	b.Reset()
	if b.Len() != 0 || b.Cap() < 4 {
		t.Fatalf("after reset: len %d cap %d", b.Len(), b.Cap())
	}
	b.AppendRow(randRow(rng))
	if !reflect.DeepEqual(got[0], first) {
		t.Fatal("materialized row mutated by reuse")
	}
}

func TestBatchAppendBatchRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sch := batchTestSchema()
	rows := make([]Row, 10)
	for i := range rows {
		rows[i] = randRow(rng)
	}
	src := FromRows(sch, rows)
	dst := NewBatch(sch, 10)
	for i := len(rows) - 1; i >= 0; i-- {
		dst.AppendBatchRow(src, i)
	}
	for i := range rows {
		if !reflect.DeepEqual(dst.Row(i), rows[len(rows)-1-i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestHashColumnsMatchesHashRowKey: the vectorized column hash, the scalar
// row-key hash and the single-column row-slice hash must agree — the
// engine mixes all three on the two sides of a join.
func TestHashColumnsMatchesHashRowKey(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sch := batchTestSchema()
	rows := make([]Row, 200)
	for i := range rows {
		rows[i] = randRow(rng)
	}
	b := FromRows(sch, rows)
	for _, keys := range [][]int{{0}, {2}, {1, 3}, {0, 2, 4}} {
		hashes := b.HashColumns(keys, nil)
		for i, r := range rows {
			if want := HashRowKey(r, keys); hashes[i] != want {
				t.Fatalf("keys %v row %d: batch %x, row %x", keys, i, hashes[i], want)
			}
		}
		if len(keys) == 1 {
			sl := HashRowsKey(rows, keys[0], nil)
			for i := range rows {
				if sl[i] != hashes[i] {
					t.Fatalf("HashRowsKey key %d row %d differs", keys[0], i)
				}
			}
		}
	}
	// Buffer reuse must not change results.
	buf := make([]uint64, 1)
	if got := b.HashColumns([]int{0}, buf); got[0] != HashRowKey(rows[0], []int{0}) {
		t.Fatal("reused buffer produced a different hash")
	}
}

// TestValueHashEqualImpliesHashEqual: equal values hash identically across
// construction paths.
func TestValueHashEqualImpliesHashEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(42), Int(42)},
		{Float(1.5), Float(1.5)},
		{Str("xyz"), Str("xy" + "z")},
		{Bool(true), Bool(true)},
		{DateFromDays(100), DateFromDays(100)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) || p[0].Hash() != p[1].Hash() {
			t.Fatalf("%v vs %v: equal values must hash equal", p[0], p[1])
		}
	}
	if Int(3).Hash() == DateFromDays(3).Hash() {
		// Same payload, different kind family is fine to collide only for
		// int-tagged kinds; int and date share the tag by design.
		t.Log("int/date share the integer tag (documented behaviour)")
	}
	if Int(7).Hash() == Str("7").Hash() {
		t.Fatal("int and string with same rendering must not collide")
	}
}
