package workload

import (
	"repro/internal/engine"
	"repro/internal/skipper"
	"repro/internal/tuple"
)

// Evaluate runs a query spec locally (no simulation, no costs) against the
// dataset's in-memory store — handy for result inspection and as the
// ground truth in tests. Data skipping is deliberately left OFF so the
// evaluator stays an oracle independent of the statistics subsystem:
// differential tests that compare a pruned execution against Evaluate
// exercise the pruning on/off boundary for free.
func Evaluate(ds *Dataset, spec skipper.QuerySpec) ([]tuple.Row, error) {
	ctx := engine.NewTestCtx(ds.Store)
	it, err := skipper.BuildPullPlanPruned(ctx, spec.Join, false)
	if err != nil {
		return nil, err
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	return engine.Collect(it)
}
