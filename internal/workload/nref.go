package workload

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/mjoin"
	"repro/internal/skipper"
	"repro/internal/tuple"
)

// NREFConfig sizes the protein-database workload (the paper uses a 13 GB
// NREF database and a four-table join counting protein sequences matching
// a criterion).
type NREFConfig struct {
	// TotalGB is the dataset footprint in 1 GB objects (default 13).
	TotalGB       int
	RowsPerObject int
	Seed          int64
}

// NREF-like schemas: proteins, their sequences, taxonomy, and the source
// databases the entries were imported from.
var (
	SchemaProtein = tuple.NewSchema(
		col("p_id", tuple.KindInt64),
		col("p_taxid", tuple.KindInt64),
		col("p_sourceid", tuple.KindInt64),
		col("p_length", tuple.KindInt64),
	)
	SchemaSequence = tuple.NewSchema(
		col("seq_pid", tuple.KindInt64),
		col("seq_mw", tuple.KindFloat64), // molecular weight
		col("seq_crc", tuple.KindString),
	)
	SchemaTaxonomy = tuple.NewSchema(
		col("tax_id", tuple.KindInt64),
		col("tax_kingdom", tuple.KindString),
	)
	SchemaSourceDB = tuple.NewSchema(
		col("src_id", tuple.KindInt64),
		col("src_name", tuple.KindString),
	)
)

var kingdoms = []string{"Bacteria", "Archaea", "Eukaryota", "Viruses"}
var sourceDBs = []string{"PIR", "SwissProt", "TrEMBL", "GenPept", "PDB"}

// NREF generates one tenant's protein database.
func NREF(tenant int, cfg NREFConfig) *Dataset {
	if cfg.TotalGB <= 0 {
		cfg.TotalGB = 13
	}
	if cfg.RowsPerObject <= 0 {
		cfg.RowsPerObject = 24
	}
	b := newBuilder(tenant, cfg.Seed^0x11F)

	// Footprint split: sequences dominate, proteins next, dimensions
	// small (13 GB -> 7 + 4 + 1 + 1).
	seqSegs := cfg.TotalGB * 7 / 13
	protSegs := cfg.TotalGB * 4 / 13
	if seqSegs < 1 {
		seqSegs = 1
	}
	if protSegs < 1 {
		protSegs = 1
	}

	taxRows := make([]tuple.Row, 64)
	for i := range taxRows {
		taxRows[i] = tuple.Row{tuple.Int(int64(i)), tuple.Str(kingdoms[i%len(kingdoms)])}
	}
	b.addTable("taxonomy", SchemaTaxonomy, taxRows, 1)

	srcRows := make([]tuple.Row, len(sourceDBs))
	for i, name := range sourceDBs {
		srcRows[i] = tuple.Row{tuple.Int(int64(i)), tuple.Str(name)}
	}
	b.addTable("sourcedb", SchemaSourceDB, srcRows, 1)

	nProt := protSegs * cfg.RowsPerObject
	protRows := make([]tuple.Row, nProt)
	for i := range protRows {
		protRows[i] = tuple.Row{
			tuple.Int(int64(i)),
			tuple.Int(int64(b.rng.Intn(len(taxRows)))),
			tuple.Int(int64(b.rng.Intn(len(sourceDBs)))),
			tuple.Int(int64(50 + b.rng.Intn(3000))),
		}
	}
	b.addTable("protein", SchemaProtein, protRows, protSegs)

	nSeq := seqSegs * cfg.RowsPerObject
	seqRows := make([]tuple.Row, nSeq)
	for i := range seqRows {
		seqRows[i] = tuple.Row{
			tuple.Int(int64(b.rng.Intn(nProt))),
			tuple.Float(float64(5000 + b.rng.Intn(200000))),
			tuple.Str(fmt.Sprintf("%08X", b.rng.Uint32())),
		}
	}
	b.addTable("sequence", SchemaSequence, seqRows, seqSegs)
	return b.dataset()
}

// NREFJoin builds the paper's genome-sequencing query: a four-table join
// counting protein sequences from bacterial organisms in a trusted source
// database with a molecular-weight cutoff.
func NREFJoin(cat *catalog.Catalog) skipper.QuerySpec {
	sequence := cat.MustTable("sequence")
	protein := cat.MustTable("protein")
	taxonomy := cat.MustTable("taxonomy")
	sourcedb := cat.MustTable("sourcedb")
	join := &mjoin.Query{
		ID: "nref-4join",
		Relations: []mjoin.Relation{
			{Table: sequence, Filter: expr.ColGE(sequence.Schema, "seq_mw", tuple.Float(20000))},
			{Table: protein},
			{Table: taxonomy, Filter: expr.ColEq(taxonomy.Schema, "tax_kingdom", tuple.Str("Bacteria"))},
			{Table: sourcedb, Filter: expr.In{
				Needle: expr.Bind(sourcedb.Schema, "src_name"),
				Set:    []tuple.Value{tuple.Str("SwissProt"), tuple.Str("PIR")},
			}},
		},
		Joins: []mjoin.JoinCond{
			{Rel: 1, LeftCol: "seq_pid", RightCol: "p_id"},
			{Rel: 2, LeftCol: "p_taxid", RightCol: "tax_id"},
			{Rel: 3, LeftCol: "p_sourceid", RightCol: "src_id"},
		},
	}
	shape := func(in engine.Iterator) engine.Iterator {
		return engine.NewHashAgg(in, nil,
			[]engine.AggSpec{{Kind: engine.AggCount, Name: "matching_sequences"}})
	}
	return skipper.QuerySpec{Name: "nref-4join", Join: join, Shape: shape}
}
