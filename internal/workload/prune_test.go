package workload

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/tuple"
)

// captureIter tees the rows a cluster client's shaping stage emits, so
// cluster-level differential tests can compare full results instead of
// row counts. It deliberately implements only the row protocol: Collect
// then drains it row-at-a-time through the batch-native plan below.
type captureIter struct {
	engine.Iterator
	sink *[]tuple.Row
}

func (c *captureIter) Next() (tuple.Row, bool, error) {
	row, ok, err := c.Iterator.Next()
	if ok && err == nil {
		*c.sink = append(*c.sink, row.Clone())
	}
	return row, ok, err
}

// runPrunedCluster executes the spec on one client, capturing the result
// rows the cluster actually produced.
func runPrunedCluster(t *testing.T, ds *Dataset, spec skipper.QuerySpec, mode skipper.Mode, dop int, prune bool) ([]tuple.Row, *skipper.ClientStats) {
	t.Helper()
	store := make(map[segment.ObjectID]*segment.Segment)
	ds.MergeInto(store)
	var got []tuple.Row
	shape := spec.Shape
	sp := spec
	// Arm the shape's operators with the DOP before wrapping: the
	// capture wrapper is opaque to engine.Parallelize's plan walk.
	sp.Shape = func(in engine.Iterator) engine.Iterator {
		return &captureIter{Iterator: engine.Parallelize(shape(in), dop), sink: &got}
	}
	pr := prune
	client := &skipper.Client{
		Tenant: 0, Mode: mode, Catalog: ds.Catalog,
		Queries:      []skipper.QuerySpec{sp},
		CacheObjects: 8,
		StatsPruning: &pr,
		Parallelism:  dop,
	}
	res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}).Run()
	if err != nil {
		t.Fatalf("%v dop=%d prune=%v: %v", mode, dop, prune, err)
	}
	return got, res.Clients[0]
}

// rowStrings renders rows for exact comparison.
func rowStrings(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// TestClusterPruningDifferential is the end-to-end guarantee of the
// statistics subsystem: across both engines, DOP ∈ {1, 4}, and predicate
// windows that sit exactly on segment min/max boundaries, a client with
// data skipping on produces byte-identical results to one with it off —
// while issuing measurably fewer CSD requests on the tight windows.
func TestClusterPruningDifferential(t *testing.T) {
	ds := TPCH(0, TPCHConfig{SF: 8, RowsPerObject: 12, Seed: 5, ClusteredDates: true})
	lt := ds.Catalog.MustTable("lineitem")
	shipIdx := lt.Schema.MustColIndex("l_shipdate")
	if len(lt.Stats.Segments) < 3 {
		t.Fatalf("need ≥3 lineitem segments, have %d", len(lt.Stats.Segments))
	}
	// Predicate boundaries lifted straight from one segment's zone map:
	// the exact min and max values are the inclusive edge cases.
	mid := lt.Stats.Segments[1].Cols[shipIdx]
	lo, hi := mid.Min.String(), mid.Max.String()

	windows := []struct {
		name   string
		lo, hi string
	}{
		{"segment-exact", lo, hi},
		{"min-boundary", lo, lo},
		{"max-boundary", hi, hi},
		{"quarter", "1994-01-01", "1994-03-31"},
		{"all", "1992-01-01", "1998-12-31"},
	}
	totalSkipped := 0
	for _, w := range windows {
		spec := QShipdateWindow(ds.Catalog, w.lo, w.hi)
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			for _, dop := range []int{1, 4} {
				tag := fmt.Sprintf("%s %v dop=%d", w.name, mode, dop)
				on, statsOn := runPrunedCluster(t, ds, spec, mode, dop, true)
				off, statsOff := runPrunedCluster(t, ds, spec, mode, dop, false)
				gotOn, gotOff := rowStrings(on), rowStrings(off)
				if len(gotOn) != len(gotOff) {
					t.Fatalf("%s: %d rows pruned vs %d unpruned", tag, len(gotOn), len(gotOff))
				}
				for i := range gotOn {
					if gotOn[i] != gotOff[i] {
						t.Fatalf("%s: row %d diverges: %s vs %s", tag, i, gotOn[i], gotOff[i])
					}
				}
				if statsOff.SegmentsSkipped != 0 {
					t.Fatalf("%s: unpruned client skipped %d segments", tag, statsOff.SegmentsSkipped)
				}
				if statsOn.GetsIssued+statsOn.SegmentsSkipped < statsOff.GetsIssued && statsOn.SegmentsSkipped == 0 {
					t.Fatalf("%s: GETs dropped (%d vs %d) without skip accounting", tag, statsOn.GetsIssued, statsOff.GetsIssued)
				}
				if statsOn.GetsIssued > statsOff.GetsIssued {
					t.Fatalf("%s: pruning increased GETs (%d vs %d)", tag, statsOn.GetsIssued, statsOff.GetsIssued)
				}
				totalSkipped += statsOn.SegmentsSkipped
				if w.name != "all" && w.name != "segment-exact" && statsOn.SegmentsSkipped == 0 {
					t.Fatalf("%s: tight window skipped nothing", tag)
				}
			}
		}
	}
	if totalSkipped == 0 {
		t.Fatal("no segment was ever skipped across the sweep")
	}
}
