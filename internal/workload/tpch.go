package workload

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/mjoin"
	"repro/internal/skipper"
	"repro/internal/tuple"
)

// TPCHConfig sizes the TPC-H-like dataset.
type TPCHConfig struct {
	// SF is the scale factor; segment counts scale with it so that SF-50
	// reproduces the paper's 57-object Q12 footprint and SF-100 the
	// 140-object total of Figure 11c.
	SF int
	// RowsPerObject controls tuple density (default 24).
	RowsPerObject int
	// Seed makes generation deterministic per tenant.
	Seed int64
	// ClusteredDates sorts lineitem by l_shipdate and orders by
	// o_orderdate before segmenting, so date-filtered queries find their
	// matches concentrated in a few segments — the distribution under
	// which Skipper's subplan pruning eliminates refetches (§5.2.4) and
	// under which the zone maps of the statistics subsystem skip most
	// segments outright. Default (false) spreads matches uniformly, the
	// paper's high-reissue case.
	ClusteredDates bool
}

// segmentCounts derives per-relation object counts from the scale factor,
// using PostgreSQL-like on-disk proportions (lineitem dominates).
func (c TPCHConfig) segmentCounts() map[string]int {
	sf := float64(c.SF)
	ceil1 := func(x float64) int {
		n := int(x + 0.5)
		if n < 1 {
			return 1
		}
		return n
	}
	return map[string]int{
		"lineitem": ceil1(0.92 * sf),
		"orders":   ceil1(0.22 * sf),
		"customer": ceil1(0.06 * sf),
		"supplier": ceil1(0.02 * sf),
		"part":     ceil1(0.04 * sf),
		"partsupp": ceil1(0.12 * sf),
		"nation":   1,
		"region":   1,
	}
}

// TPC-H-like schemas (subset of columns used by Q12 and Q5).
var (
	SchemaLineitem = tuple.NewSchema(
		col("l_orderkey", tuple.KindInt64),
		col("l_partkey", tuple.KindInt64),
		col("l_suppkey", tuple.KindInt64),
		col("l_extendedprice", tuple.KindFloat64),
		col("l_discount", tuple.KindFloat64),
		col("l_quantity", tuple.KindInt64),
		col("l_shipdate", tuple.KindDate),
		col("l_commitdate", tuple.KindDate),
		col("l_receiptdate", tuple.KindDate),
		col("l_shipmode", tuple.KindString),
	)
	SchemaOrders = tuple.NewSchema(
		col("o_orderkey", tuple.KindInt64),
		col("o_custkey", tuple.KindInt64),
		col("o_orderdate", tuple.KindDate),
		col("o_orderpriority", tuple.KindString),
		col("o_totalprice", tuple.KindFloat64),
	)
	SchemaCustomer = tuple.NewSchema(
		col("c_custkey", tuple.KindInt64),
		col("c_nationkey", tuple.KindInt64),
		col("c_mktsegment", tuple.KindString),
	)
	SchemaSupplier = tuple.NewSchema(
		col("s_suppkey", tuple.KindInt64),
		col("s_nationkey", tuple.KindInt64),
	)
	SchemaPart = tuple.NewSchema(
		col("p_partkey", tuple.KindInt64),
		col("p_type", tuple.KindString),
	)
	SchemaPartsupp = tuple.NewSchema(
		col("ps_partkey", tuple.KindInt64),
		col("ps_suppkey", tuple.KindInt64),
		col("ps_supplycost", tuple.KindFloat64),
	)
	SchemaNation = tuple.NewSchema(
		col("n_nationkey", tuple.KindInt64),
		col("n_regionkey", tuple.KindInt64),
		col("n_name", tuple.KindString),
	)
	SchemaRegion = tuple.NewSchema(
		col("r_regionkey", tuple.KindInt64),
		col("r_name", tuple.KindString),
	)
)

var (
	shipModes  = []string{"MAIL", "SHIP", "AIR", "TRUCK", "RAIL", "FOB", "REG AIR"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	segments   = []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"}
	regions    = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations    = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	// nationRegion maps each nation to its region, TPC-H style.
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
)

// TPCH generates one tenant's TPC-H-like database.
func TPCH(tenant int, cfg TPCHConfig) *Dataset {
	if cfg.SF <= 0 {
		cfg.SF = 50
	}
	if cfg.RowsPerObject <= 0 {
		cfg.RowsPerObject = 24
	}
	b := newBuilder(tenant, cfg.Seed^0x7C9)
	counts := cfg.segmentCounts()

	nCust := counts["customer"] * cfg.RowsPerObject
	nSupp := counts["supplier"] * cfg.RowsPerObject
	nOrd := counts["orders"] * cfg.RowsPerObject
	nLine := counts["lineitem"] * cfg.RowsPerObject
	nPart := counts["part"] * cfg.RowsPerObject
	nPS := counts["partsupp"] * cfg.RowsPerObject

	d92, d99 := tuple.Date(1992, 1, 1), tuple.Date(1998, 12, 31)

	// region, nation
	regionRows := make([]tuple.Row, len(regions))
	for i, name := range regions {
		regionRows[i] = tuple.Row{tuple.Int(int64(i)), tuple.Str(name)}
	}
	b.addTable("region", SchemaRegion, regionRows, counts["region"])
	nationRows := make([]tuple.Row, len(nations))
	for i, name := range nations {
		nationRows[i] = tuple.Row{tuple.Int(int64(i)), tuple.Int(nationRegion[i]), tuple.Str(name)}
	}
	b.addTable("nation", SchemaNation, nationRows, counts["nation"])

	// customer
	custRows := make([]tuple.Row, nCust)
	for i := range custRows {
		custRows[i] = tuple.Row{
			tuple.Int(int64(i)),
			tuple.Int(int64(b.rng.Intn(len(nations)))),
			tuple.Str(pick(b.rng, segments)),
		}
	}
	b.addTable("customer", SchemaCustomer, custRows, counts["customer"])

	// supplier
	suppRows := make([]tuple.Row, nSupp)
	for i := range suppRows {
		suppRows[i] = tuple.Row{
			tuple.Int(int64(i)),
			tuple.Int(int64(b.rng.Intn(len(nations)))),
		}
	}
	b.addTable("supplier", SchemaSupplier, suppRows, counts["supplier"])

	// part, partsupp
	partRows := make([]tuple.Row, nPart)
	for i := range partRows {
		partRows[i] = tuple.Row{
			tuple.Int(int64(i)),
			tuple.Str(fmt.Sprintf("TYPE#%d", b.rng.Intn(25))),
		}
	}
	b.addTable("part", SchemaPart, partRows, counts["part"])
	psRows := make([]tuple.Row, nPS)
	for i := range psRows {
		psRows[i] = tuple.Row{
			tuple.Int(int64(b.rng.Intn(nPart))),
			tuple.Int(int64(b.rng.Intn(nSupp))),
			tuple.Float(float64(b.rng.Intn(100000)) / 100),
		}
	}
	b.addTable("partsupp", SchemaPartsupp, psRows, counts["partsupp"])

	// orders
	ordRows := make([]tuple.Row, nOrd)
	for i := range ordRows {
		ordRows[i] = tuple.Row{
			tuple.Int(int64(i)),
			tuple.Int(int64(b.rng.Intn(nCust))),
			tuple.DateFromDays(b.dateBetween(d92, d99)),
			tuple.Str(pick(b.rng, priorities)),
			tuple.Float(float64(b.rng.Intn(5000000)) / 100),
		}
	}
	if cfg.ClusteredDates {
		dateIdx := SchemaOrders.MustColIndex("o_orderdate")
		sort.SliceStable(ordRows, func(i, j int) bool {
			return ordRows[i][dateIdx].AsInt() < ordRows[j][dateIdx].AsInt()
		})
	}
	b.addTable("orders", SchemaOrders, ordRows, counts["orders"])

	// lineitem: references orders and suppliers; dates arranged so Q12's
	// predicates select a meaningful fraction.
	lineRows := make([]tuple.Row, nLine)
	for i := range lineRows {
		ship := b.dateBetween(d92, d99)
		commit := ship + int64(b.rng.Intn(90)) - 29 // ship-29 .. ship+60
		receipt := commit + int64(b.rng.Intn(90)) - 29
		lineRows[i] = tuple.Row{
			tuple.Int(int64(b.rng.Intn(nOrd))),
			tuple.Int(int64(b.rng.Intn(nPart))),
			tuple.Int(int64(b.rng.Intn(nSupp))),
			tuple.Float(float64(900 + b.rng.Intn(104000))),
			tuple.Float(float64(b.rng.Intn(11)) / 100),
			tuple.Int(int64(1 + b.rng.Intn(50))),
			tuple.DateFromDays(ship),
			tuple.DateFromDays(commit),
			tuple.DateFromDays(receipt),
			tuple.Str(pick(b.rng, shipModes)),
		}
	}
	if cfg.ClusteredDates {
		shipIdx := SchemaLineitem.MustColIndex("l_shipdate")
		sort.SliceStable(lineRows, func(i, j int) bool {
			return lineRows[i][shipIdx].AsInt() < lineRows[j][shipIdx].AsInt()
		})
	}
	b.addTable("lineitem", SchemaLineitem, lineRows, counts["lineitem"])

	return b.dataset()
}

// Q12 builds TPC-H Q12 ("shipping modes and order priority"): a join of
// lineitem and orders with shipmode/date predicates, grouped by shipmode.
func Q12(cat *catalog.Catalog) skipper.QuerySpec {
	lineitem := cat.MustTable("lineitem")
	orders := cat.MustTable("orders")
	ls := lineitem.Schema
	lineFilter := expr.NewAnd(
		expr.In{Needle: expr.Bind(ls, "l_shipmode"), Set: []tuple.Value{tuple.Str("MAIL"), tuple.Str("SHIP")}},
		expr.Cmp{Op: expr.LT, L: expr.Bind(ls, "l_commitdate"), R: expr.Bind(ls, "l_receiptdate")},
		expr.Cmp{Op: expr.LT, L: expr.Bind(ls, "l_shipdate"), R: expr.Bind(ls, "l_commitdate")},
		expr.ColBetween(ls, "l_receiptdate", tuple.Date(1994, 1, 1), tuple.Date(1994, 12, 31)),
	)
	join := &mjoin.Query{
		ID: "q12",
		Relations: []mjoin.Relation{
			{Table: lineitem, Filter: lineFilter},
			{Table: orders},
		},
		Joins: []mjoin.JoinCond{{Rel: 1, LeftCol: "l_orderkey", RightCol: "o_orderkey"}},
	}
	outSchema := join.OutputSchema()
	highPri := expr.In{
		Needle: expr.Bind(outSchema, "o_orderpriority"),
		Set:    []tuple.Value{tuple.Str("1-URGENT"), tuple.Str("2-HIGH")},
	}
	shape := func(in engine.Iterator) engine.Iterator {
		agg := engine.NewHashAgg(in,
			[]engine.GroupCol{{Name: "l_shipmode", Kind: tuple.KindString, E: expr.Bind(outSchema, "l_shipmode")}},
			[]engine.AggSpec{
				{Kind: engine.AggSum, Name: "high_line_count", Arg: expr.Case{
					Branches: []expr.CaseBranch{{When: highPri, Then: expr.Lit(tuple.Int(1))}},
					Else:     expr.Lit(tuple.Int(0)),
				}},
				{Kind: engine.AggSum, Name: "low_line_count", Arg: expr.Case{
					Branches: []expr.CaseBranch{{When: highPri, Then: expr.Lit(tuple.Int(0))}},
					Else:     expr.Lit(tuple.Int(1)),
				}},
			})
		return engine.NewSort(agg, []engine.SortKey{{E: expr.NewCol(0, "l_shipmode")}})
	}
	return skipper.QuerySpec{Name: "tpch-q12", Join: join, Shape: shape}
}

// Q5 builds TPC-H Q5 ("local supplier volume"): a six-relation join whose
// input nearly covers the whole dataset. The c_nationkey = s_nationkey
// cycle edge and the region/date predicates are applied in the shaping
// stage, identically for both engines.
func Q5(cat *catalog.Catalog) skipper.QuerySpec {
	customer := cat.MustTable("customer")
	orders := cat.MustTable("orders")
	lineitem := cat.MustTable("lineitem")
	supplier := cat.MustTable("supplier")
	nation := cat.MustTable("nation")
	region := cat.MustTable("region")

	os := orders.Schema
	orderFilter := expr.ColBetween(os, "o_orderdate", tuple.Date(1994, 1, 1), tuple.Date(1994, 12, 31))

	join := &mjoin.Query{
		ID: "q5",
		Relations: []mjoin.Relation{
			{Table: customer},
			{Table: orders, Filter: orderFilter},
			{Table: lineitem},
			{Table: supplier},
			{Table: nation},
			{Table: region, Filter: expr.ColEq(region.Schema, "r_name", tuple.Str("ASIA"))},
		},
		Joins: []mjoin.JoinCond{
			{Rel: 1, LeftCol: "c_custkey", RightCol: "o_custkey"},
			{Rel: 2, LeftCol: "o_orderkey", RightCol: "l_orderkey"},
			{Rel: 3, LeftCol: "l_suppkey", RightCol: "s_suppkey"},
			{Rel: 4, LeftCol: "s_nationkey", RightCol: "n_nationkey"},
			{Rel: 5, LeftCol: "n_regionkey", RightCol: "r_regionkey"},
		},
	}
	outSchema := join.OutputSchema()
	shape := func(in engine.Iterator) engine.Iterator {
		// The join-graph cycle: customers must share the supplier's
		// nation.
		localOnly := engine.NewFilter(in, expr.Cmp{
			Op: expr.EQ,
			L:  expr.Bind(outSchema, "c_nationkey"),
			R:  expr.Bind(outSchema, "s_nationkey"),
		})
		revenue := expr.Arith{
			Op: expr.Mul,
			L:  expr.Bind(outSchema, "l_extendedprice"),
			R: expr.Arith{Op: expr.Sub,
				L: expr.Lit(tuple.Float(1)),
				R: expr.Bind(outSchema, "l_discount")},
		}
		agg := engine.NewHashAgg(localOnly,
			[]engine.GroupCol{{Name: "n_name", Kind: tuple.KindString, E: expr.Bind(outSchema, "n_name")}},
			[]engine.AggSpec{{Kind: engine.AggSum, Name: "revenue", Arg: revenue}})
		return engine.NewSort(agg, []engine.SortKey{{E: expr.NewCol(1, "revenue"), Desc: true}})
	}
	return skipper.QuerySpec{Name: "tpch-q5", Join: join, Shape: shape}
}
