package workload

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/tuple"
)

func TestTPCHSegmentCountsMatchPaper(t *testing.T) {
	// SF-50: Q12's lineitem+orders = 57 objects; Q5's six relations ≈ 63
	// (the paper reports 57 and ~64); SF-100: 140 objects total, Q5
	// reads 124 (paper: 140 total, 127 read).
	c50 := TPCHConfig{SF: 50}.segmentCounts()
	if got := c50["lineitem"] + c50["orders"]; got != 57 {
		t.Errorf("SF-50 Q12 objects = %d, want 57", got)
	}
	q5 := c50["lineitem"] + c50["orders"] + c50["customer"] + c50["supplier"] + c50["nation"] + c50["region"]
	if q5 != 63 {
		t.Errorf("SF-50 Q5 objects = %d, want 63", q5)
	}
	c100 := TPCHConfig{SF: 100}.segmentCounts()
	total := 0
	for _, n := range c100 {
		total += n
	}
	if total != 140 {
		t.Errorf("SF-100 total objects = %d, want 140", total)
	}
	q5b := c100["lineitem"] + c100["orders"] + c100["customer"] + c100["supplier"] + c100["nation"] + c100["region"]
	if q5b != 124 {
		t.Errorf("SF-100 Q5 objects = %d, want 124", q5b)
	}
}

func TestTPCHDeterministic(t *testing.T) {
	a := TPCH(1, TPCHConfig{SF: 4, Seed: 7})
	b := TPCH(1, TPCHConfig{SF: 4, Seed: 7})
	if len(a.Store) != len(b.Store) {
		t.Fatalf("store sizes differ: %d vs %d", len(a.Store), len(b.Store))
	}
	for id, sg := range a.Store {
		if !reflect.DeepEqual(sg.Rows, b.Store[id].Rows) {
			t.Fatalf("object %v differs across generations", id)
		}
	}
	c := TPCH(1, TPCHConfig{SF: 4, Seed: 8})
	same := true
	for id, sg := range a.Store {
		if !reflect.DeepEqual(sg.Rows, c.Store[id].Rows) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTPCHSchemasValid(t *testing.T) {
	d := TPCH(0, TPCHConfig{SF: 2})
	for _, name := range d.Catalog.TableNames() {
		tm := d.Catalog.MustTable(name)
		for _, id := range tm.Objects {
			sg := d.Store[id]
			for _, r := range sg.Rows {
				if err := tm.Schema.Validate(r); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			if sg.NominalBytes != 1e9 {
				t.Fatalf("%v nominal %d", id, sg.NominalBytes)
			}
		}
	}
}

// runBothModes executes a query spec under vanilla and skipper and
// verifies identical result rows.
func runBothModes(t *testing.T, ds *Dataset, mkSpec func(*catalog.Catalog) skipper.QuerySpec) []tuple.Row {
	t.Helper()
	local := collectRows(t, ds, mkSpec(ds.Catalog))
	for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
		store := make(map[segment.ObjectID]*segment.Segment)
		ds.MergeInto(store)
		spec := mkSpec(ds.Catalog)
		client := &skipper.Client{
			Tenant:  ds.Catalog.Tenant,
			Mode:    mode,
			Catalog: ds.Catalog,
			Queries: []skipper.QuerySpec{spec},
		}
		cl := &skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}
		res, err := cl.Run()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := res.Clients[0].Rows; got != int64(len(local)) {
			t.Fatalf("%v produced %d rows, local evaluation %d", mode, got, len(local))
		}
	}
	return local
}

// collectRows evaluates the spec directly (local, no simulation) for
// result inspection.
func collectRows(t *testing.T, ds *Dataset, spec skipper.QuerySpec) []tuple.Row {
	t.Helper()
	rows, err := Evaluate(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestQ12RunsAndGroups(t *testing.T) {
	ds := TPCH(0, TPCHConfig{SF: 6, RowsPerObject: 30, Seed: 42})
	rows := runBothModes(t, ds, Q12)
	if len(rows) == 0 || len(rows) > 2 {
		t.Fatalf("Q12 groups = %d, want 1..2 (MAIL, SHIP)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		mode := r[0].AsString()
		if mode != "MAIL" && mode != "SHIP" {
			t.Fatalf("unexpected shipmode %q", mode)
		}
		if seen[mode] {
			t.Fatalf("duplicate group %q", mode)
		}
		seen[mode] = true
		if r[1].AsFloat()+r[2].AsFloat() <= 0 {
			t.Fatalf("empty counts in %v", r)
		}
	}
}

func TestQ5RunsOnBothEngines(t *testing.T) {
	ds := TPCH(0, TPCHConfig{SF: 5, RowsPerObject: 40, Seed: 11})
	rows := runBothModes(t, ds, Q5)
	// Result may be small but the pipeline must agree across engines;
	// with dense generation some ASIA-region revenue should exist.
	for _, r := range rows {
		if r[1].AsFloat() < 0 {
			t.Fatalf("negative revenue %v", r)
		}
	}
}

func TestSSBQ1(t *testing.T) {
	ds := SSB(0, SSBConfig{SF: 4, RowsPerObject: 60, Seed: 3})
	rows := runBothModes(t, ds, SSBQ1)
	if len(rows) != 1 {
		t.Fatalf("SSB Q1 rows = %d, want 1", len(rows))
	}
	if rows[0][0].AsFloat() <= 0 {
		t.Fatalf("zero revenue: %v", rows[0])
	}
}

func TestMRJoinTask(t *testing.T) {
	ds := MRBench(0, MRBenchConfig{TotalGB: 6, RowsPerObject: 40, Seed: 5})
	rows := runBothModes(t, ds, MRJoinTask)
	if len(rows) == 0 {
		t.Fatal("JoinTask produced no groups")
	}
	// Sorted by totalRevenue desc.
	for i := 1; i < len(rows); i++ {
		if rows[i][2].AsFloat() > rows[i-1][2].AsFloat() {
			t.Fatalf("not sorted by revenue: %v then %v", rows[i-1], rows[i])
		}
	}
}

func TestNREFJoin(t *testing.T) {
	ds := NREF(0, NREFConfig{TotalGB: 6, RowsPerObject: 40, Seed: 9})
	rows := runBothModes(t, ds, NREFJoin)
	if len(rows) != 1 {
		t.Fatalf("NREF rows = %d, want 1", len(rows))
	}
	if rows[0][0].AsInt() <= 0 {
		t.Fatalf("no matching sequences: %v (filters too tight for test data)", rows[0])
	}
}

func TestQ3SQLQuery(t *testing.T) {
	ds := TPCH(0, TPCHConfig{SF: 8, RowsPerObject: 60, Seed: 21})
	rows := runBothModes(t, ds, Q3)
	if len(rows) == 0 || len(rows) > 10 {
		t.Fatalf("Q3 rows = %d, want 1..10", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][1].AsFloat() > rows[i-1][1].AsFloat() {
			t.Fatalf("Q3 not sorted by revenue desc")
		}
	}
}

func TestQ14SQLQuery(t *testing.T) {
	ds := TPCH(0, TPCHConfig{SF: 6, RowsPerObject: 40, Seed: 22})
	rows := runBothModes(t, ds, Q14)
	if len(rows) != 1 {
		t.Fatalf("Q14 rows = %d", len(rows))
	}
	promo, total := rows[0][0].AsFloat(), rows[0][1].AsFloat()
	if promo < 0 || promo > total {
		t.Fatalf("promo %v > total %v", promo, total)
	}
	if total <= 0 {
		t.Fatal("no shipments matched; filters too tight for test data")
	}
}

func TestQ6SingleRelation(t *testing.T) {
	ds := TPCH(0, TPCHConfig{SF: 6, RowsPerObject: 60, Seed: 23})
	rows := runBothModes(t, ds, Q6SQL)
	if len(rows) != 1 {
		t.Fatalf("Q6 rows = %d", len(rows))
	}
	if rows[0][0].AsFloat() <= 0 {
		t.Fatal("Q6 zero revenue; filters too tight for test data")
	}
}

func TestClusteredDatesPruning(t *testing.T) {
	// With ship-date clustering, Q12's 1994 receipts live in a few
	// lineitem segments; the rest filter to empty and subplan pruning
	// avoids refetching them under cache pressure. The result must be
	// unchanged.
	// Density matters: with sparse segments even uniform data leaves
	// some segments match-free (accidentally prunable), hiding the
	// contrast. 220 rows per object ⇒ every uniform lineitem segment
	// has matches, while clustering still packs them into a few.
	mk := func(clustered bool) *Dataset {
		return TPCH(0, TPCHConfig{SF: 12, RowsPerObject: 220, Seed: 4, ClusteredDates: clustered})
	}
	gets := map[bool]int{}
	var results [2]int64
	for i, clustered := range []bool{false, true} {
		ds := mk(clustered)
		store := make(map[segment.ObjectID]*segment.Segment)
		ds.MergeInto(store)
		client := &skipper.Client{
			Tenant: 0, Mode: skipper.ModeSkipper, Catalog: ds.Catalog,
			Queries:      []skipper.QuerySpec{Q12(ds.Catalog)},
			CacheObjects: 3,
		}
		res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}).Run()
		if err != nil {
			t.Fatal(err)
		}
		gets[clustered] = res.Clients[0].GetsIssued
		results[i] = res.Clients[0].Rows
	}
	if gets[true] >= gets[false] {
		t.Fatalf("clustering did not reduce GETs: clustered %d vs uniform %d", gets[true], gets[false])
	}
	// Same dataset rows, different physical order: same group count.
	if results[0] == 0 || results[1] == 0 {
		t.Fatalf("degenerate results %v", results)
	}
}

func TestSSBFlightQueries(t *testing.T) {
	ds := SSB(0, SSBConfig{SF: 4, RowsPerObject: 120, Seed: 13})
	for _, mk := range []func(*catalog.Catalog) skipper.QuerySpec{SSBQ12, SSBQ13} {
		rows := runBothModes(t, ds, mk)
		if len(rows) != 1 {
			t.Fatalf("flight query rows = %d", len(rows))
		}
		if rows[0][0].AsFloat() < 0 {
			t.Fatalf("negative revenue %v", rows[0])
		}
	}
}

func TestDatasetFootprints(t *testing.T) {
	if got := len(SSB(0, SSBConfig{SF: 50}).Catalog.AllObjects()); got != 48 {
		t.Errorf("SSB SF-50 objects = %d, want 48 (47 lineorder + 1 date)", got)
	}
	if got := len(MRBench(0, MRBenchConfig{TotalGB: 20}).Catalog.AllObjects()); got != 20 {
		t.Errorf("MRBench objects = %d, want 20", got)
	}
	if got := len(NREF(0, NREFConfig{TotalGB: 13}).Catalog.AllObjects()); got != 13 {
		t.Errorf("NREF objects = %d, want 13", got)
	}
}

func TestMergeIntoKeepsTenantsDisjoint(t *testing.T) {
	store := make(map[segment.ObjectID]*segment.Segment)
	a := TPCH(0, TPCHConfig{SF: 2, Seed: 1})
	b := TPCH(1, TPCHConfig{SF: 2, Seed: 1})
	a.MergeInto(store)
	b.MergeInto(store)
	if len(store) != len(a.Store)+len(b.Store) {
		t.Fatalf("tenant object ids collide: %d != %d+%d", len(store), len(a.Store), len(b.Store))
	}
}

func ExampleQ12() {
	ds := TPCH(0, TPCHConfig{SF: 4, RowsPerObject: 30, Seed: 42})
	spec := Q12(ds.Catalog)
	rows, err := Evaluate(ds, spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range rows {
		fmt.Println(r[0])
	}
	// Output:
	// MAIL
	// SHIP
}
