package workload

import (
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/mjoin"
	"repro/internal/skipper"
	"repro/internal/tuple"
)

// SSBConfig sizes the Star Schema Benchmark dataset.
type SSBConfig struct {
	SF            int // scale factor (paper: 50)
	RowsPerObject int
	Seed          int64
}

// SSB schemas (columns used by Q1.x flights).
var (
	SchemaLineorder = tuple.NewSchema(
		col("lo_orderkey", tuple.KindInt64),
		col("lo_orderdate", tuple.KindInt64), // d_datekey format yyyymmdd
		col("lo_quantity", tuple.KindInt64),
		col("lo_extendedprice", tuple.KindFloat64),
		col("lo_discount", tuple.KindInt64), // percent 0..10
	)
	SchemaDate = tuple.NewSchema(
		col("d_datekey", tuple.KindInt64),
		col("d_year", tuple.KindInt64),
		col("d_yearmonthnum", tuple.KindInt64),
		col("d_weeknuminyear", tuple.KindInt64),
	)
)

// SSB generates one tenant's star-schema database: a lineorder fact table
// plus a date dimension.
func SSB(tenant int, cfg SSBConfig) *Dataset {
	if cfg.SF <= 0 {
		cfg.SF = 50
	}
	if cfg.RowsPerObject <= 0 {
		cfg.RowsPerObject = 24
	}
	b := newBuilder(tenant, cfg.Seed^0x55B)

	// Date dimension: 7 years of days, one segment.
	var dateRows []tuple.Row
	var dateKeys []int64
	for year := 1992; year <= 1998; year++ {
		for doy := 0; doy < 364; doy += 7 { // weekly granularity keeps it compact
			key := int64(year*10000 + (doy/30+1)*100 + doy%28 + 1)
			dateKeys = append(dateKeys, key)
			dateRows = append(dateRows, tuple.Row{
				tuple.Int(key),
				tuple.Int(int64(year)),
				tuple.Int(int64(year*100 + doy/30 + 1)),
				tuple.Int(int64(doy/7 + 1)),
			})
		}
	}
	b.addTable("date", SchemaDate, dateRows, 1)

	// Fact table sized like SSB: lineorder dominates (≈0.94 GB per SF).
	nSegs := int(0.94*float64(cfg.SF) + 0.5)
	if nSegs < 1 {
		nSegs = 1
	}
	nRows := nSegs * cfg.RowsPerObject
	loRows := make([]tuple.Row, nRows)
	for i := range loRows {
		loRows[i] = tuple.Row{
			tuple.Int(int64(i)),
			tuple.Int(dateKeys[b.rng.Intn(len(dateKeys))]),
			tuple.Int(int64(1 + b.rng.Intn(50))),
			tuple.Float(float64(100 + b.rng.Intn(1000000))),
			tuple.Int(int64(b.rng.Intn(11))),
		}
	}
	b.addTable("lineorder", SchemaLineorder, loRows, nSegs)
	return b.dataset()
}

// SSBQ1 builds SSB Q1.1: revenue from discount-band sales in 1993 —
// lineorder ⋈ date with tight filters and a global aggregate.
func SSBQ1(cat *catalog.Catalog) skipper.QuerySpec {
	lineorder := cat.MustTable("lineorder")
	date := cat.MustTable("date")
	los := lineorder.Schema
	loFilter := expr.NewAnd(
		expr.ColBetween(los, "lo_discount", tuple.Int(1), tuple.Int(3)),
		expr.ColLT(los, "lo_quantity", tuple.Int(25)),
	)
	join := &mjoin.Query{
		ID: "ssb-q1",
		Relations: []mjoin.Relation{
			{Table: lineorder, Filter: loFilter},
			{Table: date, Filter: expr.ColEq(date.Schema, "d_year", tuple.Int(1993))},
		},
		Joins: []mjoin.JoinCond{{Rel: 1, LeftCol: "lo_orderdate", RightCol: "d_datekey"}},
	}
	outSchema := join.OutputSchema()
	shape := func(in engine.Iterator) engine.Iterator {
		revenue := expr.Arith{
			Op: expr.Mul,
			L:  expr.Bind(outSchema, "lo_extendedprice"),
			R:  expr.Bind(outSchema, "lo_discount"),
		}
		return engine.NewHashAgg(in, nil,
			[]engine.AggSpec{{Kind: engine.AggSum, Name: "revenue", Arg: revenue}})
	}
	return skipper.QuerySpec{Name: "ssb-q1", Join: join, Shape: shape}
}
