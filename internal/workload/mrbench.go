package workload

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/mjoin"
	"repro/internal/skipper"
	"repro/internal/tuple"
)

// MRBenchConfig sizes the Pavlo et al. analytical benchmark dataset
// (rankings + uservisits; the paper uses a 20 GB database).
type MRBenchConfig struct {
	// TotalGB is the dataset footprint in 1 GB objects (default 20).
	TotalGB       int
	RowsPerObject int
	Seed          int64
}

// MRBench schemas.
var (
	SchemaRankings = tuple.NewSchema(
		col("pageURL", tuple.KindString),
		col("pageRank", tuple.KindInt64),
		col("avgDuration", tuple.KindInt64),
	)
	SchemaUservisits = tuple.NewSchema(
		col("sourceIP", tuple.KindString),
		col("destURL", tuple.KindString),
		col("visitDate", tuple.KindDate),
		col("adRevenue", tuple.KindFloat64),
	)
)

// MRBench generates one tenant's analytical-benchmark database: a small
// rankings relation and a large uservisits log.
func MRBench(tenant int, cfg MRBenchConfig) *Dataset {
	if cfg.TotalGB <= 0 {
		cfg.TotalGB = 20
	}
	if cfg.RowsPerObject <= 0 {
		cfg.RowsPerObject = 24
	}
	b := newBuilder(tenant, cfg.Seed^0x3B7)

	rankSegs := cfg.TotalGB / 10
	if rankSegs < 1 {
		rankSegs = 1
	}
	visitSegs := cfg.TotalGB - rankSegs
	if visitSegs < 1 {
		visitSegs = 1
	}

	nPages := rankSegs * cfg.RowsPerObject
	rankRows := make([]tuple.Row, nPages)
	urls := make([]string, nPages)
	for i := range rankRows {
		urls[i] = fmt.Sprintf("url%06d", i)
		rankRows[i] = tuple.Row{
			tuple.Str(urls[i]),
			tuple.Int(int64(b.rng.Intn(10000))),
			tuple.Int(int64(1 + b.rng.Intn(300))),
		}
	}
	b.addTable("rankings", SchemaRankings, rankRows, rankSegs)

	nVisits := visitSegs * cfg.RowsPerObject
	visitRows := make([]tuple.Row, nVisits)
	for i := range visitRows {
		visitRows[i] = tuple.Row{
			tuple.Str(fmt.Sprintf("%d.%d.%d.%d", b.rng.Intn(256), b.rng.Intn(256), b.rng.Intn(256), b.rng.Intn(256))),
			tuple.Str(urls[b.rng.Intn(nPages)]),
			tuple.DateFromDays(b.dateBetween(tuple.Date(1999, 1, 1), tuple.Date(2000, 12, 31))),
			tuple.Float(float64(b.rng.Intn(100000)) / 100),
		}
	}
	b.addTable("uservisits", SchemaUservisits, visitRows, visitSegs)
	return b.dataset()
}

// MRJoinTask builds the benchmark's JoinTask: per-source ad revenue and
// average page rank for visits in a date window.
func MRJoinTask(cat *catalog.Catalog) skipper.QuerySpec {
	rankings := cat.MustTable("rankings")
	uservisits := cat.MustTable("uservisits")
	uvFilter := expr.ColBetween(uservisits.Schema, "visitDate",
		tuple.Date(2000, 1, 15), tuple.Date(2000, 3, 31))
	join := &mjoin.Query{
		ID: "mr-join",
		Relations: []mjoin.Relation{
			{Table: rankings},
			{Table: uservisits, Filter: uvFilter},
		},
		Joins: []mjoin.JoinCond{{Rel: 1, LeftCol: "pageURL", RightCol: "destURL"}},
	}
	outSchema := join.OutputSchema()
	shape := func(in engine.Iterator) engine.Iterator {
		agg := engine.NewHashAgg(in,
			[]engine.GroupCol{{Name: "sourceIP", Kind: tuple.KindString, E: expr.Bind(outSchema, "sourceIP")}},
			[]engine.AggSpec{
				{Kind: engine.AggAvg, Name: "avgPageRank", Arg: expr.Bind(outSchema, "pageRank")},
				{Kind: engine.AggSum, Name: "totalRevenue", Arg: expr.Bind(outSchema, "adRevenue")},
			})
		return engine.NewSort(agg, []engine.SortKey{{E: expr.NewCol(2, "totalRevenue"), Desc: true}})
	}
	return skipper.QuerySpec{Name: "mr-join", Join: join, Shape: shape}
}
