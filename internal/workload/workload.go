// Package workload generates the four benchmark datasets of §5.1 — a
// TPC-H-like schema (SF-50/SF-100), the Star Schema Benchmark, the Pavlo
// analytical benchmark ("MRBench") and an NREF-like protein database —
// plus the query specs run against them (Q12, Q5, SSB Q1, JoinTask, and
// the NREF 4-table join).
//
// Object counts per relation track the paper's setup: with 1 GB segments,
// TPC-H SF-50 yields 57 objects for Q12's lineitem+orders and ≈63 for
// Q5's six relations; SF-100 yields 140 objects total of which Q5 reads
// 124. Tuple counts are scaled down (tuples carry the join/filter
// semantics; object counts carry the timing), with a configurable
// rows-per-object knob.
package workload

import (
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/segment"
	"repro/internal/tuple"
)

// Dataset is one tenant's generated database: catalog plus backing store.
type Dataset struct {
	Catalog *catalog.Catalog
	Store   map[segment.ObjectID]*segment.Segment
}

// MergeInto copies the dataset's objects into a shared store.
func (d *Dataset) MergeInto(store map[segment.ObjectID]*segment.Segment) {
	for id, sg := range d.Store {
		store[id] = sg
	}
}

// builder accumulates relations for one tenant.
type builder struct {
	tenant  int
	rng     *rand.Rand
	catalog *catalog.Catalog
	store   map[segment.ObjectID]*segment.Segment
}

func newBuilder(tenant int, seed int64) *builder {
	return &builder{
		tenant:  tenant,
		rng:     rand.New(rand.NewSource(seed ^ int64(tenant)*0x9E3779B97F4A7C)),
		catalog: catalog.New(tenant),
		store:   make(map[segment.ObjectID]*segment.Segment),
	}
}

// addTable splits rows into nSegments equal segments of 1 GB nominal size
// and registers the relation.
func (b *builder) addTable(name string, schema *tuple.Schema, rows []tuple.Row, nSegments int) {
	if nSegments < 1 {
		nSegments = 1
	}
	perSeg := (len(rows) + nSegments - 1) / nSegments
	if perSeg == 0 {
		perSeg = 1
	}
	segs := segment.Split(b.tenant, name, rows, perSeg, 1e9)
	// Pad with empty segments if integer division produced fewer than
	// requested (possible when rows < nSegments).
	for len(segs) < nSegments {
		segs = append(segs, &segment.Segment{
			ID:           segment.ObjectID{Tenant: b.tenant, Table: name, Index: len(segs)},
			NominalBytes: 1e9,
		})
	}
	for _, sg := range segs {
		b.store[sg.ID] = sg
	}
	b.catalog.MustAddTable(name, schema, segs)
}

func (b *builder) dataset() *Dataset {
	return &Dataset{Catalog: b.catalog, Store: b.store}
}

// dateBetween picks a uniform day count in [lo, hi].
func (b *builder) dateBetween(lo, hi tuple.Value) int64 {
	l, h := lo.AsInt(), hi.AsInt()
	return l + b.rng.Int63n(h-l+1)
}

func col(name string, k tuple.Kind) tuple.Column { return tuple.Column{Name: name, Kind: k} }

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }
