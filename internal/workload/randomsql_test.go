package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/sql"
)

// TestRandomSQLBothEngines is the whole-stack property test: random SQL
// over the TPC-H chain is parsed, planned, and executed by the pull-based
// engine (locally and on the simulated CSD) and by Skipper's MJoin — all
// three must agree.
func TestRandomSQLBothEngines(t *testing.T) {
	ds := TPCH(0, TPCHConfig{SF: 5, RowsPerObject: 25, Seed: 77})
	planner := &sql.Planner{Catalog: ds.Catalog}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		query := randomQuery(rng)
		spec, err := planner.Plan(query)
		if err != nil {
			t.Logf("seed %d: plan %q: %v", seed, query, err)
			return false
		}
		local, err := Evaluate(ds, spec)
		if err != nil {
			t.Logf("seed %d: eval %q: %v", seed, query, err)
			return false
		}
		for _, mode := range []skipper.Mode{skipper.ModeVanilla, skipper.ModeSkipper} {
			store := make(map[segment.ObjectID]*segment.Segment)
			ds.MergeInto(store)
			client := &skipper.Client{
				Tenant: 0, Mode: mode, Catalog: ds.Catalog,
				Queries:      []skipper.QuerySpec{spec},
				CacheObjects: len(spec.Join.Relations) + rng.Intn(8),
			}
			res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: store}).Run()
			if err != nil {
				t.Logf("seed %d: %v run %q: %v", seed, mode, query, err)
				return false
			}
			if res.Clients[0].Rows != int64(len(local)) {
				t.Logf("seed %d: %v rows %d != local %d for %q",
					seed, mode, res.Clients[0].Rows, len(local), query)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomQuery builds a valid SQL statement over a prefix of the join
// chain customer → orders → lineitem → supplier.
func randomQuery(rng *rand.Rand) string {
	type rel struct {
		name     string
		joinCond string // condition attaching it to the previous prefix
		preds    []string
		cols     []string
	}
	chain := []rel{
		{
			name:  "customer",
			preds: []string{"c_mktsegment = 'BUILDING'", "c_nationkey < 20", "c_custkey >= 5"},
			cols:  []string{"c_custkey", "c_nationkey"},
		},
		{
			name:     "orders",
			joinCond: "c_custkey = o_custkey",
			preds: []string{
				"o_orderpriority IN ('1-URGENT', '2-HIGH')",
				"o_orderdate BETWEEN '1993-01-01' AND '1996-12-31'",
				"o_totalprice < 30000.0",
			},
			cols: []string{"o_orderkey", "o_orderpriority"},
		},
		{
			name:     "lineitem",
			joinCond: "o_orderkey = l_orderkey",
			preds: []string{
				"l_quantity < 30",
				"l_shipmode IN ('MAIL', 'SHIP', 'AIR')",
				"l_shipdate < l_commitdate",
			},
			cols: []string{"l_quantity", "l_shipmode"},
		},
		{
			name:     "supplier",
			joinCond: "l_suppkey = s_suppkey",
			preds:    []string{"s_nationkey < 15"},
			cols:     []string{"s_suppkey", "s_nationkey"},
		},
	}
	n := 1 + rng.Intn(len(chain))
	used := chain[:n]

	var from, where, cols []string
	for i, r := range used {
		from = append(from, r.name)
		if i > 0 {
			where = append(where, r.joinCond)
		}
		for _, p := range r.preds {
			if rng.Intn(3) == 0 {
				where = append(where, p)
			}
		}
		cols = append(cols, r.cols[rng.Intn(len(r.cols))])
	}

	var sel, tail string
	switch rng.Intn(3) {
	case 0: // global aggregate
		sel = "COUNT(*) AS n"
	case 1: // grouped aggregate over one column
		g := cols[rng.Intn(len(cols))]
		sel = fmt.Sprintf("%s, COUNT(*) AS n", g)
		tail = fmt.Sprintf(" GROUP BY %s ORDER BY %s", g, g)
	default: // plain projection, maybe distinct/sorted/limited
		distinct := ""
		if rng.Intn(2) == 0 {
			distinct = "DISTINCT "
		}
		sel = distinct + strings.Join(dedup(cols), ", ")
		tail = fmt.Sprintf(" ORDER BY %s", cols[0])
		if rng.Intn(2) == 0 {
			tail += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(20))
		}
	}
	q := fmt.Sprintf("SELECT %s FROM %s", sel, strings.Join(from, ", "))
	if len(where) > 0 {
		q += " WHERE " + strings.Join(where, " AND ")
	}
	return q + tail
}

func dedup(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
