package workload

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/skipper"
	"repro/internal/sql"
)

// This file defines additional benchmark queries through the SQL
// front-end rather than hand-built plans — both to exercise the parser/
// planner end-to-end and to document the queries in their natural form.

// mustPlan compiles a SQL statement against the catalog.
func mustPlan(cat *catalog.Catalog, name, query string) skipper.QuerySpec {
	pl := &sql.Planner{Catalog: cat}
	spec, err := pl.Plan(query)
	if err != nil {
		panic(fmt.Sprintf("workload: %s: %v", name, err))
	}
	spec.Name = name
	return spec
}

// Q3 is TPC-H Q3 ("shipping priority"): top unshipped orders by potential
// revenue for one market segment.
func Q3(cat *catalog.Catalog) skipper.QuerySpec {
	return mustPlan(cat, "tpch-q3", `
		SELECT l_orderkey, SUM(l_extendedprice * (1.0 - l_discount)) AS revenue, o_orderdate
		FROM customer, orders, lineitem
		WHERE c_mktsegment = 'BUILDING'
		  AND c_custkey = o_custkey
		  AND l_orderkey = o_orderkey
		  AND o_orderdate < '1995-03-15'
		  AND l_shipdate > '1995-03-15'
		GROUP BY l_orderkey, o_orderdate
		ORDER BY revenue DESC
		LIMIT 10`)
}

// Q14 is TPC-H Q14 ("promotion effect"): the promo and total revenue for
// one month of shipments. (The TPC-H percentage is promo/total; this
// engine has no aggregate division, so both terms are returned.)
func Q14(cat *catalog.Catalog) skipper.QuerySpec {
	return mustPlan(cat, "tpch-q14", `
		SELECT SUM(CASE WHEN p_type LIKE 'TYPE#1%'
		           THEN l_extendedprice * (1.0 - l_discount) ELSE 0.0 END) AS promo_revenue,
		       SUM(l_extendedprice * (1.0 - l_discount)) AS total_revenue
		FROM lineitem, part
		WHERE l_partkey = p_partkey
		  AND l_shipdate BETWEEN '1995-09-01' AND '1995-09-30'`)
}

// SSBQ12 is SSB Q1.2: a tighter month-grain variant of the Q1 flight.
func SSBQ12(cat *catalog.Catalog) skipper.QuerySpec {
	return mustPlan(cat, "ssb-q1.2", `
		SELECT SUM(lo_extendedprice * lo_discount) AS revenue
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey
		  AND d_yearmonthnum = 199401
		  AND lo_discount BETWEEN 4 AND 6
		  AND lo_quantity BETWEEN 26 AND 35`)
}

// SSBQ13 is SSB Q1.3: the week-grain variant.
func SSBQ13(cat *catalog.Catalog) skipper.QuerySpec {
	return mustPlan(cat, "ssb-q1.3", `
		SELECT SUM(lo_extendedprice * lo_discount) AS revenue
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey
		  AND d_weeknuminyear = 6
		  AND d_year = 1994
		  AND lo_discount BETWEEN 5 AND 7
		  AND lo_quantity BETWEEN 26 AND 35`)
}

// QShipdateWindow is the data-skipping probe behind the selectivity
// sweep: Q12's lineitem⋈orders join with a configurable l_shipdate
// window (dates as 'YYYY-MM-DD'). Going through the SQL planner attaches
// a stats.Pruner for the window automatically. The aggregates are
// integer-only (COUNT plus SUM of an int column), so results are
// bit-identical under any execution order — pruning on/off and every
// DOP and arrival order can be compared byte for byte.
func QShipdateWindow(cat *catalog.Catalog, lo, hi string) skipper.QuerySpec {
	return mustPlan(cat, fmt.Sprintf("shipwin[%s..%s]", lo, hi), fmt.Sprintf(`
		SELECT l_shipmode, COUNT(*) AS lines, SUM(l_quantity) AS qty
		FROM lineitem, orders
		WHERE l_orderkey = o_orderkey
		  AND l_shipdate BETWEEN '%s' AND '%s'
		GROUP BY l_shipmode
		ORDER BY l_shipmode`, lo, hi))
}

// Q5Selective is the Q5-style pruning showcase: the full six-relation
// Q5 join shape with tight range predicates on the two date columns, so
// on a date-clustered dataset the zone maps skip most lineitem and
// orders segments before any CSD request is issued. Integer aggregates
// keep the result bit-identical at any execution order (see
// QShipdateWindow).
func Q5Selective(cat *catalog.Catalog) skipper.QuerySpec {
	return mustPlan(cat, "tpch-q5-selective", `
		SELECT n_name, COUNT(*) AS lines, SUM(l_quantity) AS qty
		FROM customer, orders, lineitem, supplier, nation, region
		WHERE c_custkey = o_custkey
		  AND o_orderkey = l_orderkey
		  AND l_suppkey = s_suppkey
		  AND s_nationkey = n_nationkey
		  AND n_regionkey = r_regionkey
		  AND c_nationkey = s_nationkey
		  AND r_name = 'ASIA'
		  AND o_orderdate BETWEEN '1994-01-01' AND '1994-03-31'
		  AND l_shipdate BETWEEN '1994-01-01' AND '1994-06-30'
		GROUP BY n_name
		ORDER BY n_name`)
}

// QProjectiveScan is the single-table projection-pushdown probe: it
// touches three of lineitem's columns (filter, group key, aggregate), so
// a columnar (v2) store decodes three blocks per segment where the
// row-major (v1) store decodes everything. Integer aggregates keep the
// result bit-identical at any execution order (see QShipdateWindow).
func QProjectiveScan(cat *catalog.Catalog) skipper.QuerySpec {
	return mustPlan(cat, "projective-scan", `
		SELECT l_shipmode, COUNT(*) AS lines, SUM(l_quantity) AS qty
		FROM lineitem
		WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-06-30'
		GROUP BY l_shipmode
		ORDER BY l_shipmode`)
}

// QCountLineitem is the degenerate projection probe: COUNT(*) with no
// predicate references no column at all, so a columnar store decodes
// zero blocks — row counts come straight from the segment headers.
func QCountLineitem(cat *catalog.Catalog) skipper.QuerySpec {
	return mustPlan(cat, "count-lineitem", `SELECT COUNT(*) AS n FROM lineitem`)
}

// MultiPass builds the repeated-query workload the shared-segment-cache
// experiments run: `passes` rounds of the pruning probe pair (the
// join+agg shipdate window and the Q5-style selective join). Every pass
// re-reads the same segments, so a warm cache turns all but the first
// pass's fetches into local hits; without one, every pass pays full
// device traffic. Both probes end in ORDER BY over integer aggregates,
// so results are bit-identical at any arrival order — the property the
// cache on/off differential gates rely on.
func MultiPass(cat *catalog.Catalog, passes int) []skipper.QuerySpec {
	if passes < 1 {
		passes = 1
	}
	specs := make([]skipper.QuerySpec, 0, 2*passes)
	for i := 0; i < passes; i++ {
		specs = append(specs,
			QShipdateWindow(cat, "1994-01-01", "1994-01-31"),
			Q5Selective(cat),
		)
	}
	return specs
}

// Q6SQL is TPC-H Q6 ("forecasting revenue change") — a single-relation
// scan with tight predicates, demonstrating scans need no MJoin.
func Q6SQL(cat *catalog.Catalog) skipper.QuerySpec {
	return mustPlan(cat, "tpch-q6", `
		SELECT SUM(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-12-31'
		  AND l_discount BETWEEN 0.02 AND 0.04
		  AND l_quantity < 24`)
}
