// Chaos soak: the serving layer under a live fault plan — transient GET
// failures, latency stalls, bit-flipped payloads and a crash/restart
// window — must keep returning byte-identical results. Concurrent
// closed-loop clients compare every frame against the fault-free
// oracle; afterwards the fault counters and metric families must show
// the storm actually happened, and the drain hygiene bar from the clean
// soak still holds (no leaked goroutines, no orphaned pins). Runs under
// CI's -race job.
package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/skipper"
)

// chaosServerPlan mirrors the skipper-level chaos gate's rates (the
// serving dataset is small, so low rates inject almost nothing) and
// adds a crash window long queries cross: every query whose simulated
// run passes 15s sees the device die and come back 20s later.
func chaosServerPlan() *faults.Plan {
	return &faults.Plan{
		Seed:               42,
		TransientRate:      0.40,
		StallRate:          0.20,
		Stall:              3 * time.Second,
		CorruptRate:        0.45,
		MaxFaultsPerObject: 3,
		CrashAt:            15 * time.Second,
		CrashDowntime:      20 * time.Second,
	}
}

// chaosServerRetry rides out the downtime window: generous attempts,
// backoff deep enough to sleep across the restart.
func chaosServerRetry() *skipper.RetryPolicy {
	return &skipper.RetryPolicy{
		MaxAttempts: 40,
		BaseBackoff: 500 * time.Millisecond,
		MaxBackoff:  8 * time.Second,
		Budget:      -1,
	}
}

// scrapeMetrics fetches the Prometheus exposition over the debug mux.
func scrapeMetrics(t *testing.T, s *Server) string {
	t.Helper()
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue sums the samples of one family across tenants.
func metricValue(t *testing.T, body, family string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + family + `\{[^}]*\} ([0-9.e+-]+)$`)
	var sum float64
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("%s: bad sample %q: %v", family, m[1], err)
		}
		sum += v
	}
	return sum
}

func TestChaosSoakServesCleanResults(t *testing.T) {
	const (
		tenants        = 2
		connsPerTenant = 2
		passes         = 2
	)
	baseline := runtime.NumGoroutine()

	cfg := servingConfig(t)
	cfg.Admission = AdmissionConfig{Slots: 2, TenantSlots: 1, QueueDepth: 16}
	cfg.Tracing = true
	cfg.Faults = chaosServerPlan()
	cfg.Retry = chaosServerRetry()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The oracle is a direct fault-free engine run: directRows builds its
	// own clean cluster, so the comparison is chaos-vs-clean, not
	// chaos-vs-chaos.
	oracle := make(map[string]string, len(soakQueries))
	for _, q := range soakQueries {
		oracle[q] = strings.Join(directRows(t, s, q), "\n")
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants*connsPerTenant)
	for tn := 0; tn < tenants; tn++ {
		for cn := 0; cn < connsPerTenant; cn++ {
			wg.Add(1)
			go func(tn, cn int) {
				defer wg.Done()
				errs <- soakClient(addr.String(), tn, cn, passes, oracle)
			}(tn, cn)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every offered query completed despite the storm — recovery, not
	// luck: the fault counters below prove the storm was real.
	perTenant := connsPerTenant * passes * len(soakQueries)
	var injected, retries, corrupt int64
	for tn := 0; tn < tenants; tn++ {
		ts := s.tenantState(tn)
		snap := ts.counters.Snapshot()
		if snap.Completed != int64(perTenant) || snap.Failed != 0 {
			t.Errorf("tenant %d: completed %d failed %d, want %d/0", tn, snap.Completed, snap.Failed, perTenant)
		}
		if ts.faultsInjected.Load() == 0 {
			t.Errorf("tenant %d saw no injected faults — the chaos soak is vacuous", tn)
		}
		injected += ts.faultsInjected.Load()
		retries += ts.retries.Load()
		corrupt += ts.corruptSegments.Load()
	}
	if retries == 0 {
		t.Error("no query retried a transfer: recovery path never exercised")
	}
	if corrupt == 0 {
		t.Error("no corrupt delivery detected: checksum path never exercised")
	}

	// The new metric families are live on /metrics and agree with the
	// internal counters.
	body := scrapeMetrics(t, s)
	for _, family := range []string{"skipper_faults_injected", "skipper_retries", "skipper_corrupt_segments"} {
		if !strings.Contains(body, "# TYPE "+family+" counter") {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if got := metricValue(t, body, "skipper_faults_injected"); got != float64(injected) {
		t.Errorf("exposition reports %v injected faults, counters say %d", got, injected)
	}
	if got := metricValue(t, body, "skipper_retries"); got != float64(retries) {
		t.Errorf("exposition reports %v retries, counters say %d", got, retries)
	}
	if got := metricValue(t, body, "skipper_corrupt_segments"); got != float64(corrupt) {
		t.Errorf("exposition reports %v corrupt segments, counters say %d", got, corrupt)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown was not clean: %v", err)
	}
	for tn := 0; tn < tenants; tn++ {
		if st := s.tenantState(tn).cache.Stats(); st.PinnedBytes != 0 {
			t.Errorf("tenant %d: %d bytes pinned after chaos shutdown", tn, st.PinnedBytes)
		}
	}
	requireSettle(t, baseline)
}

// TestChaosRetriesSurfaceInFrames pins the client-visible accounting:
// a query that recovered from faults reports its re-requests in the
// result frame.
func TestChaosRetriesSurfaceInFrames(t *testing.T) {
	cfg := servingConfig(t)
	// Demand-path-only (no prefetcher) so every injected transient is a
	// proxy retry rather than a silently dropped prefetch candidate.
	cfg.Pipeline = nil
	cfg.Faults = chaosServerPlan()
	cfg.Retry = chaosServerRetry()
	s, addr := startServer(t, cfg)
	c := dialServer(t, addr)
	resp := c.roundTrip(t, Request{ID: "q1", SQL: soakQueries[1]})
	if resp.Type != "result" {
		t.Fatalf("query failed under chaos: %+v", resp)
	}
	if want := strings.Join(directRows(t, s, soakQueries[1]), "\n"); strings.Join(resp.Rows, "\n") != want {
		t.Fatalf("chaotic rows diverge from clean oracle")
	}
	if resp.Retries == 0 {
		t.Fatal("frame reports zero retries under a 40% transient rate — accounting lost")
	}
}

// TestPermanentCrashDegradesGracefully: a permanent mid-run crash fails
// the affected queries with a typed exec error, but the session, the
// tenant's cached state and the rest of the server keep working —
// repeated attempts make progress through the cache (each run caches
// the segments transferred before the crash instant) until the query
// completes entirely from memory. Other tenants are untouched.
func TestPermanentCrashDegradesGracefully(t *testing.T) {
	cfg := servingConfig(t)
	cfg.Faults = &faults.Plan{Seed: 7, CrashAt: 15 * time.Second}
	s, addr := startServer(t, cfg)
	want := strings.Join(directRows(t, s, servingQuery), "\n")

	c := dialServer(t, addr)
	failures := 0
	var final *Response
	for attempt := 0; attempt < 30; attempt++ {
		resp := c.roundTrip(t, Request{ID: fmt.Sprintf("a%d", attempt), SQL: servingQuery})
		if resp.Type == "result" {
			final = resp
			break
		}
		if resp.Code != CodeExec || !strings.Contains(resp.Error, "crashed (no restart)") {
			t.Fatalf("attempt %d: want typed exec/device-crash error, got %+v", attempt, resp)
		}
		failures++
	}
	if final == nil {
		t.Fatal("query never completed: cached progress across attempts is not accumulating")
	}
	if failures == 0 {
		t.Fatal("no attempt hit the crash window — the degradation test is vacuous")
	}
	if strings.Join(final.Rows, "\n") != want {
		t.Fatalf("post-crash result diverges from clean oracle")
	}

	// A different tenant is completely unaffected: admin verbs and its
	// own accounting still serve.
	c2 := dialServer(t, addr)
	tenant := 1
	if resp := c2.roundTrip(t, Request{ID: "h", Op: OpHello, Tenant: &tenant}); resp.Type != "hello" {
		t.Fatalf("healthy tenant cannot bind: %+v", resp)
	}
	if resp := c2.roundTrip(t, Request{ID: "s", Op: OpStats}); resp.Type != "stats" {
		t.Fatalf("healthy tenant cannot read stats: %+v", resp)
	}
	snap := s.tenantState(0).counters.Snapshot()
	if snap.Failed != int64(failures) || snap.Completed != 1 {
		t.Fatalf("tenant 0 counters: %+v, want failed=%d completed=1", snap, failures)
	}
}
