package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded is the typed backpressure rejection: the admission
// queue is full, so the query is refused immediately rather than
// stalled. Clients see it as an "overloaded" error frame and are
// expected to back off and retry.
var ErrOverloaded = errors.New("server overloaded: admission queue full")

// AdmissionConfig sizes the admission controller.
type AdmissionConfig struct {
	// Slots bounds queries executing concurrently, across all tenants.
	// Default 4.
	Slots int
	// TenantSlots bounds one tenant's share of Slots: while other
	// tenants wait, no tenant occupies more than this many slots.
	// Default (0) and values > Slots clamp to Slots.
	TenantSlots int
	// QueueDepth bounds queries waiting for a slot, across all tenants.
	// A query arriving with the queue full is rejected with
	// ErrOverloaded. Default 4×Slots; negative means no queueing (every
	// query not admissible immediately is rejected).
	QueueDepth int
	// Now is the controller's clock, injectable for tests. Default
	// time.Now.
	Now func() time.Time
}

// withDefaults resolves the zero values.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.TenantSlots <= 0 || c.TenantSlots > c.Slots {
		c.TenantSlots = c.Slots
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Slots
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// waiter is one queued admission request.
type waiter struct {
	tenant  int
	ready   chan struct{} // closed on grant
	granted bool
	at      time.Time // enqueue instant (queue-wait accounting)
}

// Admission is the controller in front of execution: a bounded
// in-flight semaphore with per-tenant quotas, fair (round-robin across
// tenants, FIFO within a tenant) dispatch of queued queries, and
// queue-depth backpressure. All methods are safe for concurrent use.
type Admission struct {
	cfg AdmissionConfig

	mu        sync.Mutex
	inflight  int
	byTenant  map[int]int       // slots held per tenant
	queues    map[int][]*waiter // waiting, FIFO per tenant
	queued    int               // total waiters
	ring      []int             // tenant ids in first-seen order
	ringIndex map[int]int       // tenant id → position in ring
	cursor    int               // ring position of the last grant
}

// NewAdmission builds a controller from the (defaulted) config.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{
		cfg:       cfg.withDefaults(),
		byTenant:  make(map[int]int),
		queues:    make(map[int][]*waiter),
		ringIndex: make(map[int]int),
	}
}

// Config returns the resolved configuration.
func (a *Admission) Config() AdmissionConfig { return a.cfg }

// Acquire blocks until the tenant is granted an execution slot, the
// queue rejects the request, or ctx is done. It returns the release
// function (idempotent; must be called exactly once when granted), the
// time spent waiting in the queue, and the verdict: nil, an error
// wrapping ErrOverloaded (queue full), or an error wrapping ctx.Err()
// (canceled / deadline expired while waiting).
func (a *Admission) Acquire(ctx context.Context, tenant int) (release func(), wait time.Duration, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("admission: tenant %d: %w", tenant, err)
		}
	}
	a.mu.Lock()
	a.ensureTenant(tenant)
	w := &waiter{tenant: tenant, ready: make(chan struct{}), at: a.cfg.Now()}
	a.queues[tenant] = append(a.queues[tenant], w)
	a.queued++
	// Dispatch immediately: with free slots and quota headroom the
	// newcomer (or a longer-waiting eligible tenant — fairness beats
	// arrival order across tenants) is granted synchronously.
	a.dispatchLocked()
	if w.granted {
		a.mu.Unlock()
		return a.releaseFunc(tenant), 0, nil
	}
	// Backpressure counts genuine waiters only: a query granted on
	// arrival was never queued.
	if a.queued > a.cfg.QueueDepth {
		a.removeWaiterLocked(w)
		a.mu.Unlock()
		return nil, 0, fmt.Errorf("admission: tenant %d: %w (%d in flight, %d queued)",
			tenant, ErrOverloaded, a.inflight, a.cfg.QueueDepth)
	}
	a.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
		a.mu.Lock()
		wait = a.cfg.Now().Sub(w.at)
		a.mu.Unlock()
		return a.releaseFunc(tenant), wait, nil
	case <-done:
		a.mu.Lock()
		wait = a.cfg.Now().Sub(w.at)
		if w.granted {
			// The grant raced the cancellation: the slot is ours, so give
			// it back (which re-dispatches to the next waiter).
			a.releaseLocked(tenant)
		} else {
			a.removeWaiterLocked(w)
		}
		a.mu.Unlock()
		return nil, wait, fmt.Errorf("admission: tenant %d: %w", tenant, ctx.Err())
	}
}

// ensureTenant registers a tenant in the round-robin ring. Caller holds
// a.mu.
func (a *Admission) ensureTenant(tenant int) {
	if _, ok := a.ringIndex[tenant]; ok {
		return
	}
	a.ringIndex[tenant] = len(a.ring)
	a.ring = append(a.ring, tenant)
}

// dispatchLocked grants free slots to queued waiters in fair order:
// round-robin across tenants starting after the last-granted one, FIFO
// within each tenant, skipping tenants at their quota. Caller holds
// a.mu.
func (a *Admission) dispatchLocked() {
	for a.inflight < a.cfg.Slots && a.queued > 0 {
		granted := false
		n := len(a.ring)
		for i := 1; i <= n; i++ {
			pos := (a.cursor + i) % n
			t := a.ring[pos]
			q := a.queues[t]
			if len(q) == 0 || a.byTenant[t] >= a.cfg.TenantSlots {
				continue
			}
			w := q[0]
			a.queues[t] = q[1:]
			a.queued--
			w.granted = true
			close(w.ready)
			a.inflight++
			a.byTenant[t]++
			a.cursor = pos
			granted = true
			break
		}
		if !granted {
			return // every waiter's tenant is at quota
		}
	}
}

// removeWaiterLocked drops an ungranted waiter from its tenant queue.
// Caller holds a.mu.
func (a *Admission) removeWaiterLocked(w *waiter) {
	q := a.queues[w.tenant]
	for i, x := range q {
		if x == w {
			a.queues[w.tenant] = append(q[:i:i], q[i+1:]...)
			a.queued--
			return
		}
	}
}

// releaseFunc wraps releaseLocked in a sync.Once so double releases
// (e.g. from deferred cleanup plus an error path) are harmless.
func (a *Admission) releaseFunc(tenant int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.releaseLocked(tenant)
			a.mu.Unlock()
		})
	}
}

// releaseLocked returns a slot and re-dispatches. Caller holds a.mu.
func (a *Admission) releaseLocked(tenant int) {
	a.inflight--
	a.byTenant[tenant]--
	a.dispatchLocked()
}

// Occupancy reports the controller's live state: slots in use and
// waiters queued.
func (a *Admission) Occupancy() (inflight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, a.queued
}
