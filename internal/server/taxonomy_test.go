// Error-taxonomy audit: every failure class the server can hand a
// client maps to a stable machine-readable code, and the fault-layer
// errors underneath stay typed (errors.Is / errors.As) all the way up.
// The over-the-wire table drives one request per class — including the
// transient-exhaustion, corrupt-exhaustion and crash classes the fault
// layer introduced — and asserts code + message shape; the
// classification table pins how the typed errors answer IsRetryable /
// IsFaultError / errors.Is(ErrCorrupt).
package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/csd"
	"repro/internal/faults"
	"repro/internal/segment"
	"repro/internal/skipper"
)

// tinyRetry exhausts fast: three attempts, millisecond backoffs.
func tinyRetry() *skipper.RetryPolicy {
	return &skipper.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  time.Millisecond,
		Budget:      -1,
	}
}

func TestErrorTaxonomyOverWire(t *testing.T) {
	intp := func(v int) *int { return &v }
	cases := []struct {
		name string
		// faults/retry configure the server for this row (nil = clean).
		faults *faults.Plan
		retry  *skipper.RetryPolicy
		// pre is an optional frame sent first (session setup).
		pre *Request
		// raw, when set, is written verbatim instead of encoding req.
		raw      string
		req      Request
		wantCode string
		wantMsg  string
	}{
		{
			name:     "protocol: malformed json",
			raw:      "{not json}\n",
			wantCode: CodeProtocol,
		},
		{
			name:     "protocol: unknown op",
			req:      Request{ID: "t1", Op: "frobnicate"},
			wantCode: CodeProtocol,
			wantMsg:  "unknown op",
		},
		{
			name:     "plan: unknown table",
			req:      Request{ID: "t2", SQL: "SELECT x FROM nosuch"},
			wantCode: CodePlan,
		},
		{
			name:     "tenant: out of range",
			req:      Request{ID: "t3", Tenant: intp(1 << 20), SQL: servingQuery},
			wantCode: CodeTenant,
			wantMsg:  "out of range",
		},
		{
			name:     "tenant: switch after binding",
			pre:      &Request{ID: "pre", Op: OpHello, Tenant: intp(0)},
			req:      Request{ID: "t4", Tenant: intp(1), SQL: servingQuery},
			wantCode: CodeTenant,
			wantMsg:  "bound to tenant",
		},
		{
			name:     "not_found: unknown trace id",
			req:      Request{ID: "t5", Op: OpTrace, TraceID: "deadbeef"},
			wantCode: CodeNotFound,
		},
		{
			name: "deadline: fault storm outlives the budget",
			// Every transfer faults forever; the huge attempt cap keeps the
			// proxy retrying (virtual-time backoffs cost no real time) until
			// the 50ms wall deadline cancels the run mid-recovery.
			faults: &faults.Plan{Seed: 11, TransientRate: 1.0, MaxFaultsPerObject: -1},
			retry: &skipper.RetryPolicy{
				MaxAttempts: 1 << 20,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  time.Millisecond,
				Budget:      -1,
			},
			req:      Request{ID: "t6", SQL: servingQuery, DeadlineMS: 50},
			wantCode: CodeDeadline,
		},
		{
			name:     "exec: transient faults exhaust retries",
			faults:   &faults.Plan{Seed: 11, TransientRate: 1.0, MaxFaultsPerObject: -1},
			retry:    tinyRetry(),
			req:      Request{ID: "t7", SQL: servingQuery},
			wantCode: CodeExec,
			wantMsg:  "retries exhausted",
		},
		{
			name:     "exec: corruption exhausts retries",
			faults:   &faults.Plan{Seed: 11, CorruptRate: 1.0, MaxFaultsPerObject: -1},
			retry:    tinyRetry(),
			req:      Request{ID: "t8", SQL: servingQuery},
			wantCode: CodeExec,
			wantMsg:  "corrupt",
		},
		{
			name:     "exec: permanent device crash",
			faults:   &faults.Plan{Seed: 7, CrashAt: 15 * time.Second},
			req:      Request{ID: "t9", SQL: servingQuery},
			wantCode: CodeExec,
			wantMsg:  "crashed (no restart)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := servingConfig(t)
			cfg.Faults = tc.faults
			cfg.Retry = tc.retry
			_, addr := startServer(t, cfg)
			c := dialServer(t, addr)
			if tc.pre != nil {
				if resp := c.roundTrip(t, *tc.pre); resp.Type == "error" {
					t.Fatalf("setup frame failed: %+v", resp)
				}
			}
			var resp *Response
			if tc.raw != "" {
				c.sendRaw(t, tc.raw)
				resp = c.recv(t)
			} else {
				resp = c.roundTrip(t, tc.req)
			}
			if resp.Type != "error" {
				t.Fatalf("want error frame, got %+v", resp)
			}
			if resp.Code != tc.wantCode {
				t.Fatalf("code = %q (error %q), want %q", resp.Code, resp.Error, tc.wantCode)
			}
			if tc.wantMsg != "" && !strings.Contains(resp.Error, tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", resp.Error, tc.wantMsg)
			}
			// The session survives a typed error: the next frame works.
			if tc.raw == "" {
				if hello := c.roundTrip(t, Request{ID: "after", Op: OpHello}); hello.Type != "hello" {
					t.Fatalf("session dead after typed error: %+v", hello)
				}
			}
		})
	}
}

// TestFaultErrorClassification pins the typed-error contract underneath
// the wire codes: which errors the proxy retries, which the fault
// helpers recognize, and that wrapping preserves errors.Is / errors.As
// all the way through RetryExhaustedError.
func TestFaultErrorClassification(t *testing.T) {
	obj := segment.ObjectID{Table: "r", Index: 1}
	cases := []struct {
		name      string
		err       error
		retryable bool
		fault     bool
	}{
		{"transient", &csd.TransientError{Object: obj, Attempt: 1}, true, true},
		{"down restarting", &csd.DeviceDownError{Object: obj, Restarting: true}, true, true},
		{"down permanent", &csd.DeviceDownError{Object: obj}, false, true},
		{"corrupt (wrapped)", fmt.Errorf("decode: %w", segment.ErrCorrupt), false, true},
		{"retries exhausted", &skipper.RetryExhaustedError{Object: obj, Attempts: 3, Last: &csd.TransientError{Object: obj}}, false, true},
		{"plain error", errors.New("boom"), false, false},
		{"context deadline", context.DeadlineExceeded, false, false},
		{"nil", nil, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := csd.IsRetryable(tc.err); got != tc.retryable {
				t.Errorf("IsRetryable = %v, want %v", got, tc.retryable)
			}
			if got := skipper.IsFaultError(tc.err); got != tc.fault {
				t.Errorf("IsFaultError = %v, want %v", got, tc.fault)
			}
		})
	}

	// Wrapping contract: exhaustion unwraps to its final fault.
	var exhausted *skipper.RetryExhaustedError
	err := fmt.Errorf("query failed: %w", &skipper.RetryExhaustedError{
		Object: obj, Attempts: 2, Last: &csd.TransientError{Object: obj, Attempt: 2},
	})
	if !errors.As(err, &exhausted) {
		t.Fatal("errors.As failed to find RetryExhaustedError through wrapping")
	}
	var transient *csd.TransientError
	if !errors.As(err, &transient) {
		t.Fatal("errors.As failed to reach the underlying TransientError")
	}

	// ctx errors map to their wire codes.
	if ctxCode(context.DeadlineExceeded) != CodeDeadline {
		t.Error("DeadlineExceeded must map to the deadline code")
	}
	if ctxCode(context.Canceled) != CodeCanceled {
		t.Error("Canceled must map to the canceled code")
	}
}
