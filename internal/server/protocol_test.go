package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestParseRequestVerbs(t *testing.T) {
	tn := 3
	cases := []struct {
		name   string
		line   string
		want   Request
		errSub string
	}{
		{
			name: "plain query",
			line: `{"sql":"SELECT * FROM lineitem"}`,
			want: Request{Op: OpQuery, SQL: "SELECT * FROM lineitem"},
		},
		{
			name: "explicit op with tenant and deadline",
			line: `{"id":"q1","op":"query","tenant":3,"sql":"SELECT 1","deadline_ms":500}`,
			want: Request{ID: "q1", Op: OpQuery, Tenant: &tn, SQL: "SELECT 1", DeadlineMS: 500},
		},
		{
			name: "derived explain",
			line: `{"sql":"EXPLAIN SELECT * FROM lineitem"}`,
			want: Request{Op: OpExplain, SQL: "SELECT * FROM lineitem"},
		},
		{
			name: "explain op with bare statement",
			line: `{"op":"explain","sql":"SELECT 1"}`,
			want: Request{Op: OpExplain, SQL: "SELECT 1"},
		},
		{
			name: "explain op with redundant prefix",
			line: `{"op":"explain","sql":"explain\tSELECT 1"}`,
			want: Request{Op: OpExplain, SQL: "SELECT 1"},
		},
		{
			name: "derived stats ignores case",
			line: `{"sql":" stats "}`,
			want: Request{Op: OpStats, SQL: " stats "},
		},
		{
			name: "hello",
			line: `{"op":"hello","tenant":3}`,
			want: Request{Op: OpHello, Tenant: &tn},
		},
		{
			name: "explainx is a query, not explain",
			line: `{"sql":"EXPLAINX"}`,
			want: Request{Op: OpQuery, SQL: "EXPLAINX"},
		},
		{name: "not json", line: `SELECT 1`, errSub: "protocol error"},
		{name: "unknown field", line: `{"sql":"SELECT 1","bogus":true}`, errSub: "protocol error"},
		{name: "unknown op", line: `{"op":"insert","sql":"x"}`, errSub: "unknown op"},
		{name: "query without sql", line: `{"op":"query"}`, errSub: "without sql"},
		{name: "explain without statement", line: `{"op":"explain","sql":"   "}`, errSub: "without sql"},
		{
			// Bare "EXPLAIN" with nothing behind it is not the keyword —
			// it derives as a plain query and fails later at planning.
			name: "bare explain word is a query",
			line: `{"sql":"EXPLAIN   "}`,
			want: Request{Op: OpQuery, SQL: "EXPLAIN"},
		},
		{name: "negative tenant", line: `{"tenant":-1,"sql":"SELECT 1"}`, errSub: "negative tenant"},
		{name: "negative deadline", line: `{"sql":"SELECT 1","deadline_ms":-5}`, errSub: "negative deadline"},
		{name: "interleaved frames", line: `{"sql":"SELECT 1"}{"sql":"SELECT 2"}`, errSub: "trailing data"},
		{name: "wrong type", line: `{"tenant":"zero","sql":"SELECT 1"}`, errSub: "protocol error"},
		{name: "json array", line: `[1,2,3]`, errSub: "protocol error"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseRequest([]byte(tc.line))
			if tc.errSub != "" {
				if err == nil {
					t.Fatalf("parsed %q as %+v, want error containing %q", tc.line, got, tc.errSub)
				}
				if !errors.Is(err, ErrProtocol) {
					t.Fatalf("error %v does not wrap ErrProtocol", err)
				}
				if !strings.Contains(err.Error(), tc.errSub) {
					t.Fatalf("error %q does not contain %q", err, tc.errSub)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseRequest(%q): %v", tc.line, err)
			}
			if got.ID != tc.want.ID || got.Op != tc.want.Op || got.SQL != tc.want.SQL || got.DeadlineMS != tc.want.DeadlineMS {
				t.Fatalf("got %+v, want %+v", got, tc.want)
			}
			switch {
			case tc.want.Tenant == nil:
				if got.Tenant != nil {
					t.Fatalf("tenant = %d, want unset", *got.Tenant)
				}
			case got.Tenant == nil || *got.Tenant != *tc.want.Tenant:
				t.Fatalf("tenant = %v, want %d", got.Tenant, *tc.want.Tenant)
			}
		})
	}
}

func TestReadFrame(t *testing.T) {
	// Small bufio buffer forces the ErrBufferFull accumulation path.
	read := func(input string, max int) ([]byte, error) {
		return readFrame(bufio.NewReaderSize(strings.NewReader(input), 16), max)
	}

	if got, err := read("{\"sql\":\"SELECT 1\"}\n", 64); err != nil || string(got) != `{"sql":"SELECT 1"}` {
		t.Fatalf("simple frame: %q, %v", got, err)
	}
	if got, err := read("\n  \r\n{\"op\":\"stats\"}\n", 64); err != nil || string(got) != `{"op":"stats"}` {
		t.Fatalf("blank lines not skipped: %q, %v", got, err)
	}
	// A frame of exactly max bytes passes; max+1 is rejected.
	exact := strings.Repeat("x", 32)
	if got, err := read(exact+"\n", 32); err != nil || string(got) != exact {
		t.Fatalf("max-length frame: %q, %v", got, err)
	}
	if _, err := read(strings.Repeat("x", 33)+"\n", 32); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("oversized frame returned %v, want ErrLineTooLong", err)
	}
	if !errors.Is(ErrLineTooLong, ErrProtocol) {
		t.Fatal("ErrLineTooLong must wrap ErrProtocol")
	}
	// An endless line (no newline in sight) is cut off at the cap, not
	// accumulated.
	if _, err := read(strings.Repeat("y", 4096), 32); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("unterminated flood returned %v, want ErrLineTooLong", err)
	}
	// A mid-statement disconnect (partial line, then EOF) is dropped.
	if _, err := read(`{"sql":"SELECT`, 64); err != io.EOF {
		t.Fatalf("partial line at EOF returned %v, want io.EOF", err)
	}
	// ...even after a complete frame was read first.
	br := bufio.NewReaderSize(strings.NewReader("{\"op\":\"stats\"}\n{\"sql\":\"SEL"), 16)
	if got, err := readFrame(br, 64); err != nil || string(got) != `{"op":"stats"}` {
		t.Fatalf("first frame: %q, %v", got, err)
	}
	if _, err := readFrame(br, 64); err != io.EOF {
		t.Fatalf("trailing partial frame returned %v, want io.EOF", err)
	}
}

func TestReadFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	frames := []string{`{"sql":"SELECT 1"}`, `{"op":"stats"}`, `{"op":"hello"}`}
	for _, f := range frames {
		buf.WriteString(f)
		buf.WriteByte('\n')
	}
	br := bufio.NewReaderSize(&buf, 16)
	for i, want := range frames {
		got, err := readFrame(br, DefaultMaxLineBytes)
		if err != nil || string(got) != want {
			t.Fatalf("frame %d: %q, %v (want %q)", i, got, err, want)
		}
	}
	if _, err := readFrame(br, DefaultMaxLineBytes); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}
