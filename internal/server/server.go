package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/csd"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/segcache"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Config assembles a server: the dataset it serves, the execution
// engine settings every session inherits, and the admission policy.
type Config struct {
	// Dataset is the generated (and possibly re-encoded) database every
	// tenant queries. Required.
	Dataset *workload.Dataset
	// Mode selects the execution engine (default ModeSkipper).
	Mode skipper.Mode
	// CacheObjects is the MJoin buffer capacity in objects (skipper
	// mode; default 10).
	CacheObjects int
	// SegCacheObjects is each tenant's persistent segment-cache budget
	// in nominal 1 GB objects (0 = no cache). The cache outlives
	// sessions: every connection of a tenant shares one instance, so a
	// dashboard reconnecting re-hits the bytes its last session pulled.
	SegCacheObjects int
	// Prune toggles zone-map/Bloom data skipping (default true via
	// NewConfig; the zero value of this struct disables it).
	Prune bool
	// Pipeline, when non-nil, enables the PR 6 async pipeline (prefetch
	// + decode workers) for every query run.
	Pipeline *skipper.PipelineConfig
	// Devices is the CSD fleet size every query runs against (default 1,
	// the classic single-device testbed). With more than one device, disk
	// groups spread across the fleet and GETs fan out per placement.
	Devices int
	// Replication selects which objects live on more than one device of
	// a fleet (see layout.ParseReplication): "none", the hottest N, or
	// all. Replicas absorb load and take over when a device crashes.
	// Ignored with Devices <= 1.
	Replication layout.Replication
	// Faults, when non-nil, runs every query against a device injecting
	// this fault plan. Each query run builds a fresh injector from the
	// plan — fault decisions are a pure function of (seed, object,
	// attempt), so every query sees the same deterministic schedule on
	// its own virtual clock regardless of serving concurrency, and a
	// crash window hits each affected query at the same point of its own
	// run while other queries and tenants keep serving.
	Faults *faults.Plan
	// Retry overrides the per-query fault-recovery policy (nil uses
	// skipper.DefaultRetryPolicy).
	Retry *skipper.RetryPolicy
	// MaxTenants bounds acceptable tenant ids to [0, MaxTenants).
	// Default 8.
	MaxTenants int
	// Admission sizes the admission controller.
	Admission AdmissionConfig
	// DefaultDeadline bounds queries that do not carry their own
	// deadline_ms (0 = unbounded).
	DefaultDeadline time.Duration
	// MaxLineBytes bounds one request frame (default 1 MiB).
	MaxLineBytes int
	// Tracing captures a span tree for every query. Off, only queries
	// that ask (request trace:true) are traced; either way the tracing
	// machinery costs nothing on untraced queries.
	Tracing bool
	// TraceRing bounds the completed traces retained for the TRACE verb
	// (default 64; the oldest is evicted first).
	TraceRing int
	// TraceSink, when non-nil, receives every completed trace — the hook
	// skipperd's -trace-dir uses to write Chrome trace files. Called
	// synchronously from the query's handler after the response is built.
	TraceSink func(*trace.Export)
	// SlowQuery logs queries whose wall time (queue wait included) meets
	// the threshold to SlowQueryLog (0 = off).
	SlowQuery time.Duration
	// SlowQueryLog receives slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
}

// NewConfig returns a Config with the serving defaults filled in for
// the given dataset.
func NewConfig(ds *workload.Dataset) Config {
	return Config{
		Dataset:      ds,
		Mode:         skipper.ModeSkipper,
		CacheObjects: 10,
		Prune:        true,
		MaxTenants:   8,
	}
}

// tenantState is the server's per-tenant serving state: admission
// counters, the latency sketch behind the STATS percentiles, and the
// session-persistent segment cache.
type tenantState struct {
	counters metrics.AdmissionCounters
	latency  metrics.LatencySketch
	cache    *segcache.Cache // nil when SegCacheObjects is 0
	// Fault/recovery accounting, aggregated across the tenant's queries:
	// faults the device injected, retries the proxy issued, corrupt
	// deliveries the checksum caught, and recoveries that failed over to
	// a replica on another device.
	faultsInjected  atomic.Int64
	retries         atomic.Int64
	corruptSegments atomic.Int64
	failovers       atomic.Int64
	// Per-device GET ledgers (demand and prefetch) and crash-window
	// counts, indexed by device id; sized to the configured fleet at
	// tenant creation.
	deviceGets         []atomic.Int64
	devicePrefetchGets []atomic.Int64
	deviceCrashes      []atomic.Int64
}

// Server is the long-lived serving front end. Construct with New,
// start with Start, stop with Shutdown.
type Server struct {
	cfg     Config
	planner *sql.Planner
	store   map[segment.ObjectID]*segment.Segment
	adm     *Admission
	reg     *metrics.Registry
	slow    metrics.Counter // skipper_slow_queries_total

	base   context.Context // canceled on Shutdown: aborts queued and running queries
	cancel context.CancelFunc

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	tenants map[int]*tenantState
	closed  bool

	// Completed traces, retrievable with TRACE <id>, bounded by
	// cfg.TraceRing (oldest evicted). traceSeq numbers trace ids.
	traceMu    sync.Mutex
	traces     map[string]*trace.Export
	traceOrder []string
	traceSeq   atomic.Int64

	slowMu sync.Mutex // serializes slow-query log lines

	wg sync.WaitGroup // accept loop + connection handlers
}

// New builds a server over the dataset. The dataset's store is shared
// read-only across every concurrent query run (segments are immutable).
func New(cfg Config) (*Server, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("server: config has no dataset")
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 8
	}
	if cfg.CacheObjects <= 0 {
		cfg.CacheObjects = 10
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 64
	}
	if cfg.SlowQueryLog == nil {
		cfg.SlowQueryLog = os.Stderr
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		planner: &sql.Planner{Catalog: cfg.Dataset.Catalog},
		store:   cfg.Dataset.Store,
		adm:     NewAdmission(cfg.Admission),
		reg:     metrics.NewRegistry(),
		base:    base,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
		tenants: make(map[int]*tenantState),
		traces:  make(map[string]*trace.Export),
	}
	s.registerServerMetrics()
	return s, nil
}

// registerServerMetrics wires the server-wide series: admission
// occupancy gauges and the counters no per-tenant structure tracks.
// Per-tenant series are registered lazily when a tenant first appears
// (tenantState).
func (s *Server) registerServerMetrics() {
	s.reg.GaugeFunc("skipper_inflight_queries",
		"Queries executing right now, across all tenants.", nil,
		func() float64 { inflight, _ := s.adm.Occupancy(); return float64(inflight) })
	s.reg.GaugeFunc("skipper_admission_queued_queries",
		"Queries waiting for an execution slot right now.", nil,
		func() float64 { _, queued := s.adm.Occupancy(); return float64(queued) })
	s.reg.GaugeFunc("skipper_traces_retained",
		"Completed query traces retrievable with the TRACE verb.", nil,
		func() float64 {
			s.traceMu.Lock()
			defer s.traceMu.Unlock()
			return float64(len(s.traces))
		})
	s.slow = s.reg.Counter("skipper_slow_queries_total",
		"Queries whose wall time met the slow-query threshold.", nil)
}

// Metrics exposes the server's metric registry — the /metrics endpoint
// of the debug listener serves it.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Admission exposes the server's admission controller (read-only use:
// occupancy and resolved configuration).
func (s *Server) Admission() *Admission { return s.adm }

// Start listens on addr ("host:port", ":0" for an ephemeral port) and
// serves connections until Shutdown. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown stops accepting, waits for in-flight sessions to drain, and
// — once ctx expires — cancels running queries and force-closes
// connections. It returns nil on a clean drain, the ctx error when
// force-closing was needed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var dirty error
	select {
	case <-done:
	case <-ctx.Done():
		dirty = ctx.Err()
		s.cancel() // abort queued and executing queries
		s.mu.Lock()
		for c := range s.conns {
			c.Close() // unblock handlers waiting in Read
		}
		s.mu.Unlock()
		<-done
	}
	s.cancel()
	return dirty
}

// session is one connection's state, touched only by its handler
// goroutine. The tenant binds on the first frame that names one (or to
// tenant 0 on the first query without).
type session struct {
	tenant int // -1 until bound
}

// handleConn runs one session: read frame, dispatch, write response.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sess := &session{tenant: -1}
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		line, err := readFrame(br, s.cfg.MaxLineBytes)
		if err != nil {
			if errors.Is(err, ErrLineTooLong) {
				// Framing is lost; answer once and hang up.
				enc.Encode(errorResponse("", sess.tenant, CodeProtocol, err))
			}
			return // EOF, peer reset, or force-close
		}
		resp := s.dispatch(sess, line)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// dispatch routes one parsed frame. Protocol errors answer with a typed
// frame but keep the session alive: the peer's framing is intact (the
// line terminated), only its content was bad.
func (s *Server) dispatch(sess *session, line []byte) *Response {
	req, err := ParseRequest(line)
	if err != nil {
		return errorResponse("", sess.tenant, CodeProtocol, err)
	}
	if req.Tenant != nil {
		t := *req.Tenant
		if t >= s.cfg.MaxTenants {
			return errorResponse(req.ID, sess.tenant, CodeTenant,
				fmt.Errorf("tenant %d out of range [0,%d)", t, s.cfg.MaxTenants))
		}
		if sess.tenant >= 0 && sess.tenant != t {
			return errorResponse(req.ID, sess.tenant, CodeTenant,
				fmt.Errorf("session is bound to tenant %d; reconnect to switch to %d", sess.tenant, t))
		}
		sess.tenant = t
	}
	switch req.Op {
	case OpHello:
		if sess.tenant < 0 {
			sess.tenant = 0
		}
		return &Response{ID: req.ID, Type: "hello", Tenant: sess.tenant}
	case OpStats:
		return s.statsResponse(req.ID, sess.tenant)
	case OpTrace:
		return s.traceResponse(req, sess.tenant)
	case OpExplain:
		if sess.tenant < 0 {
			sess.tenant = 0
		}
		return s.explain(req, sess.tenant)
	default: // OpQuery
		if sess.tenant < 0 {
			sess.tenant = 0
		}
		return s.runQuery(req, sess.tenant)
	}
}

// tenantState returns (creating on first use) a tenant's serving state.
func (s *Server) tenantState(tenant int) *tenantState {
	s.mu.Lock()
	ts, ok := s.tenants[tenant]
	if !ok {
		ts = &tenantState{
			deviceGets:         make([]atomic.Int64, s.numDevices()),
			devicePrefetchGets: make([]atomic.Int64, s.numDevices()),
			deviceCrashes:      make([]atomic.Int64, s.numDevices()),
		}
		if s.cfg.SegCacheObjects > 0 {
			ts.cache = segcache.NewObjects(s.cfg.SegCacheObjects)
		}
		s.tenants[tenant] = ts
	}
	s.mu.Unlock()
	if !ok {
		s.registerTenantMetrics(tenant, ts)
	}
	return ts
}

// registerTenantMetrics bridges one tenant's counters and latency
// sketch into the registry. The series read the same structures the
// STATS frame snapshots, so the two views can never disagree;
// registration is replace-on-rewire, hence idempotent.
func (s *Server) registerTenantMetrics(tenant int, ts *tenantState) {
	label := func() map[string]string {
		return map[string]string{"tenant": strconv.Itoa(tenant)}
	}
	bridge := func(outcome string, v *atomic.Int64) {
		l := label()
		l["outcome"] = outcome
		s.reg.CounterFunc("skipper_queries_total",
			"Queries by admission/execution outcome.", l,
			func() float64 { return float64(v.Load()) })
	}
	c := &ts.counters
	bridge("admitted", &c.Admitted)
	bridge("rejected", &c.Rejected)
	bridge("expired", &c.Expired)
	bridge("completed", &c.Completed)
	bridge("failed", &c.Failed)
	s.reg.CounterFunc("skipper_queued_queries_total",
		"Admitted queries that had to wait for a slot.", label(),
		func() float64 { return float64(c.Queued.Load()) })
	s.reg.CounterFunc("skipper_queue_wait_seconds_total",
		"Time spent waiting for an execution slot.", label(),
		func() float64 { return time.Duration(c.QueueWaitNS.Load()).Seconds() })
	s.reg.Summary("skipper_query_latency_seconds",
		"Wall latency of served queries, queue wait included.", label(),
		&ts.latency)
	s.reg.CounterFunc("skipper_faults_injected",
		"Faults the device's fault plan injected into this tenant's queries.", label(),
		func() float64 { return float64(ts.faultsInjected.Load()) })
	s.reg.CounterFunc("skipper_retries",
		"GET re-requests the client proxy issued after retryable faults.", label(),
		func() float64 { return float64(ts.retries.Load()) })
	s.reg.CounterFunc("skipper_corrupt_segments",
		"Deliveries the end-to-end checksum rejected as corrupt.", label(),
		func() float64 { return float64(ts.corruptSegments.Load()) })
	s.reg.CounterFunc("skipper_failovers",
		"Recoveries that re-requested an object from a replica on another device.", label(),
		func() float64 { return float64(ts.failovers.Load()) })
	for d := range ts.deviceGets {
		d := d
		dl := func() map[string]string {
			l := label()
			l["device"] = strconv.Itoa(d)
			return l
		}
		s.reg.CounterFunc("skipper_device_gets_total",
			"Demand GETs this tenant routed to the device.", dl(),
			func() float64 { return float64(ts.deviceGets[d].Load()) })
		s.reg.CounterFunc("skipper_device_prefetch_gets_total",
			"Prefetch GETs issued on this tenant's behalf to the device.", dl(),
			func() float64 { return float64(ts.devicePrefetchGets[d].Load()) })
		s.reg.CounterFunc("skipper_device_crashes_total",
			"Crash windows the device entered during this tenant's queries.", dl(),
			func() float64 { return float64(ts.deviceCrashes[d].Load()) })
	}
}

// numDevices resolves the configured fleet size (at least one).
func (s *Server) numDevices() int {
	if s.cfg.Devices > 1 {
		return s.cfg.Devices
	}
	return 1
}

// runQuery is the serving path: plan, admit, execute, account. Traced
// queries (request trace:true or Config.Tracing) record a span per
// stage — plan, admission wait, execution (the engine nests its own
// spans under it), response drain — retrievable afterwards with
// TRACE <id>; untraced queries take the identical code path with a nil
// trace, which every recording call treats as a two-instruction no-op.
func (s *Server) runQuery(req *Request, tenant int) *Response {
	ts := s.tenantState(tenant)
	var qt *trace.QueryTrace
	if s.cfg.Tracing || req.Trace {
		id := "t" + strconv.Itoa(tenant) + "-" + strconv.FormatInt(s.traceSeq.Add(1), 10)
		qt = trace.NewQueryTrace(id, tenant, req.SQL)
	}
	resp := s.runQueryTraced(req, tenant, ts, qt)
	if qt != nil {
		resp.TraceID = qt.ID
		s.storeTrace(qt.ExportTrace())
	}
	return resp
}

// runQueryTraced is runQuery's body; splitting it out lets the caller
// attach the trace id and archive the trace on every exit path,
// error frames included.
func (s *Server) runQueryTraced(req *Request, tenant int, ts *tenantState, qt *trace.QueryTrace) *Response {
	planStart := qt.Origin() // zero when untraced; Emit is nil-safe
	spec, err := s.planner.Plan(req.SQL)
	qt.Emit(trace.CatPlan, "plan", planStart)
	if err != nil {
		return errorResponse(req.ID, tenant, CodePlan, err)
	}
	ctx := s.base
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	start := time.Now()
	release, wait, err := s.adm.Acquire(ctx, tenant)
	qt.Emit(trace.CatAdmission, "slot wait", start)
	if wait > 0 {
		ts.counters.Queued.Add(1)
		ts.counters.AddQueueWait(wait)
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			ts.counters.Rejected.Add(1)
			return errorResponse(req.ID, tenant, CodeOverloaded, err)
		default:
			ts.counters.Expired.Add(1)
			return errorResponse(req.ID, tenant, ctxCode(err), err)
		}
	}
	defer release()
	ts.counters.Admitted.Add(1)
	res, rows, err := s.execute(ctx, tenant, ts, spec, qt)
	elapsed := time.Since(start)
	ts.latency.Record(elapsed)
	s.logSlowQuery(req, tenant, qt, elapsed, wait, err)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ts.counters.Expired.Add(1)
			return errorResponse(req.ID, tenant, ctxCode(err), err)
		}
		ts.counters.Failed.Add(1)
		return errorResponse(req.ID, tenant, CodeExec, err)
	}
	ts.counters.Completed.Add(1)
	cs := res.Clients[0]
	drainStart := time.Now()
	rendered := make([]string, len(rows))
	for i, r := range rows {
		rendered[i] = r.String()
	}
	qt.Emit(trace.CatDrain, "render rows", drainStart)
	return &Response{
		ID: req.ID, Type: "result", Tenant: tenant,
		Rows: rendered, RowCount: len(rows),
		VirtualUS: durUS(cs.Elapsed()),
		WallUS:    durUS(elapsed),
		QueueUS:   durUS(wait),
		Gets:      cs.GetsIssued,
		CacheHits: cs.CacheHits,
		Pruned:    cs.SegmentsSkipped,
		Retries:   cs.Retries,
	}
}

// logSlowQuery writes one line per query meeting the threshold.
func (s *Server) logSlowQuery(req *Request, tenant int, qt *trace.QueryTrace, elapsed, wait time.Duration, err error) {
	if s.cfg.SlowQuery <= 0 || elapsed < s.cfg.SlowQuery {
		return
	}
	s.slow.Inc()
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	traceID := "-"
	if qt.Enabled() {
		traceID = qt.ID
	}
	s.slowMu.Lock()
	fmt.Fprintf(s.cfg.SlowQueryLog,
		"slow-query tenant=%d wall=%s queue=%s outcome=%s trace=%s sql=%q\n",
		tenant, elapsed.Round(time.Microsecond), wait.Round(time.Microsecond),
		outcome, traceID, req.SQL)
	s.slowMu.Unlock()
}

// storeTrace archives a completed trace for the TRACE verb, evicting
// the oldest past the ring bound, and feeds the configured sink.
func (s *Server) storeTrace(e *trace.Export) {
	s.traceMu.Lock()
	if _, dup := s.traces[e.ID]; !dup {
		s.traceOrder = append(s.traceOrder, e.ID)
	}
	s.traces[e.ID] = e
	for len(s.traceOrder) > s.cfg.TraceRing {
		delete(s.traces, s.traceOrder[0])
		s.traceOrder = s.traceOrder[1:]
	}
	s.traceMu.Unlock()
	if s.cfg.TraceSink != nil {
		s.cfg.TraceSink(e)
	}
}

// traceResponse serves TRACE <id>: the archived span tree of a traced
// query.
func (s *Server) traceResponse(req *Request, tenant int) *Response {
	s.traceMu.Lock()
	e := s.traces[req.TraceID]
	s.traceMu.Unlock()
	if e == nil {
		return errorResponse(req.ID, tenant, CodeNotFound,
			fmt.Errorf("trace %q not found (evicted, or the query was not traced)", req.TraceID))
	}
	return &Response{ID: req.ID, Type: "trace", Tenant: tenant, Trace: e}
}

// execute runs one admitted query as a single-client cluster over the
// server's shared store, wired to the tenant's persistent segment cache
// and the configured pipeline. ctx bounds the run in real time.
func (s *Server) execute(ctx context.Context, tenant int, ts *tenantState, spec skipper.QuerySpec, qt *trace.QueryTrace) (*skipper.RunResult, []tuple.Row, error) {
	prune := s.cfg.Prune
	client := &skipper.Client{
		Tenant:       tenant,
		Mode:         s.cfg.Mode,
		Catalog:      s.cfg.Dataset.Catalog,
		Queries:      []skipper.QuerySpec{spec},
		CacheObjects: s.cfg.CacheObjects,
		StatsPruning: &prune,
		SegCache:     ts.cache,
		Pipeline:     s.cfg.Pipeline,
		Retry:        s.cfg.Retry,
		KeepResults:  true,
		Ctx:          ctx,
		QTrace:       qt,
	}
	cl := &skipper.Cluster{Clients: []*skipper.Client{client}, Store: s.store}
	var injs []*faults.Injector
	mkInjector := func(device int) *faults.Injector {
		// Fresh per query and per device: fault decisions are a pure
		// function of (seed, object, attempt), so every query sees the
		// same deterministic schedule on its own virtual clock.
		plan := *s.cfg.Faults
		if device > 0 {
			// Crashes are confined to device 0: a replicated fleet then
			// always has a live side to fail over to, which is the failure
			// mode the scale-out experiments measure. Transient and
			// corruption rates apply on every device.
			plan.CrashAt, plan.CrashDowntime = 0, 0
		}
		inj := faults.MustNew(plan)
		injs = append(injs, inj)
		return inj
	}
	if n := s.numDevices(); n > 1 {
		cl.Devices = make([]csd.Config, n)
		cl.Replication = s.cfg.Replication
		if s.cfg.Faults != nil {
			for d := range cl.Devices {
				cl.Devices[d].Faults = mkInjector(d)
			}
		}
	} else if s.cfg.Faults != nil {
		cl.CSD = csd.Config{Faults: mkInjector(0)}
	}
	res, err := cl.Run()
	// Fault accounting covers failed runs too — a query that exhausted
	// its retries still observed every one of them.
	cs := client.Stats()
	ts.retries.Add(int64(cs.Retries))
	ts.corruptSegments.Add(int64(cs.CorruptDeliveries))
	ts.failovers.Add(int64(cs.Failovers))
	for d, n := range cs.DeviceGets {
		if d < len(ts.deviceGets) {
			ts.deviceGets[d].Add(int64(n))
		}
	}
	for d, n := range cs.PrefetchDeviceGets {
		if d < len(ts.devicePrefetchGets) {
			ts.devicePrefetchGets[d].Add(int64(n))
		}
	}
	for _, inj := range injs {
		ts.faultsInjected.Add(inj.Stats().Injected())
	}
	if res != nil {
		for d, st := range res.Devices {
			if d < len(ts.deviceCrashes) {
				ts.deviceCrashes[d].Add(int64(st.Crashes))
			}
		}
	}
	if err != nil {
		return nil, nil, err
	}
	return res, res.Clients[0].PerQuery[0].Results, nil
}

// explain plans the statement and renders the pull-engine operator tree
// with the data-skipping and cache-residency summary — the skipperql
// EXPLAIN view over the wire.
func (s *Server) explain(req *Request, tenant int) *Response {
	spec, err := s.planner.Plan(req.SQL)
	if err != nil {
		return errorResponse(req.ID, tenant, CodePlan, err)
	}
	if req.Analyze {
		return s.explainAnalyze(req, tenant, spec)
	}
	it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(s.store), spec.Join, s.cfg.Prune)
	if err != nil {
		return errorResponse(req.ID, tenant, CodePlan, err)
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	plan := engine.Explain(it)
	total, skipped, resident, fetches := 0, 0, 0, 0
	cache := s.tenantState(tenant).cache
	for _, rel := range spec.Join.Relations {
		total += len(rel.Table.Objects)
		if s.cfg.Prune {
			skipped += stats.CountSkipped(rel.Pruner, len(rel.Table.Objects))
		}
		for si, id := range rel.Table.Objects {
			if s.cfg.Prune && rel.Pruner != nil && rel.Pruner.CanSkip(si) {
				continue
			}
			fetches++
			if cache != nil && cache.Contains(id) {
				resident++
			}
		}
	}
	plan += fmt.Sprintf("-- data skipping: %d of %d segment fetches pruned\n", skipped, total)
	if cache != nil {
		plan += fmt.Sprintf("-- segcache: %d of %d unpruned segment fetches cache-resident\n", resident, fetches)
	}
	return &Response{ID: req.ID, Type: "explain", Tenant: tenant, Plan: plan}
}

// explainAnalyze executes the pull plan with per-operator
// instrumentation armed and renders the tree annotated with measured
// rows/batches/bytes/time. It runs real work, so it passes through
// admission and is accounted like a query. The drain is serial (armed
// operator stats are unlocked), matching how EXPLAIN ANALYZE plans are
// built.
func (s *Server) explainAnalyze(req *Request, tenant int, spec skipper.QuerySpec) *Response {
	ts := s.tenantState(tenant)
	release, wait, err := s.adm.Acquire(s.base, tenant)
	if wait > 0 {
		ts.counters.Queued.Add(1)
		ts.counters.AddQueueWait(wait)
	}
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			ts.counters.Rejected.Add(1)
			return errorResponse(req.ID, tenant, CodeOverloaded, err)
		}
		ts.counters.Expired.Add(1)
		return errorResponse(req.ID, tenant, ctxCode(err), err)
	}
	defer release()
	ts.counters.Admitted.Add(1)
	start := time.Now()
	it, err := skipper.BuildPullPlanPruned(engine.NewTestCtx(s.store), spec.Join, s.cfg.Prune)
	if err != nil {
		ts.counters.Failed.Add(1)
		return errorResponse(req.ID, tenant, CodePlan, err)
	}
	if spec.Shape != nil {
		it = spec.Shape(it)
	}
	engine.EnableAnalyze(it)
	rows, err := engine.Collect(it)
	elapsed := time.Since(start)
	ts.latency.Record(elapsed)
	if err != nil {
		ts.counters.Failed.Add(1)
		return errorResponse(req.ID, tenant, CodeExec, err)
	}
	ts.counters.Completed.Add(1)
	plan := engine.ExplainAnalyze(it)
	plan += fmt.Sprintf("-- executed: %d rows in %s\n", len(rows), elapsed.Round(time.Microsecond))
	return &Response{ID: req.ID, Type: "explain", Tenant: tenant, Plan: plan, WallUS: durUS(elapsed)}
}

// statsResponse snapshots the serving metrics for the STATS verb.
func (s *Server) statsResponse(id string, tenant int) *Response {
	if tenant < 0 {
		tenant = 0
	}
	inflight, queued := s.adm.Occupancy()
	snap := &StatsSnapshot{
		Inflight: inflight,
		Queued:   queued,
		Tenants:  make(map[int]TenantSnapshot),
	}
	s.mu.Lock()
	ids := make([]int, 0, len(s.tenants))
	states := make(map[int]*tenantState, len(s.tenants))
	for t, ts := range s.tenants {
		ids = append(ids, t)
		states[t] = ts
	}
	s.mu.Unlock()
	sort.Ints(ids)
	for _, t := range ids {
		ts := states[t]
		adm := ts.counters.Snapshot()
		snap.Tenants[t] = TenantSnapshot{Admission: adm, Latency: ts.latency.Snapshot()}
		snap.Total = snap.Total.Add(adm)
	}
	return &Response{ID: id, Type: "stats", Tenant: tenant, Stats: snap}
}

// ctxCode maps a context error to its wire code.
func ctxCode(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return CodeDeadline
	}
	return CodeCanceled
}
