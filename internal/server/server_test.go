// End-to-end serving tests over real sockets: session binding, typed
// error frames, deadlines and cancellation, STATS, and drain hygiene
// (no leaked goroutines, no orphaned cache pins). Runs under CI's -race
// job.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/objstore"
	"repro/internal/segment"
	"repro/internal/skipper"
	"repro/internal/workload"
)

// servingDataset builds the date-clustered TPC-H dataset the serving
// tests run over, re-encoded to the columnar v2 wire format. Built once
// per process: generation dominates test time and the dataset is
// immutable.
var (
	servingOnce sync.Once
	servingDS   *workload.Dataset
	servingErr  error
)

func servingDataset(t *testing.T) *workload.Dataset {
	t.Helper()
	servingOnce.Do(func() {
		ds := workload.TPCH(0, workload.TPCHConfig{SF: 4, RowsPerObject: 4, Seed: 1, ClusteredDates: true})
		servingDS, servingErr = objstore.ReencodeDataset(ds, segment.FormatV2)
	})
	if servingErr != nil {
		t.Fatal(servingErr)
	}
	return servingDS
}

// servingConfig is the standard test server: skipper engine, pruning,
// per-tenant segment caches, the async pipeline on.
func servingConfig(t *testing.T) Config {
	cfg := NewConfig(servingDataset(t))
	cfg.SegCacheObjects = 8
	cfg.Pipeline = &skipper.PipelineConfig{PrefetchBytes: 2e9, DecodeWorkers: 2, DecodeAhead: 2}
	return cfg
}

// startServer boots a server on an ephemeral port and tears it down
// with the test.
func startServer(t *testing.T, cfg Config) (*Server, net.Addr) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, addr
}

// wireClient is one test session over a real socket.
type wireClient struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialServer(t *testing.T, addr net.Addr) *wireClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &wireClient{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
}

// roundTrip sends one frame and reads one response.
func (c *wireClient) roundTrip(t *testing.T, req Request) *Response {
	t.Helper()
	if err := c.enc.Encode(&req); err != nil {
		t.Fatalf("send: %v", err)
	}
	return c.recv(t)
}

func (c *wireClient) recv(t *testing.T) *Response {
	t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		t.Fatalf("recv: %v", err)
	}
	return &resp
}

// sendRaw writes raw bytes (malformed frames the Encoder would fix up).
func (c *wireClient) sendRaw(t *testing.T, raw string) {
	t.Helper()
	if _, err := c.conn.Write([]byte(raw)); err != nil {
		t.Fatalf("send raw: %v", err)
	}
}

const servingQuery = "SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name LIMIT 8"

// TestServerQueryResult: a query over the wire returns the same rows as
// a direct single-shot engine run, with sane accounting.
func TestServerQueryResult(t *testing.T) {
	s, addr := startServer(t, servingConfig(t))
	c := dialServer(t, addr)
	resp := c.roundTrip(t, Request{ID: "q1", SQL: servingQuery})
	if resp.Type != "result" || resp.ID != "q1" {
		t.Fatalf("unexpected frame: %+v", resp)
	}
	want := directRows(t, s, servingQuery)
	if strings.Join(resp.Rows, "\n") != strings.Join(want, "\n") {
		t.Fatalf("wire rows diverge from direct run:\nwire:   %v\ndirect: %v", resp.Rows, want)
	}
	if resp.RowCount != len(resp.Rows) || resp.RowCount == 0 {
		t.Fatalf("row count %d does not match %d rows", resp.RowCount, len(resp.Rows))
	}
	if resp.VirtualUS <= 0 || resp.Gets <= 0 {
		t.Fatalf("missing accounting: virtual %dus, %d gets", resp.VirtualUS, resp.Gets)
	}
}

// directRows runs the statement through the same engine configuration
// without the serving layer — the oracle for wire comparisons.
func directRows(t *testing.T, s *Server, sqlText string) []string {
	t.Helper()
	spec, err := s.planner.Plan(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	prune := s.cfg.Prune
	client := &skipper.Client{
		Tenant: 0, Mode: s.cfg.Mode, Catalog: s.cfg.Dataset.Catalog,
		Queries: []skipper.QuerySpec{spec}, CacheObjects: s.cfg.CacheObjects,
		StatsPruning: &prune, Pipeline: s.cfg.Pipeline, KeepResults: true,
	}
	res, err := (&skipper.Cluster{Clients: []*skipper.Client{client}, Store: s.store}).Run()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Clients[0].PerQuery[0].Results
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// TestServerSessionCache: a tenant's segment cache persists across
// queries and connections — the second identical query hits it — and no
// pins survive quiescence.
func TestServerSessionCache(t *testing.T) {
	s, addr := startServer(t, servingConfig(t))
	c1 := dialServer(t, addr)
	tn := 1
	cold := c1.roundTrip(t, Request{Tenant: &tn, SQL: servingQuery})
	if cold.Type != "result" {
		t.Fatalf("cold query failed: %+v", cold)
	}
	// Same tenant, new connection: the cache outlives the session.
	c2 := dialServer(t, addr)
	warm := c2.roundTrip(t, Request{Tenant: &tn, SQL: servingQuery})
	if warm.Type != "result" {
		t.Fatalf("warm query failed: %+v", warm)
	}
	if warm.CacheHits <= cold.CacheHits {
		t.Fatalf("reconnect lost the cache: cold %d hits, warm %d", cold.CacheHits, warm.CacheHits)
	}
	if warm.VirtualUS >= cold.VirtualUS {
		t.Fatalf("warm run not faster in virtual time: cold %dus, warm %dus", cold.VirtualUS, warm.VirtualUS)
	}
	if st := s.tenantState(tn).cache.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("%d bytes still pinned after quiescence", st.PinnedBytes)
	}
}

// TestServerTenantBinding: out-of-range tenants are refused; a bound
// session cannot switch tenants but stays usable after the refusal.
func TestServerTenantBinding(t *testing.T) {
	cfg := servingConfig(t)
	cfg.MaxTenants = 4
	_, addr := startServer(t, cfg)
	c := dialServer(t, addr)
	tooBig := 4
	if resp := c.roundTrip(t, Request{Tenant: &tooBig, Op: OpHello}); resp.Code != CodeTenant {
		t.Fatalf("tenant 4 of [0,4) accepted: %+v", resp)
	}
	one := 1
	if resp := c.roundTrip(t, Request{Tenant: &one, Op: OpHello}); resp.Type != "hello" || resp.Tenant != 1 {
		t.Fatalf("bind failed: %+v", resp)
	}
	two := 2
	resp := c.roundTrip(t, Request{Tenant: &two, SQL: servingQuery})
	if resp.Code != CodeTenant || !strings.Contains(resp.Error, "bound to tenant 1") {
		t.Fatalf("rebind not refused: %+v", resp)
	}
	// The session survives the refusal, still bound to tenant 1.
	if resp := c.roundTrip(t, Request{Tenant: &one, SQL: servingQuery}); resp.Type != "result" || resp.Tenant != 1 {
		t.Fatalf("session unusable after refused rebind: %+v", resp)
	}
}

// TestServerProtocolErrors: malformed frames answer with typed protocol
// errors and keep the session alive; an oversized line closes it.
func TestServerProtocolErrors(t *testing.T) {
	cfg := servingConfig(t)
	cfg.MaxLineBytes = 1 << 10
	_, addr := startServer(t, cfg)
	c := dialServer(t, addr)
	for _, raw := range []string{
		"not json\n",
		`{"op":"insert","sql":"x"}` + "\n",
		`{"sql":"SELECT 1"}{"sql":"SELECT 2"}` + "\n",
	} {
		c.sendRaw(t, raw)
		if resp := c.recv(t); resp.Code != CodeProtocol {
			t.Fatalf("frame %q answered %+v, want protocol error", raw, resp)
		}
	}
	// A planner error is typed too, and also survivable.
	if resp := c.roundTrip(t, Request{SQL: "SELECT x FROM nosuch"}); resp.Code != CodePlan {
		t.Fatalf("unknown table answered %+v, want plan error", resp)
	}
	if resp := c.roundTrip(t, Request{SQL: servingQuery}); resp.Type != "result" {
		t.Fatalf("session dead after protocol errors: %+v", resp)
	}
	// Oversized line: one error frame, then hangup.
	c.sendRaw(t, strings.Repeat("x", 2<<10)+"\n")
	if resp := c.recv(t); resp.Code != CodeProtocol {
		t.Fatalf("oversized line answered %+v", resp)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := c.dec.Decode(&Response{}); err == nil {
		t.Fatal("connection still open after oversized line")
	}
}

// TestServerExplain: EXPLAIN renders the operator tree plus the
// data-skipping and cache-residency summaries without executing.
func TestServerExplain(t *testing.T) {
	_, addr := startServer(t, servingConfig(t))
	c := dialServer(t, addr)
	resp := c.roundTrip(t, Request{SQL: "EXPLAIN " + servingQuery})
	if resp.Type != "explain" {
		t.Fatalf("unexpected frame: %+v", resp)
	}
	for _, want := range []string{"data skipping", "segcache"} {
		if !strings.Contains(resp.Plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, resp.Plan)
		}
	}
}

// TestServerDeadlineWhileQueued: a query whose deadline expires while it
// waits for a slot answers with a "deadline" frame, leaves no cache
// pins, and the session keeps serving.
func TestServerDeadlineWhileQueued(t *testing.T) {
	cfg := servingConfig(t)
	cfg.Admission = AdmissionConfig{Slots: 1, QueueDepth: 4}
	s, addr := startServer(t, cfg)

	// Occupy the only slot directly so the wire query must queue.
	release, _, err := s.adm.Acquire(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	c := dialServer(t, addr)
	resp := c.roundTrip(t, Request{SQL: servingQuery, DeadlineMS: 50})
	if resp.Code != CodeDeadline {
		t.Fatalf("queued-past-deadline query answered %+v, want deadline error", resp)
	}
	release()
	if resp := c.roundTrip(t, Request{SQL: servingQuery}); resp.Type != "result" {
		t.Fatalf("session dead after deadline: %+v", resp)
	}
	if st := s.tenantState(0).cache.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("%d bytes pinned after deadline + retry", st.PinnedBytes)
	}
	snap := s.tenantState(0).counters.Snapshot()
	if snap.Expired != 1 || snap.Completed != 1 {
		t.Fatalf("counters %+v, want 1 expired / 1 completed", snap)
	}
}

// TestServerOverload: with queueing disabled and the slot busy, queries
// reject immediately with the typed overloaded frame.
func TestServerOverload(t *testing.T) {
	cfg := servingConfig(t)
	cfg.Admission = AdmissionConfig{Slots: 1, QueueDepth: -1}
	s, addr := startServer(t, cfg)
	release, _, err := s.adm.Acquire(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	c := dialServer(t, addr)
	start := time.Now()
	resp := c.roundTrip(t, Request{SQL: servingQuery})
	if resp.Code != CodeOverloaded {
		t.Fatalf("saturated server answered %+v, want overloaded", resp)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("rejection stalled %v; backpressure must be immediate", waited)
	}
	if snap := s.tenantState(0).counters.Snapshot(); snap.Rejected != 1 {
		t.Fatalf("counters %+v, want 1 rejected", snap)
	}
	release()
	if resp := c.roundTrip(t, Request{SQL: servingQuery}); resp.Type != "result" {
		t.Fatalf("session dead after rejection: %+v", resp)
	}
}

// TestServerStats: the STATS verb reports occupancy, per-tenant
// counters and latency percentiles consistent with the queries run.
func TestServerStats(t *testing.T) {
	_, addr := startServer(t, servingConfig(t))
	c0, c1 := dialServer(t, addr), dialServer(t, addr)
	one := 1
	for i := 0; i < 3; i++ {
		if resp := c0.roundTrip(t, Request{SQL: servingQuery}); resp.Type != "result" {
			t.Fatalf("tenant 0 query %d: %+v", i, resp)
		}
	}
	if resp := c1.roundTrip(t, Request{Tenant: &one, SQL: servingQuery}); resp.Type != "result" {
		t.Fatalf("tenant 1 query: %+v", resp)
	}
	resp := c0.roundTrip(t, Request{SQL: "STATS"})
	if resp.Type != "stats" || resp.Stats == nil {
		t.Fatalf("unexpected frame: %+v", resp)
	}
	st := resp.Stats
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("idle server reports occupancy %d/%d", st.Inflight, st.Queued)
	}
	t0, t1 := st.Tenants[0], st.Tenants[1]
	if t0.Admission.Completed != 3 || t1.Admission.Completed != 1 {
		t.Fatalf("completed = %d/%d, want 3/1", t0.Admission.Completed, t1.Admission.Completed)
	}
	if st.Total.Completed != 4 || st.Total.Admitted != 4 {
		t.Fatalf("total %+v, want 4 completed / 4 admitted", st.Total)
	}
	if t0.Latency.Count != 3 || t0.Latency.P50 <= 0 || t0.Latency.P99 < t0.Latency.P50 {
		t.Fatalf("tenant 0 latency snapshot inconsistent: %+v", t0.Latency)
	}
}

// TestServerShutdownDrains: Shutdown waits for in-flight sessions, then
// the whole serving stack — accept loop, handlers, pipeline workers —
// is gone (goroutine compare) with no cache pins left.
func TestServerShutdownDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cfg := servingConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	c := &wireClient{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
	if resp := c.roundTrip(t, Request{SQL: servingQuery}); resp.Type != "result" {
		t.Fatalf("query failed: %+v", resp)
	}
	conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown was not clean: %v", err)
	}
	if st := s.tenantState(0).cache.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("%d bytes pinned after shutdown", st.PinnedBytes)
	}
	requireSettle(t, baseline)
	// A second Start is refused; a second Shutdown is harmless.
	if _, err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("restart after shutdown accepted")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("repeated shutdown: %v", err)
	}
}

// requireSettle waits for the goroutine count to return to the
// baseline (small slack for runtime helpers).
func requireSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d > baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
