// Concurrent-clients soak: N goroutine clients across M tenants hammer
// one server over real sockets. Every result must be byte-identical to
// a single-shot run of the same statement, the per-tenant admit counts
// must match the offered load exactly (fair admission loses nothing
// under saturation), shutdown must drain every goroutine, and the
// tenant caches must end unpinned. Runs under CI's -race job — the
// whole serving stack (sessions, admission, shared store, per-tenant
// caches, pipeline workers) is exercised concurrently.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// soakQueries are deterministic (ORDER BY or global-aggregate)
// statements so byte comparison needs no canonicalization.
var soakQueries = []string{
	"SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name LIMIT 8",
	"SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000.0 ORDER BY o_orderkey",
	"SELECT l_shipmode, COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY l_shipmode ORDER BY l_shipmode",
	"SELECT COUNT(*) AS n, MIN(l_quantity) AS lo, MAX(l_quantity) AS hi FROM lineitem",
}

func TestServerSoakConcurrentClients(t *testing.T) {
	const (
		tenants        = 3
		connsPerTenant = 2
		passes         = 3
	)
	baseline := runtime.NumGoroutine()

	cfg := servingConfig(t)
	// Tight slots against 6 closed-loop clients: queries genuinely queue
	// and tenants genuinely compete, with queue room for every client.
	cfg.Admission = AdmissionConfig{Slots: 2, TenantSlots: 1, QueueDepth: 16}
	// Trace every query: the soak doubles as the race/overhead gate for
	// the span layer — results must still match the untraced oracle.
	cfg.Tracing = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Single-shot oracle per statement, computed before any load.
	oracle := make(map[string]string, len(soakQueries))
	for _, q := range soakQueries {
		oracle[q] = strings.Join(directRows(t, s, q), "\n")
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants*connsPerTenant)
	for tn := 0; tn < tenants; tn++ {
		for cn := 0; cn < connsPerTenant; cn++ {
			wg.Add(1)
			go func(tn, cn int) {
				defer wg.Done()
				errs <- soakClient(addr.String(), tn, cn, passes, oracle)
			}(tn, cn)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Fairness under saturation: closed-loop clients offered identical
	// load, so fair admission must complete every tenant's share exactly
	// — no rejections, no expirations, no tenant starved.
	perTenant := connsPerTenant * passes * len(soakQueries)
	for tn := 0; tn < tenants; tn++ {
		snap := s.tenantState(tn).counters.Snapshot()
		if snap.Admitted != int64(perTenant) || snap.Completed != int64(perTenant) {
			t.Errorf("tenant %d: admitted %d completed %d, want %d each", tn, snap.Admitted, snap.Completed, perTenant)
		}
		if snap.Rejected != 0 || snap.Expired != 0 || snap.Failed != 0 {
			t.Errorf("tenant %d lost queries: %+v", tn, snap)
		}
		if snap.Queued == 0 {
			t.Errorf("tenant %d never queued: the soak did not saturate admission", tn)
		}
		if lat := s.tenantState(tn).latency.Snapshot(); lat.Count != int64(perTenant) {
			t.Errorf("tenant %d recorded %d latencies, want %d", tn, lat.Count, perTenant)
		}
	}

	// Every query was traced; the ring holds the most recent up to its
	// bound and each archived trace closed its root span.
	s.traceMu.Lock()
	retained := len(s.traces)
	for id, e := range s.traces {
		for _, sp := range e.Spans {
			if sp.Cat == "query" && sp.WallEnd == 0 {
				t.Errorf("trace %s: query root never closed", id)
			}
		}
	}
	s.traceMu.Unlock()
	if want := tenants * connsPerTenant * passes * len(soakQueries); retained != min(want, s.cfg.TraceRing) {
		t.Errorf("ring retained %d traces, want %d", retained, min(want, s.cfg.TraceRing))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown was not clean: %v", err)
	}
	for tn := 0; tn < tenants; tn++ {
		if st := s.tenantState(tn).cache.Stats(); st.PinnedBytes != 0 {
			t.Errorf("tenant %d: %d bytes pinned after shutdown", tn, st.PinnedBytes)
		}
	}
	requireSettle(t, baseline)
}

// soakClient is one closed-loop session: bind the tenant, run the
// statement mix for `passes` rounds, verify every frame against the
// oracle. Plain error returns — it runs on a goroutine where t.Fatalf
// is off-limits.
func soakClient(addr string, tn, cn, passes int, oracle map[string]string) error {
	conn, err := dialRaw(addr)
	if err != nil {
		return fmt.Errorf("client t%d/c%d: %w", tn, cn, err)
	}
	defer conn.conn.Close()
	resp, err := conn.roundTripErr(Request{Op: OpHello, Tenant: &tn})
	if err != nil {
		return fmt.Errorf("client t%d/c%d hello: %w", tn, cn, err)
	}
	if resp.Type != "hello" || resp.Tenant != tn {
		return fmt.Errorf("client t%d/c%d hello answered %+v", tn, cn, resp)
	}
	for pass := 0; pass < passes; pass++ {
		// Offset the statement order per client so different statements
		// contend at the same instant.
		for i := range soakQueries {
			q := soakQueries[(i+cn+pass)%len(soakQueries)]
			id := fmt.Sprintf("t%d/c%d/p%d/q%d", tn, cn, pass, i)
			resp, err := conn.roundTripErr(Request{ID: id, SQL: q})
			if err != nil {
				return fmt.Errorf("client %s: %w", id, err)
			}
			if resp.Type != "result" {
				return fmt.Errorf("client %s: frame %+v", id, resp)
			}
			if resp.ID != id || resp.Tenant != tn {
				return fmt.Errorf("client %s: misrouted frame id=%q tenant=%d", id, resp.ID, resp.Tenant)
			}
			if got := strings.Join(resp.Rows, "\n"); got != oracle[q] {
				return fmt.Errorf("client %s: rows diverge from single-shot run\ngot:  %s\nwant: %s", id, got, oracle[q])
			}
		}
	}
	return nil
}

// dialRaw is the non-fataling counterpart of dialServer for soak
// goroutines.
func dialRaw(addr string) (*wireClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &wireClient{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}, nil
}

// roundTripErr sends one frame and reads one response, with errors
// returned instead of failing a testing.T.
func (c *wireClient) roundTripErr(req Request) (*Response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(60 * time.Second)); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("recv: %w", err)
	}
	return &resp, nil
}
