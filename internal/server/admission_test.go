package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable time source of the admission tests: no
// test below ever sleeps to make a deadline pass.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// acquireResult is one Acquire outcome collected from a goroutine.
type acquireResult struct {
	tenant  int
	release func()
	wait    time.Duration
	err     error
}

// acquireAsync starts an Acquire in a goroutine and returns the channel
// its outcome lands on.
func acquireAsync(a *Admission, ctx context.Context, tenant int) <-chan acquireResult {
	ch := make(chan acquireResult, 1)
	go func() {
		release, wait, err := a.Acquire(ctx, tenant)
		ch <- acquireResult{tenant: tenant, release: release, wait: wait, err: err}
	}()
	return ch
}

// mustAcquire admits synchronously or fails the test.
func mustAcquire(t *testing.T, a *Admission, tenant int) func() {
	t.Helper()
	release, _, err := a.Acquire(context.Background(), tenant)
	if err != nil {
		t.Fatalf("tenant %d not admitted: %v", tenant, err)
	}
	return release
}

// waitQueued blocks until the controller reports n waiters (the
// goroutines have parked) or times out.
func waitQueued(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, queued := a.Occupancy(); queued == n {
			return
		}
		if time.Now().After(deadline) {
			_, queued := a.Occupancy()
			t.Fatalf("queue never reached %d waiters (at %d)", n, queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// expectResult receives one outcome with a test timeout.
func expectResult(t *testing.T, ch <-chan acquireResult) acquireResult {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not return")
		return acquireResult{}
	}
}

// expectPending asserts no outcome is ready yet.
func expectPending(t *testing.T, ch <-chan acquireResult) {
	t.Helper()
	select {
	case r := <-ch:
		t.Fatalf("Acquire returned early: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestAdmissionImmediate: free slots under quota admit synchronously
// with zero recorded queue wait.
func TestAdmissionImmediate(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 2, Now: newFakeClock().Now})
	r1 := mustAcquire(t, a, 0)
	r2 := mustAcquire(t, a, 1)
	if inflight, queued := a.Occupancy(); inflight != 2 || queued != 0 {
		t.Fatalf("occupancy = %d/%d, want 2/0", inflight, queued)
	}
	r1()
	r2()
	if inflight, _ := a.Occupancy(); inflight != 0 {
		t.Fatalf("slots not returned: %d in flight", inflight)
	}
}

// TestAdmissionOverloadRejects: with all slots busy and the queue at
// depth, the next query is rejected with an error wrapping the typed
// ErrOverloaded — never stalled.
func TestAdmissionOverloadRejects(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 1, QueueDepth: 1, Now: newFakeClock().Now})
	release := mustAcquire(t, a, 0)
	defer release()
	queued := acquireAsync(a, context.Background(), 0)
	waitQueued(t, a, 1)
	_, _, err := a.Acquire(context.Background(), 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	// The rejected query must not have displaced the queued one.
	release()
	r := expectResult(t, queued)
	if r.err != nil {
		t.Fatalf("queued query lost its place: %v", r.err)
	}
	r.release()
}

// TestAdmissionTenantQuota: one tenant cannot occupy more than its
// TenantSlots share while slots remain for others.
func TestAdmissionTenantQuota(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 2, TenantSlots: 1, QueueDepth: 8, Now: newFakeClock().Now})
	r0 := mustAcquire(t, a, 0)
	// Tenant 0 is at quota: its second query queues even though a slot
	// is free...
	second := acquireAsync(a, context.Background(), 0)
	waitQueued(t, a, 1)
	expectPending(t, second)
	// ...and tenant 1 takes that slot immediately.
	r1 := mustAcquire(t, a, 1)
	// Only when tenant 0 releases does its queued query run.
	r0()
	r := expectResult(t, second)
	if r.err != nil {
		t.Fatalf("queued query failed: %v", r.err)
	}
	r.release()
	r1()
}

// TestAdmissionFairDispatch: queued queries admit in round-robin order
// across tenants (FIFO within a tenant) as slots free, regardless of
// arrival order.
func TestAdmissionFairDispatch(t *testing.T) {
	fc := newFakeClock()
	a := NewAdmission(AdmissionConfig{Slots: 1, QueueDepth: 8, Now: fc.Now})
	release := mustAcquire(t, a, 0)

	// Enqueue, in arrival order: t1a, t1b, t2a, t0a. Queue them one at
	// a time so the per-tenant FIFO order is deterministic.
	t1a := acquireAsync(a, context.Background(), 1)
	waitQueued(t, a, 1)
	t1b := acquireAsync(a, context.Background(), 1)
	waitQueued(t, a, 2)
	t2a := acquireAsync(a, context.Background(), 2)
	waitQueued(t, a, 3)
	t0a := acquireAsync(a, context.Background(), 0)
	waitQueued(t, a, 4)

	// Fair order from cursor at tenant 0: t1a (first eligible after 0),
	// then t2a (round-robin passes tenant 1's second waiter), then t0a,
	// then t1b.
	want := []<-chan acquireResult{t1a, t2a, t0a, t1b}
	wantTenant := []int{1, 2, 0, 1}
	current := release
	for i, ch := range want {
		current() // free the slot; fair dispatch picks the next waiter
		r := expectResult(t, ch)
		if r.err != nil {
			t.Fatalf("grant %d: %v", i, r.err)
		}
		if r.tenant != wantTenant[i] {
			t.Fatalf("grant %d went to tenant %d, want %d", i, r.tenant, wantTenant[i])
		}
		for _, other := range want[i+1:] {
			expectPending(t, other)
		}
		current = r.release
	}
	current()
}

// TestAdmissionQueueWaitClock: the reported queue wait is measured on
// the injected clock.
func TestAdmissionQueueWaitClock(t *testing.T) {
	fc := newFakeClock()
	a := NewAdmission(AdmissionConfig{Slots: 1, QueueDepth: 4, Now: fc.Now})
	release := mustAcquire(t, a, 0)
	queued := acquireAsync(a, context.Background(), 1)
	waitQueued(t, a, 1)
	fc.Advance(250 * time.Millisecond)
	release()
	r := expectResult(t, queued)
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.release()
	if r.wait != 250*time.Millisecond {
		t.Fatalf("queue wait %v, want 250ms (fake clock)", r.wait)
	}
}

// TestAdmissionCancelWhileQueued: a context canceled while waiting
// removes the waiter — the slot later goes to the next query, and the
// canceled Acquire reports the context error.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	fc := newFakeClock()
	a := NewAdmission(AdmissionConfig{Slots: 1, QueueDepth: 4, Now: fc.Now})
	release := mustAcquire(t, a, 0)
	ctx, cancel := context.WithCancel(context.Background())
	doomed := acquireAsync(a, ctx, 1)
	waitQueued(t, a, 1)
	survivor := acquireAsync(a, context.Background(), 2)
	waitQueued(t, a, 2)
	fc.Advance(10 * time.Millisecond)
	cancel()
	r := expectResult(t, doomed)
	if !errors.Is(r.err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", r.err)
	}
	if r.wait != 10*time.Millisecond {
		t.Fatalf("canceled waiter waited %v on the fake clock, want 10ms", r.wait)
	}
	if _, queued := a.Occupancy(); queued != 1 {
		t.Fatalf("canceled waiter still queued: %d waiters", queued)
	}
	release()
	s := expectResult(t, survivor)
	if s.err != nil || s.tenant != 2 {
		t.Fatalf("slot did not pass to the surviving waiter: %+v", s)
	}
	s.release()
	// All slots must be back: the canceled waiter never held one.
	if inflight, queued := a.Occupancy(); inflight != 0 || queued != 0 {
		t.Fatalf("occupancy after drain = %d/%d, want 0/0", inflight, queued)
	}
}

// TestAdmissionExpiredContext: a context already done never enters the
// controller.
func TestAdmissionExpiredContext(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 1, Now: newFakeClock().Now})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := a.Acquire(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context returned %v", err)
	}
	if inflight, queued := a.Occupancy(); inflight != 0 || queued != 0 {
		t.Fatalf("expired context left state: %d/%d", inflight, queued)
	}
}

// TestAdmissionReleaseIdempotent: double releases (defer + explicit)
// must not free a slot twice.
func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 1, Now: newFakeClock().Now})
	release := mustAcquire(t, a, 0)
	release()
	release()
	r := mustAcquire(t, a, 0)
	defer r()
	if inflight, _ := a.Occupancy(); inflight != 1 {
		t.Fatalf("inflight = %d after double release + acquire, want 1", inflight)
	}
}

// TestAdmissionSaturationFairness drives heavy closed-loop load from
// three tenants through a tight controller and checks the long-run
// admit shares stay balanced — the unit-level counterpart of the soak
// test's fairness bound.
func TestAdmissionSaturationFairness(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 2, TenantSlots: 1, QueueDepth: 64})
	const tenants, perWorker, workers = 3, 60, 2
	counts := make([]int64, tenants)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tn int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					release, _, err := a.Acquire(context.Background(), tn)
					if err != nil {
						t.Errorf("tenant %d: %v", tn, err)
						return
					}
					mu.Lock()
					counts[tn]++
					mu.Unlock()
					release()
				}
			}(tn)
		}
	}
	wg.Wait()
	for tn, n := range counts {
		if n != perWorker*workers {
			t.Fatalf("tenant %d admitted %d times, want %d", tn, n, perWorker*workers)
		}
	}
}
