package server

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// This file is the debug/observability sidecar: a plain HTTP listener
// next to the query port serving the Prometheus exposition of the
// server's metric registry and the standard pprof profile endpoints.
// It is a separate listener on purpose — scrapes and profiles must
// stay reachable while the query port is saturated, and the query
// protocol itself stays single-transport (newline-delimited JSON).

// DebugHandler returns the sidecar's mux:
//
//	/metrics           Prometheus text exposition (version 0.0.4)
//	/debug/pprof/...   the standard runtime profiles
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the sidecar on addr and returns its bound address.
// The listener closes when the server's base context is canceled
// (Shutdown); serving errors after that are expected and discarded.
func (s *Server) ServeDebug(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.DebugHandler()}
	go func() {
		<-s.base.Done()
		srv.Close()
	}()
	go srv.Serve(ln)
	return ln.Addr(), nil
}
