// Observability surface tests: per-request span capture and the TRACE
// verb, the trace ring bound, EXPLAIN ANALYZE over the wire, the
// Prometheus exposition and pprof sidecar, and the slow-query log.
package server

import (
	"bytes"
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

const obsQuery = "SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name LIMIT 5"

func TestTracedQueryAndTraceVerb(t *testing.T) {
	_, addr := startServer(t, servingConfig(t))
	c := dialServer(t, addr)

	// Untraced queries carry no trace id and archive nothing.
	resp := c.roundTrip(t, Request{SQL: obsQuery})
	if resp.Type != "result" || resp.TraceID != "" {
		t.Fatalf("untraced query answered type=%s trace_id=%q", resp.Type, resp.TraceID)
	}

	// A query opting in gets a trace id, retrievable over the wire.
	resp = c.roundTrip(t, Request{SQL: obsQuery, Trace: true})
	if resp.Type != "result" || resp.TraceID == "" {
		t.Fatalf("traced query answered type=%s trace_id=%q", resp.Type, resp.TraceID)
	}
	tr := c.roundTrip(t, Request{SQL: "TRACE " + resp.TraceID})
	if tr.Type != "trace" || tr.Trace == nil {
		t.Fatalf("TRACE answered %+v", tr)
	}
	if tr.Trace.ID != resp.TraceID || tr.Trace.SQL != obsQuery {
		t.Fatalf("trace identity mismatch: %q %q", tr.Trace.ID, tr.Trace.SQL)
	}
	// The span tree must cover the request's whole life: plan, admission
	// wait, the engine run (query root + execute phase, fetch/decode
	// below them), and the response drain.
	cats := map[string]int{}
	for _, sp := range tr.Trace.Spans {
		cats[sp.Cat]++
	}
	for _, want := range []string{trace.CatPlan, trace.CatAdmission, trace.CatQuery,
		trace.CatExecute, trace.CatDrain} {
		if cats[want] == 0 {
			t.Errorf("trace has no %s span (got %v)", want, cats)
		}
	}
	if cats[trace.CatFetch]+cats[trace.CatDecode]+cats[trace.CatCycle] == 0 {
		t.Errorf("trace has no storage-level spans (got %v)", cats)
	}

	// Unknown ids answer a typed not_found, not a protocol error.
	miss := c.roundTrip(t, Request{Op: OpTrace, TraceID: "t9-999"})
	if miss.Type != "error" || miss.Code != CodeNotFound {
		t.Fatalf("missing trace answered %+v", miss)
	}
}

func TestTraceRingEviction(t *testing.T) {
	cfg := servingConfig(t)
	cfg.Tracing = true // trace unconditionally
	cfg.TraceRing = 2
	_, addr := startServer(t, cfg)
	c := dialServer(t, addr)

	var ids []string
	for i := 0; i < 3; i++ {
		resp := c.roundTrip(t, Request{SQL: obsQuery})
		if resp.Type != "result" || resp.TraceID == "" {
			t.Fatalf("query %d answered type=%s trace_id=%q (Tracing=true should trace every query)",
				i, resp.Type, resp.TraceID)
		}
		ids = append(ids, resp.TraceID)
	}
	if got := c.roundTrip(t, Request{Op: OpTrace, TraceID: ids[0]}); got.Code != CodeNotFound {
		t.Errorf("oldest trace should be evicted, got %+v", got)
	}
	for _, id := range ids[1:] {
		if got := c.roundTrip(t, Request{Op: OpTrace, TraceID: id}); got.Type != "trace" {
			t.Errorf("trace %s should be retained, got %+v", id, got)
		}
	}
}

func TestExplainAnalyzeOverWire(t *testing.T) {
	_, addr := startServer(t, servingConfig(t))
	c := dialServer(t, addr)
	resp := c.roundTrip(t, Request{SQL: "EXPLAIN ANALYZE " + obsQuery})
	if resp.Type != "explain" {
		t.Fatalf("EXPLAIN ANALYZE answered %+v", resp)
	}
	for _, want := range []string{"rows=", "batches=", "time=", "-- executed: 5 rows"} {
		if !strings.Contains(resp.Plan, want) {
			t.Errorf("analyzed plan missing %q:\n%s", want, resp.Plan)
		}
	}
	if resp.WallUS <= 0 {
		t.Errorf("analyzed plan reported no wall time")
	}
	// Plain EXPLAIN stays unexecuted: no measurements in the tree.
	plain := c.roundTrip(t, Request{SQL: "EXPLAIN " + obsQuery})
	if plain.Type != "explain" || strings.Contains(plain.Plan, "rows=") {
		t.Fatalf("plain EXPLAIN answered %+v", plain)
	}
}

func TestMetricsExpositionAndPprof(t *testing.T) {
	s, addr := startServer(t, servingConfig(t))
	c := dialServer(t, addr)
	tn := 1
	if resp := c.roundTrip(t, Request{Op: OpHello, Tenant: &tn}); resp.Type != "hello" {
		t.Fatalf("hello answered %+v", resp)
	}
	if resp := c.roundTrip(t, Request{SQL: obsQuery}); resp.Type != "result" {
		t.Fatalf("query answered %+v", resp)
	}

	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	get := func(path string) (string, string) {
		r, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), r.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("exposition content type %q", ctype)
	}
	// The required families, with the tenant-1 series live and non-zero.
	for _, re := range []string{
		`(?m)^# TYPE skipper_queries_total counter$`,
		`(?m)^skipper_queries_total\{outcome="completed",tenant="1"\} 1$`,
		`(?m)^skipper_queries_total\{outcome="admitted",tenant="1"\} 1$`,
		`(?m)^# TYPE skipper_query_latency_seconds summary$`,
		`(?m)^skipper_query_latency_seconds\{tenant="1",quantile="0\.999"\} [0-9.e+-]+$`,
		`(?m)^skipper_query_latency_seconds_count\{tenant="1"\} 1$`,
		`(?m)^# TYPE skipper_inflight_queries gauge$`,
		`(?m)^# TYPE skipper_admission_queued_queries gauge$`,
		`(?m)^# TYPE skipper_slow_queries_total counter$`,
		`(?m)^# TYPE skipper_queue_wait_seconds_total counter$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("exposition missing %s\n%s", re, body)
		}
	}

	// The profile endpoints answer on the same mux.
	if body, _ := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof goroutine profile looks wrong:\n%.200s", body)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	cfg := servingConfig(t)
	cfg.Tracing = true
	cfg.SlowQuery = time.Nanosecond // everything is slow
	cfg.SlowQueryLog = &buf
	s, addr := startServer(t, cfg)
	c := dialServer(t, addr)
	if resp := c.roundTrip(t, Request{SQL: obsQuery}); resp.Type != "result" {
		t.Fatalf("query answered %+v", resp)
	}
	line := buf.String()
	for _, want := range []string{"slow-query tenant=0", "wall=", "queue=", "outcome=ok", "trace=t0-", "sql="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q: %q", want, line)
		}
	}
	if got := s.slow.Value(); got != 1 {
		t.Errorf("slow counter = %d, want 1", got)
	}

	// Below the threshold nothing is logged.
	buf.Reset()
	cfg2 := servingConfig(t)
	cfg2.SlowQuery = time.Hour
	cfg2.SlowQueryLog = &buf
	s2, addr2 := startServer(t, cfg2)
	c2 := dialServer(t, addr2)
	if resp := c2.roundTrip(t, Request{SQL: obsQuery}); resp.Type != "result" {
		t.Fatalf("query answered %+v", resp)
	}
	if buf.Len() != 0 || s2.slow.Value() != 0 {
		t.Errorf("hour threshold logged %q (count %d)", buf.String(), s2.slow.Value())
	}
}

// TestTraceSink verifies the completion hook skipperd's -trace-dir
// rides on: one call per traced query, with the full span tree.
func TestTraceSink(t *testing.T) {
	sunk := make(chan *trace.Export, 4)
	cfg := servingConfig(t)
	cfg.Tracing = true
	cfg.TraceSink = func(e *trace.Export) { sunk <- e }
	_, addr := startServer(t, cfg)
	c := dialServer(t, addr)
	resp := c.roundTrip(t, Request{SQL: obsQuery})
	if resp.Type != "result" {
		t.Fatalf("query answered %+v", resp)
	}
	select {
	case e := <-sunk:
		if e.ID != resp.TraceID || len(e.Spans) == 0 {
			t.Fatalf("sink got id=%q with %d spans, want %q", e.ID, len(e.Spans), resp.TraceID)
		}
	default:
		t.Fatal("trace sink was not called")
	}
}
