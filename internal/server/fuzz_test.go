package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzServerProtocol throws arbitrary byte streams at the framing +
// parsing layer — malformed JSON, oversized lines, interleaved frames,
// mid-statement disconnects — and checks it never panics, classifies
// every rejection under ErrProtocol, and normalizes every accepted
// request to the invariants dispatch relies on. Mirrors the corpus
// style of internal/segment's decoder fuzzing; CI runs it for a 30s
// smoke on every push.
func FuzzServerProtocol(f *testing.F) {
	// Well-formed frames.
	f.Add([]byte("{\"sql\":\"SELECT * FROM lineitem\"}\n"))
	f.Add([]byte("{\"id\":\"q1\",\"op\":\"query\",\"tenant\":2,\"sql\":\"SELECT 1\",\"deadline_ms\":250}\n"))
	f.Add([]byte("{\"sql\":\"EXPLAIN SELECT l_orderkey FROM lineitem\"}\n"))
	f.Add([]byte("{\"op\":\"stats\"}\n{\"op\":\"hello\",\"tenant\":1}\n"))
	// Malformed JSON and wrong shapes.
	f.Add([]byte("SELECT 1\n"))
	f.Add([]byte("{\"sql\":\"SELECT 1\"\n"))
	f.Add([]byte("[1,2,3]\n"))
	f.Add([]byte("{\"tenant\":\"zero\",\"sql\":\"x\"}\n"))
	f.Add([]byte("{\"tenant\":-9,\"sql\":\"x\"}\n{\"deadline_ms\":-1,\"sql\":\"x\"}\n"))
	// Interleaved frames on one line; split frame across lines.
	f.Add([]byte("{\"sql\":\"SELECT 1\"}{\"sql\":\"SELECT 2\"}\n"))
	f.Add([]byte("{\"sql\":\"SEL\nECT 1\"}\n"))
	// Oversized line, blank lines, mid-statement disconnect.
	f.Add([]byte(strings.Repeat("x", 512) + "\n"))
	f.Add([]byte("\n\r\n  \n{\"op\":\"stats\"}\n"))
	f.Add([]byte("{\"sql\":\"SELECT "))
	f.Add([]byte{0x00, 0xff, '\n', '{', '}', '\n'})

	const maxLine = 256
	f.Fuzz(func(t *testing.T, stream []byte) {
		// Tiny bufio buffer so multi-chunk accumulation is exercised on
		// nearly every input.
		br := bufio.NewReaderSize(bytes.NewReader(stream), 16)
		for frames := 0; frames < 64; frames++ {
			line, err := readFrame(br, maxLine)
			if err != nil {
				if err == io.EOF {
					return
				}
				if !errors.Is(err, ErrProtocol) {
					t.Fatalf("readFrame error %v is neither EOF nor ErrProtocol", err)
				}
				// Framing is lost (oversized line): the server hangs up here.
				return
			}
			if len(line) > maxLine {
				t.Fatalf("readFrame returned %d bytes, limit %d", len(line), maxLine)
			}
			if len(bytes.TrimSpace(line)) != len(line) {
				t.Fatalf("readFrame returned unstripped frame %q", line)
			}
			req, err := ParseRequest(line)
			if err != nil {
				if !errors.Is(err, ErrProtocol) {
					t.Fatalf("ParseRequest(%q) error %v does not wrap ErrProtocol", line, err)
				}
				continue // session stays alive after a parse error
			}
			// Normalization invariants dispatch depends on.
			switch req.Op {
			case OpQuery, OpExplain:
				if strings.TrimSpace(req.SQL) == "" {
					t.Fatalf("accepted %s frame with empty sql: %q", req.Op, line)
				}
			case OpStats, OpHello:
			default:
				t.Fatalf("accepted unknown op %q from %q", req.Op, line)
			}
			if req.Tenant != nil && *req.Tenant < 0 {
				t.Fatalf("accepted negative tenant from %q", line)
			}
			if req.DeadlineMS < 0 {
				t.Fatalf("accepted negative deadline from %q", line)
			}
		}
	})
}
