// Package server is the long-lived SQL serving front end: a TCP server
// speaking a newline-delimited JSON protocol over the execution core the
// earlier layers built. One connection is one session (tenant binding,
// a persistent segment cache, pipeline knobs); every query passes
// through an admission controller — bounded in-flight slots, per-tenant
// quotas with fair queueing, queue-depth backpressure and per-query
// deadlines — before it reaches a skipper.Cluster run. go-mysql-server's
// separation of wire protocol / session / execution is the reference
// shape; the protocol here is deliberately minimal so the serving
// mechanics, not SQL framing, carry the weight.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sql"
	"repro/internal/trace"
)

// DefaultMaxLineBytes bounds one request frame. A line longer than the
// limit is a protocol error and closes the connection (there is no way
// to resynchronize mid-line without trusting the peer's framing).
const DefaultMaxLineBytes = 1 << 20

// ErrProtocol is the root of every malformed-frame error: unparseable
// JSON, unknown verbs, missing fields, oversized or interleaved frames.
// The server answers with a typed "protocol" error frame and — for
// framing-level violations — closes the connection.
var ErrProtocol = errors.New("protocol error")

// ErrLineTooLong marks a request frame exceeding the line limit. Wraps
// ErrProtocol.
var ErrLineTooLong = fmt.Errorf("%w: request line exceeds limit", ErrProtocol)

// Request verbs. A frame without an explicit "op" derives one from its
// SQL text: the STATS admin verb, an EXPLAIN prefix, or a plain query.
const (
	OpQuery   = "query"
	OpExplain = "explain"
	OpStats   = "stats"
	OpHello   = "hello"
	OpTrace   = "trace"
)

// Request is one client frame.
type Request struct {
	// ID is an opaque client token echoed on the matching response.
	ID string `json:"id,omitempty"`
	// Op selects the verb; empty derives it from SQL (STATS / EXPLAIN
	// prefix / query).
	Op string `json:"op,omitempty"`
	// Tenant binds the session on first use; later frames may repeat the
	// same tenant but not switch. Nil inherits the session's binding
	// (tenant 0 if never set).
	Tenant *int `json:"tenant,omitempty"`
	// SQL is the statement for query/explain verbs.
	SQL string `json:"sql,omitempty"`
	// DeadlineMS bounds this query's total time in the server — queue
	// wait plus execution — in milliseconds of real time. 0 uses the
	// server default; negative is a protocol error.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace requests span capture for this query: the response carries a
	// trace_id whose full span tree the TRACE verb retrieves. The server
	// may also trace unconditionally (Config.Tracing).
	Trace bool `json:"trace,omitempty"`
	// TraceID names the trace to retrieve (op "trace"; the bare form
	// "TRACE <id>" in the SQL text sets it too).
	TraceID string `json:"trace_id,omitempty"`
	// Analyze upgrades an explain frame to EXPLAIN ANALYZE: execute the
	// plan and annotate each operator with measured rows/batches/bytes/
	// time. Set implicitly by an "EXPLAIN ANALYZE ..." SQL prefix.
	Analyze bool `json:"analyze,omitempty"`
}

// Response is one server frame. Type is "result", "explain", "stats",
// "hello" or "error"; the other fields are populated per type.
type Response struct {
	ID     string `json:"id,omitempty"`
	Type   string `json:"type"`
	Tenant int    `json:"tenant"`

	// Result frames: rows rendered exactly as the single-shot tools
	// print them (tuple.Row.String), so byte-identical comparison against
	// a skipperql run is a line diff.
	Rows     []string `json:"rows,omitempty"`
	RowCount int      `json:"row_count"`
	// VirtualUS is the simulated storage-hardware time of the run;
	// WallUS and QueueUS are real service and queue-wait time.
	VirtualUS int64 `json:"virtual_us,omitempty"`
	WallUS    int64 `json:"wall_us,omitempty"`
	QueueUS   int64 `json:"queue_us,omitempty"`
	Gets      int   `json:"gets,omitempty"`
	CacheHits int   `json:"cache_hits,omitempty"`
	Pruned    int   `json:"pruned,omitempty"`
	// Retries counts GET re-requests the proxy issued after retryable
	// faults (transient failures, crash windows, corrupt deliveries);
	// zero — and absent from the frame — on a clean device.
	Retries int `json:"retries,omitempty"`
	// TraceID names the span capture of this query (traced queries only;
	// retrieve with TRACE <id>). Error frames of traced queries carry it
	// too — a trace of a failed query is exactly what one wants to read.
	TraceID string `json:"trace_id,omitempty"`

	// Explain frames.
	Plan string `json:"plan,omitempty"`

	// Error frames: Code is the machine-readable class ("protocol",
	// "plan", "tenant", "overloaded", "deadline", "canceled", "exec").
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`

	// Stats frames.
	Stats *StatsSnapshot `json:"stats,omitempty"`

	// Trace frames: the retrieved span tree.
	Trace *trace.Export `json:"trace,omitempty"`
}

// Error frame codes.
const (
	CodeProtocol   = "protocol"
	CodePlan       = "plan"
	CodeTenant     = "tenant"
	CodeOverloaded = "overloaded"
	CodeDeadline   = "deadline"
	CodeCanceled   = "canceled"
	CodeExec       = "exec"
	CodeNotFound   = "not_found"
)

// StatsSnapshot is the STATS verb's payload: the admission controller's
// live occupancy plus per-tenant counters and latency percentiles.
type StatsSnapshot struct {
	Inflight int                       `json:"inflight"`
	Queued   int                       `json:"queued"`
	Tenants  map[int]TenantSnapshot    `json:"tenants"`
	Total    metrics.AdmissionSnapshot `json:"total"`
}

// TenantSnapshot is one tenant's serving statistics.
type TenantSnapshot struct {
	Admission metrics.AdmissionSnapshot `json:"admission"`
	Latency   metrics.LatencySnapshot   `json:"latency"`
}

// ParseRequest parses and normalizes one frame. Every failure wraps
// ErrProtocol. On success the request is normalized: Op is one of the
// exported verbs, query/explain frames carry non-empty SQL (with any
// EXPLAIN prefix stripped), Tenant (if present) is non-negative and
// DeadlineMS non-negative.
func ParseRequest(line []byte) (*Request, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	// A second JSON value on the same line is an interleaved frame: the
	// peer lost framing; reject rather than guess.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after frame", ErrProtocol)
	}
	if req.Tenant != nil && *req.Tenant < 0 {
		return nil, fmt.Errorf("%w: negative tenant %d", ErrProtocol, *req.Tenant)
	}
	if req.DeadlineMS < 0 {
		return nil, fmt.Errorf("%w: negative deadline_ms %d", ErrProtocol, req.DeadlineMS)
	}
	if req.Op == "" {
		req.Op = deriveOp(req.SQL)
	}
	switch req.Op {
	case OpQuery, OpExplain:
		if req.Op == OpExplain {
			// Accept both {"op":"explain","sql":"SELECT..."} and a bare
			// EXPLAIN [ANALYZE] prefix; normalize to the statement alone.
			if rest, analyze, ok := sql.StripExplain(req.SQL); ok {
				req.SQL = rest
				req.Analyze = req.Analyze || analyze
			}
		}
		req.SQL = strings.TrimSpace(req.SQL)
		if req.SQL == "" {
			return nil, fmt.Errorf("%w: %s frame without sql", ErrProtocol, req.Op)
		}
	case OpTrace:
		// Accept both {"op":"trace","trace_id":"..."} and the bare form
		// "TRACE <id>" in the SQL text.
		if req.TraceID == "" {
			if id, ok := stripTrace(req.SQL); ok {
				req.TraceID = id
			}
		}
		if req.TraceID == "" {
			return nil, fmt.Errorf("%w: trace frame without trace_id", ErrProtocol)
		}
	case OpStats, OpHello:
		// No SQL required.
	default:
		return nil, fmt.Errorf("%w: unknown op %q", ErrProtocol, req.Op)
	}
	return &req, nil
}

// deriveOp classifies a frame without an explicit op by its SQL text.
func deriveOp(sqlText string) string {
	trimmed := strings.TrimSpace(sqlText)
	if strings.EqualFold(trimmed, "STATS") {
		return OpStats
	}
	if _, ok := stripTrace(trimmed); ok {
		return OpTrace
	}
	if _, _, ok := sql.StripExplain(trimmed); ok {
		return OpExplain
	}
	return OpQuery
}

// stripTrace recognizes the "TRACE <id>" admin verb and returns the
// trace id. A single bare token follows the keyword; anything more is
// not a trace frame (it falls through to the query path and fails
// planning with a clear error).
func stripTrace(stmtText string) (string, bool) {
	trimmed := strings.TrimSpace(stmtText)
	if len(trimmed) < 6 || !strings.EqualFold(trimmed[:5], "TRACE") {
		return "", false
	}
	switch trimmed[5] {
	case ' ', '\t', '\n', '\r':
	default:
		return "", false
	}
	id := strings.TrimSpace(trimmed[6:])
	if id == "" || strings.ContainsAny(id, " \t\n\r") {
		return "", false
	}
	return id, true
}

// readFrame returns the next non-empty line, stripped of surrounding
// whitespace. A line longer than max returns ErrLineTooLong (the
// stream cannot be resynchronized). A trailing partial line at EOF — a
// mid-statement disconnect — is dropped, not processed: only frames the
// peer finished with a newline are ever acted on.
func readFrame(br *bufio.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxLineBytes
	}
	for {
		var line []byte
		for {
			chunk, err := br.ReadSlice('\n')
			// Cap accumulation before appending: a peer streaming an
			// endless line must not grow memory with it. max counts the
			// frame body; +1 admits the terminating newline.
			if len(line)+len(chunk) > max+1 {
				return nil, ErrLineTooLong
			}
			line = append(line, chunk...)
			if err == nil {
				break
			}
			if err == bufio.ErrBufferFull {
				continue
			}
			if err == io.EOF {
				return nil, io.EOF // drop any unterminated tail
			}
			return nil, err
		}
		line = bytes.TrimSpace(line)
		if len(line) > 0 {
			return line, nil
		}
	}
}

// errorResponse builds a typed error frame.
func errorResponse(id string, tenant int, code string, err error) *Response {
	return &Response{ID: id, Type: "error", Tenant: tenant, Code: code, Error: err.Error()}
}

// durUS renders a duration in whole microseconds for the wire.
func durUS(d time.Duration) int64 { return d.Microseconds() }
