package segcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/segment"
)

func oid(i int) segment.ObjectID {
	return segment.ObjectID{Tenant: 0, Table: "t", Index: i}
}

func seg(i int, bytes int64) *segment.Segment {
	return &segment.Segment{ID: oid(i), NominalBytes: bytes}
}

func TestHitMissAndLRUOrder(t *testing.T) {
	c := New(3e9)
	for i := 0; i < 3; i++ {
		if !c.Put(oid(i), seg(i, 1e9)) {
			t.Fatalf("put %d rejected", i)
		}
	}
	if _, ok := c.Get(oid(0)); !ok {
		t.Fatal("expected hit on 0")
	}
	// 1 is now the LRU entry; inserting 3 must evict it, not 0.
	c.Put(oid(3), seg(3, 1e9))
	if _, ok := c.Get(oid(1)); ok {
		t.Fatal("1 should have been evicted")
	}
	if _, ok := c.Get(oid(0)); !ok {
		t.Fatal("0 should have survived (recently used)")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evicted != 1 || st.Inserted != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesCached != 3e9 || st.Entries != 3 {
		t.Fatalf("contents = %+v", st)
	}
}

func TestPutOversizedRejected(t *testing.T) {
	c := New(1e9)
	if c.Put(oid(0), seg(0, 2e9)) {
		t.Fatal("oversized put admitted")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRejectionDoesNotFlush(t *testing.T) {
	c := New(3e9)
	c.Put(oid(0), seg(0, 1e9))
	c.Put(oid(1), seg(1, 1e9))
	if c.Put(oid(2), seg(2, 4e9)) {
		t.Fatal("over-budget put admitted")
	}
	// The hopeless insert must not have evicted anything on its way out.
	if st := c.Stats(); st.Entries != 2 || st.Evicted != 0 {
		t.Fatalf("stats after rejected put = %+v", st)
	}
}

func TestPinBlocksEvictionAndAdmission(t *testing.T) {
	c := New(2e9)
	c.Put(oid(0), seg(0, 1e9))
	c.Put(oid(1), seg(1, 1e9))
	if !c.Pin(oid(0)) || !c.Pin(oid(1)) {
		t.Fatal("pin of resident entries failed")
	}
	// Fully pinned cache: admission must be rejected, nothing evicted.
	if c.Put(oid(2), seg(2, 1e9)) {
		t.Fatal("admission into fully pinned cache")
	}
	if st := c.Stats(); st.Entries != 2 || st.Evicted != 0 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.Unpin(oid(0))
	// With one pin released the LRU unpinned entry (0) is evictable.
	if !c.Put(oid(2), seg(2, 1e9)) {
		t.Fatal("admission after unpin failed")
	}
	if _, ok := c.Get(oid(0)); ok {
		t.Fatal("unpinned LRU entry should have been evicted")
	}
	if _, ok := c.Get(oid(1)); !ok {
		t.Fatal("pinned entry evicted")
	}
}

func TestPinNonResident(t *testing.T) {
	c := New(1e9)
	if c.Pin(oid(9)) {
		t.Fatal("pin of non-resident object reported success")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned object did not panic")
		}
	}()
	c.Unpin(oid(9))
}

func TestRePutRefreshesRecency(t *testing.T) {
	c := New(2e9)
	c.Put(oid(0), seg(0, 1e9))
	c.Put(oid(1), seg(1, 1e9))
	c.Put(oid(0), seg(0, 1e9)) // touch, not duplicate
	c.Put(oid(2), seg(2, 1e9)) // must evict 1, the LRU entry
	if _, ok := c.Get(oid(1)); ok {
		t.Fatal("1 should have been evicted")
	}
	if st := c.Stats(); st.Inserted != 3 {
		t.Fatalf("re-put counted as insert: %+v", st)
	}
}

func TestZeroSizedSegmentsOccupySpace(t *testing.T) {
	c := New(2)
	c.Put(oid(0), seg(0, 0))
	c.Put(oid(1), seg(1, 0))
	c.Put(oid(2), seg(2, 0))
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("zero-sized entries not clamped: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(8e9)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := oid((w*31 + i) % 16)
				if _, ok := c.Get(id); !ok {
					c.Put(id, &segment.Segment{ID: id, NominalBytes: 1e9})
				}
				if c.Pin(id) {
					c.Unpin(id)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.BytesCached > 8e9 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	if st.Entries > 8 {
		t.Fatalf("too many entries for budget: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	// Smoke: stats are plain data, printable with %+v in reports.
	c := New(1e9)
	c.Put(oid(0), seg(0, 1e9))
	if s := fmt.Sprintf("%+v", c.Stats()); s == "" {
		t.Fatal("empty stats rendering")
	}
}
