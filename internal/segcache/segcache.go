// Package segcache implements a byte-budgeted, concurrency-safe shared
// segment cache: a reuse layer between the database clients and the Cold
// Storage Device. The paper's device policies cannot merge requests
// across queries (§4.4) and MJoin's reissue regime re-fetches evicted
// objects from cold storage at full cost (§5.2.4); a cache at the client
// proxy turns both into local hits. One Cache instance can be private to
// a tenant or shared by every client of a skipper.Cluster — segments are
// immutable once written, so sharing is safe by construction.
//
// Eviction is LRU over unpinned entries. Pinned entries are never
// evicted and admission is pin-aware: a new segment is admitted only if
// the budget can be met by evicting unpinned entries alone; otherwise
// the insert is rejected (and counted) rather than corrupting the
// budget. The in-tree proxies never pin — Pin/Unpin is the embedder
// hook for keeping hot segments resident against LRU pressure. Entries
// are sized by their nominal (paper-scale, 1 GB) object size, so
// budgets are expressible in objects/GB exactly like the MJoin cache
// capacity.
package segcache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/segment"
)

// Stats counts what the cache did since creation. Snapshot via
// Cache.Stats; all counters are monotone except Entries/BytesCached.
type Stats struct {
	// Hits / Misses count Get outcomes.
	Hits, Misses int64
	// BytesHit sums the nominal sizes of hit segments — bytes that did
	// not travel from the device.
	BytesHit int64
	// Inserted / Evicted / Rejected count Put outcomes: admissions, LRU
	// victims dropped for space, and inserts refused because the budget
	// could not be met by evicting unpinned entries.
	Inserted, Evicted, Rejected int64
	// Invalidated counts entries dropped through Invalidate — the corrupt
	// quarantine path. A pinned entry counts when its deferred removal
	// completes at the last Unpin.
	Invalidated int64
	// BytesEvicted sums the nominal sizes of evicted entries.
	BytesEvicted int64
	// Entries / BytesCached describe the current contents.
	Entries     int
	BytesCached int64
	// PinnedBytes is the portion of BytesCached held by pinned entries;
	// a quiesced cache (no readers) must report 0.
	PinnedBytes int64
	// Budget echoes the configured capacity in bytes.
	Budget int64
}

// entry is one cached segment.
type entry struct {
	id   segment.ObjectID
	seg  *segment.Segment
	size int64
	elem *list.Element
	pins int
	// doomed marks an invalidated entry that pins kept alive: it serves
	// no further Gets and is removed when the last pin drops.
	doomed bool
}

// Cache is the shared segment cache. Create with New; the zero value is
// not usable. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	pinned  int64 // bytes held by entries with pins > 0
	entries map[segment.ObjectID]*entry
	lru     *list.List // front = most recently used
	stats   Stats
}

// New returns a cache with the given byte budget. A non-positive budget
// panics: a disabled cache is expressed by not constructing one.
func New(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		panic(fmt.Sprintf("segcache: non-positive budget %d", budgetBytes))
	}
	return &Cache{
		budget:  budgetBytes,
		entries: make(map[segment.ObjectID]*entry),
		lru:     list.New(),
	}
}

// NewObjects returns a cache budgeted for n nominal 1 GB objects — the
// unit the paper (and the MJoin cache capacity) uses.
func NewObjects(n int) *Cache { return New(int64(n) * 1e9) }

// size returns the budget charge for a segment: its nominal size,
// clamped to at least one byte so zero-sized test segments still occupy
// the cache.
func size(seg *segment.Segment) int64 {
	if seg.NominalBytes > 0 {
		return seg.NominalBytes
	}
	return 1
}

// Get returns the cached segment and marks it most recently used.
func (c *Cache) Get(id segment.ObjectID) (*segment.Segment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || e.doomed {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.stats.BytesHit += e.size
	c.lru.MoveToFront(e.elem)
	return e.seg, true
}

// Contains reports residency without touching recency or hit/miss
// accounting — the EXPLAIN peek.
func (c *Cache) Contains(id segment.ObjectID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	return ok && !e.doomed
}

// Put admits the segment, evicting least-recently-used unpinned entries
// until it fits. Re-putting a resident object only refreshes recency.
// Returns false when admission was rejected (the segment alone exceeds
// the budget, or pinned entries hold too much of it).
func (c *Cache) Put(id segment.ObjectID, seg *segment.Segment) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		if e.doomed {
			// A doomed entry occupies the slot until its pins drop; the
			// fresh payload is simply not cached this round.
			c.stats.Rejected++
			return false
		}
		c.lru.MoveToFront(e.elem)
		return true
	}
	sz := size(seg)
	if !c.makeRoom(sz) {
		c.stats.Rejected++
		return false
	}
	e := &entry{id: id, seg: seg, size: sz}
	e.elem = c.lru.PushFront(e)
	c.entries[id] = e
	c.used += sz
	c.stats.Inserted++
	return true
}

// makeRoom evicts unpinned LRU entries until sz fits in the budget,
// reporting whether it succeeded. On failure nothing is evicted: the
// admission is all-or-nothing, so a hopeless insert does not flush the
// cache on its way out.
func (c *Cache) makeRoom(sz int64) bool {
	if sz > c.budget {
		return false
	}
	// Evicting every unpinned entry frees used-pinned bytes; if pinned
	// residents plus the newcomer still exceed the budget, reject.
	if c.pinned+sz > c.budget {
		return false
	}
	for c.used+sz > c.budget {
		el := c.lru.Back()
		for el != nil && el.Value.(*entry).pins > 0 {
			el = el.Prev()
		}
		if el == nil {
			return false // unreachable given the precheck
		}
		victim := el.Value.(*entry)
		c.removeLocked(victim)
		c.stats.Evicted++
		c.stats.BytesEvicted += victim.size
	}
	return true
}

// removeLocked drops an entry. Caller holds c.mu and accounts the drop
// (eviction vs invalidation) itself.
func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.id)
	c.used -= e.size
}

// Pin marks a resident object unevictable until a matching Unpin. Pins
// nest. Pinning a non-resident object is a no-op returning false, so
// callers need not re-check residency first.
func (c *Cache) Pin(id segment.ObjectID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || e.doomed {
		return false
	}
	if e.pins == 0 {
		c.pinned += e.size
	}
	e.pins++
	return true
}

// Unpin releases one pin. Unpinning a non-resident or unpinned object
// panics: it indicates broken bracketing at the caller.
func (c *Cache) Unpin(id segment.ObjectID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || e.pins == 0 {
		panic(fmt.Sprintf("segcache: Unpin of unpinned object %v", id))
	}
	e.pins--
	if e.pins == 0 {
		c.pinned -= e.size
		if e.doomed {
			// Complete the invalidation the pins deferred.
			c.removeLocked(e)
			c.stats.Invalidated++
		}
	}
}

// Invalidate drops the cached entry for id — the quarantine hook for
// segments that failed their checksum. An unpinned entry is removed
// immediately; a pinned entry is doomed instead: it stops serving Gets
// and Contains at once (readers holding the segment pointer are
// unaffected — segments are immutable from the cache's point of view)
// and its budget share is reclaimed when the last pin drops. Returns
// whether an entry was resident.
func (c *Cache) Invalidate(id segment.ObjectID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	if e.pins > 0 {
		e.doomed = true
		return true
	}
	c.removeLocked(e)
	c.stats.Invalidated++
	return true
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.BytesCached = c.used
	st.PinnedBytes = c.pinned
	st.Budget = c.budget
	return st
}
