package segcache

import "testing"

// Invalidating an unpinned entry removes it immediately and reclaims its
// budget share.
func TestInvalidateUnpinned(t *testing.T) {
	c := New(3)
	c.Put(oid(1), seg(1, 1))
	c.Put(oid(2), seg(2, 1))
	if !c.Invalidate(oid(1)) {
		t.Fatalf("resident entry not invalidated")
	}
	if _, ok := c.Get(oid(1)); ok {
		t.Fatalf("invalidated entry still served")
	}
	if c.Contains(oid(1)) {
		t.Fatalf("invalidated entry still resident")
	}
	st := c.Stats()
	if st.Invalidated != 1 {
		t.Fatalf("Invalidated = %d, want 1", st.Invalidated)
	}
	if st.BytesCached != 1 || st.Entries != 1 {
		t.Fatalf("budget not reclaimed: %+v", st)
	}
	// The freed space is usable again.
	if !c.Put(oid(3), seg(3, 2)) {
		t.Fatalf("freed space not admitting")
	}
}

// Invalidating a missing entry reports false.
func TestInvalidateMissing(t *testing.T) {
	c := New(2)
	if c.Invalidate(oid(9)) {
		t.Fatalf("missing entry reported invalidated")
	}
	if st := c.Stats(); st.Invalidated != 0 {
		t.Fatalf("Invalidated = %d, want 0", st.Invalidated)
	}
}

// A pinned entry is doomed, not removed: Gets miss at once, the budget
// share stays charged until the last Unpin, then the removal completes.
func TestInvalidatePinnedDefersRemoval(t *testing.T) {
	c := New(2)
	c.Put(oid(1), seg(1, 1))
	if !c.Pin(oid(1)) {
		t.Fatalf("pin failed")
	}
	if !c.Pin(oid(1)) { // pins nest
		t.Fatalf("second pin failed")
	}
	if !c.Invalidate(oid(1)) {
		t.Fatalf("pinned entry not acknowledged")
	}
	if _, ok := c.Get(oid(1)); ok {
		t.Fatalf("doomed entry still served")
	}
	if c.Contains(oid(1)) {
		t.Fatalf("doomed entry reported resident")
	}
	// New pins must not attach to doomed data.
	if c.Pin(oid(1)) {
		t.Fatalf("pinned a doomed entry")
	}
	// The budget share is still charged while pinned.
	if st := c.Stats(); st.BytesCached != 1 || st.PinnedBytes != 1 || st.Invalidated != 0 {
		t.Fatalf("doomed accounting wrong: %+v", st)
	}
	// Re-putting while doomed is a rejection, not a refresh.
	if c.Put(oid(1), seg(1, 1)) {
		t.Fatalf("Put refreshed a doomed entry")
	}
	c.Unpin(oid(1))
	if st := c.Stats(); st.Invalidated != 0 {
		t.Fatalf("removal completed with a pin still held: %+v", st)
	}
	c.Unpin(oid(1))
	st := c.Stats()
	if st.Invalidated != 1 || st.BytesCached != 0 || st.PinnedBytes != 0 || st.Entries != 0 {
		t.Fatalf("deferred removal did not complete: %+v", st)
	}
	// The slot is free again.
	if !c.Put(oid(1), seg(1, 1)) {
		t.Fatalf("slot not reusable after deferred removal")
	}
	if _, ok := c.Get(oid(1)); !ok {
		t.Fatalf("fresh entry not served after re-put")
	}
}

// Invalidate twice: the second call on a doomed entry stays acknowledged
// without double-counting once removal completes.
func TestInvalidateIdempotentOnDoomed(t *testing.T) {
	c := New(2)
	c.Put(oid(1), seg(1, 1))
	c.Pin(oid(1))
	if !c.Invalidate(oid(1)) || !c.Invalidate(oid(1)) {
		t.Fatalf("doomed entry not acknowledged")
	}
	c.Unpin(oid(1))
	if st := c.Stats(); st.Invalidated != 1 {
		t.Fatalf("Invalidated = %d, want 1", st.Invalidated)
	}
}

// Invalidation is not eviction: the byte counters stay distinct.
func TestInvalidateNotCountedAsEviction(t *testing.T) {
	c := New(1)
	c.Put(oid(1), seg(1, 1))
	c.Invalidate(oid(1))
	st := c.Stats()
	if st.Evicted != 0 || st.BytesEvicted != 0 {
		t.Fatalf("invalidation charged to eviction: %+v", st)
	}
}
