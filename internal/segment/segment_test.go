package segment

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

var sch = tuple.NewSchema(
	tuple.Column{Name: "k", Kind: tuple.KindInt64},
	tuple.Column{Name: "v", Kind: tuple.KindString},
)

func rows(n int) []tuple.Row {
	out := make([]tuple.Row, n)
	for i := range out {
		out[i] = tuple.Row{tuple.Int(int64(i)), tuple.Str("row")}
	}
	return out
}

func TestSplitSizes(t *testing.T) {
	segs := Split(3, "tbl", rows(10), 4, 1<<30)
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	if len(segs[0].Rows) != 4 || len(segs[1].Rows) != 4 || len(segs[2].Rows) != 2 {
		t.Fatalf("row counts %d %d %d", len(segs[0].Rows), len(segs[1].Rows), len(segs[2].Rows))
	}
	for i, sg := range segs {
		if sg.ID != (ObjectID{Tenant: 3, Table: "tbl", Index: i}) {
			t.Errorf("segment %d id %v", i, sg.ID)
		}
		if sg.NominalBytes != 1<<30 {
			t.Errorf("segment %d size %d", i, sg.NominalBytes)
		}
	}
}

func TestSplitEmptyRelation(t *testing.T) {
	segs := Split(0, "empty", nil, 100, 1)
	if len(segs) != 1 || len(segs[0].Rows) != 0 {
		t.Fatalf("empty relation: %d segs", len(segs))
	}
}

func TestSplitExactMultiple(t *testing.T) {
	segs := Split(0, "t", rows(8), 4, 1)
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
}

func TestSplitInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rowsPerSegment=0")
		}
	}()
	Split(0, "t", rows(1), 0, 1)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := &Segment{
		ID:           ObjectID{Tenant: 2, Table: "lineitem", Index: 17},
		Rows:         rows(25),
		NominalBytes: 1 << 30,
	}
	data, err := orig.Encode(sch)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(sch, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", orig, back)
	}
}

func TestDecodeTruncated(t *testing.T) {
	orig := &Segment{ID: ObjectID{Table: "t"}, Rows: rows(3), NominalBytes: 9}
	data, err := orig.Encode(sch)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if cut == len(data)-8 {
			// Cutting exactly the checksum trailer leaves a valid legacy
			// blob — the backward-compatibility contract for pre-checksum
			// objects.
			if _, err := Decode(sch, data[:cut]); err != nil {
				t.Fatalf("trailer-less blob rejected: %v", err)
			}
			continue
		}
		if _, err := Decode(sch, data[:cut]); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
	}
}

func TestObjectIDString(t *testing.T) {
	id := ObjectID{Tenant: 4, Table: "orders", Index: 12}
	if got := id.String(); got != "t4/orders/0012" {
		t.Fatalf("id string %q", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, tenant uint8, index uint8, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := make([]tuple.Row, int(n)%40)
		for i := range rs {
			rs[i] = tuple.Row{tuple.Int(rng.Int63n(1e9)), tuple.Str(string(rune('a' + rng.Intn(26))))}
		}
		orig := &Segment{
			ID:           ObjectID{Tenant: int(tenant), Table: "tbl", Index: int(index)},
			Rows:         rs,
			NominalBytes: rng.Int63n(1 << 40),
		}
		data, err := orig.Encode(sch)
		if err != nil {
			return false
		}
		back, err := Decode(sch, data)
		if err != nil {
			return false
		}
		if len(orig.Rows) == 0 {
			// reflect.DeepEqual distinguishes nil from empty slices.
			return back.ID == orig.ID && back.NominalBytes == orig.NominalBytes && len(back.Rows) == 0
		}
		return reflect.DeepEqual(orig, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorruptTyped(t *testing.T) {
	orig := &Segment{ID: ObjectID{Table: "t"}, Rows: rows(3), NominalBytes: 9}
	data, err := orig.Encode(sch)
	if err != nil {
		t.Fatal(err)
	}
	// Every prefix truncation must fail with ErrCorrupt — and never panic.
	// The one exception is stripping exactly the 8-byte checksum trailer,
	// which leaves a valid legacy blob by design.
	for cut := 0; cut < len(data); cut++ {
		if cut == len(data)-8 {
			continue
		}
		_, err := Decode(sch, data[:cut])
		if err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
	// Trailing garbage is corruption too.
	if _, err := Decode(sch, append(append([]byte(nil), data...), 0xAB)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: %v", err)
	}
}

func TestDecodeRejectsAbsurdTableName(t *testing.T) {
	// Headers: tenant 0, index 0, size 0, then a table-name length far
	// beyond MaxTableName followed by too few bytes.
	data := binary.AppendVarint(nil, 0)
	data = binary.AppendVarint(data, 0)
	data = binary.AppendVarint(data, 0)
	data = binary.AppendUvarint(data, uint64(MaxTableName+1))
	data = append(data, make([]byte, MaxTableName+1)...)
	_, err := Decode(sch, data)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized table name accepted: %v", err)
	}
}

func TestEncodeRejectsLongTableName(t *testing.T) {
	g := &Segment{ID: ObjectID{Table: strings.Repeat("x", MaxTableName+1)}}
	if _, err := g.Encode(sch); err == nil {
		t.Fatal("overlong table name encoded")
	}
	g.ID.Table = strings.Repeat("x", MaxTableName)
	data, err := g.Encode(sch)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(sch, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID.Table != g.ID.Table {
		t.Fatal("max-length table name round trip failed")
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	// Random byte soup must yield errors, not panics.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		if sg, err := Decode(sch, buf); err == nil {
			// A decode that succeeds must at least be self-consistent.
			if sg == nil {
				t.Fatal("nil segment without error")
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("input %x: error %v does not wrap ErrCorrupt", buf, err)
		}
	}
}
