package segment

import (
	"errors"
	"reflect"
	"testing"
)

// Every format's encode output must end in a verifying checksum trailer,
// and DecodeLazy must verify it.
func TestChecksumRoundTrip(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		orig := &Segment{ID: ObjectID{Tenant: 1, Table: "t", Index: 2}, Rows: rows(5), NominalBytes: 64}
		data, err := orig.EncodeFormat(sch, f)
		if err != nil {
			t.Fatalf("%v encode: %v", f, err)
		}
		g, err := DecodeLazy(sch, data)
		if err != nil {
			t.Fatalf("%v decode: %v", f, err)
		}
		if !g.Checksummed() {
			t.Fatalf("%v: freshly encoded segment not checksummed", f)
		}
		if err := g.VerifyChecksum(); err != nil {
			t.Fatalf("%v: clean segment failed verification: %v", f, err)
		}
	}
}

// A flipped wire byte must be caught at decode time with ErrCorrupt.
func TestChecksumCatchesWireFlip(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		orig := &Segment{ID: ObjectID{Table: "t"}, Rows: rows(8), NominalBytes: 64}
		data, err := orig.EncodeFormat(sch, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, at := range []int{0, len(data) / 2, len(data) - 9} {
			mut := append([]byte(nil), data...)
			mut[at] ^= 0x01
			if _, err := DecodeLazy(sch, mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v: flip at %d: got %v, want ErrCorrupt", f, at, err)
			}
		}
	}
}

// Blobs encoded before checksums existed (no trailer) must still decode,
// report Checksummed false, and verify trivially.
func TestLegacyBlobStillReadable(t *testing.T) {
	orig := &Segment{ID: ObjectID{Tenant: 3, Table: "legacy", Index: 1}, Rows: rows(4), NominalBytes: 32}
	for _, f := range []Format{FormatV1, FormatV2} {
		data, err := orig.EncodeFormat(sch, f)
		if err != nil {
			t.Fatal(err)
		}
		legacy := data[:len(data)-8] // exactly what pre-checksum encoders wrote
		g, err := Decode(sch, legacy)
		if err != nil {
			t.Fatalf("%v legacy decode: %v", f, err)
		}
		if !reflect.DeepEqual(g.Rows, orig.Rows) {
			t.Fatalf("%v legacy rows diverge", f)
		}
		lz, err := DecodeLazy(sch, legacy)
		if err != nil {
			t.Fatal(err)
		}
		if lz.Checksummed() {
			t.Fatalf("%v: legacy blob claims a checksum", f)
		}
		if err := lz.VerifyChecksum(); err != nil {
			t.Fatalf("%v: legacy blob failed trivial verification: %v", f, err)
		}
	}
}

// CorruptedCopy must fail verification while leaving the original
// segment intact — the fault injector's bit-rot model.
func TestCorruptedCopy(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		orig := &Segment{ID: ObjectID{Table: "t"}, Rows: rows(6), NominalBytes: 64}
		data, err := orig.EncodeFormat(sch, f)
		if err != nil {
			t.Fatal(err)
		}
		g, err := DecodeLazy(sch, data)
		if err != nil {
			t.Fatal(err)
		}
		bad := g.CorruptedCopy()
		if bad == nil {
			t.Fatalf("%v: CorruptedCopy returned nil for a checksummed segment", f)
		}
		if err := bad.VerifyChecksum(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%v: corrupted copy verified: %v", f, err)
		}
		if err := g.VerifyChecksum(); err != nil {
			t.Fatalf("%v: original damaged by CorruptedCopy: %v", f, err)
		}
		if bad.ID != g.ID || bad.NumRows() != g.NumRows() {
			t.Fatalf("%v: corrupted copy changed identity", f)
		}
	}
}

// In-memory segments cannot carry detectable corruption.
func TestCorruptedCopyMemSegment(t *testing.T) {
	g := &Segment{ID: ObjectID{Table: "t"}, Rows: rows(3), NominalBytes: 8}
	if c := g.CorruptedCopy(); c != nil {
		t.Fatalf("mem segment produced a corrupted copy")
	}
	if err := g.VerifyChecksum(); err != nil {
		t.Fatalf("mem segment failed trivial verification: %v", err)
	}
}

// A zero-row segment still round-trips with a checksum and still yields
// a detectable corrupted copy (the flip lands in the header).
func TestChecksumEmptySegment(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		orig := &Segment{ID: ObjectID{Table: "t"}, NominalBytes: 8}
		data, err := orig.EncodeFormat(sch, f)
		if err != nil {
			t.Fatal(err)
		}
		g, err := DecodeLazy(sch, data)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		bad := g.CorruptedCopy()
		if bad == nil {
			t.Fatalf("%v: no corrupted copy for empty segment", f)
		}
		if err := bad.VerifyChecksum(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%v: empty corrupted copy verified: %v", f, err)
		}
	}
}
