package segment

import (
	"errors"
	"testing"

	"repro/internal/tuple"
)

// The fuzz targets assert the decoder's contract on arbitrary input:
// malformed bytes always yield an error wrapping ErrCorrupt — never a
// panic, never an unbounded allocation — and successful decodes are
// schema-shaped. CI runs a short `go test -fuzz` smoke per target; the
// committed corpus is the seed set below plus anything the fuzzer saves.

// fuzzSchema mixes all kinds so both codecs exercise every branch.
var fuzzSchema = tuple.NewSchema(
	tuple.Column{Name: "a", Kind: tuple.KindInt64},
	tuple.Column{Name: "b", Kind: tuple.KindFloat64},
	tuple.Column{Name: "c", Kind: tuple.KindString},
	tuple.Column{Name: "d", Kind: tuple.KindDate},
	tuple.Column{Name: "e", Kind: tuple.KindBool},
)

func fuzzRows(n int) []tuple.Row {
	out := make([]tuple.Row, n)
	for i := range out {
		out[i] = tuple.Row{
			tuple.Int(int64(i * 3)),
			tuple.Float(float64(i) * 0.5),
			tuple.Str(string(rune('a' + i%4))),
			tuple.DateFromDays(9000 + int64(i)),
			tuple.Bool(i%2 == 0),
		}
	}
	return out
}

// seedCorpus returns valid encodings to start the fuzzer near the
// interesting surface.
func seedCorpus(tb testing.TB, format Format) [][]byte {
	var out [][]byte
	for _, n := range []int{0, 1, 5, 40} {
		g := &Segment{ID: ObjectID{Tenant: 1, Table: "fz", Index: n}, Rows: fuzzRows(n), NominalBytes: 1 << 28}
		data, err := g.EncodeFormat(fuzzSchema, format)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

// checkDecode is the shared oracle: Decode (which materializes every
// row, walking every block) must either fail with ErrCorrupt or produce
// a schema-consistent segment.
func checkDecode(t *testing.T, data []byte) {
	sg, err := Decode(fuzzSchema, data)
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("error %v does not wrap ErrCorrupt", err)
		}
		return
	}
	if sg == nil {
		t.Fatal("nil segment without error")
	}
	if sg.NominalBytes < 0 {
		t.Fatalf("accepted negative NominalBytes %d", sg.NominalBytes)
	}
	for i, r := range sg.Rows {
		if err := fuzzSchema.Validate(r); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	// A lazy decode of the same bytes must agree on the projected column.
	lz, err := DecodeLazy(fuzzSchema, data)
	if err != nil {
		t.Fatalf("Decode succeeded but DecodeLazy failed: %v", err)
	}
	cd, err := lz.DecodeColumns(fuzzSchema, []int{2}, nil)
	if err != nil {
		t.Fatalf("Decode succeeded but projected decode failed: %v", err)
	}
	if cd.NumRows != len(sg.Rows) {
		t.Fatalf("projected decode saw %d rows, eager saw %d", cd.NumRows, len(sg.Rows))
	}
	for i, r := range sg.Rows {
		if !tuple.Equal(cd.Cols[2][i], r[2]) {
			t.Fatalf("row %d column 2: projected %v, eager %v", i, cd.Cols[2][i], r[2])
		}
	}
}

// FuzzDecodeV1 fuzzes the row-major format decoder.
func FuzzDecodeV1(f *testing.F) {
	for _, data := range seedCorpus(f, FormatV1) {
		f.Add(data)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) { checkDecode(t, data) })
}

// FuzzDecodeV2 fuzzes the columnar format decoder (directory parsing,
// per-encoding block decoders, projection bookkeeping).
func FuzzDecodeV2(f *testing.F) {
	for _, data := range seedCorpus(f, FormatV2) {
		f.Add(data)
	}
	f.Add(magicV2[:])
	f.Fuzz(func(t *testing.T, data []byte) { checkDecode(t, data) })
}
