package segment

import (
	"fmt"
	"testing"

	"repro/internal/tuple"
)

// Codec microbenchmarks: row-major (v1) vs columnar (v2) encode/decode,
// the projected decode the scan path uses, and the individual block
// encodings. Run with:
//
//	go test -bench 'Encode|Decode' -benchmem ./internal/segment
//
// Representative 1-CPU container numbers are recorded in
// docs/tuning.md's segment-format section.

const benchRows = 2048

func benchSegment(b *testing.B) *Segment {
	b.Helper()
	sg := &Segment{ID: ObjectID{Table: "wide"}, Rows: wideRows(benchRows, 7), NominalBytes: 1e9}
	return sg
}

func BenchmarkEncodeV1(b *testing.B) {
	sg := benchSegment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sg.EncodeFormat(wideSchema, FormatV1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeV2(b *testing.B) {
	sg := benchSegment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sg.EncodeFormat(wideSchema, FormatV2); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEncoded(b *testing.B, f Format) []byte {
	b.Helper()
	data, err := benchSegment(b).EncodeFormat(wideSchema, f)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func BenchmarkDecodeV1Full(b *testing.B) {
	data := benchEncoded(b, FormatV1)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wideSchema, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeV2Full(b *testing.B) {
	data := benchEncoded(b, FormatV2)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wideSchema, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeProjected compares the scan path: decode 2 of the 8
// columns from each format through the lazy interface with buffer reuse.
// This is the per-segment work a projective query performs.
func BenchmarkDecodeProjected(b *testing.B) {
	for _, f := range []Format{FormatV1, FormatV2} {
		b.Run(f.String(), func(b *testing.B) {
			data := benchEncoded(b, f)
			g, err := DecodeLazy(wideSchema, data)
			if err != nil {
				b.Fatal(err)
			}
			proj := []int{0, 4}
			var cd *ColumnData
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cd, err = g.DecodeColumns(wideSchema, proj, cd)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlockEncodings measures each encoding's decode path in
// isolation on a column shaped to select it.
func BenchmarkBlockEncodings(b *testing.B) {
	cases := []struct {
		name string
		kind tuple.Kind
		gen  func(i int) tuple.Value
	}{
		{"delta-sorted-int", tuple.KindInt64, func(i int) tuple.Value { return tuple.Int(int64(1000 + i)) }},
		{"rle-runs-int", tuple.KindInt64, func(i int) tuple.Value { return tuple.Int(int64(i / 64)) }},
		{"raw-float", tuple.KindFloat64, func(i int) tuple.Value { return tuple.Float(float64(i) * 1.5) }},
		{"dict-string", tuple.KindString, func(i int) tuple.Value { return tuple.Str([]string{"AIR", "RAIL", "SHIP"}[i%3]) }},
		{"strraw-string", tuple.KindString, func(i int) tuple.Value { return tuple.Str(fmt.Sprintf("key-%08d", i*2654435761)) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			vals := make([]tuple.Value, benchRows)
			for i := range vals {
				vals[i] = tc.gen(i)
			}
			meta, block, err := encodeColumn(tc.kind, vals)
			if err != nil {
				b.Fatal(err)
			}
			b.Run("enc="+meta.Encoding.String(), func(b *testing.B) {
				var dst []tuple.Value
				b.SetBytes(int64(len(block)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dst, err = decodeColumn(tc.kind, meta.Encoding, block, benchRows, dst)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
