package segment

// This file implements the column-block codec behind the v2 segment
// format: each column of a segment is encoded independently with a
// lightweight encoding chosen per column, so a reader holding the column
// directory can decode exactly the columns a query references and skip
// the rest — projection pushdown at the storage format level.
//
// Encodings (one byte in the directory entry):
//
//	EncRaw    fixed 8-byte little-endian payloads. Floats always use it;
//	          integer kinds fall back to it when varint coding would be
//	          larger (random 64-bit values).
//	EncDelta  zigzag-varint first value followed by zigzag-varint deltas.
//	          Wins on sorted or slowly-moving int/date columns (clustered
//	          keys, dates).
//	EncRLE    (zigzag-varint value, uvarint run-length) pairs. Wins when
//	          runs dominate: flags, low-cardinality codes, constant
//	          columns.
//	EncDict   uvarint cardinality, then the dictionary entries
//	          (uvarint length + bytes, first-appearance order), then one
//	          uvarint index per row. Wins on low-cardinality strings.
//	EncStrRaw uvarint length + bytes per value — the high-cardinality
//	          string fallback.
//
// The encoder computes every applicable candidate and keeps the smallest;
// with segment rows in the tens-to-thousands range the extra encode work
// is noise next to the transfer costs the format models. Every decoder
// validates counts and bounds against the remaining input so corrupt
// blocks yield ErrCorrupt, never a panic or an unbounded allocation.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tuple"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Encoding identifies how one column block is coded.
type Encoding uint8

const (
	// EncRaw is fixed 8-byte little-endian payloads.
	EncRaw Encoding = iota
	// EncDelta is zigzag-varint first value plus zigzag-varint deltas.
	EncDelta
	// EncRLE is (zigzag-varint value, uvarint run-length) pairs.
	EncRLE
	// EncDict is a string dictionary plus per-row uvarint indexes.
	EncDict
	// EncStrRaw is uvarint-length-prefixed bytes per string value.
	EncStrRaw
)

// String returns the encoding's short name.
func (e Encoding) String() string {
	switch e {
	case EncRaw:
		return "raw"
	case EncDelta:
		return "delta"
	case EncRLE:
		return "rle"
	case EncDict:
		return "dict"
	case EncStrRaw:
		return "str-raw"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// ColumnMeta is one column directory entry of a v2 segment: how the
// column's block is encoded and where it sits, plus the zone-map
// statistics (min/max/null count) computed at encode time — so catalog
// statistics can be read straight from the directory without decoding a
// single block.
type ColumnMeta struct {
	// Encoding identifies the block codec.
	Encoding Encoding
	// BlockLen is the encoded block's byte length; block offsets are the
	// cumulative sums of the preceding lengths.
	BlockLen int
	// Nulls counts NULL values (always zero in this engine; persisted so
	// the directory matches what a real system would store).
	Nulls int64
	// HasRange reports whether Min/Max are meaningful (false only for
	// empty segments).
	HasRange bool
	// Min and Max bound the column's values in the segment.
	Min, Max tuple.Value
}

// encodeColumn codes one column's values and returns its directory entry
// (block length filled in) plus the block bytes. Values must all match
// kind; min/max are computed in the same pass.
func encodeColumn(kind tuple.Kind, vals []tuple.Value) (ColumnMeta, []byte, error) {
	meta := ColumnMeta{}
	for i, v := range vals {
		if v.K != kind {
			return meta, nil, fmt.Errorf("segment: column value %d is %v, schema says %v", i, v.K, kind)
		}
		if !meta.HasRange {
			meta.Min, meta.Max, meta.HasRange = v, v, true
			continue
		}
		if tuple.Compare(v, meta.Min) < 0 {
			meta.Min = v
		}
		if tuple.Compare(v, meta.Max) > 0 {
			meta.Max = v
		}
	}
	var block []byte
	switch kind {
	case tuple.KindFloat64:
		meta.Encoding, block = EncRaw, encodeFloatRaw(vals)
	case tuple.KindString:
		meta.Encoding, block = encodeStringBlock(vals)
	default: // int64, date, bool
		meta.Encoding, block = encodeIntBlock(vals)
	}
	meta.BlockLen = len(block)
	return meta, block, nil
}

func encodeFloatRaw(vals []tuple.Value) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, floatBits(v.F))
	}
	return out
}

// encodeIntBlock picks the smallest of raw / delta / RLE for an integer
// kind (int64, date, bool — all carried in Value.I).
func encodeIntBlock(vals []tuple.Value) (Encoding, []byte) {
	raw := make([]byte, 0, 8*len(vals))
	var delta []byte
	var rle []byte
	prev := int64(0)
	runVal, runLen := int64(0), 0
	flush := func() {
		if runLen > 0 {
			rle = binary.AppendVarint(rle, runVal)
			rle = binary.AppendUvarint(rle, uint64(runLen))
		}
	}
	for i, v := range vals {
		raw = binary.LittleEndian.AppendUint64(raw, uint64(v.I))
		delta = binary.AppendVarint(delta, v.I-prev)
		prev = v.I
		if i == 0 || v.I != runVal {
			flush()
			runVal, runLen = v.I, 1
		} else {
			runLen++
		}
	}
	flush()
	best, block := EncRaw, raw
	if len(delta) < len(block) {
		best, block = EncDelta, delta
	}
	if len(rle) < len(block) {
		best, block = EncRLE, rle
	}
	return best, block
}

// encodeStringBlock picks dictionary coding when it beats plain
// length-prefixed strings.
func encodeStringBlock(vals []tuple.Value) (Encoding, []byte) {
	var raw []byte
	index := make(map[string]int)
	var entries []string
	var idxBytes []byte
	for _, v := range vals {
		raw = binary.AppendUvarint(raw, uint64(len(v.S)))
		raw = append(raw, v.S...)
		id, ok := index[v.S]
		if !ok {
			id = len(entries)
			index[v.S] = id
			entries = append(entries, v.S)
		}
		idxBytes = binary.AppendUvarint(idxBytes, uint64(id))
	}
	dict := binary.AppendUvarint(nil, uint64(len(entries)))
	for _, s := range entries {
		dict = binary.AppendUvarint(dict, uint64(len(s)))
		dict = append(dict, s...)
	}
	dict = append(dict, idxBytes...)
	if len(dict) < len(raw) {
		return EncDict, dict
	}
	return EncStrRaw, raw
}

// decodeColumn decodes one block into dst (reused when large enough),
// producing exactly n values of the given kind. Any structural problem —
// wrong encoding for the kind, truncation, counts that do not add up,
// trailing bytes — returns an error (wrapped into ErrCorrupt by the
// caller).
func decodeColumn(kind tuple.Kind, enc Encoding, block []byte, n int, dst []tuple.Value) ([]tuple.Value, error) {
	if cap(dst) < n {
		// A corrupt header cannot force a huge allocation here: n is
		// validated against MaxSegmentRows before any block is decoded.
		dst = make([]tuple.Value, 0, n)
	}
	dst = dst[:0]
	switch enc {
	case EncRaw:
		if len(block) != 8*n {
			return nil, fmt.Errorf("raw block is %d bytes, want %d", len(block), 8*n)
		}
		if kind == tuple.KindFloat64 {
			for i := 0; i < n; i++ {
				dst = append(dst, tuple.Value{K: kind, F: floatFromBits(binary.LittleEndian.Uint64(block[8*i:]))})
			}
		} else {
			for i := 0; i < n; i++ {
				dst = append(dst, tuple.Value{K: kind, I: int64(binary.LittleEndian.Uint64(block[8*i:]))})
			}
		}
		return dst, nil
	case EncDelta:
		if kind == tuple.KindFloat64 || kind == tuple.KindString {
			return nil, fmt.Errorf("delta block for %v column", kind)
		}
		cur := int64(0)
		for i := 0; i < n; i++ {
			d, sz := binary.Varint(block)
			if sz <= 0 {
				return nil, fmt.Errorf("truncated delta at value %d", i)
			}
			block = block[sz:]
			cur += d
			dst = append(dst, tuple.Value{K: kind, I: cur})
		}
		if len(block) != 0 {
			return nil, fmt.Errorf("%d trailing bytes after delta block", len(block))
		}
		return dst, nil
	case EncRLE:
		if kind == tuple.KindFloat64 || kind == tuple.KindString {
			return nil, fmt.Errorf("rle block for %v column", kind)
		}
		for len(dst) < n {
			v, sz := binary.Varint(block)
			if sz <= 0 {
				return nil, fmt.Errorf("truncated rle value at row %d", len(dst))
			}
			block = block[sz:]
			run, sz := binary.Uvarint(block)
			if sz <= 0 {
				return nil, fmt.Errorf("truncated rle run at row %d", len(dst))
			}
			block = block[sz:]
			if run == 0 || run > uint64(n-len(dst)) {
				return nil, fmt.Errorf("rle run of %d at row %d overflows %d rows", run, len(dst), n)
			}
			for j := uint64(0); j < run; j++ {
				dst = append(dst, tuple.Value{K: kind, I: v})
			}
		}
		if len(block) != 0 {
			return nil, fmt.Errorf("%d trailing bytes after rle block", len(block))
		}
		return dst, nil
	case EncDict:
		if kind != tuple.KindString {
			return nil, fmt.Errorf("dict block for %v column", kind)
		}
		card, sz := binary.Uvarint(block)
		if sz <= 0 {
			return nil, fmt.Errorf("truncated dict cardinality")
		}
		block = block[sz:]
		if card > uint64(n) {
			return nil, fmt.Errorf("dict cardinality %d exceeds %d rows", card, n)
		}
		dict := make([]string, 0, card)
		for i := uint64(0); i < card; i++ {
			s, rest, err := decodeString(block)
			if err != nil {
				return nil, fmt.Errorf("dict entry %d: %w", i, err)
			}
			dict = append(dict, s)
			block = rest
		}
		for i := 0; i < n; i++ {
			id, sz := binary.Uvarint(block)
			if sz <= 0 {
				return nil, fmt.Errorf("truncated dict index at row %d", i)
			}
			if id >= card {
				return nil, fmt.Errorf("dict index %d out of %d at row %d", id, card, i)
			}
			block = block[sz:]
			dst = append(dst, tuple.Value{K: kind, S: dict[id]})
		}
		if len(block) != 0 {
			return nil, fmt.Errorf("%d trailing bytes after dict block", len(block))
		}
		return dst, nil
	case EncStrRaw:
		if kind != tuple.KindString {
			return nil, fmt.Errorf("string block for %v column", kind)
		}
		for i := 0; i < n; i++ {
			s, rest, err := decodeString(block)
			if err != nil {
				return nil, fmt.Errorf("string at row %d: %w", i, err)
			}
			block = rest
			dst = append(dst, tuple.Value{K: kind, S: s})
		}
		if len(block) != 0 {
			return nil, fmt.Errorf("%d trailing bytes after string block", len(block))
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("unknown encoding %d", enc)
	}
}

// decodeString reads one uvarint-length-prefixed string, bounds-checked
// against the remaining input.
func decodeString(data []byte) (string, []byte, error) {
	ln, sz := binary.Uvarint(data)
	if sz <= 0 {
		return "", data, fmt.Errorf("truncated length")
	}
	if uint64(len(data)-sz) < ln {
		return "", data, fmt.Errorf("length %d exceeds %d remaining bytes", ln, len(data)-sz)
	}
	return string(data[sz : sz+int(ln)]), data[sz+int(ln):], nil
}

// appendDirValue appends a zone-map bound in the directory's value
// encoding: zigzag varint for integer kinds, 8-byte LE for floats,
// length-prefixed bytes for strings.
func appendDirValue(dst []byte, kind tuple.Kind, v tuple.Value) []byte {
	switch kind {
	case tuple.KindFloat64:
		return binary.LittleEndian.AppendUint64(dst, floatBits(v.F))
	case tuple.KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		return append(dst, v.S...)
	default:
		return binary.AppendVarint(dst, v.I)
	}
}

// decodeDirValue reads one zone-map bound.
func decodeDirValue(data []byte, kind tuple.Kind) (tuple.Value, []byte, error) {
	switch kind {
	case tuple.KindFloat64:
		if len(data) < 8 {
			return tuple.Value{}, data, fmt.Errorf("truncated float bound")
		}
		return tuple.Value{K: kind, F: floatFromBits(binary.LittleEndian.Uint64(data))}, data[8:], nil
	case tuple.KindString:
		s, rest, err := decodeString(data)
		if err != nil {
			return tuple.Value{}, data, fmt.Errorf("string bound: %w", err)
		}
		return tuple.Value{K: kind, S: s}, rest, nil
	default:
		v, sz := binary.Varint(data)
		if sz <= 0 {
			return tuple.Value{}, data, fmt.Errorf("truncated int bound")
		}
		return tuple.Value{K: kind, I: v}, data[sz:], nil
	}
}

// valueBytes is the materialized (in-memory) size a decoded value
// contributes to the bytes-materialized accounting: 8 bytes for the
// numeric kinds, the payload length for strings.
func valueBytes(kind tuple.Kind, v tuple.Value) int64 {
	if kind == tuple.KindString {
		return int64(len(v.S))
	}
	return 8
}
