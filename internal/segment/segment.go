// Package segment defines the object format used to store relation data in
// the cold storage device: a relation is split into fixed-size segments,
// each stored as one CSD object (the paper uses 1 GB PostgreSQL segments
// stored as Swift objects, one container per relation).
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/tuple"
)

// ErrCorrupt tags every Decode failure on malformed input; callers
// distinguish corruption from other failures with
// errors.Is(err, segment.ErrCorrupt).
var ErrCorrupt = errors.New("corrupt segment")

// MaxTableName bounds the header's table-name length. Relation names are
// short identifiers; a longer length in the header means the buffer is
// corrupt, and validating it keeps Decode from treating arbitrary bytes
// as a name.
const MaxTableName = 255

// ObjectID names one stored object: a tenant (database client), a relation
// (container) and a segment index within the relation.
type ObjectID struct {
	Tenant int
	Table  string
	Index  int
}

// String renders the id as "t<tenant>/<table>/<index>", the form used in
// traces and error messages.
func (id ObjectID) String() string {
	return fmt.Sprintf("t%d/%s/%04d", id.Tenant, id.Table, id.Index)
}

// Segment is the in-memory form of one object: a slice of rows plus the
// nominal on-device size used by the virtual-time transfer model. Rows
// carry the actual tuples so joins compute real results; NominalBytes
// carries the paper-scale size (1 GB) so timing matches the paper.
type Segment struct {
	ID           ObjectID
	Rows         []tuple.Row
	NominalBytes int64
}

// Encode serializes the segment: a header (tenant, index, nominal size,
// table name) followed by the row batch. The schema is not stored; it is
// catalog metadata, as in the paper's setup where only catalog files live
// in the VM image.
func (g *Segment) Encode(schema *tuple.Schema) ([]byte, error) {
	if len(g.ID.Table) > MaxTableName {
		return nil, fmt.Errorf("segment %v: table name %d bytes long, limit %d", g.ID, len(g.ID.Table), MaxTableName)
	}
	out := binary.AppendVarint(nil, int64(g.ID.Tenant))
	out = binary.AppendVarint(out, int64(g.ID.Index))
	out = binary.AppendVarint(out, g.NominalBytes)
	out = binary.AppendUvarint(out, uint64(len(g.ID.Table)))
	out = append(out, g.ID.Table...)
	body, err := tuple.EncodeRows(schema, g.Rows)
	if err != nil {
		return nil, fmt.Errorf("segment %v: %w", g.ID, err)
	}
	return append(out, body...), nil
}

// Decode parses a segment previously produced by Encode. Malformed
// input — truncated headers or rows, or a table-name length beyond
// MaxTableName — yields an error wrapping ErrCorrupt; Decode never
// panics on short buffers.
func Decode(schema *tuple.Schema, data []byte) (*Segment, error) {
	g := &Segment{}
	var n int
	v, n := binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("segment: bad tenant header: %w", ErrCorrupt)
	}
	g.ID.Tenant = int(v)
	data = data[n:]
	v, n = binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("segment: bad index header: %w", ErrCorrupt)
	}
	g.ID.Index = int(v)
	data = data[n:]
	g.NominalBytes, n = binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("segment: bad size header: %w", ErrCorrupt)
	}
	data = data[n:]
	ln, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("segment: bad table-name header: %w", ErrCorrupt)
	}
	if ln > MaxTableName {
		return nil, fmt.Errorf("segment: table-name length %d exceeds limit %d: %w", ln, MaxTableName, ErrCorrupt)
	}
	if uint64(len(data)-n) < ln {
		return nil, fmt.Errorf("segment: truncated table name: %w", ErrCorrupt)
	}
	g.ID.Table = string(data[n : n+int(ln)])
	data = data[n+int(ln):]
	rows, err := tuple.DecodeRows(schema, data)
	if err != nil {
		return nil, fmt.Errorf("segment %v: %v: %w", g.ID, err, ErrCorrupt)
	}
	g.Rows = rows
	return g, nil
}

// Split partitions rows into segments of at most rowsPerSegment rows each,
// assigning sequential indices and the given nominal per-segment size. An
// empty relation still produces one empty segment so that scans and the
// subplan lattice are well-defined.
func Split(tenant int, table string, rows []tuple.Row, rowsPerSegment int, nominalBytes int64) []*Segment {
	if rowsPerSegment <= 0 {
		panic("segment: rowsPerSegment must be positive")
	}
	var segs []*Segment
	for start := 0; start == 0 || start < len(rows); start += rowsPerSegment {
		end := start + rowsPerSegment
		if end > len(rows) {
			end = len(rows)
		}
		segs = append(segs, &Segment{
			ID:           ObjectID{Tenant: tenant, Table: table, Index: len(segs)},
			Rows:         rows[start:end],
			NominalBytes: nominalBytes,
		})
	}
	return segs
}
