// Package segment defines the object format used to store relation data in
// the cold storage device: a relation is split into fixed-size segments,
// each stored as one CSD object (the paper uses 1 GB PostgreSQL segments
// stored as Swift objects, one container per relation).
//
// Two wire formats coexist. FormatV1 is the original row-major layout: a
// header followed by the tuple row codec, decodable only as a whole.
// FormatV2 is columnar: the header carries a column directory (per-column
// encoding, block length, min/max and null count) followed by
// independently decodable column blocks (see colcodec.go), so a reader
// can decode exactly the columns a query references — projection pushdown
// at the storage layer — and read zone maps without touching a block.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"repro/internal/tuple"
)

// ErrCorrupt tags every Decode failure on malformed input; callers
// distinguish corruption from other failures with
// errors.Is(err, segment.ErrCorrupt).
var ErrCorrupt = errors.New("corrupt segment")

// MaxTableName bounds the header's table-name length. Relation names are
// short identifiers; a longer length in the header means the buffer is
// corrupt, and validating it keeps Decode from treating arbitrary bytes
// as a name.
const MaxTableName = 255

// MaxSegmentRows bounds the row count a v2 header may claim. The emulator
// stores tens to thousands of tuples per object; a larger count means the
// header is corrupt, and rejecting it up front keeps run-length decoders
// from being talked into gigantic allocations by two bytes of input.
const MaxSegmentRows = 1 << 20

// Format selects the segment wire format.
type Format uint8

const (
	// FormatMem marks a segment that was never encoded: it exists only as
	// in-memory rows (generator output, test fixtures).
	FormatMem Format = 0
	// FormatV1 is the row-major format: header + tuple row codec.
	FormatV1 Format = 1
	// FormatV2 is the columnar format: header + column directory +
	// independently decodable column blocks.
	FormatV2 Format = 2
)

// String returns the format's short name ("mem", "v1", "v2").
func (f Format) String() string {
	switch f {
	case FormatMem:
		return "mem"
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// ParseFormat parses "mem", "v1" or "v2".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "mem":
		return FormatMem, nil
	case "v1":
		return FormatV1, nil
	case "v2":
		return FormatV2, nil
	default:
		return 0, fmt.Errorf("segment: unknown format %q (want mem, v1 or v2)", s)
	}
}

// magicV2 opens every v2 buffer. The first byte has the varint
// continuation bit set and is followed by printable tag bytes, a prefix
// no v1 header produced by Encode starts with.
var magicV2 = [4]byte{0xC5, 'S', 'G', '2'}

// magicCRC opens the 8-byte checksum trailer both formats append:
// 4 magic bytes followed by the little-endian CRC32C (Castagnoli) of
// every preceding byte. Decoders detect the trailer by its magic, so
// blobs written before checksums existed still read — the cost is a
// ~2^-32 chance an old blob's last 8 bytes mimic a trailer, in which
// case it is rejected as corrupt rather than misread.
var magicCRC = [4]byte{0xC7, 'C', 'R', 'C'}

// castagnoli is the CRC32C polynomial table — the storage-industry
// checksum (iSCSI, ext4, Snappy framing), hardware-accelerated on
// amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendChecksum seals an encoded buffer with the checksum trailer.
func appendChecksum(out []byte) []byte {
	sum := crc32.Checksum(out, castagnoli)
	out = append(out, magicCRC[:]...)
	return binary.LittleEndian.AppendUint32(out, sum)
}

// splitChecksum detects and strips the checksum trailer, verifying it.
// Buffers without a trailer pass through untouched with hasCRC false.
func splitChecksum(data []byte) (body []byte, sum uint32, hasCRC bool, err error) {
	n := len(data)
	if n < 8 || [4]byte(data[n-8:n-4]) != magicCRC {
		return data, 0, false, nil
	}
	body, sum = data[:n-8], binary.LittleEndian.Uint32(data[n-4:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, 0, false, fmt.Errorf("segment: checksum mismatch (stored %08x, computed %08x): %w", sum, got, ErrCorrupt)
	}
	return body, sum, true, nil
}

// ObjectID names one stored object: a tenant (database client), a relation
// (container) and a segment index within the relation.
type ObjectID struct {
	Tenant int
	Table  string
	Index  int
}

// String renders the id as "t<tenant>/<table>/<index>", the form used in
// traces and error messages.
func (id ObjectID) String() string {
	return fmt.Sprintf("t%d/%s/%04d", id.Tenant, id.Table, id.Index)
}

// payload is the retained wire form of a lazily decoded segment: enough
// directory state to decode individual column blocks on demand.
type payload struct {
	format Format
	rows   int
	size   int64  // total encoded size, header and checksum trailer included
	body   []byte // v1: the row-codec body; v2: the concatenated blocks
	dir    []ColumnMeta

	// raw is the full encoded buffer minus the checksum trailer (body
	// aliases its tail); crc is the trailer's stored checksum. hasCRC is
	// false for blobs written before checksums existed — VerifyChecksum
	// then has nothing to check.
	raw    []byte
	crc    uint32
	hasCRC bool
	// verified (atomic) caches a successful VerifyChecksum: the payload
	// bytes are immutable after decode, so one clean recompute covers
	// every later delivery of the same segment. Atomic because the server
	// shares decoded segments across concurrently running query sims.
	verified uint32
}

// Segment is the in-memory form of one object. Rows carries the actual
// tuples so joins compute real results; NominalBytes carries the
// paper-scale size (1 GB) so timing matches the paper. A segment produced
// by DecodeLazy holds its encoded payload instead of Rows, and serves
// columns on demand through DecodeColumns — that is what makes scan-side
// projection pushdown real.
type Segment struct {
	ID           ObjectID
	Rows         []tuple.Row
	NominalBytes int64

	payload *payload
}

// Lazy reports whether the segment holds an encoded payload to be decoded
// at access time (DecodeLazy output) rather than materialized Rows.
func (g *Segment) Lazy() bool { return g.payload != nil }

// Format returns the wire format the segment was decoded from, or
// FormatMem for purely in-memory segments.
func (g *Segment) Format() Format {
	if g.payload == nil {
		return FormatMem
	}
	return g.payload.format
}

// NumRows returns the segment's row count without materializing anything.
func (g *Segment) NumRows() int {
	if g.payload != nil {
		return g.payload.rows
	}
	return len(g.Rows)
}

// EncodedSize returns the total encoded byte size of a lazy segment
// (header, directory and blocks), or 0 for in-memory segments.
func (g *Segment) EncodedSize() int64 {
	if g.payload == nil {
		return 0
	}
	return g.payload.size
}

// Directory returns the column directory of a lazy v2 segment (aligned
// with the schema's columns), or nil for any other segment. The entries
// carry the per-column zone maps, so statistics collection reads min/max
// and null counts without decoding a block.
func (g *Segment) Directory() []ColumnMeta {
	if g.payload == nil || g.payload.format != FormatV2 {
		return nil
	}
	return g.payload.dir
}

// Checksummed reports whether the segment carries a CRC32C trailer to
// verify against. In-memory segments and pre-checksum blobs do not.
func (g *Segment) Checksummed() bool {
	return g.payload != nil && g.payload.hasCRC
}

// VerifyChecksum recomputes the CRC32C of a lazy segment's encoded bytes
// and compares it against the stored trailer, returning an ErrCorrupt
// error on mismatch. Segments without a checksum (in-memory, or decoded
// from a pre-checksum blob) verify trivially. This is the end-to-end
// integrity check the client proxy runs on every delivery: the decode
// path verifies the wire buffer once, and VerifyChecksum catches any
// corruption of the retained payload after that — which is exactly how
// the fault injector models a device flipping bits in flight.
func (g *Segment) VerifyChecksum() error {
	p := g.payload
	if p == nil || !p.hasCRC {
		return nil
	}
	if atomic.LoadUint32(&p.verified) == 1 {
		return nil
	}
	if got := crc32.Checksum(p.raw, castagnoli); got != p.crc {
		return fmt.Errorf("segment %v: checksum mismatch (stored %08x, computed %08x): %w", g.ID, p.crc, got, ErrCorrupt)
	}
	atomic.StoreUint32(&p.verified, 1)
	return nil
}

// CorruptedCopy returns a copy of a lazy segment with one payload bit
// flipped and the original checksum retained, so VerifyChecksum on the
// copy fails while the original stays intact. The fault injector serves
// these to model bit rot in flight. Returns nil when the segment cannot
// carry detectable corruption (in-memory, or no checksum trailer) — the
// injector then degrades the fault to a transient failure instead.
func (g *Segment) CorruptedCopy() *Segment {
	p := g.payload
	if p == nil || !p.hasCRC || len(p.raw) == 0 {
		return nil
	}
	raw := append([]byte(nil), p.raw...)
	// Flip mid-body where possible so headers still parse; an empty body
	// (zero-row v2) falls back to the last header byte.
	at := len(raw) - 1
	if len(p.body) > 0 {
		at = len(raw) - len(p.body) + len(p.body)/2
	}
	raw[at] ^= 0x40
	// Field-by-field copy: the verified flag must not be read (other
	// goroutines store it atomically) and must start unset on the copy.
	np := payload{format: p.format, rows: p.rows, size: p.size, dir: p.dir,
		raw: raw, body: raw[len(raw)-len(p.body):], crc: p.crc, hasCRC: p.hasCRC}
	c := *g
	c.payload = &np
	return &c
}

// Encode serializes the segment in FormatV1 — the historical default,
// kept so existing callers and stored objects stay readable.
func (g *Segment) Encode(schema *tuple.Schema) ([]byte, error) {
	return g.EncodeFormat(schema, FormatV1)
}

// EncodeFormat serializes the segment in the given wire format. The
// schema is not stored; it is catalog metadata, as in the paper's setup
// where only catalog files live in the VM image.
func (g *Segment) EncodeFormat(schema *tuple.Schema, f Format) ([]byte, error) {
	if len(g.ID.Table) > MaxTableName {
		return nil, fmt.Errorf("segment %v: table name %d bytes long, limit %d", g.ID, len(g.ID.Table), MaxTableName)
	}
	if g.NominalBytes < 0 {
		return nil, fmt.Errorf("segment %v: negative nominal size %d", g.ID, g.NominalBytes)
	}
	switch f {
	case FormatV1:
		out := g.appendHeader(nil)
		body, err := tuple.EncodeRows(schema, g.Rows)
		if err != nil {
			return nil, fmt.Errorf("segment %v: %w", g.ID, err)
		}
		return appendChecksum(append(out, body...)), nil
	case FormatV2:
		out, err := g.encodeV2(schema)
		if err != nil {
			return nil, err
		}
		return appendChecksum(out), nil
	default:
		return nil, fmt.Errorf("segment %v: cannot encode format %v", g.ID, f)
	}
}

// appendHeader writes the fields both formats share: tenant, index,
// nominal size and table name.
func (g *Segment) appendHeader(out []byte) []byte {
	out = binary.AppendVarint(out, int64(g.ID.Tenant))
	out = binary.AppendVarint(out, int64(g.ID.Index))
	out = binary.AppendVarint(out, g.NominalBytes)
	out = binary.AppendUvarint(out, uint64(len(g.ID.Table)))
	return append(out, g.ID.Table...)
}

// encodeV2 lays out the columnar format:
//
//	magic "0xC5 S G 2"
//	tenant, index, nominalBytes (varint), table name (uvarint len + bytes)
//	row count, column count (uvarint)
//	per column: encoding (byte), block length (uvarint), null count
//	            (uvarint), has-range (byte), [min, max]
//	column blocks, back to back in schema order
func (g *Segment) encodeV2(schema *tuple.Schema) ([]byte, error) {
	if len(g.Rows) > MaxSegmentRows {
		return nil, fmt.Errorf("segment %v: %d rows exceed MaxSegmentRows %d", g.ID, len(g.Rows), MaxSegmentRows)
	}
	for _, r := range g.Rows {
		if len(r) != schema.Len() {
			return nil, fmt.Errorf("segment %v: row arity %d != schema arity %d", g.ID, len(r), schema.Len())
		}
	}
	out := append([]byte(nil), magicV2[:]...)
	out = g.appendHeader(out)
	out = binary.AppendUvarint(out, uint64(len(g.Rows)))
	out = binary.AppendUvarint(out, uint64(schema.Len()))
	colVals := make([]tuple.Value, len(g.Rows))
	var blocks []byte
	for ci, col := range schema.Cols {
		for ri, r := range g.Rows {
			colVals[ri] = r[ci]
		}
		meta, block, err := encodeColumn(col.Kind, colVals)
		if err != nil {
			return nil, fmt.Errorf("segment %v: column %q: %w", g.ID, col.Name, err)
		}
		out = append(out, byte(meta.Encoding))
		out = binary.AppendUvarint(out, uint64(meta.BlockLen))
		out = binary.AppendUvarint(out, uint64(meta.Nulls))
		if meta.HasRange {
			out = append(out, 1)
			out = appendDirValue(out, col.Kind, meta.Min)
			out = appendDirValue(out, col.Kind, meta.Max)
		} else {
			out = append(out, 0)
		}
		blocks = append(blocks, block...)
	}
	return append(out, blocks...), nil
}

// Decode parses a segment previously produced by Encode/EncodeFormat,
// materializing every row — v1 behaviour, preserved for both formats.
// Malformed input yields an error wrapping ErrCorrupt; Decode never
// panics on short buffers.
func Decode(schema *tuple.Schema, data []byte) (*Segment, error) {
	g, err := DecodeLazy(schema, data)
	if err != nil {
		return nil, err
	}
	if g.payload == nil {
		return g, nil
	}
	rows, err := g.Materialize(schema)
	if err != nil {
		return nil, err
	}
	g.Rows, g.payload = rows, nil
	return g, nil
}

// DecodeLazy parses a segment's header (and, for v2, its column
// directory) and keeps the payload for on-demand column decoding. Block
// contents are validated when they are first decoded; header or directory
// corruption is rejected here, wrapping ErrCorrupt.
func DecodeLazy(schema *tuple.Schema, data []byte) (*Segment, error) {
	size := int64(len(data))
	data, sum, hasCRC, err := splitChecksum(data)
	if err != nil {
		return nil, err
	}
	if len(data) >= len(magicV2) && [4]byte(data[:4]) == magicV2 {
		g, err := decodeLazyV2(schema, data[4:], size)
		if err != nil {
			return nil, err
		}
		g.payload.raw, g.payload.crc, g.payload.hasCRC = data, sum, hasCRC
		return g, nil
	}
	g, rest, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	n, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return nil, fmt.Errorf("segment: truncated row-count header: %w", ErrCorrupt)
	}
	g.payload = &payload{format: FormatV1, size: size, body: rest, raw: data, crc: sum, hasCRC: hasCRC}
	// The count is untrusted until the rows decode, but bounding it now
	// (every non-empty row costs at least one byte) keeps NumRows sane.
	if n > uint64(len(rest)-sz)+1 {
		return nil, fmt.Errorf("segment: row count %d exceeds %d body bytes: %w", n, len(rest)-sz, ErrCorrupt)
	}
	g.payload.rows = int(n)
	return g, nil
}

// decodeHeader parses the shared header fields, returning the segment
// shell and the remaining bytes.
func decodeHeader(data []byte) (*Segment, []byte, error) {
	g := &Segment{}
	v, n := binary.Varint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("segment: bad tenant header: %w", ErrCorrupt)
	}
	g.ID.Tenant = int(v)
	data = data[n:]
	v, n = binary.Varint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("segment: bad index header: %w", ErrCorrupt)
	}
	g.ID.Index = int(v)
	data = data[n:]
	g.NominalBytes, n = binary.Varint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("segment: bad size header: %w", ErrCorrupt)
	}
	if g.NominalBytes < 0 {
		// A negative nominal size would corrupt the virtual-time transfer
		// model (negative sleep durations panic downstream).
		return nil, nil, fmt.Errorf("segment: negative nominal size %d: %w", g.NominalBytes, ErrCorrupt)
	}
	data = data[n:]
	ln, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("segment: bad table-name header: %w", ErrCorrupt)
	}
	if ln > MaxTableName {
		return nil, nil, fmt.Errorf("segment: table-name length %d exceeds limit %d: %w", ln, MaxTableName, ErrCorrupt)
	}
	if uint64(len(data)-n) < ln {
		return nil, nil, fmt.Errorf("segment: truncated table name: %w", ErrCorrupt)
	}
	g.ID.Table = string(data[n : n+int(ln)])
	return g, data[n+int(ln):], nil
}

// decodeLazyV2 parses the v2 header and column directory (magic already
// consumed) and wires up the lazy payload.
func decodeLazyV2(schema *tuple.Schema, data []byte, size int64) (*Segment, error) {
	g, rest, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	nrows, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return nil, fmt.Errorf("segment: bad v2 row count: %w", ErrCorrupt)
	}
	if nrows > MaxSegmentRows {
		return nil, fmt.Errorf("segment: v2 row count %d exceeds MaxSegmentRows %d: %w", nrows, MaxSegmentRows, ErrCorrupt)
	}
	rest = rest[sz:]
	ncols, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return nil, fmt.Errorf("segment: bad v2 column count: %w", ErrCorrupt)
	}
	rest = rest[sz:]
	if ncols != uint64(schema.Len()) {
		return nil, fmt.Errorf("segment: v2 directory has %d columns, schema %v has %d: %w", ncols, schema, schema.Len(), ErrCorrupt)
	}
	dir := make([]ColumnMeta, schema.Len())
	var total int64
	for ci := range dir {
		m := &dir[ci]
		if len(rest) == 0 {
			return nil, fmt.Errorf("segment: truncated directory at column %d: %w", ci, ErrCorrupt)
		}
		m.Encoding = Encoding(rest[0])
		rest = rest[1:]
		bl, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return nil, fmt.Errorf("segment: bad block length for column %d: %w", ci, ErrCorrupt)
		}
		rest = rest[sz:]
		// The remaining bytes still hold the rest of the directory plus
		// every block, so any single length beyond them is corrupt. The
		// bound also keeps the int64 total from overflowing on crafted
		// huge uvarints (ncols is schema-bounded).
		if bl > uint64(len(rest)) {
			return nil, fmt.Errorf("segment: column %d block length %d exceeds %d remaining bytes: %w", ci, bl, len(rest), ErrCorrupt)
		}
		m.BlockLen = int(bl)
		total += int64(bl)
		nulls, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return nil, fmt.Errorf("segment: bad null count for column %d: %w", ci, ErrCorrupt)
		}
		rest = rest[sz:]
		m.Nulls = int64(nulls)
		if len(rest) == 0 {
			return nil, fmt.Errorf("segment: truncated range flag for column %d: %w", ci, ErrCorrupt)
		}
		hasRange := rest[0]
		rest = rest[1:]
		if hasRange > 1 {
			return nil, fmt.Errorf("segment: bad range flag %d for column %d: %w", hasRange, ci, ErrCorrupt)
		}
		if hasRange == 1 {
			kind := schema.Cols[ci].Kind
			var err error
			if m.Min, rest, err = decodeDirValue(rest, kind); err != nil {
				return nil, fmt.Errorf("segment: column %d min: %v: %w", ci, err, ErrCorrupt)
			}
			if m.Max, rest, err = decodeDirValue(rest, kind); err != nil {
				return nil, fmt.Errorf("segment: column %d max: %v: %w", ci, err, ErrCorrupt)
			}
			m.HasRange = true
		}
	}
	if int64(len(rest)) != total {
		return nil, fmt.Errorf("segment: directory claims %d block bytes, %d remain: %w", total, len(rest), ErrCorrupt)
	}
	g.payload = &payload{format: FormatV2, rows: int(nrows), size: size, body: rest, dir: dir}
	return g, nil
}

// ColumnData is the result of a projected decode: per-schema-column value
// slices (nil for columns the projection skipped) plus the byte
// accounting behind the bytes-fetched / decoded / materialized metrics.
type ColumnData struct {
	// Cols has one entry per schema column; entries outside the
	// projection are nil. The slices are reused across DecodeColumns
	// calls that pass the same ColumnData back in.
	Cols [][]tuple.Value
	// NumRows is the segment's row count (also for empty projections).
	NumRows int
	// BytesDecoded counts encoded block bytes actually decoded.
	BytesDecoded int64
	// BytesSkipped counts encoded block bytes the projection skipped.
	BytesSkipped int64
	// BytesMaterialized counts the logical size of the decoded values
	// (8 bytes per numeric, payload length per string).
	BytesMaterialized int64
}

// DecodeColumns decodes the projected columns of a lazy segment. proj
// lists schema column indexes to decode, in any order; nil means every
// column, and an empty non-nil slice decodes nothing (row counts only —
// what a COUNT(*) scan needs). Pass a previous ColumnData back in to
// reuse its buffers. V1 payloads are row-major, so they decode every
// column regardless of proj — the format difference projection pushdown
// measures. Errors wrap ErrCorrupt.
func (g *Segment) DecodeColumns(schema *tuple.Schema, proj []int, reuse *ColumnData) (*ColumnData, error) {
	p := g.payload
	if p == nil {
		return nil, fmt.Errorf("segment %v: DecodeColumns on a materialized segment", g.ID)
	}
	cd := reuse
	if cd == nil {
		cd = &ColumnData{}
	}
	if len(cd.Cols) != schema.Len() {
		cd.Cols = make([][]tuple.Value, schema.Len())
	}
	cd.NumRows = p.rows
	cd.BytesDecoded, cd.BytesSkipped, cd.BytesMaterialized = 0, 0, 0
	want := make([]bool, schema.Len())
	if proj == nil {
		for i := range want {
			want[i] = true
		}
	} else {
		for _, ci := range proj {
			if ci < 0 || ci >= schema.Len() {
				return nil, fmt.Errorf("segment %v: projected column %d out of range (%d columns)", g.ID, ci, schema.Len())
			}
			want[ci] = true
		}
	}
	if p.format == FormatV1 {
		return g.decodeColumnsV1(schema, cd)
	}
	block := p.body
	for ci, m := range p.dir {
		if m.BlockLen > len(block) {
			return nil, fmt.Errorf("segment %v: column %d block overruns payload: %w", g.ID, ci, ErrCorrupt)
		}
		if !want[ci] {
			cd.Cols[ci] = nil
			cd.BytesSkipped += int64(m.BlockLen)
			block = block[m.BlockLen:]
			continue
		}
		vals, err := decodeColumn(schema.Cols[ci].Kind, m.Encoding, block[:m.BlockLen], p.rows, cd.Cols[ci])
		if err != nil {
			return nil, fmt.Errorf("segment %v: column %q: %v: %w", g.ID, schema.Cols[ci].Name, err, ErrCorrupt)
		}
		cd.Cols[ci] = vals
		cd.BytesDecoded += int64(m.BlockLen)
		kind := schema.Cols[ci].Kind
		for _, v := range vals {
			cd.BytesMaterialized += valueBytes(kind, v)
		}
		block = block[m.BlockLen:]
	}
	return cd, nil
}

// decodeColumnsV1 decodes a row-major payload in full and transposes it
// into ColumnData: v1 has no independently decodable blocks, so every
// projected read pays for the whole segment.
func (g *Segment) decodeColumnsV1(schema *tuple.Schema, cd *ColumnData) (*ColumnData, error) {
	rows, err := tuple.DecodeRows(schema, g.payload.body)
	if err != nil {
		return nil, fmt.Errorf("segment %v: %v: %w", g.ID, err, ErrCorrupt)
	}
	cd.NumRows = len(rows)
	cd.BytesDecoded = int64(len(g.payload.body))
	for ci, col := range schema.Cols {
		vals := cd.Cols[ci]
		if cap(vals) < len(rows) {
			vals = make([]tuple.Value, 0, len(rows))
		}
		vals = vals[:0]
		for _, r := range rows {
			vals = append(vals, r[ci])
			cd.BytesMaterialized += valueBytes(col.Kind, r[ci])
		}
		cd.Cols[ci] = vals
	}
	return cd, nil
}

// Materialize returns the segment's rows, decoding every column of a lazy
// payload. The result is freshly allocated per call (it is not cached on
// the segment), so repeated materializations model repeated decode work —
// exactly what MJoin's rescan accounting expects.
func (g *Segment) Materialize(schema *tuple.Schema) ([]tuple.Row, error) {
	if g.payload == nil {
		return g.Rows, nil
	}
	if g.payload.format == FormatV1 {
		rows, err := tuple.DecodeRows(schema, g.payload.body)
		if err != nil {
			return nil, fmt.Errorf("segment %v: %v: %w", g.ID, err, ErrCorrupt)
		}
		return rows, nil
	}
	cd, err := g.DecodeColumns(schema, nil, nil)
	if err != nil {
		return nil, err
	}
	if cd.NumRows == 0 {
		return nil, nil
	}
	arena := make([]tuple.Value, cd.NumRows*schema.Len())
	rows := make([]tuple.Row, cd.NumRows)
	for i := range rows {
		row := arena[i*schema.Len() : (i+1)*schema.Len() : (i+1)*schema.Len()]
		for ci := range cd.Cols {
			row[ci] = cd.Cols[ci][i]
		}
		rows[i] = row
	}
	return rows, nil
}

// Split partitions rows into segments of at most rowsPerSegment rows each,
// assigning sequential indices and the given nominal per-segment size. An
// empty relation still produces one empty segment so that scans and the
// subplan lattice are well-defined.
func Split(tenant int, table string, rows []tuple.Row, rowsPerSegment int, nominalBytes int64) []*Segment {
	if rowsPerSegment <= 0 {
		panic("segment: rowsPerSegment must be positive")
	}
	var segs []*Segment
	for start := 0; start == 0 || start < len(rows); start += rowsPerSegment {
		end := start + rowsPerSegment
		if end > len(rows) {
			end = len(rows)
		}
		segs = append(segs, &Segment{
			ID:           ObjectID{Tenant: tenant, Table: table, Index: len(segs)},
			Rows:         rows[start:end],
			NominalBytes: nominalBytes,
		})
	}
	return segs
}
