package segment

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tuple"
)

// wideSchema exercises every kind and every encoding family.
var wideSchema = tuple.NewSchema(
	tuple.Column{Name: "id", Kind: tuple.KindInt64},      // sorted → delta
	tuple.Column{Name: "code", Kind: tuple.KindInt64},    // runs → rle
	tuple.Column{Name: "rand", Kind: tuple.KindInt64},    // random → raw
	tuple.Column{Name: "price", Kind: tuple.KindFloat64}, // raw
	tuple.Column{Name: "tag", Kind: tuple.KindString},    // low card → dict
	tuple.Column{Name: "blob", Kind: tuple.KindString},   // high card → str-raw
	tuple.Column{Name: "day", Kind: tuple.KindDate},      // delta
	tuple.Column{Name: "flag", Kind: tuple.KindBool},     // rle
)

func wideRows(n int, seed int64) []tuple.Row {
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"AIR", "RAIL", "SHIP"}
	out := make([]tuple.Row, n)
	for i := range out {
		blob := make([]byte, 6+rng.Intn(10))
		rng.Read(blob)
		out[i] = tuple.Row{
			tuple.Int(int64(1000 + i)),
			tuple.Int(int64(i / 7)),
			tuple.Int(rng.Int63() - rng.Int63()),
			tuple.Float(rng.NormFloat64() * 1e6),
			tuple.Str(tags[rng.Intn(len(tags))]),
			tuple.Str(string(blob)),
			tuple.DateFromDays(8000 + int64(i%90)),
			tuple.Bool(i%13 == 0),
		}
	}
	return out
}

func wideSegment(n int) *Segment {
	return &Segment{
		ID:           ObjectID{Tenant: 1, Table: "wide", Index: 3},
		Rows:         wideRows(n, 42),
		NominalBytes: 1e9,
	}
}

func TestV2RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		orig := wideSegment(n)
		data, err := orig.EncodeFormat(wideSchema, FormatV2)
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		back, err := Decode(wideSchema, data)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if back.ID != orig.ID || back.NominalBytes != orig.NominalBytes {
			t.Fatalf("n=%d: header mismatch: %+v", n, back)
		}
		if len(back.Rows) != len(orig.Rows) {
			t.Fatalf("n=%d: %d rows, want %d", n, len(back.Rows), len(orig.Rows))
		}
		for i := range orig.Rows {
			if !reflect.DeepEqual(orig.Rows[i], back.Rows[i]) {
				t.Fatalf("n=%d row %d: %v != %v", n, i, back.Rows[i], orig.Rows[i])
			}
		}
	}
}

func TestV2SmallerThanV1OnTypical(t *testing.T) {
	orig := wideSegment(200)
	v1, err := orig.EncodeFormat(wideSchema, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := orig.EncodeFormat(wideSchema, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) >= len(v1) {
		t.Fatalf("v2 (%d bytes) not smaller than v1 (%d bytes) on a typical mixed segment", len(v2), len(v1))
	}
}

func TestV2ProjectedDecode(t *testing.T) {
	orig := wideSegment(64)
	data, err := orig.EncodeFormat(wideSchema, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeLazy(wideSchema, data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Lazy() || g.Format() != FormatV2 || g.NumRows() != 64 {
		t.Fatalf("lazy=%v format=%v rows=%d", g.Lazy(), g.Format(), g.NumRows())
	}
	if g.EncodedSize() != int64(len(data)) {
		t.Fatalf("EncodedSize %d, want %d", g.EncodedSize(), len(data))
	}
	proj := []int{0, 4} // id, tag
	cd, err := g.DecodeColumns(wideSchema, proj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cd.NumRows != 64 {
		t.Fatalf("NumRows %d", cd.NumRows)
	}
	for ci := range wideSchema.Cols {
		want := ci == 0 || ci == 4
		if (cd.Cols[ci] != nil) != want {
			t.Fatalf("column %d decoded=%v, want %v", ci, cd.Cols[ci] != nil, want)
		}
	}
	for i, r := range orig.Rows {
		if !tuple.Equal(cd.Cols[0][i], r[0]) || !tuple.Equal(cd.Cols[4][i], r[4]) {
			t.Fatalf("row %d: projected values diverge", i)
		}
	}
	if cd.BytesDecoded <= 0 || cd.BytesSkipped <= 0 {
		t.Fatalf("byte accounting: decoded=%d skipped=%d", cd.BytesDecoded, cd.BytesSkipped)
	}
	dir := g.Directory()
	var total int64
	for _, m := range dir {
		total += int64(m.BlockLen)
	}
	if cd.BytesDecoded+cd.BytesSkipped != total {
		t.Fatalf("decoded+skipped = %d, directory total %d", cd.BytesDecoded+cd.BytesSkipped, total)
	}

	// Empty (non-nil) projection: row count only, no block decoded.
	cd, err = g.DecodeColumns(wideSchema, []int{}, cd)
	if err != nil {
		t.Fatal(err)
	}
	if cd.BytesDecoded != 0 || cd.BytesSkipped != total || cd.NumRows != 64 {
		t.Fatalf("empty projection: decoded=%d skipped=%d rows=%d", cd.BytesDecoded, cd.BytesSkipped, cd.NumRows)
	}

	// Out-of-range projection is an error, not a panic.
	if _, err := g.DecodeColumns(wideSchema, []int{99}, nil); err == nil {
		t.Fatal("out-of-range projection accepted")
	}
}

func TestV2DirectoryZoneMaps(t *testing.T) {
	orig := wideSegment(50)
	data, err := orig.EncodeFormat(wideSchema, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeLazy(wideSchema, data)
	if err != nil {
		t.Fatal(err)
	}
	dir := g.Directory()
	for ci, col := range wideSchema.Cols {
		min, max := orig.Rows[0][ci], orig.Rows[0][ci]
		for _, r := range orig.Rows[1:] {
			if tuple.Compare(r[ci], min) < 0 {
				min = r[ci]
			}
			if tuple.Compare(r[ci], max) > 0 {
				max = r[ci]
			}
		}
		m := dir[ci]
		if !m.HasRange || !tuple.Equal(m.Min, min) || !tuple.Equal(m.Max, max) {
			t.Fatalf("column %q: directory [%v, %v], rows [%v, %v]", col.Name, m.Min, m.Max, min, max)
		}
		if m.Nulls != 0 {
			t.Fatalf("column %q: %d nulls", col.Name, m.Nulls)
		}
	}
}

func TestV1LazyDecodesEverything(t *testing.T) {
	orig := wideSegment(32)
	data, err := orig.EncodeFormat(wideSchema, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeLazy(wideSchema, data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Format() != FormatV1 || g.NumRows() != 32 || g.Directory() != nil {
		t.Fatalf("format=%v rows=%d dir=%v", g.Format(), g.NumRows(), g.Directory())
	}
	cd, err := g.DecodeColumns(wideSchema, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Row-major: the projection cannot skip anything.
	if cd.BytesSkipped != 0 || cd.BytesDecoded == 0 {
		t.Fatalf("v1: decoded=%d skipped=%d", cd.BytesDecoded, cd.BytesSkipped)
	}
	for ci := range wideSchema.Cols {
		if cd.Cols[ci] == nil {
			t.Fatalf("v1 projected decode left column %d nil", ci)
		}
	}
	rows, err := g.Materialize(wideSchema)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, orig.Rows) {
		t.Fatal("v1 materialize mismatch")
	}
}

func TestDecodeRejectsNegativeNominalBytes(t *testing.T) {
	// Regression: a crafted header with a negative nominal size used to
	// decode successfully and corrupt the virtual-time transfer model
	// (negative sleep). Both formats must reject it with ErrCorrupt.
	data := binary.AppendVarint(nil, 0)  // tenant
	data = binary.AppendVarint(data, 0)  // index
	data = binary.AppendVarint(data, -5) // nominal bytes: corrupt
	data = binary.AppendUvarint(data, 1)
	data = append(data, 't')
	data = binary.AppendUvarint(data, 0) // zero rows
	if _, err := Decode(sch, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v1 negative NominalBytes: got %v, want ErrCorrupt", err)
	}

	orig := &Segment{ID: ObjectID{Table: "t"}, Rows: rows(2), NominalBytes: -1}
	if _, err := orig.EncodeFormat(sch, FormatV1); err == nil {
		t.Fatal("encode accepted negative NominalBytes")
	}
	// And a crafted v2 header.
	orig.NominalBytes = 7
	v2, err := orig.EncodeFormat(sch, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the nominal-size varint (after magic + two zero-ish varints).
	good, err := Decode(sch, v2)
	if err != nil || good.NominalBytes != 7 {
		t.Fatalf("baseline v2 decode: %v", err)
	}
	patched := append([]byte(nil), v2[:4]...)
	patched = binary.AppendVarint(patched, 0)
	patched = binary.AppendVarint(patched, 0)
	patched = binary.AppendVarint(patched, -9)
	patched = append(patched, v2[4+3:]...) // original had three 1-byte varints (0, 0, 7)
	if _, err := Decode(sch, patched); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v2 negative NominalBytes: got %v, want ErrCorrupt", err)
	}
}

func TestV2DecodeCorruptTyped(t *testing.T) {
	orig := wideSegment(12)
	data, err := orig.EncodeFormat(wideSchema, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	// Every prefix truncation must fail with ErrCorrupt (at DecodeLazy or
	// at materialization) and never panic. Stripping exactly the 8-byte
	// checksum trailer leaves a valid legacy blob by design.
	for cut := 0; cut < len(data); cut++ {
		if cut == len(data)-8 {
			continue
		}
		if _, err := Decode(wideSchema, data[:cut]); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: %v does not wrap ErrCorrupt", cut, err)
		}
	}
	// Flipping directory or block bytes must never panic; if it decodes,
	// it must still be schema-shaped.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		sg, err := Decode(wideSchema, mut)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("mutation %d: %v does not wrap ErrCorrupt", i, err)
			}
			continue
		}
		for _, r := range sg.Rows {
			if len(r) != wideSchema.Len() {
				t.Fatalf("mutation %d: row arity %d", i, len(r))
			}
		}
	}
}

func TestV2RejectsAbsurdRowCount(t *testing.T) {
	orig := &Segment{ID: ObjectID{Table: "t"}, Rows: rows(1), NominalBytes: 1}
	data, err := orig.EncodeFormat(sch, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the buffer with a ludicrous row count: magic + header, then
	// a row count beyond MaxSegmentRows.
	patched := append([]byte(nil), data[:4]...)
	patched = binary.AppendVarint(patched, 0)
	patched = binary.AppendVarint(patched, 0)
	patched = binary.AppendVarint(patched, 1)
	patched = binary.AppendUvarint(patched, 1)
	patched = append(patched, 't')
	patched = binary.AppendUvarint(patched, MaxSegmentRows+1)
	patched = binary.AppendUvarint(patched, uint64(sch.Len()))
	if _, err := DecodeLazy(sch, patched); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd row count: got %v, want ErrCorrupt", err)
	}
}

func TestV2RejectsOverflowingBlockLengths(t *testing.T) {
	// Regression: two directory entries whose uvarint block lengths sum
	// past int64 used to wrap the directory total into agreement with the
	// remaining bytes, and the negative per-column length then panicked
	// DecodeColumns. Both entries must be rejected at parse time.
	data := append([]byte(nil), magicV2[:]...)
	data = binary.AppendVarint(data, 0) // tenant
	data = binary.AppendVarint(data, 0) // index
	data = binary.AppendVarint(data, 1) // nominal
	data = binary.AppendUvarint(data, 1)
	data = append(data, 't')
	data = binary.AppendUvarint(data, 1)                 // rows
	data = binary.AppendUvarint(data, uint64(sch.Len())) // cols
	huge := uint64(1) << 63
	entry := func(bl uint64) {
		data = append(data, byte(EncRaw))
		data = binary.AppendUvarint(data, bl)
		data = binary.AppendUvarint(data, 0) // nulls
		data = append(data, 0)               // no range
	}
	entry(huge)
	entry(huge + 8)
	data = append(data, make([]byte, 8)...) // "blocks"
	g, err := DecodeLazy(sch, data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overflowing block lengths: got %v (segment %v), want ErrCorrupt", err, g)
	}
}

func TestFloatRoundTripExact(t *testing.T) {
	s := tuple.NewSchema(tuple.Column{Name: "f", Kind: tuple.KindFloat64})
	specials := []float64{0, math.Copysign(0, -1), 1.5, -1e308, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64}
	rs := make([]tuple.Row, len(specials))
	for i, f := range specials {
		rs[i] = tuple.Row{tuple.Float(f)}
	}
	orig := &Segment{ID: ObjectID{Table: "f"}, Rows: rs, NominalBytes: 1}
	data, err := orig.EncodeFormat(s, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(s, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if math.Float64bits(back.Rows[i][0].F) != math.Float64bits(rs[i][0].F) {
			t.Fatalf("float %d not bit-exact: %v vs %v", i, back.Rows[i][0], rs[i][0])
		}
	}
}
