package csd

import (
	"sort"

	"repro/internal/segment"
)

// Scheduler decides which disk group to load next. NextGroup receives the
// currently loaded group, the pending requests bucketed by group (never
// empty, and never containing only the loaded group), and a waiting
// function that returns, for a query id, the number of group switches
// since that query was last serviced (§4.4). Implementations must return a
// group with pending requests that differs from loaded.
type Scheduler interface {
	Name() string
	NextGroup(loaded int, pending map[int][]*Request, waiting func(queryID string) int) int
}

// sortedGroups returns the candidate groups (excluding loaded) in
// ascending order for deterministic tie-breaking.
func sortedGroups(loaded int, pending map[int][]*Request) []int {
	groups := make([]int, 0, len(pending))
	for g := range pending {
		if g != loaded {
			groups = append(groups, g)
		}
	}
	sort.Ints(groups)
	return groups
}

// distinctQueries counts distinct query ids among requests.
func distinctQueries(reqs []*Request) int {
	seen := make(map[string]struct{}, len(reqs))
	for _, r := range reqs {
		seen[r.QueryID] = struct{}{}
	}
	return len(seen)
}

// coalescedRequests counts requests that would ride along on another
// request's transfer: len(reqs) minus the distinct objects. The device
// coalesces duplicate same-object requests into one transfer at
// dispatch, so a group with a high count serves the same demand with
// fewer transfers.
func coalescedRequests(reqs []*Request) int {
	seen := make(map[segment.ObjectID]struct{}, len(reqs))
	for _, r := range reqs {
		seen[r.Object] = struct{}{}
	}
	return len(reqs) - len(seen)
}

// FCFSObject loads the group holding the oldest pending object request —
// the fairness-first policy current CSD firmware uses (§4.4). It produces
// many unwarranted switches because it ignores which requests belong to
// the same query.
type FCFSObject struct{}

// NewFCFSObject returns the object-level FCFS scheduler.
func NewFCFSObject() FCFSObject { return FCFSObject{} }

func (FCFSObject) Name() string { return "fcfs-object" }

func (FCFSObject) NextGroup(loaded int, pending map[int][]*Request, _ func(string) int) int {
	best, bestSeq := -1, int(^uint(0)>>1)
	for _, g := range sortedGroups(loaded, pending) {
		for _, r := range pending[g] {
			if r.seq < bestSeq {
				best, bestSeq = g, r.seq
			}
		}
	}
	return best
}

// FCFSQuery services queries in arrival order: the next group is the one
// holding data for the query whose oldest pending request is globally
// oldest. Fair across tenants but inefficient: it cannot merge requests
// across queries (§4.4).
type FCFSQuery struct{}

// NewFCFSQuery returns the query-level FCFS scheduler.
func NewFCFSQuery() FCFSQuery { return FCFSQuery{} }

func (FCFSQuery) Name() string { return "fcfs-query" }

func (FCFSQuery) NextGroup(loaded int, pending map[int][]*Request, _ func(string) int) int {
	// Oldest pending request per query, then oldest query overall.
	oldestPerQuery := make(map[string]int)
	for g, reqs := range pending {
		if g == loaded {
			continue
		}
		for _, r := range reqs {
			if cur, ok := oldestPerQuery[r.QueryID]; !ok || r.seq < cur {
				oldestPerQuery[r.QueryID] = r.seq
			}
		}
	}
	bestQuery, bestSeq := "", int(^uint(0)>>1)
	for q, seq := range oldestPerQuery {
		if seq < bestSeq || (seq == bestSeq && q < bestQuery) {
			bestQuery, bestSeq = q, seq
		}
	}
	// Load the group holding that query's oldest pending request.
	best, bestReqSeq := -1, int(^uint(0)>>1)
	for _, g := range sortedGroups(loaded, pending) {
		for _, r := range pending[g] {
			if r.QueryID == bestQuery && r.seq < bestReqSeq {
				best, bestReqSeq = g, r.seq
			}
		}
	}
	return best
}

// MaxQueries loads the group with the most distinct pending queries — the
// throughput-optimal tertiary-storage policy (within 2% of optimal, [35])
// — but can starve groups with few queries.
type MaxQueries struct{}

// NewMaxQueries returns the efficiency-only scheduler.
func NewMaxQueries() MaxQueries { return MaxQueries{} }

func (MaxQueries) Name() string { return "max-queries" }

func (MaxQueries) NextGroup(loaded int, pending map[int][]*Request, _ func(string) int) int {
	best, bestN := -1, -1
	for _, g := range sortedGroups(loaded, pending) {
		if n := distinctQueries(pending[g]); n > bestN {
			best, bestN = g, n
		}
	}
	return best
}

// RankBased implements the paper's scheduler: each candidate group g gets
// rank R(g) = Ng + K·Σ Wq(g), where Ng is the number of distinct queries
// with pending data on g and Wq is the number of switches since query q
// was last serviced. K=1 maximizes fairness while preserving the
// Max-Queries behaviour for equal waiting times (§4.4). The scheduler is
// coalesce-aware: among equally ranked groups with the same query count
// it prefers the one where more pending requests collapse onto shared
// transfers (duplicate objects), i.e. the group that serves its demand
// with the fewest transfers.
type RankBased struct {
	K float64
}

// NewRankBased returns the rank scheduler with scaling factor k.
func NewRankBased(k float64) *RankBased { return &RankBased{K: k} }

func (s *RankBased) Name() string { return "rank-based" }

func (s *RankBased) NextGroup(loaded int, pending map[int][]*Request, waiting func(string) int) int {
	best, bestRank, bestN, bestCoal := -1, -1.0, -1, -1
	for _, g := range sortedGroups(loaded, pending) {
		queries := make(map[string]struct{})
		for _, r := range pending[g] {
			queries[r.QueryID] = struct{}{}
		}
		sumWait := 0
		for q := range queries {
			sumWait += waiting(q)
		}
		rank := float64(len(queries)) + s.K*float64(sumWait)
		coal := coalescedRequests(pending[g])
		// Tie-break on Ng (efficiency), then on coalesced requests (a
		// duplicate-heavy group serves the same demand with fewer
		// transfers), then on group id (determinism).
		if rank > bestRank ||
			(rank == bestRank && len(queries) > bestN) ||
			(rank == bestRank && len(queries) == bestN && coal > bestCoal) {
			best, bestRank, bestN, bestCoal = g, rank, len(queries), coal
		}
	}
	return best
}
