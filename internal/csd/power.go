package csd

import "time"

// PowerModel captures the MAID energy characteristics that motivate cold
// storage devices (§2.2): only one disk group draws full power at a time,
// in-rack cooling and power are right-provisioned to that group, and
// group switches pay a spin-up surge.
type PowerModel struct {
	// IdleWatts is the rack's base draw (controllers, network, spun-down
	// disks).
	IdleWatts float64
	// GroupActiveWatts is the extra draw of one spun-up disk group.
	GroupActiveWatts float64
	// SwitchJoules is the spin-down + spin-up energy of a group switch.
	SwitchJoules float64
}

// Energy estimates the device's energy consumption over a run of the
// given makespan: base draw throughout, one active group whenever not
// mid-switch, plus the per-switch surge. The estimate assumes a group is
// loaded for the whole run (the emulator's first load is free).
func (pm PowerModel) Energy(st Stats, makespan time.Duration) float64 {
	var switching time.Duration
	for _, iv := range st.SwitchIntervals {
		switching += iv.To - iv.From
	}
	active := makespan - switching
	if active < 0 {
		active = 0
	}
	return pm.IdleWatts*makespan.Seconds() +
		pm.GroupActiveWatts*active.Seconds() +
		pm.SwitchJoules*float64(st.GroupSwitches)
}

// JBODEnergy estimates the same rack with every group spun up for the
// whole run — the always-on configuration a CSD replaces. Comparing it
// with Energy quantifies the MAID saving (Facebook reports cold storage
// cutting expenses by a third over conventional online storage, §7).
func (pm PowerModel) JBODEnergy(groups int, makespan time.Duration) float64 {
	return (pm.IdleWatts + pm.GroupActiveWatts*float64(groups)) * makespan.Seconds()
}

// Device presets. Figures follow the paper's descriptions (§2.2): all are
// behaviourally identical MAID arrays differing in capacity, switch
// latency and streaming rate.

// Pelican returns a configuration modeled on Microsoft Pelican: 1,152 SMR
// disks, 8 % spun up, 8 s group switch, saturates a 10 GbE link.
func Pelican() Config {
	cfg := DefaultConfig()
	cfg.GroupSwitch = 8 * time.Second
	cfg.Bandwidth = 1e9
	return cfg
}

// OpenVaultKnox returns a configuration modeled on Facebook's OpenVault
// Knox: 30 SMR disks per 2U chassis, one spun up at a time (vibration),
// single-disk streaming rate.
func OpenVaultKnox() Config {
	cfg := DefaultConfig()
	cfg.GroupSwitch = 15 * time.Second
	cfg.Bandwidth = 180e6
	return cfg
}

// ArcticBlue returns a configuration modeled on Spectra ArcticBlue
// ($0.1/GB deep storage disk): 10 s switch, near-line streaming rate.
func ArcticBlue() Config {
	cfg := DefaultConfig()
	cfg.GroupSwitch = 10 * time.Second
	cfg.Bandwidth = 1e9
	return cfg
}

// PelicanPower is a representative power model for a Pelican-class rack:
// ~2 kW base, ~1.1 kW per active group of 96 drives, ~5 kJ surge per
// switch (spin-up of 96 drives for several seconds).
func PelicanPower() PowerModel {
	return PowerModel{IdleWatts: 2000, GroupActiveWatts: 1100, SwitchJoules: 5000}
}
