package csd

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/segment"
	"repro/internal/vtime"
)

// TestDuplicateRequestsCoalesced pins the duplicate-transfer fix: N
// pending requests for the same object while its group is loaded cost
// exactly one transfer (one BytesServed charge, one transfer time) and N
// deliveries, all at the transfer's completion instant.
func TestDuplicateRequestsCoalesced(t *testing.T) {
	obj := oid(0, "a", 0)
	rig := newRig(DefaultConfig(), map[segment.ObjectID]int{obj: 0})
	type got struct {
		tenant int
		at     time.Duration
	}
	var deliveries []got
	done := vtime.NewChan[int](rig.sim, "done", 3)
	// Three requesters: two queries of tenant 0 plus one of tenant 1, all
	// for the same object, all pending before the first dispatch.
	for i, req := range []struct {
		tenant int
		query  string
	}{{0, "q1"}, {0, "q2"}, {1, "q3"}} {
		i, req := i, req
		rig.sim.Spawn(fmt.Sprintf("client%d", i), func(p *vtime.Proc) {
			reply := vtime.NewChan[Delivery](rig.sim, fmt.Sprintf("reply%d", i), 4)
			rig.csd.Submit(p, &Request{Object: obj, QueryID: req.query, Tenant: req.tenant, Reply: reply})
			d := reply.Recv(p)
			if d.Err != nil {
				t.Errorf("client %d: delivery error %v", i, d.Err)
			}
			deliveries = append(deliveries, got{req.tenant, p.Now()})
			done.Send(p, i)
		})
	}
	rig.sim.Spawn("coordinator", func(p *vtime.Proc) {
		for i := 0; i < 3; i++ {
			done.Recv(p)
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	if st.BytesServed != 1e9 {
		t.Fatalf("BytesServed = %d, want one 1 GB transfer", st.BytesServed)
	}
	if st.GetsCoalesced != 2 {
		t.Fatalf("GetsCoalesced = %d, want 2", st.GetsCoalesced)
	}
	if st.GetsReceived != 3 || st.ObjectsServed != 3 {
		t.Fatalf("received %d served %d, want 3 and 3", st.GetsReceived, st.ObjectsServed)
	}
	if len(deliveries) != 3 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	// All three deliveries land when the single transfer completes (10 s
	// at 100 MB/s for 1 GB), not serialized at 10/20/30 s.
	for _, d := range deliveries {
		if d.at != 10*time.Second {
			t.Errorf("delivery for tenant %d at %v, want 10s", d.tenant, d.at)
		}
	}
}

// TestCoalescedAcrossQueriesOneTenant exercises the single-tenant shape
// of the bug: the same query stream asking twice for an object must not
// pay twice.
func TestCoalescedAcrossQueriesOneTenant(t *testing.T) {
	obj := oid(0, "a", 0)
	other := oid(0, "b", 0)
	rig := newRig(DefaultConfig(), map[segment.ObjectID]int{obj: 0, other: 0})
	var times []time.Duration
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 8)
		rig.csd.Submit(p,
			&Request{Object: obj, QueryID: "q1", Tenant: 0, Reply: reply},
			&Request{Object: other, QueryID: "q1", Tenant: 0, Reply: reply},
			&Request{Object: obj, QueryID: "q2", Tenant: 0, Reply: reply},
		)
		for i := 0; i < 3; i++ {
			reply.Recv(p)
			times = append(times, p.Now())
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	if st.BytesServed != 2e9 {
		t.Fatalf("BytesServed = %d, want two transfers for two distinct objects", st.BytesServed)
	}
	if st.GetsCoalesced != 1 {
		t.Fatalf("GetsCoalesced = %d, want 1", st.GetsCoalesced)
	}
	// Two transfers on one serialized stream: 10 s and 20 s; the
	// coalesced delivery rides the first.
	want := []time.Duration{10 * time.Second, 10 * time.Second, 20 * time.Second}
	if len(times) != 3 {
		t.Fatalf("deliveries = %d", len(times))
	}
	for i, at := range times {
		if at != want[i] {
			t.Errorf("delivery %d at %v, want %v", i, at, want[i])
		}
	}
}

// TestLateRequestJoinsInFlightTransfer pins the in-flight half of the
// duplicate-transfer fix: a same-object request arriving while the
// object's transfer is already running rides that transfer — one
// BytesServed charge, delivery at the original completion time — rather
// than paying a second full transfer.
func TestLateRequestJoinsInFlightTransfer(t *testing.T) {
	obj := oid(0, "a", 0)
	rig := newRig(DefaultConfig(), map[segment.ObjectID]int{obj: 0})
	var atA, atB time.Duration
	done := vtime.NewChan[int](rig.sim, "done", 2)
	rig.sim.Spawn("clientA", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "replyA", 4)
		rig.csd.Submit(p, &Request{Object: obj, QueryID: "q1", Tenant: 0, Reply: reply})
		reply.Recv(p)
		atA = p.Now()
		done.Send(p, 0)
	})
	rig.sim.Spawn("clientB", func(p *vtime.Proc) {
		// Arrive 4 s into client A's 10 s transfer.
		p.Sleep(4 * time.Second)
		reply := vtime.NewChan[Delivery](rig.sim, "replyB", 4)
		rig.csd.Submit(p, &Request{Object: obj, QueryID: "q2", Tenant: 1, Reply: reply})
		reply.Recv(p)
		atB = p.Now()
		done.Send(p, 1)
	})
	rig.sim.Spawn("coordinator", func(p *vtime.Proc) {
		done.Recv(p)
		done.Recv(p)
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	if st.BytesServed != 1e9 {
		t.Fatalf("BytesServed = %d, want one transfer", st.BytesServed)
	}
	if st.GetsCoalesced != 1 || st.ObjectsServed != 2 {
		t.Fatalf("coalesced %d served %d, want 1 and 2", st.GetsCoalesced, st.ObjectsServed)
	}
	if atA != 10*time.Second || atB != 10*time.Second {
		t.Fatalf("deliveries at %v and %v, want both at 10s", atA, atB)
	}
}

// TestRequestAfterTransferCompletesPaysItsOwn bounds the ride-along
// window: a same-object request arriving after the transfer completed
// is a fresh fetch (the bytes are gone from the device's hands — reuse
// beyond this point is the segment cache's job).
func TestRequestAfterTransferCompletesPaysItsOwn(t *testing.T) {
	obj := oid(0, "a", 0)
	rig := newRig(DefaultConfig(), map[segment.ObjectID]int{obj: 0})
	done := vtime.NewChan[int](rig.sim, "done", 2)
	rig.sim.Spawn("clientA", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "replyA", 4)
		rig.csd.Submit(p, &Request{Object: obj, QueryID: "q1", Tenant: 0, Reply: reply})
		reply.Recv(p)
		done.Send(p, 0)
	})
	rig.sim.Spawn("clientB", func(p *vtime.Proc) {
		p.Sleep(15 * time.Second) // well past the 10 s transfer
		reply := vtime.NewChan[Delivery](rig.sim, "replyB", 4)
		rig.csd.Submit(p, &Request{Object: obj, QueryID: "q2", Tenant: 1, Reply: reply})
		reply.Recv(p)
		done.Send(p, 1)
	})
	rig.sim.Spawn("coordinator", func(p *vtime.Proc) {
		done.Recv(p)
		done.Recv(p)
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	if st.BytesServed != 2e9 || st.GetsCoalesced != 0 {
		t.Fatalf("bytes %d coalesced %d, want two full transfers", st.BytesServed, st.GetsCoalesced)
	}
}

// badScheduler violates the NextGroup contract in a configurable way.
type badScheduler struct {
	mode string // "minus1", "loaded", "empty"
}

func (b badScheduler) Name() string { return "bad-" + b.mode }

func (b badScheduler) NextGroup(loaded int, pending map[int][]*Request, _ func(string) int) int {
	switch b.mode {
	case "minus1":
		return -1
	case "loaded":
		return loaded
	default: // a group id guaranteed to hold no pending requests
		return 1 << 20
	}
}

// TestMisbehavingSchedulerFailsTyped pins the scheduler-contract fix: a
// policy returning -1, the loaded group, or a group without pending
// requests must fail the run with a *SchedulerContractError delivered to
// the waiting clients instead of corrupting it.
func TestMisbehavingSchedulerFailsTyped(t *testing.T) {
	for _, mode := range []string{"minus1", "loaded", "empty"} {
		t.Run(mode, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheduler = badScheduler{mode: mode}
			a, b := oid(0, "a", 0), oid(0, "b", 0)
			rig := newRig(cfg, map[segment.ObjectID]int{a: 0, b: 1})
			var errs []error
			rig.sim.Spawn("client", func(p *vtime.Proc) {
				reply := vtime.NewChan[Delivery](rig.sim, "reply", 4)
				// First object loads group 0 for free; the second forces a
				// switch decision, which the bad scheduler botches.
				rig.csd.Submit(p,
					&Request{Object: a, QueryID: "q1", Tenant: 0, Reply: reply},
					&Request{Object: b, QueryID: "q1", Tenant: 0, Reply: reply},
				)
				for i := 0; i < 2; i++ {
					if d := reply.Recv(p); d.Err != nil {
						errs = append(errs, d.Err)
					}
				}
				// A request submitted after the fail-stop errors immediately.
				rig.csd.Submit(p, &Request{Object: a, QueryID: "q2", Tenant: 0, Reply: reply})
				if d := reply.Recv(p); d.Err != nil {
					errs = append(errs, d.Err)
				}
				rig.csd.Shutdown(p)
			})
			if err := rig.sim.Run(); err != nil {
				t.Fatal(err)
			}
			if len(errs) != 2 {
				t.Fatalf("error deliveries = %d, want 2 (stranded + post-failure)", len(errs))
			}
			for _, err := range errs {
				var sce *SchedulerContractError
				if !errors.As(err, &sce) {
					t.Fatalf("delivery error %v is not a SchedulerContractError", err)
				}
				if sce.Scheduler != "bad-"+mode {
					t.Errorf("error names scheduler %q", sce.Scheduler)
				}
			}
			var sce *SchedulerContractError
			if !errors.As(rig.csd.Err(), &sce) {
				t.Fatalf("CSD.Err() = %v, want SchedulerContractError", rig.csd.Err())
			}
			if rig.csd.Stats().GroupSwitches != 0 {
				t.Errorf("switches = %d after contract violation, want 0", rig.csd.Stats().GroupSwitches)
			}
		})
	}
}

// TestRankBasedPrefersCoalescableGroup pins the coalesce-aware tie-break:
// with rank and query count equal, the group whose pending requests
// collapse onto fewer transfers wins.
func TestRankBasedPrefersCoalescableGroup(t *testing.T) {
	s := NewRankBased(1)
	waiting := func(string) int { return 0 }
	mk := func(table string, idx int, q string) *Request {
		// A shared dataset: the object ids name tenant 0's data even when
		// different clients (Request.Tenant) ask for them.
		return &Request{Object: oid(0, table, idx), QueryID: q}
	}
	pending := map[int][]*Request{
		// Group 1: two queries, two distinct objects — two transfers.
		1: {mk("a", 0, "q1"), mk("a", 1, "q2")},
		// Group 2: two queries, one shared object — one transfer.
		2: {mk("b", 0, "q3"), mk("b", 0, "q4")},
	}
	if got := s.NextGroup(0, pending, waiting); got != 2 {
		t.Fatalf("NextGroup = %d, want the coalescable group 2", got)
	}
	// Sanity: with no duplicates anywhere the earlier group still wins
	// the id tie-break, so existing behaviour is unchanged.
	pending[2] = []*Request{mk("b", 0, "q3"), mk("b", 1, "q4")}
	if got := s.NextGroup(0, pending, waiting); got != 1 {
		t.Fatalf("NextGroup = %d, want group 1 on pure id tie-break", got)
	}
}

// TestPrefetchDemandRaceCoalesced pins the prefetch contract at the
// device: a speculative prefetch GET and the demand GET for the same
// object — same tenant, distinct reply channels, the shape the client
// proxy's prefetcher produces — collapse onto one transfer. One
// BytesServed charge, both deliveries at the transfer's completion.
func TestPrefetchDemandRaceCoalesced(t *testing.T) {
	obj := oid(0, "a", 0)
	rig := newRig(DefaultConfig(), map[segment.ObjectID]int{obj: 0})
	var atPrefetch, atDemand time.Duration
	done := vtime.NewChan[int](rig.sim, "done", 2)
	rig.sim.Spawn("prefetcher", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply.prefetch", 4)
		rig.csd.Submit(p, &Request{Object: obj, QueryID: "q1", Tenant: 0, Reply: reply})
		if d := reply.Recv(p); d.Err != nil {
			t.Errorf("prefetch delivery error: %v", d.Err)
		}
		atPrefetch = p.Now()
		done.Send(p, 0)
	})
	rig.sim.Spawn("demand", func(p *vtime.Proc) {
		// The query reaches the segment 3 s into the prefetch's transfer.
		p.Sleep(3 * time.Second)
		reply := vtime.NewChan[Delivery](rig.sim, "reply.demand", 4)
		rig.csd.Submit(p, &Request{Object: obj, QueryID: "q1", Tenant: 0, Reply: reply})
		if d := reply.Recv(p); d.Err != nil {
			t.Errorf("demand delivery error: %v", d.Err)
		}
		atDemand = p.Now()
		done.Send(p, 1)
	})
	rig.sim.Spawn("coordinator", func(p *vtime.Proc) {
		done.Recv(p)
		done.Recv(p)
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	if st.BytesServed != 1e9 {
		t.Fatalf("BytesServed = %d, want exactly one charge for the prefetch+demand pair", st.BytesServed)
	}
	if st.GetsCoalesced != 1 || st.GetsReceived != 2 || st.ObjectsServed != 2 {
		t.Fatalf("coalesced %d received %d served %d, want 1/2/2",
			st.GetsCoalesced, st.GetsReceived, st.ObjectsServed)
	}
	if atPrefetch != 10*time.Second || atDemand != 10*time.Second {
		t.Fatalf("deliveries at %v and %v, want both at 10s", atPrefetch, atDemand)
	}
}

// TestLoadedAndPredictedGroup pins the advisory scheduler views the
// prefetcher aims with: LoadedGroup tracks the spun-up group and
// PredictNextGroup mirrors the scheduler's next pick without switching.
func TestLoadedAndPredictedGroup(t *testing.T) {
	a, b := oid(0, "a", 0), oid(0, "b", 0)
	rig := newRig(DefaultConfig(), map[segment.ObjectID]int{a: 0, b: 1})
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		if g := rig.csd.LoadedGroup(); g != -1 {
			t.Errorf("LoadedGroup before first load = %d, want -1", g)
		}
		if g, ok := rig.csd.PredictNextGroup(); ok {
			t.Errorf("PredictNextGroup with empty pending = (%d, true), want no prediction", g)
		}
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 4)
		rig.csd.Submit(p,
			&Request{Object: a, QueryID: "q1", Tenant: 0, Reply: reply},
			&Request{Object: b, QueryID: "q1", Tenant: 0, Reply: reply},
		)
		// 1 s into a's 10 s transfer: group 0 is loaded, b is pending on
		// group 1 — the only possible next pick.
		p.Sleep(time.Second)
		if g := rig.csd.LoadedGroup(); g != 0 {
			t.Errorf("LoadedGroup mid-transfer = %d, want 0", g)
		}
		if g, ok := rig.csd.PredictNextGroup(); !ok || g != 1 {
			t.Errorf("PredictNextGroup = (%d, %v), want (1, true)", g, ok)
		}
		reply.Recv(p)
		reply.Recv(p)
		if g := rig.csd.LoadedGroup(); g != 1 {
			t.Errorf("LoadedGroup after switch = %d, want 1", g)
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sw := rig.csd.Stats().GroupSwitches; sw != 1 {
		t.Fatalf("switches = %d, want 1", sw)
	}
}
