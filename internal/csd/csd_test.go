package csd

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/segment"
	"repro/internal/vtime"
)

// testRig wires a CSD over an in-memory store for scheduler/latency tests.
type testRig struct {
	sim    *vtime.Sim
	csd    *CSD
	store  map[segment.ObjectID]*segment.Segment
	assign *layout.Assignment
}

// oid builds an object id.
func oid(tenant int, table string, idx int) segment.ObjectID {
	return segment.ObjectID{Tenant: tenant, Table: table, Index: idx}
}

// newRig creates a rig; objects maps id->group; every object is 1 GB so a
// transfer takes 10 s at the default 100 MB/s.
func newRig(cfg Config, objects map[segment.ObjectID]int) *testRig {
	sim := vtime.NewSim()
	store := make(map[segment.ObjectID]*segment.Segment)
	maxGroup := 0
	for _, g := range objects {
		if g > maxGroup {
			maxGroup = g
		}
	}
	assign := layout.MustAssignment(maxGroup + 1)
	for id, g := range objects {
		store[id] = &segment.Segment{ID: id, NominalBytes: 1e9}
		assign.Place(id, g)
	}
	c := New(sim, cfg, store, assign)
	c.Start()
	return &testRig{sim: sim, csd: c, store: store, assign: assign}
}

// arrival records one delivery.
type arrival struct {
	obj segment.ObjectID
	at  time.Duration
}

func TestSingleClientSingleGroupNoSwitches(t *testing.T) {
	objs := map[segment.ObjectID]int{
		oid(0, "a", 0): 0,
		oid(0, "a", 1): 0,
		oid(0, "b", 0): 0,
	}
	rig := newRig(DefaultConfig(), objs)
	var got []arrival
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 16)
		for id := range objs {
			rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		}
		for i := 0; i < len(objs); i++ {
			d := reply.Recv(p)
			got = append(got, arrival{d.Object, p.Now()})
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	if st.GroupSwitches != 0 {
		t.Fatalf("switches = %d, want 0", st.GroupSwitches)
	}
	if st.ObjectsServed != 3 {
		t.Fatalf("served = %d", st.ObjectsServed)
	}
	// Serialized per-tenant stream: deliveries at 10, 20, 30 s.
	for i, a := range got {
		want := time.Duration(i+1) * 10 * time.Second
		if a.at != want {
			t.Errorf("delivery %d at %v, want %v", i, a.at, want)
		}
	}
}

func TestGroupServicedFullyBeforeSwitch(t *testing.T) {
	// Tenant 0 on group 0 (2 objects), tenant 1 on group 1 (2 objects).
	objs := map[segment.ObjectID]int{
		oid(0, "a", 0): 0,
		oid(0, "a", 1): 0,
		oid(1, "a", 0): 1,
		oid(1, "a", 1): 1,
	}
	rig := newRig(DefaultConfig(), objs)
	finish := make(map[int]time.Duration)
	done := vtime.NewChan[int](rig.sim, "done", 2)
	for tenant := 0; tenant < 2; tenant++ {
		tenant := tenant
		rig.sim.Spawn(fmt.Sprintf("client%d", tenant), func(p *vtime.Proc) {
			reply := vtime.NewChan[Delivery](rig.sim, fmt.Sprintf("reply%d", tenant), 16)
			for i := 0; i < 2; i++ {
				rig.csd.Submit(p, &Request{Object: oid(tenant, "a", i), QueryID: fmt.Sprintf("q%d", tenant), Tenant: tenant, Reply: reply})
			}
			for i := 0; i < 2; i++ {
				reply.Recv(p)
			}
			finish[tenant] = p.Now()
			done.Send(p, tenant)
		})
	}
	rig.sim.Spawn("coordinator", func(p *vtime.Proc) {
		done.Recv(p)
		done.Recv(p)
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	if st.GroupSwitches != 1 {
		t.Fatalf("switches = %d, want 1", st.GroupSwitches)
	}
	// Group 0 (first client to submit) fully served by 20 s; then a 10 s
	// switch; group 1 served by 20+10+20 = 50 s.
	if finish[0] != 20*time.Second {
		t.Errorf("tenant 0 finished at %v, want 20s", finish[0])
	}
	if finish[1] != 50*time.Second {
		t.Errorf("tenant 1 finished at %v, want 50s", finish[1])
	}
	if len(st.SwitchIntervals) != 1 || st.SwitchIntervals[0] != (Interval{From: 20 * time.Second, To: 30 * time.Second}) {
		t.Errorf("switch intervals %v", st.SwitchIntervals)
	}
}

func TestSemanticRoundRobinOrdering(t *testing.T) {
	objs := map[segment.ObjectID]int{
		oid(0, "a", 0): 0,
		oid(0, "a", 1): 0,
		oid(0, "b", 0): 0,
		oid(0, "b", 1): 0,
	}
	rig := newRig(DefaultConfig(), objs)
	var order []string
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 16)
		// Submit all of a, then all of b — MJoin's natural issue order.
		for _, id := range []segment.ObjectID{oid(0, "a", 0), oid(0, "a", 1), oid(0, "b", 0), oid(0, "b", 1)} {
			rig.csd.Submit(p, &Request{Object: id, QueryID: "q", Tenant: 0, Reply: reply})
		}
		for i := 0; i < 4; i++ {
			d := reply.Recv(p)
			order = append(order, fmt.Sprintf("%s.%d", d.Object.Table, d.Object.Index))
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[a.0 b.0 a.1 b.1]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("delivery order %v, want %v", got, want)
	}
}

func TestSequentialOrdering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Order = SequentialOrder
	objs := map[segment.ObjectID]int{
		oid(0, "a", 0): 0,
		oid(0, "a", 1): 0,
		oid(0, "b", 0): 0,
	}
	rig := newRig(cfg, objs)
	var order []string
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 16)
		for _, id := range []segment.ObjectID{oid(0, "a", 0), oid(0, "a", 1), oid(0, "b", 0)} {
			rig.csd.Submit(p, &Request{Object: id, QueryID: "q", Tenant: 0, Reply: reply})
		}
		for i := 0; i < 3; i++ {
			d := reply.Recv(p)
			order = append(order, fmt.Sprintf("%s.%d", d.Object.Table, d.Object.Index))
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(order); got != "[a.0 a.1 b.0]" {
		t.Fatalf("delivery order %v", got)
	}
}

func TestTransferTimeProportionalToSize(t *testing.T) {
	sim := vtime.NewSim()
	id := oid(0, "a", 0)
	store := map[segment.ObjectID]*segment.Segment{
		id: {ID: id, NominalBytes: 250e6}, // 2.5 s at 100 MB/s
	}
	assign := layout.MustAssignment(1)
	assign.Place(id, 0)
	c := New(sim, DefaultConfig(), store, assign)
	c.Start()
	var at time.Duration
	sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](sim, "reply", 1)
		c.Submit(p, &Request{Object: id, QueryID: "q", Tenant: 0, Reply: reply})
		reply.Recv(p)
		at = p.Now()
		c.Shutdown(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 2500*time.Millisecond {
		t.Fatalf("delivery at %v, want 2.5s", at)
	}
}

func TestParallelStreamsAcrossTenants(t *testing.T) {
	// Two tenants, both on group 0: their transfers proceed in parallel
	// (independent streams), so both finish at 10 s.
	objs := map[segment.ObjectID]int{
		oid(0, "a", 0): 0,
		oid(1, "a", 0): 0,
	}
	rig := newRig(DefaultConfig(), objs)
	finish := make(map[int]time.Duration)
	done := vtime.NewChan[int](rig.sim, "done", 2)
	for tenant := 0; tenant < 2; tenant++ {
		tenant := tenant
		rig.sim.Spawn(fmt.Sprintf("client%d", tenant), func(p *vtime.Proc) {
			reply := vtime.NewChan[Delivery](rig.sim, fmt.Sprintf("r%d", tenant), 1)
			rig.csd.Submit(p, &Request{Object: oid(tenant, "a", 0), QueryID: fmt.Sprintf("q%d", tenant), Tenant: tenant, Reply: reply})
			reply.Recv(p)
			finish[tenant] = p.Now()
			done.Send(p, tenant)
		})
	}
	rig.sim.Spawn("coord", func(p *vtime.Proc) {
		done.Recv(p)
		done.Recv(p)
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if finish[0] != 10*time.Second || finish[1] != 10*time.Second {
		t.Fatalf("finishes %v, want both 10s", finish)
	}
}

func TestUnknownObjectPanics(t *testing.T) {
	rig := newRig(DefaultConfig(), map[segment.ObjectID]int{oid(0, "a", 0): 0})
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Submit of unknown object did not panic")
			}
			rig.csd.Shutdown(p)
		}()
		reply := vtime.NewChan[Delivery](rig.sim, "r", 1)
		rig.csd.Submit(p, &Request{Object: oid(9, "zz", 9), QueryID: "q", Tenant: 9, Reply: reply})
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// schedScenario exercises NextGroup directly with synthetic pending maps.
func req(seq int, query string, tenant int) *Request {
	return &Request{QueryID: query, Tenant: tenant, seq: seq}
}

func TestFCFSObjectPicksOldest(t *testing.T) {
	pending := map[int][]*Request{
		1: {req(5, "q1", 0)},
		2: {req(2, "q2", 1)},
		3: {req(9, "q3", 2)},
	}
	if g := NewFCFSObject().NextGroup(0, pending, nil); g != 2 {
		t.Fatalf("fcfs-object picked %d, want 2", g)
	}
}

func TestFCFSQueryFollowsOldestQuery(t *testing.T) {
	// q1 arrived first (seq 1) and has data on groups 2 and 3; its oldest
	// pending request (seq 1) is on group 3.
	pending := map[int][]*Request{
		2: {req(4, "q1", 0), req(2, "q2", 1)},
		3: {req(1, "q1", 0)},
	}
	if g := NewFCFSQuery().NextGroup(0, pending, nil); g != 3 {
		t.Fatalf("fcfs-query picked %d, want 3", g)
	}
}

func TestMaxQueriesPicksBusiestGroup(t *testing.T) {
	pending := map[int][]*Request{
		1: {req(1, "q1", 0), req(2, "q1", 0)},                  // 1 query, 2 requests
		2: {req(3, "q2", 1), req(4, "q3", 2)},                  // 2 queries
		3: {req(5, "q4", 3)},                                   // 1 query
		0: {req(0, "q5", 4), req(6, "q6", 5), req(7, "q7", 6)}, // loaded: excluded
	}
	if g := NewMaxQueries().NextGroup(0, pending, nil); g != 2 {
		t.Fatalf("max-queries picked %d, want 2", g)
	}
}

func TestRankBasedBalancesWaitAndCount(t *testing.T) {
	pending := map[int][]*Request{
		1: {req(1, "q1", 0), req(2, "q2", 1)}, // Ng=2, no waiting
		2: {req(3, "q3", 2)},                  // Ng=1, long wait
	}
	wait := func(q string) int {
		if q == "q3" {
			return 4
		}
		return 0
	}
	s := NewRankBased(1)
	// R(1) = 2, R(2) = 1 + 4 = 5: the starving group wins.
	if g := s.NextGroup(0, pending, wait); g != 2 {
		t.Fatalf("rank picked %d, want 2", g)
	}
	// With K=0 the scheduler degenerates to Max-Queries.
	if g := NewRankBased(0).NextGroup(0, pending, wait); g != 1 {
		t.Fatalf("rank(K=0) picked %d, want 1", g)
	}
}

func TestRankBasedTieBreaksOnQueryCount(t *testing.T) {
	pending := map[int][]*Request{
		1: {req(1, "q1", 0)},                  // Ng=1, wait 1 => R=2
		2: {req(2, "q2", 1), req(3, "q3", 2)}, // Ng=2, wait 0 => R=2
	}
	wait := func(q string) int {
		if q == "q1" {
			return 1
		}
		return 0
	}
	if g := NewRankBased(1).NextGroup(0, pending, wait); g != 2 {
		t.Fatalf("rank tie-break picked %d, want 2 (higher Ng)", g)
	}
}

func TestVanillaPullPattern(t *testing.T) {
	// Two tenants on distinct groups pulling one object at a time: every
	// consecutive pair of requests from a tenant is separated by two
	// switches (away and back), the paper's S·C·D pathology.
	objs := make(map[segment.ObjectID]int)
	const perTenant = 3
	for tenant := 0; tenant < 2; tenant++ {
		for i := 0; i < perTenant; i++ {
			objs[oid(tenant, "a", i)] = tenant
		}
	}
	rig := newRig(DefaultConfig(), objs)
	finish := make(map[int]time.Duration)
	done := vtime.NewChan[int](rig.sim, "done", 2)
	for tenant := 0; tenant < 2; tenant++ {
		tenant := tenant
		rig.sim.Spawn(fmt.Sprintf("client%d", tenant), func(p *vtime.Proc) {
			reply := vtime.NewChan[Delivery](rig.sim, fmt.Sprintf("r%d", tenant), 1)
			for i := 0; i < perTenant; i++ {
				rig.csd.Submit(p, &Request{Object: oid(tenant, "a", i), QueryID: fmt.Sprintf("q%d", tenant), Tenant: tenant, Reply: reply})
				reply.Recv(p)
				p.Sleep(time.Second) // think time before next pull
			}
			finish[tenant] = p.Now()
			done.Send(p, tenant)
		})
	}
	rig.sim.Spawn("coord", func(p *vtime.Proc) {
		done.Recv(p)
		done.Recv(p)
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	// Pull alternation forces a switch for nearly every object.
	if st.GroupSwitches < 2*perTenant-2 {
		t.Fatalf("switches = %d, want >= %d", st.GroupSwitches, 2*perTenant-2)
	}
}

func TestParallelIntraTenantStreams(t *testing.T) {
	// With 4 streams per tenant, 4 same-group objects transfer
	// concurrently: all delivered at 10 s instead of 40 s.
	cfg := DefaultConfig()
	cfg.StreamsPerTenant = 4
	objs := map[segment.ObjectID]int{
		oid(0, "a", 0): 0, oid(0, "a", 1): 0, oid(0, "a", 2): 0, oid(0, "a", 3): 0,
	}
	rig := newRig(cfg, objs)
	var last time.Duration
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 8)
		for i := 0; i < 4; i++ {
			rig.csd.Submit(p, &Request{Object: oid(0, "a", i), QueryID: "q", Tenant: 0, Reply: reply})
		}
		for i := 0; i < 4; i++ {
			reply.Recv(p)
			last = p.Now()
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 10*time.Second {
		t.Fatalf("last delivery at %v, want 10s with 4-way streams", last)
	}
}

func TestStatsGetCounts(t *testing.T) {
	objs := map[segment.ObjectID]int{
		oid(0, "a", 0): 0,
		oid(0, "a", 1): 0,
	}
	rig := newRig(DefaultConfig(), objs)
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "r", 4)
		// Re-request the same object: both GETs must be counted (request
		// reissue accounting for Figure 11b).
		rig.csd.Submit(p, &Request{Object: oid(0, "a", 0), QueryID: "q", Tenant: 0, Reply: reply})
		rig.csd.Submit(p, &Request{Object: oid(0, "a", 1), QueryID: "q", Tenant: 0, Reply: reply})
		reply.Recv(p)
		reply.Recv(p)
		rig.csd.Submit(p, &Request{Object: oid(0, "a", 0), QueryID: "q", Tenant: 0, Reply: reply})
		reply.Recv(p)
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := rig.csd.Stats()
	if st.GetsReceived != 3 || st.GetsByTenant[0] != 3 {
		t.Fatalf("GET counts: %+v", st)
	}
	if st.ServedByQuery["q"] != 3 {
		t.Fatalf("served by query: %v", st.ServedByQuery)
	}
	if st.BytesServed != 3e9 {
		t.Fatalf("bytes served %d", st.BytesServed)
	}
}
