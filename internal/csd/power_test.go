package csd

import (
	"testing"
	"time"
)

func TestEnergyAccounting(t *testing.T) {
	pm := PowerModel{IdleWatts: 100, GroupActiveWatts: 50, SwitchJoules: 1000}
	st := Stats{
		GroupSwitches: 2,
		SwitchIntervals: []Interval{
			{From: 10 * time.Second, To: 20 * time.Second},
			{From: 40 * time.Second, To: 50 * time.Second},
		},
	}
	// 100 s makespan: idle 100*100 + active 50*(100-20) + 2*1000 = 16000.
	got := pm.Energy(st, 100*time.Second)
	if got != 16000 {
		t.Fatalf("energy %v, want 16000", got)
	}
}

func TestEnergyZeroMakespan(t *testing.T) {
	pm := PelicanPower()
	if e := pm.Energy(Stats{}, 0); e != 0 {
		t.Fatalf("zero makespan energy %v", e)
	}
}

func TestJBODComparison(t *testing.T) {
	pm := PowerModel{IdleWatts: 100, GroupActiveWatts: 50}
	st := Stats{}
	csd := pm.Energy(st, time.Hour)
	jbod := pm.JBODEnergy(12, time.Hour)
	if jbod <= csd {
		t.Fatalf("JBOD (%v) should dominate MAID (%v)", jbod, csd)
	}
	// 12 groups always-on draws 100+600 W vs MAID's 150 W.
	if ratio := jbod / csd; ratio < 4 || ratio > 5 {
		t.Fatalf("saving ratio %.2f out of expected band", ratio)
	}
}

func TestPresetsSane(t *testing.T) {
	for _, cfg := range []Config{Pelican(), OpenVaultKnox(), ArcticBlue()} {
		if cfg.GroupSwitch <= 0 || cfg.Bandwidth <= 0 || cfg.Scheduler == nil {
			t.Fatalf("bad preset %+v", cfg)
		}
	}
	if Pelican().GroupSwitch != 8*time.Second {
		t.Fatal("Pelican switch latency")
	}
	if OpenVaultKnox().Bandwidth >= Pelican().Bandwidth {
		t.Fatal("Knox should stream slower than Pelican")
	}
}
