package csd

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/segment"
	"repro/internal/tuple"
	"repro/internal/vtime"
)

// newFaultRig is newRig with a fault plan attached.
func newFaultRig(t *testing.T, plan faults.Plan, objects map[segment.ObjectID]int) *testRig {
	t.Helper()
	cfg := DefaultConfig()
	inj, err := faults.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = inj
	return newRig(cfg, objects)
}

// A transient plan at rate 1.0 with cap 2 fails exactly the first two
// transfers of an object; the third lands. Failed transfers charge no
// bytes.
func TestTransientFailuresThenSuccess(t *testing.T) {
	id := oid(0, "a", 0)
	rig := newFaultRig(t, faults.Plan{Seed: 1, TransientRate: 1.0, MaxFaultsPerObject: 2},
		map[segment.ObjectID]int{id: 0})
	var errs []error
	var served *segment.Segment
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 16)
		for {
			rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
			d := reply.Recv(p)
			if d.Err == nil {
				served = d.Seg
				break
			}
			errs = append(errs, d.Err)
			if len(errs) > 5 {
				break
			}
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 {
		t.Fatalf("got %d transient errors, want 2: %v", len(errs), errs)
	}
	for i, err := range errs {
		var te *TransientError
		if !errors.As(err, &te) {
			t.Fatalf("error %d is %T, want *TransientError", i, err)
		}
		if te.Object != id || te.Attempt != i+1 {
			t.Fatalf("error %d: %+v", i, te)
		}
		if !IsRetryable(err) {
			t.Fatalf("transient error not retryable")
		}
	}
	if served == nil {
		t.Fatalf("object never served")
	}
	st := rig.csd.Stats()
	if st.TransientFaults != 2 {
		t.Fatalf("TransientFaults = %d, want 2", st.TransientFaults)
	}
	// Only the successful transfer charges bytes; the failed attempts
	// spent time, not bandwidth accounting.
	if st.BytesServed != 1e9 {
		t.Fatalf("BytesServed = %d, want 1e9", st.BytesServed)
	}
	if st.GetsReceived != 3 {
		t.Fatalf("GetsReceived = %d, want 3", st.GetsReceived)
	}
}

// A transient failure of a coalesced transfer fans out to the carrier
// and every follower — nobody hangs, everybody can retry.
func TestTransientErrorFansOutToFollowers(t *testing.T) {
	id := oid(0, "a", 0)
	rig := newFaultRig(t, faults.Plan{Seed: 1, TransientRate: 1.0, MaxFaultsPerObject: 1},
		map[segment.ObjectID]int{id: 0})
	errCount := 0
	rig.sim.Spawn("clients", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 16)
		// Two requests for the same object in the same dispatch round: the
		// second coalesces onto the first.
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q2", Tenant: 0, Reply: reply})
		for i := 0; i < 2; i++ {
			if d := reply.Recv(p); d.Err != nil {
				errCount++
			}
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if errCount != 2 {
		t.Fatalf("%d of 2 coalesced requesters got the error", errCount)
	}
	if st := rig.csd.Stats(); st.GetsCoalesced != 1 || st.TransientFaults != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// A stall delays the delivery without failing it.
func TestStallDelaysDelivery(t *testing.T) {
	id := oid(0, "a", 0)
	rig := newFaultRig(t, faults.Plan{Seed: 3, StallRate: 1.0, Stall: 7 * time.Second},
		map[segment.ObjectID]int{id: 0})
	var at time.Duration
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 4)
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		if d := reply.Recv(p); d.Err != nil {
			t.Errorf("stalled delivery failed: %v", d.Err)
		}
		at = p.Now()
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 17 * time.Second; at != want { // 10 s transfer + 7 s stall
		t.Fatalf("delivery at %v, want %v", at, want)
	}
	if st := rig.csd.Stats(); st.StalledTransfers != 1 {
		t.Fatalf("StalledTransfers = %d", st.StalledTransfers)
	}
}

// A corrupt fault against a checksummed lazy segment serves a payload
// that fails verification; the original in the store stays intact.
func TestCorruptDeliveryDetectable(t *testing.T) {
	sch := tuple.NewSchema(tuple.Column{Name: "k", Kind: tuple.KindInt64})
	id := oid(0, "a", 0)
	src := &segment.Segment{ID: id, Rows: []tuple.Row{{tuple.Int(7)}}, NominalBytes: 1e9}
	data, err := src.EncodeFormat(sch, segment.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := segment.DecodeLazy(sch, data)
	if err != nil {
		t.Fatal(err)
	}

	sim := vtime.NewSim()
	assign := layout.MustAssignment(1)
	assign.Place(id, 0)
	cfg := DefaultConfig()
	cfg.Faults = faults.MustNew(faults.Plan{Seed: 2, CorruptRate: 1.0, MaxFaultsPerObject: 1})
	c := New(sim, cfg, map[segment.ObjectID]*segment.Segment{id: lazy}, assign)
	c.Start()

	var first, second *segment.Segment
	sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](sim, "reply", 4)
		c.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		first = reply.Recv(p).Seg
		c.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		second = reply.Recv(p).Seg
		c.Shutdown(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if first == nil || second == nil {
		t.Fatal("deliveries missing")
	}
	if err := first.VerifyChecksum(); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("first delivery verified: %v", err)
	}
	if err := second.VerifyChecksum(); err != nil {
		t.Fatalf("retry delivered corrupt data: %v", err)
	}
	st := c.Stats()
	if st.CorruptDeliveries != 1 {
		t.Fatalf("CorruptDeliveries = %d", st.CorruptDeliveries)
	}
	// Corrupt bytes traveled: both transfers are charged.
	if st.BytesServed != 2e9 {
		t.Fatalf("BytesServed = %d, want 2e9", st.BytesServed)
	}
}

// A corrupt fault against an in-memory segment degrades to a transient
// failure — there are no wire bytes to flip.
func TestCorruptDegradesToTransientOnMemStore(t *testing.T) {
	id := oid(0, "a", 0)
	rig := newFaultRig(t, faults.Plan{Seed: 2, CorruptRate: 1.0, MaxFaultsPerObject: 1},
		map[segment.ObjectID]int{id: 0})
	var firstErr error
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 4)
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		firstErr = reply.Recv(p).Err
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		if d := reply.Recv(p); d.Err != nil || d.Seg == nil {
			t.Errorf("retry failed: %v", d.Err)
		}
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	var te *TransientError
	if !errors.As(firstErr, &te) {
		t.Fatalf("degraded fault is %T (%v), want *TransientError", firstErr, firstErr)
	}
	if st := rig.csd.Stats(); st.TransientFaults != 1 || st.CorruptDeliveries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// Crash mid-transfer: the in-flight request fails at its completion
// instant, requests during the window are refused immediately, and the
// restarted device serves retries.
func TestCrashAndRestart(t *testing.T) {
	id := oid(0, "a", 0)
	rig := newFaultRig(t, faults.Plan{Seed: 1, CrashAt: 5 * time.Second, CrashDowntime: 20 * time.Second},
		map[segment.ObjectID]int{id: 0})
	var inflightErr, duringErr error
	var servedAt time.Duration
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 4)
		// Submitted at t=0, transfer completes at t=10 s — after the crash
		// at t=5 s, so the delivery is a down error.
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		inflightErr = reply.Recv(p).Err
		// Still down (restart at t=25 s): refused immediately.
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		duringErr = reply.Recv(p).Err
		if p.Now() != 10*time.Second {
			t.Errorf("down refusal waited: answered at %v", p.Now())
		}
		// Back off past the restart and retry.
		p.Sleep(20 * time.Second)
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		d := reply.Recv(p)
		if d.Err != nil {
			t.Errorf("post-restart request failed: %v", d.Err)
		}
		servedAt = p.Now()
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, err := range []error{inflightErr, duringErr} {
		var de *DeviceDownError
		if !errors.As(err, &de) {
			t.Fatalf("error %T (%v), want *DeviceDownError", err, err)
		}
		if !de.Restarting {
			t.Fatalf("plan restarts but error says %+v", de)
		}
		if !IsRetryable(err) {
			t.Fatalf("restarting down error not retryable")
		}
	}
	if want := 40 * time.Second; servedAt != want { // retry at 30 s + 10 s transfer
		t.Fatalf("served at %v, want %v", servedAt, want)
	}
	st := rig.csd.Stats()
	if st.Crashes != 1 || st.Restarts != 1 || st.DownErrors != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// A permanent crash (no downtime) marks its errors non-restarting, so
// retry policies give up instead of spinning.
func TestPermanentCrashNotRetryable(t *testing.T) {
	id := oid(0, "a", 0)
	rig := newFaultRig(t, faults.Plan{Seed: 1, CrashAt: 5 * time.Second},
		map[segment.ObjectID]int{id: 0})
	var gotErr error
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 4)
		rig.csd.Submit(p, &Request{Object: id, QueryID: "q1", Tenant: 0, Reply: reply})
		gotErr = reply.Recv(p).Err
		rig.csd.Shutdown(p)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	var de *DeviceDownError
	if !errors.As(gotErr, &de) {
		t.Fatalf("error %T, want *DeviceDownError", gotErr)
	}
	if de.Restarting {
		t.Fatalf("permanent crash claims restart")
	}
	if IsRetryable(gotErr) {
		t.Fatalf("permanent crash retryable")
	}
}

// Regression for the fail-stop drain: when the scheduler misbehaves,
// every pending request — including several for the same object that
// would have coalesced — gets its own error delivery (no partial
// fan-out hang), in-flight transfers still complete with data, and a
// second Shutdown after the failure is harmless.
func TestFailStopDrainsAllPendingAndShutdownIdempotent(t *testing.T) {
	servable := oid(0, "a", 0) // group 0, dispatched immediately
	stuck := oid(1, "b", 0)    // group 1, pending when the switch fails
	objs := map[segment.ObjectID]int{servable: 0, stuck: 1}
	cfg := DefaultConfig()
	cfg.Scheduler = badScheduler{mode: "loaded"}
	rig := newRig(cfg, objs)

	var dataOK bool
	var errs []error
	rig.sim.Spawn("client", func(p *vtime.Proc) {
		reply := vtime.NewChan[Delivery](rig.sim, "reply", 16)
		rig.csd.Submit(p, &Request{Object: servable, QueryID: "q1", Tenant: 0, Reply: reply})
		// Three requests for the same stuck object: all pending on group 1
		// when the contract violation fail-stops the device.
		for i := 0; i < 3; i++ {
			rig.csd.Submit(p, &Request{Object: stuck, QueryID: "q2", Tenant: 1, Reply: reply})
		}
		for i := 0; i < 4; i++ {
			d := reply.Recv(p)
			if d.Err != nil {
				errs = append(errs, d.Err)
			} else if d.Object == servable {
				dataOK = true
			}
		}
		rig.csd.Shutdown(p)
		rig.csd.Shutdown(p) // idempotent: a second shutdown must not wedge the sim
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !dataOK {
		t.Fatalf("in-flight transfer did not complete with data")
	}
	if len(errs) != 3 {
		t.Fatalf("%d of 3 pending requests got the failure", len(errs))
	}
	for _, err := range errs {
		var sce *SchedulerContractError
		if !errors.As(err, &sce) {
			t.Fatalf("error %T, want *SchedulerContractError", err)
		}
		if IsRetryable(err) {
			t.Fatalf("contract violation retryable")
		}
	}
	if rig.csd.Err() == nil {
		t.Fatalf("device not marked failed")
	}
}
