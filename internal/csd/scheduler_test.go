package csd

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// schedulerSim drives a scheduler through synthetic switch decisions: a
// fixed population of queries, each pinned to one group, re-enqueues a
// request after every service. It returns the longest gap (in switches)
// any query experienced between services.
func schedulerSim(s Scheduler, queryGroups []int, rounds int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	nq := len(queryGroups)
	lastService := make([]int, nq) // switch index of last service
	switches := 0
	maxGap := 0
	loaded := -1
	seq := 0
	for r := 0; r < rounds; r++ {
		pending := make(map[int][]*Request)
		for qi, g := range queryGroups {
			if g == loaded {
				// Queries on the loaded group are serviced immediately
				// without a switch (the controller drains them).
				lastService[qi] = switches
				continue
			}
			seq++
			pending[g] = append(pending[g], &Request{
				QueryID: fmt.Sprint("q", qi), Tenant: qi, seq: seq - rng.Intn(2),
			})
		}
		if len(pending) == 0 {
			break
		}
		waiting := func(q string) int {
			var qi int
			fmt.Sscanf(q, "q%d", &qi)
			return switches - lastService[qi]
		}
		next := s.NextGroup(loaded, pending, waiting)
		switches++
		loaded = next
		for qi, g := range queryGroups {
			if g == loaded {
				if gap := switches - lastService[qi]; gap > maxGap {
					maxGap = gap
				}
				lastService[qi] = switches
			}
		}
	}
	// A query still waiting at the horizon counts with its open gap —
	// otherwise a fully starved query would never register.
	for qi := range queryGroups {
		if gap := switches - lastService[qi]; gap > maxGap {
			maxGap = gap
		}
	}
	return maxGap
}

// TestRankBasedBoundedWaiting: with K=1, a query's waiting time is
// bounded — the lone query's rank grows by one per switch, so it
// eventually outranks any constant-population group. Max-Queries provides
// no such bound and starves the lone query for the whole horizon.
func TestRankBasedBoundedWaiting(t *testing.T) {
	// Two busy groups with three queries each, one lone query on group 2.
	groups := []int{0, 0, 0, 1, 1, 1, 2}
	const rounds = 60
	rankGap := schedulerSim(NewRankBased(1), groups, rounds, 1)
	maxqGap := schedulerSim(NewMaxQueries(), groups, rounds, 1)
	if rankGap > 8 {
		t.Fatalf("rank-based max gap %d switches; expected bounded (<8)", rankGap)
	}
	if maxqGap <= rankGap {
		t.Fatalf("max-queries gap %d not worse than rank-based %d", maxqGap, rankGap)
	}
}

// TestSchedulersAlwaysPickValidGroup: every scheduler must return a
// non-loaded group that has pending requests, for random pending maps.
func TestSchedulersAlwaysPickValidGroup(t *testing.T) {
	scheds := []Scheduler{NewFCFSObject(), NewFCFSQuery(), NewMaxQueries(), NewRankBased(1), NewRankBased(0)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		loaded := rng.Intn(5)
		pending := make(map[int][]*Request)
		ngroups := 1 + rng.Intn(4)
		for i := 0; i < ngroups; i++ {
			g := rng.Intn(6)
			if g == loaded {
				g = (g + 1) % 6
			}
			for j := 0; j < 1+rng.Intn(3); j++ {
				pending[g] = append(pending[g], &Request{
					QueryID: fmt.Sprint("q", rng.Intn(4)),
					seq:     rng.Intn(100),
				})
			}
		}
		wait := func(string) int { return rng.Intn(10) }
		for _, s := range scheds {
			g := s.NextGroup(loaded, pending, wait)
			if g == loaded {
				t.Logf("%s picked loaded group", s.Name())
				return false
			}
			if len(pending[g]) == 0 {
				t.Logf("%s picked empty group %d", s.Name(), g)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRankFormulaMatchesDefinition checks R(g) = Ng + K·ΣWq(g) on a
// hand-computable case.
func TestRankFormulaMatchesDefinition(t *testing.T) {
	pending := map[int][]*Request{
		1: {req(1, "qa", 0), req(2, "qb", 1), req(3, "qa", 0)}, // Ng=2
		2: {req(4, "qc", 2)},                                   // Ng=1
	}
	waits := map[string]int{"qa": 0, "qb": 1, "qc": 2}
	wait := func(q string) int { return waits[q] }
	// K=1: R(1)=2+(0+1)=3, R(2)=1+2=3 -> tie, higher Ng wins -> group 1.
	if g := NewRankBased(1).NextGroup(0, pending, wait); g != 1 {
		t.Fatalf("tie-break picked %d", g)
	}
	// K=2: R(1)=2+2=4, R(2)=1+4=5 -> group 2.
	if g := NewRankBased(2).NextGroup(0, pending, wait); g != 2 {
		t.Fatalf("K=2 picked %d", g)
	}
}
